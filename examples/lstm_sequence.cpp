// LSTM demo: learn a memory task that a memoryless model cannot solve.
//
// Each sequence starts with a cue step (+1 or -1 in the first feature); all
// later steps carry pure noise. The label of EVERY step is the cue's sign,
// so the model must carry the cue through its cell state — only the LSTM's
// recurrence can do that. A feedforward baseline with the same head is shown
// for contrast: it stays near chance on the post-cue steps.
#include <cstdio>

#include "base/rng.h"
#include "core/net.h"
#include "core/solver.h"

using namespace swcaffe;

namespace {

constexpr int kSteps = 8, kDim = 4, kHidden = 12, kClasses = 2;

core::NetSpec make_net(bool with_lstm) {
  core::NetSpec spec;
  spec.name = with_lstm ? "lstm-memory" : "feedforward-baseline";
  spec.inputs.push_back({"x", {kSteps, 1, kDim}});
  spec.inputs.push_back({"label", {kSteps}});
  if (with_lstm) {
    spec.layers.push_back(core::lstm_spec("lstm", "x", "h", kHidden));
    spec.layers.push_back(core::ip_spec("head", "h", "scores", kClasses));
  } else {
    spec.layers.push_back(core::ip_spec("fc", "x", "h", kHidden));
    spec.layers.push_back(core::tanh_spec("act", "h", "h_act"));
    spec.layers.push_back(core::ip_spec("head", "h_act", "scores", kClasses));
  }
  spec.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

void fill_sequence(core::Net& net, base::Rng& rng) {
  auto x = net.blob("x")->data();
  auto label = net.blob("label")->data();
  const int cue = rng.bernoulli(0.5) ? 1 : 0;
  for (int t = 0; t < kSteps; ++t) {
    label[t] = static_cast<float>(cue);
    for (int i = 0; i < kDim; ++i) {
      x[t * kDim + i] = rng.gaussian(0.0f, 0.3f);
    }
  }
  x[0] = cue == 1 ? 1.5f : -1.5f;  // the only informative value
}

double post_cue_accuracy(core::Net& net, base::Rng& rng, int trials) {
  int hits = 0, total = 0;
  for (int s = 0; s < trials; ++s) {
    fill_sequence(net, rng);
    net.forward();
    const auto scores = net.blob("scores")->data();
    const auto label = net.blob("label")->data();
    for (int t = 1; t < kSteps; ++t) {  // exclude the cue step itself
      const int pred = scores[t * kClasses + 1] > scores[t * kClasses] ? 1 : 0;
      hits += pred == static_cast<int>(label[t]);
      ++total;
    }
  }
  return static_cast<double>(hits) / total;
}

void train(core::Net& net, const char* name) {
  core::SolverSpec ss;
  ss.base_lr = 0.05f;
  ss.momentum = 0.9f;
  core::SgdSolver solver(net, ss);
  base::Rng rng(7);
  for (int iter = 0; iter < 400; ++iter) {
    fill_sequence(net, rng);
    const double loss = solver.step();
    if (iter % 100 == 0) std::printf("  [%s] iter %3d loss %.4f\n", name, iter, loss);
  }
  base::Rng eval_rng(99);
  std::printf("  [%s] post-cue accuracy: %.1f%% (chance 50%%)\n\n", name,
              100.0 * post_cue_accuracy(net, eval_rng, 50));
}

}  // namespace

int main() {
  std::printf("Memory task: the label of every step is set by a cue visible "
              "only at t=0.\n\n");
  core::Net lstm(make_net(true), 1);
  train(lstm, "LSTM");
  core::Net ff(make_net(false), 1);
  train(ff, "feedforward");
  std::printf("The LSTM carries the cue through its cell state; the "
              "feedforward net cannot see past the current step.\n");
  return 0;
}
