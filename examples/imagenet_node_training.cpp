// Single-node "ImageNet" training tour (the paper's Algorithm 1 on one
// SW26010): an I/O prefetch thread feeds mini-batches from the synthetic
// ImageNet stand-in, four core-group threads compute gradients on quarter
// batches, CG0 averages them, and the solver updates. Functional compute
// runs at reduced resolution so the example finishes in seconds; alongside
// it we print the cost model's paper-scale (224x224, batch 256) timing for
// the same network.
#include <cstdio>

#include "base/units.h"
#include "core/models.h"
#include "core/solver.h"
#include "hw/cost_model.h"
#include "io/prefetch.h"
#include "parallel/node_runner.h"
#include "swdnn/layer_estimate.h"

using namespace swcaffe;

int main() {
  // --- Functional training at reduced resolution ---------------------------
  const int sub_batch = 2;         // per core group
  const int cgs = 4;               // SW26010 core groups
  const int image = 67;            // reduced from 227 for host-speed compute
  const int classes = 10;

  core::NetSpec spec = core::alexnet_bn(sub_batch, classes, image);
  parallel::NodeRunner node(spec, cgs, /*seed=*/7);
  core::SolverSpec solver_spec;
  solver_spec.base_lr = 0.0005f;
  solver_spec.momentum = 0.9f;
  core::SgdSolver solver(node.master(), solver_spec);

  io::DatasetSpec dataset;
  dataset.num_samples = 4096;
  dataset.classes = classes;
  dataset.channels = 3;
  dataset.height = dataset.width = image;
  io::DiskParams disk;
  io::Prefetcher prefetcher(dataset, disk, io::FileLayout::kStriped,
                            sub_batch * cgs, /*rank=*/0, /*num_procs=*/1);

  std::printf("AlexNet-BN at %dx%d, mini-batch %d over %d core groups "
              "(Algorithm 1)\n",
              image, image, sub_batch * cgs, cgs);
  for (int iter = 0; iter < 8; ++iter) {
    const io::Batch batch = prefetcher.pop();
    const double loss = node.compute_gradients(batch.images, batch.labels);
    solver.apply_update();
    node.broadcast_params();
    std::printf("  iter %d  loss %.4f  (prefetched I/O, simulated read %s)\n",
                iter, loss,
                base::format_seconds(batch.simulated_read_s).c_str());
  }

  // --- Paper-scale timing from the cost model --------------------------------
  std::printf("\nSimulated SW26010 performance at paper scale "
              "(227x227 ImageNet, batch 256):\n");
  hw::CostModel cost;
  const auto descs = core::describe_net_spec(core::alexnet_bn(64));  // B/4
  const double t_cg = dnn::estimate_net_sw(cost, descs);
  std::printf("  one core group, batch 64:   %s per iteration\n",
              base::format_seconds(t_cg).c_str());
  std::printf("  node throughput (4 CGs):    %.1f img/s  (paper Table III: "
              "94.17)\n",
              dnn::node_throughput_img_s(cost, descs, 256));
  return 0;
}
