// Distributed SSGD demo: 8 simulated TaihuLight nodes (2 supernodes) train
// one model with synchronous data-parallel SGD, exercising the paper's
// gradient packing and topology-aware all-reduce end to end. The run
// verifies that all replicas stay in lockstep and compares the simulated
// communication cost of the four synchronization strategies.
#include <cstdio>
#include <vector>

#include "base/rng.h"
#include "base/units.h"
#include "core/spec.h"
#include "parallel/ssgd.h"

using namespace swcaffe;

namespace {

core::NetSpec small_cnn(int batch) {
  core::NetSpec spec;
  spec.name = "dist-cnn";
  spec.inputs.push_back({"data", {batch, 4, 10, 10}});
  spec.inputs.push_back({"label", {batch}});
  spec.layers.push_back(core::conv_spec("conv1", "data", "conv1", 8, 3, 1, 1));
  spec.layers.push_back(core::relu_spec("relu1", "conv1", "relu1"));
  spec.layers.push_back(core::pool_spec("pool1", "relu1", "pool1",
                                        core::PoolMethod::kMax, 2, 2));
  spec.layers.push_back(core::ip_spec("fc", "pool1", "scores", 3));
  spec.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

void make_batch(std::vector<float>& data, std::vector<float>& labels,
                int batch, base::Rng& rng) {
  const int dim = 4 * 10 * 10;
  data.resize(static_cast<std::size_t>(batch) * dim);
  labels.resize(batch);
  for (int b = 0; b < batch; ++b) {
    const int cls = static_cast<int>(rng.uniform_int(0, 2));
    labels[b] = static_cast<float>(cls);
    for (int i = 0; i < dim; ++i) {
      data[b * dim + i] =
          0.4f * static_cast<float>(cls - 1) + rng.gaussian(0.0f, 0.3f);
    }
  }
}

}  // namespace

int main() {
  const int nodes = 8, sub_batch = 4;
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  solver.momentum = 0.9f;

  std::printf("=== SSGD on %d simulated nodes (2 supernodes of 4), global "
              "batch %d ===\n\n",
              nodes, nodes * sub_batch);
  for (auto algo : {parallel::AllreduceAlgo::kRhdRoundRobin,
                    parallel::AllreduceAlgo::kRhdAdjacent,
                    parallel::AllreduceAlgo::kRing,
                    parallel::AllreduceAlgo::kParamServer}) {
    parallel::SsgdOptions opt;
    opt.algo = algo;
    opt.supernode_size = 4;
    parallel::SsgdTrainer trainer(small_cnn(sub_batch), nodes, solver, opt,
                                  /*seed=*/11);
    base::Rng rng(13);
    std::vector<float> data, labels;
    double first = 0.0, last = 0.0;
    double comm_s = 0.0;
    for (int iter = 0; iter < 30; ++iter) {
      make_batch(data, labels, nodes * sub_batch, rng);
      const double loss = trainer.step(data, labels);
      if (iter == 0) first = loss;
      last = loss;
      comm_s += trainer.last_comm().seconds;
    }
    // Verify the replicas never diverged (bitwise).
    std::vector<float> w0(trainer.node(0).param_count()), wr(w0.size());
    trainer.node(0).pack_params(w0);
    bool in_sync = true;
    for (int r = 1; r < nodes; ++r) {
      trainer.node(r).pack_params(wr);
      in_sync = in_sync && wr == w0;
    }
    const auto& c = trainer.last_comm();
    std::printf("%-16s loss %.3f -> %.3f | replicas in sync: %s\n",
                parallel::allreduce_algo_name(algo), first, last,
                in_sync ? "yes" : "NO");
    std::printf("                 per-iter comm: %s  (alpha terms %d, "
                "intra bytes %.2fn, cross bytes %.2fn)\n",
                base::format_seconds(comm_s / 30).c_str(), c.alpha_terms,
                c.beta1_bytes / (trainer.node(0).param_count() * 4.0),
                c.beta2_bytes / (trainer.node(0).param_count() * 4.0));
  }
  std::printf("\nThe topology-aware (round-robin) placement moves the bulk "
              "of the traffic inside supernodes — the paper's\nSec. V-A "
              "contribution; at 8 nodes the effect is visible in the "
              "intra/cross byte split above and grows with scale\n(see "
              "bench_allreduce and bench_scalability).\n");
  return 0;
}
