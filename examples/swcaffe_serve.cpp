// swcaffe_serve: inference serving simulator — dynamic batching and SLO
// admission control over the cost model.
//
// Usage:
//   swcaffe_serve [--net alexnet|vgg16|vgg19|resnet50|googlenet]
//                 [--rate R] [--duration S] [--arrival poisson|bursty]
//                 [--seed N] [--max-batch B] [--max-delay MS] [--slo MS]
//                 [--no-admission] [--tune] [--plan-cache FILE]
//                 [--trace out.json] [--json OUT]
//
// An open-loop arrival stream (R req/s for S simulated seconds) feeds one
// server that coalesces requests into batches of up to --max-batch, holding
// the oldest request at most --max-delay ms; requests whose conservative
// completion bound misses the --slo deadline are rejected at arrival.
// Forward passes are priced by the calibrated SW26010 cost model; --tune
// selects swtune plans per batch size (persisted via --plan-cache, shared
// with swcaffe_time/swcaffe_tune). --trace writes a Chrome trace with the
// server's forward spans, per-request queue intervals and batch-formation
// intervals; --json writes the headline numbers as a bench_json object.
// Everything runs on simulated time: same flags + seed => identical output.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "../bench/bench_json.h"
#include "base/table.h"
#include "base/units.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

serve::ModelFn resolve_model(const std::string& name) {
  // Inference geometry: full ImageNet shapes, no loss layer. Pricing is
  // pure shape inference, so paper-scale resolutions cost nothing here.
  if (name == "alexnet") {
    return [](int b) { return core::alexnet_bn(b, 1000, 227, false); };
  }
  if (name == "vgg16") {
    return [](int b) { return core::vgg(16, b, 1000, 224, false); };
  }
  if (name == "vgg19") {
    return [](int b) { return core::vgg(19, b, 1000, 224, false); };
  }
  if (name == "resnet50") {
    return [](int b) { return core::resnet50(b, 1000, 224, false); };
  }
  if (name == "googlenet") {
    return [](int b) { return core::googlenet(b, 1000, 224, false); };
  }
  std::fprintf(stderr, "unknown net: %s\n", name.c_str());
  std::exit(2);
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string net = "alexnet";
  std::string arrival = "poisson";
  double rate = 100.0;
  double duration_s = 1.0;
  std::uint64_t seed = 1;
  int max_batch = 8;
  double max_delay_ms = 2.0;
  double slo_ms = 50.0;
  bool admission = true;
  bool tune = false;
  std::string plan_cache;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--net", v)) {
      net = v;
    } else if (flag_value(argc, argv, i, "--arrival", v)) {
      arrival = v;
    } else if (flag_value(argc, argv, i, "--rate", v)) {
      rate = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--duration", v)) {
      duration_s = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--seed", v)) {
      seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (flag_value(argc, argv, i, "--max-batch", v)) {
      max_batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--max-delay", v)) {
      max_delay_ms = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--slo", v)) {
      slo_ms = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--plan-cache", v)) {
      plan_cache = v;
    } else if (flag_value(argc, argv, i, "--trace", v)) {
      trace_path = v;
    } else if (flag_value(argc, argv, i, "--json", v)) {
      // Value re-parsed by JsonBench; consumed here so it isn't positional.
    } else if (std::strcmp(argv[i], "--no-admission") == 0) {
      admission = false;
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  bench::JsonBench json("swcaffe_serve", argc, argv);
  trace::Tracer tracer;
  const hw::CostModel cost;

  serve::EngineOptions eng_opts;
  eng_opts.max_batch = max_batch;
  eng_opts.tune = tune;
  eng_opts.plan_cache = plan_cache;
  eng_opts.tracer = trace_path.empty() ? nullptr : &tracer;
  eng_opts.trace_track = 3;  // serving uses tracks 0..2
  serve::InferenceEngine engine(cost, net, resolve_model(net), eng_opts);

  std::printf("=== %s forward pricing (batch table) ===\n", net.c_str());
  {
    TablePrinter t({"batch", "forward", "per-request", "img/s"});
    for (int b = 1; b <= max_batch; ++b) {
      const double f = engine.batch_time(b);
      t.add_row({std::to_string(b), base::format_seconds(f),
                 base::format_seconds(f / b), fmt(b / f, 1)});
    }
    t.print(std::cout);
    if (tune) {
      const serve::EngineStats& s = engine.stats();
      std::printf("tuned %d conv searches (%d cache hits, %d plans "
                  "verified)\n",
                  s.layers_tuned, s.cache_hits, s.plans_verified);
    }
  }

  serve::ArrivalSpec aspec;
  aspec.kind = serve::parse_arrival_kind(arrival);
  aspec.rate = rate;
  aspec.duration_s = duration_s;
  aspec.seed = seed;
  const std::vector<double> arrivals = serve::generate_arrivals(aspec);

  serve::ServeOptions sopts;
  sopts.batcher.max_batch = max_batch;
  sopts.batcher.max_delay_s = max_delay_ms * 1e-3;
  sopts.admission.enabled = admission;
  sopts.admission.slo_s = slo_ms * 1e-3;
  sopts.tracer = trace_path.empty() ? nullptr : &tracer;
  const serve::ServeResult res =
      serve::simulate_serving(engine, arrivals, sopts);

  std::printf("\n=== serving %s: %s arrivals at %.1f req/s for %.2fs ===\n",
              net.c_str(), arrival.c_str(), rate, duration_s);
  {
    TablePrinter t({"metric", "value"});
    t.add_row({"offered", std::to_string(res.offered)});
    t.add_row({"admitted", std::to_string(res.admitted)});
    t.add_row({"rejected", std::to_string(res.rejected) + " (" +
                               fmt(100.0 * res.rejection_rate, 1) + "%)"});
    t.add_row({"batches", std::to_string(res.batches.size())});
    t.add_row({"mean batch size", fmt(res.mean_batch_size, 2)});
    t.add_row({"throughput", fmt(res.throughput_rps, 1) + " req/s"});
    t.add_row({"utilization", fmt(100.0 * res.utilization, 1) + "%"});
    t.add_row({"latency p50", base::format_seconds(res.latency.p50_s)});
    t.add_row({"latency p95", base::format_seconds(res.latency.p95_s)});
    t.add_row({"latency p99", base::format_seconds(res.latency.p99_s)});
    t.add_row({"latency max", base::format_seconds(res.latency.max_s)});
    t.add_row({"SLO", admission ? base::format_seconds(sopts.admission.slo_s)
                                : std::string("off")});
    t.print(std::cout);
  }
  if (admission && res.latency.count > 0) {
    // The admission bound is conservative: an admitted request can never
    // miss the deadline. Worth asserting on every CLI run, not just tests.
    if (res.latency.max_s > sopts.admission.slo_s) {
      std::fprintf(stderr, "FAIL: admitted max latency %.6fs exceeds SLO\n",
                   res.latency.max_s);
      return 1;
    }
  }

  json.metric("offered", res.offered);
  json.metric("admitted", res.admitted);
  json.metric("rejection_rate", res.rejection_rate);
  json.metric("throughput_rps", res.throughput_rps);
  json.metric("utilization", res.utilization);
  json.metric("mean_batch_size", res.mean_batch_size);
  json.metric("latency_p50_s", res.latency.p50_s);
  json.metric("latency_p95_s", res.latency.p95_s);
  json.metric("latency_p99_s", res.latency.p99_s);

  if (!trace_path.empty()) {
    trace::save_chrome_trace(tracer, trace_path);
    std::printf("wrote trace to %s\n", trace_path.c_str());
  }
  if (tune && !plan_cache.empty()) {
    std::string error;
    if (!engine.save_cache(&error)) {
      std::fprintf(stderr, "plan-cache save failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("saved plan cache to %s\n", plan_cache.c_str());
  }
  return 0;
}
