// Convolution plan explorer: give it a layer geometry and it prints what
// the swtune auto-tuner does on SW26010 — the candidate plan space per
// direction (with the check::-illegal ones marked), each survivor's
// simulated time, and the chosen plan — the same analysis behind Table II.
//
// This is a thin presentation layer over tune::Tuner: the search itself
// (enumeration, legality filtering, argmin) lives in src/tune/.
//
// Usage: conv_plan_explorer [batch in_c out_c image kernel stride pad]
//        (defaults: 128 256 256 56 3 1 1, i.e. VGG-16 conv3_2)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/units.h"
#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"
#include "tune/tuner.h"

using namespace swcaffe;

namespace {

const char* direction_name(dnn::ConvDirection dir) {
  switch (dir) {
    case dnn::ConvDirection::kForward:
      return "forward";
    case dnn::ConvDirection::kBackwardWeight:
      return "weight gradient";
    case dnn::ConvDirection::kBackwardInput:
      return "input gradient";
  }
  return "?";
}

std::string describe_candidate(const tune::Candidate& c) {
  char buf[96];
  if (c.implicit) {
    std::snprintf(buf, sizeof(buf), "implicit cb=%d ob=%d",
                  c.channel_block_in, c.channel_block_out);
  } else {
    std::snprintf(buf, sizeof(buf), "explicit %dx%dx%d %s chunk=%d",
                  c.blocking.block_m, c.blocking.block_n, c.blocking.block_k,
                  c.blocking.double_buffered ? "db" : "sb",
                  c.blocking.bcast_chunk);
  }
  return buf;
}

std::string describe_choice(const tune::DirectionChoice& d) {
  char buf[96];
  if (d.implicit) {
    std::snprintf(buf, sizeof(buf),
                  "IMPLICIT (swDNN direct kernel, cb=%d ob=%d)",
                  d.channel_block_in, d.channel_block_out);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "EXPLICIT (im2col + mesh GEMM %dx%dx%d %s chunk=%d)",
                  d.blocking.block_m, d.blocking.block_n, d.blocking.block_k,
                  d.blocking.double_buffered ? "db" : "sb", d.blocking.bcast_chunk);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  core::ConvGeom g;
  g.batch = 128;
  g.in_c = 256;
  g.out_c = 256;
  g.in_h = g.in_w = 56;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  if (argc == 8) {
    g.batch = std::atoi(argv[1]);
    g.in_c = std::atoi(argv[2]);
    g.out_c = std::atoi(argv[3]);
    g.in_h = g.in_w = std::atoi(argv[4]);
    g.kernel = std::atoi(argv[5]);
    g.stride = std::atoi(argv[6]);
    g.pad = std::atoi(argv[7]);
  } else if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [batch in_c out_c image kernel stride pad]\n",
                 argv[0]);
    return 1;
  }

  std::printf("conv: batch=%d %dx%dx%d -> %d channels, K=%d S=%d P=%d "
              "(output %dx%d)\n",
              g.batch, g.in_c, g.in_h, g.in_w, g.out_c, g.kernel, g.stride,
              g.pad, g.out_h(), g.out_w());
  std::printf("flops: %.2f Gflop forward (same backward per direction)\n\n",
              g.flops_fwd() / 1e9);

  hw::CostModel cost;
  tune::TuneOptions topts;
  topts.keep_candidates = true;
  tune::Tuner tuner(cost, topts);
  const tune::TunedConvPlan plan = tuner.tune_conv(g, "conv");

  const dnn::ConvDirection dirs[] = {dnn::ConvDirection::kForward,
                                     dnn::ConvDirection::kBackwardWeight,
                                     dnn::ConvDirection::kBackwardInput};
  const tune::DirectionChoice* choices[] = {&plan.forward,
                                            &plan.backward_weight,
                                            &plan.backward_input};
  for (int di = 0; di < 3; ++di) {
    std::printf("%s — %s\n", direction_name(dirs[di]),
                describe_choice(*choices[di]).c_str());
    std::printf("  tuned %.5f s, hand-written default %.5f s%s\n",
                choices[di]->tuned_s, choices[di]->default_s,
                choices[di]->implicit_s < 0 ? "  (implicit unsupported)" : "");
    int shown = 0, illegal = 0;
    for (const auto& c : plan.candidates) {
      if (c.direction != dirs[di]) continue;
      if (!c.legal) {
        ++illegal;
        continue;
      }
      if (shown < 8) {
        std::printf("    %-34s %.5f s\n", describe_candidate(c).c_str(),
                    c.seconds);
      }
      ++shown;
    }
    if (shown > 8) std::printf("    ... %d more legal candidates\n", shown - 8);
    if (illegal > 0) {
      std::printf("    (%d candidates rejected by the check:: rules)\n",
                  illegal);
    }
  }

  const dnn::ConvEstimate est = plan.as_estimate();
  std::printf("\nachieved Gflops (tuned plan): fwd %.1f, wgrad %.1f, igrad "
              "%.1f (CPE cluster peak: 742.4)\n",
              est.gflops_fwd, est.gflops_bwd_weight, est.gflops_bwd_input);
  std::printf("im2col/col2im transformation costs: %s / %s\n",
              base::format_seconds(dnn::im2col_time(cost, g)).c_str(),
              base::format_seconds(dnn::col2im_time(cost, g)).c_str());
  std::printf("search: %d candidates enumerated, %d priced, %d rejected\n",
              plan.space_size, plan.evaluated, plan.rejected);
  if (!dnn::implicit_forward_supported(g)) {
    std::printf("note: implicit forward needs >= 8 input channels "
                "(Sec. IV-B2 register blocking).\n");
  }
  if (!dnn::implicit_backward_supported(g)) {
    std::printf("note: implicit backward needs >= 128 channels on both "
                "sides (Table II dash pattern).\n");
  }
  return 0;
}
