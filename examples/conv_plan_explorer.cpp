// Convolution plan explorer: give it a layer geometry and it prints what
// the swCaffe auto-tuner would do on SW26010 — both strategies' simulated
// times per direction, the chosen plan, and the achieved Gflops — the same
// analysis behind Table II.
//
// Usage: conv_plan_explorer [batch in_c out_c image kernel stride pad]
//        (defaults: 128 256 256 56 3 1 1, i.e. VGG-16 conv3_2)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/units.h"
#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"

using namespace swcaffe;

int main(int argc, char** argv) {
  core::ConvGeom g;
  g.batch = 128;
  g.in_c = 256;
  g.out_c = 256;
  g.in_h = g.in_w = 56;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  if (argc == 8) {
    g.batch = std::atoi(argv[1]);
    g.in_c = std::atoi(argv[2]);
    g.out_c = std::atoi(argv[3]);
    g.in_h = g.in_w = std::atoi(argv[4]);
    g.kernel = std::atoi(argv[5]);
    g.stride = std::atoi(argv[6]);
    g.pad = std::atoi(argv[7]);
  } else if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [batch in_c out_c image kernel stride pad]\n",
                 argv[0]);
    return 1;
  }

  std::printf("conv: batch=%d %dx%dx%d -> %d channels, K=%d S=%d P=%d "
              "(output %dx%d)\n",
              g.batch, g.in_c, g.in_h, g.in_w, g.out_c, g.kernel, g.stride,
              g.pad, g.out_h(), g.out_w());
  std::printf("flops: %.2f Gflop forward (same backward per direction)\n\n",
              g.flops_fwd() / 1e9);

  hw::CostModel cost;
  const dnn::ConvEstimate est = dnn::estimate_conv(cost, g);
  auto show = [](const char* dir, const dnn::ConvDirectionEstimate& d) {
    std::printf("%-18s explicit %8.3f s   implicit %s   -> %s\n", dir,
                d.explicit_s,
                d.implicit_ok()
                    ? (std::to_string(d.implicit_s).substr(0, 8) + " s").c_str()
                    : "unsupported",
                d.implicit_wins() ? "IMPLICIT (swDNN direct kernel)"
                                  : "EXPLICIT (im2col + mesh GEMM)");
  };
  show("forward", est.forward);
  show("weight gradient", est.backward_weight);
  show("input gradient", est.backward_input);
  std::printf("\nachieved Gflops (best plan): fwd %.1f, wgrad %.1f, igrad "
              "%.1f (CPE cluster peak: 742.4)\n",
              est.gflops_fwd, est.gflops_bwd_weight, est.gflops_bwd_input);
  std::printf("im2col/col2im transformation costs: %s / %s\n",
              base::format_seconds(dnn::im2col_time(cost, g)).c_str(),
              base::format_seconds(dnn::col2im_time(cost, g)).c_str());
  if (!dnn::implicit_forward_supported(g)) {
    std::printf("note: implicit forward needs >= 8 input channels "
                "(Sec. IV-B2 register blocking).\n");
  }
  if (!dnn::implicit_backward_supported(g)) {
    std::printf("note: implicit backward needs >= 128 channels on both "
                "sides (Table II dash pattern).\n");
  }
  return 0;
}
