// swcaffe_time: the equivalent of `caffe time` — per-layer forward/backward
// timing for a model, reporting both the functional host wall-clock and the
// simulated SW26010 core-group time the cost model assigns to each layer.
//
// Usage:
//   swcaffe_time [--model M] [--iterations N] [--batch B]
//                [--tune] [--plan-cache FILE] [--json OUT]
//                [--threads N] [--replicas R]
//                [--nodes N] [--algo=ALGO] [--compress=none|fp16|int8]
//                [--sweep] [--trace=out.json] [--trace-report]
//   swcaffe_time <net.prototxt | alexnet | vgg16 | vgg19 | resnet50 |
//                 googlenet> [iterations] [batch]        (legacy positional)
//
// --tune runs the swtune plan search over every convolution, switches the
// functional net onto the tuned strategies and adds tuned per-layer columns
// next to the hand-written defaults; --plan-cache persists the tuned plans
// across runs. --json writes the headline numbers (host iteration, default
// and tuned simulated iteration) as a bench_json object. --trace writes a
// Chrome-trace JSON of the simulated timeline (open in ui.perfetto.dev);
// --trace-report prints the per-layer aggregate table from the same spans.
// Zoo models run at reduced resolution functionally; the simulated column is
// computed for the shapes actually instantiated.
//
// --threads N adds a wall-clock section: R model replicas (--replicas,
// default 8) run their forward/backward serially and then on N host worker
// threads; the replica losses must match bitwise and the section reports
// the measured speedup. This is the multithreaded replica execution the
// distributed trainer uses, measured in isolation.
//
// --nodes N adds a communication section: the model's packed gradient
// message is priced across N nodes with the configured all-reduce (--algo:
// rhd-round-robin [default], rhd-adjacent, hierarchical, ring, param-server)
// and gradient codec (--compress: none [default], fp16, int8), reporting
// wire bytes and the simulated collective time next to the compute time.
//
// --sweep runs the swsim timing-only scalability sweep: the model's
// Fig. 10/11 curve (serial + overlapped series, 8 buckets) priced at node
// counts 4..40,960 under the configured --algo/--compress, fanned over
// --threads workers. Pure pricing — no replica tensors — so the full
// machine sweep completes in well under a second; the section reports its
// own wall clock.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "../bench/bench_json.h"
#include "base/table.h"
#include "base/units.h"
#include "check/rules.h"
#include "core/models.h"
#include "core/net.h"
#include "core/proto.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "parallel/sweep.h"
#include "swdnn/layer_estimate.h"
#include "topo/hierarchical.h"
#include "trace/chrome_trace.h"
#include "trace/report.h"
#include "trace/tracer.h"
#include "tune/tuner.h"

using namespace swcaffe;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::NetSpec resolve_model(const std::string& arg, int batch) {
  if (arg == "alexnet") return core::alexnet_bn(batch, 10, 67);
  if (arg == "vgg16") return core::vgg(16, batch, 10, 32);
  if (arg == "vgg19") return core::vgg(19, batch, 10, 32);
  if (arg == "resnet50") return core::resnet50(batch, 10, 64);
  if (arg == "googlenet") return core::googlenet(batch, 10, 64);
  return core::load_net_prototxt(arg);
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "alexnet";
  int iterations = 3;
  int batch = 2;
  std::string trace_path;
  bool trace_report = false;
  bool tune = false;
  std::string plan_cache;
  int threads = 1;
  int replicas = 8;
  int nodes = 0;
  bool sweep = false;
  parallel::AllreduceAlgo algo = parallel::AllreduceAlgo::kRhdRoundRobin;
  topo::Compression compress = topo::Compression::kNone;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--model", v)) {
      model = v;
    } else if (flag_value(argc, argv, i, "--iterations", v)) {
      iterations = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--batch", v)) {
      batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--trace", v)) {
      trace_path = v;
    } else if (flag_value(argc, argv, i, "--plan-cache", v)) {
      plan_cache = v;
    } else if (flag_value(argc, argv, i, "--threads", v)) {
      threads = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--replicas", v)) {
      replicas = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--nodes", v)) {
      nodes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--algo", v)) {
      if (!parallel::allreduce_algo_from_name(v.c_str(), &algo)) {
        std::fprintf(stderr,
                     "unknown --algo '%s' (rhd-adjacent, rhd-round-robin, "
                     "hierarchical, ring, param-server)\n",
                     v.c_str());
        return 2;
      }
    } else if (flag_value(argc, argv, i, "--compress", v)) {
      if (!topo::compression_from_name(v.c_str(), &compress)) {
        std::fprintf(stderr, "unknown --compress '%s' (none, fp16, int8)\n",
                     v.c_str());
        return 2;
      }
    } else if (flag_value(argc, argv, i, "--json", v)) {
      // Value re-parsed by JsonBench; consumed here so it isn't positional.
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--trace-report") == 0) {
      trace_report = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      // Legacy positional form: model [iterations] [batch].
      switch (positional++) {
        case 0: model = argv[i]; break;
        case 1: iterations = std::atoi(argv[i]); break;
        case 2: batch = std::atoi(argv[i]); break;
        default:
          std::fprintf(stderr, "too many positional arguments\n");
          return 2;
      }
    }
  }
  if (!plan_cache.empty() && !tune) {
    std::fprintf(stderr, "--plan-cache requires --tune\n");
    return 2;
  }

  bench::JsonBench bench("swcaffe_time", argc, argv);

  core::NetSpec spec = resolve_model(model, batch);
  core::Net net(spec, 1);
  base::Rng rng(2);
  if (net.has_blob("data")) {
    for (auto& v : net.blob("data")->data()) v = rng.gaussian(0.0f, 1.0f);
  }
  if (net.has_blob("label")) {
    for (auto& v : net.blob("label")->data()) {
      v = static_cast<float>(rng.uniform_int(0, 9));
    }
  }

  const std::vector<core::LayerDesc> descs = net.describe();

  // swtune: search (or load) the per-conv plans, then switch the functional
  // net onto the tuned strategies so the host loop runs what the simulated
  // "tuned" column prices.
  tune::NetPlan plan;
  hw::CostModel cost;
  if (tune) {
    tune::TuneOptions topts;
    topts.cache_path = plan_cache;
    tune::Tuner tuner(cost, topts);
    plan = tuner.tune_net(descs);
    std::string cache_error;
    if (!tuner.save_cache(&cache_error)) {
      std::fprintf(stderr, "swtune: %s\n", cache_error.c_str());
    }
    net.apply_conv_plans(plan.assignments());
    std::printf("swtune: %zu conv layers tuned (%d cache hits, %lld "
                "candidates priced)\n\n",
                plan.convs.size(), tuner.stats().cache_hits,
                tuner.stats().evaluated);
  }

  // Warm-up pass (plan selection, buffer allocation).
  net.forward_backward();

  const double t0 = now_s();
  for (int i = 0; i < iterations; ++i) net.forward_backward();
  const double host_iter = (now_s() - t0) / iterations;

  const bool tracing = !trace_path.empty() || trace_report;
  trace::Tracer tracer;
  tracer.set_track_name(0, "cg0");

  if (tracing) cost.set_tracer(&tracer, 0);
  hw::CostModel untraced_cost;  // default column must not move the clock
  std::vector<std::string> headers = {"layer", "type", "SW26010 fwd",
                                      "SW26010 bwd"};
  if (tune) {
    headers.push_back("tuned fwd");
    headers.push_back("tuned bwd");
  }
  base::TablePrinter t(headers);
  double sw_total = 0.0;
  double tuned_total = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    dnn::ConvEstimate override_storage;
    const dnn::ConvEstimate* conv_override = nullptr;
    if (tune && d.kind == core::LayerKind::kConv) {
      auto it = plan.convs.find(d.name);
      if (it != plan.convs.end()) {
        override_storage = it->second.as_estimate();
        conv_override = &override_storage;
      }
    }
    // The traced/primary pass prices the plans that actually run.
    const auto sw = dnn::estimate_layer_sw(cost, d, first, conv_override);
    std::vector<std::string> row = {d.name, core::layer_kind_name(d.kind)};
    if (tune) {
      const auto def = dnn::estimate_layer_sw(untraced_cost, d, first);
      sw_total += def.total();
      tuned_total += sw.total();
      row.push_back(base::format_seconds(def.fwd_s));
      row.push_back(base::format_seconds(def.bwd_s));
      row.push_back(base::format_seconds(sw.fwd_s));
      row.push_back(base::format_seconds(sw.bwd_s));
    } else {
      sw_total += sw.total();
      row.push_back(base::format_seconds(sw.fwd_s));
      row.push_back(base::format_seconds(sw.bwd_s));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::printf("\nmodel: %s  (batch %d, %d timed iterations)\n",
              spec.name.c_str(), batch, iterations);
  std::printf("host functional iteration:      %s\n",
              base::format_seconds(host_iter).c_str());
  std::printf("simulated SW26010 iteration:    %s (one core group at this "
              "batch%s)\n",
              base::format_seconds(tune ? tuned_total : sw_total).c_str(),
              tune ? ", tuned plans" : "");
  bench.metric("host_iteration_s", host_iter);
  bench.metric("sim_iteration_default_s", sw_total);
  if (tune) {
    std::printf("  hand-written default plans:   %s (tuned is %.2f%% faster)\n",
                base::format_seconds(sw_total).c_str(),
                sw_total > 0 ? 100.0 * (sw_total - tuned_total) / sw_total
                             : 0.0);
    bench.metric("sim_iteration_tuned_s", tuned_total);
    bench.metric("tune_speedup",
                 tuned_total > 0 ? sw_total / tuned_total : 1.0);
  }

  if (tracing) {
    if (trace_report) {
      std::printf("\nper-layer trace aggregate:\n");
      trace::Report::build(tracer, "layer").print(std::cout);
    }
    if (!trace_path.empty()) {
      trace::save_chrome_trace(tracer, trace_path);
      std::printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }

  // --- Multithreaded replica section (--threads) ---------------------------
  if (threads > 1) {
    core::SolverSpec solver;
    parallel::SsgdOptions so;
    so.threads = 1;
    parallel::SsgdTrainer serial(spec, replicas, solver, so, 7);
    so.threads = threads;
    parallel::SsgdTrainer threaded(spec, replicas, solver, so, 7);

    const std::size_t dpn = serial.node(0).blob("data")->count();
    const std::size_t lpn = serial.node(0).blob("label")->count();
    std::vector<float> data(dpn * replicas), labels(lpn * replicas);
    base::Rng brng(11);
    for (auto& v : data) v = brng.gaussian(0.0f, 1.0f);
    for (auto& v : labels) v = static_cast<float>(brng.uniform_int(0, 9));

    std::vector<std::vector<float>> g1(replicas), g2(replicas);
    // Warm-up (buffer allocation, pool spin-up), then timed passes.
    serial.forward_backward_packed(data, labels, g1);
    threaded.forward_backward_packed(data, labels, g2);
    double serial_s = 0.0, threaded_s = 0.0, loss1 = 0.0, loss2 = 0.0;
    for (int i = 0; i < iterations; ++i) {
      double t = now_s();
      loss1 = serial.forward_backward_packed(data, labels, g1);
      serial_s += now_s() - t;
      t = now_s();
      loss2 = threaded.forward_backward_packed(data, labels, g2);
      threaded_s += now_s() - t;
    }
    serial_s /= iterations;
    threaded_s /= iterations;
    const bool identical = loss1 == loss2 && g1 == g2;
    std::printf("\n%d replicas, forward/backward per iteration:\n", replicas);
    std::printf("  serial:            %s\n",
                base::format_seconds(serial_s).c_str());
    std::printf("  %2d host threads:   %s (%.2fx, results %s)\n", threads,
                base::format_seconds(threaded_s).c_str(),
                threaded_s > 0 ? serial_s / threaded_s : 1.0,
                identical ? "bit-identical" : "DIVERGED");
    bench.metric("replica_serial_s", serial_s);
    bench.metric("replica_threaded_s", threaded_s);
    bench.metric("thread_speedup",
                 threaded_s > 0 ? serial_s / threaded_s : 1.0);
    bench.metric("threads", static_cast<double>(threads));
    if (!identical) {
      std::fprintf(stderr,
                   "threaded replica results diverged from serial\n");
      return 1;
    }
  }

  // --- All-reduce pricing section (--nodes) --------------------------------
  if (nodes > 1) {
    const std::int64_t param_bytes = core::total_param_bytes(descs);
    topo::Topology topo;
    topo.num_nodes = nodes;
    const topo::NetParams net = topo::sunway_network();

    // swcheck gatekeeps the combination exactly as the trainer would
    // (e.g. int8 over ring/param-server is rejected). The direct
    // check_comm rules, not verify_comm: the latter additionally composes
    // the hierarchy's full three-phase timeline, which at --nodes 40960 is
    // millions of events — legality is the same either way.
    check::CommPlan cplan;
    cplan.name = "swcaffe-time-comm";
    cplan.algorithm = parallel::allreduce_algo_name(algo);
    cplan.compression = topo::compression_name(compress);
    cplan.num_nodes = nodes;
    cplan.supernode_size = topo.supernode_size;
    cplan.raw_bytes = param_bytes;
    check::Report report;
    check::check_comm(cplan, check::Options{}, cplan.name, &report);
    if (!report.ok()) {
      std::fprintf(stderr, "illegal --algo/--compress combination: %s\n",
                   report.summary().c_str());
      return 2;
    }

    const topo::Placement placement = parallel::placement_for(algo);
    const topo::CostBreakdown comm = topo::cost_compressed(
        compress, param_bytes, net,
        [&](std::int64_t wire) -> topo::CostBreakdown {
          switch (algo) {
            case parallel::AllreduceAlgo::kRhdAdjacent:
            case parallel::AllreduceAlgo::kRhdRoundRobin:
              return topo::cost_rhd(wire, topo, net, placement);
            case parallel::AllreduceAlgo::kRing:
              return topo::cost_ring(wire, topo, net, placement);
            case parallel::AllreduceAlgo::kParamServer:
              return topo::cost_param_server(wire, topo, net, 1);
            case parallel::AllreduceAlgo::kHierarchical:
              return topo::cost_hierarchical(wire, topo, net);
          }
          return {};
        });
    std::printf("\ngradient all-reduce across %d nodes (%s, %s):\n", nodes,
                parallel::allreduce_algo_name(algo),
                topo::compression_name(compress));
    std::printf("  packed gradients:  %.2f MB (%.2f MB on the wire)\n",
                static_cast<double>(param_bytes) / 1e6,
                static_cast<double>(topo::wire_bytes(compress, param_bytes)) /
                    1e6);
    std::printf("  simulated time:    %s (%d startups)\n",
                base::format_seconds(comm.seconds).c_str(), comm.alpha_terms);
    bench.metric("allreduce_nodes", static_cast<double>(nodes));
    bench.metric("allreduce_s", comm.seconds);
    bench.metric("allreduce_wire_bytes",
                 static_cast<double>(topo::wire_bytes(compress, param_bytes)));
  }

  // --- Timing-only scalability sweep (--sweep) -----------------------------
  if (sweep) {
    parallel::SweepSeries series;
    series.label = model;
    series.descs_per_cg = descs;
    series.param_bytes = core::total_param_bytes(descs);
    series.options.algo = algo;
    series.options.compression = compress;
    series.options.buckets = 8;
    series.node_counts = {4, 16, 64, 256, 1024, 4096, 40960};
    const hw::CostModel sweep_cost;  // untraced: pricing only
    const double s0 = now_s();
    std::vector<parallel::SweepResult> results;
    try {
      results = parallel::scalability_sweep(sweep_cost, {series},
                                            std::max(threads, 1));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep rejected: %s\n", e.what());
      return 2;
    }
    const double sweep_wall = now_s() - s0;
    std::printf("\ntiming-only scalability sweep (%s, %s, %d buckets):\n",
                parallel::allreduce_algo_name(algo),
                topo::compression_name(compress), series.options.buckets);
    base::TablePrinter st({"nodes", "comm", "speedup", "overlapped",
                           "exposed comm", "overlap speedup"});
    const auto fmt_x = [](double v) {
      char b[32];
      std::snprintf(b, sizeof b, "%.1fx", v);
      return std::string(b);
    };
    for (const parallel::ScalePoint& pt : results.at(0).points) {
      st.add_row({std::to_string(pt.nodes),
                  base::format_seconds(pt.comm_s), fmt_x(pt.speedup),
                  base::format_seconds(pt.overlap_s),
                  base::format_seconds(pt.exposed_comm_s),
                  fmt_x(pt.overlap_speedup)});
    }
    st.print(std::cout);
    std::printf("swept %zu full-machine points in %s wall clock (%d "
                "threads, no replica tensors)\n",
                results.at(0).points.size(),
                base::format_seconds(sweep_wall).c_str(),
                std::max(threads, 1));
    const parallel::ScalePoint& top = results.at(0).points.back();
    bench.metric("sweep_points",
                 static_cast<double>(results.at(0).points.size()));
    bench.metric("sweep_wall_s", sweep_wall);
    bench.metric("sweep_top_nodes", static_cast<double>(top.nodes));
    bench.metric("sweep_top_overlap_s", top.overlap_s);
    bench.metric("sweep_top_speedup", top.overlap_speedup);
  }
  return 0;
}
