// swcaffe_time: the equivalent of `caffe time` — per-layer forward/backward
// timing for a model, reporting both the functional host wall-clock and the
// simulated SW26010 core-group time the cost model assigns to each layer.
//
// Usage:
//   swcaffe_time <net.prototxt | alexnet | vgg16 | vgg19 | resnet50 |
//                 googlenet> [iterations] [batch]
// Zoo models run at reduced resolution functionally; the simulated column
// is computed for the shapes actually instantiated.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "base/table.h"
#include "base/units.h"
#include "core/models.h"
#include "core/net.h"
#include "core/proto.h"
#include "hw/cost_model.h"
#include "swdnn/layer_estimate.h"

using namespace swcaffe;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::NetSpec resolve_model(const std::string& arg, int batch) {
  if (arg == "alexnet") return core::alexnet_bn(batch, 10, 67);
  if (arg == "vgg16") return core::vgg(16, batch, 10, 32);
  if (arg == "vgg19") return core::vgg(19, batch, 10, 32);
  if (arg == "resnet50") return core::resnet50(batch, 10, 64);
  if (arg == "googlenet") return core::googlenet(batch, 10, 64);
  return core::load_net_prototxt(arg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "alexnet";
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;
  const int batch = argc > 3 ? std::atoi(argv[3]) : 2;

  core::NetSpec spec = resolve_model(model, batch);
  core::Net net(spec, 1);
  base::Rng rng(2);
  if (net.has_blob("data")) {
    for (auto& v : net.blob("data")->data()) v = rng.gaussian(0.0f, 1.0f);
  }
  if (net.has_blob("label")) {
    for (auto& v : net.blob("label")->data()) {
      v = static_cast<float>(rng.uniform_int(0, 9));
    }
  }

  // Warm-up pass (plan selection, buffer allocation).
  net.forward_backward();

  const double t0 = now_s();
  for (int i = 0; i < iterations; ++i) net.forward_backward();
  const double host_iter = (now_s() - t0) / iterations;

  hw::CostModel cost;
  base::TablePrinter t({"layer", "type", "SW26010 fwd", "SW26010 bwd"});
  double sw_total = 0.0;
  bool saw_conv = false;
  for (const auto& d : net.describe()) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const auto sw = dnn::estimate_layer_sw(cost, d, first);
    sw_total += sw.total();
    t.add_row({d.name, core::layer_kind_name(d.kind),
               base::format_seconds(sw.fwd_s),
               base::format_seconds(sw.bwd_s)});
  }
  t.print(std::cout);
  std::printf("\nmodel: %s  (batch %d, %d timed iterations)\n",
              spec.name.c_str(), batch, iterations);
  std::printf("host functional iteration:      %s\n",
              base::format_seconds(host_iter).c_str());
  std::printf("simulated SW26010 iteration:    %s (one core group at this "
              "batch)\n",
              base::format_seconds(sw_total).c_str());
  return 0;
}
