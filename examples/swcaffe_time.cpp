// swcaffe_time: the equivalent of `caffe time` — per-layer forward/backward
// timing for a model, reporting both the functional host wall-clock and the
// simulated SW26010 core-group time the cost model assigns to each layer.
//
// Usage:
//   swcaffe_time [--model M] [--iterations N] [--batch B]
//                [--trace=out.json] [--trace-report]
//   swcaffe_time <net.prototxt | alexnet | vgg16 | vgg19 | resnet50 |
//                 googlenet> [iterations] [batch]        (legacy positional)
//
// --trace writes a Chrome-trace JSON of the simulated timeline (open in
// ui.perfetto.dev); --trace-report prints the per-layer aggregate table from
// the same spans. Zoo models run at reduced resolution functionally; the
// simulated column is computed for the shapes actually instantiated.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "base/table.h"
#include "base/units.h"
#include "core/models.h"
#include "core/net.h"
#include "core/proto.h"
#include "hw/cost_model.h"
#include "swdnn/layer_estimate.h"
#include "trace/chrome_trace.h"
#include "trace/report.h"
#include "trace/tracer.h"

using namespace swcaffe;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::NetSpec resolve_model(const std::string& arg, int batch) {
  if (arg == "alexnet") return core::alexnet_bn(batch, 10, 67);
  if (arg == "vgg16") return core::vgg(16, batch, 10, 32);
  if (arg == "vgg19") return core::vgg(19, batch, 10, 32);
  if (arg == "resnet50") return core::resnet50(batch, 10, 64);
  if (arg == "googlenet") return core::googlenet(batch, 10, 64);
  return core::load_net_prototxt(arg);
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "alexnet";
  int iterations = 3;
  int batch = 2;
  std::string trace_path;
  bool trace_report = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--model", v)) {
      model = v;
    } else if (flag_value(argc, argv, i, "--iterations", v)) {
      iterations = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--batch", v)) {
      batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--trace", v)) {
      trace_path = v;
    } else if (std::strcmp(argv[i], "--trace-report") == 0) {
      trace_report = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      // Legacy positional form: model [iterations] [batch].
      switch (positional++) {
        case 0: model = argv[i]; break;
        case 1: iterations = std::atoi(argv[i]); break;
        case 2: batch = std::atoi(argv[i]); break;
        default:
          std::fprintf(stderr, "too many positional arguments\n");
          return 2;
      }
    }
  }

  core::NetSpec spec = resolve_model(model, batch);
  core::Net net(spec, 1);
  base::Rng rng(2);
  if (net.has_blob("data")) {
    for (auto& v : net.blob("data")->data()) v = rng.gaussian(0.0f, 1.0f);
  }
  if (net.has_blob("label")) {
    for (auto& v : net.blob("label")->data()) {
      v = static_cast<float>(rng.uniform_int(0, 9));
    }
  }

  // Warm-up pass (plan selection, buffer allocation).
  net.forward_backward();

  const double t0 = now_s();
  for (int i = 0; i < iterations; ++i) net.forward_backward();
  const double host_iter = (now_s() - t0) / iterations;

  const bool tracing = !trace_path.empty() || trace_report;
  trace::Tracer tracer;
  tracer.set_track_name(0, "cg0");

  hw::CostModel cost;
  if (tracing) cost.set_tracer(&tracer, 0);
  base::TablePrinter t({"layer", "type", "SW26010 fwd", "SW26010 bwd"});
  double sw_total = 0.0;
  bool saw_conv = false;
  for (const auto& d : net.describe()) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const auto sw = dnn::estimate_layer_sw(cost, d, first);
    sw_total += sw.total();
    t.add_row({d.name, core::layer_kind_name(d.kind),
               base::format_seconds(sw.fwd_s),
               base::format_seconds(sw.bwd_s)});
  }
  t.print(std::cout);
  std::printf("\nmodel: %s  (batch %d, %d timed iterations)\n",
              spec.name.c_str(), batch, iterations);
  std::printf("host functional iteration:      %s\n",
              base::format_seconds(host_iter).c_str());
  std::printf("simulated SW26010 iteration:    %s (one core group at this "
              "batch)\n",
              base::format_seconds(sw_total).c_str());

  if (tracing) {
    if (trace_report) {
      std::printf("\nper-layer trace aggregate:\n");
      trace::Report::build(tracer, "layer").print(std::cout);
    }
    if (!trace_path.empty()) {
      trace::save_chrome_trace(tracer, trace_path);
      std::printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }
  return 0;
}
