// swcaffe_train: the Caffe-style command-line trainer. Takes a net
// prototxt and a solver prototxt, trains on the synthetic ImageNet stand-in
// with the full Algorithm 1 stack (prefetch thread, 4 core-group threads,
// gradient averaging), and reports losses plus the simulated SW26010 time.
//
// Usage:
//   swcaffe_train [net.prototxt solver.prototxt] [iterations]
// With no arguments a built-in demo net is used.
#include <cstdio>
#include <cstdlib>

#include "base/units.h"
#include "core/proto.h"
#include "parallel/trainer.h"

using namespace swcaffe;

namespace {

constexpr const char* kDemoNet = R"(
name: "demo-cnn"
input: "data"  input_dim: 4 input_dim: 3 input_dim: 32 input_dim: 32
input: "label" input_dim: 4
layer { name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
        convolution_param { num_output: 16 kernel_size: 3 pad: 1 } }
layer { name: "bn1" type: "BatchNorm" bottom: "conv1" top: "bn1" }
layer { name: "relu1" type: "ReLU" bottom: "bn1" top: "relu1" }
layer { name: "pool1" type: "Pooling" bottom: "relu1" top: "pool1"
        pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layer { name: "conv2" type: "Convolution" bottom: "pool1" top: "conv2"
        convolution_param { num_output: 32 kernel_size: 3 pad: 1 } }
layer { name: "relu2" type: "ReLU" bottom: "conv2" top: "relu2" }
layer { name: "fc" type: "InnerProduct" bottom: "relu2" top: "scores"
        inner_product_param { num_output: 10 } }
layer { name: "loss" type: "SoftmaxWithLoss"
        bottom: "scores" bottom: "label" top: "loss" }
)";

constexpr const char* kDemoSolver = R"(
base_lr: 0.02
momentum: 0.9
weight_decay: 0.0005
lr_policy: "step"
gamma: 0.5
stepsize: 40
type: "SGD"
)";

}  // namespace

int main(int argc, char** argv) {
  core::NetSpec net_spec;
  core::SolverSpec solver_spec;
  int iterations = 60;
  if (argc >= 3) {
    net_spec = core::load_net_prototxt(argv[1]);
    solver_spec = core::load_solver_prototxt(argv[2]);
    if (argc >= 4) iterations = std::atoi(argv[3]);
  } else {
    std::printf("(no prototxt arguments: using the built-in demo net)\n");
    net_spec = core::parse_net_prototxt(kDemoNet);
    solver_spec = core::parse_solver_prototxt(kDemoSolver);
    if (argc == 2) iterations = std::atoi(argv[1]);
  }

  // The dataset must match the net's data blob.
  io::DatasetSpec dataset;
  dataset.num_samples = 8192;
  dataset.classes = 10;
  const auto& data_shape = net_spec.inputs.at(0).second;
  dataset.channels = data_shape.at(1);
  dataset.height = data_shape.at(2);
  dataset.width = data_shape.at(3);

  parallel::TrainOptions options;
  options.max_iter = iterations;
  options.display_every = std::max(1, iterations / 10);
  options.test_every = std::max(1, iterations / 3);

  parallel::Trainer trainer(net_spec, solver_spec, dataset, io::DiskParams{},
                            options);
  std::printf("training '%s' for %d iterations (%zu learnable floats, "
              "node batch %d)\n",
              net_spec.name.c_str(), iterations,
              trainer.net().param_count(), data_shape.at(0) * 4);
  const parallel::TrainStats stats = trainer.run();

  std::printf("\nfinal loss: %.4f\n", stats.final_loss);
  if (!stats.test_accuracy.empty()) {
    std::printf("test accuracy trajectory:");
    for (double a : stats.test_accuracy) std::printf(" %.1f%%", 100.0 * a);
    std::printf("\n");
  }
  std::printf("simulated SW26010 node time for the run: %s "
              "(exposed I/O: %s)\n",
              base::format_seconds(stats.simulated_seconds).c_str(),
              base::format_seconds(stats.simulated_io_seconds).c_str());
  return 0;
}
