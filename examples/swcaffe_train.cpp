// swcaffe_train: the Caffe-style command-line trainer. Takes a net
// prototxt and a solver prototxt, trains on the synthetic ImageNet stand-in
// with the full Algorithm 1 stack (prefetch thread, 4 core-group threads,
// gradient averaging), and reports losses plus the simulated SW26010 time.
//
// Usage:
//   swcaffe_train [net.prototxt solver.prototxt] [iterations]
//                 [--tune] [--plan-cache FILE] [--json OUT]
//                 [--trace=out.json] [--trace-report]
//                 [--faults=SPEC] [--seed N] [--nodes N]
//                 [--buckets N] [--threads N]
//                 [--algo=ALGO] [--compress=none|fp16|int8]
//                 [--checkpoint-every N] [--checkpoint-prefix PATH]
//                 [--timing-only]
// With no (positional) arguments a built-in demo net is used. --tune runs
// the swtune plan search before training (every core-group replica executes
// the tuned strategies, and the simulated time is priced at the tuned
// plans); --plan-cache makes the tuned plans persistent so a second run
// skips the search. --json writes the headline numbers (final loss, tuned
// and default compute per iteration) as a bench_json object. --trace writes
// a Chrome-trace JSON of the simulated run (track "node" plus one track per
// core group; open in ui.perfetto.dev); --trace-report prints the per-layer
// aggregate of the traced compute.
//
// --faults switches to the fault-tolerant distributed trainer (swfault):
// --nodes SSGD replicas train under the seeded fault schedule of SPEC (see
// src/fault/fault_spec.h for the grammar; "none" for a healthy machine),
// with retry/backoff on lossy sends, straggler-aware bounded-staleness
// aggregation, and - with --checkpoint-every - periodic checkpoints that
// crashed runs restart from. --seed overrides the spec's schedule seed.
// --buckets splits the packed gradient into N layer-aligned all-reduce
// buckets (bit-identical weights for any N; the overlap model prices the
// hidden communication) and --threads runs the replica forward/backward
// loop on N host threads (wall-clock only, bit-identical results); both
// apply to the --faults distributed path, as do --algo (the gradient
// all-reduce: rhd-round-robin [default], rhd-adjacent, hierarchical, ring,
// param-server) and --compress (the gradient codec with error feedback:
// none [default], fp16, int8 — deterministic, bit-identical across reruns).
//
// --timing-only prices ONE SSGD iteration on the swsim fast path instead of
// training: a single prototype replica is built (no per-node tensors, no
// gradient floats move) and the iteration's compute, all-reduce and
// overlapped schedule are priced across --nodes nodes with the configured
// --algo/--compress/--buckets. The priced communication is bit-identical to
// what the functional trainer would charge (pinned by tests), so this is
// the cheap way to ask "what would this config cost at 40,960 nodes?".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_json.h"
#include "base/units.h"
#include "core/models.h"
#include "core/proto.h"
#include "fault/ft_ssgd.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "parallel/trainer.h"
#include "trace/chrome_trace.h"
#include "trace/report.h"
#include "trace/tracer.h"

using namespace swcaffe;

namespace {

constexpr const char* kDemoNet = R"(
name: "demo-cnn"
input: "data"  input_dim: 4 input_dim: 3 input_dim: 32 input_dim: 32
input: "label" input_dim: 4
layer { name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
        convolution_param { num_output: 16 kernel_size: 3 pad: 1 } }
layer { name: "bn1" type: "BatchNorm" bottom: "conv1" top: "bn1" }
layer { name: "relu1" type: "ReLU" bottom: "bn1" top: "relu1" }
layer { name: "pool1" type: "Pooling" bottom: "relu1" top: "pool1"
        pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layer { name: "conv2" type: "Convolution" bottom: "pool1" top: "conv2"
        convolution_param { num_output: 32 kernel_size: 3 pad: 1 } }
layer { name: "relu2" type: "ReLU" bottom: "conv2" top: "relu2" }
layer { name: "fc" type: "InnerProduct" bottom: "relu2" top: "scores"
        inner_product_param { num_output: 10 } }
layer { name: "loss" type: "SoftmaxWithLoss"
        bottom: "scores" bottom: "label" top: "loss" }
)";

constexpr const char* kDemoSolver = R"(
base_lr: 0.02
momentum: 0.9
weight_decay: 0.0005
lr_policy: "step"
gamma: 0.5
stepsize: 40
type: "SGD"
)";

/// Pure function of (iter, index, salt) so a restarted run replays the
/// identical batch sequence (the crash/restart bit-identity contract).
float det_uniform(std::uint64_t iter, std::uint64_t idx, std::uint64_t salt) {
  std::uint64_t x =
      iter * 0x9e3779b97f4a7c15ULL + idx * 0xbf58476d1ce4e5b9ULL + salt;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<float>(x >> 40) / static_cast<float>(1 << 24);
}

/// The --faults path: fault-tolerant SSGD over `nodes` replicas under the
/// seeded schedule of `spec`.
int run_fault_tolerant(const core::NetSpec& net_spec,
                       const core::SolverSpec& solver_spec, int iterations,
                       int nodes, int buckets, int threads,
                       parallel::AllreduceAlgo algo,
                       topo::Compression compress, const fault::FaultSpec& spec,
                       int checkpoint_every, const std::string& ckpt_prefix,
                       const std::string& trace_path,
                       bench::JsonBench& bench) {
  fault::FtOptions opt;
  opt.faults = spec;
  opt.ssgd.algo = algo;
  opt.ssgd.compression = compress;
  opt.ssgd.buckets = buckets;
  opt.ssgd.threads = threads;
  opt.checkpoint_every = checkpoint_every;
  opt.checkpoint_prefix = ckpt_prefix;
  fault::FtSsgdTrainer trainer(net_spec, nodes, solver_spec, opt);

  trace::Tracer tracer;
  if (!trace_path.empty()) trainer.set_tracer(&tracer);

  const std::size_t data_per_node =
      trainer.ssgd().node(0).blob("data")->count();
  const std::size_t labels_per_node =
      trainer.ssgd().node(0).blob("label")->count();
  constexpr int kClasses = 10;  // matches the demo net's score width
  const auto p = static_cast<std::size_t>(nodes);
  const fault::BatchFn batch = [&](std::int64_t it, std::vector<float>& data,
                                   std::vector<float>& labels) {
    data.resize(data_per_node * p);
    labels.resize(labels_per_node * p);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = det_uniform(static_cast<std::uint64_t>(it), i, 0x5eedULL);
    }
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = static_cast<float>(static_cast<int>(
          det_uniform(static_cast<std::uint64_t>(it), i, 0x1abe1ULL) *
          kClasses));
    }
  };

  std::printf("fault-tolerant training '%s' on %d nodes for %d iterations "
              "(faults: %s)\n",
              net_spec.name.c_str(), nodes, iterations,
              fault::to_string(spec).c_str());
  const fault::RunResult run =
      fault::run_with_restarts(trainer, batch, iterations);
  const fault::FaultStats& stats = trainer.stats();

  std::printf("\nfinal loss: %.4f after %lld iterations\n", run.final_loss,
              static_cast<long long>(run.iters));
  std::printf("simulated cluster time: %s\n",
              base::format_seconds(run.sim_seconds).c_str());
  std::printf("faults injected: %lld drops, %lld dups, %lld delays, "
              "%lld straggler-iters, %lld crashes\n",
              static_cast<long long>(stats.drops),
              static_cast<long long>(stats.duplicates),
              static_cast<long long>(stats.delays),
              static_cast<long long>(stats.straggler_iters),
              static_cast<long long>(stats.crashes));
  std::printf("recovery: %lld retries, %lld escalations, %d restarts\n",
              static_cast<long long>(stats.retries),
              static_cast<long long>(stats.escalations), run.restarts);
  if (!trainer.last_checkpoint().empty()) {
    std::printf("latest checkpoint: %s\n", trainer.last_checkpoint().c_str());
  }

  bench.metric("final_loss", run.final_loss);
  bench.metric("simulated_run_s", run.sim_seconds);
  bench.metric("fault_drops", static_cast<double>(stats.drops));
  bench.metric("fault_retries", static_cast<double>(stats.retries));
  bench.metric("fault_escalations", static_cast<double>(stats.escalations));
  bench.metric("fault_straggler_iters",
               static_cast<double>(stats.straggler_iters));
  bench.metric("fault_restarts", static_cast<double>(run.restarts));

  if (!trace_path.empty()) {
    trace::save_chrome_trace(tracer, trace_path);
    std::printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool trace_report = false;
  bool tune = false;
  std::string plan_cache;
  std::string faults;
  bool have_faults = false;
  std::uint64_t seed = 0;
  bool have_seed = false;
  int nodes = 4;
  int buckets = 1;
  int threads = 1;
  parallel::AllreduceAlgo algo = parallel::AllreduceAlgo::kRhdRoundRobin;
  topo::Compression compress = topo::Compression::kNone;
  int checkpoint_every = 0;
  std::string checkpoint_prefix = "swcaffe_train.ckpt";
  bool timing_only = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-report") == 0) {
      trace_report = true;
    } else if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
    } else if (std::strcmp(argv[i], "--timing-only") == 0) {
      timing_only = true;
    } else if (std::strncmp(argv[i], "--plan-cache=", 13) == 0) {
      plan_cache = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--plan-cache") == 0 && i + 1 < argc) {
      plan_cache = argv[++i];
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      faults = argv[i] + 9;
      have_faults = true;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults = argv[++i];
      have_faults = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
      have_seed = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      have_seed = true;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes = std::atoi(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--buckets=", 10) == 0) {
      buckets = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--buckets") == 0 && i + 1 < argc) {
      buckets = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      if (!parallel::allreduce_algo_from_name(argv[i] + 7, &algo)) {
        std::fprintf(stderr,
                     "unknown --algo '%s' (rhd-adjacent, rhd-round-robin, "
                     "hierarchical, ring, param-server)\n",
                     argv[i] + 7);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--compress=", 11) == 0) {
      if (!topo::compression_from_name(argv[i] + 11, &compress)) {
        std::fprintf(stderr, "unknown --compress '%s' (none, fp16, int8)\n",
                     argv[i] + 11);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--checkpoint-every=", 19) == 0) {
      checkpoint_every = std::atoi(argv[i] + 19);
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
               i + 1 < argc) {
      checkpoint_every = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--checkpoint-prefix=", 20) == 0) {
      checkpoint_prefix = argv[i] + 20;
    } else if (std::strcmp(argv[i], "--checkpoint-prefix") == 0 &&
               i + 1 < argc) {
      checkpoint_prefix = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0 ||
               std::strcmp(argv[i], "--json") == 0) {
      // Value re-parsed by JsonBench; consume it so it isn't positional.
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) ++i;
    } else {
      positional.push_back(argv[i]);
    }
  }
  bench::JsonBench bench("swcaffe_train", argc, argv);

  core::NetSpec net_spec;
  core::SolverSpec solver_spec;
  int iterations = 60;
  if (positional.size() >= 2) {
    net_spec = core::load_net_prototxt(positional[0]);
    solver_spec = core::load_solver_prototxt(positional[1]);
    if (positional.size() >= 3) iterations = std::atoi(positional[2]);
  } else {
    std::printf("(no prototxt arguments: using the built-in demo net)\n");
    net_spec = core::parse_net_prototxt(kDemoNet);
    solver_spec = core::parse_solver_prototxt(kDemoSolver);
    if (positional.size() == 1) iterations = std::atoi(positional[0]);
  }

  if (timing_only) {
    if (have_faults) {
      std::fprintf(stderr, "--timing-only prices a healthy iteration; it "
                           "cannot be combined with --faults\n");
      return 2;
    }
    parallel::SsgdOptions so;
    so.algo = algo;
    so.compression = compress;
    so.buckets = buckets;
    so.timing_only = true;
    parallel::SsgdTrainer trainer(net_spec, nodes, solver_spec, so, 1);
    const hw::CostModel cost;
    const parallel::TimedIteration it =
        trainer.price_iteration(cost, core::describe_net_spec(net_spec));
    std::printf("timing-only pricing of '%s' across %d nodes "
                "(%s, %s, %d buckets):\n",
                net_spec.name.c_str(), nodes,
                parallel::allreduce_algo_name(algo),
                topo::compression_name(compress), trainer.num_buckets());
    std::printf("  compute (fwd+bwd):     %s\n",
                base::format_seconds(it.comp_s).c_str());
    std::printf("  all-reduce (serial):   %s (%d startups)\n",
                base::format_seconds(it.comm.seconds).c_str(),
                it.comm.alpha_terms);
    std::printf("  serial iteration:      %s\n",
                base::format_seconds(it.serial_s).c_str());
    std::printf("  overlapped iteration:  %s (exposed comm %s)\n",
                base::format_seconds(it.overlap.finish_s).c_str(),
                base::format_seconds(it.overlap.exposed_comm_s).c_str());
    bench.metric("timed_nodes", static_cast<double>(nodes));
    bench.metric("timed_comp_s", it.comp_s);
    bench.metric("timed_comm_s", it.comm.seconds);
    bench.metric("timed_serial_s", it.serial_s);
    bench.metric("timed_overlap_s", it.overlap.finish_s);
    bench.metric("timed_exposed_comm_s", it.overlap.exposed_comm_s);
    return 0;
  }

  if (have_faults) {
    fault::FaultSpec spec = fault::parse_fault_spec(faults);
    if (have_seed) spec.seed = seed;
    return run_fault_tolerant(net_spec, solver_spec, iterations, nodes,
                              buckets, threads, algo, compress, spec,
                              checkpoint_every, checkpoint_prefix, trace_path,
                              bench);
  }

  // The dataset must match the net's data blob.
  io::DatasetSpec dataset;
  dataset.num_samples = 8192;
  dataset.classes = 10;
  const auto& data_shape = net_spec.inputs.at(0).second;
  dataset.channels = data_shape.at(1);
  dataset.height = data_shape.at(2);
  dataset.width = data_shape.at(3);

  parallel::TrainOptions options;
  options.max_iter = iterations;
  options.display_every = std::max(1, iterations / 10);
  options.test_every = std::max(1, iterations / 3);
  options.tune = tune;
  options.plan_cache = plan_cache;

  trace::Tracer tracer;
  const bool tracing = !trace_path.empty() || trace_report;
  if (tracing) options.tracer = &tracer;

  parallel::Trainer trainer(net_spec, solver_spec, dataset, io::DiskParams{},
                            options);
  std::printf("training '%s' for %d iterations (%zu learnable floats, "
              "node batch %d)\n",
              net_spec.name.c_str(), iterations,
              trainer.net().param_count(), data_shape.at(0) * 4);
  const parallel::TrainStats stats = trainer.run();

  std::printf("\nfinal loss: %.4f\n", stats.final_loss);
  if (!stats.test_accuracy.empty()) {
    std::printf("test accuracy trajectory:");
    for (double a : stats.test_accuracy) std::printf(" %.1f%%", 100.0 * a);
    std::printf("\n");
  }
  std::printf("simulated SW26010 node time for the run: %s "
              "(exposed I/O: %s)\n",
              base::format_seconds(stats.simulated_seconds).c_str(),
              base::format_seconds(stats.simulated_io_seconds).c_str());
  if (tune) {
    const double def = stats.default_compute_per_iter_seconds;
    const double tuned = stats.compute_per_iter_seconds;
    std::printf("swtune compute per iteration: %s tuned vs %s default "
                "(%.2f%% faster)\n",
                base::format_seconds(tuned).c_str(),
                base::format_seconds(def).c_str(),
                def > 0 ? 100.0 * (def - tuned) / def : 0.0);
  }
  bench.metric("final_loss", stats.final_loss);
  bench.metric("simulated_run_s", stats.simulated_seconds);
  bench.metric("compute_per_iter_default_s",
               stats.default_compute_per_iter_seconds);
  bench.metric("compute_per_iter_s", stats.compute_per_iter_seconds);
  if (tune && stats.compute_per_iter_seconds > 0) {
    bench.metric("tune_speedup", stats.default_compute_per_iter_seconds /
                                     stats.compute_per_iter_seconds);
  }

  if (tracing) {
    if (trace_report) {
      std::printf("\nper-layer trace aggregate (all iterations):\n");
      trace::Report::build(tracer, "layer").print(std::cout);
    }
    if (!trace_path.empty()) {
      trace::save_chrome_trace(tracer, trace_path);
      std::printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                  trace_path.c_str());
    }
  }
  return 0;
}
