// Quickstart: define a small CNN with the swCaffe spec API, train it
// functionally on the synthetic data layer, and inspect what the SW26010
// auto-tuner decided for each convolution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/layers.h"
#include "core/net.h"
#include "core/solver.h"

using namespace swcaffe;

int main() {
  // --- 1. Describe the network (the in-C++ equivalent of a prototxt) -------
  core::NetSpec spec;
  spec.name = "quickstart-cnn";
  spec.layers.push_back(
      core::data_spec("data", "data", "label", {32, 8, 12, 12}, 4));
  spec.layers.push_back(core::conv_spec("conv1", "data", "conv1", 16, 3, 1, 1));
  spec.layers.push_back(core::bn_spec("bn1", "conv1", "bn1"));
  spec.layers.push_back(core::relu_spec("relu1", "bn1", "relu1"));
  spec.layers.push_back(core::pool_spec("pool1", "relu1", "pool1",
                                        core::PoolMethod::kMax, 2, 2));
  spec.layers.push_back(core::conv_spec("conv2", "pool1", "conv2", 32, 3, 1, 1));
  spec.layers.push_back(core::relu_spec("relu2", "conv2", "relu2"));
  spec.layers.push_back(core::ip_spec("fc", "relu2", "scores", 4));
  spec.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));

  // --- 2. Instantiate and train --------------------------------------------
  core::Net net(spec, /*seed=*/42);
  core::SolverSpec solver_spec;
  solver_spec.base_lr = 0.05f;
  solver_spec.momentum = 0.9f;
  solver_spec.weight_decay = 5e-4f;
  solver_spec.policy = core::LrPolicy::kStep;
  solver_spec.step_size = 150;
  core::SgdSolver solver(net, solver_spec);

  std::printf("training %s (%zu learnable floats)\n", spec.name.c_str(),
              net.param_count());
  for (int iter = 0; iter < 200; ++iter) {
    const double loss = solver.step();
    if (iter % 25 == 0 || iter == 199) {
      std::printf("  iter %3d  lr %.4f  loss %.4f\n", iter,
                  solver.current_lr(), loss);
    }
  }

  // --- 3. Evaluate ------------------------------------------------------------
  net.set_phase(core::Phase::kTest);
  double acc = 0.0;
  const int eval_batches = 10;
  for (int i = 0; i < eval_batches; ++i) {
    net.forward();
    // Count argmax hits on the scores blob against the labels.
    const auto* scores = net.blob("scores");
    const auto* labels = net.blob("label");
    const int batch = scores->dim(0);
    const int classes = static_cast<int>(scores->count()) / batch;
    int hits = 0;
    for (int b = 0; b < batch; ++b) {
      int best = 0;
      for (int c = 1; c < classes; ++c) {
        if (scores->data()[b * classes + c] > scores->data()[b * classes + best])
          best = c;
      }
      hits += best == static_cast<int>(labels->data()[b]);
    }
    acc += static_cast<double>(hits) / batch;
  }
  std::printf("test accuracy over %d batches: %.1f%% (4 classes, chance "
              "25%%)\n",
              eval_batches, 100.0 * acc / eval_batches);

  // --- 4. What did the SW26010 auto-tuner pick? ------------------------------
  for (const char* name : {"conv1", "conv2"}) {
    auto* conv = dynamic_cast<core::ConvLayer*>(net.layer(name));
    std::printf("%s: forward plan = %s, backward plan = %s\n", name,
                conv->uses_implicit_forward() ? "implicit (swDNN direct)"
                                              : "explicit (im2col + GEMM)",
                conv->uses_implicit_backward() ? "implicit" : "explicit");
  }
  return 0;
}
