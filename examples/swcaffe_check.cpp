// swcaffe_check: static plan linter for SW26010 kernel plans (swcheck).
//
// Walks every layer of a network description and verifies, without running a
// single simulated cycle, that the plans the simulator would execute respect
// the hardware contracts: per-CPE LDM budgets (incl. double-buffering), DMA
// legality and byte conservation against the cost model, deadlock-free RLC
// schedules, and the implicit-convolution applicability rules of Table II.
//
// Usage:
//   swcaffe_check [--model M] [--batch B] [--classes C] [--image R]
//                 [--nodes N] [--pedantic] [--quiet]
//   swcaffe_check --paper         # all paper-scale AlexNet/VGG configs
//   swcaffe_check --list-codes    # print the diagnostic code reference
//   swcaffe_check <net.prototxt>  # lint a prototxt model
//
// Models: alexnet | alexnet-orig | vgg16 | vgg19 | resnet50 | googlenet or a
// prototxt path. Exit status: 0 when no errors (warnings allowed), 1 when
// any error-severity diagnostic fired, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "check/verify.h"
#include "core/models.h"
#include "core/proto.h"
#include "hw/cost_model.h"

using namespace swcaffe;

namespace {

struct NamedConfig {
  std::string label;
  std::vector<core::LayerDesc> descs;
};

core::NetSpec resolve_model(const std::string& arg, int batch, int classes,
                            int image) {
  if (arg == "alexnet") return core::alexnet_bn(batch, classes, image);
  if (arg == "alexnet-orig") {
    return core::alexnet_original(batch, classes, image);
  }
  if (arg == "vgg16") return core::vgg(16, batch, classes, image);
  if (arg == "vgg19") return core::vgg(19, batch, classes, image);
  if (arg == "resnet50") return core::resnet50(batch, classes, image);
  if (arg == "googlenet") return core::googlenet(batch, classes, image);
  return core::load_net_prototxt(arg);
}

/// The paper's evaluated configurations (Sec. VI / Tables II-III): the
/// acceptance bar is zero errors on every one of them.
std::vector<NamedConfig> paper_configs() {
  std::vector<NamedConfig> configs;
  configs.push_back({"alexnet-bn batch 256 @227",
                     core::describe_net_spec(core::alexnet_bn(256, 1000, 227))});
  configs.push_back({"alexnet-bn batch 128 @227",
                     core::describe_net_spec(core::alexnet_bn(128, 1000, 227))});
  configs.push_back({"vgg16 batch 128 @224",
                     core::describe_net_spec(core::vgg(16, 128, 1000, 224))});
  configs.push_back({"vgg16 batch 32 @224",
                     core::describe_net_spec(core::vgg(16, 32, 1000, 224))});
  configs.push_back({"vgg19 batch 128 @224",
                     core::describe_net_spec(core::vgg(19, 128, 1000, 224))});
  return configs;
}

void print_codes() {
  using check::Code;
  static const Code kAll[] = {
      Code::kLdmOverflow,      Code::kLdmDoubleBuffer, Code::kDmaEmptyRun,
      Code::kDmaMisaligned,    Code::kDmaOverlap,      Code::kDmaBytesMismatch,
      Code::kDmaShortRun,      Code::kRlcDeadlock,     Code::kRlcIllegalPair,
      Code::kRlcUnmatched,     Code::kImplicitUnsupported,
      Code::kImplicitDegraded, Code::kPlanInconsistent, Code::kGeomInvalid,
      Code::kRetryBufferOverflow, Code::kRetryTimeout,
      Code::kBucketOrder,      Code::kBucketResendOverflow,
  };
  static const char* kDesc[] = {
      "per-CPE working set exceeds the 64 KB LDM",
      "plan fits single-buffered only; DMA cannot overlap compute",
      "zero-length DMA run or zero-byte transfer planned",
      "DMA run/stride not a multiple of the element size",
      "DMA stride shorter than the run; transfers overlap",
      "plan bytes disagree with what the cost model charges",
      "DMA runs below the 256 B bandwidth knee (pedantic only)",
      "cycle in the RLC send/receive dependency graph",
      "P2P between CPEs sharing neither row nor column",
      "receive without a matching send, or message never drained",
      "implicit conv outside its support predicate (Table II dash)",
      "implicit conv below the 64-channel efficiency knee",
      "auto-tuner choice contradicts the support predicate",
      "invalid geometry (empty output, indivisible groups, ...)",
      "resilient-send resend buffer cannot hold the round / exceeds LDM",
      "retry ladder cannot finish before the escalation timeout",
      "all-reduce buckets do not tile the layers in order / lose bytes",
      "a bucket's buffered round exceeds the resend buffer / LDM",
  };
  std::printf("%-22s %s\n", "code", "meaning");
  for (std::size_t i = 0; i < std::size(kAll); ++i) {
    std::printf("%-22s %s\n", check::code_name(kAll[i]), kDesc[i]);
  }
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "alexnet";
  int batch = 256;
  int classes = 1000;
  int image = 227;
  int nodes = 0;
  bool paper = false;
  bool pedantic = false;
  bool quiet = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--model", v)) {
      model = v;
    } else if (flag_value(argc, argv, i, "--batch", v)) {
      batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--classes", v)) {
      classes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--image", v)) {
      image = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--nodes", v)) {
      nodes = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(argv[i], "--pedantic") == 0) {
      pedantic = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--list-codes") == 0) {
      print_codes();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else if (positional++ == 0) {
      model = argv[i];
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      return 2;
    }
  }

  check::Options opts;
  opts.pedantic = pedantic;
  const hw::CostModel cost;

  std::vector<NamedConfig> configs;
  if (paper) {
    configs = paper_configs();
  } else {
    core::NetSpec spec = resolve_model(model, batch, classes, image);
    configs.push_back({spec.name + " batch " + std::to_string(batch) + " @" +
                           std::to_string(image),
                       core::describe_net_spec(spec)});
  }

  int errors = 0, warnings = 0;
  for (const NamedConfig& config : configs) {
    check::Report report = check::verify_net(cost, config.descs, opts);
    if (nodes > 0) {
      report.merge(check::verify_allreduce("rhd", nodes, opts));
      report.merge(check::verify_allreduce("ring", nodes, opts));
    }
    errors += report.error_count();
    warnings += report.warning_count();
    if (!quiet && !report.empty()) report.print(std::cout);
    std::printf("%-28s %zu layer(s): %s\n", config.label.c_str(),
                config.descs.size(), report.summary().c_str());
  }
  if (configs.size() > 1) {
    std::printf("total: %d error(s), %d warning(s)\n", errors, warnings);
  }
  return errors > 0 ? 1 : 0;
}
