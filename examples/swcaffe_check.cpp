// swcaffe_check: static plan linter for SW26010 kernel plans (swcheck) and
// whole-timeline schedules (swsched).
//
// Per-plan mode walks every layer of a network description and verifies,
// without running a single simulated cycle, that the plans the simulator
// would execute respect the hardware contracts: per-CPE LDM budgets (incl.
// double-buffering), DMA legality and byte conservation against the cost
// model, deadlock-free RLC schedules, and the implicit-convolution
// applicability rules of Table II.
//
// Timeline mode (--timeline) lifts the same discipline to whole
// discrete-event schedules: it builds the overlapped bucketed all-reduce
// timelines (k = 1..8 buckets), a short dynamic-batching serving run per
// load multiple, the fault-replay retry ladder and the composed cross-node
// collective graph for the model, runs the five swsched passes on each and
// prints one diagnostic table. `--timeline=<file.json>` verifies exported
// graphs instead of live ones.
//
// Run with --help for flags and the exit-code contract.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "base/log.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "check/timeline_io.h"
#include "check/verify.h"
#include "core/models.h"
#include "core/proto.h"
#include "fault/resilient_comm.h"
#include "hw/cost_model.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sched/workload.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "swdnn/layer_estimate.h"
#include "topo/allreduce.h"
#include "topo/overlap.h"

using namespace swcaffe;

namespace {

// Exit-code contract (also printed by --help and documented in README.md):
//   0  silent (per-plan mode: no errors — warnings allowed;
//      timeline mode: no diagnostics at all)
//   1  diagnostics found (per-plan mode: at least one error;
//      timeline mode: any error or warning)
//   2  usage error (unknown flag, missing value, ...)
//   3  input could not be parsed (prototxt or timeline JSON)
enum ExitCode {
  kExitSilent = 0,
  kExitDiagnostics = 1,
  kExitUsage = 2,
  kExitParseFailure = 3,
};

struct NamedConfig {
  std::string label;
  std::vector<core::LayerDesc> descs;
};

core::NetSpec resolve_model(const std::string& arg, int batch, int classes,
                            int image) {
  if (arg == "alexnet") return core::alexnet_bn(batch, classes, image);
  if (arg == "alexnet-orig") {
    return core::alexnet_original(batch, classes, image);
  }
  if (arg == "vgg16") return core::vgg(16, batch, classes, image);
  if (arg == "vgg19") return core::vgg(19, batch, classes, image);
  if (arg == "resnet50") return core::resnet50(batch, classes, image);
  if (arg == "googlenet") return core::googlenet(batch, classes, image);
  return core::load_net_prototxt(arg);
}

/// Inference-geometry model factory for the serving timelines (forward
/// only, no loss layer); empty for prototxt paths, which skip the serving
/// sweep.
serve::ModelFn serving_model(const std::string& name) {
  if (name == "alexnet" || name == "alexnet-orig") {
    return [](int b) { return core::alexnet_bn(b, 1000, 227, false); };
  }
  if (name == "vgg16") {
    return [](int b) { return core::vgg(16, b, 1000, 224, false); };
  }
  if (name == "vgg19") {
    return [](int b) { return core::vgg(19, b, 1000, 224, false); };
  }
  if (name == "resnet50") {
    return [](int b) { return core::resnet50(b, 1000, 224, false); };
  }
  if (name == "googlenet") {
    return [](int b) { return core::googlenet(b, 1000, 224, false); };
  }
  return {};
}

/// The paper's evaluated configurations (Sec. VI / Tables II-III): the
/// acceptance bar is zero errors on every one of them.
std::vector<NamedConfig> paper_configs() {
  std::vector<NamedConfig> configs;
  configs.push_back({"alexnet-bn batch 256 @227",
                     core::describe_net_spec(core::alexnet_bn(256, 1000, 227))});
  configs.push_back({"alexnet-bn batch 128 @227",
                     core::describe_net_spec(core::alexnet_bn(128, 1000, 227))});
  configs.push_back({"vgg16 batch 128 @224",
                     core::describe_net_spec(core::vgg(16, 128, 1000, 224))});
  configs.push_back({"vgg16 batch 32 @224",
                     core::describe_net_spec(core::vgg(16, 32, 1000, 224))});
  configs.push_back({"vgg19 batch 128 @224",
                     core::describe_net_spec(core::vgg(19, 128, 1000, 224))});
  return configs;
}

void print_codes() {
  using check::Code;
  static const Code kAll[] = {
      Code::kLdmOverflow,      Code::kLdmDoubleBuffer, Code::kDmaEmptyRun,
      Code::kDmaMisaligned,    Code::kDmaOverlap,      Code::kDmaBytesMismatch,
      Code::kDmaShortRun,      Code::kRlcDeadlock,     Code::kRlcIllegalPair,
      Code::kRlcUnmatched,     Code::kImplicitUnsupported,
      Code::kImplicitDegraded, Code::kPlanInconsistent, Code::kGeomInvalid,
      Code::kRetryBufferOverflow, Code::kRetryTimeout,
      Code::kBucketOrder,      Code::kBucketResendOverflow,
      Code::kTimelineOverlap,  Code::kTimelineRace,    Code::kTimelineBytes,
      Code::kTimelineCausality, Code::kTimelineDeadline, Code::kTimelineCycle,
      Code::kTimelineGang,
  };
  static const char* kDesc[] = {
      "per-CPE working set exceeds the 64 KB LDM",
      "plan fits single-buffered only; DMA cannot overlap compute",
      "zero-length DMA run or zero-byte transfer planned",
      "DMA run/stride not a multiple of the element size",
      "DMA stride shorter than the run; transfers overlap",
      "plan bytes disagree with what the cost model charges",
      "DMA runs below the 256 B bandwidth knee (pedantic only)",
      "cycle in the RLC send/receive dependency graph",
      "P2P between CPEs sharing neither row nor column",
      "receive without a matching send, or message never drained",
      "implicit conv outside its support predicate (Table II dash)",
      "implicit conv below the 64-channel efficiency knee",
      "auto-tuner choice contradicts the support predicate",
      "invalid geometry (empty output, indivisible groups, ...)",
      "resilient-send resend buffer cannot hold the round / exceeds LDM",
      "retry ladder cannot finish before the escalation timeout",
      "all-reduce buckets do not tile the layers in order / lose bytes",
      "a bucket's buffered round exceeds the resend buffer / LDM",
      "two intervals double-book one exclusive timeline resource",
      "conflicting state accesses with no happens-before path",
      "timeline events lose or invent cost-ledger bytes",
      "a consumer starts before its producer finishes",
      "proven completion exceeds the SLO / escalation deadline",
      "happens-before cycle: the schedule deadlocks",
      "a gang's events do not start/stop together (co-scheduling broken)",
  };
  std::printf("%-22s %s\n", "code", "meaning");
  for (std::size_t i = 0; i < std::size(kAll); ++i) {
    std::printf("%-22s %s\n", check::code_name(kAll[i]), kDesc[i]);
  }
}

void print_help() {
  std::printf(
      "swcaffe_check: static plan and timeline verifier\n"
      "\n"
      "usage:\n"
      "  swcaffe_check [--model M] [--batch B] [--classes C] [--image R]\n"
      "                [--nodes N] [--pedantic] [--quiet]\n"
      "  swcaffe_check --paper                 # all paper-scale configs\n"
      "  swcaffe_check --list-codes            # diagnostic code reference\n"
      "  swcaffe_check <net.prototxt>          # lint a prototxt model\n"
      "  swcaffe_check --timeline [...]        # swsched: build + verify the\n"
      "                                        # model's live schedules\n"
      "  swcaffe_check --timeline=<file.json>  # verify exported graphs\n"
      "  swcaffe_check --timeline --export-timeline out.json\n"
      "                                        # also write the graphs as JSON\n"
      "\n"
      "models: alexnet | alexnet-orig | vgg16 | vgg19 | resnet50 | googlenet\n"
      "        or a prototxt path\n"
      "\n"
      "exit codes:\n"
      "  0  silent (plan mode: no errors, warnings allowed;\n"
      "     timeline mode: no diagnostics at all)\n"
      "  1  diagnostics found (plan mode: >= 1 error;\n"
      "     timeline mode: any error or warning)\n"
      "  2  usage error\n"
      "  3  input could not be parsed (prototxt or timeline JSON)\n");
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(kExitUsage);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

/// Builds the live swsched graphs of one model: overlapped all-reduce at
/// k = 1..8 buckets, a short serving run per load multiple (zoo models
/// only), the fault-replay retry ladder, and the composed cross-node
/// collective of the bucketed schedule.
std::vector<check::TimelineGraph> build_live_timelines(
    const hw::CostModel& cost, const std::string& model,
    const core::NetSpec& spec, int batch, int nodes) {
  std::vector<check::TimelineGraph> graphs;
  const std::vector<core::LayerDesc> descs = core::describe_net_spec(spec);
  const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost, descs);
  std::vector<std::int64_t> layer_bytes;
  std::int64_t param_bytes = 0;
  for (const auto& d : descs) {
    layer_bytes.push_back(d.param_bytes());
    param_bytes += d.param_bytes();
  }
  const std::string label = model + " batch " + std::to_string(batch);

  topo::Topology topo;
  topo.num_nodes = nodes;
  const topo::NetParams net;
  const auto bucket_cost = [&](std::int64_t bytes) {
    return topo::cost_rhd(bytes, topo, net, topo::Placement::kAdjacent);
  };

  // Overlapped bucketed all-reduce, serial (k=1) through k=8.
  for (int k = 1; k <= 8; ++k) {
    const std::vector<topo::GradientBucket> buckets =
        topo::make_buckets(layer_bytes, k);
    const topo::OverlapTimeline overlap =
        topo::schedule_overlap(buckets, tl.bwd_s, tl.total_s, bucket_cost);
    graphs.push_back(check::timeline_from_overlap(
        label + " overlap k=" + std::to_string(k), tl.bwd_s, tl.total_s,
        overlap, param_bytes));
  }

  // The composed cross-node collective: every bucket's all-reduce schedule
  // run back to back on the cluster (the global FIFO/cycle check that no
  // per-plan rule sees).
  {
    const std::vector<topo::GradientBucket> buckets =
        topo::make_buckets(layer_bytes, 4);
    std::vector<check::CommSchedule> phases;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      phases.push_back(check::rhd_allreduce_schedule(nodes));
    }
    graphs.push_back(
        check::timeline_from_comm(label + " rhd x" +
                                      std::to_string(buckets.size()) +
                                      " buckets @" + std::to_string(nodes) +
                                      " nodes",
                                  phases));
  }

  // Fault replay: the worst-case retry ladder of the resilient send path at
  // its default policy, two consecutive rounds.
  {
    const fault::RetryPolicy policy;
    check::RetryPlan plan;
    plan.name = label + " ft-resend";
    plan.round_bytes =
        std::min(param_bytes, static_cast<std::int64_t>(net.eager_limit));
    plan.resend_buffer_bytes = policy.resend_buffer_bytes;
    plan.max_attempts = policy.max_attempts;
    plan.backoff_base_s = policy.backoff_base_s;
    plan.round_time_s =
        net.alpha + static_cast<double>(plan.round_bytes) / net.link_bw;
    plan.timeout_s = policy.timeout_s;
    graphs.push_back(check::timeline_from_retry(plan, /*rounds=*/2));
  }

  // Serving under dynamic batching at 0.5x .. 8x the single-request service
  // rate (zoo models only — a prototxt has no inference factory). The short
  // Poisson runs exercise admission, queueing and batch coalescing; their
  // timelines re-derive the SLO admission bound from the records.
  if (serve::ModelFn fn = serving_model(model)) {
    serve::EngineOptions eopts;
    eopts.max_batch = 8;
    serve::InferenceEngine engine(cost, model, std::move(fn), eopts);
    const double f1 = engine.batch_time(1);
    for (const double load : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      serve::ArrivalSpec aspec;
      aspec.rate = load / f1;
      aspec.duration_s = 60.0 * f1;
      aspec.seed = 7;
      serve::ServeOptions sopts;
      sopts.batcher.max_batch = 8;
      sopts.batcher.max_delay_s = 0.5 * f1;
      sopts.admission.enabled = true;
      sopts.admission.slo_s = 20.0 * f1;
      const serve::ServeResult result = serve::simulate_serving(
          engine, serve::generate_arrivals(aspec), sopts);
      check::ServingContract contract;
      contract.slo_s = sopts.admission.slo_s;
      contract.max_delay_s = sopts.batcher.max_delay_s;
      contract.max_batch = sopts.batcher.max_batch;
      contract.max_batch_forward_s = engine.batch_time(8);
      contract.admission = true;
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), " serve %.1fx", load);
      graphs.push_back(check::timeline_from_serving(
          model + suffix, result.requests, result.batches, contract));
    }
  }
  return graphs;
}

/// Builds the live cluster-schedule timelines: a burst of model-zoo jobs
/// gang-scheduled onto an 8-node partition under each policy, with
/// preemption and elastic resizing in play. Every node is an exclusive
/// resource and every dispatch a gang — double-booking, broken
/// co-scheduling and lost iterations all surface as timeline errors.
std::vector<check::TimelineGraph> build_schedule_timelines(
    const hw::CostModel& cost) {
  sched::WorkloadSpec wspec;
  wspec.arrivals.kind = serve::ArrivalKind::kTrace;
  wspec.arrivals.trace = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
  wspec.seed = 11;
  wspec.widths = {2, 4};
  wspec.min_iters = 5;
  wspec.max_iters = 20;
  const std::vector<sched::JobSpec> jobs = sched::generate_workload(wspec);
  std::vector<check::TimelineGraph> graphs;
  for (const sched::Policy policy :
       {sched::Policy::kFifo, sched::Policy::kPriority,
        sched::Policy::kFairShare}) {
    sched::SchedOptions sopts;
    sopts.cluster_nodes = 8;
    sopts.supernode_size = 4;
    sopts.policy = policy;
    sopts.quantum_iters = 5;
    const sched::ScheduleResult result =
        sched::simulate_schedule(cost, jobs, sopts);
    graphs.push_back(check::timeline_from_schedule(
        std::string("cluster ") + sched::policy_name(policy) + " schedule",
        sopts.cluster_nodes, result.spans, result.jobs));
  }
  return graphs;
}

/// Verifies each graph, prints the diagnostic table and every diagnostic
/// line (unless quiet). Returns the process exit code.
int run_timeline_mode(const std::vector<check::TimelineGraph>& graphs,
                      const check::Options& opts, bool quiet,
                      const std::string& export_path) {
  if (!export_path.empty()) {
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
      return kExitUsage;
    }
    out << check::timelines_to_json(graphs);
  }
  int errors = 0, warnings = 0;
  std::printf("%-36s %7s %7s %7s %9s  %s\n", "timeline", "events", "edges",
              "errors", "warnings", "status");
  for (const check::TimelineGraph& g : graphs) {
    const check::Report report = check::verify_timeline(g, opts);
    errors += report.error_count();
    warnings += report.warning_count();
    std::printf("%-36s %7zu %7zu %7d %9d  %s\n", g.name.c_str(),
                g.events.size(), g.edges.size(), report.error_count(),
                report.warning_count(),
                report.empty() ? "silent"
                               : (report.ok() ? "warnings" : "FAIL"));
    if (!quiet && !report.empty()) report.print(std::cout);
  }
  std::printf("total: %d error(s), %d warning(s) across %zu timeline(s)\n",
              errors, warnings, graphs.size());
  return errors + warnings > 0 ? kExitDiagnostics : kExitSilent;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "alexnet";
  int batch = 256;
  int classes = 1000;
  int image = 227;
  int nodes = 0;
  bool paper = false;
  bool pedantic = false;
  bool quiet = false;
  bool timeline = false;
  std::string timeline_file;
  std::string export_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--model", v)) {
      model = v;
    } else if (flag_value(argc, argv, i, "--batch", v)) {
      batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--classes", v)) {
      classes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--image", v)) {
      image = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--nodes", v)) {
      nodes = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (flag_value(argc, argv, i, "--timeline", v)) {
      timeline = true;
      timeline_file = v;
    } else if (flag_value(argc, argv, i, "--export-timeline", v)) {
      export_path = v;
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(argv[i], "--pedantic") == 0) {
      pedantic = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--list-codes") == 0) {
      print_codes();
      return kExitSilent;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_help();
      return kExitSilent;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", argv[i]);
      return kExitUsage;
    } else if (positional++ == 0) {
      model = argv[i];
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      return kExitUsage;
    }
  }

  check::Options opts;
  opts.pedantic = pedantic;
  const hw::CostModel cost;

  // --- Timeline mode: exported graphs from a JSON file ----------------------
  if (timeline && !timeline_file.empty()) {
    std::ifstream in(timeline_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", timeline_file.c_str());
      return kExitParseFailure;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<check::TimelineGraph> graphs;
    std::string error;
    if (!check::timelines_from_json(buf.str(), &graphs, &error)) {
      std::fprintf(stderr, "%s: %s\n", timeline_file.c_str(), error.c_str());
      return kExitParseFailure;
    }
    return run_timeline_mode(graphs, opts, quiet, export_path);
  }

  // --- Timeline mode: live schedules of the configured model(s) -------------
  if (timeline) {
    const int eff_nodes = nodes > 0 ? nodes : 16;
    std::vector<std::string> models;
    if (paper) {
      models = {"alexnet", "vgg16", "resnet50"};
    } else {
      models.push_back(model);
    }
    std::vector<check::TimelineGraph> graphs;
    for (const std::string& m : models) {
      core::NetSpec spec;
      try {
        spec = resolve_model(m, batch, classes, image);
      } catch (const base::CheckError& e) {
        std::fprintf(stderr, "cannot parse model %s: %s\n", m.c_str(),
                     e.what());
        return kExitParseFailure;
      }
      const std::vector<check::TimelineGraph> g =
          build_live_timelines(cost, m, spec, batch, eff_nodes);
      graphs.insert(graphs.end(), g.begin(), g.end());
    }
    {
      const std::vector<check::TimelineGraph> g =
          build_schedule_timelines(cost);
      graphs.insert(graphs.end(), g.begin(), g.end());
    }
    return run_timeline_mode(graphs, opts, quiet, export_path);
  }

  // --- Per-plan mode ---------------------------------------------------------
  std::vector<NamedConfig> configs;
  if (paper) {
    configs = paper_configs();
  } else {
    core::NetSpec spec;
    try {
      spec = resolve_model(model, batch, classes, image);
    } catch (const base::CheckError& e) {
      std::fprintf(stderr, "cannot parse model %s: %s\n", model.c_str(),
                   e.what());
      return kExitParseFailure;
    }
    configs.push_back({spec.name + " batch " + std::to_string(batch) + " @" +
                           std::to_string(image),
                       core::describe_net_spec(spec)});
  }

  int errors = 0, warnings = 0;
  for (const NamedConfig& config : configs) {
    check::Report report = check::verify_net(cost, config.descs, opts);
    if (nodes > 0) {
      report.merge(check::verify_allreduce("rhd", nodes, opts));
      report.merge(check::verify_allreduce("ring", nodes, opts));
    }
    errors += report.error_count();
    warnings += report.warning_count();
    if (!quiet && !report.empty()) report.print(std::cout);
    std::printf("%-28s %zu layer(s): %s\n", config.label.c_str(),
                config.descs.size(), report.summary().c_str());
  }
  if (configs.size() > 1) {
    std::printf("total: %d error(s), %d warning(s)\n", errors, warnings);
  }
  return errors > 0 ? kExitDiagnostics : kExitSilent;
}
