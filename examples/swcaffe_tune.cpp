// swcaffe_tune: the swtune driver — runs the cost-model-guided plan search
// over a network (or the paper's evaluated configurations) and prints, per
// convolution, the search-space size, the chosen plan for each pass and the
// tuned-vs-default simulated time. The search itself lives in src/tune/;
// this binary is presentation plus the CI regression gate.
//
// Usage:
//   swcaffe_tune [--model M] [--batch B] [--classes C] [--image R]
//                [--nodes N] [--plan-cache FILE] [--candidates]
//                [--json OUT] [--trace OUT] [--quiet]
//   swcaffe_tune --paper          # all paper-scale AlexNet/VGG configs
//   swcaffe_tune <net.prototxt>   # tune a prototxt model
//
// Models: alexnet | alexnet-orig | vgg16 | vgg19 | resnet50 | googlenet or a
// prototxt path. --candidates prints every plan the search priced (and how
// many the check:: rules rejected unpriced). --json writes per-layer and
// per-net default/tuned seconds as a bench_json object (BENCH_tune.json in
// CI). --trace records the tuner's own activity — one "tune.search" span per
// cold search, one "tune.cache_hit" instant per warm lookup — as a Chrome
// trace. Exit status: 0 when every tuned plan is at least as fast as the
// hand-written default under the model, 1 when any plan regressed, 2 on
// usage errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_json.h"
#include "base/table.h"
#include "core/models.h"
#include "core/proto.h"
#include "hw/cost_model.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "tune/tuner.h"

using namespace swcaffe;

namespace {

struct NamedConfig {
  std::string label;
  std::vector<core::LayerDesc> descs;
};

core::NetSpec resolve_model(const std::string& arg, int batch, int classes,
                            int image) {
  if (arg == "alexnet") return core::alexnet_bn(batch, classes, image);
  if (arg == "alexnet-orig") {
    return core::alexnet_original(batch, classes, image);
  }
  if (arg == "vgg16") return core::vgg(16, batch, classes, image);
  if (arg == "vgg19") return core::vgg(19, batch, classes, image);
  if (arg == "resnet50") return core::resnet50(batch, classes, image);
  if (arg == "googlenet") return core::googlenet(batch, classes, image);
  return core::load_net_prototxt(arg);
}

/// The paper's evaluated configurations (Sec. VI / Tables II-III), same set
/// as swcaffe_check --paper: the CI gate runs the tuner over all of them.
std::vector<NamedConfig> paper_configs() {
  std::vector<NamedConfig> configs;
  configs.push_back({"alexnet-bn batch 256 @227",
                     core::describe_net_spec(core::alexnet_bn(256, 1000, 227))});
  configs.push_back({"alexnet-bn batch 128 @227",
                     core::describe_net_spec(core::alexnet_bn(128, 1000, 227))});
  configs.push_back({"vgg16 batch 128 @224",
                     core::describe_net_spec(core::vgg(16, 128, 1000, 224))});
  configs.push_back({"vgg16 batch 32 @224",
                     core::describe_net_spec(core::vgg(16, 32, 1000, 224))});
  configs.push_back({"vgg19 batch 128 @224",
                     core::describe_net_spec(core::vgg(19, 128, 1000, 224))});
  return configs;
}

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

/// "impl cb=32 ob=32" or "exp 256x512x256 db c1" — one table cell.
std::string plan_cell(const tune::DirectionChoice& d) {
  char buf[64];
  if (d.implicit) {
    std::snprintf(buf, sizeof(buf), "impl cb=%d ob=%d", d.channel_block_in,
                  d.channel_block_out);
  } else {
    std::snprintf(buf, sizeof(buf), "exp %dx%dx%d %s c%d", d.blocking.block_m,
                  d.blocking.block_n, d.blocking.block_k,
                  d.blocking.double_buffered ? "db" : "sb",
                  d.blocking.bcast_chunk);
  }
  return buf;
}

std::string candidate_cell(const tune::Candidate& c) {
  char buf[64];
  if (c.implicit) {
    std::snprintf(buf, sizeof(buf), "impl cb=%d ob=%d", c.channel_block_in,
                  c.channel_block_out);
  } else {
    std::snprintf(buf, sizeof(buf), "exp %dx%dx%d %s c%d", c.blocking.block_m,
                  c.blocking.block_n, c.blocking.block_k,
                  c.blocking.double_buffered ? "db" : "sb",
                  c.blocking.bcast_chunk);
  }
  return buf;
}

const char* direction_name(dnn::ConvDirection dir) {
  switch (dir) {
    case dnn::ConvDirection::kForward:
      return "fwd";
    case dnn::ConvDirection::kBackwardWeight:
      return "wgrad";
    case dnn::ConvDirection::kBackwardInput:
      return "igrad";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "alexnet";
  int batch = 256;
  int classes = 1000;
  int image = 227;
  int nodes = 1;
  bool paper = false;
  bool quiet = false;
  bool show_candidates = false;
  std::string plan_cache;
  std::string trace_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--model", v)) {
      model = v;
    } else if (flag_value(argc, argv, i, "--batch", v)) {
      batch = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--classes", v)) {
      classes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--image", v)) {
      image = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--nodes", v)) {
      nodes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--plan-cache", v)) {
      plan_cache = v;
    } else if (flag_value(argc, argv, i, "--trace", v)) {
      trace_path = v;
    } else if (flag_value(argc, argv, i, "--json", v)) {
      // Value re-parsed by JsonBench; consumed here so it isn't positional.
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(argv[i], "--candidates") == 0) {
      show_candidates = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else if (positional++ == 0) {
      model = argv[i];
    } else {
      std::fprintf(stderr, "too many positional arguments\n");
      return 2;
    }
  }

  bench::JsonBench bench("swcaffe_tune", argc, argv);

  std::vector<NamedConfig> configs;
  if (paper) {
    configs = paper_configs();
  } else {
    core::NetSpec spec = resolve_model(model, batch, classes, image);
    configs.push_back({spec.name + " batch " + std::to_string(batch) + " @" +
                           std::to_string(image),
                       core::describe_net_spec(spec)});
  }

  const hw::CostModel cost;
  trace::Tracer tracer;
  tracer.set_track_name(0, "mpe-tuner");

  int regressions = 0;
  for (const NamedConfig& config : configs) {
    tune::TuneOptions topts;
    topts.nodes = nodes;
    topts.cache_path = plan_cache;
    topts.keep_candidates = show_candidates;
    if (!trace_path.empty()) topts.tracer = &tracer;
    tune::Tuner tuner(cost, topts);
    const tune::NetPlan plan = tuner.tune_net(config.descs);
    std::string cache_error;
    if (!tuner.save_cache(&cache_error)) {
      std::fprintf(stderr, "swtune: %s\n", cache_error.c_str());
    }

    const std::string key = bench::metric_key(config.label);
    base::TablePrinter t({"layer", "space", "default (s)", "tuned (s)", "gain",
                          "fwd plan", "wgrad plan", "igrad plan"});
    // Tuned layers print in network order, not map order.
    for (const auto& d : config.descs) {
      auto it = plan.convs.find(d.name);
      if (it == plan.convs.end()) continue;
      const tune::TunedConvPlan& p = it->second;
      const double def = p.default_total();
      const double tuned = p.tuned_total();
      if (tuned > def) {
        ++regressions;
        std::fprintf(stderr, "REGRESSION: %s %s tuned %.6fs > default %.6fs\n",
                     config.label.c_str(), p.layer.c_str(), tuned, def);
      }
      char space[32], gain[32];
      std::snprintf(space, sizeof(space), "%d", p.space_size);
      std::snprintf(gain, sizeof(gain), "%.1f%%",
                    def > 0 ? 100.0 * (def - tuned) / def : 0.0);
      t.add_row({p.layer + (p.from_cache ? " (cached)" : ""), space,
                 base::fmt(def, 5), base::fmt(tuned, 5), gain,
                 plan_cell(p.forward), plan_cell(p.backward_weight),
                 p.first_conv ? "-" : plan_cell(p.backward_input)});
      bench.metric(key + "_" + bench::metric_key(p.layer) + "_default_s", def);
      bench.metric(key + "_" + bench::metric_key(p.layer) + "_tuned_s", tuned);

      if (show_candidates && !quiet) {
        std::printf("%s candidates:\n", p.layer.c_str());
        for (const auto& c : p.candidates) {
          if (c.legal) {
            std::printf("  %-6s %-24s %.6f s\n", direction_name(c.direction),
                        candidate_cell(c).c_str(), c.seconds);
          } else {
            std::printf("  %-6s %-24s rejected by check::\n",
                        direction_name(c.direction), candidate_cell(c).c_str());
          }
        }
      }
    }
    if (!quiet) t.print(std::cout);
    const double net_def = plan.default_total();
    const double net_tuned = plan.tuned_total();
    std::printf("%-28s %zu conv layer(s): default %.4fs tuned %.4fs "
                "(%.2f%% faster), %lld candidates priced, %lld rejected, "
                "%d cache hit(s)\n",
                config.label.c_str(), plan.convs.size(), net_def, net_tuned,
                net_def > 0 ? 100.0 * (net_def - net_tuned) / net_def : 0.0,
                tuner.stats().evaluated, tuner.stats().rejected,
                tuner.stats().cache_hits);
    bench.metric(key + "_net_default_s", net_def);
    bench.metric(key + "_net_tuned_s", net_tuned);
    bench.metric(key + "_speedup", net_tuned > 0 ? net_def / net_tuned : 1.0);
  }

  if (!trace_path.empty()) {
    trace::save_chrome_trace(tracer, trace_path);
    std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
  }
  if (regressions > 0) {
    std::fprintf(stderr, "%d tuned plan(s) regressed vs the default\n",
                 regressions);
    return 1;
  }
  return 0;
}
