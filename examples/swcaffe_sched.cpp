// swcaffe_sched: multi-tenant cluster scheduler simulator — gang
// scheduling, preemption and elastic training over the cost model.
//
// Usage:
//   swcaffe_sched [--policy fifo|priority|fair] [--nodes N] [--supernode Q]
//                 [--arrival poisson|bursty] [--rate R] [--duration S]
//                 [--seed N] [--tenants T] [--quantum I] [--no-elastic]
//                 [--verify] [--export-timeline FILE] [--json OUT]
//
// An open-loop stream of heterogeneous training jobs (model zoo x batch x
// requested gang width, R jobs/s for S simulated seconds) is admitted onto
// a simulated TaihuLight partition of N nodes under the chosen policy.
// Preempted jobs checkpoint and later resume by crash-rewind-replay;
// elastic jobs shrink/grow between quanta. Everything runs on simulated
// time: same flags + seed => bit-identical schedule and output.
//
// --verify builds the whole-cluster timeline (one exclusive resource per
// node, gang tags per dispatch) and judges it with the swsched analyzer —
// the same graphs `swcaffe_check --timeline` audits; --export-timeline
// writes them as JSON for `swcaffe_check --timeline=<file>`.
//
// Exit codes:
//   0  simulation ran (and, with --verify, the timeline is silent)
//   1  --verify found diagnostics in the schedule timeline
//   2  bad usage / unknown flag
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "../bench/bench_json.h"
#include "base/log.h"
#include "base/table.h"
#include "base/units.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "check/timeline_io.h"
#include "hw/cost_model.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sched/workload.h"
#include "serve/arrival.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

/// Matches "--name value" and "--name=value"; advances `i` past the value.
bool flag_value(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string prefix = std::string(name) + "=";
  if (arg == name) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy = "fifo";
  std::string arrival = "poisson";
  int nodes = 64;
  int supernode = 16;
  double rate = 1.0;
  double duration_s = 60.0;
  std::uint64_t seed = 1;
  int tenants = 3;
  std::int64_t quantum = 25;
  bool elastic = true;
  bool verify = false;
  std::string export_path;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argc, argv, i, "--policy", v)) {
      policy = v;
    } else if (flag_value(argc, argv, i, "--arrival", v)) {
      arrival = v;
    } else if (flag_value(argc, argv, i, "--nodes", v)) {
      nodes = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--supernode", v)) {
      supernode = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--rate", v)) {
      rate = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--duration", v)) {
      duration_s = std::atof(v.c_str());
    } else if (flag_value(argc, argv, i, "--seed", v)) {
      seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (flag_value(argc, argv, i, "--tenants", v)) {
      tenants = std::atoi(v.c_str());
    } else if (flag_value(argc, argv, i, "--quantum", v)) {
      quantum = std::atoll(v.c_str());
    } else if (flag_value(argc, argv, i, "--export-timeline", v)) {
      export_path = v;
    } else if (flag_value(argc, argv, i, "--json", v)) {
      // Value re-parsed by JsonBench; consumed here so it isn't positional.
    } else if (std::strcmp(argv[i], "--no-elastic") == 0) {
      elastic = false;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  bench::JsonBench json("swcaffe_sched", argc, argv);
  const hw::CostModel cost;

  sched::WorkloadSpec wspec;
  sched::SchedOptions sopts;
  // Bad names are usage errors (exit 2), not aborts.
  try {
    wspec.arrivals.kind = serve::parse_arrival_kind(arrival);
    sopts.policy = sched::parse_policy(policy);
  } catch (const base::CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  wspec.arrivals.rate = rate;
  wspec.arrivals.duration_s = duration_s;
  wspec.arrivals.seed = seed;
  wspec.seed = seed;
  wspec.tenants = tenants;
  wspec.elastic = elastic;
  const std::vector<sched::JobSpec> jobs = sched::generate_workload(wspec);
  if (jobs.empty()) {
    std::fprintf(stderr, "no jobs arrived (rate %.3f over %.1fs)\n", rate,
                 duration_s);
    return 2;
  }

  sopts.cluster_nodes = nodes;
  sopts.supernode_size = supernode;
  sopts.quantum_iters = quantum;
  sopts.elastic = elastic;
  const sched::ScheduleResult res =
      sched::simulate_schedule(cost, jobs, sopts);
  const sched::SchedMetrics& m = res.metrics;

  std::printf("=== %s schedule: %zu jobs on %d nodes (%s arrivals, %.2f "
              "jobs/s) ===\n",
              sched::policy_name(sopts.policy), jobs.size(), nodes,
              arrival.c_str(), rate);
  {
    TablePrinter t(
        {"job", "tenant", "width", "iters", "wait", "makespan", "pre", "rsz"});
    for (const sched::JobRecord& r : res.jobs) {
      t.add_row({r.name, std::to_string(r.tenant),
                 std::to_string(r.final_width), std::to_string(r.iters),
                 base::format_seconds(r.queue_wait_s()),
                 base::format_seconds(r.makespan_s()),
                 std::to_string(r.preemptions), std::to_string(r.resizes)});
    }
    t.print(std::cout);
  }
  std::printf("\n=== cluster metrics ===\n");
  {
    TablePrinter t({"metric", "value"});
    t.add_row({"jobs finished", std::to_string(m.finished) + "/" +
                                    std::to_string(m.jobs)});
    t.add_row({"horizon", base::format_seconds(m.horizon_s)});
    t.add_row({"utilization", fmt(100.0 * m.utilization, 1) + "%"});
    t.add_row({"run node-s", fmt(m.run_node_s, 1)});
    t.add_row({"overhead node-s", fmt(m.overhead_node_s, 3)});
    t.add_row({"preemptions", std::to_string(m.preemptions)});
    t.add_row({"resizes", std::to_string(m.resizes)});
    t.add_row({"queue wait p50", base::format_seconds(m.wait_p50_s)});
    t.add_row({"queue wait p95", base::format_seconds(m.wait_p95_s)});
    t.add_row({"makespan p50", base::format_seconds(m.makespan_p50_s)});
    t.add_row({"makespan p95", base::format_seconds(m.makespan_p95_s)});
    t.print(std::cout);
  }

  json.metric("jobs", m.jobs);
  json.metric("finished", m.finished);
  json.metric("horizon_s", m.horizon_s);
  json.metric("utilization", m.utilization);
  json.metric("busy_node_s", m.busy_node_s);
  json.metric("run_node_s", m.run_node_s);
  json.metric("overhead_node_s", m.overhead_node_s);
  json.metric("preemptions", m.preemptions);
  json.metric("resizes", m.resizes);
  json.metric("wait_mean_s", m.wait_mean_s);
  json.metric("wait_p50_s", m.wait_p50_s);
  json.metric("wait_p95_s", m.wait_p95_s);
  json.metric("makespan_p50_s", m.makespan_p50_s);
  json.metric("makespan_p95_s", m.makespan_p95_s);
  json.metric("makespan_spread_s", m.makespan_spread_s);

  if (verify || !export_path.empty()) {
    const check::TimelineGraph graph = check::timeline_from_schedule(
        std::string("cluster ") + sched::policy_name(sopts.policy), nodes,
        res.spans, res.jobs);
    if (!export_path.empty()) {
      std::ofstream out(export_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
        return 2;
      }
      out << check::timelines_to_json({graph});
      std::printf("wrote timeline (%zu events) to %s\n", graph.events.size(),
                  export_path.c_str());
    }
    if (verify) {
      const check::Report report = check::verify_timeline(graph);
      std::printf("\ntimeline: %zu events, %d error(s), %d warning(s)\n",
                  graph.events.size(), report.error_count(),
                  report.warning_count());
      if (!report.empty()) {
        report.print(std::cout);
        return 1;
      }
    }
  }
  return 0;
}
