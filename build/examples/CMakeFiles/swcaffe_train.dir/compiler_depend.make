# Empty compiler generated dependencies file for swcaffe_train.
# This may be replaced when dependencies are built.
