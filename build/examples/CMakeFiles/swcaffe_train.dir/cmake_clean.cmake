file(REMOVE_RECURSE
  "CMakeFiles/swcaffe_train.dir/swcaffe_train.cpp.o"
  "CMakeFiles/swcaffe_train.dir/swcaffe_train.cpp.o.d"
  "swcaffe_train"
  "swcaffe_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcaffe_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
