file(REMOVE_RECURSE
  "CMakeFiles/conv_plan_explorer.dir/conv_plan_explorer.cpp.o"
  "CMakeFiles/conv_plan_explorer.dir/conv_plan_explorer.cpp.o.d"
  "conv_plan_explorer"
  "conv_plan_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_plan_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
