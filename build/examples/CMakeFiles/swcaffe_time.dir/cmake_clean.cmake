file(REMOVE_RECURSE
  "CMakeFiles/swcaffe_time.dir/swcaffe_time.cpp.o"
  "CMakeFiles/swcaffe_time.dir/swcaffe_time.cpp.o.d"
  "swcaffe_time"
  "swcaffe_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swcaffe_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
