# Empty dependencies file for swcaffe_time.
# This may be replaced when dependencies are built.
