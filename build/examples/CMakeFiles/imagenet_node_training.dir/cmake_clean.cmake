file(REMOVE_RECURSE
  "CMakeFiles/imagenet_node_training.dir/imagenet_node_training.cpp.o"
  "CMakeFiles/imagenet_node_training.dir/imagenet_node_training.cpp.o.d"
  "imagenet_node_training"
  "imagenet_node_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_node_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
