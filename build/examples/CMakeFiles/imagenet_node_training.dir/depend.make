# Empty dependencies file for imagenet_node_training.
# This may be replaced when dependencies are built.
