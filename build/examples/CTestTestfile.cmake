# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_conv_plan_explorer "/root/repo/build/examples/conv_plan_explorer" "16" "64" "64" "28" "3" "1" "1")
set_tests_properties(smoke_conv_plan_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_distributed_training "/root/repo/build/examples/distributed_training")
set_tests_properties(smoke_distributed_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_swcaffe_train "/root/repo/build/examples/swcaffe_train" "6")
set_tests_properties(smoke_swcaffe_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_swcaffe_time "/root/repo/build/examples/swcaffe_time" "googlenet" "1" "1")
set_tests_properties(smoke_swcaffe_time PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
