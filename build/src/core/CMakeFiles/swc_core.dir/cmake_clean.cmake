file(REMOVE_RECURSE
  "CMakeFiles/swc_core.dir/act_layers.cpp.o"
  "CMakeFiles/swc_core.dir/act_layers.cpp.o.d"
  "CMakeFiles/swc_core.dir/conv_layer.cpp.o"
  "CMakeFiles/swc_core.dir/conv_layer.cpp.o.d"
  "CMakeFiles/swc_core.dir/ip_layer.cpp.o"
  "CMakeFiles/swc_core.dir/ip_layer.cpp.o.d"
  "CMakeFiles/swc_core.dir/lstm_layer.cpp.o"
  "CMakeFiles/swc_core.dir/lstm_layer.cpp.o.d"
  "CMakeFiles/swc_core.dir/models.cpp.o"
  "CMakeFiles/swc_core.dir/models.cpp.o.d"
  "CMakeFiles/swc_core.dir/models_desc.cpp.o"
  "CMakeFiles/swc_core.dir/models_desc.cpp.o.d"
  "CMakeFiles/swc_core.dir/net.cpp.o"
  "CMakeFiles/swc_core.dir/net.cpp.o.d"
  "CMakeFiles/swc_core.dir/norm_layers.cpp.o"
  "CMakeFiles/swc_core.dir/norm_layers.cpp.o.d"
  "CMakeFiles/swc_core.dir/pool_layer.cpp.o"
  "CMakeFiles/swc_core.dir/pool_layer.cpp.o.d"
  "CMakeFiles/swc_core.dir/proto.cpp.o"
  "CMakeFiles/swc_core.dir/proto.cpp.o.d"
  "CMakeFiles/swc_core.dir/solver.cpp.o"
  "CMakeFiles/swc_core.dir/solver.cpp.o.d"
  "CMakeFiles/swc_core.dir/spec.cpp.o"
  "CMakeFiles/swc_core.dir/spec.cpp.o.d"
  "CMakeFiles/swc_core.dir/struct_layers.cpp.o"
  "CMakeFiles/swc_core.dir/struct_layers.cpp.o.d"
  "libswc_core.a"
  "libswc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
