
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/act_layers.cpp" "src/core/CMakeFiles/swc_core.dir/act_layers.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/act_layers.cpp.o.d"
  "/root/repo/src/core/conv_layer.cpp" "src/core/CMakeFiles/swc_core.dir/conv_layer.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/conv_layer.cpp.o.d"
  "/root/repo/src/core/ip_layer.cpp" "src/core/CMakeFiles/swc_core.dir/ip_layer.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/ip_layer.cpp.o.d"
  "/root/repo/src/core/lstm_layer.cpp" "src/core/CMakeFiles/swc_core.dir/lstm_layer.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/lstm_layer.cpp.o.d"
  "/root/repo/src/core/models.cpp" "src/core/CMakeFiles/swc_core.dir/models.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/models.cpp.o.d"
  "/root/repo/src/core/models_desc.cpp" "src/core/CMakeFiles/swc_core.dir/models_desc.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/models_desc.cpp.o.d"
  "/root/repo/src/core/net.cpp" "src/core/CMakeFiles/swc_core.dir/net.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/net.cpp.o.d"
  "/root/repo/src/core/norm_layers.cpp" "src/core/CMakeFiles/swc_core.dir/norm_layers.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/norm_layers.cpp.o.d"
  "/root/repo/src/core/pool_layer.cpp" "src/core/CMakeFiles/swc_core.dir/pool_layer.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/pool_layer.cpp.o.d"
  "/root/repo/src/core/proto.cpp" "src/core/CMakeFiles/swc_core.dir/proto.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/proto.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/swc_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/spec.cpp" "src/core/CMakeFiles/swc_core.dir/spec.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/spec.cpp.o.d"
  "/root/repo/src/core/struct_layers.cpp" "src/core/CMakeFiles/swc_core.dir/struct_layers.cpp.o" "gcc" "src/core/CMakeFiles/swc_core.dir/struct_layers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/swc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/swc_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/swc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/swgemm/CMakeFiles/swc_swgemm.dir/DependInfo.cmake"
  "/root/repo/build/src/swdnn/CMakeFiles/swc_swdnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
