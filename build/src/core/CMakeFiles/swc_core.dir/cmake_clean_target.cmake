file(REMOVE_RECURSE
  "libswc_core.a"
)
