file(REMOVE_RECURSE
  "libswc_io.a"
)
