file(REMOVE_RECURSE
  "CMakeFiles/swc_io.dir/dataset.cpp.o"
  "CMakeFiles/swc_io.dir/dataset.cpp.o.d"
  "CMakeFiles/swc_io.dir/disk_model.cpp.o"
  "CMakeFiles/swc_io.dir/disk_model.cpp.o.d"
  "CMakeFiles/swc_io.dir/prefetch.cpp.o"
  "CMakeFiles/swc_io.dir/prefetch.cpp.o.d"
  "libswc_io.a"
  "libswc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
