# Empty compiler generated dependencies file for swc_io.
# This may be replaced when dependencies are built.
