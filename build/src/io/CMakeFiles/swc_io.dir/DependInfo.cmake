
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dataset.cpp" "src/io/CMakeFiles/swc_io.dir/dataset.cpp.o" "gcc" "src/io/CMakeFiles/swc_io.dir/dataset.cpp.o.d"
  "/root/repo/src/io/disk_model.cpp" "src/io/CMakeFiles/swc_io.dir/disk_model.cpp.o" "gcc" "src/io/CMakeFiles/swc_io.dir/disk_model.cpp.o.d"
  "/root/repo/src/io/prefetch.cpp" "src/io/CMakeFiles/swc_io.dir/prefetch.cpp.o" "gcc" "src/io/CMakeFiles/swc_io.dir/prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/swc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
