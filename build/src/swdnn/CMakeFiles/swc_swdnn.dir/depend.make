# Empty dependencies file for swc_swdnn.
# This may be replaced when dependencies are built.
