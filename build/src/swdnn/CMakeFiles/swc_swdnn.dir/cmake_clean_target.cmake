file(REMOVE_RECURSE
  "libswc_swdnn.a"
)
