
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swdnn/conv_func.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/conv_func.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/conv_func.cpp.o.d"
  "/root/repo/src/swdnn/conv_plan.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/conv_plan.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/conv_plan.cpp.o.d"
  "/root/repo/src/swdnn/im2col.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/im2col.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/im2col.cpp.o.d"
  "/root/repo/src/swdnn/im2col_sim.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/im2col_sim.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/im2col_sim.cpp.o.d"
  "/root/repo/src/swdnn/implicit_conv_sim.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/implicit_conv_sim.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/implicit_conv_sim.cpp.o.d"
  "/root/repo/src/swdnn/layer_estimate.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/layer_estimate.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/layer_estimate.cpp.o.d"
  "/root/repo/src/swdnn/mem_plans.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/mem_plans.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/mem_plans.cpp.o.d"
  "/root/repo/src/swdnn/pool_sim.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/pool_sim.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/pool_sim.cpp.o.d"
  "/root/repo/src/swdnn/transform_plan.cpp" "src/swdnn/CMakeFiles/swc_swdnn.dir/transform_plan.cpp.o" "gcc" "src/swdnn/CMakeFiles/swc_swdnn.dir/transform_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/swc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/swc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/swgemm/CMakeFiles/swc_swgemm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
