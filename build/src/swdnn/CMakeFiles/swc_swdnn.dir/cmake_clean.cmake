file(REMOVE_RECURSE
  "CMakeFiles/swc_swdnn.dir/conv_func.cpp.o"
  "CMakeFiles/swc_swdnn.dir/conv_func.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/conv_plan.cpp.o"
  "CMakeFiles/swc_swdnn.dir/conv_plan.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/im2col.cpp.o"
  "CMakeFiles/swc_swdnn.dir/im2col.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/im2col_sim.cpp.o"
  "CMakeFiles/swc_swdnn.dir/im2col_sim.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/implicit_conv_sim.cpp.o"
  "CMakeFiles/swc_swdnn.dir/implicit_conv_sim.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/layer_estimate.cpp.o"
  "CMakeFiles/swc_swdnn.dir/layer_estimate.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/mem_plans.cpp.o"
  "CMakeFiles/swc_swdnn.dir/mem_plans.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/pool_sim.cpp.o"
  "CMakeFiles/swc_swdnn.dir/pool_sim.cpp.o.d"
  "CMakeFiles/swc_swdnn.dir/transform_plan.cpp.o"
  "CMakeFiles/swc_swdnn.dir/transform_plan.cpp.o.d"
  "libswc_swdnn.a"
  "libswc_swdnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_swdnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
