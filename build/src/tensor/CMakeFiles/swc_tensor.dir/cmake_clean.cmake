file(REMOVE_RECURSE
  "CMakeFiles/swc_tensor.dir/filler.cpp.o"
  "CMakeFiles/swc_tensor.dir/filler.cpp.o.d"
  "CMakeFiles/swc_tensor.dir/layout.cpp.o"
  "CMakeFiles/swc_tensor.dir/layout.cpp.o.d"
  "CMakeFiles/swc_tensor.dir/serialize.cpp.o"
  "CMakeFiles/swc_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/swc_tensor.dir/tensor.cpp.o"
  "CMakeFiles/swc_tensor.dir/tensor.cpp.o.d"
  "libswc_tensor.a"
  "libswc_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
