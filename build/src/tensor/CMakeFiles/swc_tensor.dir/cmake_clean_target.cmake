file(REMOVE_RECURSE
  "libswc_tensor.a"
)
