# Empty compiler generated dependencies file for swc_tensor.
# This may be replaced when dependencies are built.
