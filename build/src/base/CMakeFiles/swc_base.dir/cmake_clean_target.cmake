file(REMOVE_RECURSE
  "libswc_base.a"
)
