file(REMOVE_RECURSE
  "CMakeFiles/swc_base.dir/log.cpp.o"
  "CMakeFiles/swc_base.dir/log.cpp.o.d"
  "CMakeFiles/swc_base.dir/rng.cpp.o"
  "CMakeFiles/swc_base.dir/rng.cpp.o.d"
  "CMakeFiles/swc_base.dir/table.cpp.o"
  "CMakeFiles/swc_base.dir/table.cpp.o.d"
  "CMakeFiles/swc_base.dir/units.cpp.o"
  "CMakeFiles/swc_base.dir/units.cpp.o.d"
  "libswc_base.a"
  "libswc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
