# Empty compiler generated dependencies file for swc_base.
# This may be replaced when dependencies are built.
