file(REMOVE_RECURSE
  "libswc_topo.a"
)
