file(REMOVE_RECURSE
  "CMakeFiles/swc_topo.dir/allreduce.cpp.o"
  "CMakeFiles/swc_topo.dir/allreduce.cpp.o.d"
  "CMakeFiles/swc_topo.dir/network_model.cpp.o"
  "CMakeFiles/swc_topo.dir/network_model.cpp.o.d"
  "libswc_topo.a"
  "libswc_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
