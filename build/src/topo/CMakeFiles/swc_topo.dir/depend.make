# Empty dependencies file for swc_topo.
# This may be replaced when dependencies are built.
