file(REMOVE_RECURSE
  "CMakeFiles/swc_perfmodel.dir/device_model.cpp.o"
  "CMakeFiles/swc_perfmodel.dir/device_model.cpp.o.d"
  "libswc_perfmodel.a"
  "libswc_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
