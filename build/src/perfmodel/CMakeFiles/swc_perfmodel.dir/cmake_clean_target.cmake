file(REMOVE_RECURSE
  "libswc_perfmodel.a"
)
