# Empty dependencies file for swc_perfmodel.
# This may be replaced when dependencies are built.
