# Empty compiler generated dependencies file for swc_parallel.
# This may be replaced when dependencies are built.
