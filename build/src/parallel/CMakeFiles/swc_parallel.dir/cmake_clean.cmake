file(REMOVE_RECURSE
  "CMakeFiles/swc_parallel.dir/node_runner.cpp.o"
  "CMakeFiles/swc_parallel.dir/node_runner.cpp.o.d"
  "CMakeFiles/swc_parallel.dir/ssgd.cpp.o"
  "CMakeFiles/swc_parallel.dir/ssgd.cpp.o.d"
  "CMakeFiles/swc_parallel.dir/trainer.cpp.o"
  "CMakeFiles/swc_parallel.dir/trainer.cpp.o.d"
  "libswc_parallel.a"
  "libswc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
