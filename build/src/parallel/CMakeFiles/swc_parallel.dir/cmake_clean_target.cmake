file(REMOVE_RECURSE
  "libswc_parallel.a"
)
