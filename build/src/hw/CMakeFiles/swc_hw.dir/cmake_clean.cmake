file(REMOVE_RECURSE
  "CMakeFiles/swc_hw.dir/chip.cpp.o"
  "CMakeFiles/swc_hw.dir/chip.cpp.o.d"
  "CMakeFiles/swc_hw.dir/cost_model.cpp.o"
  "CMakeFiles/swc_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/swc_hw.dir/dma.cpp.o"
  "CMakeFiles/swc_hw.dir/dma.cpp.o.d"
  "CMakeFiles/swc_hw.dir/ldm.cpp.o"
  "CMakeFiles/swc_hw.dir/ldm.cpp.o.d"
  "CMakeFiles/swc_hw.dir/rlc.cpp.o"
  "CMakeFiles/swc_hw.dir/rlc.cpp.o.d"
  "libswc_hw.a"
  "libswc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
