
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/chip.cpp" "src/hw/CMakeFiles/swc_hw.dir/chip.cpp.o" "gcc" "src/hw/CMakeFiles/swc_hw.dir/chip.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "src/hw/CMakeFiles/swc_hw.dir/cost_model.cpp.o" "gcc" "src/hw/CMakeFiles/swc_hw.dir/cost_model.cpp.o.d"
  "/root/repo/src/hw/dma.cpp" "src/hw/CMakeFiles/swc_hw.dir/dma.cpp.o" "gcc" "src/hw/CMakeFiles/swc_hw.dir/dma.cpp.o.d"
  "/root/repo/src/hw/ldm.cpp" "src/hw/CMakeFiles/swc_hw.dir/ldm.cpp.o" "gcc" "src/hw/CMakeFiles/swc_hw.dir/ldm.cpp.o.d"
  "/root/repo/src/hw/rlc.cpp" "src/hw/CMakeFiles/swc_hw.dir/rlc.cpp.o" "gcc" "src/hw/CMakeFiles/swc_hw.dir/rlc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/swc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
