# Empty dependencies file for swc_swgemm.
# This may be replaced when dependencies are built.
