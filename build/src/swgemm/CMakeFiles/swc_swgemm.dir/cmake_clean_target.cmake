file(REMOVE_RECURSE
  "libswc_swgemm.a"
)
