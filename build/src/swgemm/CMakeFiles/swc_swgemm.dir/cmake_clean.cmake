file(REMOVE_RECURSE
  "CMakeFiles/swc_swgemm.dir/estimate.cpp.o"
  "CMakeFiles/swc_swgemm.dir/estimate.cpp.o.d"
  "CMakeFiles/swc_swgemm.dir/mesh_gemm.cpp.o"
  "CMakeFiles/swc_swgemm.dir/mesh_gemm.cpp.o.d"
  "CMakeFiles/swc_swgemm.dir/reference.cpp.o"
  "CMakeFiles/swc_swgemm.dir/reference.cpp.o.d"
  "libswc_swgemm.a"
  "libswc_swgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swc_swgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
