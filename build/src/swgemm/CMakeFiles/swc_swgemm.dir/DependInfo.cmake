
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swgemm/estimate.cpp" "src/swgemm/CMakeFiles/swc_swgemm.dir/estimate.cpp.o" "gcc" "src/swgemm/CMakeFiles/swc_swgemm.dir/estimate.cpp.o.d"
  "/root/repo/src/swgemm/mesh_gemm.cpp" "src/swgemm/CMakeFiles/swc_swgemm.dir/mesh_gemm.cpp.o" "gcc" "src/swgemm/CMakeFiles/swc_swgemm.dir/mesh_gemm.cpp.o.d"
  "/root/repo/src/swgemm/reference.cpp" "src/swgemm/CMakeFiles/swc_swgemm.dir/reference.cpp.o" "gcc" "src/swgemm/CMakeFiles/swc_swgemm.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/swc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/swc_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
