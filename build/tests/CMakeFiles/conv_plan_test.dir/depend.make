# Empty dependencies file for conv_plan_test.
# This may be replaced when dependencies are built.
