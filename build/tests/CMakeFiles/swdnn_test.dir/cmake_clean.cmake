file(REMOVE_RECURSE
  "CMakeFiles/swdnn_test.dir/swdnn_test.cpp.o"
  "CMakeFiles/swdnn_test.dir/swdnn_test.cpp.o.d"
  "swdnn_test"
  "swdnn_test.pdb"
  "swdnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swdnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
