# Empty dependencies file for swdnn_test.
# This may be replaced when dependencies are built.
