file(REMOVE_RECURSE
  "CMakeFiles/transform_plan_test.dir/transform_plan_test.cpp.o"
  "CMakeFiles/transform_plan_test.dir/transform_plan_test.cpp.o.d"
  "transform_plan_test"
  "transform_plan_test.pdb"
  "transform_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
