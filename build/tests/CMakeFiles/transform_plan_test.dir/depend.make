# Empty dependencies file for transform_plan_test.
# This may be replaced when dependencies are built.
