file(REMOVE_RECURSE
  "CMakeFiles/implicit_conv_sim_test.dir/implicit_conv_sim_test.cpp.o"
  "CMakeFiles/implicit_conv_sim_test.dir/implicit_conv_sim_test.cpp.o.d"
  "implicit_conv_sim_test"
  "implicit_conv_sim_test.pdb"
  "implicit_conv_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicit_conv_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
