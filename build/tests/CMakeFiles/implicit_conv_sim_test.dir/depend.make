# Empty dependencies file for implicit_conv_sim_test.
# This may be replaced when dependencies are built.
