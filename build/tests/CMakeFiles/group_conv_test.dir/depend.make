# Empty dependencies file for group_conv_test.
# This may be replaced when dependencies are built.
