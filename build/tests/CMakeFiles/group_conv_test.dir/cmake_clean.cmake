file(REMOVE_RECURSE
  "CMakeFiles/group_conv_test.dir/group_conv_test.cpp.o"
  "CMakeFiles/group_conv_test.dir/group_conv_test.cpp.o.d"
  "group_conv_test"
  "group_conv_test.pdb"
  "group_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
