# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_test[1]_include.cmake")
include("/root/repo/build/tests/swdnn_test[1]_include.cmake")
include("/root/repo/build/tests/implicit_conv_sim_test[1]_include.cmake")
include("/root/repo/build/tests/conv_plan_test[1]_include.cmake")
include("/root/repo/build/tests/transform_plan_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/group_conv_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
