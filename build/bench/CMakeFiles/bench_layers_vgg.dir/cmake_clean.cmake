file(REMOVE_RECURSE
  "CMakeFiles/bench_layers_vgg.dir/bench_layers_vgg.cpp.o"
  "CMakeFiles/bench_layers_vgg.dir/bench_layers_vgg.cpp.o.d"
  "bench_layers_vgg"
  "bench_layers_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layers_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
