# Empty dependencies file for bench_layers_vgg.
# This may be replaced when dependencies are built.
