# Empty dependencies file for bench_io.
# This may be replaced when dependencies are built.
