file(REMOVE_RECURSE
  "CMakeFiles/bench_dma.dir/bench_dma.cpp.o"
  "CMakeFiles/bench_dma.dir/bench_dma.cpp.o.d"
  "bench_dma"
  "bench_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
