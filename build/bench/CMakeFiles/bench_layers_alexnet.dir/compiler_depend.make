# Empty compiler generated dependencies file for bench_layers_alexnet.
# This may be replaced when dependencies are built.
