file(REMOVE_RECURSE
  "CMakeFiles/bench_layers_alexnet.dir/bench_layers_alexnet.cpp.o"
  "CMakeFiles/bench_layers_alexnet.dir/bench_layers_alexnet.cpp.o.d"
  "bench_layers_alexnet"
  "bench_layers_alexnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layers_alexnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
