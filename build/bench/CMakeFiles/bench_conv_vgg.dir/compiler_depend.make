# Empty compiler generated dependencies file for bench_conv_vgg.
# This may be replaced when dependencies are built.
