file(REMOVE_RECURSE
  "CMakeFiles/bench_conv_vgg.dir/bench_conv_vgg.cpp.o"
  "CMakeFiles/bench_conv_vgg.dir/bench_conv_vgg.cpp.o.d"
  "bench_conv_vgg"
  "bench_conv_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conv_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
