file(REMOVE_RECURSE
  "CMakeFiles/bench_p2p_network.dir/bench_p2p_network.cpp.o"
  "CMakeFiles/bench_p2p_network.dir/bench_p2p_network.cpp.o.d"
  "bench_p2p_network"
  "bench_p2p_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
