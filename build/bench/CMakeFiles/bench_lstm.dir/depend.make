# Empty dependencies file for bench_lstm.
# This may be replaced when dependencies are built.
