file(REMOVE_RECURSE
  "CMakeFiles/bench_lstm.dir/bench_lstm.cpp.o"
  "CMakeFiles/bench_lstm.dir/bench_lstm.cpp.o.d"
  "bench_lstm"
  "bench_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
