# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_dma "/root/repo/build/bench/bench_dma")
set_tests_properties(smoke_bench_dma PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_p2p_network "/root/repo/build/bench/bench_p2p_network")
set_tests_properties(smoke_bench_p2p_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_allreduce "/root/repo/build/bench/bench_allreduce")
set_tests_properties(smoke_bench_allreduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_conv_vgg "/root/repo/build/bench/bench_conv_vgg")
set_tests_properties(smoke_bench_conv_vgg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_layers_alexnet "/root/repo/build/bench/bench_layers_alexnet")
set_tests_properties(smoke_bench_layers_alexnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_layers_vgg "/root/repo/build/bench/bench_layers_vgg")
set_tests_properties(smoke_bench_layers_vgg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_networks "/root/repo/build/bench/bench_networks")
set_tests_properties(smoke_bench_networks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_scalability "/root/repo/build/bench/bench_scalability")
set_tests_properties(smoke_bench_scalability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_io "/root/repo/build/bench/bench_io")
set_tests_properties(smoke_bench_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_packing "/root/repo/build/bench/bench_packing")
set_tests_properties(smoke_bench_packing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_transform "/root/repo/build/bench/bench_transform")
set_tests_properties(smoke_bench_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_lstm "/root/repo/build/bench/bench_lstm")
set_tests_properties(smoke_bench_lstm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_gemm "/root/repo/build/bench/bench_gemm" "--benchmark_min_time=0.01")
set_tests_properties(smoke_bench_gemm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
