// Functional implicit-convolution kernel on the CPE-mesh model: correctness
// against the host convolution and traffic invariants against the analytic
// plan the cost model assumes.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/log.h"
#include "base/rng.h"
#include "hw/chip.h"
#include "swdnn/conv_func.h"
#include "swdnn/im2col.h"
#include "swdnn/im2col_sim.h"
#include "swdnn/implicit_conv_sim.h"
#include "swdnn/pool_sim.h"

namespace swcaffe::dnn {
namespace {

core::ConvGeom make_geom(int batch, int in_c, int out_c, int img, int kernel,
                         int stride, int pad) {
  core::ConvGeom g;
  g.batch = batch;
  g.in_c = in_c;
  g.out_c = out_c;
  g.in_h = g.in_w = img;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

std::vector<float> random_vec(std::size_t n, base::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

class ImplicitConvSimTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ImplicitConvSimTest, MatchesHostConvolution) {
  const auto [in_c, out_c, img, kernel, stride] = GetParam();
  const int pad = kernel / 2;
  const auto g = make_geom(2, in_c, out_c, img, kernel, stride, pad);
  base::Rng rng(61);
  const auto bottom = random_vec(g.input_count(), rng);
  const auto weight = random_vec(g.weight_count(), rng);
  const auto bias = random_vec(g.out_c, rng);
  std::vector<float> expected(g.output_count());
  conv_forward_implicit(g, bottom.data(), weight.data(), bias.data(),
                        expected.data());

  hw::CoreGroup cg{hw::HwParams{}};
  std::vector<float> top(g.output_count(), -1.0f);
  const hw::TrafficLedger ledger =
      implicit_conv_forward_sim(cg, g, bottom, weight, bias.data(), top);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ASSERT_NEAR(top[i], expected[i], 2e-4f) << i;
  }
  EXPECT_GT(ledger.elapsed_s, 0.0);
  EXPECT_GT(ledger.rlc_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ImplicitConvSimTest,
    ::testing::Values(std::make_tuple(8, 8, 6, 3, 1),
                      std::make_tuple(8, 16, 9, 3, 2),
                      std::make_tuple(16, 8, 5, 1, 1),
                      std::make_tuple(8, 8, 7, 5, 1),
                      std::make_tuple(24, 16, 4, 3, 1)));

TEST(ImplicitConvSimTest, RejectsNonMeshChannels) {
  hw::CoreGroup cg{hw::HwParams{}};
  const auto g = make_geom(1, 3, 8, 6, 3, 1, 1);
  std::vector<float> bottom(g.input_count()), weight(g.weight_count()),
      top(g.output_count());
  EXPECT_THROW(
      implicit_conv_forward_sim(cg, g, bottom, weight, nullptr, top),
      base::CheckError);
}

TEST(ImplicitConvSimTest, TrafficMatchesAnalyticPlanAssumptions) {
  // The analytic plan (conv_plan.cpp implicit_time) assumes: weights read
  // once, output written once, input read K times (once per kernel row).
  // The functional kernel's ledger must obey those counts.
  const auto g = make_geom(1, 8, 8, 8, 3, 1, 1);
  base::Rng rng(67);
  const auto bottom = random_vec(g.input_count(), rng);
  const auto weight = random_vec(g.weight_count(), rng);
  std::vector<float> top(g.output_count());
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger =
      implicit_conv_forward_sim(cg, g, bottom, weight, nullptr, top);

  const std::size_t weight_bytes = g.weight_count() * sizeof(double);
  const std::size_t out_bytes = g.output_count() * sizeof(double);
  const std::size_t in_bytes = g.input_count() * sizeof(double);
  EXPECT_EQ(ledger.dma_put_bytes, out_bytes);
  // Input rows: each output row pulls K input rows (minus the padded ones at
  // the borders), so get traffic is weights + roughly K * input.
  EXPECT_GE(ledger.dma_get_bytes, weight_bytes + in_bytes);
  EXPECT_LE(ledger.dma_get_bytes,
            weight_bytes + static_cast<std::size_t>(g.kernel) * in_bytes);
}

TEST(ImplicitConvSimTest, NoBiasPath) {
  const auto g = make_geom(1, 8, 8, 5, 3, 1, 1);
  base::Rng rng(71);
  const auto bottom = random_vec(g.input_count(), rng);
  const auto weight = random_vec(g.weight_count(), rng);
  std::vector<float> expected(g.output_count()), top(g.output_count());
  conv_forward_implicit(g, bottom.data(), weight.data(), nullptr,
                        expected.data());
  hw::CoreGroup cg{hw::HwParams{}};
  implicit_conv_forward_sim(cg, g, bottom, weight, nullptr, top);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ASSERT_NEAR(top[i], expected[i], 2e-4f);
  }
}

// --- Fig. 4 im2col DMA plan -----------------------------------------------------

class Im2colSimTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colSimTest, MatchesHostIm2col) {
  const auto [in_c, img, kernel, stride] = GetParam();
  const int pad = kernel / 2;
  auto g = make_geom(1, in_c, 4, img, kernel, stride, pad);
  base::Rng rng(73);
  const auto image = random_vec(g.input_count(), rng);
  const std::size_t col_n = static_cast<std::size_t>(g.in_c) * g.kernel *
                            g.kernel * g.out_h() * g.out_w();
  std::vector<float> expected(col_n), col(col_n, -7.0f);
  im2col(image.data(), g, expected.data());
  hw::CoreGroup cg{hw::HwParams{}};
  im2col_sim(cg, g, image, col);
  for (std::size_t i = 0; i < col_n; ++i) {
    ASSERT_EQ(col[i], expected[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2colSimTest,
                         ::testing::Values(std::make_tuple(2, 6, 3, 1),
                                           std::make_tuple(3, 9, 3, 2),
                                           std::make_tuple(1, 8, 5, 1),
                                           std::make_tuple(2, 7, 1, 1),
                                           std::make_tuple(1, 10, 3, 3)));

TEST(Im2colSimTest, TrafficMatchesFig4Plan) {
  // Fig. 4: each input row crosses the bus ONCE (read), each column-matrix
  // element ONCE (write) — the assumption behind conv_plan's im2col_time.
  auto g = make_geom(1, 2, 4, 8, 3, 1, 1);
  base::Rng rng(79);
  const auto image = random_vec(g.input_count(), rng);
  const std::size_t col_n = static_cast<std::size_t>(g.in_c) * 9 *
                            g.out_h() * g.out_w();
  std::vector<float> col(col_n);
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger = im2col_sim(cg, g, image, col);
  EXPECT_EQ(ledger.dma_get_bytes,
            static_cast<std::size_t>(g.input_count()) * sizeof(double));
  EXPECT_EQ(ledger.dma_put_bytes, col_n * sizeof(double));
}

class Col2imSimTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Col2imSimTest, MatchesHostCol2im) {
  const auto [in_c, img_sz, kernel, stride] = GetParam();
  const int pad = kernel / 2;
  auto g = make_geom(1, in_c, 4, img_sz, kernel, stride, pad);
  base::Rng rng(89);
  const std::size_t col_n = static_cast<std::size_t>(g.in_c) * g.kernel *
                            g.kernel * g.out_h() * g.out_w();
  const auto col = random_vec(col_n, rng);
  std::vector<float> expected(g.input_count(), 0.0f),
      image(g.input_count(), 0.0f);
  col2im(col.data(), g, expected.data());
  hw::CoreGroup cg{hw::HwParams{}};
  col2im_sim(cg, g, col, image);
  for (std::size_t i = 0; i < image.size(); ++i) {
    ASSERT_NEAR(image[i], expected[i], 2e-4f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, Col2imSimTest,
                         ::testing::Values(std::make_tuple(2, 6, 3, 1),
                                           std::make_tuple(3, 9, 3, 2),
                                           std::make_tuple(1, 8, 5, 1),
                                           std::make_tuple(2, 7, 1, 1)));

TEST(Col2imSimTest, ReadModifyWriteCostsMoreThanIm2col) {
  // The reverse plan's DMA volume exceeds the forward plan's (image rows are
  // both read and rewritten) — the asymmetry behind the cost model's lower
  // col2im bandwidth cap.
  auto g = make_geom(1, 2, 4, 10, 3, 1, 1);
  base::Rng rng(97);
  const auto image = random_vec(g.input_count(), rng);
  const std::size_t col_n = static_cast<std::size_t>(g.in_c) * 9 *
                            g.out_h() * g.out_w();
  const auto col = random_vec(col_n, rng);
  std::vector<float> col_out(col_n), img_out(g.input_count(), 0.0f);
  hw::CoreGroup cg1{hw::HwParams{}}, cg2{hw::HwParams{}};
  const auto fwd = im2col_sim(cg1, g, image, col_out);
  const auto bwd = col2im_sim(cg2, g, col, img_out);
  EXPECT_GT(bwd.dma_bytes(), fwd.dma_bytes());
  EXPECT_GT(bwd.dma_put_bytes, 0u);
}

TEST(Im2colSimTest, StridedPlansSkipUnusedRows) {
  // With stride 3 and K=1 only every third input row feeds the output; the
  // plan must not read the others.
  auto g = make_geom(1, 1, 1, 9, 1, 3, 0);
  base::Rng rng(83);
  const auto image = random_vec(g.input_count(), rng);
  std::vector<float> col(static_cast<std::size_t>(g.out_h()) * g.out_w());
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger = im2col_sim(cg, g, image, col);
  EXPECT_EQ(ledger.dma_get_bytes,
            static_cast<std::size_t>(g.out_h()) * g.in_w * sizeof(double));
}

// --- Sec. IV-D pooling DMA plan ----------------------------------------------------

/// Naive host max pool used as the oracle.
void host_max_pool(const core::PoolGeom& g, const float* in, float* out) {
  const int oh = g.out_h(), ow = g.out_w();
  for (int b = 0; b < g.batch; ++b) {
    for (int c = 0; c < g.channels; ++c) {
      const float* plane =
          in + (static_cast<std::size_t>(b) * g.channels + c) * g.in_h * g.in_w;
      float* oplane =
          out + (static_cast<std::size_t>(b) * g.channels + c) * oh * ow;
      for (int py = 0; py < oh; ++py) {
        for (int px = 0; px < ow; ++px) {
          float best = -std::numeric_limits<float>::infinity();
          for (int sy = std::max(py * g.stride - g.pad, 0);
               sy < std::min(py * g.stride - g.pad + g.kernel, g.in_h); ++sy) {
            for (int sx = std::max(px * g.stride - g.pad, 0);
                 sx < std::min(px * g.stride - g.pad + g.kernel, g.in_w);
                 ++sx) {
              best = std::max(best, plane[sy * g.in_w + sx]);
            }
          }
          oplane[py * ow + px] = best;
        }
      }
    }
  }
}

class PoolSimTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PoolSimTest, MatchesHostPooling) {
  const auto [img, kernel, stride, pad] = GetParam();
  core::PoolGeom g;
  g.batch = 2;
  g.channels = 3;
  g.in_h = g.in_w = img;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  base::Rng rng(101);
  std::vector<float> in(static_cast<std::size_t>(g.batch) * g.channels * img *
                        img);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  const std::size_t out_n = static_cast<std::size_t>(g.batch) * g.channels *
                            g.out_h() * g.out_w();
  std::vector<float> expected(out_n), out(out_n, -9.0f);
  host_max_pool(g, in.data(), expected.data());
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger = max_pool_sim(cg, g, in, out);
  for (std::size_t i = 0; i < out_n; ++i) {
    ASSERT_EQ(out[i], expected[i]) << i;
  }
  // Output written exactly once.
  EXPECT_EQ(ledger.dma_put_bytes, out_n * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(Geometries, PoolSimTest,
                         ::testing::Values(std::make_tuple(8, 2, 2, 0),
                                           std::make_tuple(9, 3, 2, 0),
                                           std::make_tuple(7, 3, 1, 1),
                                           std::make_tuple(13, 3, 2, 0)));

TEST(PoolSimTest, NonOverlappingWindowsReadInputOnce) {
  // kernel == stride: every input row feeds exactly one output row, so get
  // traffic equals the input size (the cost model's assumption).
  core::PoolGeom g;
  g.batch = 1;
  g.channels = 2;
  g.in_h = g.in_w = 8;
  g.kernel = 2;
  g.stride = 2;
  std::vector<float> in(static_cast<std::size_t>(g.channels) * 64, 1.0f);
  std::vector<float> out(static_cast<std::size_t>(g.channels) * 16);
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger = max_pool_sim(cg, g, in, out);
  EXPECT_EQ(ledger.dma_get_bytes, in.size() * sizeof(double));
}

TEST(PoolSimTest, OverlappingWindowsStillReadEachRowOnce) {
  // AlexNet-style k=3 s=2: adjacent windows share a row; LDM residency must
  // keep the get traffic at exactly one pass over the input.
  core::PoolGeom g;
  g.batch = 1;
  g.channels = 1;
  g.in_h = g.in_w = 9;
  g.kernel = 3;
  g.stride = 2;
  std::vector<float> in(81, 2.0f), out(static_cast<std::size_t>(g.out_h()) *
                                       g.out_w());
  hw::CoreGroup cg{hw::HwParams{}};
  const hw::TrafficLedger ledger = max_pool_sim(cg, g, in, out);
  EXPECT_EQ(ledger.dma_get_bytes, 81 * sizeof(double));
}

}  // namespace
}  // namespace swcaffe::dnn
