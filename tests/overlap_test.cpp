// Bucketed-overlap model: layer-aligned bucket layout, exact byte
// rescaling, and the busy-interval schedule of topo/overlap.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "topo/allreduce.h"
#include "topo/overlap.h"
#include "trace/tracer.h"

namespace swcaffe::topo {
namespace {

std::int64_t layout_bytes(const std::vector<GradientBucket>& b) {
  std::int64_t total = 0;
  for (const auto& x : b) total += x.bytes;
  return total;
}

void expect_tiles(const std::vector<GradientBucket>& b, int num_layers) {
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front().first_layer, 0);
  EXPECT_EQ(b.back().last_layer, num_layers - 1);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_LE(b[i].first_layer, b[i].last_layer);
    if (i > 0) {
      EXPECT_EQ(b[i].first_layer, b[i - 1].last_layer + 1);
    }
  }
}

TEST(MakeBucketsTest, SingleBucketCoversEverything) {
  const std::vector<std::int64_t> bytes = {100, 0, 300, 50};
  const auto b = make_buckets(bytes, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].first_layer, 0);
  EXPECT_EQ(b[0].last_layer, 3);
  EXPECT_EQ(b[0].bytes, 450);
}

TEST(MakeBucketsTest, TilesInOrderAndConservesBytes) {
  const std::vector<std::int64_t> bytes = {10, 0, 40, 0, 0, 25, 25, 100, 0,
                                           60};
  for (int k : {1, 2, 3, 4, 5, 16}) {
    const auto b = make_buckets(bytes, k);
    expect_tiles(b, static_cast<int>(bytes.size()));
    EXPECT_LE(static_cast<int>(b.size()), k);
    EXPECT_EQ(layout_bytes(b), 260);
    for (const auto& x : b) EXPECT_GT(x.bytes, 0);
  }
}

TEST(MakeBucketsTest, ClampsToParameterizedLayers) {
  // Two parameterized layers can fill at most two buckets.
  const std::vector<std::int64_t> bytes = {0, 500, 0, 0, 500, 0};
  const auto b = make_buckets(bytes, 8);
  EXPECT_LE(b.size(), 2u);
  expect_tiles(b, 6);
  EXPECT_EQ(layout_bytes(b), 1000);
}

TEST(MakeBucketsTest, DominantLayerYieldsFewerBuckets) {
  // One layer holding 90% of the volume eats several shares; the layout
  // must still tile with non-empty buckets instead of collapsing to one.
  const std::vector<std::int64_t> bytes = {30, 20, 900, 30, 20};
  const auto b = make_buckets(bytes, 5);
  expect_tiles(b, 5);
  EXPECT_GT(b.size(), 1u);
  for (const auto& x : b) EXPECT_GT(x.bytes, 0);
  EXPECT_EQ(layout_bytes(b), 1000);
}

TEST(MakeBucketsTest, LateHeavyLayerGetsItsOwnEarlyBucket) {
  // AlexNet-like: small convs up front, dominant fc late. Service-order
  // bucketing must NOT lump the fc bytes in with layer 0 (that bucket is
  // only ready when the whole backward pass is done).
  const std::vector<std::int64_t> bytes = {10, 20, 30, 0, 940};
  const auto b = make_buckets(bytes, 2);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1].first_layer, 4);
  EXPECT_EQ(b[1].bytes, 940);
  EXPECT_EQ(b[0].bytes, 60);
}

TEST(MakeBucketsTest, ParameterlessNetDegeneratesToOneEmptyBucket) {
  const std::vector<std::int64_t> bytes = {0, 0, 0};
  const auto b = make_buckets(bytes, 4);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].bytes, 0);
  EXPECT_EQ(b[0].first_layer, 0);
  EXPECT_EQ(b[0].last_layer, 2);
}

TEST(ScaleLayerBytesTest, SumsExactlyToTarget) {
  const std::vector<std::int64_t> bytes = {130295, 716, 0, 2291864, 1909,
                                           140768747, 62572373, 15276458};
  const std::int64_t target = 232600000;
  const auto scaled = scale_layer_bytes(bytes, target);
  ASSERT_EQ(scaled.size(), bytes.size());
  EXPECT_EQ(std::accumulate(scaled.begin(), scaled.end(),
                            static_cast<std::int64_t>(0)),
            target);
  // Proportions preserved: zero stays zero, the dominant layer dominates.
  EXPECT_EQ(scaled[2], 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 5) {
      EXPECT_LT(scaled[i], scaled[5]);
    }
  }
}

TEST(ScaleLayerBytesTest, ZeroSourcePutsBudgetOnLastLayer) {
  const auto scaled = scale_layer_bytes({0, 0, 0}, 1000);
  EXPECT_EQ(scaled[0], 0);
  EXPECT_EQ(scaled[1], 0);
  EXPECT_EQ(scaled[2], 1000);
}

TEST(ScaleLayerBytesTest, IdentityWhenAlreadyAtTarget) {
  const std::vector<std::int64_t> bytes = {100, 250, 650};
  EXPECT_EQ(scale_layer_bytes(bytes, 1000), bytes);
}

// A linear cost function for schedule checks: alpha + bytes / bw.
BucketCostFn linear_cost(double alpha, double bw) {
  return [alpha, bw](std::int64_t bytes) {
    CostBreakdown c;
    c.seconds = alpha + static_cast<double>(bytes) / bw;
    c.alpha_terms = 1;
    c.beta1_bytes = bytes;
    return c;
  };
}

TEST(ScheduleOverlapTest, SingleBucketReproducesSerialBitExactly) {
  const std::vector<std::int64_t> bytes = {100, 300, 600};
  const std::vector<double> bwd = {0.3, 0.2, 0.1};
  const double compute = 1.0;
  const auto cost = linear_cost(0.01, 1e4);
  const auto b = make_buckets(bytes, 1);
  const auto tl = schedule_overlap(b, bwd, compute, cost);
  ASSERT_EQ(tl.buckets.size(), 1u);
  // Bit-exact degenerate contract: ready at exactly compute end, finish at
  // exactly compute + the collective's seconds.
  EXPECT_EQ(tl.buckets[0].ready_s, compute);
  EXPECT_EQ(tl.buckets[0].start_s, compute);
  EXPECT_EQ(tl.finish_s, compute + cost(1000).seconds);
  // exposed is derived as finish - compute (one rounding step away from the
  // raw collective seconds), exactly:
  EXPECT_EQ(tl.exposed_comm_s, tl.finish_s - tl.compute_s);
  EXPECT_NEAR(tl.exposed_comm_s, cost(1000).seconds, 1e-12);
}

TEST(ScheduleOverlapTest, NetworkServesBucketsAsBusyIntervals) {
  const std::vector<std::int64_t> bytes = {100, 100, 100, 100};
  const std::vector<double> bwd = {0.1, 0.1, 0.1, 0.1};
  const auto b = make_buckets(bytes, 4);
  ASSERT_EQ(b.size(), 4u);
  const auto tl = schedule_overlap(b, bwd, 0.4, linear_cost(0.0, 1e3));
  ASSERT_EQ(tl.buckets.size(), 4u);
  for (std::size_t i = 0; i < tl.buckets.size(); ++i) {
    const auto& t = tl.buckets[i];
    EXPECT_GE(t.start_s, t.ready_s);
    EXPECT_DOUBLE_EQ(t.end_s, t.start_s + t.cost.seconds);
    // Single network resource: no two collectives overlap.
    if (i > 0) {
      EXPECT_GE(t.start_s, tl.buckets[i - 1].end_s);
    }
  }
  // Service order is reverse layer order: ready times ascend... backward
  // produces the LAST layers first, so the first-served bucket is ready
  // earliest.
  for (std::size_t i = 1; i < tl.buckets.size(); ++i) {
    EXPECT_GE(tl.buckets[i].ready_s, tl.buckets[i - 1].ready_s);
  }
  EXPECT_DOUBLE_EQ(tl.exposed_comm_s,
                   std::max(0.0, tl.finish_s - tl.compute_s));
}

TEST(ScheduleOverlapTest, OverlapHidesCommUnderBackward) {
  // Comm comparable to backward: bucketing must strictly beat the serial
  // schedule, and comm can never finish before its data is ready.
  const std::vector<std::int64_t> bytes(10, 1000);
  const std::vector<double> bwd(10, 0.1);
  const auto cost = linear_cost(0.0, 1e4);  // 0.1 s per bucket
  const auto serial =
      schedule_overlap(make_buckets(bytes, 1), bwd, 1.0, cost);
  const auto split =
      schedule_overlap(make_buckets(bytes, 10), bwd, 1.0, cost);
  EXPECT_LT(split.finish_s, serial.finish_s);
  EXPECT_GT(split.finish_s, split.compute_s);  // the tail bucket is exposed
  for (const auto& t : split.buckets) EXPECT_GE(t.start_s, t.ready_s);
}

TEST(ScheduleOverlapTest, TraceEmitsOneSpanPerBucket) {
  const std::vector<std::int64_t> bytes = {500, 500};
  const std::vector<double> bwd = {0.1, 0.1};
  const auto tl = schedule_overlap(make_buckets(bytes, 2), bwd, 0.5,
                                   linear_cost(0.001, 1e4));
  trace::Tracer tracer;
  trace_overlap(&tracer, 3, tl);
  int spans = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category == "comm.allreduce") ++spans;
  }
  EXPECT_EQ(spans, 2);
  trace_overlap(nullptr, 0, tl);  // null tracer is a no-op, not a crash
}

// The BusyResource busy-interval tests moved to sim_test.cpp when the
// primitive was hoisted into swsim (sim::Resource).

}  // namespace
}  // namespace swcaffe::topo
