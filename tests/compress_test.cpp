// Property tests for the gradient codecs (topo/compress): quantization
// error bounds, error-feedback telescoping, and bitwise determinism. These
// are the invariants the compressed all-reduce path leans on — a codec
// whose error is unbounded or whose output depends on anything but its
// inputs would silently break the trainer's reproducibility contract.
#include "topo/compress.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "proptest.h"
#include "topo/network_model.h"

namespace swcaffe::topo {
namespace {

using proptest::Rng;
using proptest::for_all;

// --- fp16 scalar conversion ------------------------------------------------

TEST(Fp16Test, ExactValuesRoundTrip) {
  // Everything representable in binary16 comes back bit-exact.
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, 65504.0f,
                  -65504.0f, 0.25f, 6.103515625e-05f /* min normal half */}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Fp16Test, FiniteOverflowClampsInsteadOfInf) {
  EXPECT_EQ(half_to_float(float_to_half(65505.0f)), 65504.0f);
  EXPECT_EQ(half_to_float(float_to_half(1e30f)), 65504.0f);
  EXPECT_EQ(half_to_float(float_to_half(-7e4f)), -65504.0f);
  // Real infinities and NaNs still pass through.
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(
      std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Fp16Test, TinyValuesRoundToZero) {
  EXPECT_EQ(half_to_float(float_to_half(1e-10f)), 0.0f);
  EXPECT_EQ(half_to_float(float_to_half(-1e-10f)), -0.0f);
}

TEST(Fp16Test, RoundTripErrorBounded) {
  // Normal half range: relative error <= 2^-11 (10 fraction bits, RNE).
  // Below the normal range the error is absolute, <= 2^-25 (half the
  // subnormal ulp 2^-24).
  for_all(0xF16F16ULL, 2000, [](Rng& rng, int) {
    // Log-uniform magnitude across the whole half range and beyond zero.
    const float exp = rng.next_float(-30.0f, 15.0f);
    const float mag = std::pow(2.0f, exp);
    const float v = rng.next_below(2) ? mag : -mag;
    const float rt = half_to_float(float_to_half(v));
    const float err = std::abs(rt - v);
    if (std::abs(v) >= 6.103515625e-05f) {
      EXPECT_LE(err, std::abs(v) * (1.0f / 2048.0f) * 1.0001f) << v;
    } else {
      EXPECT_LE(err, 0x1.0p-25f * 1.0001f) << v;
    }
  });
}

TEST(Fp16Test, RoundTripIsIdempotent) {
  // decode(encode(x)) is a fixed point: encoding it again is lossless.
  for_all(0x1DE9ULL, 500, [](Rng& rng, int) {
    const float v = rng.next_float(-1e5f, 1e5f);
    const float once = half_to_float(float_to_half(v));
    const float twice = half_to_float(float_to_half(once));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(once),
              std::bit_cast<std::uint32_t>(twice));
  });
}

// --- int8 quantization -----------------------------------------------------

TEST(Int8Test, RoundTripErrorBoundedByHalfScale) {
  for_all(0x1278ULL, 500, [](Rng& rng, int) {
    const std::size_t n = 1 + rng.next_below(256);
    std::vector<float> v(n);
    float max_abs = 0.0f;
    for (auto& x : v) {
      x = rng.next_float(-10.0f, 10.0f);
      max_abs = std::max(max_abs, std::abs(x));
    }
    std::vector<float> rt = v;
    codec_round_trip(Compression::kInt8, rt);
    const float scale = max_abs / 127.0f;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(rt[i] - v[i]), scale * 0.5f + scale * 1e-5f)
          << "element " << i;
    }
  });
}

TEST(Int8Test, AllZerosStayZero) {
  std::vector<float> v(64, 0.0f);
  codec_round_trip(Compression::kInt8, v);
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(NoneTest, RoundTripIsIdentity) {
  for_all(0x9999ULL, 100, [](Rng& rng, int) {
    std::vector<float> v(32);
    for (auto& x : v) x = rng.next_float(-1e3f, 1e3f);
    std::vector<float> rt = v;
    codec_round_trip(Compression::kNone, rt);
    EXPECT_EQ(rt, v);
  });
}

// --- error feedback --------------------------------------------------------

// After T ef_encode steps the sum of decoded gradients differs from the sum
// of raw gradients by exactly the final residual (modulo float rounding of
// the additions): per-step quantization errors telescope instead of
// accumulating, so the drift after T steps is one quantization step, not T.
void CheckTelescoping(Compression c, float tol_per_unit) {
  const std::uint64_t seed = c == Compression::kFp16 ? 0xEF16ULL : 0xEF08ULL;
  for_all(seed, 100, [=](Rng& rng, int) {
    const std::size_t n = 1 + rng.next_below(64);
    const int steps = 1 + static_cast<int>(rng.next_below(20));
    std::vector<float> residual(n, 0.0f);
    std::vector<double> sum_raw(n, 0.0), sum_decoded(n, 0.0);
    double max_mag = 0.0;
    for (int t = 0; t < steps; ++t) {
      std::vector<float> grad(n);
      for (auto& g : grad) g = rng.next_float(-2.0f, 2.0f);
      for (std::size_t i = 0; i < n; ++i) {
        sum_raw[i] += grad[i];
        max_mag = std::max(max_mag, std::abs(static_cast<double>(grad[i])));
      }
      ef_encode(c, grad, residual);  // grad now holds the decoded values
      for (std::size_t i = 0; i < n; ++i) sum_decoded[i] += grad[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double drift = std::abs(sum_decoded[i] + residual[i] - sum_raw[i]);
      // The bound is per-step float rounding, NOT per-step quantization
      // error: tol_per_unit * max|g| * steps is orders of magnitude below
      // steps * (quantization step), which is what a non-EF codec would
      // accumulate.
      EXPECT_LE(drift, tol_per_unit * (max_mag + 1.0) * steps)
          << "element " << i << " after " << steps << " steps";
    }
  });
}

TEST(ErrorFeedbackTest, Fp16DriftTelescopes) {
  CheckTelescoping(Compression::kFp16, 1e-6f);
}

TEST(ErrorFeedbackTest, Int8DriftTelescopes) {
  CheckTelescoping(Compression::kInt8, 1e-5f);
}

TEST(ErrorFeedbackTest, SingleStepExactDecomposition) {
  // One step: decoded + residual must equal grad + old residual bitwise-ish
  // (exact up to the float add that forms grad + residual).
  for_all(0x51E9ULL, 200, [](Rng& rng, int) {
    const std::size_t n = 1 + rng.next_below(32);
    std::vector<float> grad(n), residual(n);
    for (auto& g : grad) g = rng.next_float(-3.0f, 3.0f);
    for (auto& r : residual) r = rng.next_float(-0.01f, 0.01f);
    std::vector<float> carried(n);
    for (std::size_t i = 0; i < n; ++i) carried[i] = grad[i] + residual[i];
    ef_encode(Compression::kInt8, grad, residual);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(grad[i] + residual[i], carried[i]) << i;
    }
  });
}

TEST(ErrorFeedbackTest, BitIdenticalAcrossReruns) {
  // The whole multi-step EF trajectory is a pure function of its inputs:
  // replaying it produces bit-identical gradients AND residuals.
  for (Compression c : {Compression::kFp16, Compression::kInt8}) {
    Rng gen(0xB17B17ULL);
    const std::size_t n = 96;
    const int steps = 8;
    std::vector<std::vector<float>> grads(steps, std::vector<float>(n));
    for (auto& g : grads) {
      for (auto& x : g) x = gen.next_float(-1.0f, 1.0f);
    }
    auto run = [&](std::vector<std::vector<float>>& out_g,
                   std::vector<float>& out_r) {
      out_g = grads;
      out_r.assign(n, 0.0f);
      for (auto& g : out_g) ef_encode(c, g, out_r);
    };
    std::vector<std::vector<float>> g1, g2;
    std::vector<float> r1, r2;
    run(g1, r1);
    run(g2, r2);
    for (int t = 0; t < steps; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(g1[t][i]),
                  std::bit_cast<std::uint32_t>(g2[t][i]));
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(r1[i]),
                std::bit_cast<std::uint32_t>(r2[i]));
    }
  }
}

// --- wire model ------------------------------------------------------------

TEST(WireBytesTest, CodecRatios) {
  EXPECT_EQ(wire_bytes(Compression::kNone, 1000), 1000);
  EXPECT_EQ(wire_bytes(Compression::kFp16, 1000), 500);
  EXPECT_EQ(wire_bytes(Compression::kInt8, 1000), 250 + kInt8ScaleBytes);
}

TEST(WireBytesTest, CodecSecondsZeroOnlyForNone) {
  const NetParams net = sunway_network();
  EXPECT_EQ(codec_seconds(Compression::kNone, 1 << 20, net), 0.0);
  EXPECT_GT(codec_seconds(Compression::kFp16, 1 << 20, net), 0.0);
  EXPECT_GT(codec_seconds(Compression::kInt8, 1 << 20, net), 0.0);
}

TEST(WireBytesTest, CostCompressedIdentityForNone) {
  const NetParams net = sunway_network();
  const auto fn = [](std::int64_t b) {
    CostBreakdown c;
    c.seconds = static_cast<double>(b) * 1e-9;
    return c;
  };
  EXPECT_EQ(cost_compressed(Compression::kNone, 4096, net, fn).seconds,
            fn(4096).seconds);
  EXPECT_GT(cost_compressed(Compression::kInt8, 4096, net, fn).seconds, 0.0);
  EXPECT_LT(cost_compressed(Compression::kFp16, 1 << 26, net, fn).seconds,
            fn(1 << 26).seconds);  // wire saving beats codec passes at size
}

TEST(NamesTest, RoundTrip) {
  for (Compression c :
       {Compression::kNone, Compression::kFp16, Compression::kInt8}) {
    Compression back = Compression::kNone;
    EXPECT_TRUE(compression_from_name(compression_name(c), &back));
    EXPECT_EQ(back, c);
  }
  Compression out = Compression::kNone;
  EXPECT_FALSE(compression_from_name("gzip", &out));
  EXPECT_FALSE(compression_from_name(nullptr, &out));
}

}  // namespace
}  // namespace swcaffe::topo
