// Cross-module "headline shape" assertions: the qualitative results of the
// paper's evaluation section must hold in the simulation. These are the
// invariants EXPERIMENTS.md reports on; each test names the table/figure it
// guards.
#include <gtest/gtest.h>

#include "core/models.h"
#include "fixtures.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "perfmodel/device_model.h"
#include "swdnn/conv_plan.h"
#include "swdnn/layer_estimate.h"
#include "topo/allreduce.h"

namespace swcaffe {
namespace {

double sw_node_img_s(const core::NetSpec& quarter_spec, int full_batch) {
  hw::CostModel cost;
  const auto descs = core::describe_net_spec(quarter_spec);
  return dnn::node_throughput_img_s(cost, descs, full_batch);
}

double gpu_img_s(const core::NetSpec& spec, int batch) {
  const auto descs = core::describe_net_spec(spec);
  return perfmodel::device_throughput_img_s(perfmodel::k40m(), descs, batch,
                                            fixtures::imagenet_input_bytes(batch));
}

double cpu_img_s(const core::NetSpec& spec, int batch) {
  const auto descs = core::describe_net_spec(spec);
  return perfmodel::device_throughput_img_s(perfmodel::xeon_e5_2680v3(), descs,
                                            batch, 0);
}

// --- Table III -----------------------------------------------------------------

TEST(TableIII, SwBeatsGpuOnlyOnAlexNet) {
  // Paper ratios SW/NV: AlexNet 1.19, VGG-16 0.45, VGG-19 0.49,
  // ResNet-50 0.21, GoogleNet 0.23.
  const double alex =
      sw_node_img_s(core::alexnet_bn(64), 256) / gpu_img_s(core::alexnet_bn(256), 256);
  const double vgg16 =
      sw_node_img_s(core::vgg(16, 16), 64) / gpu_img_s(core::vgg(16, 64), 64);
  const double resnet = sw_node_img_s(core::resnet50(8), 32) /
                        gpu_img_s(core::resnet50(32), 32);
  const double woglenet = sw_node_img_s(core::googlenet(32), 128) /
                          gpu_img_s(core::googlenet(128), 128);
  EXPECT_GT(alex, 0.8);     // SW competitive-to-better on AlexNet
  EXPECT_LT(vgg16, 0.9);    // GPU wins on VGG
  EXPECT_GT(vgg16, 0.2);
  EXPECT_LT(resnet, 0.5);   // GPU wins big on small-channel nets
  EXPECT_LT(woglenet, 0.5);
  // Ordering: AlexNet ratio > VGG ratio > ResNet/GoogleNet ratios.
  EXPECT_GT(alex, vgg16);
  EXPECT_GT(vgg16, resnet);
}

TEST(TableIII, SwBeatsCpuEverywhere) {
  // Paper: 3.04x-7.84x over the 12-core CPU on all five networks.
  struct Cfg {
    core::NetSpec quarter, full;
    int batch;
  };
  const Cfg cfgs[] = {
      {core::alexnet_bn(64), core::alexnet_bn(256), 256},
      {core::vgg(16, 16), core::vgg(16, 64), 64},
      {core::vgg(19, 16), core::vgg(19, 64), 64},
      {core::resnet50(8), core::resnet50(32), 32},
      {core::googlenet(32), core::googlenet(128), 128},
  };
  for (const auto& c : cfgs) {
    const double ratio =
        sw_node_img_s(c.quarter, c.batch) / cpu_img_s(c.full, c.batch);
    EXPECT_GT(ratio, 1.5) << c.full.name;
    EXPECT_LT(ratio, 20.0) << c.full.name;
  }
}

TEST(TableIII, SwAlexNetAbsoluteThroughputNearPaper) {
  // Paper: 94.17 img/s on one SW26010 node at batch 256.
  const double img_s = sw_node_img_s(core::alexnet_bn(64), 256);
  EXPECT_GT(img_s, 40.0);
  EXPECT_LT(img_s, 220.0);
}

// --- Figs. 8/9 -------------------------------------------------------------------

TEST(Fig8, BandwidthBoundLayersRelativelyWorseOnSw) {
  // Paper Sec. VI-A(i): pooling/BN/ReLU take a visible share on SW26010 but
  // are nearly free on the GPU's 288 GB/s memory.
  hw::CostModel cost;
  const auto descs = core::describe_net_spec(core::alexnet_bn(64));
  double sw_conv = 0, sw_mem = 0, gpu_conv = 0, gpu_mem = 0;
  const auto gpu = perfmodel::k40m();
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const double sw = dnn::estimate_layer_sw(cost, d, first).total();
    const double gp = perfmodel::estimate_layer_dev(gpu, d, first).total();
    if (d.kind == core::LayerKind::kConv ||
        d.kind == core::LayerKind::kInnerProduct) {
      sw_conv += sw;
      gpu_conv += gp;
    } else if (d.kind == core::LayerKind::kPool ||
               d.kind == core::LayerKind::kReLU ||
               d.kind == core::LayerKind::kBatchNorm) {
      sw_mem += sw;
      gpu_mem += gp;
    }
  }
  EXPECT_GT(sw_mem / sw_conv, gpu_mem / gpu_conv);
}

TEST(Fig9, FirstVggConvsLagGpuMost) {
  // Paper Sec. VI-A(ii): the first two convolutions are SW26010's weakest
  // spot (im2col on big images, 3/64 channels).
  hw::CostModel cost;
  const auto gpu = perfmodel::k40m();
  const auto descs = core::describe_net_spec(core::vgg(16, 16));
  double worst_early_ratio = 0.0, mid_ratio = 0.0;
  for (const auto& d : descs) {
    if (d.kind != core::LayerKind::kConv) continue;
    const bool first = d.name == "conv1_1";
    const double ratio =
        dnn::estimate_layer_sw(cost, d, first).fwd_s /
        perfmodel::estimate_layer_dev(gpu, d, first).fwd_s;
    if (d.name == "conv1_1" || d.name == "conv1_2") {
      worst_early_ratio = std::max(worst_early_ratio, ratio);
    }
    if (d.name == "conv4_2") mid_ratio = ratio;
  }
  EXPECT_GT(worst_early_ratio, mid_ratio);
}

// --- Figs. 10/11 -----------------------------------------------------------------

TEST(Fig10, SpeedupBandsMatchPaper) {
  // Paper: AlexNet speedups at 1024 nodes: 715x (B=256), 562x (B=128),
  // 410x (B=64); ResNet-50: 928x (B=32), 828x (B=64).
  hw::CostModel cost;
  parallel::SsgdOptions opt;  // rhd + round-robin, q=256
  auto speedup_at_1024 = [&](const core::NetSpec& quarter,
                             std::int64_t param_bytes) {
    const auto descs = core::describe_net_spec(quarter);
    const auto curve = parallel::scalability_curve(cost, descs, param_bytes,
                                                   opt, {1024});
    return curve[0].speedup;
  };
  const std::int64_t alex_bytes = fixtures::kAlexNetGradientBytes;
  const std::int64_t resnet_bytes = fixtures::kResNet50GradientBytes;
  const double alex256 = speedup_at_1024(core::alexnet_bn(64), alex_bytes);
  const double alex64 = speedup_at_1024(core::alexnet_bn(16), alex_bytes);
  const double resnet32 = speedup_at_1024(core::resnet50(8), resnet_bytes);
  EXPECT_GT(alex256, alex64);       // bigger sub-batch scales better
  EXPECT_GT(resnet32, alex256);     // ResNet-50 scales best (Fig. 10)
  EXPECT_NEAR(alex256, 715.0, 250.0);
  EXPECT_NEAR(resnet32, 928.0, 120.0);
}

TEST(Fig11, CommunicationFractionsMatchPaper) {
  // Paper at 1024 nodes: AlexNet 60.01% (B=64), 30.13% (B=256);
  // ResNet-50 10.65% (B=32).
  hw::CostModel cost;
  parallel::SsgdOptions opt;
  auto frac = [&](const core::NetSpec& quarter, std::int64_t bytes) {
    const auto curve = parallel::scalability_curve(
        cost, core::describe_net_spec(quarter), bytes, opt, {1024});
    return curve[0].comm_fraction;
  };
  const double alex64 = frac(core::alexnet_bn(16), fixtures::kAlexNetGradientBytes);
  const double alex256 = frac(core::alexnet_bn(64), fixtures::kAlexNetGradientBytes);
  const double resnet32 = frac(core::resnet50(8), fixtures::kResNet50GradientBytes);
  EXPECT_GT(alex64, alex256);
  EXPECT_GT(alex256, resnet32);
  EXPECT_NEAR(alex64, 0.60, 0.22);
  EXPECT_NEAR(alex256, 0.30, 0.15);
  EXPECT_NEAR(resnet32, 0.107, 0.09);
}

// --- Table II regression guard: every measured cell of the paper ----------------

struct Table2Row {
  const char* name;
  int ni, no, img;
  // Paper values in seconds (-1 = unsupported, 0 = NA/skip).
  double fwd_imp, fwd_exp, wd_imp, wd_exp, id_imp, id_exp;
};

class Table2CellTest : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2CellTest, EveryCellWithinFactorBandOfPaper) {
  const Table2Row& r = GetParam();
  core::ConvGeom g;
  g.batch = 128;
  g.in_c = r.ni;
  g.out_c = r.no;
  g.in_h = g.in_w = r.img;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  hw::CostModel cost;
  const dnn::ConvEstimate est = dnn::estimate_conv(cost, g);
  // Shape requirement: availability identical, magnitudes within 2.5x.
  constexpr double kBand = 2.5;
  auto check = [&](double ours, double paper, const char* what) {
    if (paper == 0) return;  // NA in the paper
    if (paper < 0) {
      EXPECT_LT(ours, 0) << what << ": paper says unsupported";
      return;
    }
    ASSERT_GT(ours, 0) << what << ": paper supports this configuration";
    EXPECT_LT(ours / paper, kBand) << what;
    EXPECT_GT(ours / paper, 1.0 / kBand) << what;
  };
  check(est.forward.implicit_s, r.fwd_imp, "fwd implicit");
  check(est.forward.explicit_s, r.fwd_exp, "fwd explicit");
  check(est.backward_weight.implicit_s, r.wd_imp, "wdiff implicit");
  check(est.backward_weight.explicit_s, r.wd_exp, "wdiff explicit");
  check(est.backward_input.implicit_s, r.id_imp, "idiff implicit");
  check(est.backward_input.explicit_s, r.id_exp, "idiff explicit");
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, Table2CellTest,
    ::testing::Values(
        Table2Row{"conv1_1", 3, 64, 224, -1, 4.19, -1, 1.10, 0, 0},
        Table2Row{"conv1_2", 64, 64, 224, 4.30, 7.79, -1, 5.22, -1, 14.97},
        Table2Row{"conv2_1", 64, 128, 112, 1.63, 2.45, -1, 1.33, -1, 3.61},
        Table2Row{"conv2_2", 128, 128, 112, 2.34, 3.14, 2.26, 2.25, 2.39, 6.11},
        Table2Row{"conv3_1", 128, 256, 56, 1.06, 0.73, 0.92, 0.68, 0.95, 1.69},
        Table2Row{"conv3_2", 256, 256, 56, 1.79, 1.14, 1.56, 1.29, 1.82, 3.05},
        Table2Row{"conv4_1", 256, 512, 28, 0.84, 0.69, 0.70, 0.71, 0.85, 0.95},
        Table2Row{"conv4_2", 512, 512, 28, 1.68, 1.33, 1.27, 1.33, 1.75, 1.89},
        Table2Row{"conv5_1", 512, 512, 14, 0.40, 0.62, 0.31, 0.65, 0.43,
                  0.80}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      return info.param.name;
    });

TEST(Fig7Ablation, RoundRobinBeatsAdjacentAtScale) {
  // The paper's all-reduce contribution quantified end to end.
  hw::CostModel cost;
  const auto descs = core::describe_net_spec(core::alexnet_bn(64));
  parallel::SsgdOptions adj, rr;
  adj.algo = parallel::AllreduceAlgo::kRhdAdjacent;
  rr.algo = parallel::AllreduceAlgo::kRhdRoundRobin;
  const auto c_adj = parallel::scalability_curve(cost, descs, fixtures::kAlexNetGradientBytes, adj,
                                                 {1024});
  const auto c_rr = parallel::scalability_curve(cost, descs, fixtures::kAlexNetGradientBytes, rr,
                                                {1024});
  EXPECT_GT(c_rr[0].speedup, 1.5 * c_adj[0].speedup);
}

}  // namespace
}  // namespace swcaffe
