// swcheck: every diagnostic code fires on a deliberately broken plan, stays
// silent on the paper's AlexNet/VGG configurations, and agrees with runtime
// behaviour — a plan the checker passes never throws from Ldm::alloc when
// the functional kernel actually runs, and a kLdmOverflow error predicts
// exactly that throw.
#include <gtest/gtest.h>

#include <vector>

#include "base/log.h"
#include "base/rng.h"
#include "check/plan_model.h"
#include "check/rules.h"
#include "check/verify.h"
#include "core/models.h"
#include "fixtures.h"
#include "hw/chip.h"
#include "hw/cost_model.h"
#include "hw/ldm.h"
#include "swdnn/implicit_conv_sim.h"
#include "swgemm/mesh_gemm.h"

namespace swcaffe::check {
namespace {

const hw::HwParams kHp;
const hw::CostModel kCost{kHp};

core::ConvGeom make_geom(int batch, int in_c, int out_c, int img, int kernel,
                         int stride, int pad) {
  core::ConvGeom g;
  g.batch = batch;
  g.in_c = in_c;
  g.out_c = out_c;
  g.in_h = g.in_w = img;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

// --- LDM budget --------------------------------------------------------------

TEST(LdmRules, OversizedMeshGemmTileFires) {
  // 512^3: three 64x64 double tiles = 96 KB per CPE, far over the 64 KB LDM.
  const Report report = verify_mesh_gemm(kHp, 512, 512, 512);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kLdmOverflow));
}

TEST(LdmRules, FittingMeshGemmIsSilent) {
  EXPECT_TRUE(verify_mesh_gemm(kHp, 256, 256, 256).diagnostics().empty());
  EXPECT_TRUE(verify_mesh_gemm(kHp, 64, 64, 64).diagnostics().empty());
}

TEST(LdmRules, CheckerAgreesWithMeshGemmKernel) {
  // The contract the whole checker hangs on: kLdmOverflow <=> the functional
  // kernel throws from Ldm::alloc; a clean report <=> it runs.
  auto run_kernel = [](int dim) {
    const std::size_t n = static_cast<std::size_t>(dim) * dim;
    std::vector<double> a(n, 1.0), b(n, 1.0), c(n, 0.0);
    hw::CoreGroup cg{kHp};
    gemm::mesh_gemm(cg, a, b, c, dim, dim, dim);
  };
  EXPECT_TRUE(verify_mesh_gemm(kHp, 64, 64, 64).ok());
  EXPECT_NO_THROW(run_kernel(64));
  EXPECT_TRUE(verify_mesh_gemm(kHp, 512, 512, 512).has(Code::kLdmOverflow));
  EXPECT_THROW(run_kernel(512), base::CheckError);
}

TEST(LdmRules, DoubleBufferShortfallWarns) {
  LdmPlan plan;
  plan.kernel = "synthetic";
  plan.items.push_back({"streamed tile", 40 * 1024, /*double_buffered=*/true});
  Report report;
  check_ldm(plan, kHp, Options{}, "layer", &report);
  EXPECT_TRUE(report.has(Code::kLdmDoubleBuffer));
  EXPECT_EQ(report.error_count(), 0);  // it runs, just without overlap
}

// --- DMA legality ------------------------------------------------------------

DmaPlan one_op_plan(std::size_t run, std::size_t stride, double total) {
  DmaPlan plan;
  plan.kernel = "synthetic";
  plan.ops.push_back({"op", false, run, stride, total});
  plan.charged_bytes = total;
  return plan;
}

TEST(DmaRules, ZeroLengthRunFires) {
  Report report;
  check_dma(one_op_plan(/*run=*/0, /*stride=*/0, /*total=*/1024), Options{},
            "layer", &report);
  EXPECT_TRUE(report.has(Code::kDmaEmptyRun));
}

TEST(DmaRules, MisalignedRunFires) {
  Report report;
  check_dma(one_op_plan(/*run=*/6, /*stride=*/0, /*total=*/1024), Options{},
            "layer", &report);
  EXPECT_TRUE(report.has(Code::kDmaMisaligned));
}

TEST(DmaRules, OverlappingStrideFires) {
  Report report;
  check_dma(one_op_plan(/*run=*/16, /*stride=*/8, /*total=*/1024), Options{},
            "layer", &report);
  EXPECT_TRUE(report.has(Code::kDmaOverlap));
}

TEST(DmaRules, ByteConservationViolationFires) {
  DmaPlan plan = one_op_plan(/*run=*/256, /*stride=*/0, /*total=*/4096);
  plan.charged_bytes = 8192;  // model charges twice what the ops move
  Report report;
  check_dma(plan, Options{}, "layer", &report);
  EXPECT_TRUE(report.has(Code::kDmaBytesMismatch));
}

TEST(DmaRules, ShortRunIsPedanticOnly) {
  const DmaPlan plan = one_op_plan(/*run=*/56, /*stride=*/256, /*total=*/4096);
  Report quiet;
  check_dma(plan, Options{}, "layer", &quiet);
  EXPECT_FALSE(quiet.has(Code::kDmaShortRun));
  Options pedantic;
  pedantic.pedantic = true;
  Report loud;
  check_dma(plan, pedantic, "layer", &loud);
  EXPECT_TRUE(loud.has(Code::kDmaShortRun));
  EXPECT_EQ(loud.error_count(), 0);  // advisory, not an error
}

TEST(DmaRules, GemmPlanConservesBytesAgainstEstimate) {
  // Cross-module byte conservation: the enumerated A/B/C panel traffic must
  // equal what gemm::estimate_gemm charges, including ragged panel edges.
  for (const auto& [m, n, k] : {std::tuple<int, int, int>{1000, 777, 333},
                               {96, 3025, 363},
                               {512, 512, 512},
                               {25088, 4096, 128}}) {
    const Report report = verify_gemm(kCost, m, n, k);
    EXPECT_FALSE(report.has(Code::kDmaBytesMismatch))
        << m << "x" << n << "x" << k << ": " << report.summary();
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

// --- RLC schedules -----------------------------------------------------------

TEST(RlcRules, CyclicScheduleDeadlocks) {
  // Two CPEs on one row, each receiving before it sends: the classic
  // circular wait. FIFO matching pairs each recv with the other's send, and
  // the cycle recv->send->recv->send closes.
  CommSchedule sched;
  sched.name = "cyclic";
  sched.ops.push_back({CommOp::Kind::kRecvRow, 0, 0, -1, -1, 32});
  sched.ops.push_back({CommOp::Kind::kSend, 0, 0, 0, 1, 32});
  sched.ops.push_back({CommOp::Kind::kRecvRow, 0, 1, -1, -1, 32});
  sched.ops.push_back({CommOp::Kind::kSend, 0, 1, 0, 0, 32});
  Report report;
  check_schedule(sched, kHp, Options{}, "layer", &report);
  EXPECT_TRUE(report.has(Code::kRlcDeadlock));
}

TEST(RlcRules, SendBeforeRecvDoesNotDeadlock) {
  // Same pairing, but both CPEs send first: no circular wait.
  CommSchedule sched;
  sched.name = "acyclic";
  sched.ops.push_back({CommOp::Kind::kSend, 0, 0, 0, 1, 32});
  sched.ops.push_back({CommOp::Kind::kRecvRow, 0, 0, -1, -1, 32});
  sched.ops.push_back({CommOp::Kind::kSend, 0, 1, 0, 0, 32});
  sched.ops.push_back({CommOp::Kind::kRecvRow, 0, 1, -1, -1, 32});
  Report report;
  check_schedule(sched, kHp, Options{}, "layer", &report);
  EXPECT_TRUE(report.diagnostics().empty());
}

TEST(RlcRules, DiagonalSendIsIllegal) {
  CommSchedule sched;
  sched.name = "diag";
  sched.ops.push_back({CommOp::Kind::kSend, 0, 0, 1, 1, 32});
  Report report;
  check_schedule(sched, kHp, Options{}, "layer", &report);
  EXPECT_TRUE(report.has(Code::kRlcIllegalPair));
}

TEST(RlcRules, UnmatchedRecvAndLeftoverMessageFire) {
  CommSchedule lone_recv;
  lone_recv.name = "lone-recv";
  lone_recv.ops.push_back({CommOp::Kind::kRecvRow, 2, 3, -1, -1, 32});
  Report r1;
  check_schedule(lone_recv, kHp, Options{}, "layer", &r1);
  EXPECT_TRUE(r1.has(Code::kRlcUnmatched));

  CommSchedule lone_send;
  lone_send.name = "lone-send";
  lone_send.ops.push_back({CommOp::Kind::kSend, 2, 3, 2, 5, 32});
  Report r2;
  check_schedule(lone_send, kHp, Options{}, "layer", &r2);
  EXPECT_TRUE(r2.has(Code::kRlcUnmatched));
}

TEST(RlcRules, BuiltinSchedulesAreDeadlockFree) {
  for (const CommSchedule& sched :
       {mesh_gemm_schedule(kHp), implicit_conv_schedule(kHp)}) {
    Report report;
    check_schedule(sched, kHp, Options{}, sched.name, &report);
    EXPECT_TRUE(report.diagnostics().empty()) << sched.name << ": "
                                              << report.summary();
  }
}

TEST(RlcRules, AllreduceSchedulesAreDeadlockFree) {
  for (const char* algo : {"rhd", "ring", "ps"}) {
    for (int nodes : {1, 2, 24, 100, 256, 1024}) {
      const Report report = verify_allreduce(algo, nodes);
      EXPECT_TRUE(report.diagnostics().empty())
          << algo << " over " << nodes << ": " << report.summary();
    }
  }
  EXPECT_TRUE(verify_allreduce("butterfly", 8).has(Code::kGeomInvalid));
  EXPECT_TRUE(verify_allreduce("rhd", 0).has(Code::kGeomInvalid));
}

TEST(RlcRules, HierarchicalAllreduceSchedulesAreDeadlockFree) {
  // Engaging geometries: every phase schedule plus the composed phase-order
  // timeline must be silent.
  for (auto [nodes, q] : {std::pair{16, 4}, {1024, 256}, {24, 8}}) {
    const Report report = verify_allreduce("hier", nodes, Options{}, q);
    EXPECT_TRUE(report.diagnostics().empty())
        << "hier " << nodes << "/" << q << ": " << report.summary();
  }
  // Non-engaging geometries fall back to the flat RHD schedule (mirroring
  // the runtime) and must be just as silent.
  for (auto [nodes, q] : {std::pair{10, 4}, {100, 256}, {24, 7}}) {
    const Report report = verify_allreduce("hier", nodes, Options{}, q);
    EXPECT_TRUE(report.diagnostics().empty())
        << "hier fallback " << nodes << "/" << q << ": " << report.summary();
  }
  EXPECT_TRUE(verify_allreduce("hier", 0).has(Code::kGeomInvalid));
}

// --- Communication-config legality (algorithm x compression) -----------------

CommPlan sane_comm_plan() {
  CommPlan p;
  p.name = "test-comm";
  p.algorithm = "hierarchical";
  p.compression = "int8";
  p.num_nodes = 1024;
  p.supernode_size = 256;
  p.buckets = 4;
  p.raw_bytes = 4 << 20;
  p.wire_bytes = (4 << 20) / 4 + 4 * 4;  // raw/4 + buckets * scale header
  return p;
}

TEST(CommRules, SanePlanIsSilent) {
  Report report;
  check_comm(sane_comm_plan(), Options{}, "test-comm", &report);
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
  EXPECT_TRUE(verify_comm(sane_comm_plan()).ok());
}

TEST(CommRules, EveryAlgorithmCodecComboHasAVerdict) {
  // int8 composes only with single-shot-encode collectives: ring and
  // parameter-server re-quantize partial sums every hop.
  for (const char* algo : {"rhd-round-robin", "rhd-adjacent", "hierarchical",
                           "ring", "param-server"}) {
    for (const char* codec : {"none", "fp16", "int8"}) {
      CommPlan p = sane_comm_plan();
      p.algorithm = algo;
      p.compression = codec;
      p.wire_bytes = 0;  // skip the byte-conservation rule here
      Report report;
      check_comm(p, Options{}, p.name, &report);
      const bool illegal =
          std::string(codec) == "int8" &&
          (std::string(algo) == "ring" || std::string(algo) == "param-server");
      EXPECT_EQ(report.has(Code::kCommCompressCombo), illegal)
          << algo << " x " << codec << ": " << report.summary();
    }
  }
}

TEST(CommRules, WireByteConservationIsEnforced) {
  // Claimed wire bytes must match the codec encoding exactly: raw for none,
  // raw/2 for fp16, raw/4 plus one scale header per bucket for int8.
  CommPlan p = sane_comm_plan();
  p.wire_bytes += 1;
  Report report;
  check_comm(p, Options{}, p.name, &report);
  EXPECT_TRUE(report.has(Code::kCommCompressBytes)) << report.summary();

  p = sane_comm_plan();
  p.compression = "fp16";
  p.wire_bytes = p.raw_bytes / 2;
  report = Report{};
  check_comm(p, Options{}, p.name, &report);
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
  p.wire_bytes = p.raw_bytes;  // forgot to halve
  report = Report{};
  check_comm(p, Options{}, p.name, &report);
  EXPECT_TRUE(report.has(Code::kCommCompressBytes));

  // wire_bytes == 0 means "don't check" — a plan that never claims a wire
  // total is not held to conservation.
  p.wire_bytes = 0;
  report = Report{};
  check_comm(p, Options{}, p.name, &report);
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
}

TEST(CommRules, UnknownNamesAndDegenerateGeometryAreInvalid) {
  CommPlan p = sane_comm_plan();
  p.algorithm = "butterfly";
  EXPECT_TRUE(verify_comm(p).has(Code::kGeomInvalid));
  p = sane_comm_plan();
  p.compression = "gzip";
  EXPECT_TRUE(verify_comm(p).has(Code::kGeomInvalid));
  p = sane_comm_plan();
  p.num_nodes = 0;
  EXPECT_TRUE(verify_comm(p).has(Code::kGeomInvalid));
  p = sane_comm_plan();
  p.buckets = 0;
  EXPECT_TRUE(verify_comm(p).has(Code::kGeomInvalid));
  p = sane_comm_plan();
  p.raw_bytes = -1;
  EXPECT_TRUE(verify_comm(p).has(Code::kGeomInvalid));
}

TEST(CommRules, VerifyCommComposesHierarchicalTimeline) {
  // For engaging hierarchical plans verify_comm additionally runs the
  // composed phase-order timeline; both engaging and fallback geometries
  // must come back clean.
  CommPlan p = sane_comm_plan();
  p.num_nodes = 16;
  p.supernode_size = 4;
  p.compression = "none";
  p.wire_bytes = p.raw_bytes;
  EXPECT_TRUE(verify_comm(p).ok()) << verify_comm(p).summary();
  p.num_nodes = 10;  // fallback geometry
  EXPECT_TRUE(verify_comm(p).ok()) << verify_comm(p).summary();
}

TEST(CommRules, Int8RingRejectedExactlyAsTheTrainerSees) {
  // The same plan the SsgdTrainer constructor builds: rejection must happen
  // in verify_comm, BEFORE any pricing.
  CommPlan p;
  p.name = "ssgd-comm";
  p.algorithm = "ring";
  p.compression = "int8";
  p.num_nodes = 8;
  p.buckets = 2;
  p.raw_bytes = 1 << 16;
  p.wire_bytes = (1 << 16) / 4 + 2 * 4;
  const Report report = verify_comm(p);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kCommCompressCombo));
}

// --- Implicit convolution predicates (Table II) ------------------------------

TEST(ImplicitRules, BackwardBelow128ChannelsUnsupported) {
  // 32-channel conv forced onto the implicit plan: forward is supported but
  // degraded (< 64 channels), backward is a Table II dash (< 128 channels).
  const auto g = make_geom(4, 32, 32, 28, 3, 1, 1);
  const Report report =
      verify_conv(kCost, g, "conv", Options{}, ConvStrategy::kImplicit);
  EXPECT_TRUE(report.has(Code::kImplicitUnsupported));
  EXPECT_TRUE(report.has(Code::kImplicitDegraded));
}

TEST(ImplicitRules, ForwardBelowRegisterBlockUnsupported) {
  const auto g = make_geom(4, 4, 64, 28, 3, 1, 1);
  const Report report =
      verify_conv(kCost, g, "conv", Options{}, ConvStrategy::kImplicit);
  EXPECT_TRUE(report.has(Code::kImplicitUnsupported));
}

TEST(ImplicitRules, WideChannelConvIsClean) {
  // VGG conv3_1-like shape: implicit fully supported, nothing to report.
  const auto g = make_geom(8, 256, 256, 56, 3, 1, 1);
  EXPECT_TRUE(verify_conv(kCost, g, "conv", Options{},
                          ConvStrategy::kImplicit)
                  .diagnostics()
                  .empty());
  EXPECT_TRUE(verify_conv(kCost, g).diagnostics().empty());
}

TEST(ImplicitRules, GeometryErrorsAreCaughtBeforePlanning) {
  // Kernel larger than the padded input: empty output.
  const auto g = make_geom(1, 8, 8, 4, 9, 1, 0);
  EXPECT_TRUE(verify_conv(kCost, g).has(Code::kGeomInvalid));
  // Channels not divisible by the group count.
  auto grouped = make_geom(1, 9, 8, 8, 3, 1, 1);
  grouped.group = 2;
  EXPECT_TRUE(verify_conv(kCost, grouped).has(Code::kGeomInvalid));
  // Non-mesh-divisible raw mesh_gemm launch.
  EXPECT_TRUE(verify_mesh_gemm(kHp, 100, 100, 100).has(Code::kGeomInvalid));
}

// --- Agreement with the functional implicit kernel ---------------------------

TEST(Agreement, ImplicitSimPlanPredictsLdmThrow) {
  // 256x256 channels: the simulator's unblocked per-CPE filter block is
  // 32*32*9 doubles = 72 KB > 64 KB. The checker's sim-plan must say
  // overflow, and the kernel must actually throw from Ldm::alloc.
  const auto g = make_geom(1, 256, 256, 8, 3, 1, 1);
  Report report;
  check_ldm(implicit_conv_sim_ldm_plan(kHp, g), kHp, Options{}, "conv",
            &report);
  EXPECT_TRUE(report.has(Code::kLdmOverflow));

  std::vector<float> bottom(g.input_count(), 0.1f);
  std::vector<float> weight(g.weight_count(), 0.1f);
  std::vector<float> top(g.output_count());
  hw::CoreGroup cg{kHp};
  EXPECT_THROW(
      dnn::implicit_conv_forward_sim(cg, g, bottom, weight, nullptr, top),
      base::CheckError);
}

TEST(Agreement, ImplicitSimPlanPassesWhereKernelRuns) {
  const auto g = make_geom(2, 8, 16, 9, 3, 2, 1);
  Report report;
  check_ldm(implicit_conv_sim_ldm_plan(kHp, g), kHp, Options{}, "conv",
            &report);
  EXPECT_TRUE(report.diagnostics().empty());

  base::Rng rng(61);
  std::vector<float> bottom(g.input_count()), weight(g.weight_count()),
      top(g.output_count());
  for (auto& v : bottom) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : weight) v = rng.uniform(-1.0f, 1.0f);
  hw::CoreGroup cg{kHp};
  EXPECT_NO_THROW(
      dnn::implicit_conv_forward_sim(cg, g, bottom, weight, nullptr, top));
}

TEST(Agreement, BlockedImplicitPlanFitsWherePaperLayersNeedIt) {
  // VGG conv5-style 512x512 channels: the sub-blocked real-kernel plan must
  // fit (the kernel trades passes for LDM), even though the unblocked
  // simulator plan cannot.
  const auto g = make_geom(1, 512, 512, 14, 3, 1, 1);
  Report blocked;
  check_ldm(implicit_conv_ldm_plan(kHp, g), kHp, Options{}, "conv", &blocked);
  EXPECT_EQ(blocked.error_count(), 0) << blocked.summary();
  Report sim;
  check_ldm(implicit_conv_sim_ldm_plan(kHp, g), kHp, Options{}, "conv", &sim);
  EXPECT_TRUE(sim.has(Code::kLdmOverflow));
}

// --- Whole-net silence on the paper configurations ---------------------------

TEST(NetCheck, PaperAlexNetIsSilent) {
  const auto descs = fixtures::alexnet_descs();
  const Report report = verify_net(kCost, descs);
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
}

TEST(NetCheck, PaperVgg16IsSilent) {
  const auto descs = fixtures::vgg_descs(16, 128);
  const Report report = verify_net(kCost, descs);
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
}

TEST(NetCheck, EveryPaperLayerIsIndividuallySilent) {
  for (const auto& spec :
       {fixtures::alexnet_spec(), fixtures::vgg_spec(16, 128)}) {
    bool saw_conv = false;
    for (const core::LayerDesc& d : core::describe_net_spec(spec)) {
      const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
      if (d.kind == core::LayerKind::kConv) saw_conv = true;
      const Report report = verify_layer(kCost, d, first);
      EXPECT_TRUE(report.diagnostics().empty())
          << spec.name << "/" << d.name << ": " << report.summary();
    }
  }
}

TEST(NetCheck, ReportFormattingIsStable) {
  Report report;
  report.add(Code::kLdmOverflow, Severity::kError, "conv1", "too big");
  report.add(Code::kDmaShortRun, Severity::kNote, "conv2", "short");
  EXPECT_EQ(report.error_count(), 1);
  EXPECT_EQ(report.warning_count(), 0);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.summary(),
            "1 error(s), 0 warning(s); first: [conv1] ldm-overflow: too big");
  EXPECT_STREQ(code_name(Code::kRlcDeadlock), "rlc-deadlock");
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
}

// --- Ldm storage invariants (the bugfix the checker relies on) ---------------

TEST(LdmStorage, ResetPreservesStorageAndTracksPeak) {
  hw::Ldm ldm(kHp.ldm_bytes);
  EXPECT_TRUE(ldm.empty());
  auto first = ldm.alloc(1024);
  const double* base = first.data();
  ldm.alloc(512);
  EXPECT_EQ(ldm.used_bytes(), (1024u + 512u) * sizeof(double));
  EXPECT_EQ(ldm.peak_bytes(), ldm.used_bytes());

  ldm.reset();
  EXPECT_TRUE(ldm.empty());
  EXPECT_EQ(ldm.used_bytes(), 0u);
  // Peak survives the phase reset; storage does not move or re-grow.
  EXPECT_EQ(ldm.peak_bytes(), (1024u + 512u) * sizeof(double));
  auto again = ldm.alloc(256);
  EXPECT_EQ(again.data(), base);
  EXPECT_EQ(ldm.peak_bytes(), (1024u + 512u) * sizeof(double));
}

TEST(LdmStorage, CoreGroupResetRestoresEmptyInvariant) {
  hw::CoreGroup cg{kHp};
  cg.ldm(3, 4).alloc(100);
  EXPECT_FALSE(cg.ldm(3, 4).empty());
  cg.reset();
  for (int i = 0; i < kHp.mesh_rows; ++i) {
    for (int j = 0; j < kHp.mesh_cols; ++j) {
      EXPECT_TRUE(cg.ldm(i, j).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Retry plans (swfault resilient send)

RetryPlan sane_retry_plan() {
  RetryPlan p;
  p.name = "allreduce.resend";
  p.round_bytes = 16 << 10;
  p.resend_buffer_bytes = 32 << 10;
  p.max_attempts = 4;
  p.backoff_base_s = 20e-6;
  p.round_time_s = 50e-6;
  p.timeout_s = 0.5;
  return p;
}

TEST(RetryRuleTest, SanePlanIsSilent) {
  const Report report = verify_retry(sane_retry_plan());
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
}

TEST(RetryRuleTest, RoundLargerThanResendBufferIsAnError) {
  RetryPlan p = sane_retry_plan();
  p.round_bytes = p.resend_buffer_bytes + 1;
  const Report report = verify_retry(p);
  EXPECT_TRUE(report.has(Code::kRetryBufferOverflow)) << report.summary();
}

TEST(RetryRuleTest, ResendBufferBeyondLdmIsAnError) {
  // The resend buffer is staged in the 64 KB CPE scratchpad; reserving more
  // than the LDM can hold is a plan bug even if the round itself fits.
  RetryPlan p = sane_retry_plan();
  p.resend_buffer_bytes = static_cast<std::int64_t>(kHp.ldm_bytes) + 1;
  p.round_bytes = 1 << 10;
  const Report report = verify_retry(p);
  EXPECT_TRUE(report.has(Code::kRetryBufferOverflow)) << report.summary();
}

TEST(RetryRuleTest, LadderSlowerThanEscalationIsAWarning) {
  RetryPlan p = sane_retry_plan();
  p.timeout_s = 1e-6;  // escalation fires before even the second attempt
  const Report report = verify_retry(p);
  EXPECT_TRUE(report.has(Code::kRetryTimeout)) << report.summary();
  EXPECT_FALSE(report.has(Code::kRetryBufferOverflow));
}

TEST(RetryRuleTest, DegenerateGeometryIsInvalid) {
  RetryPlan p = sane_retry_plan();
  p.max_attempts = 0;
  EXPECT_TRUE(verify_retry(p).has(Code::kGeomInvalid));
  p = sane_retry_plan();
  p.round_bytes = -1;
  EXPECT_TRUE(verify_retry(p).has(Code::kGeomInvalid));
  p = sane_retry_plan();
  p.backoff_base_s = -1.0;
  EXPECT_TRUE(verify_retry(p).has(Code::kGeomInvalid));
}

TEST(RetryRuleTest, WorstCaseSumsAttemptsAndGeometricBackoff) {
  RetryPlan p = sane_retry_plan();
  p.max_attempts = 3;
  p.round_time_s = 1.0;
  p.backoff_base_s = 0.5;
  // 3 sends + backoff 0.5*(2^0 + 2^1) between them.
  EXPECT_DOUBLE_EQ(p.worst_case_seconds(), 3.0 + 0.5 * 3.0);
}

BucketPlan sane_bucket_plan() {
  BucketPlan p;
  p.name = "overlap.buckets";
  p.num_layers = 6;
  p.buckets = {{0, 2, 4000}, {3, 4, 3000}, {5, 5, 3000}};
  p.total_bytes = 10000;
  return p;
}

TEST(BucketRuleTest, SaneLayoutIsSilent) {
  const Report report = verify_buckets(sane_bucket_plan());
  EXPECT_TRUE(report.diagnostics().empty()) << report.summary();
}

TEST(BucketRuleTest, GapOrOverlapInTilingIsAnError) {
  BucketPlan p = sane_bucket_plan();
  p.buckets[1].first_layer = 4;  // gap: layer 3 belongs to no bucket
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketOrder));
  p = sane_bucket_plan();
  p.buckets[1].first_layer = 2;  // overlap: layer 2 reduced twice
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketOrder));
  p = sane_bucket_plan();
  p.buckets.pop_back();  // truncated: last layer uncovered
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketOrder));
}

TEST(BucketRuleTest, ByteConservationIsEnforced) {
  BucketPlan p = sane_bucket_plan();
  p.buckets[0].bytes += 1;  // sum no longer matches the packed message
  const Report report = verify_buckets(p);
  EXPECT_TRUE(report.has(Code::kBucketOrder)) << report.summary();
}

TEST(BucketRuleTest, EmptyBucketIsAnErrorOnlyWhenBytesExist) {
  BucketPlan p = sane_bucket_plan();
  p.buckets[1].bytes = 0;
  p.total_bytes = 7000;
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketOrder));
  // A parameterless net legitimately degenerates to one empty bucket.
  BucketPlan empty;
  empty.name = "no-params";
  empty.num_layers = 3;
  empty.buckets = {{0, 2, 0}};
  empty.total_bytes = 0;
  EXPECT_TRUE(verify_buckets(empty).diagnostics().empty());
}

TEST(BucketRuleTest, RoundBeyondResendBufferIsAnError) {
  BucketPlan p = sane_bucket_plan();
  p.resend_buffer_bytes = 3500;  // bucket 0's 4000 B round cannot re-send
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketResendOverflow));
  // The eager cutoff caps the buffered round: with eager_limit below the
  // buffer, every bucket goes rendezvous and the plan is clean again.
  p.eager_limit = 2000;
  EXPECT_TRUE(verify_buckets(p).diagnostics().empty());
}

TEST(BucketRuleTest, ResendBufferBeyondLdmIsAnError) {
  BucketPlan p = sane_bucket_plan();
  p.resend_buffer_bytes = static_cast<std::int64_t>(kHp.ldm_bytes) + 1;
  EXPECT_TRUE(verify_buckets(p).has(Code::kBucketResendOverflow));
}

TEST(BucketRuleTest, DegenerateGeometryIsInvalid) {
  BucketPlan p = sane_bucket_plan();
  p.num_layers = 0;
  EXPECT_TRUE(verify_buckets(p).has(Code::kGeomInvalid));
  p = sane_bucket_plan();
  p.buckets.clear();
  EXPECT_TRUE(verify_buckets(p).has(Code::kGeomInvalid));
  p = sane_bucket_plan();
  p.resend_buffer_bytes = -1;
  EXPECT_TRUE(verify_buckets(p).has(Code::kGeomInvalid));
}

}  // namespace
}  // namespace swcaffe::check
