#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "base/log.h"
#include "core/net.h"
#include "core/solver.h"
#include "core/spec.h"

namespace swcaffe::core {
namespace {

/// One-parameter quadratic-ish problem: a single 1x1 inner product with no
/// bias; loss = softmax over two scores [w*x, 0]-style is awkward, so use a
/// tiny two-class net and verify the update arithmetic directly instead.
NetSpec one_fc_net(int batch) {
  NetSpec spec;
  spec.inputs.push_back({"data", {batch, 2}});
  spec.inputs.push_back({"label", {batch}});
  spec.layers.push_back(ip_spec("fc", "data", "scores", 2));
  spec.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

TEST(SolverTest, FixedPolicyKeepsLr) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 1);
  SolverSpec ss;
  ss.base_lr = 0.05f;
  ss.policy = LrPolicy::kFixed;
  SgdSolver solver(net, ss);
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.05f);
}

TEST(SolverTest, StepPolicyDecays) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 1);
  net.blob("label")->data()[0] = 0;
  SolverSpec ss;
  ss.base_lr = 1.0f;
  ss.policy = LrPolicy::kStep;
  ss.gamma = 0.1f;
  ss.step_size = 2;
  SgdSolver solver(net, ss);
  EXPECT_FLOAT_EQ(solver.current_lr(), 1.0f);
  solver.step();
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.1f);
  solver.step();
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.01f);
}

TEST(SolverTest, PolyPolicyReachesZeroAtHorizon) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 1);
  net.blob("label")->data()[0] = 0;
  SolverSpec ss;
  ss.base_lr = 2.0f;
  ss.policy = LrPolicy::kPoly;
  ss.power = 1.0f;
  ss.max_iter = 4;
  SgdSolver solver(net, ss);
  EXPECT_FLOAT_EQ(solver.current_lr(), 2.0f);
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 1.5f);
  solver.step();
  solver.step();
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.0f);
}

TEST(SolverTest, VanillaSgdUpdateMatchesHandComputation) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 2);
  SolverSpec ss;
  ss.base_lr = 0.5f;
  ss.momentum = 0.0f;
  ss.weight_decay = 0.0f;
  SgdSolver solver(net, ss);
  auto* w = net.learnable_params()[0];
  const float w0 = w->data()[0];
  net.zero_param_diffs();
  w->diff()[0] = 2.0f;  // pretend gradient
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], w0 - 0.5f * 2.0f);
}

TEST(SolverTest, MomentumAccumulatesVelocity) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 3);
  SolverSpec ss;
  ss.base_lr = 1.0f;
  ss.momentum = 0.9f;
  SgdSolver solver(net, ss);
  auto* w = net.learnable_params()[0];
  const float w0 = w->data()[0];
  // Two updates with constant unit gradient: v1 = 1, v2 = 0.9 + 1 = 1.9.
  net.zero_param_diffs();
  w->diff()[0] = 1.0f;
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], w0 - 1.0f);
  net.zero_param_diffs();
  w->diff()[0] = 1.0f;
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], w0 - 1.0f - 1.9f);
}

TEST(SolverTest, WeightDecayPullsTowardZero) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 4);
  SolverSpec ss;
  ss.base_lr = 0.1f;
  ss.momentum = 0.0f;
  ss.weight_decay = 0.5f;
  SgdSolver solver(net, ss);
  auto* w = net.learnable_params()[0];
  w->data()[0] = 2.0f;
  net.zero_param_diffs();  // zero gradient: only decay acts
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(SolverTest, StepTrainsSeparableProblem) {
  NetSpec spec = one_fc_net(16);
  Net net(spec, 5);
  SolverSpec ss;
  ss.base_lr = 0.2f;
  ss.momentum = 0.9f;
  SgdSolver solver(net, ss);
  base::Rng rng(6);
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 50; ++it) {
    auto data = net.blob("data")->data();
    auto label = net.blob("label")->data();
    for (int b = 0; b < 16; ++b) {
      const int cls = rng.bernoulli(0.5) ? 1 : 0;
      label[b] = static_cast<float>(cls);
      data[b * 2] = (cls ? 1.0f : -1.0f) + rng.gaussian(0, 0.2f);
      data[b * 2 + 1] = rng.gaussian(0, 0.2f);
    }
    const double loss = solver.step();
    if (it == 0) first = loss;
    last = loss;
  }
  EXPECT_EQ(solver.iter(), 50);
  EXPECT_LT(last, 0.2 * first);
}

TEST(SolverTest, InvPolicyDecaysSmoothly) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 1);
  net.blob("label")->data()[0] = 0;
  SolverSpec ss;
  ss.base_lr = 1.0f;
  ss.policy = LrPolicy::kInv;
  ss.gamma = 1.0f;
  ss.power = 1.0f;
  SgdSolver solver(net, ss);
  EXPECT_FLOAT_EQ(solver.current_lr(), 1.0f);
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.5f);  // 1/(1+1)
  solver.step();
  solver.step();
  EXPECT_FLOAT_EQ(solver.current_lr(), 0.25f);  // 1/(1+3)
}

TEST(SolverTest, NesterovUpdateMatchesHandComputation) {
  NetSpec spec = one_fc_net(1);
  Net net(spec, 6);
  SolverSpec ss;
  ss.type = SolverType::kNesterov;
  ss.base_lr = 1.0f;
  ss.momentum = 0.5f;
  SgdSolver solver(net, ss);
  auto* w = net.learnable_params()[0];
  const float w0 = w->data()[0];
  // Step 1: v_prev=0, v=1*g=1; delta = 1.5*1 - 0.5*0 = 1.5.
  net.zero_param_diffs();
  w->diff()[0] = 1.0f;
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], w0 - 1.5f);
  // Step 2: v_prev=1, v=0.5+1=1.5; delta = 1.5*1.5 - 0.5*1 = 1.75.
  net.zero_param_diffs();
  w->diff()[0] = 1.0f;
  solver.apply_update();
  EXPECT_FLOAT_EQ(w->data()[0], w0 - 1.5f - 1.75f);
}

TEST(SolverTest, SnapshotRestoreResumesBitExactly) {
  const std::string path = ::testing::TempDir() + "/swc_solver.snap";
  NetSpec spec = one_fc_net(8);
  SolverSpec ss;
  ss.base_lr = 0.1f;
  ss.momentum = 0.9f;
  ss.policy = LrPolicy::kStep;
  ss.step_size = 5;

  auto run_batch = [](Net& net, SgdSolver& solver, base::Rng& rng, int iters) {
    for (int it = 0; it < iters; ++it) {
      auto data = net.blob("data")->data();
      auto label = net.blob("label")->data();
      for (int b = 0; b < 8; ++b) {
        label[b] = static_cast<float>(b % 2);
        data[b * 2] = (b % 2 ? 1.0f : -1.0f) + rng.uniform(-0.1f, 0.1f);
        data[b * 2 + 1] = rng.uniform(-0.1f, 0.1f);
      }
      solver.step();
    }
  };

  // Reference: 10 uninterrupted iterations.
  Net ref(spec, 9);
  SgdSolver ref_solver(ref, ss);
  base::Rng ref_rng(10);
  run_batch(ref, ref_solver, ref_rng, 10);

  // Interrupted: 6 iterations, snapshot, fresh solver restores, 4 more with
  // the same data stream.
  Net a(spec, 9);
  SgdSolver sa(a, ss);
  base::Rng rng(10);
  run_batch(a, sa, rng, 6);
  sa.snapshot(path);

  Net b(spec, 999);  // different init: restore must overwrite it
  SgdSolver sb(b, ss);
  sb.restore(path);
  EXPECT_EQ(sb.iter(), 6);
  run_batch(b, sb, rng, 4);

  std::vector<float> w_ref(ref.param_count()), w_b(b.param_count());
  ref.pack_params(w_ref);
  b.pack_params(w_b);
  EXPECT_EQ(w_ref, w_b);
  std::remove(path.c_str());
}

TEST(SolverTest, RestoreRejectsMismatchedNet) {
  const std::string path = ::testing::TempDir() + "/swc_solver_bad.snap";
  NetSpec small = one_fc_net(1);
  Net a(small, 1);
  SolverSpec ss;
  SgdSolver sa(a, ss);
  sa.snapshot(path);
  NetSpec big = one_fc_net(1);
  big.layers[0].num_output = 7;  // different parameter count
  Net b(big, 1);
  SgdSolver sb(b, ss);
  EXPECT_THROW(sb.restore(path), base::CheckError);
  std::remove(path.c_str());
}

TEST(SolverTest, GradientAndUpdateHalvesCompose) {
  // compute_gradients + apply_update must equal step.
  NetSpec spec = one_fc_net(4);
  Net a(spec, 7), b(spec, 7);
  SolverSpec ss;
  ss.base_lr = 0.1f;
  ss.momentum = 0.5f;
  SgdSolver sa(a, ss), sb(b, ss);
  base::Rng rng(8);
  for (auto& v : a.blob("data")->data()) v = rng.uniform(-1, 1);
  b.blob("data")->copy_from(*a.blob("data"));
  for (int i = 0; i < 4; ++i) {
    a.blob("label")->data()[i] = b.blob("label")->data()[i] =
        static_cast<float>(i % 2);
  }
  sa.step();
  sb.compute_gradients();
  sb.apply_update();
  auto pa = a.learnable_params(), pb = b.learnable_params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->count(); ++j) {
      EXPECT_EQ(pa[i]->data()[j], pb[i]->data()[j]);
    }
  }
}

}  // namespace
}  // namespace swcaffe::core
