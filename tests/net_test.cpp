// Net-level behaviour: graph wiring, multi-consumer gradient accumulation,
// parameter packing, and end-to-end training on separable synthetic data.
#include <gtest/gtest.h>

#include "base/log.h"
#include "base/rng.h"
#include "core/net.h"
#include "core/spec.h"

namespace swcaffe::core {
namespace {

NetSpec tiny_mlp(int batch, int in_dim, int hidden, int classes) {
  NetSpec net;
  net.name = "tiny-mlp";
  net.inputs.push_back({"data", {batch, in_dim}});
  net.inputs.push_back({"label", {batch}});
  net.layers.push_back(ip_spec("fc1", "data", "h", hidden));
  net.layers.push_back(relu_spec("relu1", "h", "h_out"));
  net.layers.push_back(ip_spec("fc2", "h_out", "scores", classes));
  net.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

/// Two-class linearly separable points on a hypercube diagonal.
void fill_separable(Net& net, base::Rng& rng) {
  tensor::Tensor& data = *net.blob("data");
  tensor::Tensor& label = *net.blob("label");
  const int batch = data.dim(0);
  const int dim = static_cast<int>(data.count()) / batch;
  for (int b = 0; b < batch; ++b) {
    const int cls = rng.bernoulli(0.5) ? 1 : 0;
    label.data()[b] = static_cast<float>(cls);
    for (int i = 0; i < dim; ++i) {
      const float mean = cls == 0 ? -0.5f : 0.5f;
      data.data()[b * dim + i] = mean + rng.gaussian(0.0f, 0.3f);
    }
  }
}

TEST(NetTest, UndefinedBottomBlobThrows) {
  NetSpec spec;
  spec.inputs.push_back({"data", {1, 4}});
  spec.layers.push_back(ip_spec("fc", "nonexistent", "y", 2));
  EXPECT_THROW(Net(spec, 1), base::CheckError);
}

TEST(NetTest, DuplicateTopBlobThrows) {
  NetSpec spec;
  spec.inputs.push_back({"data", {1, 4}});
  spec.layers.push_back(ip_spec("fc1", "data", "y", 2));
  spec.layers.push_back(ip_spec("fc2", "data", "y", 2));
  EXPECT_THROW(Net(spec, 1), base::CheckError);
}

TEST(NetTest, SameSeedGivesIdenticalInitialization) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net a(spec, 42), b(spec, 42);
  auto pa = a.learnable_params(), pb = b.learnable_params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->count(); ++j) {
      EXPECT_EQ(pa[i]->data()[j], pb[i]->data()[j]);
    }
  }
}

TEST(NetTest, MultiConsumerBlobAccumulatesGradients) {
  // ResNet-style fan-out: x feeds an identity-ish branch AND a shortcut into
  // one eltwise sum. With fc_a == identity and fc_b == identity, the scores
  // equal 2x and d(loss)/d(x) must be exactly twice the single-branch
  // gradient — only true if both consumers ACCUMULATE into x's diff.
  auto build = [](bool two_branches) {
    NetSpec spec;
    spec.inputs.push_back({"x", {1, 2}});
    spec.inputs.push_back({"label", {1}});
    spec.layers.push_back(ip_spec("fc_a", "x", "a", 2));
    spec.layers.back().bias = false;
    if (two_branches) {
      spec.layers.push_back(ip_spec("fc_b", "x", "b", 2));
      spec.layers.back().bias = false;
      spec.layers.push_back(eltwise_sum_spec("sum", "a", "b", "scores"));
    } else {
      spec.layers.push_back(relu_spec("passthrough", "a", "scores"));
    }
    spec.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
    return spec;
  };
  auto set_identity = [](Net& net, const char* layer) {
    auto& w = *net.layer(layer)->params()[0];
    w.zero_data();
    w.data()[0] = 1.0f;  // 2x2 identity
    w.data()[3] = 1.0f;
  };

  Net diamond(build(true), 7);
  set_identity(diamond, "fc_a");
  set_identity(diamond, "fc_b");
  diamond.blob("x")->data()[0] = 0.4f;
  diamond.blob("x")->data()[1] = 0.9f;  // positive so ReLU passthrough is id
  diamond.blob("label")->data()[0] = 1;

  Net single(build(false), 7);
  set_identity(single, "fc_a");
  single.blob("x")->data()[0] = 0.8f;  // 2 * x of the diamond
  single.blob("x")->data()[1] = 1.8f;
  single.blob("label")->data()[0] = 1;

  EXPECT_NEAR(diamond.forward_backward(), single.forward_backward(), 1e-6);
  for (int i = 0; i < 2; ++i) {
    // Same softmax gradient flows back; diamond x receives it twice.
    EXPECT_NEAR(diamond.blob("x")->diff()[i],
                2.0f * single.blob("x")->diff()[i], 1e-6)
        << i;
  }
}

TEST(NetTest, BackwardMatchesFiniteDifferenceThroughDiamond) {
  // The conclusive multi-consumer test: numeric gradient of the loss w.r.t.
  // the shared input must match the accumulated analytic gradient.
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 3}});
  spec.inputs.push_back({"label", {1}});
  spec.layers.push_back(ip_spec("fc_a", "x", "a", 3));
  spec.layers.push_back(ip_spec("fc_b", "x", "b", 3));
  spec.layers.push_back(eltwise_sum_spec("sum", "a", "b", "scores"));
  spec.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  Net net(spec, 9);
  base::Rng rng(10);
  for (auto& v : net.blob("x")->data()) v = rng.uniform(-1, 1);
  net.blob("label")->data()[0] = 1;
  net.forward_backward();
  std::vector<float> analytic(net.blob("x")->diff().begin(),
                              net.blob("x")->diff().end());
  const float eps = 1e-2f;
  for (int i = 0; i < 3; ++i) {
    auto x = net.blob("x")->data();
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = net.forward();
    x[i] = orig - eps;
    const double lm = net.forward();
    x[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 2e-2) << i;
  }
}

TEST(NetTest, PackUnpackRoundTrip) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net net(spec, 11);
  base::Rng rng(12);
  fill_separable(net, rng);
  net.forward_backward();
  const std::size_t n = net.param_count();
  EXPECT_EQ(n, 4u * 8 + 8 + 8 * 2 + 2);
  std::vector<float> packed(n);
  net.pack_param_diffs(packed);
  double sq = 0.0;
  for (float v : packed) sq += static_cast<double>(v) * v;
  EXPECT_GT(sq, 0.0);
  // Scale and restore.
  for (auto& v : packed) v *= 0.5f;
  net.unpack_param_diffs(packed);
  std::vector<float> repacked(n);
  net.pack_param_diffs(repacked);
  for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(repacked[i], packed[i]);
}

TEST(NetTest, PackParamsRoundTrip) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net a(spec, 13), b(spec, 14);
  std::vector<float> w(a.param_count());
  a.pack_params(w);
  b.unpack_params(w);
  auto pa = a.learnable_params(), pb = b.learnable_params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::size_t j = 0; j < pa[i]->count(); ++j) {
      EXPECT_EQ(pa[i]->data()[j], pb[i]->data()[j]);
    }
  }
}

TEST(NetTest, CopyParamsFromMakesReplica) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net a(spec, 15), b(spec, 16);
  b.copy_params_from(a);
  base::Rng rng(17);
  fill_separable(a, rng);
  b.blob("data")->copy_from(*a.blob("data"));
  b.blob("label")->copy_from(*a.blob("label"));
  EXPECT_DOUBLE_EQ(a.forward(), b.forward());
}

TEST(NetTest, DescribeMatchesSpecInference) {
  NetSpec spec = tiny_mlp(4, 6, 10, 3);
  Net net(spec, 18);
  const auto live = net.describe();
  ASSERT_EQ(live.size(), spec.layers.size());
  EXPECT_EQ(live[0].kind, LayerKind::kInnerProduct);
  EXPECT_EQ(live[0].fc.m, 4);
  EXPECT_EQ(live[0].fc.n, 10);
  EXPECT_EQ(live[0].fc.k, 6);
  EXPECT_EQ(live[0].param_count, 6 * 10 + 10);
}

TEST(NetTest, TrainingReducesLossOnSeparableData) {
  NetSpec spec = tiny_mlp(16, 8, 16, 2);
  Net net(spec, 19);
  base::Rng rng(20);
  // Plain SGD loop (the solver has its own tests).
  double first_loss = 0.0, last_loss = 0.0;
  for (int it = 0; it < 60; ++it) {
    fill_separable(net, rng);
    const double loss = net.forward_backward();
    if (it == 0) first_loss = loss;
    last_loss = loss;
    for (auto* p : net.learnable_params()) p->axpy_from_diff(-0.1f);
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
  EXPECT_LT(last_loss, 0.3);
}

TEST(NetTest, MemoryAccountingCountsBlobsAndParams) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net net(spec, 23);
  // Blobs: data 2x4, label 2, h 2x8, h_out 2x8, scores 2x2, loss 1.
  const std::size_t expected_acts = (8 + 2 + 16 + 16 + 4 + 1) * sizeof(float);
  EXPECT_EQ(net.activation_bytes(), expected_acts);
  EXPECT_EQ(net.param_bytes(), net.param_count() * sizeof(float));
  EXPECT_GT(net.param_bytes(), 0u);
}

TEST(NetTest, LossGradientSkipsLabelInput) {
  NetSpec spec = tiny_mlp(2, 4, 8, 2);
  Net net(spec, 21);
  base::Rng rng(22);
  fill_separable(net, rng);
  net.forward_backward();
  // Labels must never receive gradient.
  for (float v : net.blob("label")->diff()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace swcaffe::core
