#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/log.h"
#include "base/rng.h"
#include "hw/chip.h"
#include "swgemm/estimate.h"
#include "swgemm/mesh_gemm.h"
#include "swgemm/reference.h"

namespace swcaffe::gemm {
namespace {

/// Obviously-correct triple loop used as the oracle for sgemm.
void naive_gemm(bool ta, bool tb, int m, int n, int k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int l = 0; l < k; ++l) {
        const float av = ta ? a[l * m + i] : a[i * k + l];
        const float bv = tb ? b[j * k + l] : b[l * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

std::vector<float> random_vec(std::size_t n, base::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

class SgemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(SgemmTransposeTest, MatchesNaiveOracle) {
  const auto [ta, tb] = GetParam();
  base::Rng rng(17);
  const int m = 13, n = 9, k = 21;
  auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
  auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
  auto c = random_vec(static_cast<std::size_t>(m) * n, rng);
  auto expected = c;
  naive_gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, expected.data());
  sgemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposeModes, SgemmTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(SgemmTest, BetaZeroOverwritesGarbage) {
  const int m = 2, n = 2, k = 2;
  std::vector<float> a{1, 0, 0, 1}, b{5, 6, 7, 8};
  std::vector<float> c(4, std::numeric_limits<float>::quiet_NaN());
  sgemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(SgemmTest, DegenerateDimsAreNoOps) {
  std::vector<float> c{1.0f};
  sgemm(false, false, 1, 1, 0, 1.0f, nullptr, nullptr, 1.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 1.0f);
}

TEST(SgemvTest, MatchesGemm) {
  base::Rng rng(23);
  const int m = 7, n = 11;
  auto a = random_vec(static_cast<std::size_t>(m) * n, rng);
  auto x = random_vec(n, rng);
  std::vector<float> y1(m, 0.0f), y2(m, 0.0f);
  sgemv(false, m, n, 1.0f, a.data(), x.data(), 0.0f, y1.data());
  sgemm(false, false, m, 1, n, 1.0f, a.data(), x.data(), 0.0f, y2.data());
  for (int i = 0; i < m; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5f);
  // Transposed variant.
  auto xt = random_vec(m, rng);
  std::vector<float> yt(n, 0.0f), expected(n, 0.0f);
  sgemv(true, m, n, 1.0f, a.data(), xt.data(), 0.0f, yt.data());
  naive_gemm(true, false, n, 1, m, 1.0f, a.data(), xt.data(), 0.0f,
             expected.data());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(yt[i], expected[i], 1e-5f);
}

// --- Mesh GEMM -----------------------------------------------------------------

class MeshGemmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MeshGemmTest, MatchesReferenceAndTouchesMemoryOnce) {
  const auto [m, n, k] = GetParam();
  base::Rng rng(31);
  std::vector<double> a(static_cast<std::size_t>(m) * k),
      b(static_cast<std::size_t>(k) * n), c(static_cast<std::size_t>(m) * n),
      expected;
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto& v : c) v = rng.uniform(-1, 1);
  expected = c;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int l = 0; l < k; ++l) acc += a[i * k + l] * b[l * n + j];
      expected[i * n + j] += acc;
    }
  }

  hw::CoreGroup cg{hw::HwParams{}};
  const MeshGemmStats stats = mesh_gemm(cg, a, b, c, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-9) << i;
  }

  // Optimality invariant (Sec. IV-A): A, B and C each cross the memory bus
  // exactly once.
  const std::size_t abc_bytes = (a.size() + b.size() + c.size()) * 8;
  EXPECT_EQ(stats.ledger.dma_get_bytes, abc_bytes);
  EXPECT_EQ(stats.ledger.dma_put_bytes, c.size() * 8);
  EXPECT_DOUBLE_EQ(stats.ledger.flops, 2.0 * m * n * k);
  EXPECT_GT(stats.ledger.elapsed_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshGemmTest,
                         ::testing::Values(std::make_tuple(8, 8, 8),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(32, 8, 16),
                                           std::make_tuple(8, 40, 24),
                                           std::make_tuple(64, 64, 64),
                                           std::make_tuple(128, 64, 32)));

TEST(MeshGemmTest, RejectsNonMeshDivisibleDims) {
  hw::CoreGroup cg{hw::HwParams{}};
  std::vector<double> a(9 * 8), b(8 * 8), c(9 * 8);
  EXPECT_THROW(mesh_gemm(cg, a, b, c, 9, 8, 8), base::CheckError);
}

TEST(MeshGemmTest, RejectsTilesExceedingLdm) {
  hw::CoreGroup cg{hw::HwParams{}};
  // 1024^2 doubles per tile-row: (128*128)*3*8 = 384 KB per CPE >> 64 KB.
  const int d = 1024;
  std::vector<double> a(static_cast<std::size_t>(d) * d),
      b(static_cast<std::size_t>(d) * d), c(static_cast<std::size_t>(d) * d);
  EXPECT_THROW(mesh_gemm(cg, a, b, c, d, d, d), base::CheckError);
}

TEST(MeshGemmTest, RlcVolumeMatchesAlgorithm) {
  // Each of 8 steps broadcasts 8 A-tiles to 7 peers and 8 B-tiles to 7
  // peers: total RLC bytes = 7 * 8 * 8 * (tileA + tileB).
  const int m = 16, n = 16, k = 16;
  std::vector<double> a(m * k, 1.0), b(k * n, 1.0), c(m * n, 0.0);
  hw::CoreGroup cg{hw::HwParams{}};
  const MeshGemmStats stats = mesh_gemm(cg, a, b, c, m, n, k);
  const std::size_t tile_a = (m / 8) * (k / 8) * 8, tile_b = (k / 8) * (n / 8) * 8;
  EXPECT_EQ(stats.ledger.rlc_bytes, 7u * 8u * 8u * (tile_a + tile_b));
}

/// Arbitrary-size blocked driver vs the double-precision oracle.
class BlockedMeshGemmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedMeshGemmTest, MatchesReference) {
  const auto [m, n, k] = GetParam();
  base::Rng rng(37);
  std::vector<double> a(static_cast<std::size_t>(m) * k),
      b(static_cast<std::size_t>(k) * n), c(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto& v : c) v = rng.uniform(-1, 1);
  auto expected = c;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int l = 0; l < k; ++l) acc += a[i * k + l] * b[l * n + j];
      expected[static_cast<std::size_t>(i) * n + j] += acc;
    }
  }
  hw::CoreGroup cg{hw::HwParams{}};
  const MeshGemmStats stats = blocked_mesh_gemm(cg, a, b, c, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-9) << i;
  }
  // Padded panels may add zero-flops, but never less than the true count.
  EXPECT_GE(stats.ledger.flops, 2.0 * m * n * k - 1.0);
  EXPECT_GT(stats.ledger.elapsed_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    RaggedShapes, BlockedMeshGemmTest,
    ::testing::Values(std::make_tuple(100, 70, 130),   // nothing divides 8
                      std::make_tuple(256, 256, 256),  // exactly one panel
                      std::make_tuple(300, 8, 520),    // skinny n
                      std::make_tuple(7, 7, 7),        // smaller than mesh
                      std::make_tuple(257, 300, 40))); // panel boundary +1

TEST(BlockedMeshGemmTest, LargePanelsTouchABOncePerReuse) {
  // One C panel (m,n <= 256): A and B panels stream exactly once regardless
  // of k blocking, C exactly once — the LDM-residency invariant.
  const int m = 64, n = 64, k = 512;  // two k panels
  std::vector<double> a(static_cast<std::size_t>(m) * k, 1.0),
      b(static_cast<std::size_t>(k) * n, 1.0),
      c(static_cast<std::size_t>(m) * n, 0.0);
  hw::CoreGroup cg{hw::HwParams{}};
  const MeshGemmStats stats = blocked_mesh_gemm(cg, a, b, c, m, n, k);
  // Each k panel loads A, B and the resident C; C write happens per panel in
  // the per-panel kernel (the blocked driver re-feeds it), so get traffic is
  // A + B + 2 * C reads and puts are 2 * C.
  const std::size_t a_bytes = a.size() * 8, b_bytes = b.size() * 8,
                    c_bytes = c.size() * 8;
  EXPECT_EQ(stats.ledger.dma_get_bytes, a_bytes + b_bytes + 2 * c_bytes);
  EXPECT_EQ(stats.ledger.dma_put_bytes, 2 * c_bytes);
}

TEST(MaxMeshBlockTest, FitsLdmWithDoubleBuffering) {
  hw::HwParams hp;
  const int l = max_mesh_block(hp);
  EXPECT_GE(l, 128);
  const std::size_t tile = static_cast<std::size_t>(l / 8) * (l / 8);
  EXPECT_LE(3 * tile * sizeof(double) * 2, hp.ldm_bytes);
}

// --- Analytic estimates ----------------------------------------------------------

TEST(GemmEstimateTest, MoreWorkTakesLonger) {
  hw::CostModel cost;
  const auto small = estimate_gemm(cost, 256, 256, 256);
  const auto big = estimate_gemm(cost, 1024, 1024, 1024);
  EXPECT_GT(big.seconds, small.seconds);
  EXPECT_DOUBLE_EQ(big.flops, 2.0 * 1024 * 1024 * 1024);
}

TEST(GemmEstimateTest, LargeSquareGemmIsComputeBound) {
  hw::CostModel cost;
  // Paper Sec. VI-A: GEMM needs m > ~160 to be compute-bound on SW26010.
  const auto est = estimate_gemm(cost, 2048, 2048, 2048);
  EXPECT_GT(est.compute_seconds, est.dma_seconds);
  EXPECT_GT(est.achieved_gflops, 300.0);
}

TEST(GemmEstimateTest, SkinnyKCollapsesBandwidth) {
  hw::CostModel cost;
  // k = 27 (conv1 of VGG): short DMA runs, memory bound.
  const auto skinny = estimate_gemm(cost, 64, 4096, 27);
  const auto square = estimate_gemm(cost, 512, 512, 512);
  EXPECT_LT(skinny.achieved_gflops, square.achieved_gflops);
}

TEST(GemmEstimateTest, NoRlcCosts8xDma) {
  hw::CostModel cost;
  const auto rlc = estimate_gemm(cost, 1024, 1024, 1024);
  const auto no_rlc = estimate_gemm_no_rlc(cost, 1024, 1024, 1024);
  EXPECT_NEAR(static_cast<double>(no_rlc.dma_bytes) / rlc.dma_bytes, 8.0, 0.6);
  EXPECT_GT(no_rlc.seconds, rlc.seconds);
}

TEST(GemmEstimateTest, RejectsNonPositiveDims) {
  hw::CostModel cost;
  EXPECT_THROW(estimate_gemm(cost, 0, 4, 4), base::CheckError);
}

/// Property sweep: the estimate must be physically sane on a wide grid —
/// positive, below peak, monotone in total work along each axis.
class GemmEstimateSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmEstimateSweepTest, PhysicallySane) {
  const auto [m, n, k] = GetParam();
  hw::CostModel cost;
  const auto est = estimate_gemm(cost, m, n, k);
  EXPECT_GT(est.seconds, 0.0);
  EXPECT_GT(est.achieved_gflops, 0.0);
  // Cannot exceed the machine: 742.4 Gflops DP peak per core group.
  EXPECT_LE(est.achieved_gflops, 742.4 * (1 + 1e-9));
  // Growing any one dimension never makes the problem faster.
  EXPECT_GE(estimate_gemm(cost, 2 * m, n, k).seconds, est.seconds);
  EXPECT_GE(estimate_gemm(cost, m, 2 * n, k).seconds, est.seconds);
  EXPECT_GE(estimate_gemm(cost, m, n, 2 * k).seconds, est.seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GemmEstimateSweepTest,
    ::testing::Combine(::testing::Values(8, 64, 512, 3000),
                       ::testing::Values(8, 196, 4096),
                       ::testing::Values(27, 256, 2048)));

}  // namespace
}  // namespace swcaffe::gemm
