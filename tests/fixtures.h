// Canonical paper-configuration fixtures shared by tests/ and bench/.
//
// The evaluation section prices AlexNet and VGG at fixed geometries (full
// ImageNet shapes, the Table III batch sizes, the 232.6 MB packed gradient
// message). Before this header those numbers were retyped in every test and
// bench that needed them; now there is exactly one definition of each, so a
// fixture change (or a typo) cannot silently fork the suite.
#pragma once

#include <cstdint>
#include <vector>

#include "core/layer_desc.h"
#include "core/models.h"

namespace swcaffe::fixtures {

// Paper batch configurations (Table III / Figs. 8-11): a full node trains
// batch B, each of the 4 core groups runs B/4 (Algorithm 1).
inline constexpr int kAlexNetBatch = 256;
inline constexpr int kAlexNetBatchPerCg = kAlexNetBatch / 4;
inline constexpr int kVggBatch = 64;
inline constexpr int kVggBatchPerCg = kVggBatch / 4;
inline constexpr int kResNet50Batch = 32;
inline constexpr int kResNet50BatchPerCg = kResNet50Batch / 4;

/// Packed gradient messages of the scalability experiments (Sec. V /
/// Fig. 10): AlexNet 232.6 MB, ResNet-50 97.7 MB.
inline constexpr std::int64_t kAlexNetGradientBytes = 232600000;
inline constexpr std::int64_t kResNet50GradientBytes = 97700000;

/// Bytes of one ImageNet input batch (B x 3 x 227 x 227 floats), the volume
/// device-throughput comparisons charge for host transfers.
inline std::int64_t imagenet_input_bytes(int batch) {
  return 4LL * batch * 3 * 227 * 227;
}

/// AlexNet-BN at the paper's ImageNet geometry (227x227, 1000 classes).
inline core::NetSpec alexnet_spec(int batch = kAlexNetBatch) {
  return core::alexnet_bn(batch);
}
inline std::vector<core::LayerDesc> alexnet_descs(int batch = kAlexNetBatch) {
  return core::describe_net_spec(alexnet_spec(batch));
}
/// One core group's share of the full-node AlexNet batch.
inline std::vector<core::LayerDesc> alexnet_per_cg_descs() {
  return alexnet_descs(kAlexNetBatchPerCg);
}

/// VGG-16/VGG-19 at the paper's geometry (224x224, 1000 classes).
inline core::NetSpec vgg_spec(int depth, int batch = kVggBatch) {
  return core::vgg(depth, batch);
}
inline std::vector<core::LayerDesc> vgg_descs(int depth,
                                              int batch = kVggBatch) {
  return core::describe_net_spec(vgg_spec(depth, batch));
}
inline std::vector<core::LayerDesc> vgg_per_cg_descs(int depth) {
  return vgg_descs(depth, kVggBatchPerCg);
}

/// ResNet-50 at the paper's geometry (224x224, 1000 classes).
inline core::NetSpec resnet50_spec(int batch = kResNet50Batch) {
  return core::resnet50(batch);
}
inline std::vector<core::LayerDesc> resnet50_descs(int batch = kResNet50Batch) {
  return core::describe_net_spec(resnet50_spec(batch));
}
inline std::vector<core::LayerDesc> resnet50_per_cg_descs() {
  return resnet50_descs(kResNet50BatchPerCg);
}

}  // namespace swcaffe::fixtures
