// Tracing subsystem: span nesting over simulated time, hw instrumentation
// aggregates matching the TrafficLedgers, Chrome-trace export validity, and
// the central invariant that tracing is purely observational — every
// simulated number is bit-identical with the tracer attached or not.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "base/log.h"
#include "core/models.h"
#include "core/spec.h"
#include "fixtures.h"
#include "hw/chip.h"
#include "hw/cost_model.h"
#include "hw/dma.h"
#include "hw/rlc.h"
#include "parallel/trainer.h"
#include "swdnn/layer_estimate.h"
#include "swgemm/mesh_gemm.h"
#include "topo/allreduce.h"
#include "trace/chrome_trace.h"
#include "trace/report.h"
#include "trace/tracer.h"

namespace swcaffe {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: parses one value, rejects malformed documents.
// Enough to assert the exporters emit real JSON without a library.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character: invalid JSON
      } else {
        ++pos_;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Extracts `"key": "value"` occurrences of a string field, in order.
std::vector<std::string> string_fields(const std::string& json,
                                       const std::string& key) {
  std::vector<std::string> out;
  const std::string pat = "\"" + key + "\":\"";
  std::size_t pos = 0;
  while ((pos = json.find(pat, pos)) != std::string::npos) {
    pos += pat.size();
    const std::size_t end = json.find('"', pos);
    out.push_back(json.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tracer core

TEST(TracerTest, SpansNestAndClockIsMonotonic) {
  trace::Tracer t;
  const auto outer = t.begin_span(0, "iteration", "train");
  t.advance(0, 1.0);
  const auto inner = t.begin_span(0, "layer", "layer");
  t.advance(0, 2.0);
  t.end_span(0);
  t.advance(0, 0.5);
  t.end_span(0);

  ASSERT_EQ(t.spans().size(), 2u);
  const trace::Span& o = t.spans()[outer];
  const trace::Span& i = t.spans()[inner];
  EXPECT_EQ(o.depth, 0);
  EXPECT_EQ(o.parent, trace::kNoParent);
  EXPECT_EQ(i.depth, 1);
  EXPECT_EQ(i.parent, outer);
  EXPECT_DOUBLE_EQ(o.begin_s, 0.0);
  EXPECT_DOUBLE_EQ(o.end_s, 3.5);
  EXPECT_DOUBLE_EQ(i.begin_s, 1.0);
  EXPECT_DOUBLE_EQ(i.end_s, 3.0);
  EXPECT_GE(i.begin_s, o.begin_s);
  EXPECT_LE(i.end_s, o.end_s);
  EXPECT_EQ(t.open_spans(), 0u);
}

TEST(TracerTest, CountersFoldInclusivelyIntoParents) {
  trace::Tracer t;
  t.begin_span(0, "parent", "x");
  trace::TrafficCounters direct;
  direct.dma_get_bytes = 100;
  t.charge(0, direct);
  t.begin_span(0, "child", "x");
  trace::TrafficCounters nested;
  nested.dma_put_bytes = 40;
  nested.flops = 7.0;
  t.charge(0, nested);
  t.end_span(0);
  t.end_span(0);

  const trace::Span& child = t.spans()[1];
  const trace::Span& parent = t.spans()[0];
  EXPECT_EQ(child.traffic.dma_put_bytes, 40u);
  EXPECT_EQ(parent.traffic.dma_get_bytes, 100u);
  EXPECT_EQ(parent.traffic.dma_put_bytes, 40u);  // inclusive of the child
  EXPECT_DOUBLE_EQ(parent.traffic.flops, 7.0);
}

TEST(TracerTest, ChargeOutsideAnySpanIsIgnored) {
  trace::Tracer t;
  trace::TrafficCounters c;
  c.rlc_bytes = 8;
  t.charge(0, c);  // hw engines may run before any span opens
  EXPECT_TRUE(t.spans().empty());
}

TEST(TracerTest, SetClockCannotRewindPastOpenSpan) {
  trace::Tracer t;
  t.advance(0, 5.0);
  t.begin_span(0, "s", "x");
  EXPECT_THROW(t.set_clock(0, 1.0), base::CheckError);
  t.set_clock(0, 9.0);  // forward jumps are fine
  t.end_span(0);
  EXPECT_DOUBLE_EQ(t.spans()[0].end_s, 9.0);
}

TEST(TracerTest, SpanScopeIsNullSafe) {
  trace::SpanScope scope(nullptr, 0, "noop", "x");  // must not crash
  trace::Tracer t;
  {
    trace::SpanScope live(&t, 0, "live", "x");
    t.advance(0, 1.0);
  }
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(t.spans()[0].duration_s(), 1.0);
}

// ---------------------------------------------------------------------------
// Hardware instrumentation vs ledgers

TEST(TraceHwTest, DmaSpansMatchEngineLedger) {
  hw::CostModel cost;
  trace::Tracer tracer;
  cost.set_tracer(&tracer, 0);
  hw::DmaEngine dma(cost);

  std::vector<double> src(4096, 1.0), dst(4096, 0.0);
  tracer.begin_span(0, "kernel", "test");
  dma.get(std::span<const double>(src).subspan(0, 1024),
          std::span<double>(dst).subspan(0, 1024), 64);
  dma.put(std::span<const double>(src).subspan(0, 512),
          std::span<double>(dst).subspan(0, 512), 64);
  dma.get_strided(src, 64, std::span<double>(dst).subspan(0, 32 * 16), 16, 32,
                  8);
  tracer.end_span(0);

  const trace::Span& outer = tracer.spans()[0];
  EXPECT_EQ(outer.traffic.dma_get_bytes, dma.ledger().dma_get_bytes);
  EXPECT_EQ(outer.traffic.dma_put_bytes, dma.ledger().dma_put_bytes);
  EXPECT_DOUBLE_EQ(outer.duration_s(), dma.ledger().elapsed_s);
  // One "hw.dma" child per transfer, nested in the kernel span.
  int dma_spans = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category == "hw.dma") {
      ++dma_spans;
      EXPECT_EQ(s.parent, 0);
    }
  }
  EXPECT_EQ(dma_spans, 3);
}

TEST(TraceHwTest, RlcSpansMatchFabricLedger) {
  hw::HwParams params;
  hw::RlcFabric fabric(params);
  trace::Tracer tracer;
  fabric.set_tracer(&tracer, 0);

  std::vector<double> msg(32, 1.5);
  tracer.begin_span(0, "kernel", "test");
  fabric.row_broadcast(0, 0, msg);
  fabric.send(1, 0, 1, 5, msg);
  tracer.end_span(0);
  for (int c = 1; c < params.mesh_cols; ++c) fabric.receive_row(0, c);
  fabric.receive_row(1, 5);

  const trace::Span& outer = tracer.spans()[0];
  EXPECT_EQ(outer.traffic.rlc_bytes, fabric.ledger().rlc_bytes);
  EXPECT_DOUBLE_EQ(outer.duration_s(), fabric.ledger().elapsed_s);
}

TEST(TraceHwTest, MeshGemmSpanMatchesStats) {
  hw::CoreGroup cg{hw::HwParams{}};
  trace::Tracer tracer;
  cg.set_tracer(&tracer, 0);

  const int n = 16;
  std::vector<double> a(n * n, 1.0), b(n * n, 2.0), c(n * n, 0.0);
  const auto stats = gemm::mesh_gemm(cg, a, b, c, n, n, n);

  ASSERT_EQ(tracer.open_spans(), 0u);
  const trace::Span* top = nullptr;
  for (const auto& s : tracer.spans()) {
    if (s.name == "mesh_gemm") top = &s;
  }
  ASSERT_NE(top, nullptr);
  EXPECT_NEAR(top->duration_s(), stats.ledger.elapsed_s,
              1e-12 * stats.ledger.elapsed_s);
  EXPECT_EQ(top->traffic.dma_bytes(), stats.ledger.dma_bytes());
  EXPECT_EQ(top->traffic.rlc_bytes, stats.ledger.rlc_bytes);
  EXPECT_DOUBLE_EQ(top->traffic.flops, stats.ledger.flops);
}

TEST(TraceHwTest, MeshGemmNumbersBitIdenticalWithTracing) {
  const int n = 16;
  std::vector<double> a(n * n, 1.0), b(n * n, 2.0);

  hw::CoreGroup plain{hw::HwParams{}};
  std::vector<double> c1(n * n, 0.0);
  const auto untraced = gemm::mesh_gemm(plain, a, b, c1, n, n, n);

  hw::CoreGroup traced_cg{hw::HwParams{}};
  trace::Tracer tracer;
  traced_cg.set_tracer(&tracer, 0);
  std::vector<double> c2(n * n, 0.0);
  const auto traced = gemm::mesh_gemm(traced_cg, a, b, c2, n, n, n);

  EXPECT_EQ(traced.ledger.elapsed_s, untraced.ledger.elapsed_s);
  EXPECT_EQ(traced.dma_seconds, untraced.dma_seconds);
  EXPECT_EQ(traced.rlc_seconds, untraced.rlc_seconds);
  EXPECT_EQ(traced.compute_seconds, untraced.compute_seconds);
  EXPECT_EQ(c1, c2);
}

// ---------------------------------------------------------------------------
// Layer estimates

TEST(TraceLayerTest, EstimatesBitIdenticalWithTracing) {
  const auto descs = fixtures::alexnet_descs(2);
  hw::CostModel plain;
  trace::Tracer tracer;
  hw::CostModel traced;
  traced.set_tracer(&tracer, 0);

  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const auto a = dnn::estimate_layer_sw(plain, d, first);
    const auto b = dnn::estimate_layer_sw(traced, d, first);
    EXPECT_EQ(a.fwd_s, b.fwd_s) << d.name;  // bit-identical, not just close
    EXPECT_EQ(a.bwd_s, b.bwd_s) << d.name;
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TraceLayerTest, ReportAggregatesMatchCostModelTable) {
  const auto descs = fixtures::alexnet_descs(2);
  trace::Tracer tracer;
  hw::CostModel cost;
  cost.set_tracer(&tracer, 0);

  std::vector<double> expected;
  double expected_total = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const auto sw = dnn::estimate_layer_sw(cost, d, first);
    expected.push_back(sw.total());
    expected_total += sw.total();
  }

  const trace::Report report = trace::Report::build(tracer, "layer");
  // Layers with zero estimated time (data/accuracy) may or may not emit a
  // span; every traced row must match its table entry.
  std::size_t next = 0;
  for (const auto& row : report.rows()) {
    while (next < descs.size() && descs[next].name != row.name) ++next;
    ASSERT_LT(next, descs.size()) << "unexpected report row " << row.name;
    EXPECT_NEAR(row.total_s, expected[next], 1e-12 * (expected[next] + 1e-30))
        << row.name;
    ++next;
  }
  EXPECT_NEAR(report.total_seconds(), expected_total, 1e-9 * expected_total);
}

// ---------------------------------------------------------------------------
// All-reduce

TEST(TraceAllreduceTest, CostEmitsOneSpanWithBreakdownCounters) {
  const topo::NetParams net = topo::sunway_network();
  topo::Topology topo{8, 4};
  trace::Tracer tracer;
  const auto c = topo::cost_rhd(64 << 20, topo, net,
                                topo::Placement::kRoundRobin, &tracer, 0);

  ASSERT_EQ(tracer.spans().size(), 1u);
  const trace::Span& s = tracer.spans()[0];
  EXPECT_EQ(s.name, "allreduce.rhd");
  EXPECT_EQ(s.category, "comm.allreduce");
  EXPECT_DOUBLE_EQ(s.duration_s(), c.seconds);
  EXPECT_EQ(s.traffic.net_bytes,
            static_cast<std::size_t>(c.beta1_bytes + c.beta2_bytes));
  ASSERT_EQ(tracer.counters().size(), 4u);
  EXPECT_EQ(tracer.counters()[0].name, trace::kCounterAlphaTerms);
  EXPECT_DOUBLE_EQ(tracer.counters()[0].value, c.alpha_terms);
}

TEST(TraceAllreduceTest, NonPowerOfTwoStillEmitsExactlyOneSpan) {
  const topo::NetParams net = topo::sunway_network();
  topo::Topology topo{6, 4};  // exercises the MPICH fold/unfold recursion
  trace::Tracer tracer;
  const auto with = topo::cost_rhd(1 << 20, topo, net,
                                   topo::Placement::kAdjacent, &tracer, 0);
  const auto without =
      topo::cost_rhd(1 << 20, topo, net, topo::Placement::kAdjacent);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(with.seconds, without.seconds);  // tracing changes nothing
}

TEST(TraceAllreduceTest, FunctionalVariantsTraceTheSameBreakdown) {
  const topo::NetParams net = topo::sunway_network();
  topo::Topology topo{4, 4};
  std::vector<std::vector<float>> data(4, std::vector<float>(64, 1.0f));
  trace::Tracer tracer;
  const auto c =
      topo::allreduce_ring(data, topo, net, topo::Placement::kAdjacent,
                           &tracer, 0);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "allreduce.ring");
  EXPECT_DOUBLE_EQ(tracer.spans()[0].duration_s(), c.seconds);
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(ChromeTraceTest, ExportIsValidJsonWithMatchedEvents) {
  trace::Tracer tracer;
  tracer.set_track_name(0, "node");
  tracer.begin_span(0, "iteration \"zero\"\n", "train");  // hostile name
  tracer.advance(0, 1e-3);
  tracer.begin_span(0, "layer", "layer");
  tracer.end_span(0, 2e-3);
  tracer.counter(0, "loss", 0.5);
  tracer.instant(0, "marker", "phase");
  tracer.end_span(0);

  std::ostringstream os;
  trace::write_chrome_trace(tracer, os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonParser(json).valid()) << json;
  const auto phases = string_fields(json, "ph");
  int depth = 0, begins = 0, ends = 0;
  for (const auto& ph : phases) {
    if (ph == "B") { ++depth; ++begins; }
    if (ph == "E") { --depth; ++ends; ASSERT_GE(depth, 0); }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_NE(json.find("\"node\""), std::string::npos);      // thread_name
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
}

TEST(ChromeTraceTest, ZeroDurationSpansKeepStackDiscipline) {
  trace::Tracer tracer;
  tracer.begin_span(0, "outer", "x");
  tracer.begin_span(0, "empty", "x");  // zero simulated duration
  tracer.end_span(0);
  tracer.end_span(0, 1e-3);

  std::ostringstream os;
  trace::write_chrome_trace(tracer, os);
  const auto phases = string_fields(os.str(), "ph");
  int depth = 0;
  for (const auto& ph : phases) {
    if (ph == "B") ++depth;
    if (ph == "E") { --depth; ASSERT_GE(depth, 0); }
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTraceTest, RejectsUnbalancedTrace) {
  trace::Tracer tracer;
  tracer.begin_span(0, "open", "x");
  std::ostringstream os;
  EXPECT_THROW(trace::write_chrome_trace(tracer, os), base::CheckError);
}

TEST(ChromeTraceTest, JsonEscape) {
  EXPECT_EQ(trace::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(trace::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ReportTest, JsonOutputIsValid) {
  trace::Tracer tracer;
  tracer.begin_span(0, "conv1", "layer");
  trace::TrafficCounters c;
  c.dma_get_bytes = 1 << 20;
  c.flops = 1e9;
  tracer.charge(0, c);
  tracer.end_span(0, 0.01);

  const trace::Report report = trace::Report::build(tracer, "layer");
  ASSERT_EQ(report.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(report.rows()[0].total_s, 0.01);
  EXPECT_NEAR(report.rows()[0].gflops(), 100.0, 1e-9);
  std::ostringstream os;
  report.write_json(os);
  EXPECT_TRUE(JsonParser(os.str()).valid()) << os.str();
}

// ---------------------------------------------------------------------------
// Trainer end-to-end

core::NetSpec tiny_cnn(int sub_batch) {
  core::NetSpec spec;
  spec.name = "trace-test";
  spec.inputs.push_back({"data", {sub_batch, 2, 8, 8}});
  spec.inputs.push_back({"label", {sub_batch}});
  spec.layers.push_back(core::conv_spec("c1", "data", "c1", 8, 3, 1, 1));
  spec.layers.push_back(core::relu_spec("r1", "c1", "r1"));
  spec.layers.push_back(core::ip_spec("fc", "r1", "scores", 4));
  spec.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

io::DatasetSpec tiny_dataset() {
  io::DatasetSpec d;
  d.num_samples = 512;
  d.classes = 4;
  d.channels = 2;
  d.height = d.width = 8;
  return d;
}

parallel::TrainStats run_trainer(trace::Tracer* tracer, int iters) {
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  solver.momentum = 0.9f;
  parallel::TrainOptions opt;
  opt.max_iter = iters;
  opt.display_every = 2;
  opt.tracer = tracer;
  parallel::Trainer trainer(tiny_cnn(2), solver, tiny_dataset(),
                            io::DiskParams{}, opt);
  return trainer.run();
}

TEST(TraceTrainerTest, StatsBitIdenticalWithAndWithoutTracer) {
  const parallel::TrainStats plain = run_trainer(nullptr, 8);
  trace::Tracer tracer;
  const parallel::TrainStats traced = run_trainer(&tracer, 8);

  EXPECT_EQ(traced.simulated_seconds, plain.simulated_seconds);
  EXPECT_EQ(traced.simulated_io_seconds, plain.simulated_io_seconds);
  EXPECT_EQ(traced.final_loss, plain.final_loss);
  ASSERT_EQ(traced.losses.size(), plain.losses.size());
  for (std::size_t i = 0; i < plain.losses.size(); ++i) {
    EXPECT_EQ(traced.losses[i], plain.losses[i]);
  }
}

TEST(TraceTrainerTest, TimelineMatchesSimulatedSeconds) {
  trace::Tracer tracer;
  const parallel::TrainStats stats = run_trainer(&tracer, 6);

  EXPECT_EQ(tracer.open_spans(), 0u);
  double iteration_total = 0.0;
  int iterations = 0, cg_spans = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category == "train.iteration") {
      ++iterations;
      iteration_total += s.duration_s();
    }
    if (s.category == "train.cg") ++cg_spans;
  }
  EXPECT_EQ(iterations, 6);
  EXPECT_EQ(cg_spans, 6 * 4);  // one span per core group per iteration
  EXPECT_NEAR(iteration_total, stats.simulated_seconds,
              1e-9 * stats.simulated_seconds);

  // The whole run exports as a valid, balanced Chrome trace.
  std::ostringstream os;
  trace::write_chrome_trace(tracer, os);
  EXPECT_TRUE(JsonParser(os.str()).valid());
}

}  // namespace
}  // namespace swcaffe
