// Topology, network cost model and all-reduce algorithms — including the
// exact Fig. 7 cost-coefficient invariants of the paper's contribution.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "base/log.h"
#include "base/rng.h"
#include "topo/allreduce.h"
#include "topo/network_model.h"
#include "topo/topology.h"
#include "trace/tracer.h"

namespace swcaffe::topo {
namespace {

std::vector<std::vector<float>> random_data(int p, std::size_t n,
                                            std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<std::vector<float>> data(p, std::vector<float>(n));
  for (auto& v : data) {
    for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  }
  return data;
}

std::vector<float> column_sums(const std::vector<std::vector<float>>& data) {
  std::vector<float> sum(data[0].size(), 0.0f);
  for (const auto& v : data) {
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += v[i];
  }
  return sum;
}

TEST(TopologyTest, AdjacentPlacementFillsSupernodesInOrder) {
  Topology t{8, 4};
  EXPECT_EQ(t.num_supernodes(), 2);
  EXPECT_EQ(t.supernode_of(0, Placement::kAdjacent), 0);
  EXPECT_EQ(t.supernode_of(3, Placement::kAdjacent), 0);
  EXPECT_EQ(t.supernode_of(4, Placement::kAdjacent), 1);
  EXPECT_EQ(t.supernode_of(7, Placement::kAdjacent), 1);
}

TEST(TopologyTest, RoundRobinDealsRanks) {
  Topology t{8, 4};
  // Paper Fig. 7: nodes 0,2,4,6 in one supernode, 1,3,5,7 in the other.
  EXPECT_EQ(t.supernode_of(0, Placement::kRoundRobin), 0);
  EXPECT_EQ(t.supernode_of(1, Placement::kRoundRobin), 1);
  EXPECT_EQ(t.supernode_of(4, Placement::kRoundRobin), 0);
  EXPECT_EQ(t.supernode_of(5, Placement::kRoundRobin), 1);
}

TEST(TopologyTest, SingleSupernodeNeverCrosses) {
  Topology t{64, 256};
  for (int r = 1; r < 64; r *= 2) {
    EXPECT_FALSE(t.crosses(0, r, Placement::kAdjacent));
    EXPECT_FALSE(t.crosses(0, r, Placement::kRoundRobin));
  }
}

TEST(NetworkModelTest, SunwayBeatsInfinibandOnPeakBandwidth) {
  // Fig. 6 left: SW reaches ~12 GB/s, Infiniband FDR ~6.8 GB/s.
  const NetParams sw = sunway_network(), ib = infiniband_fdr();
  EXPECT_GT(p2p_bandwidth(sw, 4 << 20, false, false),
            p2p_bandwidth(ib, 4 << 20, false, false));
  EXPECT_GT(p2p_bandwidth(sw, 4 << 20, false, false), 11e9);
}

TEST(NetworkModelTest, SunwayLatencyWorseAboveEagerLimit) {
  // Fig. 6 right: above 2 KB the Sunway network's latency exceeds
  // Infiniband's.
  const NetParams sw = sunway_network(), ib = infiniband_fdr();
  for (std::int64_t n : {4 << 10, 64 << 10, 1 << 20}) {
    EXPECT_GT(p2p_latency(sw, n), p2p_latency(ib, n)) << n;
  }
}

TEST(NetworkModelTest, OversubscriptionQuartersBandwidth) {
  const NetParams sw = sunway_network();
  const double full = p2p_bandwidth(sw, 1 << 20, false, false);
  const double over = p2p_bandwidth(sw, 1 << 20, false, true);
  EXPECT_NEAR(full / over, 4.0, 1e-9);
}

TEST(NetworkModelTest, StepTimeDetectsUplinkContention) {
  const NetParams sw = sunway_network();
  Topology topo{8, 4};
  // All four nodes of supernode 0 send to supernode 1: 4 flows share an
  // uplink worth q/oversub = 1 link -> per-flow rate link/4.
  std::vector<std::pair<int, int>> cross_flows{{0, 4}, {1, 5}, {2, 6}, {3, 7}};
  const std::int64_t bytes = 1 << 20;
  const double t_cross =
      step_time(sw, topo, Placement::kAdjacent, cross_flows, bytes);
  std::vector<std::pair<int, int>> intra_flows{{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  const double t_intra =
      step_time(sw, topo, Placement::kAdjacent, intra_flows, bytes);
  EXPECT_NEAR((t_cross - sw.alpha - sw.alpha_rendezvous) /
                  (t_intra - sw.alpha - sw.alpha_rendezvous),
              4.0, 1e-6);
}

// --- Functional all-reduce correctness --------------------------------------------

class AllreduceCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, Placement>> {
};

TEST_P(AllreduceCorrectnessTest, RhdComputesElementwiseSum) {
  const auto [p, n, placement] = GetParam();
  Topology topo{p, 4};
  auto data = random_data(p, n, 1000 + p);
  const auto expected = column_sums(data);
  allreduce_rhd(data, topo, sunway_network(), placement);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[r][i], expected[i], 1e-4) << "rank " << r << " idx " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodeCounts, AllreduceCorrectnessTest,
    ::testing::Combine(
        // Powers of two exercise the core algorithm; the rest exercise the
        // MPICH fold/unfold path for arbitrary node counts.
        ::testing::Values(2, 3, 4, 5, 6, 8, 13, 16, 64, 100),
        ::testing::Values<std::size_t>(1, 7, 64, 1000),
        ::testing::Values(Placement::kAdjacent, Placement::kRoundRobin)));

TEST(AllreduceCostTest, NonPowerOfTwoPaysTwoFoldSteps) {
  const NetParams net = sunway_network();
  Topology even{8, 4}, odd{12, 4};
  const auto c8 = cost_rhd(1 << 20, even, net, Placement::kAdjacent);
  const auto c12 = cost_rhd(1 << 20, odd, net, Placement::kAdjacent);
  // 12 nodes = 8-node core + fold/unfold of the full message.
  EXPECT_EQ(c12.alpha_terms, c8.alpha_terms + 2);
  EXPECT_NEAR(c12.gamma_bytes - c8.gamma_bytes, 1 << 20, 1.0);
}

TEST(AllreduceTest, RingComputesSumForAnyNodeCount) {
  for (int p : {2, 3, 5, 8, 13}) {
    Topology topo{p, 4};
    auto data = random_data(p, 37, 3000 + p);
    const auto expected = column_sums(data);
    allreduce_ring(data, topo, sunway_network(), Placement::kAdjacent);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(data[r][i], expected[i], 1e-4) << p << "/" << r;
      }
    }
  }
}

TEST(AllreduceTest, ParamServerComputesSum) {
  Topology topo{5, 4};
  auto data = random_data(5, 16, 4);
  const auto expected = column_sums(data);
  allreduce_param_server(data, topo, sunway_network(), 2);
  for (const auto& v : data) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(v[i], expected[i], 1e-4);
    }
  }
}

// --- Fig. 7 cost invariants -------------------------------------------------------

TEST(AllreduceCostTest, Fig7OriginalCoefficients) {
  // p=8 nodes in 2 supernodes of q=4, adjacent placement:
  // cost = 6a + (7/8)n*gamma + (3/4)n*beta1 + n*beta2.
  Topology topo{8, 4};
  const double n = 1024.0;
  const auto c = cost_rhd(1024, topo, sunway_network(), Placement::kAdjacent);
  EXPECT_EQ(c.alpha_terms, 6);
  EXPECT_NEAR(c.beta1_bytes, 0.75 * n, 1e-9);
  EXPECT_NEAR(c.beta2_bytes, 1.0 * n, 1e-9);
  EXPECT_NEAR(c.gamma_bytes, 7.0 / 8.0 * n, 1e-9);
}

TEST(AllreduceCostTest, Fig7ImprovedCoefficients) {
  // Round-robin placement: cost = 6a + (7/8)n*gamma + (3/2)n*beta1 +
  // (1/4)n*beta2 — the cross-supernode coefficient drops from n to n/4.
  Topology topo{8, 4};
  const double n = 1024.0;
  const auto c = cost_rhd(1024, topo, sunway_network(), Placement::kRoundRobin);
  EXPECT_EQ(c.alpha_terms, 6);
  EXPECT_NEAR(c.beta1_bytes, 1.5 * n, 1e-9);
  EXPECT_NEAR(c.beta2_bytes, 0.25 * n, 1e-9);
  EXPECT_NEAR(c.gamma_bytes, 7.0 / 8.0 * n, 1e-9);
}

TEST(AllreduceCostTest, GeneralCoefficientsMatchEquations) {
  // Eq. 3/4: original beta2 coefficient (p-q)/p; Eq. 5/6: improved
  // (p/q-1)/p — checked across several topologies (x2 for the two phases).
  for (const auto& [p, q] : std::vector<std::pair<int, int>>{
           {8, 4}, {16, 4}, {64, 16}, {1024, 256}}) {
    Topology topo{p, q};
    const double n = 4096.0;
    const auto adj = cost_rhd(4096, topo, sunway_network(),
                              Placement::kAdjacent);
    const auto rr = cost_rhd(4096, topo, sunway_network(),
                             Placement::kRoundRobin);
    EXPECT_NEAR(adj.beta2_bytes, 2.0 * (p - q) / p * n, 1e-6)
        << "p=" << p << " q=" << q;
    EXPECT_NEAR(rr.beta2_bytes, 2.0 * (static_cast<double>(p) / q - 1) / p * n,
                1e-6)
        << "p=" << p << " q=" << q;
    // The improvement claim: less over-subscribed traffic, same latency.
    EXPECT_LT(rr.beta2_bytes, adj.beta2_bytes);
    EXPECT_EQ(rr.alpha_terms, adj.alpha_terms);
    EXPECT_LT(rr.seconds, adj.seconds);
  }
}

TEST(AllreduceCostTest, FunctionalAndAnalyticCostsAgree) {
  Topology topo{16, 4};
  auto data = random_data(16, 256, 5);
  const auto functional =
      allreduce_rhd(data, topo, sunway_network(), Placement::kRoundRobin);
  const auto analytic =
      cost_rhd(256 * 4, topo, sunway_network(), Placement::kRoundRobin);
  EXPECT_DOUBLE_EQ(functional.seconds, analytic.seconds);
  EXPECT_EQ(functional.alpha_terms, analytic.alpha_terms);
  EXPECT_DOUBLE_EQ(functional.beta2_bytes, analytic.beta2_bytes);
}

TEST(AllreduceCostTest, RingPaysLinearLatency) {
  // The paper rejects ring all-reduce on Sunway: its latency term is
  // p*alpha against the binomial algorithm's 2*log2(p)*alpha.
  Topology topo{1024, 256};
  const auto ring = cost_ring(1 << 20, topo, sunway_network(),
                              Placement::kAdjacent);
  const auto rhd = cost_rhd(1 << 20, topo, sunway_network(),
                            Placement::kRoundRobin);
  EXPECT_EQ(ring.alpha_terms, 2 * 1023);
  EXPECT_EQ(rhd.alpha_terms, 20);
  EXPECT_GT(ring.seconds, rhd.seconds);
}

TEST(AllreduceCostTest, ParamServerSerializesAtServerPort) {
  // Sec. V-A: the single network port of a parameter server is the
  // bottleneck; cost grows linearly with p while rhd grows ~log p.
  const std::int64_t n = 100 << 20;
  const NetParams net = sunway_network();
  Topology small{64, 256}, large{1024, 256};
  const auto ps_small = cost_param_server(n, small, net, 1);
  const auto ps_large = cost_param_server(n, large, net, 1);
  EXPECT_NEAR(ps_large.seconds / ps_small.seconds, 16.0, 0.5);
  const auto rhd_large = cost_rhd(n, large, net, Placement::kRoundRobin);
  EXPECT_GT(ps_large.seconds, 10.0 * rhd_large.seconds);
}

TEST(AllreduceCostTest, SingleNodeIsFree) {
  Topology topo{1, 256};
  const auto c = cost_rhd(1 << 20, topo, sunway_network(),
                          Placement::kAdjacent);
  EXPECT_EQ(c.seconds, 0.0);
  auto data = random_data(1, 8, 6);
  const auto expected = data[0];
  allreduce_rhd(data, topo, sunway_network(), Placement::kAdjacent);
  EXPECT_EQ(data[0], expected);
}

// --- Algorithm-agreement edge cases -----------------------------------------------

TEST(AllreduceEdgeTest, RingAndRhdAgreeAtOneNode) {
  // Both algorithms must degenerate to a free no-op on a single rank: no
  // time, no traffic, payload untouched bit-for-bit.
  Topology topo{1, 256};
  const NetParams net = sunway_network();
  using AllreduceFn = CostBreakdown (*)(std::vector<std::vector<float>>&,
                                        const Topology&, const NetParams&,
                                        Placement, trace::Tracer*, int);
  const AllreduceFn fns[] = {&allreduce_ring, &allreduce_rhd};
  for (AllreduceFn fn : fns) {
    auto data = random_data(1, 23, 77);
    const auto expected = data[0];
    const CostBreakdown c = fn(data, topo, net, Placement::kAdjacent,
                               nullptr, 0);
    EXPECT_EQ(c.seconds, 0.0);
    EXPECT_EQ(c.alpha_terms, 0);
    EXPECT_EQ(c.beta1_bytes + c.beta2_bytes + c.gamma_bytes, 0.0);
    EXPECT_EQ(data[0], expected);
  }
  EXPECT_EQ(cost_ring(1 << 20, topo, net, Placement::kAdjacent).seconds, 0.0);
}

TEST(AllreduceEdgeTest, RingAndRhdAgreeOnNonPowerOfTwoSums) {
  // The fold/unfold path of RHD and the linear ring must compute the same
  // elementwise sum for awkward rank counts (non-power-of-two, prime).
  const NetParams net = sunway_network();
  for (int p : {3, 5, 6, 7, 12, 13}) {
    Topology topo{p, 4};
    auto ring_data = random_data(p, 41, 9000 + p);
    auto rhd_data = ring_data;  // identical inputs
    const auto expected = column_sums(ring_data);
    allreduce_ring(ring_data, topo, net, Placement::kAdjacent);
    allreduce_rhd(rhd_data, topo, net, Placement::kAdjacent);
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(ring_data[r][i], expected[i], 1e-4) << "ring p=" << p;
        ASSERT_NEAR(rhd_data[r][i], expected[i], 1e-4) << "rhd p=" << p;
      }
    }
  }
}

TEST(AllreduceEdgeTest, NonPowerOfTwoCostsStayFiniteAndOrdered) {
  // Analytic costs at awkward counts: positive, finite, and more ranks of
  // the same message never make the ring cheaper (its latency is linear).
  const NetParams net = sunway_network();
  double prev_ring = 0.0;
  for (int p : {3, 5, 6, 7, 12, 13}) {
    Topology topo{p, 4};
    const auto ring = cost_ring(1 << 20, topo, net, Placement::kAdjacent);
    const auto rhd = cost_rhd(1 << 20, topo, net, Placement::kAdjacent);
    EXPECT_GT(ring.seconds, 0.0) << p;
    EXPECT_GT(rhd.seconds, 0.0) << p;
    EXPECT_EQ(ring.alpha_terms, 2 * (p - 1)) << p;
    EXPECT_GT(ring.seconds, prev_ring) << p;
    prev_ring = ring.seconds;
  }
}

// --- Degenerate payload handling --------------------------------------------------

TEST(AllreducePayloadTest, ZeroBytePayloadIsClampedToEmptyBreakdown) {
  Topology topo{8, 4};
  const NetParams net = sunway_network();
  for (const CostBreakdown& c :
       {cost_ring(0, topo, net, Placement::kAdjacent),
        cost_rhd(0, topo, net, Placement::kAdjacent),
        cost_param_server(0, topo, net, 2)}) {
    EXPECT_EQ(c.seconds, 0.0);
    EXPECT_EQ(c.alpha_terms, 0);
    EXPECT_EQ(c.beta1_bytes, 0.0);
    EXPECT_EQ(c.beta2_bytes, 0.0);
    EXPECT_EQ(c.gamma_bytes, 0.0);
  }
}

TEST(AllreducePayloadTest, ZeroBytePayloadEmitsNoTraceSpan) {
  // Consistent with the p==1 early-out: a degenerate collective must not
  // fabricate a "comm.allreduce" span of zero duration.
  Topology topo{8, 4};
  const NetParams net = sunway_network();
  trace::Tracer tracer;
  cost_ring(0, topo, net, Placement::kAdjacent, &tracer, 0);
  cost_rhd(0, topo, net, Placement::kAdjacent, &tracer, 0);
  cost_param_server(0, topo, net, 2, &tracer, 0);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(AllreducePayloadTest, NegativePayloadIsRejectedWithDiagnostic) {
  Topology topo{8, 4};
  const NetParams net = sunway_network();
  EXPECT_THROW(cost_ring(-1, topo, net, Placement::kAdjacent),
               base::CheckError);
  EXPECT_THROW(cost_rhd(-4096, topo, net, Placement::kAdjacent),
               base::CheckError);
  EXPECT_THROW(cost_param_server(-1, topo, net, 2), base::CheckError);
  try {
    cost_ring(-7, topo, net, Placement::kAdjacent);
    FAIL() << "negative payload must throw";
  } catch (const base::CheckError& e) {
    // The diagnostic names the offending size so the caller can find it.
    EXPECT_NE(std::string(e.what()).find("-7"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace swcaffe::topo
