// Grouped convolution (Caffe group semantics; the original AlexNet's
// 2-group layers).
#include <gtest/gtest.h>

#include "base/log.h"
#include "base/rng.h"
#include "core/layers.h"
#include "core/net.h"
#include "core/models.h"
#include "core/proto.h"
#include "hw/cost_model.h"
#include "swdnn/conv_func.h"
#include "swdnn/conv_plan.h"

namespace swcaffe::core {
namespace {

std::vector<float> random_vec(std::size_t n, base::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

ConvGeom grouped(int batch, int in_c, int out_c, int img, int group) {
  ConvGeom g;
  g.batch = batch;
  g.in_c = in_c;
  g.out_c = out_c;
  g.in_h = g.in_w = img;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  g.group = group;
  return g;
}

TEST(GroupConvTest, WeightCountAndFlopsDivideByGroup) {
  const ConvGeom g1 = grouped(4, 8, 8, 6, 1);
  const ConvGeom g2 = grouped(4, 8, 8, 6, 2);
  EXPECT_EQ(g2.weight_count() * 2, g1.weight_count());
  EXPECT_DOUBLE_EQ(g2.flops_fwd() * 2, g1.flops_fwd());
  EXPECT_EQ(g2.per_group().in_c, 4);
  EXPECT_EQ(g2.per_group().out_c, 4);
}

TEST(GroupConvTest, ForwardEqualsManualGroupComposition) {
  // A 2-group convolution must equal two independent half convolutions.
  const ConvGeom g = grouped(2, 6, 4, 5, 2);
  base::Rng rng(91);
  const auto bottom = random_vec(g.input_count(), rng);
  const auto weight = random_vec(g.weight_count(), rng);
  const auto bias = random_vec(g.out_c, rng);
  std::vector<float> top(g.output_count());
  dnn::conv_forward_explicit(g, bottom.data(), weight.data(), bias.data(),
                             top.data());

  // Manual composition: slice channels per group.
  ConvGeom sub = g.per_group();
  sub.batch = 1;
  const std::size_t in_g = static_cast<std::size_t>(sub.in_c) * 25;
  const std::size_t out_g = static_cast<std::size_t>(sub.out_c) * 25;
  const std::size_t w_g = sub.out_c * sub.in_c * 9;
  for (int b = 0; b < g.batch; ++b) {
    for (int gp = 0; gp < 2; ++gp) {
      std::vector<float> expected(out_g);
      dnn::conv_forward_implicit(
          sub, bottom.data() + (b * 2 + gp) * in_g, weight.data() + gp * w_g,
          bias.data() + gp * sub.out_c, expected.data());
      for (std::size_t i = 0; i < out_g; ++i) {
        ASSERT_NEAR(top[(b * 2 + gp) * out_g + i], expected[i], 1e-4f)
            << b << "/" << gp << "/" << i;
      }
    }
  }
}

TEST(GroupConvTest, GroupsAreIndependent) {
  // Perturbing group 0's input channels must not change group 1's output.
  const ConvGeom g = grouped(1, 4, 4, 5, 2);
  base::Rng rng(92);
  auto bottom = random_vec(g.input_count(), rng);
  const auto weight = random_vec(g.weight_count(), rng);
  std::vector<float> top_a(g.output_count()), top_b(g.output_count());
  dnn::conv_forward_explicit(g, bottom.data(), weight.data(), nullptr,
                             top_a.data());
  for (std::size_t i = 0; i < 2 * 25; ++i) bottom[i] += 1.0f;  // group 0 only
  dnn::conv_forward_explicit(g, bottom.data(), weight.data(), nullptr,
                             top_b.data());
  const std::size_t out_g = 2 * 25;
  bool group0_changed = false;
  for (std::size_t i = 0; i < out_g; ++i) {
    group0_changed = group0_changed || top_a[i] != top_b[i];
  }
  EXPECT_TRUE(group0_changed);
  for (std::size_t i = out_g; i < 2 * out_g; ++i) {
    EXPECT_EQ(top_a[i], top_b[i]) << i;
  }
}

TEST(GroupConvTest, LayerGradientCheck) {
  NetSpec spec;
  spec.inputs.push_back({"x", {2, 4, 5, 5}});
  spec.inputs.push_back({"label", {2}});
  LayerSpec conv = conv_spec("gc", "x", "y", 4, 3, 1, 1);
  conv.group = 2;
  spec.layers.push_back(conv);
  spec.layers.push_back(ip_spec("head", "y", "scores", 2));
  spec.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  Net net(spec, 93);
  base::Rng rng(94);
  for (auto& v : net.blob("x")->data()) v = rng.uniform(-1, 1);
  net.blob("label")->data()[0] = 1;
  net.blob("label")->data()[1] = 0;
  net.forward_backward();

  // Finite differences on input and weights.
  for (tensor::Tensor* blob :
       std::vector<tensor::Tensor*>{net.blob("x"),
                                    net.layer("gc")->params()[0].get()}) {
    std::vector<float> analytic(blob->diff().begin(), blob->diff().end());
    auto data = blob->data();
    const float eps = 1e-2f;
    const std::size_t stride = std::max<std::size_t>(1, blob->count() / 6);
    for (std::size_t i = 0; i < blob->count(); i += stride) {
      const float orig = data[i];
      data[i] = orig + eps;
      const double lp = net.forward();
      data[i] = orig - eps;
      const double lm = net.forward();
      data[i] = orig;
      EXPECT_NEAR(analytic[i], (lp - lm) / (2.0 * eps), 2e-2) << i;
    }
  }
}

TEST(GroupConvTest, LayerRejectsIndivisibleChannels) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 3, 5, 5}});
  LayerSpec conv = conv_spec("gc", "x", "y", 4, 3, 1, 1);
  conv.group = 2;  // 3 input channels cannot split into 2 groups
  spec.layers.push_back(conv);
  EXPECT_THROW(Net(spec, 1), base::CheckError);
}

TEST(GroupConvTest, EstimateScalesAndUsesPerGroupChannels) {
  hw::CostModel cost;
  // 128->128 channels at 2 groups is two 64->64 kernels: the implicit
  // BACKWARD becomes unsupported (per-group min channel < 128) even though
  // the full-layer channel counts would qualify.
  ConvGeom g = grouped(16, 128, 128, 28, 2);
  const auto est = dnn::estimate_conv(cost, g);
  EXPECT_FALSE(est.backward_weight.implicit_ok());
  ConvGeom ungrouped = grouped(16, 128, 128, 28, 1);
  EXPECT_TRUE(
      dnn::estimate_conv(cost, ungrouped).backward_weight.implicit_ok());
}

TEST(GroupConvTest, ProtoRoundTripKeepsGroup) {
  NetSpec spec;
  spec.name = "grouped";
  spec.inputs.push_back({"x", {1, 4, 6, 6}});
  LayerSpec conv = conv_spec("c", "x", "y", 8, 3, 1, 1);
  conv.group = 2;
  spec.layers.push_back(conv);
  const NetSpec back = parse_net_prototxt(net_spec_to_prototxt(spec));
  EXPECT_EQ(back.layers[0].group, 2);
  const auto descs = describe_net_spec(back);
  EXPECT_EQ(descs[0].param_count, 8 * 2 * 9 + 8);  // grouped weights + bias
}

}  // namespace
}  // namespace swcaffe::core
