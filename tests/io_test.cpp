// Parallel I/O model (paper Sec. V-B), synthetic dataset and prefetcher.
#include <gtest/gtest.h>

#include <set>

#include "base/log.h"
#include "io/dataset.h"
#include "io/disk_model.h"
#include "io/prefetch.h"

namespace swcaffe::io {
namespace {

constexpr std::int64_t kMiniBatchBytes = 192LL << 20;  // paper: ~192 MB
constexpr std::int64_t kFileBytes = 200LL << 30;       // dataset size

TEST(DiskModelTest, SingleSplitCapsAtOneArray) {
  DiskParams disk;
  // Regardless of process count, aggregate bandwidth == one array.
  for (int procs : {1, 8, 64, 512}) {
    const double bw = aggregate_bandwidth(disk, FileLayout::kSingleSplit,
                                          procs, kMiniBatchBytes, kFileBytes);
    EXPECT_NEAR(bw, disk.array_bw, 1e-3) << procs;
  }
}

TEST(DiskModelTest, StripingScalesAggregateBandwidth) {
  // Not strictly monotone point-to-point (deterministic read offsets can
  // alias onto the same array), but the growth trend must hold and the
  // asymptote is the full 32-array rate.
  DiskParams disk;
  const double bw1 = aggregate_bandwidth(disk, FileLayout::kStriped, 1,
                                         kMiniBatchBytes, kFileBytes);
  const double bw16 = aggregate_bandwidth(disk, FileLayout::kStriped, 16,
                                          kMiniBatchBytes, kFileBytes);
  const double bw512 = aggregate_bandwidth(disk, FileLayout::kStriped, 512,
                                           kMiniBatchBytes, kFileBytes);
  EXPECT_GT(bw16, 2.0 * bw1);
  EXPECT_GT(bw512, bw16);
  EXPECT_GT(bw512, 0.5 * disk.num_arrays * disk.array_bw);
  EXPECT_LE(bw512, disk.num_arrays * disk.array_bw * 1.001);
}

TEST(DiskModelTest, StripedBeatsSingleSplitAtScale) {
  DiskParams disk;
  const double single = read_time(disk, FileLayout::kSingleSplit, 256,
                                  kMiniBatchBytes, kFileBytes);
  const double striped = read_time(disk, FileLayout::kStriped, 256,
                                   kMiniBatchBytes, kFileBytes);
  EXPECT_GT(single / striped, 10.0);  // paper: aggregate collapses without it
}

TEST(DiskModelTest, ReadersPerArrayBoundMatchesPaper) {
  DiskParams disk;  // 32 arrays, 256 MB stripes
  // Paper: a 192 MB contiguous read touches at most two stripes, so at most
  // N/32 * 2 processes per array.
  const int bound = max_readers_per_array(disk, 256, kMiniBatchBytes);
  EXPECT_EQ(bound, (256 / 32) * 2);
}

TEST(DiskModelTest, OneProcessStripedSeesOneToTwoArrays) {
  DiskParams disk;
  const double t = read_time(disk, FileLayout::kStriped, 1, kMiniBatchBytes,
                             kFileBytes);
  // 192 MB split over at most 2 arrays: between n/2B and n/B seconds.
  EXPECT_LE(t, static_cast<double>(kMiniBatchBytes) / disk.array_bw + 1e-9);
  EXPECT_GE(t, 0.5 * kMiniBatchBytes / disk.array_bw - 1e-9);
}

TEST(DatasetTest, SamplesAreDeterministic) {
  DatasetSpec spec;
  spec.num_samples = 100;
  spec.classes = 10;
  spec.height = spec.width = 8;
  SyntheticImageNet data(spec);
  std::vector<float> a, b;
  data.fill_image(42, a);
  data.fill_image(42, b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(data.label_of(42), data.label_of(42));
  data.fill_image(43, b);
  EXPECT_NE(a, b);
}

TEST(DatasetTest, LabelsAreBalancedish) {
  DatasetSpec spec;
  spec.num_samples = 10000;
  spec.classes = 10;
  SyntheticImageNet data(spec);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[data.label_of(i)]++;
  for (int c = 0; c < 10; ++c) {
    EXPECT_GT(counts[c], 700) << c;
    EXPECT_LT(counts[c], 1300) << c;
  }
}

TEST(DatasetTest, SampleBytesMatchImageNetScale) {
  DatasetSpec spec;  // defaults: 3x224x224 float
  EXPECT_EQ(spec.sample_bytes(), 3 * 224 * 224 * 4);
  // The paper's 256-image mini-batch is "around 192 MB".
  EXPECT_NEAR(256.0 * spec.sample_bytes() / (1 << 20), 147.0, 1.0);
}

TEST(SamplerTest, RanksDrawDifferentStreams) {
  Sampler s0(1000, 7, 0), s1(1000, 7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.next() == s1.next()) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(PrefetcherTest, DeliversWellFormedBatches) {
  DatasetSpec spec;
  spec.num_samples = 64;
  spec.classes = 5;
  spec.channels = 1;
  spec.height = spec.width = 4;
  DiskParams disk;
  Prefetcher pf(spec, disk, FileLayout::kStriped, /*batch=*/8);
  for (int i = 0; i < 3; ++i) {
    Batch b = pf.pop();
    EXPECT_EQ(b.images.size(), 8u * 16);
    EXPECT_EQ(b.labels.size(), 8u);
    for (float l : b.labels) {
      EXPECT_GE(l, 0.0f);
      EXPECT_LT(l, 5.0f);
    }
    EXPECT_GT(b.simulated_read_s, 0.0);
  }
}

TEST(PrefetcherTest, DeterministicPerRank) {
  DatasetSpec spec;
  spec.num_samples = 64;
  spec.classes = 5;
  spec.channels = 1;
  spec.height = spec.width = 4;
  DiskParams disk;
  Prefetcher a(spec, disk, FileLayout::kStriped, 4, /*rank=*/3);
  Prefetcher b(spec, disk, FileLayout::kStriped, 4, /*rank=*/3);
  const Batch ba = a.pop(), bb = b.pop();
  EXPECT_EQ(ba.images, bb.images);
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(PrefetcherTest, CropShrinksImagesToSpec) {
  DatasetSpec spec;
  spec.num_samples = 32;
  spec.classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 12;
  spec.crop = 8;
  DiskParams disk;
  Prefetcher pf(spec, disk, FileLayout::kStriped, 4);
  const Batch b = pf.pop();
  EXPECT_EQ(b.images.size(), 4u * 3 * 8 * 8);
}

TEST(PrefetcherTest, MirrorFlipsSomeImages) {
  DatasetSpec base;
  base.num_samples = 16;
  base.classes = 2;
  base.channels = 1;
  base.height = base.width = 6;
  DatasetSpec mirrored = base;
  mirrored.mirror = true;
  DiskParams disk;
  // Same sampler stream (same seed/rank): any differing image must be the
  // exact horizontal flip of its unaugmented counterpart.
  Prefetcher plain(base, disk, FileLayout::kStriped, 8);
  Prefetcher flip(mirrored, disk, FileLayout::kStriped, 8);
  const Batch a = plain.pop(), b = flip.pop();
  ASSERT_EQ(a.images.size(), b.images.size());
  int flipped = 0, same = 0;
  const std::size_t img = 36;
  for (int i = 0; i < 8; ++i) {
    const float* pa = a.images.data() + i * img;
    const float* pb = b.images.data() + i * img;
    bool is_same = true, is_flip = true;
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 6; ++x) {
        if (pa[y * 6 + x] != pb[y * 6 + x]) is_same = false;
        if (pa[y * 6 + x] != pb[y * 6 + (5 - x)]) is_flip = false;
      }
    }
    EXPECT_TRUE(is_same || is_flip) << "image " << i;
    flipped += is_flip && !is_same;
    same += is_same;
  }
  EXPECT_GT(flipped, 0);  // with p=0.5 over 8 images, all-unflipped is 0.4%
}

TEST(PrefetcherTest, CropRejectsOversizedWindow) {
  DatasetSpec spec;
  spec.num_samples = 4;
  spec.channels = 1;
  spec.height = spec.width = 6;
  spec.crop = 8;  // larger than the image
  DiskParams disk;
  EXPECT_THROW(Prefetcher(spec, disk, FileLayout::kStriped, 1),
               base::CheckError);
}

TEST(PrefetcherTest, SimulatedReadTimeReflectsLayoutContention) {
  // The dataset must span several stripes for striping to matter; shrink the
  // stripe so a small synthetic set exercises the layout difference.
  DatasetSpec spec;
  spec.num_samples = 4096;
  spec.channels = 1;
  spec.height = spec.width = 64;  // 16 KiB floats per sample
  DiskParams disk;
  disk.stripe_bytes = 1 << 20;  // dataset = 64 MiB -> 64 stripes
  Prefetcher striped(spec, disk, FileLayout::kStriped, 4, 0, /*num_procs=*/256);
  Prefetcher single(spec, disk, FileLayout::kSingleSplit, 4, 0,
                    /*num_procs=*/256);
  EXPECT_LT(striped.pop().simulated_read_s, single.pop().simulated_read_s);
}

TEST(PrefetcherTest, ZeroSampleDatasetThrows) {
  DatasetSpec spec;
  spec.num_samples = 0;
  spec.channels = 1;
  spec.height = spec.width = 4;
  DiskParams disk;
  EXPECT_THROW(Prefetcher(spec, disk, FileLayout::kStriped, 1),
               base::CheckError);
}

TEST(PrefetcherTest, BatchLargerThanDatasetStillDelivers) {
  // Sampling is with replacement, so a batch bigger than the dataset is
  // legal: samples repeat but every batch stays well-formed.
  DatasetSpec spec;
  spec.num_samples = 3;
  spec.classes = 2;
  spec.channels = 1;
  spec.height = spec.width = 4;
  DiskParams disk;
  Prefetcher pf(spec, disk, FileLayout::kStriped, /*batch=*/8);
  for (int i = 0; i < 2; ++i) {
    const Batch b = pf.pop();
    EXPECT_EQ(b.images.size(), 8u * 16);
    EXPECT_EQ(b.labels.size(), 8u);
    for (float l : b.labels) {
      EXPECT_GE(l, 0.0f);
      EXPECT_LT(l, 2.0f);
    }
    EXPECT_GT(b.simulated_read_s, 0.0);
  }
}

TEST(PrefetcherTest, ShutdownMidEpochJoinsCleanly) {
  // Destroying a prefetcher whose worker is still filling the queue must
  // join the thread promptly — whether or not any batch was consumed.
  DatasetSpec spec;
  spec.num_samples = 1024;
  spec.classes = 8;
  spec.channels = 1;
  spec.height = spec.width = 8;
  DiskParams disk;
  {
    Prefetcher untouched(spec, disk, FileLayout::kStriped, 16, 0, 1,
                         /*queue_depth=*/8);
  }
  {
    Prefetcher drained_once(spec, disk, FileLayout::kStriped, 16, 0, 1,
                            /*queue_depth=*/8);
    EXPECT_EQ(drained_once.pop().labels.size(), 16u);
  }
}

}  // namespace
}  // namespace swcaffe::io
