// Layout-transform planning pass (paper Sec. IV-C).
#include <gtest/gtest.h>

#include "core/models.h"
#include "hw/cost_model.h"
#include "swdnn/transform_plan.h"

namespace swcaffe::dnn {
namespace {

TEST(TransformPlanTest, LayoutAgnosticClassification) {
  EXPECT_TRUE(layout_agnostic(core::LayerKind::kReLU));
  EXPECT_TRUE(layout_agnostic(core::LayerKind::kBatchNorm));
  EXPECT_TRUE(layout_agnostic(core::LayerKind::kDropout));
  EXPECT_TRUE(layout_agnostic(core::LayerKind::kEltwise));
  EXPECT_FALSE(layout_agnostic(core::LayerKind::kConv));
  EXPECT_FALSE(layout_agnostic(core::LayerKind::kPool));
  EXPECT_FALSE(layout_agnostic(core::LayerKind::kInnerProduct));
  EXPECT_FALSE(layout_agnostic(core::LayerKind::kConcat));
}

TEST(TransformPlanTest, GatheringNeverLosesToPerLayer) {
  hw::CostModel cost;
  for (const auto& spec :
       {core::alexnet_bn(64), core::vgg(16, 16), core::resnet50(8),
        core::googlenet(32)}) {
    const auto plan =
        plan_layout_transforms(cost, core::describe_net_spec(spec));
    EXPECT_LE(plan.gathered_transforms, plan.per_layer_transforms)
        << spec.name;
    EXPECT_LE(plan.gathered_total_s, plan.per_layer_total_s + 1e-9)
        << spec.name;
  }
}

TEST(TransformPlanTest, MixedPlanBeatsAllExplicit) {
  // Wherever implicit kernels win per Table II, the transform overhead must
  // not eat the gain (that is the point of gathering).
  hw::CostModel cost;
  for (const auto& spec : {core::vgg(16, 16), core::resnet50(8)}) {
    const auto plan =
        plan_layout_transforms(cost, core::describe_net_spec(spec));
    EXPECT_LT(plan.gathered_total_s, plan.all_explicit_total_s) << spec.name;
  }
}

TEST(TransformPlanTest, ElementwiseRunsAreBridged) {
  // conv(implicit) -> relu -> conv(implicit) must be ONE run: 2 transforms,
  // with the relu marked RCNB.
  core::NetSpec spec;
  spec.inputs.push_back({"data", {16, 512, 14, 14}});
  // 512-channel 14x14 convs: implicit wins (Table II conv5_x).
  spec.layers.push_back(core::conv_spec("c1", "data", "c1", 512, 3, 1, 1));
  spec.layers.push_back(core::relu_spec("r1", "c1", "r1"));
  spec.layers.push_back(core::conv_spec("c2", "r1", "c2", 512, 3, 1, 1));
  hw::CostModel cost;
  const auto descs = core::describe_net_spec(spec);
  const auto plan = plan_layout_transforms(cost, descs);
  ASSERT_EQ(plan.rcnb.size(), 3u);
  EXPECT_TRUE(plan.rcnb[0]);
  EXPECT_TRUE(plan.rcnb[1]);  // the bridged ReLU
  EXPECT_TRUE(plan.rcnb[2]);
  EXPECT_EQ(plan.gathered_transforms, 2);   // in before c1, out after c2
  EXPECT_EQ(plan.per_layer_transforms, 4);  // a pair around each conv
}

TEST(TransformPlanTest, PoolBreaksRuns) {
  // conv(implicit) -> pool -> conv(implicit): pooling is layout-bound, so
  // two runs and four gathered transforms.
  core::NetSpec spec;
  spec.inputs.push_back({"data", {16, 512, 14, 14}});  // implicit-winning size
  spec.layers.push_back(core::conv_spec("c1", "data", "c1", 512, 3, 1, 1));
  spec.layers.push_back(core::pool_spec("p1", "c1", "p1",
                                        core::PoolMethod::kMax, 2, 2));
  spec.layers.push_back(core::conv_spec("c2", "p1", "c2", 512, 3, 1, 1));
  hw::CostModel cost;
  const auto plan =
      plan_layout_transforms(cost, core::describe_net_spec(spec));
  EXPECT_TRUE(plan.rcnb[0]);
  EXPECT_FALSE(plan.rcnb[1]);
  EXPECT_TRUE(plan.rcnb[2]);
  EXPECT_EQ(plan.gathered_transforms, 4);
}

TEST(TransformPlanTest, ExplicitOnlyNetNeedsNoTransforms) {
  // A 3-channel first conv (implicit unsupported) alone: no RCNB anywhere.
  core::NetSpec spec;
  spec.inputs.push_back({"data", {16, 3, 64, 64}});
  spec.layers.push_back(core::conv_spec("c1", "data", "c1", 16, 3, 1, 1));
  hw::CostModel cost;
  const auto plan =
      plan_layout_transforms(cost, core::describe_net_spec(spec));
  EXPECT_FALSE(plan.rcnb[0]);
  EXPECT_EQ(plan.gathered_transforms, 0);
  EXPECT_DOUBLE_EQ(plan.gathered_transform_s, 0.0);
}

TEST(TransformPlanTest, ResNetGathersIntoFewRuns) {
  // ResNet-50's body is implicit-friendly and glued by eltwise/BN/ReLU:
  // gathering must collapse the ~100 per-layer transforms to a handful.
  hw::CostModel cost;
  const auto plan =
      plan_layout_transforms(cost, core::describe_net_spec(core::resnet50(8)));
  EXPECT_GT(plan.per_layer_transforms, 50);
  EXPECT_LT(plan.gathered_transforms, 12);
}

}  // namespace
}  // namespace swcaffe::dnn
