#include <gtest/gtest.h>

#include <sstream>

#include "base/log.h"
#include "base/rng.h"
#include "base/table.h"
#include "base/units.h"

namespace swcaffe {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(SWC_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SWC_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(SWC_CHECK_LT(1, 2));
}

TEST(CheckTest, FailingCheckThrowsCheckError) {
  EXPECT_THROW(SWC_CHECK(false), base::CheckError);
  EXPECT_THROW(SWC_CHECK_EQ(1, 2), base::CheckError);
  EXPECT_THROW(SWC_CHECK_GT(1, 2), base::CheckError);
}

TEST(CheckTest, MessageContainsOperandsAndLocation) {
  try {
    SWC_CHECK_EQ(3, 7);
    FAIL() << "expected throw";
  } catch (const base::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=3"), std::string::npos);
    EXPECT_NE(what.find("rhs=7"), std::string::npos);
    EXPECT_NE(what.find("base_test.cpp"), std::string::npos);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  base::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
}

TEST(RngTest, UniformRespectsRange) {
  base::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, GaussianMoments) {
  base::Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.gaussian(1.0f, 2.0f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  base::Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(TableTest, AlignsColumnsAndCountsRows) {
  base::TablePrinter t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"xxxx", "y", "zz"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TableTest, RejectsWrongArity) {
  base::TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), base::CheckError);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(base::format_bytes(512), "512B");
  EXPECT_EQ(base::format_bytes(2048), "2.0KiB");
  EXPECT_EQ(base::format_bytes(3.5 * 1024 * 1024), "3.5MiB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(base::format_seconds(2.5), "2.500s");
  EXPECT_EQ(base::format_seconds(1.5e-3), "1.500ms");
  EXPECT_EQ(base::format_seconds(2e-6), "2.000us");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(base::format_bandwidth(12e9), "12.00GB/s");
  EXPECT_EQ(base::format_bandwidth(5e6), "5.00MB/s");
}

TEST(UnitsTest, FmtSi) {
  EXPECT_EQ(base::fmt_si(742.4e9), "742.4G");
  EXPECT_EQ(base::fmt_si(1.5e3, 2), "1.50K");
}

}  // namespace
}  // namespace swcaffe
