// LSTM layer: forward semantics, BPTT gradient checks, sequence learning.
#include <gtest/gtest.h>

#include <cmath>

#include "base/log.h"
#include "base/rng.h"
#include "core/layers.h"
#include "core/models.h"
#include "core/net.h"
#include "core/solver.h"

namespace swcaffe::core {
namespace {

NetSpec lstm_probe(int t, int b, int in_dim, int hidden, int classes) {
  NetSpec spec;
  spec.inputs.push_back({"x", {t, b, in_dim}});
  spec.inputs.push_back({"label", {t}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", hidden));
  spec.layers.push_back(ip_spec("head", "h", "scores", classes));
  spec.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

void randomize(tensor::Tensor& t, base::Rng& rng) {
  for (auto& v : t.data()) v = rng.uniform(-1.0f, 1.0f);
}

TEST(LstmLayerTest, OutputShapeIsTimeBatchHidden) {
  NetSpec spec;
  spec.inputs.push_back({"x", {5, 3, 7}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 4));
  Net net(spec, 1);
  EXPECT_EQ(net.blob("h")->shape(), (std::vector<int>{5, 3, 4}));
}

TEST(LstmLayerTest, RejectsNonSequenceInput) {
  NetSpec spec;
  spec.inputs.push_back({"x", {3, 7}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 4));
  EXPECT_THROW(Net(spec, 1), base::CheckError);
}

TEST(LstmLayerTest, ZeroInputZeroWeightsGivesZeroOutput) {
  NetSpec spec;
  spec.inputs.push_back({"x", {4, 2, 3}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 5));
  Net net(spec, 2);
  for (auto* p : net.learnable_params()) p->zero_data();
  net.forward();
  // All gate pre-activations are 0 -> g = tanh(0) = 0 -> c = h = 0.
  for (float v : net.blob("h")->data()) EXPECT_EQ(v, 0.0f);
}

TEST(LstmLayerTest, StatePropagatesAcrossTime) {
  // Feed input only at t=0; later outputs must still be nonzero because the
  // cell state carries it forward.
  NetSpec spec;
  spec.inputs.push_back({"x", {3, 1, 2}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 4));
  Net net(spec, 3);
  net.blob("x")->zero_data();
  net.blob("x")->data()[0] = 2.0f;
  net.blob("x")->data()[1] = -1.5f;
  net.forward();
  const auto h = net.blob("h")->data();
  double later = 0.0;
  for (int t = 1; t < 3; ++t) {
    for (int i = 0; i < 4; ++i) {
      later += std::abs(h[t * 4 + i]);
    }
  }
  EXPECT_GT(later, 1e-4);
}

TEST(LstmLayerTest, ForgetBiasInitializedToOne) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 1, 2}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 3));
  Net net(spec, 4);
  const auto& bias = *net.learnable_params()[2];
  // Gates are packed i, f, o, g: the f block carries the +1 initialization.
  for (int h = 0; h < 3; ++h) {
    EXPECT_GT(bias.data()[3 + h], 0.5f);   // forget block
  }
}

TEST(LstmLayerTest, InputGradientMatchesFiniteDifference) {
  NetSpec spec = lstm_probe(3, 2, 4, 5, 3);
  Net net(spec, 5);
  base::Rng rng(6);
  randomize(*net.blob("x"), rng);
  for (auto& v : net.blob("label")->data()) {
    v = static_cast<float>(rng.uniform_int(0, 2));
  }
  net.forward_backward();
  std::vector<float> analytic(net.blob("x")->diff().begin(),
                              net.blob("x")->diff().end());
  auto data = net.blob("x")->data();
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < data.size(); i += 3) {
    const float orig = data[i];
    data[i] = orig + eps;
    const double lp = net.forward();
    data[i] = orig - eps;
    const double lm = net.forward();
    data[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2.0 * eps), 2e-2) << i;
  }
}

TEST(LstmLayerTest, ParamGradientsMatchFiniteDifference) {
  NetSpec spec = lstm_probe(3, 2, 3, 4, 2);
  Net net(spec, 7);
  base::Rng rng(8);
  randomize(*net.blob("x"), rng);
  for (auto& v : net.blob("label")->data()) {
    v = static_cast<float>(rng.uniform_int(0, 1));
  }
  net.forward_backward();
  for (auto* p : net.learnable_params()) {
    std::vector<float> analytic(p->diff().begin(), p->diff().end());
    auto data = p->data();
    const float eps = 1e-2f;
    const std::size_t stride = std::max<std::size_t>(1, p->count() / 6);
    for (std::size_t i = 0; i < p->count(); i += stride) {
      const float orig = data[i];
      data[i] = orig + eps;
      const double lp = net.forward();
      data[i] = orig - eps;
      const double lm = net.forward();
      data[i] = orig;
      EXPECT_NEAR(analytic[i], (lp - lm) / (2.0 * eps), 2e-2)
          << p->shape_string() << " @ " << i;
    }
  }
}

TEST(LstmLayerTest, LearnsSequenceMajorityTask) {
  // Each time step is labeled by the sign of its input's mean accumulated so
  // far — solvable only by remembering history, so a working LSTM is
  // required. We use the simpler variant: label of the step = sign of the
  // current step's mean; the LSTM solves it comfortably.
  const int t = 6, b = 1, dim = 4;
  NetSpec spec = lstm_probe(t, b, dim, 8, 2);
  Net net(spec, 9);
  SolverSpec solver_spec;
  solver_spec.base_lr = 0.1f;
  solver_spec.momentum = 0.9f;
  SgdSolver solver(net, solver_spec);
  base::Rng rng(10);
  double first = 0.0, last = 0.0;
  for (int iter = 0; iter < 120; ++iter) {
    auto x = net.blob("x")->data();
    auto label = net.blob("label")->data();
    for (int step = 0; step < t; ++step) {
      const int cls = rng.bernoulli(0.5) ? 1 : 0;
      label[step] = static_cast<float>(cls);
      for (int i = 0; i < dim; ++i) {
        x[step * dim + i] =
            (cls == 0 ? -0.6f : 0.6f) + rng.gaussian(0.0f, 0.3f);
      }
    }
    const double loss = solver.step();
    if (iter == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(LstmLayerTest, DescribeMatchesLiveDesc) {
  NetSpec spec;
  spec.inputs.push_back({"x", {5, 3, 7}});
  spec.layers.push_back(lstm_spec("lstm", "x", "h", 4));
  Net net(spec, 11);
  const auto live = net.describe()[0];
  const auto inferred = describe_net_spec(spec)[0];
  EXPECT_EQ(live.kind, LayerKind::kLSTM);
  EXPECT_EQ(live.steps, 5);
  EXPECT_EQ(live.fc.m, inferred.fc.m);
  EXPECT_EQ(live.fc.n, inferred.fc.n);
  EXPECT_EQ(live.fc.k, inferred.fc.k);
  EXPECT_EQ(live.param_count, inferred.param_count);
  EXPECT_EQ(live.param_count, 4 * 4 * (7 + 4) + 4 * 4);
}

}  // namespace
}  // namespace swcaffe::core
