// Training harness: end-to-end loop over prefetcher + node runner + solver.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/proto.h"
#include "parallel/trainer.h"

namespace swcaffe::parallel {
namespace {

core::NetSpec tiny_cnn(int sub_batch, int channels, int image, int classes) {
  core::NetSpec spec;
  spec.name = "trainer-test";
  spec.inputs.push_back({"data", {sub_batch, channels, image, image}});
  spec.inputs.push_back({"label", {sub_batch}});
  spec.layers.push_back(core::conv_spec("c1", "data", "c1", 8, 3, 1, 1));
  spec.layers.push_back(core::relu_spec("r1", "c1", "r1"));
  spec.layers.push_back(core::ip_spec("fc", "r1", "scores", classes));
  spec.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return spec;
}

io::DatasetSpec tiny_dataset(int channels, int image, int classes) {
  io::DatasetSpec d;
  d.num_samples = 512;
  d.classes = classes;
  d.channels = channels;
  d.height = d.width = image;
  return d;
}

TEST(TrainerTest, LossDecreasesOverRun) {
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  solver.momentum = 0.9f;
  TrainOptions opt;
  opt.max_iter = 40;
  opt.display_every = 5;
  Trainer trainer(tiny_cnn(2, 2, 8, 4), solver, tiny_dataset(2, 8, 4),
                  io::DiskParams{}, opt);
  const TrainStats stats = trainer.run();
  EXPECT_EQ(stats.iterations, 40);
  ASSERT_GE(stats.losses.size(), 4u);
  EXPECT_LT(stats.losses.back(), stats.losses.front());
  EXPECT_GT(stats.simulated_seconds, 0.0);
}

TEST(TrainerTest, TestPhaseReportsAccuracy) {
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  solver.momentum = 0.9f;
  TrainOptions opt;
  opt.max_iter = 36;
  opt.display_every = 0;
  opt.test_every = 12;
  opt.test_batches = 3;
  Trainer trainer(tiny_cnn(2, 2, 8, 4), solver, tiny_dataset(2, 8, 4),
                  io::DiskParams{}, opt);
  const TrainStats stats = trainer.run();
  ASSERT_EQ(stats.test_accuracy.size(), 3u);
  for (double a : stats.test_accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  // Synthetic classes are learnable: late accuracy beats chance.
  EXPECT_GT(stats.test_accuracy.back(), 0.25);
}

TEST(TrainerTest, SnapshotsAreWritten) {
  core::SolverSpec solver;
  TrainOptions opt;
  opt.max_iter = 10;
  opt.display_every = 0;
  opt.snapshot_every = 5;
  opt.snapshot_prefix = ::testing::TempDir() + "/swc_trainer";
  Trainer trainer(tiny_cnn(1, 2, 8, 3), solver, tiny_dataset(2, 8, 3),
                  io::DiskParams{}, opt);
  trainer.run();
  for (int iter : {5, 10}) {
    const std::string path =
        opt.snapshot_prefix + "_iter_" + std::to_string(iter) + ".snap";
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    f.close();
    std::remove(path.c_str());
  }
}

TEST(TrainerTest, PrototxtEndToEnd) {
  const core::NetSpec net = core::parse_net_prototxt(R"(
    name: "e2e"
    input: "data"  input_dim: 2 input_dim: 1 input_dim: 6 input_dim: 6
    input: "label" input_dim: 2
    layer { name: "fc" type: "InnerProduct" bottom: "data" top: "scores"
            inner_product_param { num_output: 3 } }
    layer { name: "loss" type: "SoftmaxWithLoss"
            bottom: "scores" bottom: "label" top: "loss" }
  )");
  const core::SolverSpec solver =
      core::parse_solver_prototxt("base_lr: 0.05 momentum: 0.9");
  TrainOptions opt;
  opt.max_iter = 25;
  opt.display_every = 24;
  Trainer trainer(net, solver, tiny_dataset(1, 6, 3), io::DiskParams{}, opt);
  const TrainStats stats = trainer.run();
  EXPECT_EQ(stats.iterations, 25);
  EXPECT_LT(stats.final_loss, 3.0);
}

}  // namespace
}  // namespace swcaffe::parallel
