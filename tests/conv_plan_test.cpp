// Table II shape assertions: which plan is available and which plan wins for
// the VGG-16 convolution configurations the paper measures (batch 128, one
// core group).
#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"

namespace swcaffe::dnn {
namespace {

core::ConvGeom vgg_conv(int in_c, int out_c, int img) {
  core::ConvGeom g;
  g.batch = 128;
  g.in_c = in_c;
  g.out_c = out_c;
  g.in_h = g.in_w = img;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  return g;
}

TEST(ConvPlanTest, ImplicitForwardRejectsThreeChannelInput) {
  // Table II row conv1_1: implicit forward is "-" because Ni=3 cannot fill
  // the 256-bit register blocking.
  EXPECT_FALSE(implicit_forward_supported(vgg_conv(3, 64, 224)));
  EXPECT_TRUE(implicit_forward_supported(vgg_conv(64, 64, 224)));
}

TEST(ConvPlanTest, ImplicitBackwardNeedsWideChannelsOnBothSides) {
  // Table II dash pattern: conv1_2 (64,64) and conv2_1 (64,128) have no
  // implicit backward; conv2_2 (128,128) and deeper do.
  EXPECT_FALSE(implicit_backward_supported(vgg_conv(64, 64, 224)));
  EXPECT_FALSE(implicit_backward_supported(vgg_conv(64, 128, 112)));
  EXPECT_TRUE(implicit_backward_supported(vgg_conv(128, 128, 112)));
  EXPECT_TRUE(implicit_backward_supported(vgg_conv(128, 256, 56)));
  EXPECT_TRUE(implicit_backward_supported(vgg_conv(512, 512, 14)));
}

TEST(ConvPlanTest, UnsupportedDirectionsReportNegativeTime) {
  hw::CostModel cost;
  const ConvEstimate est = estimate_conv(cost, vgg_conv(3, 64, 224));
  EXPECT_FALSE(est.forward.implicit_ok());
  EXPECT_FALSE(est.backward_weight.implicit_ok());
  EXPECT_GT(est.forward.explicit_s, 0.0);
  EXPECT_GT(est.backward_weight.explicit_s, 0.0);
}

TEST(ConvPlanTest, ImplicitWinsEarlyLayers) {
  hw::CostModel cost;
  // conv1_2 and conv2_1: Table II shows implicit clearly faster forward.
  EXPECT_TRUE(estimate_conv(cost, vgg_conv(64, 64, 224)).forward.implicit_wins());
  EXPECT_TRUE(
      estimate_conv(cost, vgg_conv(64, 128, 112)).forward.implicit_wins());
}

TEST(ConvPlanTest, ExplicitWinsMidNetworkLayers) {
  hw::CostModel cost;
  // conv3_1 and conv4_1: Table II shows explicit faster forward.
  EXPECT_FALSE(
      estimate_conv(cost, vgg_conv(128, 256, 56)).forward.implicit_wins());
  EXPECT_FALSE(
      estimate_conv(cost, vgg_conv(256, 512, 28)).forward.implicit_wins());
}

TEST(ConvPlanTest, ImplicitWinsSmallImageDeepLayers) {
  hw::CostModel cost;
  // conv5_x (14x14, 512 channels): Table II shows implicit faster forward.
  EXPECT_TRUE(
      estimate_conv(cost, vgg_conv(512, 512, 14)).forward.implicit_wins());
}

TEST(ConvPlanTest, ImplicitInputGradAvoidsCol2imCost) {
  hw::CostModel cost;
  // Table II: wherever implicit backward exists, the in-diff pass beats
  // explicit by a wide margin (col2im dominates the explicit path).
  for (auto g : {vgg_conv(128, 128, 112), vgg_conv(256, 256, 56),
                 vgg_conv(512, 512, 28)}) {
    const ConvEstimate est = estimate_conv(cost, g);
    ASSERT_TRUE(est.backward_input.implicit_ok());
    EXPECT_LT(est.backward_input.implicit_s, est.backward_input.explicit_s);
  }
}

TEST(ConvPlanTest, AchievedGflopsRisesWithChannelWidth) {
  hw::CostModel cost;
  // Table II Gflops column climbs from ~5 (conv1_1) to ~300-400 mid-net.
  const double g11 = estimate_conv(cost, vgg_conv(3, 64, 224)).gflops_fwd;
  const double g22 = estimate_conv(cost, vgg_conv(128, 128, 112)).gflops_fwd;
  const double g42 = estimate_conv(cost, vgg_conv(512, 512, 28)).gflops_fwd;
  EXPECT_LT(g11, g22);
  EXPECT_LT(g22, g42);
  EXPECT_GT(g42, 200.0);
  EXPECT_LT(g42, 742.4);  // cannot beat the machine
}

TEST(ConvPlanTest, FirstLayerBackwardSkipsInputGradient) {
  hw::CostModel cost;
  const ConvEstimate est = estimate_conv(cost, vgg_conv(3, 64, 224));
  EXPECT_DOUBLE_EQ(est.best_bwd(/*first_layer=*/true),
                   est.backward_weight.best());
  EXPECT_GT(est.best_bwd(false), est.best_bwd(true));
}

TEST(ConvPlanTest, TimesScaleLinearlyWithBatch) {
  hw::CostModel cost;
  auto g1 = vgg_conv(256, 256, 56);
  auto g2 = g1;
  g2.batch = 256;
  const double t1 = estimate_conv(cost, g1).forward.best();
  const double t2 = estimate_conv(cost, g2).forward.best();
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST(ConvPlanTest, Im2colTimeScalesWithReplication) {
  hw::CostModel cost;
  auto k3 = vgg_conv(64, 64, 56);
  auto k5 = k3;
  k5.kernel = 5;
  k5.pad = 2;
  // K*K replication: the 5x5 column matrix is ~25/9 the size of the 3x3 one.
  EXPECT_NEAR(im2col_time(cost, k5) / im2col_time(cost, k3), 25.0 / 9.0, 0.5);
}

TEST(ConvPlanTest, MixedWinnersExistAcrossVgg) {
  hw::CostModel cost;
  // Global sanity for Table II: neither plan dominates everywhere.
  int implicit_wins = 0, explicit_wins = 0;
  const int cfg[12][3] = {{64, 64, 224}, {64, 128, 112}, {128, 128, 112},
                          {128, 256, 56}, {256, 256, 56}, {256, 256, 56},
                          {256, 512, 28}, {512, 512, 28}, {512, 512, 28},
                          {512, 512, 14}, {512, 512, 14}, {512, 512, 14}};
  for (const auto& c : cfg) {
    const auto est = estimate_conv(cost, vgg_conv(c[0], c[1], c[2]));
    if (est.forward.implicit_wins()) {
      ++implicit_wins;
    } else {
      ++explicit_wins;
    }
  }
  EXPECT_GE(implicit_wins, 3);
  EXPECT_GE(explicit_wins, 3);
}

}  // namespace
}  // namespace swcaffe::dnn
