// Multi-core-group node runner (Algorithm 1) and distributed SSGD trainer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <thread>

#include "base/log.h"
#include "base/rng.h"
#include "core/models.h"
#include "fixtures.h"
#include "parallel/node_runner.h"
#include "parallel/ssgd.h"
#include "topo/allreduce.h"

namespace swcaffe::parallel {
namespace {

core::NetSpec mlp(int batch, int in_dim, int hidden, int classes) {
  core::NetSpec net;
  net.name = "mlp";
  net.inputs.push_back({"data", {batch, in_dim}});
  net.inputs.push_back({"label", {batch}});
  net.layers.push_back(core::ip_spec("fc1", "data", "h", hidden));
  net.layers.push_back(core::relu_spec("relu1", "h", "h_out"));
  net.layers.push_back(core::ip_spec("fc2", "h_out", "scores", classes));
  net.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

void random_batch(std::vector<float>& data, std::vector<float>& labels,
                  int batch, int dim, int classes, base::Rng& rng) {
  data.resize(static_cast<std::size_t>(batch) * dim);
  labels.resize(batch);
  for (int b = 0; b < batch; ++b) {
    const int cls = static_cast<int>(rng.uniform_int(0, classes - 1));
    labels[b] = static_cast<float>(cls);
    for (int i = 0; i < dim; ++i) {
      data[b * dim + i] =
          (cls == 0 ? -0.5f : 0.5f) + rng.gaussian(0.0f, 0.3f);
    }
  }
}

TEST(SimpleSyncTest, BarriersAllParties) {
  SimpleSync sync(4);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      sync.arrive_and_wait();
      // Every thread must observe all arrivals once released.
      EXPECT_EQ(before.load(), 4);
      after.fetch_add(1);
      sync.arrive_and_wait();
      EXPECT_EQ(after.load(), 4);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(SimpleSyncTest, ReusableAcrossManyRounds) {
  SimpleSync sync(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        counter.fetch_add(1);
        sync.arrive_and_wait();
        EXPECT_EQ(counter.load() % 3, 0) << "round " << round;
        sync.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), 150);
}

TEST(NodeRunnerTest, FourCgGradientsMatchSingleNetFullBatch) {
  // Algorithm 1's invariant: averaging per-CG gradients over B/4 samples
  // equals the full-batch gradient of one net over B samples.
  const int cgs = 4, sub_batch = 3, dim = 6, classes = 2;
  NodeRunner runner(mlp(sub_batch, dim, 8, classes), cgs, 42);
  core::Net reference(mlp(sub_batch * cgs, dim, 8, classes), 42);
  reference.copy_params_from(runner.master());

  base::Rng rng(7);
  std::vector<float> data, labels;
  random_batch(data, labels, sub_batch * cgs, dim, classes, rng);

  const double loss_node = runner.compute_gradients(data, labels);

  std::copy(data.begin(), data.end(),
            reference.blob("data")->data().begin());
  std::copy(labels.begin(), labels.end(),
            reference.blob("label")->data().begin());
  const double loss_ref = reference.forward_backward();

  EXPECT_NEAR(loss_node, loss_ref, 1e-5);
  const std::size_t n = reference.param_count();
  std::vector<float> g_node(n), g_ref(n);
  runner.master().pack_param_diffs(g_node);
  reference.pack_param_diffs(g_ref);
  for (std::size_t i = 0; i < n; ++i) {
    // Softmax loss normalizes by batch: the CG average over B/4-sample
    // losses equals the B-sample gradient.
    EXPECT_NEAR(g_node[i], g_ref[i], 1e-4f) << i;
  }
}

TEST(NodeRunnerTest, BroadcastParamsSynchronizesReplicas) {
  NodeRunner runner(mlp(2, 4, 6, 2), 4, 1);
  // Perturb master params, broadcast, compare.
  auto params = runner.master().learnable_params();
  params[0]->data()[0] = 123.0f;
  runner.broadcast_params();
  for (int cg = 1; cg < 4; ++cg) {
    EXPECT_EQ(runner.replica(cg).learnable_params()[0]->data()[0], 123.0f);
  }
}

class SsgdAlgoTest : public ::testing::TestWithParam<AllreduceAlgo> {};

TEST_P(SsgdAlgoTest, AllNodesStayBitwiseIdentical) {
  SsgdOptions opt;
  opt.algo = GetParam();
  opt.supernode_size = 2;
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.1f;
  solver.momentum = 0.9f;
  SsgdTrainer trainer(mlp(sub_batch, dim, 6, classes), nodes, solver, opt, 3);
  base::Rng rng(4);
  std::vector<float> data, labels;
  for (int it = 0; it < 5; ++it) {
    random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
    trainer.step(data, labels);
  }
  std::vector<float> w0(trainer.node(0).param_count());
  trainer.node(0).pack_params(w0);
  for (int r = 1; r < nodes; ++r) {
    std::vector<float> wr(w0.size());
    trainer.node(r).pack_params(wr);
    EXPECT_EQ(wr, w0) << "rank " << r << " diverged under "
                      << allreduce_algo_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SsgdAlgoTest,
                         ::testing::Values(AllreduceAlgo::kRhdAdjacent,
                                           AllreduceAlgo::kRhdRoundRobin,
                                           AllreduceAlgo::kRing,
                                           AllreduceAlgo::kParamServer,
                                           AllreduceAlgo::kHierarchical),
                         [](const auto& info) {
                           std::string n = allreduce_algo_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(SsgdTest, DataParallelMatchesLargeBatchSingleNode) {
  // k nodes x sub-batch b with averaged gradients == one node with batch k*b
  // (up to float reduction order).
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  SsgdOptions opt;
  opt.supernode_size = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  solver.momentum = 0.0f;
  SsgdTrainer trainer(mlp(sub_batch, dim, 6, classes), nodes, solver, opt, 9);

  core::Net big(mlp(nodes * sub_batch, dim, 6, classes), 9);
  big.copy_params_from(trainer.node(0));
  core::SgdSolver big_solver(big, solver);

  base::Rng rng(10);
  std::vector<float> data, labels;
  for (int it = 0; it < 3; ++it) {
    random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
    trainer.step(data, labels);
    std::copy(data.begin(), data.end(), big.blob("data")->data().begin());
    std::copy(labels.begin(), labels.end(),
              big.blob("label")->data().begin());
    big_solver.step();
  }
  std::vector<float> w_dist(trainer.node(0).param_count()),
      w_big(big.param_count());
  trainer.node(0).pack_params(w_dist);
  big.pack_params(w_big);
  for (std::size_t i = 0; i < w_big.size(); ++i) {
    EXPECT_NEAR(w_dist[i], w_big[i], 1e-4f) << i;
  }
}

TEST(SsgdTest, TrainingLossDecreases) {
  SsgdOptions opt;
  opt.supernode_size = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.2f;
  solver.momentum = 0.9f;
  SsgdTrainer trainer(mlp(4, 6, 12, 2), 4, solver, opt, 11);
  base::Rng rng(12);
  std::vector<float> data, labels;
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 40; ++it) {
    random_batch(data, labels, 16, 6, 2, rng);
    const double loss = trainer.step(data, labels);
    if (it == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(SsgdTest, CommCostReflectsPlacement) {
  const int nodes = 8;
  core::SolverSpec solver;
  base::Rng rng(13);
  std::vector<float> data, labels;
  random_batch(data, labels, nodes * 2, 5, 2, rng);

  SsgdOptions adjacent;
  adjacent.algo = AllreduceAlgo::kRhdAdjacent;
  adjacent.supernode_size = 4;
  SsgdTrainer t_adj(mlp(2, 5, 6, 2), nodes, solver, adjacent, 14);
  t_adj.step(data, labels);

  SsgdOptions rr;
  rr.algo = AllreduceAlgo::kRhdRoundRobin;
  rr.supernode_size = 4;
  SsgdTrainer t_rr(mlp(2, 5, 6, 2), nodes, solver, rr, 14);
  t_rr.step(data, labels);

  EXPECT_LT(t_rr.last_comm().beta2_bytes, t_adj.last_comm().beta2_bytes);
  EXPECT_LT(t_rr.last_comm().seconds, t_adj.last_comm().seconds);
}

TEST(SsgdTest, HierarchicalWeightsBitIdenticalToFlatRoundRobin) {
  // Engaging geometry (8 nodes, q = 2, s = 4, all powers of two): the
  // two-level algorithm's summation tree equals flat improved RHD's, so
  // trained weights must match BITWISE after several iterations.
  const int nodes = 8, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.1f;
  solver.momentum = 0.9f;
  base::Rng rng(21);
  std::vector<float> data, labels;

  SsgdOptions flat;
  flat.algo = AllreduceAlgo::kRhdRoundRobin;
  flat.supernode_size = 2;
  SsgdTrainer t_flat(mlp(sub_batch, dim, 6, classes), nodes, solver, flat, 5);
  SsgdOptions hier = flat;
  hier.algo = AllreduceAlgo::kHierarchical;
  SsgdTrainer t_hier(mlp(sub_batch, dim, 6, classes), nodes, solver, hier, 5);

  for (int it = 0; it < 5; ++it) {
    random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
    t_flat.step(data, labels);
    t_hier.step(data, labels);
  }
  std::vector<float> w_flat(t_flat.node(0).param_count()),
      w_hier(t_hier.node(0).param_count());
  t_flat.node(0).pack_params(w_flat);
  t_hier.node(0).pack_params(w_hier);
  EXPECT_EQ(w_flat, w_hier);
  // Cost parity too: same phase structure, same pricing.
  EXPECT_DOUBLE_EQ(t_hier.last_comm().seconds, t_flat.last_comm().seconds);
}

TEST(SsgdTest, CompressedTrainingBitwiseReproducible) {
  // The compressed path (EF residuals + codec) is a pure function of its
  // inputs: two trainers stepped through the same batches end bit-identical,
  // and every node agrees.
  for (topo::Compression c :
       {topo::Compression::kFp16, topo::Compression::kInt8}) {
    const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
    core::SolverSpec solver;
    solver.base_lr = 0.1f;
    SsgdOptions opt;
    opt.supernode_size = 2;
    opt.compression = c;
    opt.buckets = 2;
    SsgdTrainer a(mlp(sub_batch, dim, 6, classes), nodes, solver, opt, 17);
    SsgdTrainer b(mlp(sub_batch, dim, 6, classes), nodes, solver, opt, 17);
    base::Rng rng(18);
    std::vector<float> data, labels;
    for (int it = 0; it < 5; ++it) {
      random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
      const double la = a.step(data, labels);
      const double lb = b.step(data, labels);
      EXPECT_EQ(la, lb) << topo::compression_name(c) << " iter " << it;
    }
    std::vector<float> wa(a.node(0).param_count()),
        wb(b.node(0).param_count());
    a.node(0).pack_params(wa);
    b.node(0).pack_params(wb);
    EXPECT_EQ(wa, wb) << topo::compression_name(c);
    for (int r = 1; r < nodes; ++r) {
      std::vector<float> wr(wa.size());
      a.node(r).pack_params(wr);
      EXPECT_EQ(wr, wa) << topo::compression_name(c) << " rank " << r;
    }
  }
}

TEST(SsgdTest, CompressedTrainingStillLearns) {
  // Error feedback keeps the quantized gradients useful: the loss must
  // still drop under int8 (the harshest codec).
  SsgdOptions opt;
  opt.supernode_size = 2;
  opt.compression = topo::Compression::kInt8;
  core::SolverSpec solver;
  solver.base_lr = 0.2f;
  solver.momentum = 0.9f;
  SsgdTrainer trainer(mlp(4, 6, 12, 2), 4, solver, opt, 11);
  base::Rng rng(12);
  std::vector<float> data, labels;
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 40; ++it) {
    random_batch(data, labels, 16, 6, 2, rng);
    const double loss = trainer.step(data, labels);
    if (it == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(SsgdTest, CompressionShrinksPricedCommBytes) {
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  base::Rng rng(23);
  std::vector<float> data, labels;
  random_batch(data, labels, nodes * sub_batch, dim, classes, rng);

  SsgdOptions raw;
  raw.supernode_size = 2;
  SsgdTrainer t_raw(mlp(sub_batch, dim, 6, classes), nodes, solver, raw, 31);
  t_raw.step(data, labels);

  SsgdOptions fp16 = raw;
  fp16.compression = topo::Compression::kFp16;
  SsgdTrainer t16(mlp(sub_batch, dim, 6, classes), nodes, solver, fp16, 31);
  t16.step(data, labels);

  EXPECT_LT(t16.last_comm().beta1_bytes + t16.last_comm().beta2_bytes,
            t_raw.last_comm().beta1_bytes + t_raw.last_comm().beta2_bytes);
}

TEST(SsgdTest, Int8OverRingRejectedAtConstruction) {
  // swcheck's comm rule fires in the constructor, before any iteration:
  // re-quantizing partial sums at every ring hop has no error bound.
  SsgdOptions opt;
  opt.algo = AllreduceAlgo::kRing;
  opt.compression = topo::Compression::kInt8;
  opt.supernode_size = 2;
  core::SolverSpec solver;
  EXPECT_THROW(SsgdTrainer(mlp(2, 5, 6, 2), 4, solver, opt, 1),
               base::CheckError);
  opt.algo = AllreduceAlgo::kParamServer;
  EXPECT_THROW(SsgdTrainer(mlp(2, 5, 6, 2), 4, solver, opt, 1),
               base::CheckError);
  // The same codec composes fine with single-shot-encode collectives.
  opt.algo = AllreduceAlgo::kHierarchical;
  EXPECT_NO_THROW(SsgdTrainer(mlp(2, 5, 6, 2), 4, solver, opt, 1));
}

TEST(FullStackTest, NodeRunnerSsgdMatchesBigBatchTraining) {
  // The complete hierarchy of the paper: 2 nodes x 4 core groups x sub-batch
  // 2 = global batch 16, with intra-node gradient averaging (Algorithm 1
  // line 8) and inter-node all-reduce (line 9) — must track a single net
  // trained on the full batch.
  const int nodes = 2, cgs = 4, sub = 2, dim = 5, classes = 2;
  const core::NetSpec cg_spec = mlp(sub, dim, 6, classes);
  std::vector<std::unique_ptr<NodeRunner>> runners;
  for (int r = 0; r < nodes; ++r) {
    runners.push_back(std::make_unique<NodeRunner>(cg_spec, cgs, 21));
  }
  core::Net reference(mlp(nodes * cgs * sub, dim, 6, classes), 21);
  reference.copy_params_from(runners[0]->master());
  for (int r = 1; r < nodes; ++r) {
    runners[r]->master().copy_params_from(runners[0]->master());
    runners[r]->broadcast_params();
  }

  core::SolverSpec sspec;
  sspec.base_lr = 0.1f;
  sspec.momentum = 0.0f;
  std::vector<std::unique_ptr<core::SgdSolver>> solvers;
  for (auto& r : runners) {
    solvers.push_back(std::make_unique<core::SgdSolver>(r->master(), sspec));
  }
  core::SgdSolver ref_solver(reference, sspec);

  base::Rng rng(22);
  std::vector<float> data, labels;
  topo::Topology topo{nodes, 256};
  const topo::NetParams net_params = topo::sunway_network();
  const std::size_t n = reference.param_count();
  for (int it = 0; it < 3; ++it) {
    random_batch(data, labels, nodes * cgs * sub, dim, classes, rng);
    const std::size_t per_node = data.size() / nodes;
    const std::size_t labels_per_node = labels.size() / nodes;
    std::vector<std::vector<float>> grads(nodes, std::vector<float>(n));
    for (int r = 0; r < nodes; ++r) {
      runners[r]->compute_gradients(
          std::span<const float>(data).subspan(r * per_node, per_node),
          std::span<const float>(labels).subspan(r * labels_per_node,
                                                 labels_per_node));
      runners[r]->master().pack_param_diffs(grads[r]);
    }
    topo::allreduce_rhd(grads, topo, net_params, topo::Placement::kRoundRobin);
    for (int r = 0; r < nodes; ++r) {
      for (auto& v : grads[r]) v /= nodes;  // SSGD average
      runners[r]->master().unpack_param_diffs(grads[r]);
      solvers[r]->apply_update();
      runners[r]->broadcast_params();
    }
    // Reference trains on the same full batch in one shot.
    std::copy(data.begin(), data.end(),
              reference.blob("data")->data().begin());
    std::copy(labels.begin(), labels.end(),
              reference.blob("label")->data().begin());
    ref_solver.step();
  }
  std::vector<float> w_dist(n), w_ref(n);
  runners[0]->master().pack_params(w_dist);
  reference.pack_params(w_ref);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(w_dist[i], w_ref[i], 1e-4f) << i;
  }
  // Both nodes ended identical.
  std::vector<float> w_other(n);
  runners[1]->master().pack_params(w_other);
  EXPECT_EQ(w_dist, w_other);
}

TEST(SsgdTest, BucketedAllreduceBitIdenticalToSingleMessage) {
  // The bucketed all-reduce is elementwise identical to the single packed
  // message, so trained weights must match BIT FOR BIT for any bucket count.
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.1f;
  solver.momentum = 0.9f;
  auto train = [&](int buckets) {
    SsgdOptions opt;
    opt.supernode_size = 2;
    opt.buckets = buckets;
    SsgdTrainer trainer(mlp(sub_batch, dim, 6, classes), nodes, solver, opt,
                        17);
    base::Rng rng(18);
    std::vector<float> data, labels;
    for (int it = 0; it < 4; ++it) {
      random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
      trainer.step(data, labels);
    }
    std::vector<float> w(trainer.node(0).param_count());
    trainer.node(0).pack_params(w);
    return w;
  };
  const auto w1 = train(1);
  EXPECT_EQ(train(2), w1);
  EXPECT_EQ(train(5), w1);
}

TEST(SsgdTest, BucketLayoutTilesThePackedMessage) {
  SsgdOptions opt;
  opt.supernode_size = 2;
  opt.buckets = 3;
  core::SolverSpec solver;
  SsgdTrainer trainer(mlp(2, 5, 6, 2), 4, solver, opt, 19);
  const auto& layout = trainer.bucket_layout();
  // mlp has two parameterized layers (fc1, fc2): the request clamps to 2.
  ASSERT_EQ(layout.size(), 2u);
  std::int64_t bytes = 0;
  for (const auto& b : layout) bytes += b.bytes;
  EXPECT_EQ(bytes, static_cast<std::int64_t>(trainer.node(0).param_count() *
                                             sizeof(float)));
  // Per-bucket breakdowns sum to last_comm() (alpha terms are additive).
  base::Rng rng(20);
  std::vector<float> data, labels;
  random_batch(data, labels, 8, 5, 2, rng);
  trainer.step(data, labels);
  ASSERT_EQ(trainer.last_comm_buckets().size(), 2u);
  int alpha = 0;
  double seconds = 0.0;
  for (const auto& c : trainer.last_comm_buckets()) {
    alpha += c.alpha_terms;
    seconds += c.seconds;
  }
  EXPECT_EQ(alpha, trainer.last_comm().alpha_terms);
  EXPECT_DOUBLE_EQ(seconds, trainer.last_comm().seconds);
}

TEST(SsgdTest, ThreadedReplicasBitIdenticalToSerial) {
  // The worker pool only changes WHO runs each replica, never the math or
  // the gather order: losses and trained weights match serial bit for bit.
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.1f;
  solver.momentum = 0.9f;
  auto train = [&](int threads, std::vector<double>& losses) {
    SsgdOptions opt;
    opt.supernode_size = 2;
    opt.threads = threads;
    SsgdTrainer trainer(mlp(sub_batch, dim, 6, classes), nodes, solver, opt,
                        23);
    base::Rng rng(24);
    std::vector<float> data, labels;
    for (int it = 0; it < 4; ++it) {
      random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
      losses.push_back(trainer.step(data, labels));
    }
    std::vector<float> w(trainer.node(0).param_count());
    trainer.node(0).pack_params(w);
    return w;
  };
  std::vector<double> serial_losses, threaded_losses;
  const auto w_serial = train(1, serial_losses);
  const auto w_threaded = train(4, threaded_losses);
  EXPECT_EQ(w_threaded, w_serial);
  EXPECT_EQ(threaded_losses, serial_losses);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Reusable across calls, including empty and single-element ranges.
  pool.parallel_for(5, 5, [&](int) { ADD_FAILURE() << "empty range ran"; });
  std::atomic<int> one{0};
  pool.parallel_for(7, 8, [&](int i) {
    EXPECT_EQ(i, 7);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ScalabilityTest, SpeedupGrowsAndCommFractionRises) {
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();  // B/4
  SsgdOptions opt;
  const auto curve = scalability_curve(cost, descs, fixtures::kAlexNetGradientBytes,
                                       opt, {1, 4, 16, 64, 256, 1024});
  ASSERT_EQ(curve.size(), 6u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].speedup, curve[i - 1].speedup);
    EXPECT_GE(curve[i].comm_fraction, curve[i - 1].comm_fraction - 1e-9);
  }
  // Sub-linear at scale: the paper reports 715x at 1024 nodes for B=256.
  EXPECT_LT(curve.back().speedup, 1024.0);
  EXPECT_GT(curve.back().speedup, 200.0);
}

TEST(ScalabilityTest, SingleBucketOverlapReproducesSerialModel) {
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();
  SsgdOptions opt;  // buckets = 1
  const auto curve = scalability_curve(
      cost, descs, fixtures::kAlexNetGradientBytes, opt, {4, 64, 1024});
  for (const auto& pt : curve) {
    // Degenerate contract: one bucket means the collective starts exactly
    // at the compute end, so the overlapped time IS the serial time.
    EXPECT_EQ(pt.buckets, 1);
    EXPECT_EQ(pt.overlap_s, pt.comp_s + pt.comm_s) << pt.nodes;
    // exposed = finish - compute: one rounding step from comm_s itself.
    EXPECT_DOUBLE_EQ(pt.exposed_comm_s, pt.comm_s) << pt.nodes;
  }
}

TEST(ScalabilityTest, OverlappedSeriesNeverSlowerAndHidesCommAtScale) {
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();
  SsgdOptions opt;
  opt.buckets = 8;
  const auto curve = scalability_curve(cost, descs,
                                       fixtures::kAlexNetGradientBytes, opt,
                                       {4, 16, 64, 256, 1024});
  for (const auto& pt : curve) {
    EXPECT_GT(pt.buckets, 1) << pt.nodes;
    // Overlap can only help: the bucketed finish never exceeds serial, and
    // exposed comm never exceeds the full collective.
    EXPECT_LE(pt.overlap_s, pt.comp_s + pt.comm_s + 1e-12) << pt.nodes;
    EXPECT_LE(pt.exposed_comm_s, pt.comm_s + 1e-12) << pt.nodes;
    EXPECT_GE(pt.overlap_speedup, pt.speedup - 1e-9) << pt.nodes;
    // Consistency: overlap_s = comp + exposed comm.
    EXPECT_NEAR(pt.overlap_s, pt.comp_s + pt.exposed_comm_s, 1e-9)
        << pt.nodes;
  }
  // At moderate scale comm fits under backward and some of it must
  // actually hide (strict win over the serial schedule).
  bool any_strict_win = false;
  for (const auto& pt : curve) {
    if (pt.overlap_s < pt.comp_s + pt.comm_s - 1e-12) any_strict_win = true;
  }
  EXPECT_TRUE(any_strict_win);
}

TEST(ScalabilityTest, HierarchicalCompressedNearLinearAtFullMachine) {
  // The headline claim: hierarchical + int8 + overlap keeps AlexNet B=256
  // near-linear all the way to 40,960 nodes, where the flat algorithm has
  // fallen off the linear trend.
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();
  SsgdOptions flat;
  flat.buckets = 8;
  SsgdOptions hier = flat;
  hier.algo = AllreduceAlgo::kHierarchical;
  hier.compression = topo::Compression::kInt8;
  const std::vector<int> nodes = {1024, 4096, 40960};
  const auto c_flat = scalability_curve(cost, descs,
                                        fixtures::kAlexNetGradientBytes, flat,
                                        nodes);
  const auto c_hier = scalability_curve(cost, descs,
                                        fixtures::kAlexNetGradientBytes, hier,
                                        nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_LE(c_hier[i].overlap_s, c_flat[i].overlap_s + 1e-12)
        << nodes[i] << " nodes";
    EXPECT_GT(c_hier[i].overlap_speedup / nodes[i], 0.9)
        << nodes[i] << " nodes";
  }
  // At 40,960 the flat serial collective is several times the hierarchical
  // one (the fold crosses the oversubscribed switch with the full message).
  EXPECT_GT(c_flat.back().comm_s, 2.0 * c_hier.back().comm_s);
}

TEST(ScalabilityTest, Int8RingRejectedBeforePricing) {
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();
  SsgdOptions opt;
  opt.algo = AllreduceAlgo::kRing;
  opt.compression = topo::Compression::kInt8;
  EXPECT_THROW(scalability_curve(cost, descs,
                                 fixtures::kAlexNetGradientBytes, opt, {64}),
               base::CheckError);
}

}  // namespace
}  // namespace swcaffe::parallel
