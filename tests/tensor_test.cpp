#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "base/log.h"
#include "base/rng.h"
#include "tensor/filler.h"
#include "tensor/layout.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace swcaffe::tensor {
namespace {

TEST(TensorTest, ReshapeSetsCountAndZeroes) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.count(), 120u);
  EXPECT_EQ(t.num(), 2);
  EXPECT_EQ(t.channels(), 3);
  EXPECT_EQ(t.height(), 4);
  EXPECT_EQ(t.width(), 5);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, OffsetMatchesRowMajorBnrc) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.offset(0, 0, 0, 0), 0u);
  EXPECT_EQ(t.offset(0, 0, 0, 1), 1u);
  EXPECT_EQ(t.offset(0, 0, 1, 0), 5u);
  EXPECT_EQ(t.offset(0, 1, 0, 0), 20u);
  EXPECT_EQ(t.offset(1, 0, 0, 0), 60u);
  EXPECT_EQ(t.offset(1, 2, 3, 4), 119u);
}

TEST(TensorTest, DiffIsLazyAndZeroInitialized) {
  Tensor t({4});
  auto d = t.diff();
  EXPECT_EQ(d.size(), 4u);
  for (float v : d) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, AxpyFromDiff) {
  Tensor t({3});
  t.data()[0] = 1.0f;
  t.diff()[0] = 2.0f;
  t.diff()[2] = -1.0f;
  t.axpy_from_diff(-0.5f);
  EXPECT_FLOAT_EQ(t.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(t.data()[2], 0.5f);
}

TEST(TensorTest, SumsqAndCopy) {
  Tensor a({2, 2});
  a.data()[0] = 3.0f;
  a.data()[3] = 4.0f;
  EXPECT_DOUBLE_EQ(a.sumsq_data(), 25.0);
  Tensor b({4});
  b.copy_from(a);
  EXPECT_FLOAT_EQ(b.data()[3], 4.0f);
}

TEST(TensorTest, CopyFromWrongSizeThrows) {
  Tensor a({4}), b({5});
  EXPECT_THROW(b.copy_from(a), base::CheckError);
}

TEST(FillerTest, ConstantAndUniform) {
  base::Rng rng(1);
  Tensor t({100});
  fill(t, FillerSpec::constant(2.5f), rng);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  fill(t, FillerSpec::uniform(-1.0f, 1.0f), rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(FillerTest, XavierScaleDependsOnFans) {
  base::Rng rng(2);
  Tensor t({64, 64, 3, 3});  // fan_in = fan_out = 576
  fill(t, FillerSpec::xavier(), rng);
  const float bound = std::sqrt(6.0f / (576 + 576));
  for (float v : t.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(FillerTest, MsraVarianceMatchesFanIn) {
  base::Rng rng(3);
  Tensor t({256, 64, 3, 3});  // fan_in = 576
  fill(t, FillerSpec::msra(), rng);
  double sq = 0.0;
  for (float v : t.data()) sq += static_cast<double>(v) * v;
  const double var = sq / t.count();
  EXPECT_NEAR(var, 2.0 / 576, 0.2 * 2.0 / 576);
}

TEST(LayoutTest, BnrcRcnbRoundTrip) {
  base::Rng rng(4);
  Tensor src({3, 5, 2, 7});
  fill(src, FillerSpec::uniform(-1, 1), rng);
  Tensor rcnb, back;
  bnrc_to_rcnb(src, rcnb);
  EXPECT_EQ(rcnb.shape(), (std::vector<int>{2, 7, 5, 3}));
  rcnb_to_bnrc(rcnb, back);
  EXPECT_EQ(back.shape(), src.shape());
  for (std::size_t i = 0; i < src.count(); ++i) {
    EXPECT_EQ(back.data()[i], src.data()[i]) << i;
  }
}

TEST(LayoutTest, TransposePlacesElementsCorrectly) {
  Tensor src({2, 3, 4, 5});
  for (std::size_t i = 0; i < src.count(); ++i) {
    src.data()[i] = static_cast<float>(i);
  }
  Tensor dst;
  bnrc_to_rcnb(src, dst);  // dst (R,C,N,B) = (4,5,3,2)
  // src(b=1, n=2, r=3, w=4) must land at dst(3, 4, 2, 1).
  const std::size_t src_idx = src.offset(1, 2, 3, 4);
  const std::size_t dst_idx = ((3 * 5 + 4) * 3 + 2) * 2 + 1;
  EXPECT_EQ(dst.data()[dst_idx], src.data()[src_idx]);
}

TEST(LayoutTest, FilterKkoiRoundTrip) {
  base::Rng rng(5);
  Tensor f({8, 4, 3, 3});
  fill(f, FillerSpec::uniform(-1, 1), rng);
  Tensor kkoi, back;
  filter_to_kkoi(f, kkoi);
  EXPECT_EQ(kkoi.shape(), (std::vector<int>{3, 3, 8, 4}));
  filter_from_kkoi(kkoi, back);
  for (std::size_t i = 0; i < f.count(); ++i) {
    EXPECT_EQ(back.data()[i], f.data()[i]);
  }
}

TEST(SerializeTest, StreamRoundTrip) {
  base::Rng rng(6);
  Tensor t({3, 4});
  fill(t, FillerSpec::gaussian(0, 1), rng);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor u;
  read_tensor(ss, u);
  EXPECT_EQ(u.shape(), t.shape());
  for (std::size_t i = 0; i < t.count(); ++i) {
    EXPECT_EQ(u.data()[i], t.data()[i]);
  }
}

TEST(SerializeTest, FileRoundTripMultipleTensors) {
  base::Rng rng(7);
  Tensor a({2, 3}), b({5});
  fill(a, FillerSpec::gaussian(0, 1), rng);
  fill(b, FillerSpec::gaussian(0, 1), rng);
  const std::string path = ::testing::TempDir() + "/swc_params.bin";
  write_tensors(path, {&a, &b});
  Tensor a2({2, 3}), b2({5});
  std::vector<Tensor*> dst{&a2, &b2};
  read_tensors(path, dst);
  EXPECT_EQ(a2.data()[5], a.data()[5]);
  EXPECT_EQ(b2.data()[4], b.data()[4]);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss;
  ss << "garbage-bytes-here";
  Tensor t;
  EXPECT_THROW(read_tensor(ss, t), base::CheckError);
}

}  // namespace
}  // namespace swcaffe::tensor
