// swfault: seeded fault injection and resilience.
//
// The contracts under test are the ones the subsystem sells:
//   * every injection decision is a pure function of (seed, site,
//     coordinates) — repeated runs produce byte-identical fault traces;
//   * eventual delivery — network faults change simulated time, never the
//     reduced gradients, so faulty weights equal fault-free weights bit for
//     bit;
//   * crash + restart from any checkpoint replays the uninterrupted
//     trajectory exactly;
//   * the versioned checkpoint format round-trips and rejects what it
//     cannot read.
//
// CI runs this binary under several SWC_FAULT_SEED values; tests that only
// need *some* schedule derive their seed from the environment so each CI
// seed exercises a different one. Tests pinned to golden data use fixed
// seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/log.h"
#include "core/net.h"
#include "core/spec.h"
#include "fault/checkpoint.h"
#include "fault/fault_spec.h"
#include "fault/ft_ssgd.h"
#include "fault/injector.h"
#include "fault/resilient_comm.h"
#include "hw/cost_model.h"
#include "hw/dma.h"
#include "parallel/ssgd.h"
#include "topo/allreduce.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"

namespace swcaffe::fault {
namespace {

/// CI seed matrix hook: different SWC_FAULT_SEED values steer the tests that
/// only need *a* deterministic schedule onto different schedules.
std::uint64_t test_seed() {
  const char* env = std::getenv("SWC_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// Small BN-free MLP: crash/restart bit-identity needs every learnable
/// float to live in pack_params (batch-norm running stats do not).
core::NetSpec mlp(int batch, int in_dim = 8, int hidden = 16,
                  int classes = 4) {
  core::NetSpec net;
  net.name = "fault-mlp";
  net.inputs.push_back({"data", {batch, in_dim}});
  net.inputs.push_back({"label", {batch}});
  net.layers.push_back(core::ip_spec("fc1", "data", "h", hidden));
  net.layers.push_back(core::relu_spec("relu1", "h", "h_out"));
  net.layers.push_back(core::ip_spec("fc2", "h_out", "scores", classes));
  net.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

constexpr int kSubBatch = 4;
// Three nodes: with one permanent straggler the on-time quorum still has a
// collective to run (p=2), so network-fault sites stay reachable.
constexpr int kNodes = 3;
constexpr int kInDim = 8;
constexpr int kClasses = 4;

/// splitmix64-style pure batch generator: restarted runs must replay the
/// exact bytes, so no RNG stream.
float det_uniform(std::int64_t iter, std::int64_t idx, std::uint64_t salt) {
  std::uint64_t z = (static_cast<std::uint64_t>(iter) * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(idx) + salt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(z >> 11) * 0x1.0p-53f;
}

void det_batch(std::int64_t iter, std::vector<float>& data,
               std::vector<float>& labels) {
  const int global = kSubBatch * kNodes;
  data.resize(static_cast<std::size_t>(global) * kInDim);
  labels.resize(global);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = det_uniform(iter, static_cast<std::int64_t>(i), 0x5eed) - 0.5f;
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<float>(static_cast<int>(
        det_uniform(iter, static_cast<std::int64_t>(i), 0x1abe1) * kClasses));
  }
}

std::vector<float> weights(parallel::SsgdTrainer& t, int node = 0) {
  std::vector<float> w(t.node(node).param_count());
  t.node(node).pack_params(w);
  return w;
}

FtOptions ft_options(const FaultSpec& faults) {
  FtOptions o;
  o.faults = faults;
  return o;
}

/// Runs `iters` fault-tolerant steps (no crash handling) and returns the
/// accumulated StepResults.
std::vector<StepResult> run_steps(FtSsgdTrainer& t, int iters) {
  std::vector<StepResult> out;
  std::vector<float> data, labels;
  for (int i = 0; i < iters; ++i) {
    det_batch(t.iter(), data, labels);
    out.push_back(t.step(data, labels));
  }
  return out;
}

// --- FaultSpec grammar ------------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryClause) {
  const FaultSpec s = parse_fault_spec(
      "drop=0.02;dup=0.01;delay=0.1;delay_s=0.0003;link=1.5;dma=0.05;"
      "dma_slow=2;straggler=1x4;straggler=3x2.5;crash=1@7;seed=42");
  EXPECT_DOUBLE_EQ(s.drop_p, 0.02);
  EXPECT_DOUBLE_EQ(s.dup_p, 0.01);
  EXPECT_DOUBLE_EQ(s.delay_p, 0.1);
  EXPECT_DOUBLE_EQ(s.delay_s, 0.0003);
  EXPECT_DOUBLE_EQ(s.link_degrade, 1.5);
  EXPECT_DOUBLE_EQ(s.dma_fail_p, 0.05);
  EXPECT_DOUBLE_EQ(s.dma_degrade, 2.0);
  ASSERT_EQ(s.stragglers.size(), 2u);
  EXPECT_EQ(s.stragglers[0].node, 1);
  EXPECT_DOUBLE_EQ(s.stragglers[0].factor, 4.0);
  EXPECT_EQ(s.stragglers[1].node, 3);
  EXPECT_DOUBLE_EQ(s.stragglers[1].factor, 2.5);
  EXPECT_EQ(s.crash_node, 1);
  EXPECT_EQ(s.crash_iter, 7);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.enabled());
  EXPECT_TRUE(s.crash_enabled());
}

TEST(FaultSpecTest, NoneAndEmptyAreDisabled) {
  EXPECT_FALSE(parse_fault_spec("none").enabled());
  EXPECT_FALSE(parse_fault_spec("").enabled());
  EXPECT_FALSE(FaultSpec{}.enabled());
}

TEST(FaultSpecTest, CanonicalRenderingRoundTrips) {
  const char* specs[] = {
      "none",
      "drop=0.02;delay=0.1;straggler=2x3.5;crash=1@40;seed=7",
      "dma=0.25;dma_slow=4;link=2",
  };
  for (const char* text : specs) {
    const FaultSpec once = parse_fault_spec(text);
    const FaultSpec twice = parse_fault_spec(to_string(once));
    EXPECT_EQ(to_string(once), to_string(twice)) << text;
  }
}

TEST(FaultSpecTest, RejectsMalformedClauses) {
  EXPECT_THROW(parse_fault_spec("warp=0.5"), base::CheckError);
  EXPECT_THROW(parse_fault_spec("straggler=abc"), base::CheckError);
  EXPECT_THROW(parse_fault_spec("crash=3"), base::CheckError);
}

// --- Injector determinism ---------------------------------------------------------

TEST(InjectorTest, ScheduleIsAPureFunctionOfCoordinates) {
  FaultSpec spec;
  spec.seed = test_seed();
  spec.drop_p = 0.3;
  spec.dup_p = 0.2;
  spec.delay_p = 0.25;
  const FaultInjector a(spec), b(spec);
  // Same coordinates => same fate, across instances, across repeated
  // queries, and regardless of query order (b iterates in reverse).
  std::vector<MessageFate> forward, backward;
  for (std::int64_t iter = 0; iter < 20; ++iter) {
    for (int round = 0; round < 8; ++round) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        forward.push_back(a.message_fate(iter, round, attempt));
      }
    }
  }
  for (std::int64_t iter = 19; iter >= 0; --iter) {
    for (int round = 7; round >= 0; --round) {
      for (int attempt = 2; attempt >= 0; --attempt) {
        backward.push_back(b.message_fate(iter, round, attempt));
      }
    }
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const MessageFate& f = forward[i];
    const MessageFate& r = backward[backward.size() - 1 - i];
    EXPECT_EQ(f.dropped, r.dropped) << i;
    EXPECT_EQ(f.duplicated, r.duplicated) << i;
    EXPECT_EQ(f.delay_s, r.delay_s) << i;
  }
}

TEST(InjectorTest, DropRateTracksTheSpec) {
  FaultSpec spec;
  spec.seed = test_seed();
  spec.drop_p = 0.25;
  const FaultInjector inj(spec);
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    drops += inj.message_fate(i / 16, i % 16, 0).dropped;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.02);
}

TEST(InjectorTest, RetriesDrawFreshDropDecisions) {
  FaultSpec spec;
  spec.seed = test_seed();
  spec.drop_p = 0.5;
  const FaultInjector inj(spec);
  bool saw_retry_succeed = false;
  for (std::int64_t iter = 0; iter < 50 && !saw_retry_succeed; ++iter) {
    if (inj.message_fate(iter, 0, 0).dropped &&
        !inj.message_fate(iter, 0, 1).dropped) {
      saw_retry_succeed = true;
    }
  }
  EXPECT_TRUE(saw_retry_succeed)
      << "a retried send could never succeed; attempts are not independent";
}

TEST(InjectorTest, CrashAndStragglerSitesAreExact) {
  FaultSpec spec;
  spec.crash_node = 1;
  spec.crash_iter = 7;
  spec.stragglers.push_back({2, 4.0});
  const FaultInjector inj(spec);
  EXPECT_TRUE(inj.crashes_at(1, 7));
  EXPECT_FALSE(inj.crashes_at(1, 6));
  EXPECT_FALSE(inj.crashes_at(0, 7));
  EXPECT_DOUBLE_EQ(inj.straggler_factor(2), 4.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0), 1.0);
}

// --- DMA site ---------------------------------------------------------------------

TEST(DmaFaultTest, TransientFailuresReissueDeterministically) {
  FaultSpec spec;
  spec.seed = test_seed();
  spec.dma_fail_p = 0.3;
  spec.dma_degrade = 2.0;

  const hw::CostModel cost;
  std::vector<double> src(512), dst(512);

  auto run = [&](FaultInjector& inj) {
    DmaFaults hook(inj);
    hw::DmaEngine engine(cost);
    engine.set_fault_hook(&hook);
    for (int i = 0; i < 64; ++i) {
      engine.get(src, dst, 64);
      engine.put(dst, src, 64);
    }
    return engine.ledger();
  };

  FaultInjector a(spec), b(spec);
  const hw::TrafficLedger la = run(a), lb = run(b);
  // Per-engine sequence numbers restart at 0, so two engines over the same
  // spec see the identical re-issue schedule.
  EXPECT_EQ(la.dma_get_bytes, lb.dma_get_bytes);
  EXPECT_EQ(la.dma_put_bytes, lb.dma_put_bytes);
  EXPECT_EQ(la.elapsed_s, lb.elapsed_s);
  EXPECT_EQ(a.stats().dma_retries, b.stats().dma_retries);
  EXPECT_GT(a.stats().dma_transfers, 0);
  EXPECT_GT(a.stats().dma_retries, 0);

  // Against a clean engine: re-issues move extra bytes, degradation and
  // re-issues cost extra simulated time.
  hw::DmaEngine clean(cost);
  for (int i = 0; i < 64; ++i) {
    clean.get(src, dst, 64);
    clean.put(dst, src, 64);
  }
  EXPECT_GT(la.dma_get_bytes, clean.ledger().dma_get_bytes);
  EXPECT_GT(la.elapsed_s, clean.ledger().elapsed_s);
}

// --- Resilient delivery -----------------------------------------------------------

TEST(ResilientCommTest, RecoveryIsDeterministicAndEscalationBounded) {
  topo::CostBreakdown base;
  base.seconds = 1e-3;
  base.alpha_terms = 12;

  FaultSpec spec;
  spec.seed = test_seed();
  spec.drop_p = 0.9;  // most rounds need the ladder; some exhaust it
  const RetryPolicy policy;

  FaultInjector a(spec), b(spec);
  const RecoveryCost ra = charge_recovery(base, /*iter=*/0, a, policy);
  const RecoveryCost rb = charge_recovery(base, /*iter=*/0, b, policy);
  EXPECT_EQ(ra.seconds, rb.seconds);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_EQ(ra.escalations, rb.escalations);
  EXPECT_GT(ra.retries, 0);
  EXPECT_GT(ra.seconds, 0.0);
  // Every escalation charges the full timeout; eventual delivery is never
  // cheaper than the fault-free wire but always finite.
  EXPECT_GE(ra.seconds, ra.escalations * policy.timeout_s);
  EXPECT_LT(ra.seconds,
            base.alpha_terms * (policy.timeout_s + policy.backoff_base_s *
                                                       (1 << policy.max_attempts)) +
                base.seconds);

  // A clean schedule charges nothing at all.
  FaultInjector clean{FaultSpec{}};
  const RecoveryCost rc = charge_recovery(base, 0, clean, policy);
  EXPECT_EQ(rc.seconds, 0.0);
  EXPECT_EQ(rc.retries + rc.escalations + rc.duplicates + rc.delays, 0);
}

// --- Fault-tolerant trainer: bit-identity -----------------------------------------

TEST(FtSsgdTest, DisabledFaultsAreBitIdenticalToPlainSsgd) {
  // The faults-disabled fault-tolerant path IS SsgdTrainer::step(): same
  // call sequence, same float-summation order, bit-identical weights.
  const core::SolverSpec solver;
  parallel::SsgdTrainer plain(mlp(kSubBatch), kNodes, solver, {}, /*seed=*/9);
  FtSsgdTrainer ft(mlp(kSubBatch), kNodes, solver, ft_options(FaultSpec{}),
                   /*seed=*/9);

  std::vector<float> data, labels;
  for (int i = 0; i < 6; ++i) {
    det_batch(i, data, labels);
    const double plain_loss = plain.step(data, labels);
    const StepResult r = ft.step(data, labels);
    EXPECT_EQ(plain_loss, r.loss) << "iter " << i;
    EXPECT_EQ(r.recovery_s, 0.0);
    EXPECT_EQ(r.late_nodes, 0);
  }
  for (int node = 0; node < kNodes; ++node) {
    EXPECT_EQ(weights(plain, node), weights(ft.ssgd(), node)) << node;
  }
}

TEST(FtSsgdTest, EventualDeliveryKeepsWeightsBitIdentical) {
  // Network faults (drops, duplicates, delays, a degraded link) may only
  // cost simulated time: the reduced gradients — and therefore the weights —
  // must equal the fault-free run bit for bit.
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.seed = test_seed();
  faults.drop_p = 0.3;
  faults.dup_p = 0.2;
  faults.delay_p = 0.3;
  faults.link_degrade = 1.5;

  FtSsgdTrainer clean(mlp(kSubBatch), kNodes, solver, ft_options(FaultSpec{}),
                      /*seed=*/9);
  FtSsgdTrainer faulty(mlp(kSubBatch), kNodes, solver, ft_options(faults),
                       /*seed=*/9);
  const auto clean_steps = run_steps(clean, 8);
  const auto faulty_steps = run_steps(faulty, 8);

  double clean_time = 0.0, faulty_time = 0.0, recovery = 0.0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(clean_steps[i].loss, faulty_steps[i].loss) << "iter " << i;
    clean_time += clean_steps[i].sim_seconds;
    faulty_time += faulty_steps[i].sim_seconds;
    recovery += faulty_steps[i].recovery_s;
  }
  EXPECT_EQ(weights(clean.ssgd()), weights(faulty.ssgd()));
  EXPECT_GT(recovery, 0.0);
  EXPECT_GT(faulty_time, clean_time);
  EXPECT_GT(faulty.stats().drops + faulty.stats().duplicates +
                faulty.stats().delays,
            0);
  EXPECT_EQ(faulty.stats().drops, faulty.stats().retries +
                                      faulty.stats().escalations);
}

// --- Crash + restart --------------------------------------------------------------

TEST(FtSsgdTest, CrashRestartReproducesTheUninterruptedTrajectory) {
  const core::SolverSpec solver;
  constexpr std::int64_t kMaxIter = 8;

  // Uninterrupted baseline (same network faults, no crash).
  FaultSpec base_faults;
  base_faults.seed = 11;
  base_faults.drop_p = 0.1;
  FtOptions base_opts = ft_options(base_faults);
  FtSsgdTrainer baseline(mlp(kSubBatch), kNodes, solver, base_opts,
                         /*seed=*/9);
  RunResult base_run = run_with_restarts(baseline, det_batch, kMaxIter);
  ASSERT_EQ(base_run.restarts, 0);
  const std::vector<float> expected = weights(baseline.ssgd());

  for (const int k : {1, 3, 6}) {
    FaultSpec faults = base_faults;
    faults.crash_node = 0;
    faults.crash_iter = k;
    FtOptions opts = ft_options(faults);
    opts.checkpoint_every = 1;
    opts.checkpoint_prefix = testing::TempDir() + "/swfault_crash_" +
                             std::to_string(k) + ".ckpt";
    FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver, opts, /*seed=*/9);
    const RunResult run = run_with_restarts(t, det_batch, kMaxIter);
    EXPECT_EQ(run.restarts, 1) << "crash at " << k;
    EXPECT_EQ(run.iters, kMaxIter);
    EXPECT_EQ(t.stats().crashes, 1) << "crash at " << k;
    EXPECT_EQ(weights(t.ssgd()), expected)
        << "crash at iteration " << k << " changed the trajectory";
    EXPECT_EQ(base_run.final_loss, run.final_loss);
  }
}

TEST(FtSsgdTest, CrashWithoutCheckpointsRestartsFromInitialState) {
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.crash_node = 0;
  faults.crash_iter = 2;
  FtOptions opts = ft_options(faults);  // checkpoint_every = 0: none written
  FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver, opts, /*seed=*/9);
  const RunResult run = run_with_restarts(t, det_batch, 5);
  EXPECT_EQ(run.restarts, 1);
  EXPECT_EQ(run.iters, 5);
  EXPECT_TRUE(t.last_checkpoint().empty());

  // The replayed run equals a crash-free run (batches are pure in iter).
  FtSsgdTrainer clean(mlp(kSubBatch), kNodes, solver, ft_options(FaultSpec{}),
                      /*seed=*/9);
  run_with_restarts(clean, det_batch, 5);
  EXPECT_EQ(weights(t.ssgd()), weights(clean.ssgd()));
}

// --- Stragglers and bounded staleness ---------------------------------------------

TEST(FtSsgdTest, StragglerTriggersBoundedStalenessCarry) {
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.stragglers.push_back({1, 10.0});  // 10x the 2.5x deadline
  FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver, ft_options(faults),
                  /*seed=*/9);
  const auto steps = run_steps(t, 4);
  EXPECT_EQ(steps[0].late_nodes, 1);
  EXPECT_FALSE(steps[0].stale_applied);
  // The late gradient joins the NEXT iteration's aggregate.
  EXPECT_TRUE(steps[1].stale_applied);
  EXPECT_EQ(t.stats().straggler_iters, 4);
  for (const StepResult& r : steps) {
    EXPECT_TRUE(std::isfinite(r.loss));
    EXPECT_GT(r.sim_seconds, 0.0);
  }
}

TEST(FtSsgdTest, AllNodesLateDegeneratesToSynchronous) {
  // When every node blows the deadline there is no one to proceed without;
  // the step must fall back to a plain synchronous aggregate.
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.stragglers.push_back({0, 10.0});
  faults.stragglers.push_back({1, 10.0});
  faults.stragglers.push_back({2, 10.0});
  FtSsgdTrainer slow(mlp(kSubBatch), kNodes, solver, ft_options(faults),
                     /*seed=*/9);
  FtSsgdTrainer clean(mlp(kSubBatch), kNodes, solver, ft_options(FaultSpec{}),
                      /*seed=*/9);
  run_steps(slow, 4);
  run_steps(clean, 4);
  EXPECT_EQ(weights(slow.ssgd()), weights(clean.ssgd()));
  EXPECT_EQ(slow.stale_count(), 0);
}

TEST(FtSsgdTest, ZeroStalenessAlwaysWaits) {
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.stragglers.push_back({1, 10.0});
  FtOptions opts = ft_options(faults);
  opts.max_staleness = 0;  // wait for stragglers, never aggregate without
  FtSsgdTrainer waiting(mlp(kSubBatch), kNodes, solver, opts, /*seed=*/9);
  FtSsgdTrainer clean(mlp(kSubBatch), kNodes, solver, ft_options(FaultSpec{}),
                      /*seed=*/9);
  const auto steps = run_steps(waiting, 3);
  run_steps(clean, 3);
  for (const StepResult& r : steps) EXPECT_EQ(r.late_nodes, 0);
  EXPECT_EQ(weights(waiting.ssgd()), weights(clean.ssgd()));
}

// --- Checkpoint format ------------------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.iter = 42;
  c.fault_seed = 7;
  c.params = {1.0f, -2.5f, 0.0f, 3.25f};
  c.history = {{0.5f, 0.25f}, {-1.0f}};
  c.stale_grad = {0.125f, 0.0f, -0.75f};
  c.stale_count = 1;
  c.plan_cache = "plans/alexnet.cache";
  return c;
}

TEST(CheckpointTest, RoundTripIsExact) {
  const std::string path = testing::TempDir() + "/swfault_roundtrip.ckpt";
  const Checkpoint a = sample_checkpoint();
  save_checkpoint(path, a);
  const Checkpoint b = load_checkpoint(path);
  EXPECT_EQ(a.iter, b.iter);
  EXPECT_EQ(a.fault_seed, b.fault_seed);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.stale_grad, b.stale_grad);
  EXPECT_EQ(a.stale_count, b.stale_count);
  EXPECT_EQ(a.plan_cache, b.plan_cache);
}

TEST(CheckpointTest, RejectsGarbageMissingAndFutureVersions) {
  const std::string garbage = testing::TempDir() + "/swfault_garbage.ckpt";
  std::ofstream(garbage) << "definitely not a checkpoint";
  EXPECT_THROW(load_checkpoint(garbage), base::CheckError);
  EXPECT_THROW(load_checkpoint(testing::TempDir() + "/swfault_missing.ckpt"),
               base::CheckError);

  // Patch the version word (right after the 8-byte magic) to a future one.
  const std::string future = testing::TempDir() + "/swfault_future.ckpt";
  save_checkpoint(future, sample_checkpoint());
  {
    std::fstream f(future,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const std::uint32_t v = kCheckpointVersion + 1;
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  EXPECT_THROW(load_checkpoint(future), base::CheckError);
}

TEST(CheckpointTest, JobNamespacedPaths) {
  // Empty job keeps the single-job legacy layout the pre-v2 runs used.
  EXPECT_EQ(checkpoint_path("run/model.ckpt", "", 40), "run/model.ckpt.40");
  EXPECT_EQ(checkpoint_path("run/cluster", "alexnet-b256-n8.j3", 40),
            "run/cluster.alexnet-b256-n8.j3.ckpt.40");
}

TEST(CheckpointTest, RejectsWrongJobLoads) {
  const std::string path = testing::TempDir() + "/swfault_job.ckpt";
  Checkpoint c = sample_checkpoint();
  c.job_id = "vgg16-b64-n4.j2";
  save_checkpoint(path, c);

  // Unconstrained loads and the owning job both succeed.
  EXPECT_EQ(load_checkpoint(path).job_id, c.job_id);
  EXPECT_EQ(load_checkpoint(path, c.job_id).iter, c.iter);
  // Any other tenant's job is rejected instead of resuming foreign weights.
  EXPECT_THROW(load_checkpoint(path, "resnet50-b32-n8.j9"), base::CheckError);

  // A legacy (job-less) checkpoint also refuses a namespaced load: it
  // cannot prove it belongs to the requesting job.
  const std::string legacy = testing::TempDir() + "/swfault_legacyjob.ckpt";
  save_checkpoint(legacy, sample_checkpoint());
  EXPECT_THROW(load_checkpoint(legacy, "vgg16-b64-n4.j2"), base::CheckError);
}

TEST(CheckpointTest, PeriodicCheckpointsAreJobNamespaced) {
  const core::SolverSpec solver;
  FtOptions opts = ft_options(FaultSpec{});
  opts.checkpoint_every = 2;
  opts.checkpoint_prefix = testing::TempDir() + "/swfault_nsrun";
  opts.job_id = "mlp.j1";
  FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver, opts, 9);
  run_steps(t, 2);
  EXPECT_EQ(t.last_checkpoint(), opts.checkpoint_prefix + ".mlp.j1.ckpt.2");

  // The owning job resumes; a different job id refuses the same file.
  FtSsgdTrainer same(mlp(kSubBatch), kNodes, solver, opts, 9);
  same.restore_checkpoint(t.last_checkpoint());
  EXPECT_EQ(same.iter(), 2);
  EXPECT_EQ(weights(same.ssgd()), weights(t.ssgd()));
  FtOptions other = opts;
  other.job_id = "mlp.j2";
  FtSsgdTrainer stranger(mlp(kSubBatch), kNodes, solver, other, 9);
  EXPECT_THROW(stranger.restore_checkpoint(t.last_checkpoint()),
               base::CheckError);
}

// --- Trace determinism ------------------------------------------------------------

/// A scenario exercising every injection site that reaches the trace:
/// drops/dups/delays (net), a straggler, and a crash with restart.
FtOptions scenario_options(std::uint64_t seed, const std::string& prefix) {
  FaultSpec faults;
  faults.seed = seed;
  faults.drop_p = 0.5;  // high enough that every seed draws some retries
  faults.dup_p = 0.1;
  faults.delay_p = 0.2;
  faults.stragglers.push_back({1, 5.0});
  faults.crash_node = 0;
  faults.crash_iter = 2;
  FtOptions opts = ft_options(faults);
  opts.checkpoint_every = 1;
  opts.checkpoint_prefix = prefix;
  return opts;
}

void run_scenario(std::uint64_t seed, const std::string& prefix,
                  trace::Tracer* tracer) {
  const core::SolverSpec solver;
  FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver,
                  scenario_options(seed, prefix), /*seed=*/9);
  if (tracer != nullptr) {
    tracer->set_track_name(0, "node");
    t.set_tracer(tracer, 0);
  }
  run_with_restarts(t, det_batch, 5);
}

TEST(FaultTraceTest, RepeatedRunsEmitIdenticalTraces) {
  trace::Tracer first, second;
  run_scenario(test_seed(), testing::TempDir() + "/swfault_trace_a.ckpt",
               &first);
  run_scenario(test_seed(), testing::TempDir() + "/swfault_trace_b.ckpt",
               &second);

  ASSERT_EQ(first.instants().size(), second.instants().size());
  bool saw_inject = false, saw_retry = false, saw_restart = false;
  for (std::size_t i = 0; i < first.instants().size(); ++i) {
    const trace::InstantEvent& a = first.instants()[i];
    const trace::InstantEvent& b = second.instants()[i];
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.category, b.category) << i;
    EXPECT_EQ(a.t_s, b.t_s) << i;  // bit-identical simulated time
    saw_inject |= a.name == "fault.inject";
    saw_retry |= a.name == "fault.retry";
    saw_restart |= a.name == "fault.restart";
  }
  EXPECT_TRUE(saw_inject);
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_restart);

  ASSERT_EQ(first.spans().size(), second.spans().size());
  for (std::size_t i = 0; i < first.spans().size(); ++i) {
    EXPECT_EQ(first.spans()[i].name, second.spans()[i].name) << i;
    EXPECT_EQ(first.spans()[i].begin_s, second.spans()[i].begin_s) << i;
    EXPECT_EQ(first.spans()[i].end_s, second.spans()[i].end_s) << i;
  }
}

// --- Golden trace -----------------------------------------------------------------

/// Structural skeleton of a chrome trace: the (ph, name, cat) triple of
/// every event in emission order, one per line. Timestamps and args are
/// deliberately excluded — the golden pin is about which spans/instants/
/// counters appear and in what order, not about cost-model retunes.
std::vector<std::string> trace_structure(const std::string& json) {
  std::vector<std::string> out;
  std::istringstream lines(json);
  std::string line;
  auto field = [&line](const char* key) -> std::string {
    const std::string tag = std::string("\"") + key + "\":\"";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return "";
    const std::size_t begin = at + tag.size();
    return line.substr(begin, line.find('"', begin) - begin);
  };
  while (std::getline(lines, line)) {
    const std::string ph = field("ph");
    if (ph.empty()) continue;
    out.push_back(ph + " " + field("name") + " " + field("cat"));
  }
  return out;
}

TEST(FaultTraceTest, GoldenScenarioStructureMatches) {
  // Fixed seed: the golden file pins one concrete schedule. Regenerate with
  //   SWC_UPDATE_GOLDEN=1 ./fault_test --gtest_filter='*GoldenScenario*'
  // and commit the diff when the trace structure changes intentionally.
  trace::Tracer tracer;
  run_scenario(/*seed=*/3, testing::TempDir() + "/swfault_golden.ckpt",
               &tracer);
  std::ostringstream json;
  trace::write_chrome_trace(tracer, json);

  const std::string golden_path =
      std::string(SWC_TEST_DATA_DIR) + "/fault_scenario_trace.json";
  if (std::getenv("SWC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << golden_path;
    out << json.str();
    GTEST_SKIP() << "golden trace regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with SWC_UPDATE_GOLDEN=1)";
  std::stringstream golden;
  golden << in.rdbuf();

  const auto expected = trace_structure(golden.str());
  const auto actual = trace_structure(json.str());
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "event " << i;
  }
}

// --- Bucketed all-reduce under the fault-tolerant path -----------------------

TEST(FtSsgdTest, BucketedFaultFreePathIsBitIdenticalToSingleMessage) {
  // The per-bucket retry/replay composition may not change the math: with
  // faults disabled, a bucketed FT trainer matches the single-message one
  // bit for bit (the reduction is elementwise either way).
  const core::SolverSpec solver;
  FtSsgdTrainer single(mlp(kSubBatch), kNodes, solver,
                       ft_options(FaultSpec{}), /*seed=*/9);
  FtOptions bucketed_opts = ft_options(FaultSpec{});
  bucketed_opts.ssgd.buckets = 3;
  FtSsgdTrainer bucketed(mlp(kSubBatch), kNodes, solver, bucketed_opts,
                         /*seed=*/9);
  EXPECT_GT(bucketed.ssgd().num_buckets(), 1);

  const auto single_steps = run_steps(single, 6);
  const auto bucketed_steps = run_steps(bucketed, 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(single_steps[i].loss, bucketed_steps[i].loss) << "iter " << i;
  }
  EXPECT_EQ(weights(single.ssgd()), weights(bucketed.ssgd()));
}

TEST(FtSsgdTest, BucketedEventualDeliveryKeepsWeightsBitIdentical) {
  // Network faults against the bucketed collective: every bucket's rounds
  // draw their own fates (distinct round offsets), recovery costs time, and
  // the reduced gradients still match the fault-free bucketed run exactly.
  const core::SolverSpec solver;
  FaultSpec faults;
  faults.seed = test_seed();
  faults.drop_p = 0.3;
  faults.dup_p = 0.2;

  FtOptions clean_opts = ft_options(FaultSpec{});
  clean_opts.ssgd.buckets = 3;
  FtOptions faulty_opts = ft_options(faults);
  faulty_opts.ssgd.buckets = 3;
  FtSsgdTrainer clean(mlp(kSubBatch), kNodes, solver, clean_opts,
                      /*seed=*/9);
  FtSsgdTrainer faulty(mlp(kSubBatch), kNodes, solver, faulty_opts,
                       /*seed=*/9);
  const auto clean_steps = run_steps(clean, 8);
  const auto faulty_steps = run_steps(faulty, 8);
  double recovery = 0.0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(clean_steps[i].loss, faulty_steps[i].loss) << "iter " << i;
    recovery += faulty_steps[i].recovery_s;
  }
  EXPECT_EQ(weights(clean.ssgd()), weights(faulty.ssgd()));
  EXPECT_GT(recovery, 0.0);
  EXPECT_EQ(faulty.stats().drops,
            faulty.stats().retries + faulty.stats().escalations);
}

TEST(FtSsgdTest, BucketedCrashRestartReproducesTheTrajectory) {
  // Checkpoint/restart across the bucketed collective: a crash mid-run must
  // replay onto the exact uninterrupted trajectory, buckets and all.
  const core::SolverSpec solver;
  constexpr std::int64_t kMaxIter = 6;
  FtOptions base_opts = ft_options(FaultSpec{});
  base_opts.ssgd.buckets = 3;
  FtSsgdTrainer baseline(mlp(kSubBatch), kNodes, solver, base_opts,
                         /*seed=*/9);
  const RunResult base_run = run_with_restarts(baseline, det_batch, kMaxIter);
  ASSERT_EQ(base_run.restarts, 0);

  FaultSpec faults;
  faults.crash_node = 0;
  faults.crash_iter = 3;
  FtOptions opts = ft_options(faults);
  opts.ssgd.buckets = 3;
  opts.checkpoint_every = 1;
  opts.checkpoint_prefix = testing::TempDir() + "/swfault_bucketed.ckpt";
  FtSsgdTrainer t(mlp(kSubBatch), kNodes, solver, opts, /*seed=*/9);
  const RunResult run = run_with_restarts(t, det_batch, kMaxIter);
  EXPECT_EQ(run.restarts, 1);
  EXPECT_EQ(run.iters, kMaxIter);
  EXPECT_EQ(weights(t.ssgd()), weights(baseline.ssgd()));
  EXPECT_EQ(run.final_loss, base_run.final_loss);
}

}  // namespace
}  // namespace swcaffe::fault
