// Minimal property-based testing harness for the gtest suites.
//
// for_all(seed, cases, fn) runs `fn(rng, case_index)` for `cases`
// independently seeded cases; each case's Rng is derived from (seed, index)
// with splitmix64, so any failing case can be replayed in isolation by
// passing its index — the whole run is deterministic, no time or global
// state involved. A SCOPED_TRACE per case makes gtest failures name the
// (seed, case) pair that produced them.
//
// The Rng is intentionally tiny: uniform u64 / double / float helpers over
// splitmix64, which is statistically solid for test-input generation and
// needs no <random> distributions (whose outputs differ across standard
// libraries — these sequences must be identical everywhere).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace swcaffe::proptest {

/// splitmix64 (Steele, Lea, Flood): one 64-bit multiply-xorshift chain per
/// draw; passes BigCrush when used as a stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) (bound 0 returns 0).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

/// Runs `fn(rng, i)` for i in [0, cases), each with an independently seeded
/// Rng. `fn` asserts its property with the usual EXPECT_*/ASSERT_* macros.
template <typename Fn>
void for_all(std::uint64_t seed, int cases, Fn&& fn) {
  for (int i = 0; i < cases; ++i) {
    SCOPED_TRACE("property case " + std::to_string(i) + " (seed " +
                 std::to_string(seed) + ")");
    // Derive the case seed through one splitmix64 step so consecutive case
    // indices do not produce overlapping draw sequences.
    Rng case_rng(Rng(seed + static_cast<std::uint64_t>(i)).next_u64());
    fn(case_rng, i);
  }
}

}  // namespace swcaffe::proptest
