// swtune invariants: every plan the tuner emits is legal under the swcheck
// rules and never costs more than the hand-written default under the cost
// model (the default is always the first candidate priced); the plan cache
// round-trips bit-exactly, rejects foreign versions/chips, and a warm cache
// skips the search entirely — asserted by trace span counts, not logging.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/log.h"
#include "check/plan_model.h"
#include "check/rules.h"
#include "check/verify.h"
#include "core/models.h"
#include "fixtures.h"
#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"
#include "swdnn/layer_estimate.h"
#include "swgemm/estimate.h"
#include "topo/allreduce.h"
#include "topo/overlap.h"
#include "trace/tracer.h"
#include "tune/bucket_tune.h"
#include "tune/comm_tune.h"
#include "tune/plan_cache.h"
#include "tune/search_space.h"
#include "tune/tuner.h"

namespace swcaffe::tune {
namespace {

std::vector<core::LayerDesc> alexnet_descs() {
  return fixtures::alexnet_descs(128);
}

std::vector<core::LayerDesc> vgg16_descs() { return fixtures::vgg_descs(16, 128); }

/// Re-derives the legality of one tuned direction from the outside, straight
/// from the check:: builders (the same oracle the tuner consulted).
check::Report recheck_direction(const hw::CostModel& cost,
                                const core::ConvGeom& g,
                                dnn::ConvDirection dir,
                                const DirectionChoice& choice,
                                const std::string& layer) {
  const core::ConvGeom gpg = g.per_group();
  if (choice.implicit) {
    check::Report report;
    check::check_ldm(
        check::implicit_conv_ldm_plan(cost.params(), gpg,
                                      choice.channel_block_in,
                                      choice.channel_block_out),
        cost.params(), {}, layer, &report);
    check::check_dma(check::implicit_conv_dma_plan(gpg), {}, layer, &report);
    return report;
  }
  const dnn::ConvGemmShape s = dnn::explicit_gemm_shape(gpg, dir);
  return check::verify_gemm(cost, s.m, s.n, s.k, choice.blocking, layer);
}

int count_spans(const trace::Tracer& tracer, const std::string& category) {
  int n = 0;
  for (const auto& s : tracer.spans()) n += s.category == category;
  return n;
}

int count_instants(const trace::Tracer& tracer, const std::string& category) {
  int n = 0;
  for (const auto& i : tracer.instants()) n += i.category == category;
  return n;
}

TEST(TunerTest, EveryPaperPlanLegalAndNotSlowerThanDefault) {
  hw::CostModel cost;
  for (const auto& descs : {alexnet_descs(), vgg16_descs()}) {
    Tuner tuner(cost);
    const NetPlan plan = tuner.tune_net(descs);
    ASSERT_FALSE(plan.convs.empty());
    for (const auto& [name, p] : plan.convs) {
      struct Dir {
        dnn::ConvDirection dir;
        const DirectionChoice* choice;
      };
      const Dir dirs[] = {
          {dnn::ConvDirection::kForward, &p.forward},
          {dnn::ConvDirection::kBackwardWeight, &p.backward_weight},
          {dnn::ConvDirection::kBackwardInput, &p.backward_input},
      };
      for (const Dir& d : dirs) {
        if (d.dir == dnn::ConvDirection::kBackwardInput && p.first_conv) {
          continue;  // data-layer conv never computes dX
        }
        EXPECT_LE(d.choice->tuned_s, d.choice->default_s)
            << name << ": tuned plan slower than the hand-written default";
        const check::Report report =
            recheck_direction(cost, p.geom, d.dir, *d.choice, name);
        EXPECT_TRUE(report.empty())
            << name << ": tuned plan fails swcheck: " << report.summary();
      }
    }
    EXPECT_LE(plan.tuned_total(), plan.default_total());
  }
}

TEST(TunerTest, FindsStrictWinOnVgg16) {
  // The acceptance bar is a measurable end-to-end improvement, not just
  // parity: on VGG-16 at the paper batch the search must strictly beat the
  // defaults somewhere (dW blockings and implicit channel tilings remain
  // shape-specialized even after the default-blocking fix the tuner drove).
  hw::CostModel cost;
  Tuner tuner(cost);
  const NetPlan plan = tuner.tune_net(vgg16_descs());
  EXPECT_LT(plan.tuned_total(), plan.default_total());
}

TEST(TunerTest, DefaultBlockingIsBitIdenticalToUnblockedEstimate) {
  // estimate_gemm_blocked at the default blocking must reproduce
  // estimate_gemm exactly — the tuner's baseline candidate IS the legacy
  // path, so "tuned <= default" is anchored to the calibrated numbers.
  hw::CostModel cost;
  const std::int64_t shapes[][3] = {
      {256, 3136, 2304}, {64, 50176, 576}, {512, 196, 4608}, {7, 9, 11}};
  for (const auto& s : shapes) {
    const gemm::GemmEstimate a = gemm::estimate_gemm(cost, s[0], s[1], s[2]);
    const gemm::GemmEstimate b =
        gemm::estimate_gemm_blocked(cost, s[0], s[1], s[2], gemm::GemmBlocking{});
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.dma_bytes, b.dma_bytes);
    EXPECT_EQ(a.compute_seconds, b.compute_seconds);
    EXPECT_EQ(a.dma_seconds, b.dma_seconds);
  }
}

TEST(TunerTest, SearchSpaceLeadsWithTheDefault) {
  hw::CostModel cost;
  const auto blockings = gemm_blocking_candidates(cost.params(), 256, 3136, 2304);
  ASSERT_FALSE(blockings.empty());
  EXPECT_TRUE(blockings.front() == gemm::GemmBlocking{});
}

TEST(PlanCacheTest, RoundTripIsExact) {
  hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swtune_roundtrip.cache";
  std::remove(path.c_str());  // TempDir persists across runs; start cold

  TuneOptions opts;
  opts.cache_path = path;
  Tuner cold(cost, opts);
  const NetPlan first = cold.tune_net(alexnet_descs());
  ASSERT_TRUE(cold.save_cache());
  EXPECT_EQ(cold.stats().cache_hits, 0);
  EXPECT_GT(cold.stats().evaluated, 0);

  Tuner warm(cost, opts);
  const NetPlan second = warm.tune_net(alexnet_descs());
  EXPECT_EQ(warm.stats().cache_hits, static_cast<int>(first.convs.size()));
  EXPECT_EQ(warm.stats().evaluated, 0);
  ASSERT_EQ(second.convs.size(), first.convs.size());
  for (const auto& [name, p] : first.convs) {
    const auto it = second.convs.find(name);
    ASSERT_NE(it, second.convs.end());
    EXPECT_TRUE(it->second.from_cache);
    // %.17g round-trips doubles exactly; the cached plan is the tuned plan.
    EXPECT_EQ(it->second.forward.tuned_s, p.forward.tuned_s);
    EXPECT_EQ(it->second.backward_weight.tuned_s, p.backward_weight.tuned_s);
    EXPECT_EQ(it->second.backward_input.tuned_s, p.backward_input.tuned_s);
    EXPECT_EQ(it->second.forward.implicit, p.forward.implicit);
    EXPECT_TRUE(it->second.forward.blocking == p.forward.blocking);
  }
  EXPECT_EQ(second.tuned_total(), first.tuned_total());
}

TEST(PlanCacheTest, RejectsVersionMismatch) {
  hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swtune_version.cache";
  PlanCache cache(cost.params());
  ASSERT_TRUE(cache.save(path));

  // Rewrite the header with a future format version; everything else intact.
  std::ifstream in(path);
  std::stringstream rest;
  std::string header;
  std::getline(in, header);
  rest << in.rdbuf();
  in.close();
  std::ofstream out(path);
  out << "swtune-plan-cache " << PlanCache::kFormatVersion + 1 << "\n"
      << rest.str();
  out.close();

  PlanCache reader(cost.params());
  std::string error;
  EXPECT_FALSE(reader.load(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  EXPECT_EQ(reader.size(), 0u);
}

TEST(PlanCacheTest, RejectsForeignChipAndGarbage) {
  hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swtune_chip.cache";
  PlanCache cache(cost.params());
  ASSERT_TRUE(cache.save(path));

  hw::HwParams other = cost.params();
  other.ldm_bytes *= 2;  // a different machine tunes different plans
  EXPECT_NE(chip_fingerprint(other), chip_fingerprint(cost.params()));
  PlanCache foreign(other);
  std::string error;
  EXPECT_FALSE(foreign.load(path, &error));
  EXPECT_EQ(foreign.size(), 0u);

  const std::string garbage = testing::TempDir() + "/swtune_garbage.cache";
  std::ofstream(garbage) << "definitely not a plan cache\n";
  PlanCache reader(cost.params());
  EXPECT_FALSE(reader.load(garbage, &error));
  EXPECT_EQ(reader.size(), 0u);
}

TEST(PlanCacheTest, WarmCacheSkipsSearchEntirely) {
  hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swtune_warm.cache";
  std::remove(path.c_str());  // TempDir persists across runs; start cold
  const auto descs = alexnet_descs();

  trace::Tracer cold_trace;
  TuneOptions opts;
  opts.cache_path = path;
  opts.tracer = &cold_trace;
  Tuner cold(cost, opts);
  const NetPlan plan = cold.tune_net(descs);
  ASSERT_TRUE(cold.save_cache());
  const int convs = static_cast<int>(plan.convs.size());
  EXPECT_EQ(count_spans(cold_trace, "tune.search"), convs);
  EXPECT_EQ(count_instants(cold_trace, "tune.cache_hit"), 0);
  // The search span models MPE-side candidate evaluation: simulated time
  // advances while tuning, proportionally to the candidates priced.
  EXPECT_GT(cold_trace.now(0), 0.0);

  trace::Tracer warm_trace;
  opts.tracer = &warm_trace;
  Tuner warm(cost, opts);
  warm.tune_net(descs);
  EXPECT_EQ(count_spans(warm_trace, "tune.search"), 0);
  EXPECT_EQ(count_instants(warm_trace, "tune.cache_hit"), convs);
  EXPECT_EQ(warm.stats().cache_hits, convs);
  EXPECT_EQ(warm.stats().layers_tuned, 0);
}

// --- Bucket-count search (overlapped all-reduce) -----------------------------

topo::BucketCostFn rhd_cost(int nodes) {
  topo::Topology topo;
  topo.num_nodes = nodes;
  const topo::NetParams net = topo::sunway_network();
  return [topo, net](std::int64_t bytes) {
    return topo::cost_rhd(bytes, topo, net, topo::Placement::kRoundRobin);
  };
}

TEST(BucketTuneTest, TunedNeverSlowerThanSerialForPaperNets) {
  hw::CostModel cost;
  struct NetCase {
    const char* name;
    std::vector<core::LayerDesc> descs;
    std::int64_t param_bytes;
  };
  const std::vector<NetCase> nets = {
      {"alexnet", fixtures::alexnet_per_cg_descs(),
       fixtures::kAlexNetGradientBytes},
      {"vgg16", fixtures::vgg_per_cg_descs(16), 0},
  };
  for (const auto& nc : nets) {
    const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost, nc.descs);
    std::vector<std::int64_t> layer_bytes;
    for (const auto& d : nc.descs) layer_bytes.push_back(d.param_bytes());
    if (nc.param_bytes > 0) {
      layer_bytes = topo::scale_layer_bytes(layer_bytes, nc.param_bytes);
    }
    for (int nodes : {4, 16, 64, 256, 1024}) {
      const BucketChoice choice =
          tune_buckets(layer_bytes, tl.bwd_s, tl.total_s, rhd_cost(nodes));
      EXPECT_LE(choice.overlapped_s, choice.serial_s)
          << nc.name << " @ " << nodes;
      EXPECT_GE(choice.buckets, 1) << nc.name << " @ " << nodes;
      // The k=1 baseline is always candidate zero and always legal.
      ASSERT_FALSE(choice.candidates.empty());
      EXPECT_EQ(choice.candidates.front().requested, 1);
      EXPECT_TRUE(choice.candidates.front().legal);
      EXPECT_EQ(choice.candidates.front().finish_s, choice.serial_s);
    }
  }
}

TEST(BucketTuneTest, FindsStrictWinWhereCommFitsUnderBackward) {
  // At 16 nodes AlexNet's collective is comparable to backward: splitting
  // the packed message must strictly beat the serial schedule.
  hw::CostModel cost;
  const auto descs = fixtures::alexnet_per_cg_descs();
  const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost, descs);
  std::vector<std::int64_t> layer_bytes;
  for (const auto& d : descs) layer_bytes.push_back(d.param_bytes());
  layer_bytes =
      topo::scale_layer_bytes(layer_bytes, fixtures::kAlexNetGradientBytes);
  const BucketChoice choice =
      tune_buckets(layer_bytes, tl.bwd_s, tl.total_s, rhd_cost(16));
  EXPECT_LT(choice.overlapped_s, choice.serial_s);
  EXPECT_GT(choice.buckets, 1);
  EXPECT_LT(choice.exposed_comm_s, choice.serial_s - tl.total_s);
}

TEST(BucketTuneTest, IllegalBaselineIsLoudlyRejected) {
  // The k=1 bucket is the whole packed message — the largest round any
  // layout buffers — so a resend buffer that cannot hold it invalidates the
  // baseline itself. That is a configuration error (the trainer could not
  // re-send a dropped round at all), and the search refuses to return a
  // choice built on an illegal baseline.
  const std::vector<std::int64_t> layer_bytes = {4000, 4000, 4000, 4000};
  const std::vector<double> bwd = {0.1, 0.1, 0.1, 0.1};
  const auto cost = [](std::int64_t bytes) {
    topo::CostBreakdown c;
    c.seconds = 1e-3 + static_cast<double>(bytes) * 1e-7;
    c.alpha_terms = 1;
    return c;
  };
  BucketTuneOptions opts;
  opts.max_buckets = 4;
  opts.eager_limit = 0;             // rounds fully buffered
  opts.resend_buffer_bytes = 6000;  // the 16000 B packed message overflows
  EXPECT_THROW(tune_buckets(layer_bytes, bwd, 0.4, cost, opts),
               base::CheckError);
  // An eager cutoff below the buffer caps every buffered round: the same
  // configuration becomes legal for every candidate and the search runs.
  opts.eager_limit = 2000;
  const BucketChoice choice = tune_buckets(layer_bytes, bwd, 0.4, cost, opts);
  EXPECT_LE(choice.overlapped_s, choice.serial_s);
  for (const auto& c : choice.candidates) EXPECT_TRUE(c.legal);
}

TEST(BucketTuneTest, CandidateMenuLeadsWithOneAndDeduplicates) {
  const auto menu = bucket_count_candidates(32);
  ASSERT_FALSE(menu.empty());
  EXPECT_EQ(menu.front(), 1);
  for (std::size_t i = 1; i < menu.size(); ++i) {
    EXPECT_GT(menu[i], menu[i - 1]);
    EXPECT_LE(menu[i], 32);
  }
  // Degenerate request still yields the serial baseline.
  EXPECT_EQ(bucket_count_candidates(0), std::vector<int>{1});
}

// --- comm-config search (algorithm x compression x buckets) ------------------

/// An AlexNet-shaped workload: a few heavy fc layers at the end of backward,
/// light conv gradients early, ~0.5 s of compute per iteration.
struct CommWorkload {
  std::vector<double> bwd = {0.02, 0.04, 0.06, 0.10, 0.25};
  double compute_s = 0.5;
  std::vector<std::int64_t> bytes = {140'000, 1'200'000, 2'700'000,
                                     37'000'000, 16'800'000};
};

TEST(CommTuneTest, BaselineCandidateIsAlwaysFirstLegalAndSingleBucket) {
  const CommWorkload w;
  const CommChoice choice = tune_comm(w.bwd, w.compute_s, w.bytes, 64);
  ASSERT_FALSE(choice.candidates.empty());
  const CommCandidate& base = choice.candidates.front();
  EXPECT_EQ(base.algorithm, "rhd-round-robin");
  EXPECT_EQ(base.compression, topo::Compression::kNone);
  EXPECT_EQ(base.buckets, 1);
  EXPECT_TRUE(base.legal);
  EXPECT_EQ(choice.baseline_s, base.finish_s);
}

TEST(CommTuneTest, WinnerNeverSlowerThanBaseline) {
  const CommWorkload w;
  for (int nodes : {4, 64, 1024, 40960}) {
    const CommChoice choice = tune_comm(w.bwd, w.compute_s, w.bytes, nodes);
    EXPECT_LE(choice.overlapped_s, choice.baseline_s) << nodes;
    // The reported winner really is in the table with matching numbers.
    bool found = false;
    for (const CommCandidate& c : choice.candidates) {
      if (c.legal && c.algorithm == choice.algorithm &&
          c.compression == choice.compression && c.buckets == choice.buckets &&
          c.finish_s == choice.overlapped_s) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << nodes;
  }
}

TEST(CommTuneTest, IllegalCombosAreRecordedButNeverPriced) {
  const CommWorkload w;
  const CommChoice choice = tune_comm(w.bwd, w.compute_s, w.bytes, 64);
  int rejected = 0;
  for (const CommCandidate& c : choice.candidates) {
    const bool int8_multi_hop =
        c.compression == topo::Compression::kInt8 &&
        (c.algorithm == "ring" || c.algorithm == "param-server");
    if (!c.legal) {
      ++rejected;
      // Only the int8 x multi-hop combos are illegal, and a rejected
      // candidate carries no price.
      EXPECT_TRUE(int8_multi_hop) << c.algorithm;
      EXPECT_EQ(c.finish_s, 0.0);
    } else {
      EXPECT_FALSE(int8_multi_hop) << c.algorithm;
      EXPECT_GT(c.finish_s, 0.0);
    }
  }
  EXPECT_GT(rejected, 0);
  // The winner is never one of the rejected shapes.
  EXPECT_FALSE(choice.compression == topo::Compression::kInt8 &&
               (choice.algorithm == "ring" ||
                choice.algorithm == "param-server"));
}

TEST(CommTuneTest, DeterministicAcrossReruns) {
  const CommWorkload w;
  const CommChoice a = tune_comm(w.bwd, w.compute_s, w.bytes, 1024);
  const CommChoice b = tune_comm(w.bwd, w.compute_s, w.bytes, 1024);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.compression, b.compression);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.overlapped_s, b.overlapped_s);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].finish_s, b.candidates[i].finish_s) << i;
    EXPECT_EQ(a.candidates[i].legal, b.candidates[i].legal) << i;
  }
}

TEST(CommTuneTest, HierarchicalWinsAtFullMachineScale) {
  // At 40,960 nodes the flat RHD's non-power-of-two fold is ruinous; the
  // tuned choice must be the two-level hierarchy, and it must beat the
  // paper baseline by a wide margin, not a rounding error.
  const CommWorkload w;
  const CommChoice choice = tune_comm(w.bwd, w.compute_s, w.bytes, 40960);
  EXPECT_EQ(choice.algorithm, "hierarchical");
  EXPECT_LT(choice.overlapped_s, 0.5 * choice.baseline_s);
}

}  // namespace
}  // namespace swcaffe::tune
