// Per-layer functional tests: forward semantics plus finite-difference
// gradient checks through single-layer nets.
#include <gtest/gtest.h>

#include <cmath>

#include "base/log.h"
#include "base/rng.h"
#include "core/layers.h"
#include "core/net.h"

namespace swcaffe::core {
namespace {

/// Builds a probe net: input "x" -> layer under test -> linear head ->
/// softmax loss, so every layer's gradients flow through a scalar loss.
NetSpec probe_net(LayerSpec layer, std::vector<int> in_shape, int classes) {
  NetSpec net;
  net.name = "probe";
  net.inputs.push_back({"x", in_shape});
  net.inputs.push_back({"label", {in_shape[0]}});
  layer.bottoms = {"x"};
  layer.tops = {"y"};
  net.layers.push_back(layer);
  net.layers.push_back(ip_spec("head", "y", "scores", classes));
  net.layers.push_back(softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

void randomize(tensor::Tensor& t, base::Rng& rng, float scale = 1.0f) {
  for (auto& v : t.data()) v = rng.uniform(-scale, scale);
}

/// Central-difference check of d(loss)/d(blob) on a sample of coordinates.
void gradient_check(Net& net, tensor::Tensor& blob, double tol = 2e-2,
                    float eps = 1e-2f) {
  net.forward_backward();
  std::vector<float> analytic(blob.diff().begin(), blob.diff().end());
  auto data = blob.data();
  const std::size_t n = blob.count();
  const std::size_t stride = std::max<std::size_t>(1, n / 7);
  for (std::size_t i = 0; i < n; i += stride) {
    const float orig = data[i];
    data[i] = orig + eps;
    const double lp = net.forward();
    data[i] = orig - eps;
    const double lm = net.forward();
    data[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol) << "coordinate " << i;
  }
}

void fill_labels(Net& net, int classes, base::Rng& rng) {
  for (auto& v : net.blob("label")->data()) {
    v = static_cast<float>(rng.uniform_int(0, classes - 1));
  }
}

struct ProbeCase {
  const char* name;
  LayerSpec layer;
  std::vector<int> in_shape;
};

class LayerGradientTest : public ::testing::TestWithParam<ProbeCase> {};

TEST_P(LayerGradientTest, InputGradientMatchesFiniteDifference) {
  const ProbeCase& pc = GetParam();
  NetSpec spec = probe_net(pc.layer, pc.in_shape, 3);
  Net net(spec, 77);
  net.set_phase(Phase::kTest);  // freeze dropout masks; BN uses stored stats
  if (pc.layer.kind == LayerKind::kBatchNorm) {
    net.set_phase(Phase::kTrain);  // BN gradient is defined w.r.t batch stats
  }
  base::Rng rng(99);
  randomize(*net.blob("x"), rng);
  fill_labels(net, 3, rng);
  gradient_check(net, *net.blob("x"));
}

TEST_P(LayerGradientTest, ParamGradientsMatchFiniteDifference) {
  const ProbeCase& pc = GetParam();
  NetSpec spec = probe_net(pc.layer, pc.in_shape, 3);
  Net net(spec, 78);
  net.set_phase(pc.layer.kind == LayerKind::kBatchNorm ? Phase::kTrain
                                                       : Phase::kTest);
  base::Rng rng(100);
  randomize(*net.blob("x"), rng);
  fill_labels(net, 3, rng);
  for (auto* p : net.learnable_params()) gradient_check(net, *p);
}

LayerSpec small_conv() { return conv_spec("c", "", "", 4, 3, 1, 1); }

LayerSpec small_implicit_conv() {
  LayerSpec s = conv_spec("ci", "", "", 4, 3, 2, 1);
  s.strategy = ConvStrategy::kImplicit;
  return s;
}

LayerSpec plain_softmax() {
  LayerSpec s;
  s.name = "sm";
  s.kind = LayerKind::kSoftmax;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradientTest,
    ::testing::Values(
        ProbeCase{"conv", small_conv(), {2, 3, 6, 6}},
        ProbeCase{"conv_implicit", small_implicit_conv(), {2, 8, 6, 6}},
        ProbeCase{"ip", ip_spec("fc", "", "", 5), {3, 4, 2, 2}},
        ProbeCase{"relu", relu_spec("r", "", ""), {2, 3, 4, 4}},
        ProbeCase{"sigmoid", sigmoid_spec("s", "", ""), {2, 3, 4, 4}},
        ProbeCase{"tanh", tanh_spec("t", "", ""), {2, 3, 4, 4}},
        ProbeCase{"pool_max", pool_spec("p", "", "", PoolMethod::kMax, 2, 2),
                  {2, 2, 6, 6}},
        ProbeCase{"pool_ave", pool_spec("p", "", "", PoolMethod::kAve, 3, 2),
                  {2, 2, 7, 7}},
        ProbeCase{"pool_pad",
                  pool_spec("p", "", "", PoolMethod::kMax, 3, 1, 1),
                  {1, 2, 5, 5}},
        ProbeCase{"bn", bn_spec("b", "", ""), {4, 3, 3, 3}},
        ProbeCase{"lrn", lrn_spec("l", "", "", 3), {2, 6, 3, 3}},
        ProbeCase{"softmax", plain_softmax(), {3, 5}}),
    [](const ::testing::TestParamInfo<ProbeCase>& info) {
      return info.param.name;
    });

TEST(ReluLayerTest, ForwardClampsNegatives) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 1, 1, 4}});
  spec.layers.push_back(relu_spec("r", "x", "y"));
  Net net(spec, 1);
  auto x = net.blob("x")->data();
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.5f;
  x[3] = -0.1f;
  net.forward();
  auto y = net.blob("y")->data();
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.5f);
  EXPECT_EQ(y[3], 0.0f);
}

TEST(PoolLayerTest, MaxPoolPicksWindowMax) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 1, 2, 2}});
  spec.layers.push_back(pool_spec("p", "x", "y", PoolMethod::kMax, 2, 2));
  Net net(spec, 1);
  auto x = net.blob("x")->data();
  x[0] = 1;
  x[1] = 5;
  x[2] = 3;
  x[3] = 2;
  net.forward();
  EXPECT_EQ(net.blob("y")->data()[0], 5.0f);
}

TEST(PoolLayerTest, GlobalAveragePool) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 2, 3, 3}});
  spec.layers.push_back(
      pool_spec("p", "x", "y", PoolMethod::kAve, 3, 1, 0, true));
  Net net(spec, 1);
  auto x = net.blob("x")->data();
  for (int i = 0; i < 9; ++i) x[i] = 1.0f;                        // mean 1
  for (int i = 9; i < 18; ++i) x[i] = static_cast<float>(i);      // mean 13
  net.forward();
  EXPECT_EQ(net.blob("y")->shape(), (std::vector<int>{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(net.blob("y")->data()[0], 1.0f);
  EXPECT_FLOAT_EQ(net.blob("y")->data()[1], 13.0f);
}

TEST(PoolLayerTest, CaffeCeilModeSizing) {
  // 55x55 input, k=3, s=2 -> 27 (AlexNet pool1).
  EXPECT_EQ(PoolGeom::pooled(55, 3, 2, 0), 27);
  // 112 -> 56 with k=2 s=2 (VGG).
  EXPECT_EQ(PoolGeom::pooled(112, 2, 2, 0), 56);
  // 28 with k=3 s=1 pad=1 stays 28 (inception pool branch).
  EXPECT_EQ(PoolGeom::pooled(28, 3, 1, 1), 28);
  // 13 -> 6 with k=3 s=2 (AlexNet pool5).
  EXPECT_EQ(PoolGeom::pooled(13, 3, 2, 0), 6);
}

TEST(BatchNormLayerTest, NormalizesPerChannelInTraining) {
  NetSpec spec;
  spec.inputs.push_back({"x", {4, 2, 2, 2}});
  spec.layers.push_back(bn_spec("b", "x", "y"));
  Net net(spec, 3);
  base::Rng rng(5);
  for (auto& v : net.blob("x")->data()) v = rng.gaussian(3.0f, 2.0f);
  net.forward();
  const tensor::Tensor& y = *net.blob("y");
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int n = 0;
    for (int b = 0; b < 4; ++b) {
      for (int i = 0; i < 4; ++i) {
        const float v = y.data()[y.offset(b, c, i / 2, i % 2)];
        sum += v;
        sq += static_cast<double>(v) * v;
        ++n;
      }
    }
    EXPECT_NEAR(sum / n, 0.0, 1e-4);
    EXPECT_NEAR(sq / n, 1.0, 1e-2);
  }
}

TEST(BatchNormLayerTest, TestPhaseUsesRunningStats) {
  NetSpec spec;
  spec.inputs.push_back({"x", {8, 1, 2, 2}});
  spec.layers.push_back(bn_spec("b", "x", "y"));
  Net net(spec, 4);
  base::Rng rng(6);
  for (int it = 0; it < 30; ++it) {
    for (auto& v : net.blob("x")->data()) v = rng.gaussian(2.0f, 1.0f);
    net.forward();
  }
  net.set_phase(Phase::kTest);
  for (auto& v : net.blob("x")->data()) v = 2.0f;  // == the running mean
  net.forward();
  for (float v : net.blob("y")->data()) EXPECT_NEAR(v, 0.0f, 0.3f);
}

TEST(DropoutLayerTest, TrainMasksAndRescales) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 1, 40, 40}});
  spec.layers.push_back(dropout_spec("d", "x", "y", 0.5f));
  Net net(spec, 5);
  for (auto& v : net.blob("x")->data()) v = 1.0f;
  net.forward();
  int zeros = 0, doubled = 0;
  for (float v : net.blob("y")->data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout: scale = 1/(1-0.5)
      ++doubled;
    }
  }
  EXPECT_NEAR(zeros / 1600.0, 0.5, 0.08);
  EXPECT_GT(doubled, 0);
}

TEST(DropoutLayerTest, TestPhaseIsIdentity) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 1, 2, 2}});
  spec.layers.push_back(dropout_spec("d", "x", "y", 0.5f));
  Net net(spec, 6);
  net.set_phase(Phase::kTest);
  auto x = net.blob("x")->data();
  for (std::size_t i = 0; i < 4; ++i) x[i] = static_cast<float>(i + 1);
  net.forward();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(net.blob("y")->data()[i], x[i]);
  }
}

TEST(SoftmaxLossTest, UniformScoresGiveLogClasses) {
  NetSpec spec;
  spec.inputs.push_back({"x", {2, 10}});
  spec.inputs.push_back({"label", {2}});
  spec.layers.push_back(softmax_loss_spec("loss", "x", "label", "loss"));
  Net net(spec, 7);
  net.blob("label")->data()[0] = 3;
  net.blob("label")->data()[1] = 9;
  EXPECT_NEAR(net.forward(), std::log(10.0), 1e-5);
}

TEST(SoftmaxLossTest, GradientIsProbMinusOneHotOverBatch) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 3}});
  spec.inputs.push_back({"label", {1}});
  spec.layers.push_back(softmax_loss_spec("loss", "x", "label", "loss"));
  Net net(spec, 8);
  net.blob("label")->data()[0] = 1;
  net.forward_backward();
  auto d = net.blob("x")->diff();
  EXPECT_NEAR(d[0], 1.0f / 3, 1e-5);
  EXPECT_NEAR(d[1], 1.0f / 3 - 1.0f, 1e-5);
  EXPECT_NEAR(d[2], 1.0f / 3, 1e-5);
}

TEST(SoftmaxLossTest, OutOfRangeLabelThrows) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 3}});
  spec.inputs.push_back({"label", {1}});
  spec.layers.push_back(softmax_loss_spec("loss", "x", "label", "loss"));
  Net net(spec, 8);
  net.blob("label")->data()[0] = 3;  // classes are 0..2
  EXPECT_THROW(net.forward(), base::CheckError);
}

TEST(AccuracyLayerTest, CountsArgmaxHits) {
  NetSpec spec;
  spec.inputs.push_back({"x", {2, 3}});
  spec.inputs.push_back({"label", {2}});
  spec.layers.push_back(accuracy_spec("acc", "x", "label", "acc"));
  Net net(spec, 9);
  auto x = net.blob("x")->data();
  x[0] = 0.9f;  // sample 0 argmax = 0
  x[4] = 2.0f;  // sample 1 argmax = 1
  net.blob("label")->data()[0] = 0;
  net.blob("label")->data()[1] = 2;
  net.forward();
  EXPECT_FLOAT_EQ(net.blob("acc")->data()[0], 0.5f);
}

TEST(AccuracyLayerTest, TopKCountsNearMisses) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 5}});
  spec.inputs.push_back({"label", {1}});
  LayerSpec acc = accuracy_spec("acc", "x", "label", "acc");
  acc.top_k = 3;
  spec.layers.push_back(acc);
  Net net(spec, 9);
  auto x = net.blob("x")->data();
  // Scores descending 5,4,3,2,1: label 2 ranks third -> top-3 hit.
  for (int c = 0; c < 5; ++c) x[c] = static_cast<float>(5 - c);
  net.blob("label")->data()[0] = 2;
  net.forward();
  EXPECT_FLOAT_EQ(net.blob("acc")->data()[0], 1.0f);
  // Label 4 ranks fifth -> top-3 miss.
  net.blob("label")->data()[0] = 4;
  net.forward();
  EXPECT_FLOAT_EQ(net.blob("acc")->data()[0], 0.0f);
}

TEST(EltwiseLayerTest, SumsAndFansGradientOut) {
  NetSpec spec;
  spec.inputs.push_back({"a", {1, 4}});
  spec.inputs.push_back({"b", {1, 4}});
  spec.inputs.push_back({"label", {1}});
  spec.layers.push_back(eltwise_sum_spec("e", "a", "b", "y"));
  spec.layers.push_back(ip_spec("head", "y", "s", 2));
  spec.layers.push_back(softmax_loss_spec("loss", "s", "label", "loss"));
  Net net(spec, 10);
  base::Rng rng(11);
  randomize(*net.blob("a"), rng);
  randomize(*net.blob("b"), rng);
  net.forward_backward();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(net.blob("y")->data()[i],
                    net.blob("a")->data()[i] + net.blob("b")->data()[i]);
    EXPECT_FLOAT_EQ(net.blob("a")->diff()[i], net.blob("b")->diff()[i]);
  }
}

TEST(EltwiseLayerTest, MaxRoutesGradientToWinner) {
  NetSpec spec;
  spec.inputs.push_back({"a", {1, 3}});
  spec.inputs.push_back({"b", {1, 3}});
  spec.inputs.push_back({"label", {1}});
  LayerSpec e = eltwise_sum_spec("e", "a", "b", "y");
  e.eltwise_max = true;
  spec.layers.push_back(e);
  spec.layers.push_back(softmax_loss_spec("loss", "y", "label", "loss"));
  Net net(spec, 30);
  auto a = net.blob("a")->data();
  auto b = net.blob("b")->data();
  a[0] = 3.0f; b[0] = 1.0f;  // a wins
  a[1] = 0.0f; b[1] = 2.0f;  // b wins
  a[2] = -1.0f; b[2] = -2.0f;  // a wins
  net.blob("label")->data()[0] = 0;
  net.forward_backward();
  auto y = net.blob("y")->data();
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], -1.0f);
  // Losers receive no gradient, winners take all of it.
  EXPECT_NE(net.blob("a")->diff()[0], 0.0f);
  EXPECT_EQ(net.blob("b")->diff()[0], 0.0f);
  EXPECT_EQ(net.blob("a")->diff()[1], 0.0f);
  EXPECT_NE(net.blob("b")->diff()[1], 0.0f);
}

TEST(EltwiseLayerTest, CoefficientsScaleSumAndGradient) {
  NetSpec spec;
  spec.inputs.push_back({"a", {1, 2}});
  spec.inputs.push_back({"b", {1, 2}});
  spec.inputs.push_back({"label", {1}});
  LayerSpec e = eltwise_sum_spec("e", "a", "b", "y");
  e.eltwise_coeffs = {2.0f, -1.0f};
  spec.layers.push_back(e);
  spec.layers.push_back(softmax_loss_spec("loss", "y", "label", "loss"));
  Net net(spec, 31);
  auto a = net.blob("a")->data();
  auto b = net.blob("b")->data();
  a[0] = 1.0f; a[1] = 0.5f;
  b[0] = 3.0f; b[1] = -1.0f;
  net.blob("label")->data()[0] = 1;
  net.forward_backward();
  EXPECT_FLOAT_EQ(net.blob("y")->data()[0], 2.0f * 1.0f - 3.0f);
  EXPECT_FLOAT_EQ(net.blob("y")->data()[1], 2.0f * 0.5f + 1.0f);
  for (int i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(net.blob("a")->diff()[i],
                    -2.0f * net.blob("b")->diff()[i]);
  }
}

TEST(EltwiseLayerTest, MaxRejectsCoefficients) {
  NetSpec spec;
  spec.inputs.push_back({"a", {1, 2}});
  spec.inputs.push_back({"b", {1, 2}});
  LayerSpec e = eltwise_sum_spec("e", "a", "b", "y");
  e.eltwise_max = true;
  e.eltwise_coeffs = {1.0f, 1.0f};
  spec.layers.push_back(e);
  EXPECT_THROW(Net(spec, 32), base::CheckError);
}

TEST(ConcatLayerTest, StacksChannelsPerSample) {
  NetSpec spec;
  spec.inputs.push_back({"a", {2, 1, 2, 2}});
  spec.inputs.push_back({"b", {2, 2, 2, 2}});
  spec.layers.push_back(concat_spec("c", {"a", "b"}, "y"));
  Net net(spec, 12);
  auto a = net.blob("a")->data();
  auto b = net.blob("b")->data();
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 100.0f + i;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 200.0f + i;
  net.forward();
  const tensor::Tensor& y = *net.blob("y");
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3, 2, 2}));
  EXPECT_FLOAT_EQ(y.data()[y.offset(0, 0, 0, 0)], 100.0f);
  EXPECT_FLOAT_EQ(y.data()[y.offset(0, 1, 0, 0)], 200.0f);
  EXPECT_FLOAT_EQ(y.data()[y.offset(1, 0, 0, 0)], 104.0f);
  EXPECT_FLOAT_EQ(y.data()[y.offset(1, 1, 0, 0)], 208.0f);  // b, sample 1

}

TEST(TransformLayerTest, RoundTripThroughRcnb) {
  NetSpec spec;
  spec.inputs.push_back({"x", {2, 3, 4, 5}});
  LayerSpec to;
  to.name = "to_rcnb";
  to.kind = LayerKind::kTransform;
  to.stride = 0;
  to.bottoms = {"x"};
  to.tops = {"t"};
  spec.layers.push_back(to);
  LayerSpec back;
  back.name = "to_bnrc";
  back.kind = LayerKind::kTransform;
  back.stride = 1;
  back.bottoms = {"t"};
  back.tops = {"y"};
  spec.layers.push_back(back);
  Net net(spec, 13);
  base::Rng rng(14);
  randomize(*net.blob("x"), rng);
  net.forward();
  EXPECT_EQ(net.blob("t")->shape(), (std::vector<int>{4, 5, 3, 2}));
  EXPECT_EQ(net.blob("y")->shape(), net.blob("x")->shape());
  for (std::size_t i = 0; i < net.blob("x")->count(); ++i) {
    EXPECT_EQ(net.blob("y")->data()[i], net.blob("x")->data()[i]);
  }
}

TEST(SyntheticDataLayerTest, ProducesLabelsInRange) {
  NetSpec spec;
  spec.layers.push_back(data_spec("data", "x", "label", {8, 1, 4, 4}, 5));
  Net net(spec, 15);
  net.forward();
  for (float v : net.blob("label")->data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 5.0f);
    EXPECT_EQ(v, std::floor(v));
  }
  EXPECT_GT(net.blob("x")->sumsq_data(), 0.0);
}

TEST(ConvLayerTest, AutoStrategyLocksPlanAtSetup) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 64, 28, 28}});
  spec.layers.push_back(conv_spec("c", "x", "y", 64, 3, 1, 1));
  Net net(spec, 16);
  auto* conv = dynamic_cast<ConvLayer*>(net.layer("c"));
  ASSERT_NE(conv, nullptr);
  // 64-channel conv: implicit backward is unsupported (Table II), so the
  // auto-tuner must not select it.
  EXPECT_FALSE(conv->uses_implicit_backward());
}

TEST(ConvLayerTest, ExplicitImplicitStrategiesAgreeInNet) {
  std::vector<float> explicit_out;
  for (ConvStrategy strategy :
       {ConvStrategy::kExplicit, ConvStrategy::kImplicit}) {
    NetSpec spec;
    spec.inputs.push_back({"x", {2, 8, 7, 7}});
    LayerSpec c = conv_spec("c", "x", "y", 6, 3, 1, 1);
    c.strategy = strategy;
    spec.layers.push_back(c);
    Net net(spec, 19);  // same seed -> identical weights
    base::Rng data_rng(20);
    randomize(*net.blob("x"), data_rng);
    net.forward();
    if (strategy == ConvStrategy::kExplicit) {
      explicit_out.assign(net.blob("y")->data().begin(),
                          net.blob("y")->data().end());
    } else {
      ASSERT_EQ(net.blob("y")->count(), explicit_out.size());
      for (std::size_t i = 0; i < explicit_out.size(); ++i) {
        EXPECT_NEAR(net.blob("y")->data()[i], explicit_out[i], 1e-4f);
      }
    }
  }
}

TEST(ConvLayerTest, ImplicitStrategyRejectsNarrowChannels) {
  NetSpec spec;
  spec.inputs.push_back({"x", {1, 3, 8, 8}});
  LayerSpec c = conv_spec("c", "x", "y", 8, 3, 1, 1);
  c.strategy = ConvStrategy::kImplicit;
  spec.layers.push_back(c);
  EXPECT_THROW(Net(spec, 21), base::CheckError);
}

}  // namespace
}  // namespace swcaffe::core
