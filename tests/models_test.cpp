// Model zoo tests: shape inference against the paper's published model
// statistics, and functional forward/backward at reduced resolution.
#include <gtest/gtest.h>

#include "base/log.h"
#include "core/models.h"
#include "core/net.h"

namespace swcaffe::core {
namespace {

std::int64_t total_params(const std::vector<LayerDesc>& descs) {
  std::int64_t n = 0;
  for (const auto& d : descs) n += d.param_count;
  return n;
}

const LayerDesc* find_layer(const std::vector<LayerDesc>& descs,
                            const std::string& name) {
  for (const auto& d : descs) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

TEST(ModelsTest, AlexNetParameterBytesMatchPaper) {
  // Sec. VI-C: "model parameter size of ... AlexNet (232.6 MB)".
  const auto descs = describe_net_spec(alexnet_bn(256));
  // Our AlexNet drops the historical 2-GPU grouping (as modern refactors
  // do), which adds ~1.5M params over the grouped original.
  const double mb = total_params(descs) * 4.0 / 1e6;
  EXPECT_NEAR(mb, 232.6, 25.0);
}

TEST(ModelsTest, ResNet50ParameterBytesMatchPaper) {
  // Sec. VI-C: ResNet-50 is 97.7 MB.
  const auto descs = describe_net_spec(resnet50(32));
  const double mb = total_params(descs) * 4.0 / 1e6;
  EXPECT_NEAR(mb, 97.7, 12.0);
}

TEST(ModelsTest, Vgg16HasStandard138MParams) {
  const auto descs = describe_net_spec(vgg(16, 64));
  EXPECT_NEAR(total_params(descs) / 1e6, 138.0, 5.0);
}

TEST(ModelsTest, Vgg19DeeperThanVgg16) {
  const auto d16 = describe_net_spec(vgg(16, 64));
  const auto d19 = describe_net_spec(vgg(19, 64));
  int convs16 = 0, convs19 = 0;
  for (const auto& d : d16) convs16 += d.kind == LayerKind::kConv;
  for (const auto& d : d19) convs19 += d.kind == LayerKind::kConv;
  EXPECT_EQ(convs16, 13);
  EXPECT_EQ(convs19, 16);
  EXPECT_GT(total_params(d19), total_params(d16));
}

TEST(ModelsTest, GoogleNetIsSmallButDeep) {
  const auto descs = describe_net_spec(googlenet(128));
  // ~7 M params (inception v1), dozens of convolutions.
  EXPECT_NEAR(total_params(descs) / 1e6, 7.0, 2.0);
  int convs = 0;
  for (const auto& d : descs) convs += d.kind == LayerKind::kConv;
  EXPECT_EQ(convs, 3 + 9 * 6);  // stem (7x7, 3x3 reduce, 3x3) + 6 per module
}

TEST(ModelsTest, Vgg16ConvShapesMatchTable2) {
  const auto descs = describe_net_spec(vgg(16, 128));
  struct Expect {
    const char* name;
    int ni, no, img;
  };
  const Expect rows[] = {
      {"conv1_1", 3, 64, 224},   {"conv1_2", 64, 64, 224},
      {"conv2_1", 64, 128, 112}, {"conv2_2", 128, 128, 112},
      {"conv3_1", 128, 256, 56}, {"conv3_3", 256, 256, 56},
      {"conv4_1", 256, 512, 28}, {"conv5_3", 512, 512, 14},
  };
  for (const auto& r : rows) {
    const LayerDesc* d = find_layer(descs, r.name);
    ASSERT_NE(d, nullptr) << r.name;
    EXPECT_EQ(d->conv.in_c, r.ni) << r.name;
    EXPECT_EQ(d->conv.out_c, r.no) << r.name;
    EXPECT_EQ(d->conv.in_h, r.img) << r.name;
    EXPECT_EQ(d->conv.batch, 128) << r.name;
  }
}

TEST(ModelsTest, AlexNetLayerNamesMatchFig8) {
  const auto descs = describe_net_spec(alexnet_bn(256));
  for (const char* name :
       {"conv1", "conv1/bn", "relu1", "pool1", "conv2", "conv3", "conv4",
        "conv5", "pool5", "fc6", "drop6", "fc7", "fc8"}) {
    EXPECT_NE(find_layer(descs, name), nullptr) << name;
  }
  // The paper's refinement: BN present, LRN absent (Sec. VI-A).
  for (const auto& d : descs) EXPECT_NE(d.kind, LayerKind::kLRN);
}

TEST(ModelsTest, AlexNetFcDimensions) {
  const auto descs = describe_net_spec(alexnet_bn(256));
  const LayerDesc* fc6 = find_layer(descs, "fc6");
  ASSERT_NE(fc6, nullptr);
  EXPECT_EQ(fc6->fc.k, 256 * 6 * 6);  // pool5 output 6x6x256
  EXPECT_EQ(fc6->fc.n, 4096);
  EXPECT_EQ(fc6->fc.m, 256);
}

TEST(ModelsTest, ResNet50StageShapes) {
  const auto descs = describe_net_spec(resnet50(32));
  const LayerDesc* c1 = find_layer(descs, "conv1");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->conv.out_h(), 112);  // 224/2
  const LayerDesc* last = find_layer(descs, "res5c_branch2c");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->conv.out_c, 2048);
  EXPECT_EQ(last->conv.out_h(), 7);
  const LayerDesc* fc = find_layer(descs, "fc1000");
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->fc.k, 2048);
}

TEST(ModelsTest, DescribeMatchesLiveNetAtSmallScale) {
  // The spec-level shape inference must agree with what the functional Net
  // computes during setup — for every layer of every model.
  const NetSpec specs[] = {alexnet_bn(2, 10, 67), vgg(16, 1, 10, 32),
                           resnet50(1, 10, 64), googlenet(1, 10, 64)};
  for (const auto& spec : specs) {
    const auto inferred = describe_net_spec(spec);
    Net net(spec, 1);
    const auto live = net.describe();
    ASSERT_EQ(inferred.size(), live.size()) << spec.name;
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(inferred[i].name, live[i].name) << spec.name;
      EXPECT_EQ(inferred[i].input_count, live[i].input_count)
          << spec.name << ":" << live[i].name;
      EXPECT_EQ(inferred[i].output_count, live[i].output_count)
          << spec.name << ":" << live[i].name;
      EXPECT_EQ(inferred[i].param_count, live[i].param_count)
          << spec.name << ":" << live[i].name;
    }
  }
}

TEST(ModelsTest, AllModelsRunForwardBackwardFunctionally) {
  // Reduced resolution keeps runtime in check; the graphs are the real ones.
  const NetSpec specs[] = {alexnet_bn(1, 10, 67), vgg(16, 1, 10, 32),
                           resnet50(1, 10, 64), googlenet(1, 10, 64)};
  for (const auto& spec : specs) {
    Net net(spec, 3);
    base::Rng rng(4);
    for (auto& v : net.blob("data")->data()) v = rng.gaussian(0.0f, 1.0f);
    net.blob("label")->data()[0] = 3;
    const double loss = net.forward_backward();
    EXPECT_GT(loss, 0.0) << spec.name;
    EXPECT_LT(loss, 100.0) << spec.name;
    // Every learnable parameter receives some gradient signal.
    double grad_sq = 0.0;
    for (auto* p : net.learnable_params()) grad_sq += p->sumsq_diff();
    EXPECT_GT(grad_sq, 0.0) << spec.name;
  }
}

TEST(ModelsTest, OriginalAlexNetMatchesHistoricalParamCount) {
  // Krizhevsky's grouped AlexNet: ~61 M parameters (the ungrouped BN
  // refinement adds ~1.5 M by un-splitting conv2/4/5).
  const auto grouped = describe_net_spec(alexnet_original(256));
  const auto refined = describe_net_spec(alexnet_bn(256));
  EXPECT_NEAR(total_params(grouped) / 1e6, 61.0, 2.0);
  EXPECT_GT(total_params(refined), total_params(grouped));
  // LRN present in the original, absent from the refinement (Sec. VI-A).
  int lrn = 0;
  for (const auto& d : grouped) lrn += d.kind == LayerKind::kLRN;
  EXPECT_EQ(lrn, 2);
  const LayerDesc* conv2 = find_layer(grouped, "conv2");
  ASSERT_NE(conv2, nullptr);
  EXPECT_EQ(conv2->conv.group, 2);
}

TEST(ModelsTest, OriginalAlexNetRunsFunctionally) {
  Net net(alexnet_original(1, 10, 67), 5);
  base::Rng rng(6);
  for (auto& v : net.blob("data")->data()) v = rng.gaussian(0.0f, 1.0f);
  net.blob("label")->data()[0] = 2;
  const double loss = net.forward_backward();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 100.0);
}

TEST(ModelsTest, VggRejectsUnsupportedDepth) {
  EXPECT_THROW(vgg(13, 1), base::CheckError);
}

}  // namespace
}  // namespace swcaffe::core
