// Baseline device rooflines (K40m GPU, Xeon CPU) — Table I/III sanity.
#include <gtest/gtest.h>

#include "core/models.h"
#include "fixtures.h"
#include "perfmodel/device_model.h"

namespace swcaffe::perfmodel {
namespace {

std::int64_t input_bytes(int batch) {
  return fixtures::imagenet_input_bytes(batch);
}

TEST(DeviceModelTest, TableOneSpecs) {
  EXPECT_NEAR(k40m().peak_sp_flops, 4.29e12, 1e9);
  EXPECT_NEAR(k40m().mem_bw, 288e9, 1e6);
  EXPECT_NEAR(sw26010_specsheet().peak_sp_flops, 3.02e12, 1e9);
  EXPECT_NEAR(sw26010_specsheet().mem_bw, 128e9, 1e6);
}

TEST(DeviceModelTest, GpuBeatsCpuOnEveryNetwork) {
  const DeviceModel gpu = k40m(), cpu = xeon_e5_2680v3();
  struct Cfg {
    core::NetSpec spec;
    int batch;
  };
  const Cfg cfgs[] = {{fixtures::alexnet_spec(), 256},
                      {fixtures::vgg_spec(16), 64},
                      {core::resnet50(32), 32},
                      {core::googlenet(128), 128}};
  for (const auto& c : cfgs) {
    const auto descs = core::describe_net_spec(c.spec);
    const double g = device_throughput_img_s(gpu, descs, c.batch,
                                             input_bytes(c.batch));
    const double h = device_throughput_img_s(cpu, descs, c.batch,
                                             input_bytes(c.batch));
    EXPECT_GT(g, 3.0 * h) << c.spec.name;
  }
}

TEST(DeviceModelTest, AlexNetGpuThroughputNearPaper) {
  // Table III: K40m AlexNet = 79.25 img/s; we accept the right decade and
  // a tight-ish band since this column is directly calibrated.
  const auto descs = core::describe_net_spec(fixtures::alexnet_spec());
  const double img_s =
      device_throughput_img_s(k40m(), descs, 256, input_bytes(256));
  EXPECT_NEAR(img_s, 79.25, 30.0);
}

TEST(DeviceModelTest, AlexNetGpuInputPipelineDominance) {
  // Sec. VI-B: "data reading ... accounts for over 40% of time" on AlexNet.
  const DeviceModel gpu = k40m();
  const auto descs = core::describe_net_spec(fixtures::alexnet_spec());
  double compute = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    compute += estimate_layer_dev(gpu, d, first).total();
  }
  const double input = input_bytes(256) / gpu.input_pipeline_bw;
  EXPECT_GT(input / (input + compute), 0.35);
  EXPECT_LT(input / (input + compute), 0.60);
}

TEST(DeviceModelTest, VggGpuSlowerThanAlexNetPerImage) {
  const DeviceModel gpu = k40m();
  const double alex = device_throughput_img_s(
      gpu, core::describe_net_spec(fixtures::alexnet_spec()), 256,
      input_bytes(256));
  const double vgg16 = device_throughput_img_s(
      gpu, core::describe_net_spec(fixtures::vgg_spec(16)), 64, input_bytes(64));
  EXPECT_GT(alex, 3.0 * vgg16);  // Table III: 79.25 vs 13.79
}

TEST(DeviceModelTest, Vgg19SlowerThanVgg16) {
  const DeviceModel gpu = k40m();
  const double v16 = device_throughput_img_s(
      gpu, core::describe_net_spec(fixtures::vgg_spec(16)), 64, input_bytes(64));
  const double v19 = device_throughput_img_s(
      gpu, core::describe_net_spec(fixtures::vgg_spec(19)), 64, input_bytes(64));
  EXPECT_GT(v16, v19);
}

TEST(DeviceModelTest, CpuAlexNetNearPaper) {
  // Table III: CPU AlexNet = 12.01 img/s.
  const auto descs = core::describe_net_spec(fixtures::alexnet_spec());
  const double img_s = device_throughput_img_s(xeon_e5_2680v3(), descs, 256,
                                               input_bytes(256));
  EXPECT_NEAR(img_s, 12.01, 6.0);
}

TEST(DeviceModelTest, KnlSitsBetweenCpuAndGpuOnConvNets) {
  // The paper never benchmarks KNL, but Table I's specs put it above the
  // K40m in raw flops while Intel-Caffe efficiencies were below cuDNN's —
  // the model should land it between the Xeon and the K40m on VGG.
  const auto descs = core::describe_net_spec(fixtures::vgg_spec(16));
  const double knl = device_throughput_img_s(knl_7250(), descs, 64, 0);
  const double cpu = device_throughput_img_s(xeon_e5_2680v3(), descs, 64, 0);
  const double gpu =
      device_throughput_img_s(k40m(), descs, 64, input_bytes(64));
  EXPECT_GT(knl, cpu);
  EXPECT_GT(knl, 0.3 * gpu);
  EXPECT_NEAR(knl_7250().peak_sp_flops, 6.92e12, 1e9);  // Table I
}

TEST(DeviceModelTest, FirstConvBackwardIsCheaperThanLater) {
  const DeviceModel gpu = k40m();
  core::LayerDesc d;
  d.kind = core::LayerKind::kConv;
  d.conv.batch = 32;
  d.conv.in_c = 3;
  d.conv.out_c = 64;
  d.conv.in_h = d.conv.in_w = 224;
  d.conv.kernel = 7;
  d.conv.stride = 2;
  d.conv.pad = 3;
  d.input_count = d.conv.input_count();
  d.output_count = d.conv.output_count();
  const auto first = estimate_layer_dev(gpu, d, /*first_conv=*/true);
  const auto later = estimate_layer_dev(gpu, d, /*first_conv=*/false);
  EXPECT_LT(first.bwd_s, later.bwd_s);
  EXPECT_EQ(first.fwd_s, later.fwd_s);
}

}  // namespace
}  // namespace swcaffe::perfmodel
