#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/log.h"
#include "hw/chip.h"
#include "hw/cost_model.h"
#include "hw/dma.h"
#include "hw/ldm.h"
#include "hw/rlc.h"

namespace swcaffe::hw {
namespace {

TEST(CostModelTest, DmaBandwidthIncreasesWithTransferSize) {
  CostModel cost;
  double prev = 0.0;
  for (std::size_t bytes : {128u, 512u, 2048u, 8192u, 32768u}) {
    const double bw = cost.dma_bandwidth(bytes, 64);
    EXPECT_GT(bw, prev) << "size " << bytes;
    prev = bw;
  }
}

TEST(CostModelTest, DmaSaturatesAtAggregatePeak) {
  CostModel cost;
  // Fig. 2: 64-CPE continuous access saturates around 28 GB/s.
  const double bw = cost.dma_bandwidth(48 * 1024, 64);
  EXPECT_LE(bw, cost.params().dma_peak_bw);
  EXPECT_GT(bw, 0.9 * cost.params().dma_peak_bw);
}

TEST(CostModelTest, MoreCpesMoreAggregateBandwidth) {
  CostModel cost;
  const std::size_t bytes = 16 * 1024;
  double prev = 0.0;
  for (int cpes : {1, 8, 16, 32, 64}) {
    const double bw = cost.dma_bandwidth(bytes, cpes);
    EXPECT_GT(bw, prev) << cpes << " CPEs";
    prev = bw;
  }
}

TEST(CostModelTest, SmallTransfersAreLatencyBound) {
  CostModel cost;
  // A 128 B transfer cannot amortize the ~278-cycle startup (Principle 3):
  // a lone CPE gets a small fraction of its link rate, and even 64 CPEs stay
  // well below saturation.
  EXPECT_LT(cost.dma_bandwidth(128, 1), 0.2 * cost.params().dma_per_cpe_bw);
  EXPECT_LT(cost.dma_bandwidth(128, 64), 0.7 * cost.params().dma_peak_bw);
}

TEST(CostModelTest, StridedBandwidthGrowsWithBlockSize) {
  CostModel cost;
  const std::size_t total = 32 * 1024;
  double prev = 0.0;
  for (std::size_t block : {8u, 32u, 128u, 256u, 1024u, 4096u}) {
    const double bw = cost.dma_strided_bandwidth(total, block, 64);
    EXPECT_GE(bw, prev) << "block " << block;
    prev = bw;
  }
  // Paper: >= 256 B blocks reach satisfactory bandwidth.
  EXPECT_GT(cost.dma_strided_bandwidth(total, 256, 64),
            0.5 * cost.params().dma_peak_bw);
}

TEST(CostModelTest, StridedNeverBeatsContinuous) {
  CostModel cost;
  for (std::size_t block : {8u, 64u, 512u, 4096u}) {
    EXPECT_LE(cost.dma_strided_bandwidth(32 * 1024, block, 64),
              cost.dma_bandwidth(32 * 1024, 64) + 1e-6);
  }
}

TEST(CostModelTest, MpeCopyMuchSlowerThanCpeDma) {
  CostModel cost;
  // Principle 2: 9.9 GB/s via MPE vs ~28 GB/s via the CPE cluster.
  const std::size_t bytes = 1 << 20;
  EXPECT_GT(cost.mpe_copy_time(bytes), 2.0 * cost.dma_time(bytes / 64, 64));
}

TEST(CostModelTest, ComputeTimeMatchesPeak) {
  CostModel cost;
  const double t = cost.compute_time(742.4e9, /*single_precision=*/false);
  EXPECT_NEAR(t, 1.0 / cost.params().kernel_efficiency, 1e-6);
}

TEST(CostModelTest, SinglePrecisionPaysConvertOverhead) {
  CostModel cost;
  EXPECT_GT(cost.compute_time(1e9, true), cost.compute_time(1e9, false));
}

TEST(CostModelTest, RlcBroadcastFasterThanP2p) {
  CostModel cost;
  EXPECT_LT(cost.rlc_time(1 << 20, true), cost.rlc_time(1 << 20, false));
}

TEST(LedgerTest, AddAccumulatesAllFields) {
  TrafficLedger a, b;
  a.dma_get_bytes = 10;
  a.flops = 5;
  a.elapsed_s = 1.0;
  b.dma_get_bytes = 3;
  b.dma_put_bytes = 7;
  b.rlc_bytes = 2;
  b.flops = 1;
  b.elapsed_s = 0.5;
  a.add(b);
  EXPECT_EQ(a.dma_get_bytes, 13u);
  EXPECT_EQ(a.dma_put_bytes, 7u);
  EXPECT_EQ(a.rlc_bytes, 2u);
  EXPECT_EQ(a.dma_bytes(), 20u);
  EXPECT_DOUBLE_EQ(a.flops, 6.0);
  EXPECT_DOUBLE_EQ(a.elapsed_s, 1.5);
}

TEST(LdmTest, AllocWithinCapacity) {
  Ldm ldm(64 * 1024);
  auto s1 = ldm.alloc(1024);
  auto s2 = ldm.alloc(1024);
  EXPECT_EQ(s1.size(), 1024u);
  EXPECT_NE(s1.data(), s2.data());
  EXPECT_EQ(ldm.used_bytes(), 2048u * sizeof(double));
}

TEST(LdmTest, OverflowThrows) {
  Ldm ldm(64 * 1024);
  ldm.alloc(64 * 1024 / sizeof(double));
  EXPECT_THROW(ldm.alloc(1), base::CheckError);
}

TEST(LdmTest, ResetReclaimsSpace) {
  Ldm ldm(64 * 1024);
  ldm.alloc(4000);
  ldm.reset();
  EXPECT_EQ(ldm.used_bytes(), 0u);
  EXPECT_NO_THROW(ldm.alloc(8000));
}

TEST(RlcTest, RowBroadcastReachesAllPeersInFifoOrder) {
  HwParams hp;
  RlcFabric rlc(hp);
  const std::vector<double> m1{1.0, 2.0}, m2{3.0};
  rlc.row_broadcast(2, 5, m1);
  rlc.row_broadcast(2, 5, m2);
  for (int c = 0; c < hp.mesh_cols; ++c) {
    if (c == 5) continue;
    EXPECT_EQ(rlc.receive_row(2, c), m1);
    EXPECT_EQ(rlc.receive_row(2, c), m2);
  }
  EXPECT_EQ(rlc.pending(), 0u);
}

TEST(RlcTest, ColBroadcastUsesColumnQueues) {
  HwParams hp;
  RlcFabric rlc(hp);
  rlc.col_broadcast(3, 1, std::vector<double>{9.0});
  EXPECT_EQ(rlc.receive_col(0, 1).at(0), 9.0);
  // The row queue of the same CPE stays empty.
  EXPECT_THROW(rlc.receive_row(0, 1), base::CheckError);
}

TEST(RlcTest, P2pRequiresSharedRowOrColumn) {
  HwParams hp;
  RlcFabric rlc(hp);
  EXPECT_NO_THROW(rlc.send(1, 1, 1, 7, std::vector<double>{1.0}));
  EXPECT_NO_THROW(rlc.send(1, 1, 6, 1, std::vector<double>{1.0}));
  // Diagonal communication is physically impossible on SW26010.
  EXPECT_THROW(rlc.send(1, 1, 2, 2, std::vector<double>{1.0}),
               base::CheckError);
}

TEST(RlcTest, ReceiveOnEmptyQueueThrows) {
  RlcFabric rlc{HwParams{}};
  EXPECT_THROW(rlc.receive_row(0, 0), base::CheckError);
}

TEST(RlcTest, LedgerCountsPerReceiverBytes) {
  HwParams hp;
  RlcFabric rlc(hp);
  rlc.row_broadcast(0, 0, std::vector<double>(4, 1.0));  // 32 B to 7 peers
  EXPECT_EQ(rlc.ledger().rlc_bytes, 7u * 32u);
}

TEST(RlcTest, InterleavedRowAndColumnStreamsStayOrdered) {
  // Stress: every CPE broadcasts on its row and its column in an
  // interleaved order; all 64*2 streams must arrive FIFO per queue.
  HwParams hp;
  RlcFabric rlc(hp);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < hp.mesh_rows; ++i) {
      rlc.row_broadcast(i, i % hp.mesh_cols,
                        std::vector<double>{static_cast<double>(round),
                                            static_cast<double>(i)});
      rlc.col_broadcast(i % hp.mesh_rows, i,
                        std::vector<double>{100.0 + round,
                                            static_cast<double>(i)});
    }
  }
  // Check one representative consumer per row/column.
  for (int i = 0; i < hp.mesh_rows; ++i) {
    const int consumer_col = (i % hp.mesh_cols + 1) % hp.mesh_cols;
    for (int round = 0; round < 3; ++round) {
      const auto m = rlc.receive_row(i, consumer_col);
      EXPECT_EQ(m[0], round);
      EXPECT_EQ(m[1], i);
    }
    const int consumer_row = (i % hp.mesh_rows + 1) % hp.mesh_rows;
    for (int round = 0; round < 3; ++round) {
      const auto m = rlc.receive_col(consumer_row, i);
      EXPECT_EQ(m[0], 100.0 + round);
      EXPECT_EQ(m[1], i);
    }
  }
  EXPECT_GT(rlc.pending(), 0u);  // other consumers never drained (allowed)
}

TEST(RlcTest, OutOfMeshCoordinatesThrow) {
  RlcFabric rlc{HwParams{}};
  EXPECT_THROW(rlc.row_broadcast(8, 0, std::vector<double>{1.0}),
               base::CheckError);
  EXPECT_THROW(rlc.receive_col(0, -1), base::CheckError);
  EXPECT_THROW(rlc.send(0, 0, 0, 8, std::vector<double>{1.0}),
               base::CheckError);
}

TEST(DmaTest, GetMovesDataAndCharges) {
  CostModel cost;
  DmaEngine dma(cost);
  std::vector<double> src{1, 2, 3, 4}, dst(4, 0.0);
  dma.get(src, dst, 1);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(dma.ledger().dma_get_bytes, 4 * sizeof(double));
  EXPECT_GT(dma.ledger().elapsed_s, 0.0);
}

TEST(DmaTest, StridedGatherAndScatterRoundTrip) {
  CostModel cost;
  DmaEngine dma(cost);
  // 3 blocks of 2 doubles, stride 4 in main memory.
  std::vector<double> mem(12);
  for (std::size_t i = 0; i < mem.size(); ++i) mem[i] = static_cast<double>(i);
  std::vector<double> ldm(6, 0.0);
  dma.get_strided(mem, 4, ldm, 2, 3, 1);
  EXPECT_EQ(ldm, (std::vector<double>{0, 1, 4, 5, 8, 9}));
  std::vector<double> back(12, -1.0);
  dma.put_strided(ldm, back, 4, 2, 3, 1);
  EXPECT_EQ(back[0], 0.0);
  EXPECT_EQ(back[5], 5.0);
  EXPECT_EQ(back[2], -1.0);  // gaps untouched
}

TEST(ChipTest, FourCoreGroupsWithPrivateResources) {
  Sw26010Chip chip;
  EXPECT_EQ(chip.num_core_groups(), 4);
  EXPECT_NEAR(chip.peak_flops(), 4 * 742.4e9, 1e6);
  chip.group(0).ldm(0, 0).alloc(100);
  EXPECT_EQ(chip.group(1).ldm(0, 0).used_bytes(), 0u);
}

TEST(ChipTest, ResetClearsLdms) {
  Sw26010Chip chip;
  auto& cg = chip.group(2);
  cg.ldm(7, 7).alloc(10);
  cg.reset();
  EXPECT_EQ(cg.ldm(7, 7).used_bytes(), 0u);
}

/// Parameterized sweep mirroring Fig. 2's measurement grid: bandwidth must
/// be monotone in CPE count for every size, and every (size, cpes) point
/// stays below the aggregate peak.
class DmaSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(DmaSweepTest, BandwidthWithinPhysicalEnvelope) {
  const auto [bytes, cpes] = GetParam();
  CostModel cost;
  const double bw = cost.dma_bandwidth(bytes, cpes);
  EXPECT_GT(bw, 0.0);
  EXPECT_LE(bw, cost.params().dma_peak_bw * (1.0 + 1e-9));
  EXPECT_LE(bw, cost.params().dma_per_cpe_bw * cpes * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Fig2Grid, DmaSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(128, 256, 512, 1024,
                                                      2048, 4096, 8192, 16384,
                                                      24576, 32768, 49152),
                       ::testing::Values(1, 8, 16, 32, 64)));

}  // namespace
}  // namespace swcaffe::hw
