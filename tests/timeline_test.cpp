// swsched: every timeline diagnostic fires on a deliberately broken
// schedule, stays silent on the schedules the stack actually ships
// (overlapped all-reduce at every bucket count, the serving simulator's own
// records, the default retry ladder, composed RHD collectives), and the
// analysis itself is pure — same graph, byte-identical report.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <algorithm>
#include <utility>
#include <vector>

#include "check/plan_model.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "check/timeline_io.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/request.h"
#include "topo/overlap.h"
#include "trace/json.h"

namespace swcaffe::check {
namespace {

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// A hand-laid two-bucket overlap schedule over two layers (bwd 1 s each,
/// forward 1 s, compute end at t = 3). Bucket 0 carries layer 1 (ready at
/// t = 2), bucket 1 carries layer 0 (ready at t = 3, the compute end).
topo::OverlapTimeline two_bucket_timeline() {
  topo::OverlapTimeline tl;
  topo::BucketTiming b0;
  b0.bucket = {1, 1, 60};
  b0.ready_s = 2.0;
  b0.start_s = 2.0;
  b0.end_s = 2.8;
  topo::BucketTiming b1;
  b1.bucket = {0, 0, 40};
  b1.ready_s = 3.0;
  b1.start_s = 3.0;
  b1.end_s = 3.7;
  tl.buckets = {b0, b1};
  tl.compute_s = 3.0;
  tl.finish_s = 3.7;
  return tl;
}

const std::vector<double> kTwoLayerBwd = {1.0, 1.0};

/// One admitted request riding one batch, with every field consistent.
void one_request_one_batch(double arrival_s, double launch_s, double finish_s,
                           std::vector<serve::RequestRecord>* requests,
                           std::vector<serve::BatchRecord>* batches) {
  serve::RequestRecord r;
  r.id = 0;
  r.arrival_s = arrival_s;
  r.admitted = true;
  r.batch = 0;
  r.launch_s = launch_s;
  r.finish_s = finish_s;
  serve::BatchRecord b;
  b.id = 0;
  b.size = 1;
  b.first_arrival_s = arrival_s;
  b.launch_s = launch_s;
  b.finish_s = finish_s;
  b.forward_s = finish_s - launch_s;
  requests->push_back(r);
  batches->push_back(b);
}

// ---------------------------------------------------------------------------
// Seeded-broken schedules: each diagnostic fires
// ---------------------------------------------------------------------------

TEST(TimelineBroken, CollectiveBeforeBackwardSliceFiresCausality) {
  // Bucket 0 needs layer 1's backward (done at t = 2) but starts at 1.5.
  // The producer edge is re-derived from layer indices, so the schedule's
  // own (lying) ready_s cannot hide the violation.
  topo::OverlapTimeline tl = two_bucket_timeline();
  tl.buckets[0].ready_s = 1.5;
  tl.buckets[0].start_s = 1.5;
  const Report report = verify_timeline(
      timeline_from_overlap("early-ar", kTwoLayerBwd, 3.0, tl));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineCausality));
}

TEST(TimelineBroken, DoubleBookedNetworkFiresOverlap) {
  // Bucket 1 starts at 3.5 — legal causally (its slice is done at 3.0) but
  // inside bucket 0's stretched collective [2, 4] on the exclusive link.
  topo::OverlapTimeline tl = two_bucket_timeline();
  tl.buckets[0].end_s = 4.0;
  tl.buckets[1].start_s = 3.5;
  tl.buckets[1].end_s = 4.5;
  tl.finish_s = 4.5;
  const Report report = verify_timeline(
      timeline_from_overlap("double-booked", kTwoLayerBwd, 3.0, tl));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineOverlap));
  EXPECT_FALSE(report.has(Code::kTimelineCausality));
}

TEST(TimelineBroken, ByteLosingBucketSplitFiresBytes) {
  // The buckets move 100 B but the packed-gradient ledger expects 128.
  const Report report = verify_timeline(timeline_from_overlap(
      "byte-loss", kTwoLayerBwd, 3.0, two_bucket_timeline(), 128));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineBytes));
  // With the matching ledger the same schedule conserves.
  EXPECT_TRUE(verify_timeline(timeline_from_overlap(
                  "byte-ok", kTwoLayerBwd, 3.0, two_bucket_timeline(), 100))
                  .empty());
}

TEST(TimelineBroken, RetryLadderPastTimeoutWarnsDeadline) {
  // Six attempts of 0.1 s plus geometric backoff cannot fit a 0.2 s
  // escalation timeout. Dead code, not corruption: a warning, and the
  // report still counts as ok().
  RetryPlan plan;
  plan.name = "slow-ladder";
  plan.max_attempts = 6;
  plan.round_time_s = 0.1;
  plan.backoff_base_s = 0.01;
  plan.timeout_s = 0.2;
  const Report report = verify_timeline(timeline_from_retry(plan, 2));
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.warning_count(), 0);
  EXPECT_TRUE(report.has(Code::kTimelineDeadline));
}

TEST(TimelineBroken, ServingSloMissFiresDeadline) {
  // Finish at t = 10 against an SLO of 1 s after a t = 0 arrival.
  std::vector<serve::RequestRecord> requests;
  std::vector<serve::BatchRecord> batches;
  one_request_one_batch(0.0, 0.5, 10.0, &requests, &batches);
  ServingContract contract;
  contract.slo_s = 1.0;
  contract.max_delay_s = 0.5;
  contract.max_batch = 1;
  contract.max_batch_forward_s = 1.0;
  const Report report = verify_timeline(
      timeline_from_serving("slo-miss", requests, batches, contract));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineDeadline));
}

TEST(TimelineBroken, ServingAdmissionBoundViolationFiresDeadline) {
  // The SLO itself is generous (100 s), but the re-derived admission bound
  // for an arrival at t = 0 with an empty queue is
  // max_delay + f(max_batch) = 1.5 s — a batch that idles until t = 5
  // finished later than any sound batcher could have promised.
  std::vector<serve::RequestRecord> requests;
  std::vector<serve::BatchRecord> batches;
  one_request_one_batch(0.0, 5.0, 6.0, &requests, &batches);
  ServingContract contract;
  contract.slo_s = 100.0;
  contract.max_delay_s = 0.5;
  contract.max_batch = 1;
  contract.max_batch_forward_s = 1.0;
  const Report report = verify_timeline(
      timeline_from_serving("lazy-batcher", requests, batches, contract));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineDeadline));
}

TEST(TimelineBroken, CrossPhaseCommCycleFiresCycle) {
  // Phase 0: both ranks post a receive. Phase 1: both ranks send. Each
  // phase alone is cycle-free (no matched pair completes a loop), but the
  // composition matches rank 1's send to rank 0's earlier receive and vice
  // versa: recv0 -> send0 -> recv1 -> send1 -> recv0. This is exactly the
  // deadlock the per-plan FIFO rule cannot see.
  CommSchedule recvs;
  recvs.name = "phase-recv";
  recvs.mesh = false;
  recvs.ops.push_back({CommOp::Kind::kRecvRow, 0, 0, -1, -1, 8});
  recvs.ops.push_back({CommOp::Kind::kRecvRow, 1, 0, -1, -1, 8});
  CommSchedule sends;
  sends.name = "phase-send";
  sends.mesh = false;
  sends.ops.push_back({CommOp::Kind::kSend, 0, 0, 1, 0, 8});
  sends.ops.push_back({CommOp::Kind::kSend, 1, 0, 0, 0, 8});
  const Report report =
      verify_timeline(timeline_from_comm("cross-phase", {recvs, sends}));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineCycle));
  // Reversed composition (send, then receive) is the sound ordering.
  EXPECT_TRUE(
      verify_timeline(timeline_from_comm("sound", {sends, recvs})).ok());
}

TEST(TimelineBroken, UnorderedWritesFireRace) {
  TimelineGraph g;
  g.name = "racy";
  const int a0 = g.add_actor("worker0");
  const int a1 = g.add_actor("worker1");
  TimelineEvent w0;
  w0.name = "store A";
  w0.actor = a0;
  w0.accesses.push_back({"params", true});
  TimelineEvent w1;
  w1.name = "store B";
  w1.actor = a1;
  w1.accesses.push_back({"params", true});
  const int e0 = g.add_event(w0);
  g.add_event(w1);
  const Report racy = verify_timeline(g);
  EXPECT_FALSE(racy.ok());
  EXPECT_TRUE(racy.has(Code::kTimelineRace));

  // One synchronization edge orders the writes and silences the pass.
  TimelineGraph ordered = g;
  ordered.add_edge(e0, 1, "handoff");
  EXPECT_TRUE(verify_timeline(ordered).ok());
}

TEST(TimelineBroken, MalformedGraphIsGeomInvalid) {
  TimelineGraph g;
  g.name = "malformed";
  g.add_actor("lane");
  TimelineEvent e;
  e.name = "backwards";
  e.start_s = 2.0;
  e.end_s = 1.0;  // end < start
  g.add_event(e);
  const Report report = verify_timeline(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kGeomInvalid));
}

// ---------------------------------------------------------------------------
// Shipped schedules stay silent
// ---------------------------------------------------------------------------

TEST(TimelineSilent, OverlapSilentAcrossAllBucketCounts) {
  // A VGG-ish tail-heavy layer mix under the alpha + bytes/bw cost model:
  // the real pipeline (make_buckets -> schedule_overlap -> extractor) must
  // verify silent for every shipped bucket count.
  const std::vector<std::int64_t> layer_bytes = {
      9'000'000, 2'400'000, 0, 590'000, 37'000'000, 0, 16'800'000, 4'100'000};
  std::vector<double> bwd(layer_bytes.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < layer_bytes.size(); ++i) {
    bwd[i] = 0.8e-3 + static_cast<double>(i % 3) * 0.4e-3;
    total += layer_bytes[i];
  }
  double compute = 0.0;
  for (double b : bwd) compute += b;
  compute *= 2.0;  // forward roughly mirrors backward
  const auto cost = [](std::int64_t bytes) {
    topo::CostBreakdown c;
    c.seconds = 1e-6 + static_cast<double>(bytes) / 12e9;
    c.alpha_terms = 1;
    return c;
  };
  for (int k = 1; k <= 8; ++k) {
    const std::vector<topo::GradientBucket> buckets =
        topo::make_buckets(layer_bytes, k);
    const topo::OverlapTimeline tl =
        topo::schedule_overlap(buckets, bwd, compute, cost);
    const Report report = verify_timeline(timeline_from_overlap(
        "overlap-k" + std::to_string(k), bwd, compute, tl, total));
    EXPECT_TRUE(report.empty()) << "k=" << k << ": " << report.summary();
  }
}

TEST(TimelineSilent, ServingSimulatorRecordsVerifySilent) {
  // The batcher already self-verifies (a failure would throw from
  // simulate_serving); re-extracting here additionally pins that the
  // records stay silent under a saturating deterministic load.
  const hw::CostModel cost;
  const serve::EngineOptions eopts{.max_batch = 4};
  const serve::InferenceEngine engine(
      cost, "alexnet-small",
      [](int b) { return core::alexnet_bn(b, 10, 67, false); }, eopts);
  const double f1 = engine.batch_time(1);
  std::vector<double> arrivals;
  for (int i = 0; i < 40; ++i) {
    arrivals.push_back(static_cast<double>(i) * 0.6 * f1);
  }
  serve::ServeOptions opts;
  opts.batcher.max_batch = 4;
  opts.batcher.max_delay_s = 0.5 * f1;
  opts.admission.enabled = true;
  opts.admission.slo_s = 20.0 * f1;
  const serve::ServeResult res = simulate_serving(engine, arrivals, opts);
  EXPECT_GT(res.admitted, 0);
  ServingContract contract;
  contract.slo_s = opts.admission.slo_s;
  contract.max_delay_s = opts.batcher.max_delay_s;
  contract.max_batch = opts.batcher.max_batch;
  contract.max_batch_forward_s = engine.batch_time(4);
  const Report report = verify_timeline(
      timeline_from_serving("serve", res.requests, res.batches, contract));
  EXPECT_TRUE(report.empty()) << report.summary();
}

TEST(TimelineSilent, DefaultRetryLadderVerifiesSilent) {
  // swfault's default policy: 6 attempts, 20 us backoff base, 0.5 s
  // escalation timeout — the ladder fits with slack for eager-sized rounds.
  RetryPlan plan;
  plan.name = "defaults";
  plan.max_attempts = 6;
  plan.backoff_base_s = 20e-6;
  plan.timeout_s = 0.5;
  plan.round_bytes = 2048;
  plan.round_time_s = 1.5e-6 + 2048.0 / 12e9;
  EXPECT_TRUE(verify_timeline(timeline_from_retry(plan, 3)).empty());
}

TEST(TimelineSilent, ComposedRhdPhasesVerifySilent) {
  // Four per-bucket RHD collectives run back to back — the composition the
  // bucketed trainer actually executes — must stay cycle- and race-free.
  std::vector<CommSchedule> phases;
  for (int bucket = 0; bucket < 4; ++bucket) {
    phases.push_back(rhd_allreduce_schedule(8));
  }
  EXPECT_TRUE(verify_timeline(timeline_from_comm("rhd-x4", phases)).ok());
}

TEST(TimelineSilent, ComposedHierarchicalPhasesVerifySilent) {
  // The three-phase hierarchical decomposition (supernode-local
  // reduce-scatter -> inter-supernode RHD -> local all-gather) composed
  // through timeline_from_comm: the phase ordering must be race- and
  // cycle-free for engaging geometries, clean and ragged alike.
  for (auto [nodes, q] : {std::pair{16, 4}, {24, 8}, {1024, 256}}) {
    const std::vector<CommSchedule> phases =
        hierarchical_allreduce_phases(nodes, q);
    ASSERT_EQ(phases.size(), 3u) << nodes << "/" << q;
    const Report report =
        verify_timeline(timeline_from_comm("hier-comm", phases));
    EXPECT_TRUE(report.ok()) << nodes << "/" << q << ": " << report.summary();
  }
}

TEST(TimelineBroken, ReversedHierarchicalPhaseOrderFiresCycle) {
  // Reversing the op order inside the inter-supernode phase turns every
  // send-then-receive exchange into receive-then-send on BOTH partners of
  // each RHD step: mutual recv-before-send is a happens-before cycle the
  // composed timeline must reject (each op alone is still well-formed).
  std::vector<CommSchedule> phases = hierarchical_allreduce_phases(16, 4);
  std::reverse(phases[1].ops.begin(), phases[1].ops.end());
  const Report report =
      verify_timeline(timeline_from_comm("hier-reversed", phases));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineCycle)) << report.summary();
}

TEST(TimelineSilent, ErrorFeedbackResidualCarryVerifiesSilent) {
  // Three compressed iterations over two buckets: residual writes are
  // ordered by the explicit per-bucket carry edges and the wire ledger
  // conserves iters * sum(bucket bytes).
  const Report report = verify_timeline(
      timeline_from_ef("ef-carry", 3, {1 << 16, 3 << 14}));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TimelineBroken, StrippedResidualCarryEdgesFireRace) {
  // Without the carry edges, iteration t and t+1 both write residual<b>
  // with no happens-before: exactly the race a trainer that parallelized
  // iterations over the shared residual buffers would introduce.
  TimelineGraph g = timeline_from_ef("ef-stripped", 3, {1 << 16, 3 << 14});
  std::vector<TimelineEdge> kept;
  for (const TimelineEdge& e : g.edges) {
    if (e.why != "residual carry") kept.push_back(e);
  }
  ASSERT_LT(kept.size(), g.edges.size());  // the extractor did emit them
  g.edges = std::move(kept);
  const Report report = verify_timeline(g);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::kTimelineRace)) << report.summary();
}

// ---------------------------------------------------------------------------
// Purity and JSON round-trip
// ---------------------------------------------------------------------------

TEST(TimelineInfra, AnalysisIsPureByteIdentical) {
  topo::OverlapTimeline tl = two_bucket_timeline();
  tl.buckets[0].start_s = 1.0;  // broken: diagnostics exercise the printer
  const TimelineGraph g =
      timeline_from_overlap("pure", kTwoLayerBwd, 3.0, tl, 77);
  std::ostringstream first, second;
  verify_timeline(g).print(first);
  verify_timeline(g).print(second);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(timeline_to_json(g), timeline_to_json(g));
}

TEST(TimelineInfra, JsonRoundTripIsByteIdentical) {
  std::vector<TimelineGraph> graphs;
  graphs.push_back(timeline_from_overlap("rt-overlap", kTwoLayerBwd, 3.0,
                                         two_bucket_timeline(), 100));
  RetryPlan plan;
  plan.name = "rt-retry";
  plan.max_attempts = 3;
  plan.backoff_base_s = 1e-5;
  plan.round_time_s = 1e-4;
  plan.timeout_s = 0.25;
  graphs.push_back(timeline_from_retry(plan, 2, 0.125));
  const std::string exported = timelines_to_json(graphs);
  std::vector<TimelineGraph> reloaded;
  std::string error;
  ASSERT_TRUE(timelines_from_json(exported, &reloaded, &error)) << error;
  ASSERT_EQ(reloaded.size(), graphs.size());
  EXPECT_EQ(timelines_to_json(reloaded), exported);
  // The reloaded graphs carry the same verdicts as the originals.
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    std::ostringstream a, b;
    verify_timeline(graphs[i]).print(a);
    verify_timeline(reloaded[i]).print(b);
    EXPECT_EQ(a.str(), b.str());
  }
}

TEST(TimelineInfra, JsonParseFailureReportsOffset) {
  TimelineGraph g;
  std::string error;
  EXPECT_FALSE(timeline_from_json("{\"name\": }", &g, &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
  EXPECT_FALSE(timeline_from_json("[1, 2", &g, &error));
  std::vector<TimelineGraph> graphs;
  EXPECT_FALSE(timelines_from_json("nope", &graphs, &error));
}

}  // namespace
}  // namespace swcaffe::check
