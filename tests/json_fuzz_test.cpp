// Fuzz harness for the trace/json parser and the swsched timeline importer.
//
// Seeded, deterministic fuzzing (no libFuzzer dependency — the container
// bakes none): valid timeline exports are mutated byte-by-byte, truncated,
// spliced and drowned in garbage, and every variant is fed to parse_json /
// timeline_from_json. The contract under test is crash-freedom: the parsers
// may reject (return false) anything, but must never crash, hang, leak or
// trip ASan/UBSan — CI runs this binary under both sanitizers in the
// asan-ubsan job. Failures reproduce from the printed (seed, case) pair.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/plan_model.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "check/timeline_io.h"
#include "check/verify.h"
#include "proptest.h"
#include "trace/json.h"

namespace swcaffe {
namespace {

using proptest::Rng;
using proptest::for_all;

/// One valid timeline export to seed the mutations: a small comm-phase
/// composition, exactly what swcaffe_check --export-timeline writes.
std::string seed_document() {
  const std::vector<check::CommSchedule> phases =
      check::hierarchical_allreduce_phases(16, 4);
  const check::TimelineGraph graph =
      check::timeline_from_comm("fuzz-seed", phases);
  return check::timeline_to_json(graph);
}

/// The parse must either succeed or fail cleanly; on success the DOM must
/// be walkable without tripping anything.
void expect_no_crash(const std::string& text) {
  trace::JsonValue value;
  std::string error;
  if (trace::parse_json(text, &value, &error)) {
    // Walk the DOM: every accessor on every node must be safe.
    std::vector<const trace::JsonValue*> stack = {&value};
    std::size_t visited = 0;
    while (!stack.empty() && visited < 100000) {
      const trace::JsonValue* v = stack.back();
      stack.pop_back();
      ++visited;
      v->as_bool();
      v->as_double();
      v->as_int();
      v->as_string();
      for (const auto& item : v->items()) stack.push_back(&item);
      for (const auto& [key, member] : v->members()) stack.push_back(&member);
    }
  } else {
    EXPECT_FALSE(error.empty());
  }
  check::TimelineGraph graph;
  (void)check::timeline_from_json(text, &graph);
  std::vector<check::TimelineGraph> graphs;
  (void)check::timelines_from_json(text, &graphs);
}

TEST(JsonFuzzTest, SeedDocumentParses) {
  const std::string doc = seed_document();
  trace::JsonValue value;
  std::string error;
  ASSERT_TRUE(trace::parse_json(doc, &value, &error)) << error;
  check::TimelineGraph graph;
  ASSERT_TRUE(check::timeline_from_json(doc, &graph, &error)) << error;
  EXPECT_FALSE(graph.events.empty());
  // Round trip is byte-identical (the writer is deterministic).
  EXPECT_EQ(check::timeline_to_json(graph), doc);
}

TEST(JsonFuzzTest, SingleByteMutations) {
  const std::string doc = seed_document();
  for_all(0xF022ULL, 300, [&](Rng& rng, int) {
    std::string mutated = doc;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(rng.next_below(256));
    }
    expect_no_crash(mutated);
  });
}

TEST(JsonFuzzTest, Truncations) {
  const std::string doc = seed_document();
  for_all(0x7A7CULL, 200, [&](Rng& rng, int) {
    expect_no_crash(doc.substr(0, rng.next_below(doc.size() + 1)));
  });
}

TEST(JsonFuzzTest, Splices) {
  // Random substrings glued together: structurally plausible fragments in
  // implausible orders.
  const std::string doc = seed_document();
  for_all(0x5B11CEULL, 200, [&](Rng& rng, int) {
    std::string spliced;
    const int pieces = 2 + static_cast<int>(rng.next_below(4));
    for (int p = 0; p < pieces; ++p) {
      const std::size_t a = rng.next_below(doc.size());
      const std::size_t b = a + rng.next_below(doc.size() - a + 1);
      spliced += doc.substr(a, b - a);
    }
    expect_no_crash(spliced);
  });
}

TEST(JsonFuzzTest, RandomGarbage) {
  for_all(0x6A4BULL, 300, [](Rng& rng, int) {
    std::string garbage(rng.next_below(512), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next_below(256));
    expect_no_crash(garbage);
  });
}

TEST(JsonFuzzTest, StructuredGarbage) {
  // Garbage drawn from JSON's own alphabet — much likelier to get deep into
  // the grammar than uniform bytes.
  static const char kAlphabet[] = "{}[]\",:0123456789.eE+-truefalsn \n\t\\u";
  for_all(0x57A6ULL, 500, [](Rng& rng, int) {
    std::string text(rng.next_below(256), ' ');
    for (auto& c : text) {
      c = kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)];
    }
    expect_no_crash(text);
  });
}

TEST(JsonFuzzTest, DeepNestingDoesNotOverflowTheStack) {
  // A recursive-descent parser must bound (or survive) adversarial nesting
  // depth; 100k levels would smash an unguarded stack long before ASan
  // could say anything polite about it.
  for (const char open : {'[', '{'}) {
    for (std::size_t depth : {64u, 1024u, 100000u}) {
      std::string text(depth, open);
      expect_no_crash(text);
      // Balanced variant too (failure can't hide behind "unexpected EOF").
      std::string balanced = std::string(depth, '[');
      balanced += std::string(depth, ']');
      expect_no_crash(balanced);
    }
  }
}

TEST(JsonFuzzTest, NumberEdgeCases) {
  for (const char* text :
       {"1e999", "-1e999", "1e-999", "0.00000000000000000000001",
        "9223372036854775807", "9223372036854775808", "-9223372036854775808",
        "-9223372036854775809", "1E+308", "2E+308", "0", "-0", "1e",
        "1e+", ".5", "01", "+1", "--1", "0x10", "NaN", "Infinity",
        "184467440737095516150", "1.7976931348623157e308"}) {
    expect_no_crash(text);
  }
}

TEST(JsonFuzzTest, StringEdgeCases) {
  for (const std::string& text :
       {std::string("\"\\u0000\""), std::string("\"\\ud800\""),
        std::string("\"\\udfff\\udfff\""), std::string("\"\\ud83d\\ude00\""),
        std::string("\"\\"), std::string("\"\\x41\""),
        std::string("\"\\u00\""), std::string("\"unterminated"),
        std::string("\"\x80\xff\x01\""),
        std::string("\"a\0b\"", 5)}) {
    expect_no_crash(text);
  }
}

TEST(JsonFuzzTest, MutatedTimelinesThatParseStillVerifySafely) {
  // When a mutation survives the JSON grammar, the resulting timeline
  // graph — possibly with out-of-range indices or absurd values — must be
  // safe to run through the checker (which reports diagnostics, never
  // crashes).
  const std::string doc = seed_document();
  int checked = 0;
  for_all(0xC4ECULL, 400, [&](Rng& rng, int) {
    std::string mutated = doc;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(rng.next_below(128));
    check::TimelineGraph graph;
    if (check::timeline_from_json(mutated, &graph)) {
      (void)check::verify_timeline(graph);
      ++checked;
    }
  });
  // Single-byte mutations over hundreds of tries must sometimes still
  // parse (e.g. a digit flip) — otherwise this test is vacuous.
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace swcaffe
