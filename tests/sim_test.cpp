// swsim: discrete-event engine, busy-interval resource, shared event
// vocabulary, timing-only SSGD fast path and its bit-identity to the
// functional trainer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "base/log.h"
#include "base/rng.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "core/models.h"
#include "fixtures.h"
#include "hw/cost_model.h"
#include "hw/dma.h"
#include "hw/rlc.h"
#include "parallel/ssgd.h"
#include "parallel/sweep.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "sim/resource.h"
#include "sim/thread_pool.h"

namespace swcaffe::sim {
namespace {

// ---------------------------------------------------------------------------
// Resource (busy intervals) — pins migrated verbatim from the old
// topo::BusyResource tests when the primitive was hoisted into swsim.
// ---------------------------------------------------------------------------

TEST(ResourceTest, ZeroDurationItemsReserveNothing) {
  // A zero-duration item starts where it lands but moves neither the busy
  // frontier nor the utilization accumulator; later work is unaffected.
  Resource busy;
  EXPECT_EQ(busy.serve(1.0, 0.0), 1.0);
  EXPECT_EQ(busy.busy_until(), 1.0);
  EXPECT_EQ(busy.busy_s(), 0.0);
  EXPECT_EQ(busy.serve(0.5, 2.0), 1.0);  // queues behind the point item
  EXPECT_EQ(busy.busy_until(), 3.0);
  EXPECT_EQ(busy.busy_s(), 2.0);
}

TEST(ResourceTest, ExactFrontierArrivalStartsImmediately) {
  // An item ready exactly at the frontier neither waits nor overlaps: the
  // tie resolves to back-to-back service with zero idle gap.
  Resource busy;
  EXPECT_EQ(busy.serve(0.0, 1.5), 0.0);
  EXPECT_EQ(busy.serve(1.5, 0.5), 1.5);
  EXPECT_EQ(busy.busy_until(), 2.0);
  EXPECT_EQ(busy.busy_s(), 2.0);
}

TEST(ResourceTest, NonMonotoneReadyTimesStillSerialize) {
  // Ready times may arrive out of order (bucket k+1 of a skewed split can
  // be ready before bucket k is served). Service stays FIFO in call order:
  // an early-ready item queues behind the frontier, and a late-ready item
  // opens an idle gap rather than sliding in front of prior work.
  Resource busy;
  EXPECT_EQ(busy.serve(5.0, 1.0), 5.0);
  EXPECT_EQ(busy.serve(2.0, 1.0), 6.0);  // ready long ago: queues, no rewind
  EXPECT_EQ(busy.serve(10.0, 1.0), 10.0);  // late: idle gap [7, 10]
  EXPECT_EQ(busy.busy_until(), 11.0);
  EXPECT_EQ(busy.busy_s(), 3.0);
}

TEST(ResourceTest, NegativeDurationIsRejected) {
  // A negative duration would rewind the frontier and let the next item
  // overlap already-granted service; the contract forbids it outright.
  Resource busy;
  busy.serve(0.0, 1.0);
  EXPECT_THROW(busy.serve(0.0, -0.5), base::CheckError);
  EXPECT_EQ(busy.busy_until(), 1.0);  // the failed call left no trace
}

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

TEST(EventLogTest, AssignsSeqInRecordOrder) {
  EventLog log;
  EXPECT_TRUE(log.empty());
  log.charge(0, 1.0, 0.5, 100, "a");
  log.charge(1, 0.0, 0.25, 200, "b");
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].seq, 0u);
  EXPECT_EQ(log.events()[1].seq, 1u);
  EXPECT_EQ(log.events()[0].kind, EventKind::kCharge);
  EXPECT_EQ(log.events()[1].bytes, 200);
  log.clear();
  EXPECT_TRUE(log.empty());
  log.charge(0, 0.0, 0.0, 0, "c");
  EXPECT_EQ(log.events()[0].seq, 0u);  // seq restarts after clear
}

TEST(EventLogTest, NegativeDurationIsRejected) {
  EventLog log;
  Event e;
  e.duration_s = -1e-9;
  EXPECT_THROW(log.record(e), base::CheckError);
  EXPECT_TRUE(log.empty());
}

TEST(EventOrderTest, TotalOrderIsTimeActorSeq) {
  // The documented total order of the shared vocabulary, pinned: earlier
  // time first; at equal times the lower actor id; at equal (time, actor)
  // the earlier-recorded event.
  Event early;
  early.time_s = 0.5;
  early.actor = 7;
  early.seq = 9;
  Event low_actor;
  low_actor.time_s = 1.0;
  low_actor.actor = 0;
  low_actor.seq = 5;
  Event high_actor;
  high_actor.time_s = 1.0;
  high_actor.actor = 3;
  high_actor.seq = 1;
  Event high_actor_later;
  high_actor_later.time_s = 1.0;
  high_actor_later.actor = 3;
  high_actor_later.seq = 2;
  EXPECT_TRUE(event_before(early, low_actor));       // time wins
  EXPECT_TRUE(event_before(low_actor, high_actor));  // then actor, not seq
  EXPECT_TRUE(event_before(high_actor, high_actor_later));  // then seq
  EXPECT_FALSE(event_before(high_actor_later, high_actor));
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

TEST(EngineTest, EmptyRunIsANoOp) {
  Engine e;
  e.run();
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.events_processed(), 0);
  EXPECT_TRUE(e.log().empty());
}

TEST(EngineTest, SingleEventFiresAtItsTime) {
  Engine e;
  const int a = e.add_actor("a");
  double fired_at = -1.0;
  e.post(2.5, a, "only", [&](Engine& eng) { fired_at = eng.now(); });
  e.run();
  EXPECT_EQ(fired_at, 2.5);
  EXPECT_EQ(e.now(), 2.5);
  EXPECT_EQ(e.events_processed(), 1);
}

TEST(EngineTest, SimultaneousEventsFireInDocumentedOrder) {
  // Four events, three at one instant, posted in scrambled order: the
  // engine must fire them in the vocabulary's (time, actor, seq) order —
  // NOT posting order across actors, and NOT heap-pop luck.
  Engine e;
  const int a0 = e.add_actor("a0");
  const int a1 = e.add_actor("a1");
  std::vector<std::string> fired;
  e.post(1.0, a1, "x", [&](Engine&) { fired.push_back("t1.a1.first"); });
  e.post(1.0, a0, "x", [&](Engine&) { fired.push_back("t1.a0"); });
  e.post(0.5, a1, "x", [&](Engine&) { fired.push_back("t0.5.a1"); });
  e.post(1.0, a1, "x", [&](Engine&) { fired.push_back("t1.a1.second"); });
  e.run();
  const std::vector<std::string> want = {"t0.5.a1", "t1.a0", "t1.a1.first",
                                         "t1.a1.second"};
  EXPECT_EQ(fired, want);
}

TEST(EngineTest, CancelledEventNeverFires) {
  Engine e;
  const int a = e.add_actor("a");
  bool fired = false;
  const std::uint64_t id =
      e.post(1.0, a, "doomed", [&](Engine&) { fired = true; });
  int late = 0;
  e.post(2.0, a, "after", [&](Engine&) { ++late; });
  e.cancel(id);
  e.cancel(id);     // double-cancel is a no-op
  e.cancel(12345);  // unknown id is a no-op
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(late, 1);
  // A cancelled event is skipped, not processed.
  EXPECT_EQ(e.events_processed(), 1);
}

TEST(EngineTest, PostingIntoThePastThrows) {
  {
    Engine e;
    const int a = e.add_actor("a");
    EXPECT_THROW(e.post(-0.1, a, "past", [](Engine&) {}), base::CheckError);
  }
  {
    Engine e;
    const int a = e.add_actor("a");
    e.post(1.0, a, "go", [a](Engine& eng) {
      eng.post(0.5, a, "past", [](Engine&) {});  // now = 1.0: time travel
    });
    EXPECT_THROW(e.run(), base::CheckError);
  }
}

TEST(EngineTest, HandlerMayPostFollowUpEvents) {
  Engine e;
  const int a = e.add_actor("a");
  std::vector<double> times;
  e.post(1.0, a, "first", [&](Engine& eng) {
    times.push_back(eng.now());
    eng.post(3.0, 0, "second", [&](Engine& eng2) {
      times.push_back(eng2.now());
    });
  });
  e.run();
  const std::vector<double> want = {1.0, 3.0};
  EXPECT_EQ(times, want);
  EXPECT_EQ(e.events_processed(), 2);
}

TEST(EngineTest, AcquireAppliesBusyIntervalsAndLogsCharges) {
  Engine e;
  const int a = e.add_actor("a");
  const int r = e.add_resource("net");
  e.post(0.0, a, "go", [&](Engine& eng) {
    EXPECT_EQ(eng.acquire(r, a, 0.5, 1.0, "c1", 100), 0.5);
    // Ready before the frontier: queues behind c1.
    EXPECT_EQ(eng.acquire(r, a, 0.0, 2.0, "c2", 200), 1.5);
  });
  e.record_span(a, 0.0, 4.0, "compute");
  e.run();
  EXPECT_EQ(e.resource(r).busy_until(), 3.5);
  EXPECT_EQ(e.resource(r).busy_s(), 3.0);
  ASSERT_EQ(e.log().events().size(), 3u);
  const Event& span = e.log().events()[0];
  EXPECT_EQ(span.kind, EventKind::kSpan);
  EXPECT_EQ(span.resource, -1);
  const Event& c1 = e.log().events()[1];
  EXPECT_EQ(c1.time_s, 0.5);
  EXPECT_EQ(c1.end_s(), 1.5);
  EXPECT_EQ(c1.resource, r);
  EXPECT_EQ(c1.bytes, 100);
  EXPECT_EQ(c1.kind, EventKind::kCharge);
  const Event& c2 = e.log().events()[2];
  EXPECT_EQ(c2.time_s, 1.5);
  EXPECT_EQ(c2.bytes, 200);
}

// ---------------------------------------------------------------------------
// simulate_actors
// ---------------------------------------------------------------------------

TEST(SimulateActorsTest, RunsEveryBodyExactlyOnceAtAnyThreadCount) {
  for (const int threads : {1, 2, 8}) {
    for (const int count : {0, 1, 7, 32}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
      simulate_actors(count, threads, [&](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < count; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// timeline_from_events / timeline_from_sim
// ---------------------------------------------------------------------------

TEST(TimelineFromEventsTest, EngineRunVerifiesSilent) {
  Engine e;
  const int compute = e.add_actor("compute");
  const int net_actor = e.add_actor("network");
  const int net = e.add_resource("network");
  e.record_span(compute, 0.0, 2.0, "compute.fwd_bwd");
  e.post(0.5, net_actor, "b0", [&](Engine& eng) {
    eng.acquire(net, net_actor, eng.now(), 1.0, "comm.allreduce", 64);
  });
  e.post(1.0, net_actor, "b1", [&](Engine& eng) {
    eng.acquire(net, net_actor, eng.now(), 1.0, "comm.allreduce", 64);
  });
  e.run();
  const check::TimelineGraph g = check::timeline_from_sim("sim-run", e);
  EXPECT_EQ(g.actors.size(), 2u);
  ASSERT_EQ(g.resources.size(), 1u);
  EXPECT_EQ(g.resources[0].name, "network");
  ASSERT_EQ(g.events.size(), 3u);
  const check::Report report = check::verify_timeline(g);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TimelineFromEventsTest, SeededOverlapIsCaught) {
  // Hand-build a log whose two charges double-book the exclusive resource;
  // the extracted timeline must fail verification (timeline-overlap), which
  // is what makes "extract straight from the engine" a real check and not a
  // formality.
  EventLog log;
  Event a;
  a.time_s = 0.0;
  a.duration_s = 2.0;
  a.actor = 0;
  a.resource = 0;
  a.name = "c1";
  log.record(a);
  Event b;
  b.time_s = 1.0;  // intersects [0, 2]
  b.duration_s = 2.0;
  b.actor = 0;
  b.resource = 0;
  b.name = "c2";
  log.record(b);
  const check::TimelineGraph g =
      check::timeline_from_events("seeded-overlap", {"a"}, {"net"}, log);
  const check::Report report = check::verify_timeline(g);
  EXPECT_FALSE(report.ok());
}

TEST(TimelineFromEventsTest, LaysEventsOutInDocumentedOrder) {
  // Recorded out of order (later charge first): the extractor must re-sort
  // into (time, actor, seq) so each actor's program order is its time order.
  EventLog log;
  log.charge(0, 5.0, 1.0, 0, "late");
  log.charge(0, 1.0, 1.0, 0, "early");
  const check::TimelineGraph g =
      check::timeline_from_events("order", {"a"}, {}, log);
  ASSERT_EQ(g.events.size(), 2u);
  EXPECT_EQ(g.events[0].name, "early");
  EXPECT_EQ(g.events[1].name, "late");
}

// ---------------------------------------------------------------------------
// Cost-model event log (hw charge sites)
// ---------------------------------------------------------------------------

TEST(CostModelEventLogTest, DmaChargesLandInTheLogOnTheElapsedClock) {
  hw::CostModel cost;
  EventLog log;
  hw::DmaEngine dma(cost);
  std::vector<double> src(256, 1.0), dst(256, 0.0);

  // First transfer BEFORE the log attaches: charged but not recorded —
  // attaching a log is observational, never retroactive.
  dma.get(src, dst, 8);
  const double first_elapsed = dma.ledger().elapsed_s;
  EXPECT_TRUE(log.empty());

  hw::CostModel logged_cost;
  logged_cost.set_event_log(&log, 3);
  hw::DmaEngine dma2(logged_cost);
  dma2.get(src, dst, 8);
  dma2.put(src, dst, 8);
  ASSERT_EQ(log.events().size(), 2u);
  const Event& get = log.events()[0];
  EXPECT_EQ(get.name, "dma.get");
  EXPECT_EQ(get.actor, 3);
  EXPECT_EQ(get.time_s, 0.0);  // stamped at the engine's elapsed clock
  EXPECT_EQ(get.duration_s, first_elapsed);  // same transfer, same price
  EXPECT_EQ(get.bytes, static_cast<std::int64_t>(256 * sizeof(double)));
  const Event& put = log.events()[1];
  EXPECT_EQ(put.name, "dma.put");
  EXPECT_EQ(put.time_s, get.end_s());  // back to back on the ledger clock
  // The pair reconstructs the ledger exactly.
  EXPECT_EQ(put.end_s(), dma2.ledger().elapsed_s);
  // And the extracted timeline of real hardware charges verifies silent.
  const check::Report report = check::verify_timeline(check::timeline_from_events(
      "dma-charges", {"cg0", "cg1", "cg2", "cg3"}, {}, log));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CostModelEventLogTest, RlcChargesLandInTheLog) {
  hw::RlcFabric rlc{hw::HwParams{}};
  EventLog log;
  rlc.set_event_log(&log, 1);
  std::vector<double> data(32, 1.0);
  rlc.row_broadcast(0, 0, data);
  rlc.send(0, 1, 0, 3, data);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].name, "rlc.row_broadcast");
  EXPECT_EQ(log.events()[0].actor, 1);
  EXPECT_EQ(log.events()[1].name, "rlc.send");
  EXPECT_EQ(log.events()[1].time_s, log.events()[0].end_s());
  EXPECT_EQ(log.events()[1].end_s(), rlc.ledger().elapsed_s);
  for (int c = 1; c < 8; ++c) (void)rlc.receive_row(0, c);
  (void)rlc.receive_row(0, 3);
}

}  // namespace
}  // namespace swcaffe::sim

// ---------------------------------------------------------------------------
// Timing-only SSGD fast path
// ---------------------------------------------------------------------------

namespace swcaffe::parallel {
namespace {

core::NetSpec mlp(int batch, int in_dim, int hidden, int classes) {
  core::NetSpec net;
  net.name = "mlp";
  net.inputs.push_back({"data", {batch, in_dim}});
  net.inputs.push_back({"label", {batch}});
  net.layers.push_back(core::ip_spec("fc1", "data", "h", hidden));
  net.layers.push_back(core::relu_spec("relu1", "h", "h_out"));
  net.layers.push_back(core::ip_spec("fc2", "h_out", "scores", classes));
  net.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

void random_batch(std::vector<float>& data, std::vector<float>& labels,
                  int batch, int dim, int classes, base::Rng& rng) {
  data.resize(static_cast<std::size_t>(batch) * dim);
  labels.resize(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    const int cls = static_cast<int>(rng.uniform_int(0, classes - 1));
    labels[static_cast<std::size_t>(b)] = static_cast<float>(cls);
    for (int i = 0; i < dim; ++i) {
      data[static_cast<std::size_t>(b * dim + i)] =
          (cls == 0 ? -0.5f : 0.5f) + rng.gaussian(0.0f, 0.3f);
    }
  }
}

void expect_same_cost(const topo::CostBreakdown& a,
                      const topo::CostBreakdown& b) {
  EXPECT_EQ(a.seconds, b.seconds);  // bitwise, not NEAR
  EXPECT_EQ(a.alpha_terms, b.alpha_terms);
  EXPECT_EQ(a.beta1_bytes, b.beta1_bytes);
  EXPECT_EQ(a.beta2_bytes, b.beta2_bytes);
  EXPECT_EQ(a.gamma_bytes, b.gamma_bytes);
}

struct TimingOnlyCase {
  AllreduceAlgo algo;
  topo::Compression compression;
  int buckets;
};

class TimingOnlyEqualityTest
    : public ::testing::TestWithParam<TimingOnlyCase> {};

TEST_P(TimingOnlyEqualityTest, PricedCommMatchesFunctionalStepBitwise) {
  // The acceptance bit-identity at trainer level: a timing-only trainer's
  // priced serial comm must equal — bit for bit — what the functional
  // trainer charges for one step() over real float gradients, for every
  // algorithm / compression / bucket combination.
  const TimingOnlyCase c = GetParam();
  SsgdOptions opt;
  opt.algo = c.algo;
  opt.compression = c.compression;
  opt.buckets = c.buckets;
  opt.supernode_size = 2;
  const int nodes = 4, sub_batch = 2, dim = 5, classes = 2;
  core::SolverSpec solver;
  solver.base_lr = 0.05f;
  const core::NetSpec spec = mlp(sub_batch, dim, 6, classes);

  SsgdTrainer functional(spec, nodes, solver, opt, 3);
  base::Rng rng(4);
  std::vector<float> data, labels;
  random_batch(data, labels, nodes * sub_batch, dim, classes, rng);
  functional.step(data, labels);

  SsgdOptions topt = opt;
  topt.timing_only = true;
  SsgdTrainer timing(spec, nodes, solver, topt, 3);
  const hw::CostModel cost;
  const TimedIteration it =
      timing.price_iteration(cost, core::describe_net_spec(spec));

  expect_same_cost(it.comm, functional.last_comm());
  ASSERT_EQ(timing.num_buckets(), functional.num_buckets());
  // price_iteration() works on the functional trainer too (both modes).
  const TimedIteration fit =
      functional.price_iteration(cost, core::describe_net_spec(spec));
  expect_same_cost(fit.comm, it.comm);
  EXPECT_EQ(fit.overlap.finish_s, it.overlap.finish_s);
  EXPECT_EQ(it.serial_s, it.comp_s + it.comm.seconds);
  if (timing.num_buckets() == 1) {
    // Degenerate contract: one bucket reproduces the serial model exactly.
    EXPECT_EQ(it.overlap.finish_s, it.serial_s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndCodecs, TimingOnlyEqualityTest,
    ::testing::Values(
        TimingOnlyCase{AllreduceAlgo::kRhdRoundRobin,
                       topo::Compression::kNone, 1},
        TimingOnlyCase{AllreduceAlgo::kRhdAdjacent, topo::Compression::kNone,
                       3},
        TimingOnlyCase{AllreduceAlgo::kRing, topo::Compression::kNone, 2},
        TimingOnlyCase{AllreduceAlgo::kParamServer, topo::Compression::kNone,
                       1},
        TimingOnlyCase{AllreduceAlgo::kHierarchical,
                       topo::Compression::kNone, 2},
        TimingOnlyCase{AllreduceAlgo::kRhdRoundRobin,
                       topo::Compression::kFp16, 2},
        TimingOnlyCase{AllreduceAlgo::kHierarchical,
                       topo::Compression::kInt8, 3}));

TEST(TimingOnlyTrainerTest, FunctionalPhasesThrowAndPrototypeIsSingle) {
  SsgdOptions opt;
  opt.timing_only = true;
  opt.threads = 8;  // replica pool is pointless without replicas: not built
  const int nodes = 1024;
  const core::NetSpec spec = mlp(2, 5, 6, 2);
  SsgdTrainer trainer(spec, nodes, core::SolverSpec{}, opt, 1);
  EXPECT_EQ(trainer.num_nodes(), 1024);  // pricing spans the full cluster
  EXPECT_GT(trainer.node(0).param_count(), 0u);  // the one prototype replica

  std::vector<float> data(2 * 5 * 1024, 0.0f), labels(2 * 1024, 0.0f);
  std::vector<std::vector<float>> grads(1024);
  EXPECT_THROW(trainer.step(data, labels), base::CheckError);
  EXPECT_THROW(trainer.forward_backward_packed(data, labels, grads),
               base::CheckError);
  EXPECT_THROW(trainer.allreduce(grads), base::CheckError);
  EXPECT_THROW(trainer.apply(grads), base::CheckError);
  const std::vector<float> agg(trainer.node(0).param_count(), 0.0f);
  EXPECT_THROW(trainer.apply_aggregate(agg), base::CheckError);

  // What it is for still works — and spans the requested 1024 nodes.
  const hw::CostModel cost;
  const TimedIteration it =
      trainer.price_iteration(cost, core::describe_net_spec(spec));
  EXPECT_GT(it.comm.seconds, 0.0);
  EXPECT_GT(it.comp_s, 0.0);
}

// ---------------------------------------------------------------------------
// Sweep: bit-identity to scalability_curve, across thread counts, for the
// full Fig. 10/11 configurations (AlexNet / VGG-16 / ResNet-50, overlapped /
// hierarchical / compressed, 4..1024 nodes and the 40,960-node point).
// ---------------------------------------------------------------------------

void expect_same_points(const std::vector<ScalePoint>& a,
                        const std::vector<ScalePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].comp_s, b[i].comp_s) << i;
    EXPECT_EQ(a[i].comm_s, b[i].comm_s) << i;
    EXPECT_EQ(a[i].speedup, b[i].speedup) << i;
    EXPECT_EQ(a[i].comm_fraction, b[i].comm_fraction) << i;
    EXPECT_EQ(a[i].overlap_s, b[i].overlap_s) << i;
    EXPECT_EQ(a[i].exposed_comm_s, b[i].exposed_comm_s) << i;
    EXPECT_EQ(a[i].overlap_speedup, b[i].overlap_speedup) << i;
    EXPECT_EQ(a[i].buckets, b[i].buckets) << i;
  }
}

std::vector<SweepSeries> paper_sweep() {
  std::vector<SweepSeries> series;
  const std::vector<int> nodes = {4, 16, 64, 256, 1024};
  {
    SweepSeries s;
    s.label = "alexnet-overlap";
    s.descs_per_cg = fixtures::alexnet_per_cg_descs();
    s.param_bytes = fixtures::kAlexNetGradientBytes;
    s.options.algo = AllreduceAlgo::kRhdRoundRobin;
    s.options.buckets = 8;
    s.node_counts = nodes;
    series.push_back(std::move(s));
  }
  {
    SweepSeries s;
    s.label = "vgg16-serial";
    s.descs_per_cg = fixtures::vgg_per_cg_descs(16);
    s.param_bytes = fixtures::kAlexNetGradientBytes;  // VGG-scale message
    s.options.algo = AllreduceAlgo::kRhdAdjacent;
    s.node_counts = nodes;
    series.push_back(std::move(s));
  }
  {
    SweepSeries s;
    s.label = "resnet50-hier-int8";
    s.descs_per_cg = fixtures::resnet50_per_cg_descs();
    s.param_bytes = fixtures::kResNet50GradientBytes;
    s.options.algo = AllreduceAlgo::kHierarchical;
    s.options.compression = topo::Compression::kInt8;
    s.options.buckets = 8;
    s.node_counts = {4, 64, 1024, 40960};  // the full-machine point
    series.push_back(std::move(s));
  }
  return series;
}

TEST(ScalabilitySweepTest, MatchesScalabilityCurveBitwise) {
  const hw::CostModel cost;
  const std::vector<SweepSeries> series = paper_sweep();
  const std::vector<SweepResult> swept = scalability_sweep(cost, series, 4);
  ASSERT_EQ(swept.size(), series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    EXPECT_EQ(swept[s].label, series[s].label);
    const std::vector<ScalePoint> curve = scalability_curve(
        cost, series[s].descs_per_cg, series[s].param_bytes,
        series[s].options, series[s].node_counts, series[s].conv_overrides);
    expect_same_points(swept[s].points, curve);
  }
}

TEST(ScalabilitySweepTest, BitIdenticalAcrossThreadCounts) {
  const hw::CostModel cost;
  const std::vector<SweepSeries> series = paper_sweep();
  const std::vector<SweepResult> serial = scalability_sweep(cost, series, 1);
  for (const int threads : {2, 8}) {
    const std::vector<SweepResult> parallel =
        scalability_sweep(cost, series, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
      expect_same_points(parallel[s].points, serial[s].points);
    }
  }
}

TEST(ScalabilitySweepTest, IllegalComboStillRejected) {
  // The fast path must not out-run swcheck: int8 re-quantizes partial sums
  // on ring, which the comm rule rejects — sweep included.
  const hw::CostModel cost;
  SweepSeries s;
  s.label = "bad";
  s.descs_per_cg = fixtures::alexnet_per_cg_descs();
  s.param_bytes = fixtures::kAlexNetGradientBytes;
  s.options.algo = AllreduceAlgo::kRing;
  s.options.compression = topo::Compression::kInt8;
  s.node_counts = {4};
  EXPECT_THROW(scalability_sweep(cost, {s}, 1), base::CheckError);
}

}  // namespace
}  // namespace swcaffe::parallel
