// swsched-svc: multi-tenant cluster scheduler + elastic training service.
//
// The contracts under test are the ones the subsystem sells:
//   * the whole schedule is a pure function of (workload, policy, options) —
//     two same-input runs produce bit-identical spans and metrics;
//   * gang scheduling never double-books a node and never loses or invents
//     iterations across preemptions and elastic resizes (checked both by a
//     direct per-node interval sweep and by the swsched timeline analyzer);
//   * the overhead ledger is exact: busy == run + overhead node-seconds;
//   * each timeline diagnostic actually fires on a seeded-broken schedule —
//     an analyzer that stays silent on garbage proves nothing;
//   * elastic shrink/grow is analytically free of math changes: the
//     functional ElasticTrainer's final weights after any resize sequence
//     are bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/log.h"
#include "check/diagnostic.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "core/spec.h"
#include "fault/ft_ssgd.h"
#include "hw/cost_model.h"
#include "sched/cluster.h"
#include "sched/elastic.h"
#include "sched/job.h"
#include "sched/policy.h"
#include "sched/record.h"
#include "sched/scheduler.h"
#include "sched/workload.h"
#include "serve/arrival.h"
#include "topo/topology.h"

namespace swcaffe::sched {
namespace {

// --- Cluster allocation -----------------------------------------------------------

TEST(ClusterTest, AdjacentPacksLowestFreeIds) {
  Cluster c(16, 4);
  EXPECT_EQ(c.free_count(), 16);
  EXPECT_EQ(c.allocate(4, topo::Placement::kAdjacent),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(c.allocate(2, topo::Placement::kAdjacent),
            (std::vector<int>{4, 5}));
  EXPECT_EQ(c.free_count(), 10);
  EXPECT_FALSE(c.is_free(0));
  EXPECT_TRUE(c.is_free(6));
}

TEST(ClusterTest, RoundRobinDealsAcrossSupernodes) {
  Cluster c(16, 4);
  // One node per supernode, in supernode order: the improved-RHD deal.
  EXPECT_EQ(c.allocate(4, topo::Placement::kRoundRobin),
            (std::vector<int>{0, 4, 8, 12}));
  // The next gang keeps dealing from each supernode's cursor.
  EXPECT_EQ(c.allocate(4, topo::Placement::kRoundRobin),
            (std::vector<int>{1, 5, 9, 13}));
}

TEST(ClusterTest, InsufficientAllocationIsEmptyAndAtomic) {
  Cluster c(8, 4);
  EXPECT_EQ(c.allocate(6, topo::Placement::kAdjacent).size(), 6u);
  // Only 2 nodes left: the request must not partially allocate.
  EXPECT_TRUE(c.allocate(3, topo::Placement::kAdjacent).empty());
  EXPECT_EQ(c.free_count(), 2);
  EXPECT_TRUE(c.allocate(3, topo::Placement::kRoundRobin).empty());
  EXPECT_EQ(c.free_count(), 2);
}

TEST(ClusterTest, ReleaseReturnsNodesAndDoubleReleaseThrows) {
  Cluster c(8, 4);
  const std::vector<int> gang = c.allocate(4, topo::Placement::kAdjacent);
  c.release(gang);
  EXPECT_EQ(c.free_count(), 8);
  EXPECT_THROW(c.release(gang), base::CheckError);
}

// --- Workload generation ----------------------------------------------------------

WorkloadSpec demo_workload_spec() {
  WorkloadSpec w;
  w.arrivals.kind = serve::ArrivalKind::kPoisson;
  w.arrivals.rate = 0.1;
  w.arrivals.duration_s = 150.0;
  w.arrivals.seed = 5;
  w.seed = 11;
  w.widths = {2, 4};
  w.min_iters = 5;
  w.max_iters = 30;
  w.tenants = 3;
  w.priorities = 3;
  return w;
}

TEST(WorkloadTest, IsBitwiseDeterministic) {
  const std::vector<JobSpec> a = generate_workload(demo_workload_spec());
  const std::vector<JobSpec> b = generate_workload(demo_workload_spec());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].batch, b[i].batch);
    EXPECT_EQ(a[i].replicas, b[i].replicas);
    EXPECT_EQ(a[i].min_nodes, b[i].min_nodes);
    EXPECT_EQ(a[i].iters, b[i].iters);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].submit_s, b[i].submit_s);  // bitwise: same double
  }
}

TEST(WorkloadTest, AttributesStayInTheirPools) {
  const WorkloadSpec w = demo_workload_spec();
  const std::vector<JobSpec> jobs = generate_workload(w);
  ASSERT_FALSE(jobs.empty());
  double prev_submit = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& j = jobs[i];
    EXPECT_EQ(j.id, static_cast<int>(i));
    EXPECT_NE(std::find(w.widths.begin(), w.widths.end(), j.replicas),
              w.widths.end());
    EXPECT_EQ(j.batch, model_batch(j.model));
    EXPECT_GE(j.iters, w.min_iters);
    EXPECT_LE(j.iters, w.max_iters);
    EXPECT_GE(j.priority, 0);
    EXPECT_LT(j.priority, w.priorities);
    EXPECT_GE(j.tenant, 0);
    EXPECT_LT(j.tenant, w.tenants);
    // Elastic floor: half the requested width, never below one node.
    EXPECT_EQ(j.min_nodes, std::max(1, j.replicas / 2));
    EXPECT_GE(j.submit_s, prev_submit);
    prev_submit = j.submit_s;
  }
}

TEST(WorkloadTest, RigidWorkloadPinsMinNodes) {
  WorkloadSpec w = demo_workload_spec();
  w.elastic = false;
  for (const JobSpec& j : generate_workload(w)) {
    EXPECT_EQ(j.min_nodes, j.replicas);
    EXPECT_FALSE(j.elastic());
  }
}

// --- Policies ---------------------------------------------------------------------

JobSpec job_with(int id, int priority, int tenant) {
  JobSpec j;
  j.id = id;
  j.priority = priority;
  j.tenant = tenant;
  return j;
}

TEST(PolicyTest, ParsesEveryName) {
  EXPECT_EQ(parse_policy("fifo"), Policy::kFifo);
  EXPECT_EQ(parse_policy("priority"), Policy::kPriority);
  EXPECT_EQ(parse_policy("fair"), Policy::kFairShare);
  EXPECT_EQ(parse_policy("fair-share"), Policy::kFairShare);
  EXPECT_THROW(parse_policy("lottery"), base::CheckError);
  EXPECT_STREQ(policy_name(Policy::kFairShare), "fair");
}

TEST(PolicyTest, PickFollowsThePolicy) {
  const JobSpec a = job_with(0, 1, 0);
  const JobSpec b = job_with(1, 2, 1);
  const JobSpec c = job_with(2, 2, 2);
  const std::vector<const JobSpec*> pending = {&a, &b, &c};
  const std::vector<double> usage = {10.0, 5.0, 20.0};

  EXPECT_EQ(PolicyEngine(Policy::kFifo).pick(pending, usage), 0);
  // Highest priority, first submitted wins the tie.
  EXPECT_EQ(PolicyEngine(Policy::kPriority).pick(pending, usage), 1);
  // Least-served tenant (tenant 1, 5 node-seconds) goes first.
  EXPECT_EQ(PolicyEngine(Policy::kFairShare).pick(pending, usage), 1);
}

TEST(PolicyTest, MayPreemptSemantics) {
  const JobSpec low = job_with(0, 0, 0);
  const JobSpec high = job_with(1, 2, 1);
  const std::vector<double> usage = {30.0, 10.0};

  EXPECT_FALSE(PolicyEngine(Policy::kFifo).may_preempt(high, low, usage));

  const PolicyEngine prio(Policy::kPriority);
  EXPECT_TRUE(prio.may_preempt(high, low, usage));
  EXPECT_FALSE(prio.may_preempt(low, high, usage));
  EXPECT_FALSE(prio.may_preempt(high, high, usage));  // strict >

  const PolicyEngine fair(Policy::kFairShare);
  // Candidate tenant 1 (10 node-s) may evict tenant 0 (30 node-s)...
  EXPECT_TRUE(fair.may_preempt(high, low, usage));
  // ...but not the other way, and never within one tenant.
  EXPECT_FALSE(fair.may_preempt(low, high, usage));
  EXPECT_FALSE(
      fair.may_preempt(job_with(2, 0, 0), job_with(3, 0, 0), usage));
}

// --- Scheduler simulation ---------------------------------------------------------

std::vector<JobSpec> demo_jobs() {
  WorkloadSpec w = demo_workload_spec();
  w.arrivals.kind = serve::ArrivalKind::kTrace;
  w.arrivals.trace = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5};
  return generate_workload(w);
}

SchedOptions demo_options(Policy policy) {
  SchedOptions o;
  o.cluster_nodes = 8;
  o.supernode_size = 4;
  o.policy = policy;
  o.quantum_iters = 5;
  return o;
}

constexpr Policy kAllPolicies[] = {Policy::kFifo, Policy::kPriority,
                                   Policy::kFairShare};

TEST(SchedulerTest, EveryJobFinishesAndTheLedgerIsExact) {
  const hw::CostModel cost;
  const std::vector<JobSpec> jobs = demo_jobs();
  for (const Policy policy : kAllPolicies) {
    const ScheduleResult res =
        simulate_schedule(cost, jobs, demo_options(policy));
    const SchedMetrics& m = res.metrics;
    EXPECT_EQ(m.finished, m.jobs) << policy_name(policy);
    EXPECT_EQ(m.jobs, static_cast<int>(jobs.size()));
    // Busy node-seconds are classified exactly once each: bitwise identity.
    EXPECT_EQ(m.busy_node_s, m.run_node_s + m.overhead_node_s)
        << policy_name(policy);
    EXPECT_GT(m.horizon_s, 0.0);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
    for (const JobRecord& r : res.jobs) {
      EXPECT_GE(r.first_start_s, r.submit_s);
      EXPECT_GE(r.finish_s, r.first_start_s);
      // >= 1 up to the rounding drift between the quantum-by-quantum sum
      // and the one-multiply ideal.
      EXPECT_GE(r.slowdown(), 1.0 - 1e-9)
          << "job " << r.job << " finished faster than its ideal";
    }
  }
}

TEST(SchedulerTest, RunSpansConserveEveryJobsIterations) {
  const hw::CostModel cost;
  const std::vector<JobSpec> jobs = demo_jobs();
  for (const Policy policy : kAllPolicies) {
    const ScheduleResult res =
        simulate_schedule(cost, jobs, demo_options(policy));
    std::map<int, std::int64_t> retired;
    for (const JobSpan& s : res.spans) {
      if (s.kind == SpanKind::kRun) retired[s.job] += s.iters;
      EXPECT_GE(s.end_s, s.start_s);
      EXPECT_FALSE(s.nodes.empty());
    }
    for (const JobSpec& j : jobs)
      EXPECT_EQ(retired[j.id], j.iters)
          << policy_name(policy) << " lost iterations of job " << j.id;
  }
}

TEST(SchedulerTest, NoNodeIsEverDoubleBooked) {
  const hw::CostModel cost;
  const std::vector<JobSpec> jobs = demo_jobs();
  for (const Policy policy : kAllPolicies) {
    const SchedOptions opts = demo_options(policy);
    const ScheduleResult res = simulate_schedule(cost, jobs, opts);
    // Direct sweep, independent of the timeline analyzer: per node, sort
    // occupancy intervals and demand they never intersect.
    std::vector<std::vector<std::pair<double, double>>> busy(
        static_cast<std::size_t>(opts.cluster_nodes));
    for (const JobSpan& s : res.spans)
      for (const int nd : s.nodes) {
        ASSERT_GE(nd, 0);
        ASSERT_LT(nd, opts.cluster_nodes);
        busy[static_cast<std::size_t>(nd)].emplace_back(s.start_s, s.end_s);
      }
    for (int nd = 0; nd < opts.cluster_nodes; ++nd) {
      auto& iv = busy[static_cast<std::size_t>(nd)];
      std::sort(iv.begin(), iv.end());
      for (std::size_t i = 1; i < iv.size(); ++i)
        EXPECT_GE(iv[i].first, iv[i - 1].second)
            << policy_name(policy) << " double-books node " << nd;
    }
  }
}

TEST(SchedulerTest, SameInputsSameScheduleBitwise) {
  const hw::CostModel cost;
  const std::vector<JobSpec> jobs = demo_jobs();
  for (const Policy policy : kAllPolicies) {
    const ScheduleResult a =
        simulate_schedule(cost, jobs, demo_options(policy));
    const ScheduleResult b =
        simulate_schedule(cost, jobs, demo_options(policy));
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
      EXPECT_EQ(a.spans[i].job, b.spans[i].job);
      EXPECT_EQ(a.spans[i].span, b.spans[i].span);
      EXPECT_EQ(a.spans[i].kind, b.spans[i].kind);
      EXPECT_EQ(a.spans[i].nodes, b.spans[i].nodes);
      EXPECT_EQ(a.spans[i].start_s, b.spans[i].start_s);  // bitwise
      EXPECT_EQ(a.spans[i].end_s, b.spans[i].end_s);
      EXPECT_EQ(a.spans[i].iters, b.spans[i].iters);
    }
    EXPECT_EQ(a.metrics.busy_node_s, b.metrics.busy_node_s);
    EXPECT_EQ(a.metrics.wait_p95_s, b.metrics.wait_p95_s);
    EXPECT_EQ(a.metrics.slowdown_p95, b.metrics.slowdown_p95);
    EXPECT_EQ(a.metrics.preemptions, b.metrics.preemptions);
    EXPECT_EQ(a.metrics.resizes, b.metrics.resizes);
  }
}

TEST(SchedulerTest, FifoNeverPreempts) {
  const hw::CostModel cost;
  const ScheduleResult res =
      simulate_schedule(cost, demo_jobs(), demo_options(Policy::kFifo));
  EXPECT_EQ(res.metrics.preemptions, 0);
  for (const JobRecord& r : res.jobs) EXPECT_EQ(r.preemptions, 0);
}

TEST(SchedulerTest, RigidModePinsEveryGangToItsRequestedWidth) {
  const hw::CostModel cost;
  SchedOptions opts = demo_options(Policy::kFairShare);
  opts.elastic = false;
  const std::vector<JobSpec> jobs = demo_jobs();
  const ScheduleResult res = simulate_schedule(cost, jobs, opts);
  EXPECT_EQ(res.metrics.resizes, 0);
  for (const JobRecord& r : res.jobs)
    EXPECT_EQ(r.final_width, jobs[static_cast<std::size_t>(r.job)].replicas);
}

TEST(SchedulerTest, EveryPolicysTimelineIsSilent) {
  const hw::CostModel cost;
  const std::vector<JobSpec> jobs = demo_jobs();
  for (const Policy policy : kAllPolicies) {
    const SchedOptions opts = demo_options(policy);
    const ScheduleResult res = simulate_schedule(cost, jobs, opts);
    const check::TimelineGraph g = check::timeline_from_schedule(
        std::string("sched_test ") + policy_name(policy), opts.cluster_nodes,
        res.spans, res.jobs);
    const check::Report report = check::verify_timeline(g);
    EXPECT_TRUE(report.empty())
        << policy_name(policy) << ": " << report.summary();
  }
}

// --- Seeded-broken schedules: each diagnostic must actually fire ------------------

JobSpan run_span(int job, int span, std::vector<int> nodes, double start,
                 double end, std::int64_t iters) {
  JobSpan s;
  s.job = job;
  s.job_name = "job" + std::to_string(job);
  s.span = span;
  s.kind = SpanKind::kRun;
  s.nodes = std::move(nodes);
  s.start_s = start;
  s.end_s = end;
  s.iters = iters;
  return s;
}

JobRecord finished_record(int job, std::int64_t iters, double finish) {
  JobRecord r;
  r.job = job;
  r.name = "job" + std::to_string(job);
  r.iters = iters;
  r.first_start_s = 0.0;
  r.finish_s = finish;
  return r;
}

TEST(BrokenScheduleTest, DoubleBookedNodeFiresTimelineOverlap) {
  // Node 1 belongs to both gangs for [5, 10].
  const std::vector<JobSpan> spans = {run_span(0, 0, {0, 1}, 0.0, 10.0, 5),
                                      run_span(1, 0, {1, 2}, 5.0, 15.0, 5)};
  const std::vector<JobRecord> jobs = {finished_record(0, 5, 10.0),
                                       finished_record(1, 5, 15.0)};
  const check::Report report = check::verify_timeline(
      check::timeline_from_schedule("double-booked", 4, spans, jobs));
  EXPECT_TRUE(report.has(check::Code::kTimelineOverlap)) << report.summary();
}

TEST(BrokenScheduleTest, LostIterationsFireTimelineBytes) {
  // The job finished claiming 10 iterations but its run spans retire 9.
  const std::vector<JobSpan> spans = {run_span(0, 0, {0, 1}, 0.0, 10.0, 5),
                                      run_span(0, 1, {0, 1}, 10.0, 18.0, 4)};
  const std::vector<JobRecord> jobs = {finished_record(0, 10, 18.0)};
  const check::Report report = check::verify_timeline(
      check::timeline_from_schedule("lost-iters", 4, spans, jobs));
  EXPECT_TRUE(report.has(check::Code::kTimelineBytes)) << report.summary();
}

TEST(BrokenScheduleTest, ResumeBeforeCheckpointEndFiresTimelineCausality) {
  // Span 1 starts before span 0 ended: the job resumed on a new gang while
  // its previous quantum was still running.
  const std::vector<JobSpan> spans = {run_span(0, 0, {0, 1}, 0.0, 10.0, 5),
                                      run_span(0, 1, {2, 3}, 8.0, 16.0, 5)};
  const std::vector<JobRecord> jobs = {finished_record(0, 10, 16.0)};
  const check::Report report = check::verify_timeline(
      check::timeline_from_schedule("time-travel", 4, spans, jobs));
  EXPECT_TRUE(report.has(check::Code::kTimelineCausality))
      << report.summary();
}

TEST(BrokenScheduleTest, GangMemberDriftFiresTimelineGang) {
  // Start from a sound schedule, then let one gang member's event run past
  // its peers — the co-scheduling invariant the extractor tags via `gang`.
  const std::vector<JobSpan> spans = {run_span(0, 0, {0, 1, 2}, 0.0, 10.0, 5)};
  const std::vector<JobRecord> jobs = {finished_record(0, 5, 10.0)};
  check::TimelineGraph g =
      check::timeline_from_schedule("gang-drift", 4, spans, jobs);
  EXPECT_TRUE(check::verify_timeline(g).empty());
  ASSERT_EQ(g.events.size(), 3u);
  g.events.back().end_s += 1.0;
  const check::Report report = check::verify_timeline(g);
  EXPECT_TRUE(report.has(check::Code::kTimelineGang)) << report.summary();
}

// --- Elastic trainer: resize keeps the math bit-identical -------------------------

constexpr int kReplicas = 4;
constexpr int kSubBatch = 4;
constexpr int kInDim = 8;
constexpr int kClasses = 4;

/// BN-free MLP (mirrors fault_test): every learnable float must live in
/// pack_params for the bit-identity comparison to be complete.
core::NetSpec mlp() {
  core::NetSpec net;
  net.name = "sched-mlp";
  net.inputs.push_back({"data", {kSubBatch, kInDim}});
  net.inputs.push_back({"label", {kSubBatch}});
  net.layers.push_back(core::ip_spec("fc1", "data", "h", 16));
  net.layers.push_back(core::relu_spec("relu1", "h", "h_out"));
  net.layers.push_back(core::ip_spec("fc2", "h_out", "scores", kClasses));
  net.layers.push_back(
      core::softmax_loss_spec("loss", "scores", "label", "loss"));
  return net;
}

float det_uniform(std::int64_t iter, std::int64_t idx, std::uint64_t salt) {
  std::uint64_t z = (static_cast<std::uint64_t>(iter) * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(idx) + salt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(z >> 11) * 0x1.0p-53f;
}

void det_batch(std::int64_t iter, std::vector<float>& data,
               std::vector<float>& labels) {
  const int global = kSubBatch * kReplicas;
  data.resize(static_cast<std::size_t>(global) * kInDim);
  labels.resize(static_cast<std::size_t>(global));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = det_uniform(iter, static_cast<std::int64_t>(i), 0x5eed) - 0.5f;
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<float>(static_cast<int>(
        det_uniform(iter, static_cast<std::int64_t>(i), 0x1abe1) * kClasses));
}

fault::FtOptions elastic_options(const std::string& tag) {
  fault::FtOptions o;
  o.checkpoint_prefix = testing::TempDir() + "/swsched_" + tag;
  o.job_id = "sched-mlp-b4-n4.j7";
  return o;
}

std::vector<float> net_weights(core::Net& net) {
  std::vector<float> w(net.param_count());
  net.pack_params(w);
  return w;
}

void step_n(ElasticTrainer& t, int iters) {
  std::vector<float> data, labels;
  for (int i = 0; i < iters; ++i) {
    det_batch(t.iter(), data, labels);
    t.step(data, labels);
  }
}

TEST(ElasticTrainerTest, ResizeSequenceMatchesUninterruptedRunBitwise) {
  const core::SolverSpec solver;
  // Reference: the same job trained start to finish with no resizes.
  fault::FtSsgdTrainer ref(mlp(), kReplicas, solver,
                           elastic_options("ref"), 9);
  {
    std::vector<float> data, labels;
    for (int i = 0; i < 8; ++i) {
      det_batch(ref.iter(), data, labels);
      ref.step(data, labels);
    }
  }

  // Elastic run: shrink 4 -> 2 mid-flight, grow 2 -> 3, finish at width 3.
  ElasticTrainer el(mlp(), kReplicas, solver, elastic_options("el"), 9);
  EXPECT_EQ(el.width(), kReplicas);
  step_n(el, 3);
  const std::string shrink_path = el.resize(2);
  // The resize checkpoint is namespaced by the job id at the retired iter.
  EXPECT_NE(shrink_path.find(".sched-mlp-b4-n4.j7.ckpt.3"), std::string::npos)
      << shrink_path;
  EXPECT_EQ(el.width(), 2);
  step_n(el, 3);
  EXPECT_NE(el.resize(3), "");
  step_n(el, 2);
  EXPECT_EQ(el.iter(), 8);
  EXPECT_EQ(el.resizes(), 2);

  // Width changed twice; the math never did. Every logical replica's
  // weights are float-for-float the uninterrupted run's.
  for (int r = 0; r < kReplicas; ++r)
    EXPECT_EQ(net_weights(el.net(r)), net_weights(ref.ssgd().node(r)))
        << "replica " << r;
}

TEST(ElasticTrainerTest, SameWidthResizeIsANoOp) {
  const core::SolverSpec solver;
  ElasticTrainer el(mlp(), kReplicas, solver, elastic_options("noop"), 9);
  step_n(el, 2);
  EXPECT_EQ(el.resize(kReplicas), "");
  EXPECT_EQ(el.resizes(), 0);
  EXPECT_EQ(el.iter(), 2);
}

TEST(ElasticTrainerTest, RejectsWidthsOutsideTheGangBounds) {
  const core::SolverSpec solver;
  ElasticTrainer el(mlp(), kReplicas, solver, elastic_options("bounds"), 9);
  EXPECT_THROW(el.resize(0), base::CheckError);
  EXPECT_THROW(el.resize(kReplicas + 1), base::CheckError);
}

// --- Job profiles -----------------------------------------------------------------

TEST(JobProfileTest, PricesAreSaneAndWidthOneSkipsComm) {
  const hw::CostModel cost;
  JobSpec spec;
  spec.model = ModelKind::kAlexNet;
  spec.batch = 256;
  spec.replicas = 4;
  const JobProfile p = profile_job(cost, spec);
  EXPECT_GT(p.replica_iter_s, 0.0);
  EXPECT_GT(p.param_bytes, 0);

  const parallel::SsgdOptions ssgd;
  // Width 1 folds all replicas onto one node with no collective at all.
  EXPECT_EQ(p.iter_s(1, 4, ssgd), 4.0 * p.replica_iter_s);
  // At full width each node computes one replica plus the all-reduce.
  EXPECT_GT(p.iter_s(4, 4, ssgd), p.replica_iter_s);
  // Checkpoint moves params + solver history through the given bandwidth.
  EXPECT_EQ(p.checkpoint_s(4.0e9),
            2.0 * static_cast<double>(p.param_bytes) / 4.0e9);
}

TEST(JobProfileTest, RejectsBatchesThatCannotSplitOverCoreGroups) {
  const hw::CostModel cost;
  JobSpec spec;
  spec.batch = 6;  // not divisible by the chip's 4 core groups
  EXPECT_THROW(profile_job(cost, spec), base::CheckError);
}

}  // namespace
}  // namespace swcaffe::sched
