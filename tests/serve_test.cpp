// swserve: arrival models, forward pricing engine, dynamic batcher and SLO
// admission control.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "base/log.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/stats.h"
#include "trace/tracer.h"
#include "tune/plan_cache.h"
#include "tune/tuner.h"

namespace swcaffe::serve {
namespace {

/// Small AlexNet geometry (10 classes, 67x67): the same shapes the CLI
/// smoke runs use, fast to price and to tune.
ModelFn small_alexnet() {
  return [](int b) { return core::alexnet_bn(b, 10, 67, false); };
}

InferenceEngine make_engine(const hw::CostModel& cost, int max_batch = 4,
                            EngineOptions opts = {}) {
  opts.max_batch = max_batch;
  return InferenceEngine(cost, "alexnet-small", small_alexnet(), opts);
}

// ---------------------------------------------------------------------------
// Arrival models
// ---------------------------------------------------------------------------

TEST(ArrivalTest, PoissonIsDeterministicStrictlyIncreasingAndInWindow) {
  ArrivalSpec spec;
  spec.rate = 500.0;
  spec.duration_s = 2.0;
  spec.seed = 42;
  const std::vector<double> a = generate_arrivals(spec);
  const std::vector<double> b = generate_arrivals(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // bitwise: pure in (seed, counter)
    EXPECT_GE(a[i], 0.0);
    EXPECT_LT(a[i], spec.duration_s);
    if (i > 0) EXPECT_GT(a[i], a[i - 1]);
  }
  // ~1000 expected arrivals; 5 sigma is ~160.
  EXPECT_NEAR(static_cast<double>(a.size()), 1000.0, 160.0);
}

TEST(ArrivalTest, SeedSelectsTheSchedule) {
  ArrivalSpec spec;
  spec.rate = 200.0;
  spec.seed = 1;
  const std::vector<double> a = generate_arrivals(spec);
  spec.seed = 2;
  const std::vector<double> b = generate_arrivals(spec);
  EXPECT_NE(a, b);
}

TEST(ArrivalTest, BurstyIsAThinnedSubsetOfTheSameSeedPoisson) {
  ArrivalSpec poisson;
  poisson.rate = 400.0;
  poisson.duration_s = 1.0;
  poisson.seed = 7;
  ArrivalSpec bursty = poisson;
  bursty.kind = ArrivalKind::kBursty;
  const std::vector<double> base = generate_arrivals(poisson);
  const std::vector<double> thinned = generate_arrivals(bursty);
  // Thinning can only drop arrivals, never move or add them.
  EXPECT_LT(thinned.size(), base.size());
  EXPECT_FALSE(thinned.empty());
  const std::set<double> base_set(base.begin(), base.end());
  for (const double t : thinned) EXPECT_TRUE(base_set.count(t)) << t;
}

TEST(ArrivalTest, BurstFactorIsASquareWave) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.burst_period_s = 1.0;
  spec.burst_duty = 0.25;
  spec.base_fraction = 0.1;
  EXPECT_DOUBLE_EQ(burst_factor(spec, 0.0), 1.0);     // in burst
  EXPECT_DOUBLE_EQ(burst_factor(spec, 0.2), 1.0);     // still in burst
  EXPECT_DOUBLE_EQ(burst_factor(spec, 0.5), 0.1);     // between bursts
  EXPECT_DOUBLE_EQ(burst_factor(spec, 1.1), 1.0);     // next period
  spec.kind = ArrivalKind::kPoisson;
  EXPECT_DOUBLE_EQ(burst_factor(spec, 0.5), 1.0);     // Poisson: flat
}

TEST(ArrivalTest, TraceReplayFiltersWindowAndValidatesOrder) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kTrace;
  spec.duration_s = 1.0;
  spec.trace = {0.1, 0.5, 0.9, 1.5};
  const std::vector<double> a = generate_arrivals(spec);
  EXPECT_EQ(a, (std::vector<double>{0.1, 0.5, 0.9}));
  spec.trace = {0.5, 0.5};
  EXPECT_THROW(generate_arrivals(spec), base::CheckError);
}

TEST(ArrivalTest, ParseKindRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_arrival_kind("poisson"), ArrivalKind::kPoisson);
  EXPECT_EQ(parse_arrival_kind("bursty"), ArrivalKind::kBursty);
  EXPECT_EQ(parse_arrival_kind("trace"), ArrivalKind::kTrace);
  EXPECT_STREQ(arrival_kind_name(ArrivalKind::kBursty), "bursty");
  EXPECT_THROW(parse_arrival_kind("uniform"), base::CheckError);
}

// ---------------------------------------------------------------------------
// Latency statistics
// ---------------------------------------------------------------------------

TEST(StatsTest, NearestRankPercentiles) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.50), 2.0);  // ceil(0.5*4) = 2nd
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.51), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 1.00), 4.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.01), 1.0);

  std::vector<double> lat;
  for (int i = 100; i >= 1; --i) lat.push_back(i * 0.001);  // unsorted
  const LatencyStats s = latency_stats(lat);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.min_s, 0.001);
  EXPECT_DOUBLE_EQ(s.p50_s, 0.050);
  EXPECT_DOUBLE_EQ(s.p95_s, 0.095);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.099);
  EXPECT_DOUBLE_EQ(s.max_s, 0.100);
}

TEST(StatsTest, EmptySampleIsAllZero) {
  const LatencyStats s = latency_stats({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.0);
}

// ---------------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------------

TEST(EngineTest, BatchTableIsMonotoneAndSublinear) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost, 8);
  double prev = 0.0;
  for (int b = 1; b <= 8; ++b) {
    const double f = engine.batch_time(b);
    EXPECT_GT(f, 0.0);
    EXPECT_GE(f, prev);  // coalescing never finishes earlier
    prev = f;
  }
  // Sublinearity is what makes batching pay: 8 coalesced requests must be
  // cheaper than 8 back-to-back singles.
  EXPECT_LT(engine.batch_time(8), 8.0 * engine.batch_time(1));
  EXPECT_THROW(engine.batch_time(0), base::CheckError);
  EXPECT_THROW(engine.batch_time(9), base::CheckError);
}

TEST(EngineTest, TunedPlansAreNeverSlowerAndAreVerified) {
  const hw::CostModel cost;
  const InferenceEngine def = make_engine(cost, 2);
  EngineOptions opts;
  opts.tune = true;
  const InferenceEngine tuned = make_engine(cost, 2, opts);
  for (int b = 1; b <= 2; ++b) {
    EXPECT_LE(tuned.batch_time(b), def.batch_time(b)) << b;
  }
  EXPECT_GT(tuned.stats().layers_tuned, 0);
  EXPECT_GT(tuned.stats().plans_verified, 0);
  EXPECT_GT(tuned.stats().candidates_evaluated, 0);
}

TEST(EngineTest, PlanCacheWarmStartSkipsSearchesBitIdentically) {
  const hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swserve_warm.cache";
  std::remove(path.c_str());  // TempDir persists across runs; start cold

  EngineOptions opts;
  opts.tune = true;
  opts.plan_cache = path;
  const InferenceEngine cold = make_engine(cost, 2, opts);
  EXPECT_GT(cold.stats().layers_tuned, 0);
  ASSERT_TRUE(cold.save_cache());

  const InferenceEngine warm = make_engine(cost, 2, opts);
  EXPECT_EQ(warm.stats().layers_tuned, 0);
  EXPECT_GT(warm.stats().cache_hits, 0);
  EXPECT_GT(warm.stats().plans_verified, 0);  // cache plans re-verified
  for (int b = 1; b <= 2; ++b) {
    EXPECT_EQ(warm.batch_time(b), cold.batch_time(b)) << b;  // bitwise
  }
}

TEST(EngineTest, IllegalCachedPlanIsRefusedBeforePricing) {
  const hw::CostModel cost;
  const std::string path = testing::TempDir() + "/swserve_poisoned.cache";
  std::remove(path.c_str());

  // Plant a cache entry whose forward blocking blows the LDM budget — the
  // kind of plan a stale or hand-edited cache file could carry. The cache
  // key is (shape, first_conv, nodes), so match the net's first conv.
  const auto descs = core::describe_net_spec(small_alexnet()(1));
  const core::LayerDesc* first_conv = nullptr;
  for (const auto& d : descs) {
    if (d.kind == core::LayerKind::kConv) {
      first_conv = &d;
      break;
    }
  }
  ASSERT_NE(first_conv, nullptr);
  tune::TunedConvPlan poisoned;
  poisoned.layer = first_conv->name;
  poisoned.geom = first_conv->conv;
  poisoned.first_conv = true;
  poisoned.nodes = 1;
  // An implicit plan staging 4096x4096 channel blocks per CPE pass needs
  // gigabytes of LDM — illegal on any geometry.
  poisoned.forward.implicit = true;
  poisoned.forward.channel_block_in = 4096;
  poisoned.forward.channel_block_out = 4096;
  poisoned.forward.tuned_s = 1e-9;  // absurdly fast: the lure of a bad plan
  poisoned.backward_weight = poisoned.forward;
  tune::PlanCache cache(cost.params());
  cache.put(poisoned);
  ASSERT_TRUE(cache.save(path));

  EngineOptions opts;
  opts.tune = true;
  opts.plan_cache = path;
  EXPECT_THROW(make_engine(cost, 1, opts), base::CheckError);

  // Without verification the poisoned plan prices silently — the re-verify
  // pass is what stands between a bad cache file and the latency model.
  opts.verify = false;
  const InferenceEngine unchecked = make_engine(cost, 1, opts);
  EXPECT_EQ(unchecked.stats().cache_hits, 1);
}

// ---------------------------------------------------------------------------
// Dynamic batcher + admission control
// ---------------------------------------------------------------------------

ServeOptions serve_opts(int max_batch, double max_delay_s, double slo_s,
                        bool admission = true) {
  ServeOptions o;
  o.batcher.max_batch = max_batch;
  o.batcher.max_delay_s = max_delay_s;
  o.admission.enabled = admission;
  o.admission.slo_s = slo_s;
  return o;
}

TEST(BatcherTest, SingleRequestLaunchesAtTheDelayDeadline) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  const double f1 = engine.batch_time(1);
  const ServeResult res = simulate_serving(
      engine, {0.1}, serve_opts(4, 0.005, 10.0));
  ASSERT_EQ(res.batches.size(), 1u);
  EXPECT_EQ(res.batches[0].size, 1);
  EXPECT_DOUBLE_EQ(res.batches[0].launch_s, 0.105);
  EXPECT_DOUBLE_EQ(res.batches[0].finish_s, 0.105 + f1);
  ASSERT_EQ(res.requests.size(), 1u);
  EXPECT_TRUE(res.requests[0].admitted);
  EXPECT_NEAR(res.requests[0].latency_s(), 0.005 + f1, 1e-12);
  EXPECT_NEAR(res.requests[0].queue_s(), 0.005, 1e-12);
}

TEST(BatcherTest, FullBatchLaunchesImmediatelyPartialOnTimeout) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  // Four arrivals inside the delay window fill max_batch=4 and launch at
  // the fourth arrival; the trailing two go out on the timeout.
  const std::vector<double> arrivals = {0.010, 0.011, 0.012, 0.013, 0.014,
                                        0.015};
  const ServeResult res =
      simulate_serving(engine, arrivals, serve_opts(4, 0.050, 10.0));
  ASSERT_EQ(res.batches.size(), 2u);
  EXPECT_EQ(res.batches[0].size, 4);
  EXPECT_DOUBLE_EQ(res.batches[0].launch_s, 0.013);  // filled, no waiting
  EXPECT_EQ(res.batches[1].size, 2);
  // The second batch forms on the timeout (oldest 0.014 + 0.050) but the
  // server is still busy with the first — it launches at that finish.
  EXPECT_GT(res.batches[0].finish_s, 0.014 + 0.050);
  EXPECT_DOUBLE_EQ(res.batches[1].launch_s, res.batches[0].finish_s);
  EXPECT_DOUBLE_EQ(res.mean_batch_size, 3.0);
}

TEST(BatcherTest, ZeroDelayDegeneratesToUnbatchedFifo) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  ArrivalSpec spec;
  spec.rate = 100.0;
  spec.duration_s = 0.5;
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeResult res =
      simulate_serving(engine, arrivals, serve_opts(4, 0.0, 100.0));
  ASSERT_FALSE(res.batches.empty());
  for (const BatchRecord& b : res.batches) EXPECT_EQ(b.size, 1);
  EXPECT_DOUBLE_EQ(res.mean_batch_size, 1.0);
}

TEST(BatcherTest, BatchesChainOnTheBusyServerAndStayConsistent) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  ArrivalSpec spec;
  spec.rate = 300.0;  // far beyond capacity: batches queue back-to-back
  spec.duration_s = 0.5;
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeResult res =
      simulate_serving(engine, arrivals, serve_opts(4, 0.01, 100.0));
  int total = 0;
  for (std::size_t i = 0; i < res.batches.size(); ++i) {
    const BatchRecord& b = res.batches[i];
    EXPECT_GE(b.size, 1);
    EXPECT_LE(b.size, 4);
    EXPECT_DOUBLE_EQ(b.forward_s, engine.batch_time(b.size));
    EXPECT_DOUBLE_EQ(b.finish_s, b.launch_s + b.forward_s);
    EXPECT_GE(b.launch_s, b.first_arrival_s);
    if (i > 0) EXPECT_GE(b.launch_s, res.batches[i - 1].finish_s);
    total += b.size;
  }
  EXPECT_EQ(total, res.admitted);
  // FIFO: requests land in arrival order, so batch ids never decrease.
  int prev_batch = -1;
  for (const RequestRecord& r : res.requests) {
    if (!r.admitted) continue;
    EXPECT_GE(r.batch, prev_batch);
    prev_batch = r.batch;
  }
}

TEST(AdmissionTest, AdmittedRequestsNeverMissTheSloUnderOverload) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  const double slo = 4.0 * engine.batch_time(4);
  ArrivalSpec spec;
  spec.rate = 400.0;
  spec.duration_s = 1.0;
  spec.seed = 3;
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeResult res =
      simulate_serving(engine, arrivals, serve_opts(4, 0.02, slo));
  EXPECT_GT(res.rejected, 0);  // overload must shed load
  EXPECT_GT(res.admitted, 0);
  for (const RequestRecord& r : res.requests) {
    if (!r.admitted) continue;
    EXPECT_LE(r.latency_s(), slo);
    // The admission bound is conservative: actual completion can never
    // exceed what the predicate foresaw.
    EXPECT_LE(r.finish_s, r.predicted_s);
  }
  EXPECT_LE(res.latency.p99_s, slo);
  EXPECT_LE(res.latency.max_s, slo);
}

TEST(AdmissionTest, DisabledAdmissionAdmitsEverythingAndBlowsTheSlo) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  const double slo = 4.0 * engine.batch_time(4);
  ArrivalSpec spec;
  spec.rate = 400.0;
  spec.duration_s = 1.0;
  spec.seed = 3;
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeResult res = simulate_serving(
      engine, arrivals, serve_opts(4, 0.02, slo, /*admission=*/false));
  EXPECT_EQ(res.rejected, 0);
  EXPECT_EQ(res.admitted, res.offered);
  // Open-loop overload without shedding: the queue grows without bound and
  // the tail blows through the SLO — the behavior admission prevents.
  EXPECT_GT(res.latency.max_s, slo);
}

TEST(BatcherTest, DynamicBatchingBeatsUnbatchedThroughputUnderOverload) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  const double slo = 3.0 * engine.batch_time(4) + engine.batch_time(1);
  ArrivalSpec spec;
  spec.rate = 8.0 / engine.batch_time(1);  // 8x unbatched capacity
  spec.duration_s = 50.0 * engine.batch_time(1);
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeResult dyn = simulate_serving(
      engine, arrivals, serve_opts(4, engine.batch_time(1), slo));
  const ServeResult single =
      simulate_serving(engine, arrivals, serve_opts(1, 0.0, slo));
  EXPECT_GT(dyn.throughput_rps, single.throughput_rps);
  EXPECT_GT(dyn.mean_batch_size, 1.5);
}

TEST(BatcherTest, ResultIsPureAndTracingDoesNotPerturbIt) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  ArrivalSpec spec;
  spec.rate = 200.0;
  spec.duration_s = 0.5;
  const std::vector<double> arrivals = generate_arrivals(spec);
  const ServeOptions opts = serve_opts(4, 0.01, 1.0);

  const ServeResult a = simulate_serving(engine, arrivals, opts);
  const ServeResult b = simulate_serving(engine, arrivals, opts);
  trace::Tracer tracer;
  ServeOptions traced = opts;
  traced.tracer = &tracer;
  const ServeResult c = simulate_serving(engine, arrivals, traced);

  for (const ServeResult* r : {&b, &c}) {
    EXPECT_EQ(a.admitted, r->admitted);
    EXPECT_EQ(a.rejected, r->rejected);
    EXPECT_EQ(a.throughput_rps, r->throughput_rps);   // bitwise
    EXPECT_EQ(a.latency.p99_s, r->latency.p99_s);     // bitwise
    EXPECT_EQ(a.utilization, r->utilization);         // bitwise
  }
}

TEST(BatcherTest, TraceCarriesTheFullServingTimeline) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  ArrivalSpec spec;
  spec.rate = 300.0;
  spec.duration_s = 0.5;
  const std::vector<double> arrivals = generate_arrivals(spec);
  trace::Tracer tracer;
  ServeOptions opts = serve_opts(4, 0.01, 0.6);
  opts.tracer = &tracer;
  const ServeResult res = simulate_serving(engine, arrivals, opts);
  ASSERT_GT(res.rejected, 0);

  EXPECT_EQ(tracer.open_spans(), 0u);  // balanced: exportable
  // One sequential forward span per batch on the server track.
  int forwards = 0;
  for (const auto& s : tracer.spans()) {
    if (s.category == "serve.forward") ++forwards;
  }
  EXPECT_EQ(forwards, static_cast<int>(res.batches.size()));
  // One async queue interval per admitted request, one formation interval
  // per batch; intervals respect begin <= end.
  int queues = 0, formations = 0;
  for (const auto& a : tracer.async_spans()) {
    EXPECT_LE(a.begin_s, a.end_s);
    if (a.category == "serve.queue") ++queues;
    if (a.category == "serve.batch") ++formations;
  }
  EXPECT_EQ(queues, res.admitted);
  EXPECT_EQ(formations, static_cast<int>(res.batches.size()));
  // One reject instant per shed request.
  int rejects = 0;
  for (const auto& i : tracer.instants()) {
    if (i.category == "serve.reject") ++rejects;
  }
  EXPECT_EQ(rejects, res.rejected);
}

TEST(BatcherTest, InputValidation) {
  const hw::CostModel cost;
  const InferenceEngine engine = make_engine(cost);
  // max_batch beyond the engine's table, non-increasing arrivals.
  EXPECT_THROW(simulate_serving(engine, {0.1}, serve_opts(5, 0.01, 1.0)),
               base::CheckError);
  EXPECT_THROW(simulate_serving(engine, {0.2, 0.2}, serve_opts(4, 0.01, 1.0)),
               base::CheckError);
  // Empty stream: a well-formed all-zero result.
  const ServeResult res = simulate_serving(engine, {}, serve_opts(4, 0.01, 1.0));
  EXPECT_EQ(res.offered, 0);
  EXPECT_EQ(res.batches.size(), 0u);
  EXPECT_DOUBLE_EQ(res.throughput_rps, 0.0);
}

}  // namespace
}  // namespace swcaffe::serve
