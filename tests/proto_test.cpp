// Prototxt parser/writer: parsing, error reporting, round-trips, and
// end-to-end training of a text-defined net.
#include <gtest/gtest.h>

#include "base/log.h"
#include "core/models.h"
#include "core/net.h"
#include "core/proto.h"

namespace swcaffe::core {
namespace {

constexpr const char* kSmallNet = R"(
# A small CNN in the Caffe dialect.
name: "proto-cnn"
input: "data"  input_dim: 4 input_dim: 2 input_dim: 8 input_dim: 8
input: "label" input_dim: 4
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 6 kernel_size: 3 pad: 1 engine: EXPLICIT }
}
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "relu1" }
layer {
  name: "pool1" type: "Pooling" bottom: "relu1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "fc" type: "InnerProduct" bottom: "pool1" top: "scores"
  inner_product_param { num_output: 3 }
}
layer {
  name: "loss" type: "SoftmaxWithLoss"
  bottom: "scores" bottom: "label" top: "loss"
}
)";

TEST(ProtoTest, ParsesSmallNet) {
  const NetSpec spec = parse_net_prototxt(kSmallNet);
  EXPECT_EQ(spec.name, "proto-cnn");
  ASSERT_EQ(spec.inputs.size(), 2u);
  EXPECT_EQ(spec.inputs[0].first, "data");
  EXPECT_EQ(spec.inputs[0].second, (std::vector<int>{4, 2, 8, 8}));
  EXPECT_EQ(spec.inputs[1].second, (std::vector<int>{4}));
  ASSERT_EQ(spec.layers.size(), 5u);
  EXPECT_EQ(spec.layers[0].kind, LayerKind::kConv);
  EXPECT_EQ(spec.layers[0].num_output, 6);
  EXPECT_EQ(spec.layers[0].pad, 1);
  EXPECT_EQ(spec.layers[0].strategy, ConvStrategy::kExplicit);
  EXPECT_EQ(spec.layers[2].pool_method, PoolMethod::kMax);
  EXPECT_EQ(spec.layers[4].bottoms,
            (std::vector<std::string>{"scores", "label"}));
}

TEST(ProtoTest, ParsedNetTrains) {
  Net net(parse_net_prototxt(kSmallNet), 3);
  base::Rng rng(4);
  for (auto& v : net.blob("data")->data()) v = rng.uniform(-1, 1);
  for (int b = 0; b < 4; ++b) {
    net.blob("label")->data()[b] = static_cast<float>(b % 3);
  }
  const double loss0 = net.forward_backward();
  EXPECT_GT(loss0, 0.0);
  for (int it = 0; it < 20; ++it) {
    net.forward_backward();
    for (auto* p : net.learnable_params()) p->axpy_from_diff(-0.2f);
  }
  EXPECT_LT(net.forward(), loss0);
}

TEST(ProtoTest, RoundTripPreservesDescription) {
  // Model-zoo specs survive write -> parse with identical shape inference.
  for (const auto& spec :
       {alexnet_bn(4, 10, 67), vgg(16, 1, 10, 32), googlenet(1, 10, 64)}) {
    const std::string text = net_spec_to_prototxt(spec);
    const NetSpec back = parse_net_prototxt(text);
    const auto a = describe_net_spec(spec);
    const auto b = describe_net_spec(back);
    ASSERT_EQ(a.size(), b.size()) << spec.name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].name, b[i].name) << spec.name;
      EXPECT_EQ(a[i].input_count, b[i].input_count) << a[i].name;
      EXPECT_EQ(a[i].output_count, b[i].output_count) << a[i].name;
      EXPECT_EQ(a[i].param_count, b[i].param_count) << a[i].name;
    }
  }
}

TEST(ProtoTest, CommentsAndFlatKeysAccepted) {
  const NetSpec spec = parse_net_prototxt(R"(
    name: "flat"  # trailing comment
    input: "x" input_dim: 1 input_dim: 4
    layer { name: "fc" type: "InnerProduct" bottom: "x" top: "y"
            num_output: 2 bias_term: false }
  )");
  EXPECT_EQ(spec.layers[0].num_output, 2);
  EXPECT_FALSE(spec.layers[0].bias);
}

TEST(ProtoTest, UnknownLayerTypeThrows) {
  EXPECT_THROW(parse_net_prototxt(
                   R"(layer { name: "x" type: "Deconvolution" })"),
               base::CheckError);
}

TEST(ProtoTest, MissingNameThrows) {
  EXPECT_THROW(parse_net_prototxt(R"(layer { type: "ReLU" })"),
               base::CheckError);
}

TEST(ProtoTest, UnterminatedBlockThrows) {
  EXPECT_THROW(parse_net_prototxt(R"(layer { name: "x" type: "ReLU" )"),
               base::CheckError);
}

TEST(ProtoTest, StrayBraceThrows) {
  EXPECT_THROW(parse_net_prototxt("}"), base::CheckError);
}

TEST(ProtoTest, BadNumberThrows) {
  EXPECT_THROW(
      parse_net_prototxt(
          R"(layer { name: "c" type: "Convolution" num_output: lots })"),
      base::CheckError);
}

TEST(ProtoTest, SolverParsing) {
  const SolverSpec s = parse_solver_prototxt(R"(
    base_lr: 0.05
    momentum: 0.95
    weight_decay: 0.0005
    lr_policy: "step"
    gamma: 0.1
    stepsize: 1000
    type: "Nesterov"
  )");
  EXPECT_FLOAT_EQ(s.base_lr, 0.05f);
  EXPECT_FLOAT_EQ(s.momentum, 0.95f);
  EXPECT_FLOAT_EQ(s.weight_decay, 0.0005f);
  EXPECT_EQ(s.policy, LrPolicy::kStep);
  EXPECT_EQ(s.step_size, 1000);
  EXPECT_EQ(s.type, SolverType::kNesterov);
}

TEST(ProtoTest, SolverRejectsUnknownPolicy) {
  EXPECT_THROW(parse_solver_prototxt(R"(lr_policy: "cosine")"),
               base::CheckError);
}

TEST(ProtoTest, DataLayerDims) {
  const NetSpec spec = parse_net_prototxt(R"(
    layer { name: "data" type: "Data" top: "x" top: "label"
            data_param { dim: 8 dim: 3 dim: 16 dim: 16 num_classes: 10 } }
  )");
  EXPECT_EQ(spec.layers[0].data_shape, (std::vector<int>{8, 3, 16, 16}));
  EXPECT_EQ(spec.layers[0].num_classes, 10);
}

}  // namespace
}  // namespace swcaffe::core
