#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/rng.h"
#include "core/layer_desc.h"
#include "swdnn/conv_func.h"
#include "swdnn/im2col.h"
#include "swdnn/mem_plans.h"

namespace swcaffe::dnn {
namespace {

core::ConvGeom make_geom(int batch, int in_c, int out_c, int img, int kernel,
                         int stride, int pad) {
  core::ConvGeom g;
  g.batch = batch;
  g.in_c = in_c;
  g.out_c = out_c;
  g.in_h = g.in_w = img;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

std::vector<float> random_vec(std::size_t n, base::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
  return v;
}

TEST(Im2colTest, IdentityKernelCopiesImage) {
  // K=1, S=1, pad=0: the column matrix IS the image.
  auto g = make_geom(1, 2, 1, 4, 1, 1, 0);
  std::vector<float> img(2 * 4 * 4);
  for (std::size_t i = 0; i < img.size(); ++i) img[i] = static_cast<float>(i);
  std::vector<float> col(img.size(), -1.0f);
  im2col(img.data(), g, col.data());
  EXPECT_EQ(col, img);
}

TEST(Im2colTest, PaddingProducesZeroBorder) {
  auto g = make_geom(1, 1, 1, 2, 3, 1, 1);  // 2x2 image, 3x3 kernel, pad 1
  std::vector<float> img{1, 2, 3, 4};
  std::vector<float> col(9 * 4, -1.0f);
  im2col(img.data(), g, col.data());
  // First kernel position (kh=0, kw=0) reads the upper-left padded corner:
  // outputs are [pad, pad, pad, img(0,0)].
  EXPECT_EQ(col[0], 0.0f);
  EXPECT_EQ(col[1], 0.0f);
  EXPECT_EQ(col[2], 0.0f);
  EXPECT_EQ(col[3], 1.0f);
  // Center position (kh=1, kw=1) reads the image itself.
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);
  EXPECT_EQ(col[4 * 4 + 3], 4.0f);
}

TEST(Im2colTest, Col2imIsAdjoint) {
  // <u, im2col(x)> == <col2im(u), x> for random u, x — the defining property
  // of the reverse data movement (Fig. 4 right).
  base::Rng rng(41);
  auto g = make_geom(1, 3, 1, 7, 3, 2, 1);
  const std::size_t img_n = 3 * 7 * 7;
  const std::size_t col_n =
      static_cast<std::size_t>(3 * 9) * g.out_h() * g.out_w();
  auto x = random_vec(img_n, rng);
  auto u = random_vec(col_n, rng);
  std::vector<float> col(col_n, 0.0f), back(img_n, 0.0f);
  im2col(x.data(), g, col.data());
  col2im(u.data(), g, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < col_n; ++i) lhs += double(u[i]) * col[i];
  for (std::size_t i = 0; i < img_n; ++i) rhs += double(back[i]) * x[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

/// Geometry sweep: explicit (im2col+GEMM) and implicit (direct) forward
/// passes must agree exactly — the paper's two plans compute one function.
class ConvEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int>> {
};

TEST_P(ConvEquivalenceTest, ExplicitEqualsImplicit) {
  const auto [in_c, out_c, img, kernel, stride, pad] = GetParam();
  auto g = make_geom(2, in_c, out_c, img, kernel, stride, pad);
  base::Rng rng(43);
  auto bottom = random_vec(static_cast<std::size_t>(g.batch) * g.input_count() /
                               g.batch,
                           rng);
  bottom = random_vec(static_cast<std::size_t>(g.input_count()), rng);
  auto weight = random_vec(static_cast<std::size_t>(g.weight_count()), rng);
  auto bias = random_vec(static_cast<std::size_t>(g.out_c), rng);
  std::vector<float> top_e(g.output_count()), top_i(g.output_count());
  conv_forward_explicit(g, bottom.data(), weight.data(), bias.data(),
                        top_e.data());
  conv_forward_implicit(g, bottom.data(), weight.data(), bias.data(),
                        top_i.data());
  for (std::size_t i = 0; i < top_e.size(); ++i) {
    EXPECT_NEAR(top_e[i], top_i[i], 1e-4f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvEquivalenceTest,
    ::testing::Values(std::make_tuple(3, 8, 8, 3, 1, 1),
                      std::make_tuple(4, 4, 9, 3, 2, 1),
                      std::make_tuple(2, 6, 11, 5, 2, 2),
                      std::make_tuple(8, 8, 6, 1, 1, 0),
                      std::make_tuple(1, 2, 12, 7, 3, 3),
                      std::make_tuple(5, 3, 8, 2, 2, 0)));

TEST(ConvBackwardTest, WeightGradientMatchesFiniteDifference) {
  auto g = make_geom(1, 2, 3, 5, 3, 1, 1);
  base::Rng rng(47);
  auto bottom = random_vec(g.input_count(), rng);
  auto weight = random_vec(g.weight_count(), rng);
  auto top_diff = random_vec(g.output_count(), rng);

  std::vector<float> wdiff(g.weight_count(), 0.0f), bdiff(g.out_c, 0.0f);
  conv_backward_weight(g, bottom.data(), top_diff.data(), wdiff.data(),
                       bdiff.data());

  // Scalar objective J = <top_diff, conv(bottom, weight)>; dJ/dW must match.
  auto objective = [&](const std::vector<float>& w) {
    std::vector<float> top(g.output_count());
    conv_forward_explicit(g, bottom.data(), w.data(), nullptr, top.data());
    double j = 0.0;
    for (std::size_t i = 0; i < top.size(); ++i) {
      j += static_cast<double>(top_diff[i]) * top[i];
    }
    return j;
  };
  const float eps = 1e-2f;
  for (std::size_t i : {std::size_t{0}, std::size_t{7}, wdiff.size() - 1}) {
    auto wp = weight, wm = weight;
    wp[i] += eps;
    wm[i] -= eps;
    const double numeric = (objective(wp) - objective(wm)) / (2.0 * eps);
    EXPECT_NEAR(wdiff[i], numeric, 5e-2) << "weight index " << i;
  }
}

TEST(ConvBackwardTest, InputGradientMatchesFiniteDifference) {
  auto g = make_geom(1, 2, 2, 6, 3, 2, 1);
  base::Rng rng(53);
  auto bottom = random_vec(g.input_count(), rng);
  auto weight = random_vec(g.weight_count(), rng);
  auto top_diff = random_vec(g.output_count(), rng);

  std::vector<float> bdiff(g.input_count(), 0.0f);
  conv_backward_input(g, weight.data(), top_diff.data(), bdiff.data());

  auto objective = [&](const std::vector<float>& in) {
    std::vector<float> top(g.output_count());
    conv_forward_implicit(g, in.data(), weight.data(), nullptr, top.data());
    double j = 0.0;
    for (std::size_t i = 0; i < top.size(); ++i) {
      j += static_cast<double>(top_diff[i]) * top[i];
    }
    return j;
  };
  const float eps = 1e-2f;
  for (std::size_t i : {std::size_t{0}, std::size_t{31}, bdiff.size() - 1}) {
    auto ip = bottom, im = bottom;
    ip[i] += eps;
    im[i] -= eps;
    const double numeric = (objective(ip) - objective(im)) / (2.0 * eps);
    EXPECT_NEAR(bdiff[i], numeric, 5e-2) << "input index " << i;
  }
}

TEST(ConvBackwardTest, BiasGradientIsPerChannelSum) {
  auto g = make_geom(2, 1, 2, 4, 3, 1, 1);
  base::Rng rng(59);
  auto bottom = random_vec(g.input_count(), rng);
  auto top_diff = random_vec(g.output_count(), rng);
  std::vector<float> wdiff(g.weight_count(), 0.0f), bdiff(g.out_c, 0.0f);
  conv_backward_weight(g, bottom.data(), top_diff.data(), wdiff.data(),
                       bdiff.data());
  const int plane = g.out_h() * g.out_w();
  for (int c = 0; c < g.out_c; ++c) {
    double expected = 0.0;
    for (int b = 0; b < g.batch; ++b) {
      for (int i = 0; i < plane; ++i) {
        expected += top_diff[(b * g.out_c + c) * plane + i];
      }
    }
    EXPECT_NEAR(bdiff[c], expected, 1e-4);
  }
}

// --- Memory plans ---------------------------------------------------------------

TEST(MemPlansTest, StreamTimeScalesWithBytes) {
  hw::CostModel cost;
  EXPECT_NEAR(stream_time(cost, 2e9, 4096) / stream_time(cost, 1e9, 4096), 2.0,
              1e-6);
}

TEST(MemPlansTest, ShortRunsAreSlower) {
  hw::CostModel cost;
  EXPECT_GT(stream_time(cost, 1e9, 16), stream_time(cost, 1e9, 8192));
}

TEST(MemPlansTest, PoolBackwardCostsMoreThanForward) {
  hw::CostModel cost;
  core::PoolGeom g;
  g.batch = 64;
  g.channels = 96;
  g.in_h = g.in_w = 55;
  g.kernel = 3;
  g.stride = 2;
  EXPECT_GT(pool_backward_time(cost, g), pool_forward_time(cost, g));
}

TEST(MemPlansTest, GiantRowsFallBackToColumnBlocks) {
  hw::CostModel cost;
  core::PoolGeom small, huge;
  small.batch = huge.batch = 1;
  small.channels = huge.channels = 1;
  small.kernel = huge.kernel = 64;
  small.stride = huge.stride = 64;
  small.in_h = small.in_w = 512;
  huge.in_h = huge.in_w = 64 * 1024;  // K rows no longer fit the LDM
  const double bw_small =
      (4.0 * small.in_h * small.in_w) / pool_forward_time(cost, small);
  const double bw_huge =
      (4.0 * huge.in_h * huge.in_w) / pool_forward_time(cost, huge);
  EXPECT_GT(bw_small, 0.0);
  EXPECT_GT(bw_huge, 0.0);
}

TEST(MemPlansTest, TransformSlowerThanPlainStreaming) {
  hw::CostModel cost;
  const std::int64_t count = 64LL * 64 * 224 * 224;
  EXPECT_GT(transform_time(cost, count, 8),
            elementwise_time(cost, count, 2.0));
}

}  // namespace
}  // namespace swcaffe::dnn
