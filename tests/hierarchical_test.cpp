// Tests for the two-level hierarchical all-reduce (topo/hierarchical):
// cost parity with flat improved RHD where the phase structures coincide,
// the full-machine win where they don't, functional bit-identity, and the
// edge-case fallbacks (non-divisible node counts, single supernode,
// non-power-of-two supernode size).
#include "topo/hierarchical.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "proptest.h"
#include "topo/allreduce.h"
#include "topo/network_model.h"
#include "topo/topology.h"

namespace swcaffe::topo {
namespace {

using proptest::Rng;
using proptest::for_all;

std::vector<std::vector<float>> random_data(Rng& rng, int ranks, int n) {
  std::vector<std::vector<float>> data(ranks, std::vector<float>(n));
  for (auto& v : data) {
    for (auto& x : v) x = rng.next_float(-1.0f, 1.0f);
  }
  return data;
}

// --- applicability ---------------------------------------------------------

TEST(HierApplicableTest, EngagesOnlyOnCleanSplits) {
  const auto applicable = [](int p, int q) {
    Topology t;
    t.num_nodes = p;
    t.supernode_size = q;
    return hierarchical_applicable(t);
  };
  EXPECT_TRUE(applicable(1024, 256));
  EXPECT_TRUE(applicable(16, 4));
  EXPECT_TRUE(applicable(40960, 256));  // s = 160, allowed non-pow2
  EXPECT_FALSE(applicable(256, 256));   // single supernode: p == q
  EXPECT_FALSE(applicable(100, 256));   // p < q
  EXPECT_FALSE(applicable(24, 7));      // q not a power of two
  EXPECT_FALSE(applicable(1000, 256));  // p % q != 0
  EXPECT_FALSE(applicable(8, 1));       // q < 2: nothing local to reduce
}

// --- analytic cost ---------------------------------------------------------

TEST(HierCostTest, MatchesFlatRoundRobinAtPow2) {
  // With p, q and s = p/q all powers of two, flat improved RHD under
  // round-robin placement IS the hierarchical algorithm (same butterfly,
  // same per-step locality), so the cost model must agree to rounding.
  const NetParams net = sunway_network();
  for (int p : {512, 1024, 4096}) {
    Topology topo;
    topo.num_nodes = p;
    const std::int64_t bytes = 232'600'000;
    const double flat =
        cost_rhd(bytes, topo, net, Placement::kRoundRobin).seconds;
    const double hier = cost_hierarchical(bytes, topo, net).seconds;
    EXPECT_NEAR(hier, flat, flat * 1e-8) << p;
  }
}

TEST(HierCostTest, WinsAtFullMachineScale) {
  // 40,960 nodes = 160 supernodes: flat RHD folds the FULL message through
  // the non-power-of-two fixup and crosses the oversubscribed switch with
  // it; hierarchical folds only bytes/q per chunk collective.
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 40960;
  const std::int64_t bytes = 232'600'000;
  const double flat =
      cost_rhd(bytes, topo, net, Placement::kRoundRobin).seconds;
  const double hier = cost_hierarchical(bytes, topo, net).seconds;
  EXPECT_LT(hier, 0.5 * flat);
}

TEST(HierCostTest, FallbackPricesExactlyAsFlat) {
  const NetParams net = sunway_network();
  for (auto [p, q] : {std::pair{100, 256}, {1000, 256}, {24, 7}}) {
    Topology topo;
    topo.num_nodes = p;
    topo.supernode_size = q;
    const CostBreakdown flat =
        cost_rhd(1 << 20, topo, net, Placement::kRoundRobin);
    const CostBreakdown hier = cost_hierarchical(1 << 20, topo, net);
    EXPECT_EQ(hier.seconds, flat.seconds) << p << "/" << q;
    EXPECT_EQ(hier.alpha_terms, flat.alpha_terms);
    EXPECT_EQ(hier.beta1_bytes, flat.beta1_bytes);
    EXPECT_EQ(hier.beta2_bytes, flat.beta2_bytes);
  }
}

TEST(HierCostTest, ZeroBytesCostsOnlyLatency) {
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 1024;
  const CostBreakdown c = cost_hierarchical(0, topo, net);
  EXPECT_EQ(c.beta1_bytes, 0.0);
  EXPECT_EQ(c.beta2_bytes, 0.0);
}

// --- functional ------------------------------------------------------------

TEST(HierFunctionalTest, BitIdenticalToFlatWhenStructuresCoincide) {
  // p = 16, q = 4, s = 4: identical per-element summation trees, so the
  // results must match BITWISE, not just within tolerance.
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 16;
  topo.supernode_size = 4;
  for_all(0xB17ULL, 20, [&](Rng& rng, int) {
    const int n = 1 + static_cast<int>(rng.next_below(97));
    auto flat = random_data(rng, 16, n);
    auto hier = flat;
    allreduce_rhd(flat, topo, net, Placement::kRoundRobin);
    allreduce_hierarchical(hier, topo, net);
    for (int r = 0; r < 16; ++r) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(hier[r][i]),
                  std::bit_cast<std::uint32_t>(flat[r][i]))
            << "rank " << r << " elem " << i;
      }
    }
  });
}

TEST(HierFunctionalTest, RaggedSupernodeCountSumsCorrectly) {
  // p = 24, q = 8 -> s = 3 supernodes (non-power-of-two inter phase): every
  // rank must end with the same vector, equal to the true sum within float
  // tolerance (different summation order than flat is expected).
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 24;
  topo.supernode_size = 8;
  for_all(0x247ULL, 20, [&](Rng& rng, int) {
    const int n = 1 + static_cast<int>(rng.next_below(64));
    auto data = random_data(rng, 24, n);
    std::vector<double> expect(n, 0.0);
    for (const auto& v : data) {
      for (int i = 0; i < n; ++i) expect[i] += v[i];
    }
    allreduce_hierarchical(data, topo, net);
    for (int r = 0; r < 24; ++r) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(data[r][i]),
                  std::bit_cast<std::uint32_t>(data[0][i]))
            << "rank " << r << " diverged at " << i;
        EXPECT_NEAR(data[r][i], expect[i], 1e-4 * std::abs(expect[i]) + 1e-5);
      }
    }
  });
}

TEST(HierFunctionalTest, FallbackIsBitwiseFlatRhd) {
  // Non-engaging geometries must run the flat algorithm verbatim: p not
  // divisible by q, p <= q (single supernode), q not a power of two.
  const NetParams net = sunway_network();
  for (auto [p, q] : {std::pair{10, 4}, {6, 8}, {12, 6}}) {
    Topology topo;
    topo.num_nodes = p;
    topo.supernode_size = q;
    Rng rng(0xFA11ULL + p * 31 + q);
    const int n = 33;
    auto flat = random_data(rng, p, n);
    auto hier = flat;
    const CostBreakdown cf = allreduce_rhd(flat, topo, net,
                                           Placement::kRoundRobin);
    const CostBreakdown ch = allreduce_hierarchical(hier, topo, net);
    EXPECT_EQ(ch.seconds, cf.seconds) << p << "/" << q;
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(hier[r][i]),
                  std::bit_cast<std::uint32_t>(flat[r][i]))
            << p << "/" << q << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(HierFunctionalTest, DeterministicAcrossReruns) {
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 24;
  topo.supernode_size = 8;
  Rng rng(0xD373ULL);
  const auto base = random_data(rng, 24, 50);
  auto a = base;
  auto b = base;
  allreduce_hierarchical(a, topo, net);
  allreduce_hierarchical(b, topo, net);
  for (int r = 0; r < 24; ++r) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a[r][i]),
                std::bit_cast<std::uint32_t>(b[r][i]));
    }
  }
}

TEST(HierFunctionalTest, ShortMessageLeavesEmptyChunks) {
  // n < q: some members own empty chunk spans; the reduction must still
  // complete and agree on every rank.
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 16;
  topo.supernode_size = 8;
  Rng rng(0x5807ULL);
  auto data = random_data(rng, 16, 3);  // 3 floats across q = 8 members
  std::vector<double> expect(3, 0.0);
  for (const auto& v : data) {
    for (int i = 0; i < 3; ++i) expect[i] += v[i];
  }
  allreduce_hierarchical(data, topo, net);
  for (int r = 0; r < 16; ++r) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(data[r][i], expect[i], 1e-5);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(data[r][i]),
                std::bit_cast<std::uint32_t>(data[0][i]));
    }
  }
}

TEST(HierFunctionalTest, CostMatchesAnalyticModel) {
  // The functional overload must return exactly what the analytic pricing
  // claims for the same geometry and byte count.
  const NetParams net = sunway_network();
  Topology topo;
  topo.num_nodes = 16;
  topo.supernode_size = 4;
  Rng rng(0xC057ULL);
  auto data = random_data(rng, 16, 40);
  const CostBreakdown functional = allreduce_hierarchical(data, topo, net);
  const CostBreakdown analytic = cost_hierarchical(40 * 4, topo, net);
  EXPECT_EQ(functional.seconds, analytic.seconds);
  EXPECT_EQ(functional.alpha_terms, analytic.alpha_terms);
  EXPECT_EQ(functional.beta1_bytes, analytic.beta1_bytes);
  EXPECT_EQ(functional.beta2_bytes, analytic.beta2_bytes);
}

}  // namespace
}  // namespace swcaffe::topo
