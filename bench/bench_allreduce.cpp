// Fig. 7 reproduction plus all-reduce algorithm ablation.
//
// 1. The paper's 8-node / 2-supernode worked example with exact
//    alpha/beta/gamma coefficient decomposition for both placements.
// 2. A node-count sweep (up to 1024 nodes, q=256) over four algorithms:
//    binomial (adjacent), binomial (round-robin, the paper's), ring, and a
//    parameter server — with AlexNet-sized (232.6 MB) gradients, verified
//    functionally at small scale.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/rng.h"
#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "topo/allreduce.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_allreduce", argc, argv);
  const topo::NetParams net = topo::sunway_network();

  std::printf("=== Fig. 7: 8 nodes in 2 supernodes (q=4), message n ===\n");
  {
    topo::Topology topo{8, 4};
    TablePrinter t({"placement", "alpha terms", "beta1 bytes", "beta2 bytes",
                    "gamma bytes", "time (n=100MB)"});
    for (auto placement :
         {topo::Placement::kAdjacent, topo::Placement::kRoundRobin}) {
      const std::int64_t n = 100 << 20;
      const auto c = topo::cost_rhd(n, topo, net, placement);
      t.add_row({topo::placement_name(placement),
                 std::to_string(c.alpha_terms),
                 fmt(c.beta1_bytes / n, 3) + "n", fmt(c.beta2_bytes / n, 3) + "n",
                 fmt(c.gamma_bytes / n, 3) + "n",
                 base::format_seconds(c.seconds)});
      const std::string key =
          "fig7_" + bench::metric_key(topo::placement_name(placement));
      json.metric(key + "_alpha_terms", c.alpha_terms);
      json.metric(key + "_beta1_coeff", c.beta1_bytes / n);
      json.metric(key + "_beta2_coeff", c.beta2_bytes / n);
      json.metric(key + "_gamma_coeff", c.gamma_bytes / n);
      json.metric(key + "_seconds_100mb", c.seconds);
    }
    t.print(std::cout);
    std::printf("Paper: original = 6a + 3/4 nB1 + nB2 + 7/8 nG; "
                "improved = 6a + 3/2 nB1 + 1/4 nB2 + 7/8 nG.\n");
  }

  std::printf("\n=== Functional verification (16 nodes, q=4, real data) ===\n");
  {
    topo::Topology topo{16, 4};
    base::Rng rng(7);
    std::vector<std::vector<float>> data(16, std::vector<float>(1000));
    for (auto& v : data) {
      for (auto& x : v) x = rng.uniform(-1, 1);
    }
    std::vector<float> expected(1000, 0.0f);
    for (const auto& v : data) {
      for (std::size_t i = 0; i < expected.size(); ++i) expected[i] += v[i];
    }
    const auto c =
        topo::allreduce_rhd(data, topo, net, topo::Placement::kRoundRobin);
    double max_err = 0.0;
    for (const auto& v : data) {
      for (std::size_t i = 0; i < expected.size(); ++i) {
        max_err = std::max(max_err, std::abs(static_cast<double>(v[i]) -
                                             expected[i]));
      }
    }
    std::printf("max |allreduce - direct sum| over all ranks: %.2e "
                "(simulated time %s)\n",
                max_err, base::format_seconds(c.seconds).c_str());
  }

  std::printf("\n=== Ablation: all-reduce of AlexNet gradients (232.6 MB), "
              "q=256 ===\n");
  {
    const std::int64_t bytes = static_cast<std::int64_t>(232.6e6);
    TablePrinter t({"nodes", "binomial adjacent", "binomial round-robin",
                    "ring", "param server", "RR speedup vs adjacent"});
    for (int p : {2, 8, 32, 128, 512, 1024}) {
      topo::Topology topo{p, 256};
      const auto adj =
          topo::cost_rhd(bytes, topo, net, topo::Placement::kAdjacent);
      const auto rr =
          topo::cost_rhd(bytes, topo, net, topo::Placement::kRoundRobin);
      const auto ring =
          topo::cost_ring(bytes, topo, net, topo::Placement::kAdjacent);
      const auto ps = topo::cost_param_server(bytes, topo, net, 1);
      t.add_row({std::to_string(p), base::format_seconds(adj.seconds),
                 base::format_seconds(rr.seconds),
                 base::format_seconds(ring.seconds),
                 base::format_seconds(ps.seconds),
                 fmt(adj.seconds / rr.seconds, 2) + "x"});
      const std::string key = "alexnet_" + std::to_string(p) + "nodes_";
      json.metric(key + "adjacent_s", adj.seconds);
      json.metric(key + "round_robin_s", rr.seconds);
      json.metric(key + "ring_s", ring.seconds);
      json.metric(key + "param_server_s", ps.seconds);
    }
    t.print(std::cout);
    std::printf("Shapes: placements identical within one supernode "
                "(p<=256); round-robin wins beyond; ring pays p*alpha;\n"
                "the parameter server serializes at its single port "
                "(Sec. V-A's reasons to reject both).\n");
  }
  return 0;
}
