// Fig. 2 reproduction: DMA get/put bandwidth for continuous and strided
// access patterns, for 1/8/16/32/64 CPEs.
//
// Left plots: bandwidth vs. per-CPE transfer size, continuous access.
// Right plots: bandwidth vs. block size, strided access, 32 KB per CPE.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "hw/cost_model.h"

using swcaffe::base::TablePrinter;
using swcaffe::base::fmt;
using swcaffe::hw::CostModel;

int main(int argc, char** argv) {
  swcaffe::bench::JsonBench json("bench_dma", argc, argv);
  CostModel cost;
  const std::vector<int> cpes = {1, 8, 16, 32, 64};

  std::printf("=== Fig. 2 (left): continuous DMA bandwidth (GB/s) ===\n");
  std::printf("(model symmetric in direction: one table covers get and put)\n");
  {
    std::vector<std::string> header{"size/CPE"};
    for (int c : cpes) header.push_back(std::to_string(c) + "CPE");
    TablePrinter t(header);
    for (std::size_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u,
                              16384u, 24576u, 32768u, 49152u}) {
      std::vector<std::string> row{swcaffe::base::format_bytes(bytes)};
      for (int c : cpes) {
        row.push_back(fmt(cost.dma_bandwidth(bytes, c) / 1e9, 2));
      }
      json.metric("continuous_64cpe_" + std::to_string(bytes) + "b_gbs",
                  cost.dma_bandwidth(bytes, 64) / 1e9);
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::printf("\n=== Fig. 2 (right): strided DMA bandwidth (GB/s), "
              "32 KB total per CPE ===\n");
  {
    std::vector<std::string> header{"block"};
    for (int c : cpes) header.push_back(std::to_string(c) + "CPE");
    TablePrinter t(header);
    for (std::size_t block : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                              2048u, 4096u, 8192u, 16384u}) {
      std::vector<std::string> row{swcaffe::base::format_bytes(block)};
      for (int c : cpes) {
        row.push_back(fmt(cost.dma_strided_bandwidth(32 * 1024, block, c) / 1e9, 2));
      }
      json.metric("strided_64cpe_block" + std::to_string(block) + "b_gbs",
                  cost.dma_strided_bandwidth(32 * 1024, block, 64) / 1e9);
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::printf("\nPaper shapes to check: saturation ~28 GB/s with 64 CPEs; "
              ">=2 KB transfers amortize the startup latency;\n"
              "strided blocks >=256 B reach satisfactory bandwidth "
              "(Principle 3). MPE copy path for comparison: %.1f GB/s.\n",
              cost.params().mpe_copy_bw / 1e9);
  return 0;
}
