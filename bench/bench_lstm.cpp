// LSTM layer timing (paper Sec. IV-A names LSTM among the GEMM-dominated
// layers the mesh kernel serves): SW26010 vs K40m across hidden sizes and
// sequence lengths. The per-step gate GEMM is exactly the workload the
// register-communication GEMM is optimized for, so the SW/GPU gap narrows
// with hidden size the way the FC layers in Fig. 8 do.
#include <cstdio>
#include <iostream>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "perfmodel/device_model.h"
#include "swdnn/layer_estimate.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_lstm", argc, argv);
  hw::CostModel cost;
  const auto gpu = perfmodel::k40m();
  std::printf("=== LSTM layer: per-iteration time, batch 64 per core group "
              "===\n");
  TablePrinter t({"T", "input", "hidden", "SW fwd+bwd", "GPU fwd+bwd",
                  "SW/GPU", "gate GEMM (m,n,k)"});
  for (int hidden : {128, 256, 512, 1024}) {
    for (int steps : {16, 64}) {
      core::LayerDesc d;
      d.name = "lstm";
      d.kind = core::LayerKind::kLSTM;
      const int input = hidden;  // square recurrent cell
      d.fc = core::FcGeom{64, 4 * hidden,
                          static_cast<std::int64_t>(input) + hidden};
      d.steps = steps;
      d.input_count = static_cast<std::int64_t>(steps) * 64 * input;
      d.output_count = static_cast<std::int64_t>(steps) * 64 * hidden;
      d.param_count =
          static_cast<std::int64_t>(4) * hidden * (input + hidden);
      const auto sw = dnn::estimate_layer_sw(cost, d);
      const auto gp = perfmodel::estimate_layer_dev(gpu, d);
      t.add_row({std::to_string(steps), std::to_string(input),
                 std::to_string(hidden), base::format_seconds(sw.total()),
                 base::format_seconds(gp.total()),
                 fmt(sw.total() / gp.total(), 2) + "x",
                 "64 x " + std::to_string(4 * hidden) + " x " +
                     std::to_string(input + hidden)});
      const std::string key = "h" + std::to_string(hidden) + "_t" +
                              std::to_string(steps);
      json.metric(key + "_sw_s", sw.total());
      json.metric(key + "_gpu_s", gp.total());
    }
  }
  t.print(std::cout);
  std::printf("\nShape to check: the SW/GPU ratio improves with hidden size "
              "(bigger GEMMs amortize LDM blocking), mirroring\nthe FC-layer "
              "behaviour in Fig. 8; small cells are launch/latency bound on "
              "both architectures.\n");
  return 0;
}
