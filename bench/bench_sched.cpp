// Cluster scheduling bench: one heavy open-loop arrival trace of
// heterogeneous training jobs (model zoo x batch x gang width), admitted
// onto the same simulated 32-node TaihuLight partition under FIFO,
// priority and fair-share, with preemption and elastic shrink/grow in
// play. The JSON output is the per-policy metric set (utilization, queue
// wait p50/p95, makespan p50/p95/spread, preemption and resize counts,
// overhead ledger).
//
// Five gates (exit 1 on violation):
//  1. Fairness wins the tail: fair-share's p95 queue wait is strictly
//     lower than FIFO's under the heavy trace.
//  2. Fairness tightens completion: fair-share's slowdown spread
//     (p95 - p50 of makespan normalized by each job's uninterrupted run
//     time) is strictly smaller than FIFO's. Slowdown, not raw makespan,
//     is the fairness currency: raw spread conflates scheduling with
//     job-length heterogeneity.
//  3. The overhead ledger is exact: busy == run + overhead node-seconds,
//     bit for bit, for every policy — preemption/resize costs can hide
//     nowhere else.
//  4. Every schedule's whole-cluster timeline is silent under the swsched
//     analyzer (no double-booked nodes, no broken gangs, no lost
//     iterations, no causality violations).
//  5. Determinism: the whole sweep runs twice and every span and metric
//     must match bitwise (CI additionally diffs two full --json files
//     byte for byte).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "hw/cost_model.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sched/workload.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

constexpr sched::Policy kPolicies[] = {
    sched::Policy::kFifo, sched::Policy::kPriority, sched::Policy::kFairShare};

/// The heavy trace: ~40 jobs in 200 simulated seconds against 32 nodes —
/// offered node-seconds far exceed capacity, so queues build and the
/// policies actually differ.
std::vector<sched::JobSpec> heavy_workload() {
  sched::WorkloadSpec wspec;
  wspec.arrivals.kind = serve::ArrivalKind::kPoisson;
  wspec.arrivals.rate = 0.2;
  wspec.arrivals.duration_s = 200.0;
  wspec.arrivals.seed = 17;
  wspec.seed = 17;
  wspec.widths = {2, 4, 8};
  wspec.min_iters = 20;
  wspec.max_iters = 200;
  wspec.tenants = 3;
  return sched::generate_workload(wspec);
}

sched::ScheduleResult run_policy(const hw::CostModel& cost,
                                 const std::vector<sched::JobSpec>& jobs,
                                 sched::Policy policy) {
  sched::SchedOptions opts;
  opts.cluster_nodes = 32;
  opts.supernode_size = 8;
  opts.policy = policy;
  opts.quantum_iters = 25;
  return sched::simulate_schedule(cost, jobs, opts);
}

bool same_result(const sched::ScheduleResult& a,
                 const sched::ScheduleResult& b) {
  if (a.spans.size() != b.spans.size()) return false;
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    const sched::JobSpan& x = a.spans[i];
    const sched::JobSpan& y = b.spans[i];
    if (x.job != y.job || x.span != y.span || x.kind != y.kind ||
        x.nodes != y.nodes || x.start_s != y.start_s || x.end_s != y.end_s ||
        x.iters != y.iters)
      return false;
  }
  const sched::SchedMetrics& m = a.metrics;
  const sched::SchedMetrics& n = b.metrics;
  return m.finished == n.finished && m.preemptions == n.preemptions &&
         m.resizes == n.resizes && m.horizon_s == n.horizon_s &&
         m.utilization == n.utilization && m.busy_node_s == n.busy_node_s &&
         m.wait_p95_s == n.wait_p95_s && m.makespan_p95_s == n.makespan_p95_s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_sched", argc, argv);
  const hw::CostModel cost;
  const std::vector<sched::JobSpec> jobs = heavy_workload();
  std::printf("heavy trace: %zu jobs, 32 nodes, quantum 25 iters\n\n",
              jobs.size());

  int failures = 0;
  std::vector<sched::ScheduleResult> results;
  TablePrinter t({"policy", "util", "wait p50", "wait p95", "makespan p95",
                  "slowdown p50", "slowdown p95", "spread", "pre", "rsz",
                  "overhead"});
  for (const sched::Policy policy : kPolicies) {
    const sched::ScheduleResult res = run_policy(cost, jobs, policy);
    const sched::SchedMetrics& m = res.metrics;

    // Gate 3: the ledger is exact — every busy node-second is either
    // training or checkpoint/restore overhead, bit for bit.
    if (m.busy_node_s != m.run_node_s + m.overhead_node_s) {
      std::fprintf(stderr,
                   "FAIL(%s): ledger leak: busy %.17g != run %.17g + "
                   "overhead %.17g\n",
                   sched::policy_name(policy), m.busy_node_s, m.run_node_s,
                   m.overhead_node_s);
      ++failures;
    }
    if (m.finished != m.jobs) {
      std::fprintf(stderr, "FAIL(%s): %d of %d jobs unfinished\n",
                   sched::policy_name(policy), m.jobs - m.finished, m.jobs);
      ++failures;
    }

    // Gate 4: the composed whole-cluster timeline is silent.
    const check::TimelineGraph graph = check::timeline_from_schedule(
        std::string("cluster ") + sched::policy_name(policy), 32, res.spans,
        res.jobs);
    const check::Report report = check::verify_timeline(graph);
    if (!report.empty()) {
      std::fprintf(stderr, "FAIL(%s): schedule timeline not silent:\n",
                   sched::policy_name(policy));
      report.print(std::cerr);
      ++failures;
    }

    // Gate 5 (in-process half): bitwise-identical rerun.
    if (!same_result(res, run_policy(cost, jobs, policy))) {
      std::fprintf(stderr, "FAIL(%s): rerun diverged from first run\n",
                   sched::policy_name(policy));
      ++failures;
    }

    t.add_row({sched::policy_name(policy), fmt(100.0 * m.utilization, 1) + "%",
               base::format_seconds(m.wait_p50_s),
               base::format_seconds(m.wait_p95_s),
               base::format_seconds(m.makespan_p95_s),
               fmt(m.slowdown_p50, 2) + "x", fmt(m.slowdown_p95, 2) + "x",
               fmt(m.slowdown_spread, 2) + "x",
               std::to_string(m.preemptions), std::to_string(m.resizes),
               base::format_seconds(m.overhead_node_s)});

    const std::string p = sched::policy_name(policy);
    json.metric(p + "_utilization", m.utilization);
    json.metric(p + "_wait_p50_s", m.wait_p50_s);
    json.metric(p + "_wait_p95_s", m.wait_p95_s);
    json.metric(p + "_wait_mean_s", m.wait_mean_s);
    json.metric(p + "_makespan_p50_s", m.makespan_p50_s);
    json.metric(p + "_makespan_p95_s", m.makespan_p95_s);
    json.metric(p + "_makespan_spread_s", m.makespan_spread_s);
    json.metric(p + "_slowdown_p50", m.slowdown_p50);
    json.metric(p + "_slowdown_p95", m.slowdown_p95);
    json.metric(p + "_slowdown_spread", m.slowdown_spread);
    json.metric(p + "_preemptions", m.preemptions);
    json.metric(p + "_resizes", m.resizes);
    json.metric(p + "_busy_node_s", m.busy_node_s);
    json.metric(p + "_run_node_s", m.run_node_s);
    json.metric(p + "_overhead_node_s", m.overhead_node_s);
    json.metric(p + "_horizon_s", m.horizon_s);
    json.metric(p + "_timeline_errors", report.error_count());
    results.push_back(res);
  }
  t.print(std::cout);

  const sched::SchedMetrics& fifo = results[0].metrics;
  const sched::SchedMetrics& fair = results[2].metrics;
  // Gate 1: fair-share beats FIFO on tail queue wait under the heavy trace.
  if (!(fair.wait_p95_s < fifo.wait_p95_s)) {
    std::fprintf(stderr,
                 "FAIL: fair-share p95 wait %.3fs not below FIFO's %.3fs\n",
                 fair.wait_p95_s, fifo.wait_p95_s);
    ++failures;
  }
  // Gate 2: fair-share tightens the completion spread (in slowdown terms).
  if (!(fair.slowdown_spread < fifo.slowdown_spread)) {
    std::fprintf(stderr,
                 "FAIL: fair-share slowdown spread %.3fx not below FIFO's "
                 "%.3fx\n",
                 fair.slowdown_spread, fifo.slowdown_spread);
    ++failures;
  }
  std::printf("\nfair-share vs FIFO: p95 wait %.1fs -> %.1fs, slowdown "
              "spread %.2fx -> %.2fx\n",
              fifo.wait_p95_s, fair.wait_p95_s, fifo.slowdown_spread,
              fair.slowdown_spread);

  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
