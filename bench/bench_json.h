// Shared --json support for the custom-main benchmarks: each bench collects
// its headline numbers as named metrics and, when invoked with
// `--json <path>` (or `--json=<path>`), writes them as one JSON object
//
//   {"bench": "<name>", "schema_version": N, "wall_clock_s": W,
//    "metrics": {...}}
//
// on destruction — the machine-readable twin of the printed tables, suitable
// for checking into BENCH_*.json files or diffing across commits. The
// schema_version field lets downstream tooling (CI gates, trend dashboards)
// detect emitter-format changes instead of misparsing old files; bump
// kBenchJsonSchemaVersion whenever the envelope shape changes. Without the
// flag the helper is inert. (bench_gemm links google-benchmark and uses its
// native --benchmark_out instead.)
#pragma once

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace swcaffe::bench {

/// Version of the BENCH_*.json envelope: v2 added this field itself; v3
/// added bench_overlap's hierarchical/compressed full-machine series
/// (hier_* metrics to 40,960 nodes); v4 added the top-level wall_clock_s
/// self-timing (harness wall clock from JsonBench construction to the write
/// — the number the simulator perf-smoke gate budgets). wall_clock_s varies
/// run to run by nature: byte-determinism diffs must normalize it away (see
/// the sed step in the CI bench jobs) — it is a top-level envelope field,
/// never a metric, precisely so that one normalization handles every bench.
inline constexpr int kBenchJsonSchemaVersion = 4;

/// Sanitizes a human-facing label ("VGG-16 (B=16/CG)") into a metric key
/// ("vgg_16_b_16_cg"): lowercase, runs of non-alphanumerics collapse to '_'.
inline std::string metric_key(const std::string& label) {
  std::string out;
  for (char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

class JsonBench {
 public:
  JsonBench(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)),
        start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path_ = argv[++i];
      }
    }
  }

  JsonBench(const JsonBench&) = delete;
  JsonBench& operator=(const JsonBench&) = delete;

  ~JsonBench() {
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      return;
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    char wall_buf[32];
    std::snprintf(wall_buf, sizeof(wall_buf), "%.6f", wall);
    out << "{\"bench\": \"" << name_ << "\", \"schema_version\": "
        << kBenchJsonSchemaVersion << ", \"wall_clock_s\": " << wall_buf
        << ", \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out << ", ";
      out << '"' << metrics_[i].first << "\": ";
      const double v = metrics_[i].second;
      if (std::isfinite(v)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out << buf;
      } else {
        out << "null";  // JSON has no Inf/NaN literals
      }
    }
    out << "}}\n";
    std::printf("wrote %zu metrics to %s\n", metrics_.size(), path_.c_str());
  }

  bool enabled() const { return !path_.empty(); }

  /// Records one metric; later values with the same name are kept as-is
  /// (the object is written in insertion order, duplicates included, which
  /// standard parsers resolve last-wins).
  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace swcaffe::bench
