// Ablation for the paper's gradient-packing optimization (Sec. V-A): one
// fused all-reduce over the packed gradients of all layers vs one all-reduce
// per layer. Per-layer messages pay the log(p)-deep latency chain once per
// layer and leave sum/memory bandwidth underutilized on small tensors.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "core/models.h"
#include "topo/allreduce.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_packing", argc, argv);
  const topo::NetParams net = topo::sunway_network();
  struct Cfg {
    const char* name;
    core::NetSpec spec;
  };
  Cfg cfgs[] = {{"AlexNet", core::alexnet_bn(256)},
                {"VGG-16", core::vgg(16, 64)},
                {"ResNet-50", core::resnet50(32)},
                {"GoogleNet", core::googlenet(128)}};

  std::printf("=== Ablation: packed vs per-layer gradient all-reduce "
              "(1024 nodes, q=256, round-robin) ===\n");
  std::printf("The paper packs all layers' gradients into one message "
              "(Sec. V-A): 'Sum operation for layer gradients of small\n"
              "parameter size can be inefficient'. VGG-16's extremes: fc6 "
              "~400 MB vs conv1_1 1.7 KB.\n\n");
  topo::Topology topo{1024, 256};
  TablePrinter t({"network", "layers w/ params", "total grads", "packed",
                  "per-layer", "packing speedup"});
  for (const auto& c : cfgs) {
    const auto descs = core::describe_net_spec(c.spec);
    double per_layer_s = 0.0;
    std::int64_t total_bytes = 0;
    int param_layers = 0;
    for (const auto& d : descs) {
      if (d.param_bytes() == 0) continue;
      ++param_layers;
      total_bytes += d.param_bytes();
      per_layer_s += topo::cost_rhd(d.param_bytes(), topo, net,
                                    topo::Placement::kRoundRobin)
                         .seconds;
    }
    const double packed_s =
        topo::cost_rhd(total_bytes, topo, net, topo::Placement::kRoundRobin)
            .seconds;
    t.add_row({c.name, std::to_string(param_layers),
               base::format_bytes(static_cast<double>(total_bytes)),
               base::format_seconds(packed_s),
               base::format_seconds(per_layer_s),
               fmt(per_layer_s / packed_s, 2) + "x"});
    const std::string key = bench::metric_key(c.name);
    json.metric(key + "_packed_s", packed_s);
    json.metric(key + "_per_layer_s", per_layer_s);
    json.metric(key + "_packing_speedup", per_layer_s / packed_s);
  }
  t.print(std::cout);
  std::printf("\nShape to check: deep nets with many small parameter tensors "
              "(ResNet-50, GoogleNet) gain the most from packing.\n");
  return 0;
}
