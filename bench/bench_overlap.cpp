// Overlapped bucketed all-reduce vs the paper's serialized packed message.
//
// The paper (Sec. V-A) packs all gradients into one message and all-reduces
// it after the whole backward pass — communication fully exposed. This
// bench prices the bucketed alternative: tune_buckets searches the bucket
// count per (net, node count), schedule_overlap hides each bucket's
// collective under the remaining backward work, and the tables report how
// much of the Fig. 10/11 communication share the overlap removes.
//
// Gates (CI perf-smoke):
//  * the overlapped VGG-16 B=128 iteration at 16 nodes must be strictly
//    faster than the serial one;
//  * the hierarchical + int8 + overlapped AlexNet B=256 configuration must
//    beat the flat overlapped one at 1024 nodes, exceed 1009x speedup
//    there, and stay near-linear at 4096 and 40,960 nodes (the full
//    TaihuLight scale) — calibrated floors on parallel efficiency;
//  * a sampled functional cross-check: ONE real iteration of a reduced
//    AlexNet (2 replicas, bucketed all-reduce) must charge exactly — bit
//    for bit — the communication the swsim timing-only twin prices for the
//    same configuration (sim_test pins the full algorithm x codec matrix on
//    a small net; this samples it on a paper net with live gradients);
//  * the whole bench must finish under a hard wall-clock budget — the
//    simulator perf-smoke gate. The functional section is deliberately a
//    SAMPLE (one iteration, two replicas): everything else runs on the
//    timing-only fast path, which is what keeps the full-machine sweep in
//    seconds.
// Any gate failure exits 1.
//
//   bench_overlap [--json OUT] [--trace=out.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "../tests/fixtures.h"
#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "swdnn/layer_estimate.h"
#include "topo/compress.h"
#include "topo/hierarchical.h"
#include "topo/overlap.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "tune/bucket_tune.h"
#include "tune/comm_tune.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

struct Series {
  const char* name;
  core::NetSpec quarter;  ///< per-core-group spec (sub_batch / 4)
  std::int64_t param_bytes;
  bool gate;  ///< the CI perf gate runs on this series
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const double bench_t0 = now_s();
  // Hard whole-bench wall-clock budget (the simulator perf-smoke gate):
  // before swsim this bench spent ~68s in functional replica passes alone;
  // the timing-only fast path plus the sampled slow path must stay well
  // under this even on a slow single-core CI runner.
  constexpr double kWallBudgetS = 30.0;
  bench::JsonBench json("bench_overlap", argc, argv);
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }

  hw::CostModel cost;
  const std::vector<int> nodes = {4, 16, 64, 256, 1024};
  constexpr int kGateNodes = 16;

  std::vector<Series> series;
  series.push_back({"AlexNet B=256", core::alexnet_bn(64),
                    fixtures::kAlexNetGradientBytes, false});
  {
    // VGG-16 B=128: the packed message is the spec's own parameter volume
    // (the reduced-resolution zoo net; per-layer proportions are what the
    // overlap schedule cares about).
    core::NetSpec vgg = core::vgg(16, 32);
    const std::int64_t bytes =
        core::total_param_bytes(core::describe_net_spec(vgg));
    series.push_back({"VGG-16 B=128", std::move(vgg), bytes, true});
  }
  series.push_back({"ResNet50 B=64",
                    fixtures::resnet50_spec(2 * fixtures::kResNet50BatchPerCg),
                    fixtures::kResNet50GradientBytes, false});

  const parallel::SsgdOptions opt;  // binomial RHD, round-robin, q = 256
  bool gate_ok = true;
  trace::Tracer tracer;

  double section_t0 = now_s();
  std::printf("=== Overlapped bucketed all-reduce vs serialized packed "
              "message (tuned bucket count) ===\n");
  for (const auto& s : series) {
    const std::vector<core::LayerDesc> descs =
        core::describe_net_spec(s.quarter);
    const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost, descs);
    std::vector<std::int64_t> layer_bytes;
    layer_bytes.reserve(descs.size());
    for (const auto& d : descs) layer_bytes.push_back(d.param_bytes());
    layer_bytes = topo::scale_layer_bytes(layer_bytes, s.param_bytes);

    std::printf("\n--- %s (compute %s/iter, %.1f MB gradients) ---\n", s.name,
                base::format_seconds(tl.total_s).c_str(),
                static_cast<double>(s.param_bytes) / 1e6);
    TablePrinter t({"nodes", "serial iter", "overlap iter", "buckets",
                    "exposed comm", "comm hidden", "gain"});
    for (int n : nodes) {
      topo::Topology topo;
      topo.num_nodes = n;
      topo.supernode_size = opt.supernode_size;
      const auto bucket_cost = [&](std::int64_t b) {
        return topo::cost_rhd(b, topo, opt.net, topo::Placement::kRoundRobin);
      };
      tune::BucketTuneOptions bopts;
      bopts.eager_limit = opt.net.eager_limit;
      const tune::BucketChoice choice = tune::tune_buckets(
          layer_bytes, tl.bwd_s, tl.total_s, bucket_cost, bopts);

      const double serial_comm = choice.serial_s - tl.total_s;
      const double hidden =
          serial_comm > 0
              ? 1.0 - choice.exposed_comm_s / serial_comm
              : 1.0;
      t.add_row({std::to_string(n),
                 base::format_seconds(choice.serial_s),
                 base::format_seconds(choice.overlapped_s),
                 std::to_string(choice.buckets),
                 base::format_seconds(choice.exposed_comm_s),
                 fmt(100.0 * hidden, 1) + "%",
                 fmt(choice.serial_s / choice.overlapped_s, 2) + "x"});

      const std::string key =
          bench::metric_key(s.name) + "_" + std::to_string(n) + "nodes";
      json.metric(key + "_serial_s", choice.serial_s);
      json.metric(key + "_overlap_s", choice.overlapped_s);
      json.metric(key + "_buckets", choice.buckets);
      json.metric(key + "_exposed_comm_s", choice.exposed_comm_s);
      json.metric(key + "_exposed_fraction",
                  choice.exposed_comm_s / choice.overlapped_s);
      json.metric(key + "_overlap_gain",
                  choice.serial_s / choice.overlapped_s);

      if (s.gate && n == kGateNodes) {
        if (!(choice.overlapped_s < choice.serial_s)) {
          std::fprintf(stderr,
                       "GATE FAILED: %s at %d nodes: overlapped %.6g s is "
                       "not faster than serial %.6g s\n",
                       s.name, n, choice.overlapped_s, choice.serial_s);
          gate_ok = false;
        }
        json.metric("gate_overlap_s", choice.overlapped_s);
        json.metric("gate_serial_s", choice.serial_s);

        // Render the gate configuration as a Perfetto timeline: compute on
        // track 0, the tuned bucket schedule on track 1 — the bucket spans
        // visibly overlap the compute span.
        const auto layout =
            topo::make_buckets(layer_bytes, choice.buckets);
        const topo::OverlapTimeline otl =
            topo::schedule_overlap(layout, tl.bwd_s, tl.total_s, bucket_cost);
        tracer.set_track_name(0, "node0 compute");
        tracer.set_track_name(1, "network (bucketed all-reduce)");
        tracer.set_clock(0, 0.0);
        tracer.begin_span(0, s.name + std::string(" fwd+bwd"), "compute");
        tracer.end_span(0, otl.compute_s);
        topo::trace_overlap(&tracer, 1, otl);
      }
    }
    t.print(std::cout);
  }
  json.metric("section_tuned_wall_s", now_s() - section_t0);
  section_t0 = now_s();

  // --- Hierarchical + compressed all-reduce to full-machine scale ----------
  // AlexNet B=256 (the paper's communication-bound case), priced far past
  // Fig. 10's 1024 nodes: the two-level supernode-aware all-reduce folds
  // only 1/q of the message across the oversubscribed central switch, and
  // the int8 error-feedback codec shrinks the wire bytes 4x on top. Each
  // series re-tunes its bucket count per node count.
  {
    const std::vector<core::LayerDesc> descs =
        core::describe_net_spec(core::alexnet_bn(64));
    const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost, descs);
    std::vector<std::int64_t> layer_bytes;
    layer_bytes.reserve(descs.size());
    for (const auto& d : descs) layer_bytes.push_back(d.param_bytes());
    layer_bytes = topo::scale_layer_bytes(layer_bytes,
                                          fixtures::kAlexNetGradientBytes);

    struct HierCfg {
      const char* label;
      bool hierarchical;
      topo::Compression codec;
    };
    const HierCfg cfgs[] = {
        {"flat", false, topo::Compression::kNone},
        {"hier", true, topo::Compression::kNone},
        {"hier_fp16", true, topo::Compression::kFp16},
        {"hier_int8", true, topo::Compression::kInt8},
    };
    const std::vector<int> big_nodes = {4, 16, 64, 256, 1024, 4096, 40960};
    constexpr int kHierGateNodes = 1024;
    // PR-5's flat overlapped AlexNet speedup at 1024 nodes; the
    // hierarchical+int8 configuration must beat it.
    constexpr double kPrevBestSpeedup1024 = 1009.0;
    // Near-linear floors on parallel efficiency (speedup / nodes) at scale,
    // calibrated ~10% under the measured values so a model regression
    // trips the gate but numeric noise does not.
    // (measured ~1.00 at both scales; the flat algorithm drops to ~0.31 at
    // 40,960 nodes, so the floor cleanly separates the two).
    constexpr double kEff4096Floor = 0.90;
    constexpr double kEff40960Floor = 0.90;

    std::printf("\n=== Hierarchical + compressed all-reduce, AlexNet B=256 "
                "to full-machine scale (tuned buckets) ===\n");
    TablePrinter t({"nodes", "flat speedup", "hier", "hier+fp16", "hier+int8",
                    "int8 efficiency"});
    double flat_speedup_gate = 0.0, int8_speedup_gate = 0.0;
    for (int n : big_nodes) {
      topo::Topology topo;
      topo.num_nodes = n;
      topo.supernode_size = opt.supernode_size;
      std::vector<std::string> row = {std::to_string(n)};
      double int8_eff = 0.0;
      for (const auto& cfg : cfgs) {
        const auto bucket_cost = [&](std::int64_t b) {
          return topo::cost_compressed(
              cfg.codec, b, opt.net, [&](std::int64_t wire) {
                return cfg.hierarchical
                           ? topo::cost_hierarchical(wire, topo, opt.net)
                           : topo::cost_rhd(wire, topo, opt.net,
                                            topo::Placement::kRoundRobin);
              });
        };
        tune::BucketTuneOptions bopts;
        bopts.eager_limit = opt.net.eager_limit;
        const tune::BucketChoice choice = tune::tune_buckets(
            layer_bytes, tl.bwd_s, tl.total_s, bucket_cost, bopts);
        const double speedup = n * tl.total_s / choice.overlapped_s;
        row.push_back(fmt(speedup, 1) + "x");

        const std::string key = std::string("hier_alexnet_") +
                                std::to_string(n) + "nodes_" + cfg.label;
        json.metric(key + "_overlap_s", choice.overlapped_s);
        json.metric(key + "_speedup", speedup);
        json.metric(key + "_buckets", choice.buckets);

        if (std::strcmp(cfg.label, "flat") == 0 && n == kHierGateNodes) {
          flat_speedup_gate = speedup;
        }
        if (std::strcmp(cfg.label, "hier_int8") == 0) {
          int8_eff = speedup / n;
          if (n == kHierGateNodes) int8_speedup_gate = speedup;
          if (n == 4096 && int8_eff < kEff4096Floor) {
            std::fprintf(stderr,
                         "GATE FAILED: hier+int8 efficiency %.3f < %.2f at "
                         "4096 nodes\n",
                         int8_eff, kEff4096Floor);
            gate_ok = false;
          }
          if (n == 40960 && int8_eff < kEff40960Floor) {
            std::fprintf(stderr,
                         "GATE FAILED: hier+int8 efficiency %.3f < %.2f at "
                         "40960 nodes\n",
                         int8_eff, kEff40960Floor);
            gate_ok = false;
          }
        }
      }
      row.push_back(fmt(100.0 * int8_eff, 1) + "%");
      t.add_row(row);
    }
    t.print(std::cout);

    if (!(int8_speedup_gate > flat_speedup_gate)) {
      std::fprintf(stderr,
                   "GATE FAILED: hier+int8 speedup %.1fx does not beat flat "
                   "%.1fx at %d nodes\n",
                   int8_speedup_gate, flat_speedup_gate, kHierGateNodes);
      gate_ok = false;
    }
    if (!(int8_speedup_gate > kPrevBestSpeedup1024)) {
      std::fprintf(stderr,
                   "GATE FAILED: hier+int8 speedup %.1fx <= previous best "
                   "%.1fx at %d nodes\n",
                   int8_speedup_gate, kPrevBestSpeedup1024, kHierGateNodes);
      gate_ok = false;
    }
    json.metric("hier_gate_flat_speedup_1024", flat_speedup_gate);
    json.metric("hier_gate_int8_speedup_1024", int8_speedup_gate);

    // swtune's joint search over the same model: at full-machine scale the
    // tuner should discover the hierarchical + compressed configuration on
    // its own (reported, not gated — the winning codec may legitimately be
    // fp16 or int8 depending on where the codec passes balance the wire).
    tune::CommTuneOptions copts;
    copts.net = opt.net;
    copts.supernode_size = opt.supernode_size;
    const tune::CommChoice cc =
        tune::tune_comm(tl.bwd_s, tl.total_s, layer_bytes, 40960, copts);
    std::printf("\nswtune @40960 nodes: %s + %s, %d buckets "
                "(%.3fs vs %.3fs baseline, %zu candidates)\n",
                cc.algorithm.c_str(), topo::compression_name(cc.compression),
                cc.buckets, cc.overlapped_s, cc.baseline_s,
                cc.candidates.size());
    json.metric("tune_comm_40960_overlap_s", cc.overlapped_s);
    json.metric("tune_comm_40960_baseline_s", cc.baseline_s);
    json.metric("tune_comm_40960_buckets", cc.buckets);
    json.metric("tune_comm_40960_is_hier",
                cc.algorithm == "hierarchical" ? 1.0 : 0.0);
  }

  json.metric("section_hier_wall_s", now_s() - section_t0);
  section_t0 = now_s();

  // --- Wall-clock: sampled functional iteration vs timing-only pricing ----
  //
  // Everything above ran on the swsim timing-only fast path. This section is
  // the sampled slow path: ONE real iteration of a reduced AlexNet with live
  // gradients, bucket-all-reduced through the cost model, so the
  // functionally charged communication can be compared -- bitwise -- against
  // what price_iteration (the timing-only fast path) prices for the same
  // configuration. Before swsim this section was the whole bench's budget
  // (8 replicas x warm-up + 2 timed iterations x 2 trainers = 48
  // replica-passes, plus a serial-vs-threaded identity gate that
  // SsgdTest.ThreadedReplicasBitIdenticalToSerial now pins in tests/); a
  // two-replica sample plus the priced fast path covers the cross-check.
  {
    constexpr int kReplicas = 2;
    const core::NetSpec spec = core::alexnet_bn(1, 10, 67);
    core::SolverSpec solver;
    parallel::SsgdOptions so;
    so.buckets = 3;  // exercise the bucketed accumulation order
    parallel::SsgdTrainer sample(spec, kReplicas, solver, so, 7);

    const std::size_t dpn = sample.node(0).blob("data")->count();
    const std::size_t lpn = sample.node(0).blob("label")->count();
    std::vector<float> data(dpn * kReplicas), labels(lpn * kReplicas);
    base::Rng rng(11);
    for (auto& v : data) v = rng.gaussian(0.0f, 1.0f);
    for (auto& v : labels) v = static_cast<float>(rng.uniform_int(0, 9));

    std::vector<std::vector<float>> grads(kReplicas);
    const double t0 = now_s();
    const double loss = sample.forward_backward_packed(data, labels, grads);
    const double fb_s = now_s() - t0;
    std::printf("\n=== Sampled functional iteration: %d replicas of reduced "
                "AlexNet ===\n",
                kReplicas);
    std::printf("forward+backward %s (loss %.4f)\n",
                base::format_seconds(fb_s).c_str(), loss);
    json.metric("wallclock_functional_fb_s", fb_s);

    // Cross-check gate: all-reduce the live gradients through the cost model
    // and require the charged communication to equal -- bit for bit -- what
    // the timing-only fast path prices for the same net/topology/options.
    // (sim_test pins the full algorithm x codec matrix on a small net; this
    // samples the equality on a paper net with real gradient payloads.)
    sample.allreduce(grads);
    const topo::CostBreakdown functional = sample.last_comm();
    const parallel::TimedIteration priced =
        sample.price_iteration(cost, core::describe_net_spec(spec));
    const bool comm_match = functional.seconds == priced.comm.seconds &&
                            functional.alpha_terms == priced.comm.alpha_terms &&
                            functional.beta1_bytes == priced.comm.beta1_bytes &&
                            functional.beta2_bytes == priced.comm.beta2_bytes &&
                            functional.gamma_bytes == priced.comm.gamma_bytes;
    std::printf("functional all-reduce %.9es vs timing-only %.9es: %s\n",
                functional.seconds, priced.comm.seconds,
                comm_match ? "bit-identical" : "DIVERGED");
    json.metric("crosscheck_functional_comm_s", functional.seconds);
    json.metric("crosscheck_priced_comm_s", priced.comm.seconds);
    json.metric("crosscheck_comm_match", comm_match ? 1.0 : 0.0);
    if (!comm_match) {
      std::fprintf(stderr, "GATE FAILED: timing-only priced communication "
                           "diverged from the functional all-reduce\n");
      gate_ok = false;
    }
  }

  if (!trace_path.empty()) {
    trace::save_chrome_trace(tracer, trace_path);
    std::printf("\nwrote Chrome trace to %s (open in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  json.metric("section_functional_wall_s", now_s() - section_t0);
  const double bench_wall_s = now_s() - bench_t0;
  std::printf("\nbench wall clock: %.3fs (budget %.0fs)\n", bench_wall_s,
              kWallBudgetS);
  if (bench_wall_s > kWallBudgetS) {
    std::fprintf(stderr,
                 "GATE FAILED: bench wall clock %.3fs exceeds the %.0fs "
                 "budget\n",
                 bench_wall_s, kWallBudgetS);
    gate_ok = false;
  }
  std::printf("\n%s\n", gate_ok ? "overlap gate: PASS" : "overlap gate: FAIL");
  return gate_ok ? 0 : 1;
}
