// Table I (spec sheet) and Table III reproduction: end-to-end training
// throughput (img/s) of the five networks on the CPU model, the K40m model
// and the SW26010 model, with the SW/NV and SW/CPU ratio columns.
#include <cstdio>
#include <iostream>

#include "base/table.h"
#include "bench_json.h"
#include "../tests/fixtures.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "perfmodel/device_model.h"
#include "swdnn/layer_estimate.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

struct NetCfg {
  const char* name;
  core::NetSpec full;     // full batch (CPU/GPU run the whole mini-batch)
  core::NetSpec quarter;  // batch/4 (one SW26010 core group, Algorithm 1)
  int batch;
  double paper_cpu, paper_gpu, paper_sw;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_networks", argc, argv);
  std::printf("=== Table I: processor comparison ===\n");
  {
    TablePrinter t({"spec", "SW26010", "NVIDIA K40m", "Intel KNL"});
    t.add_row({"release year", "2014", "2013", "2016"});
    t.add_row({"bandwidth (GB/s)", "128", "288", "475"});
    t.add_row({"float perf (TFlops)", "3.02", "4.29", "6.92"});
    t.add_row({"double perf (TFlops)", "3.02", "1.43", "3.46"});
    t.print(std::cout);
  }

  // Paper Table III values for side-by-side reporting.
  NetCfg cfgs[] = {
      {"AlexNet", fixtures::alexnet_spec(),
       fixtures::alexnet_spec(fixtures::kAlexNetBatchPerCg),
       fixtures::kAlexNetBatch, 12.01,
       79.25, 94.17},
      {"VGG-16", fixtures::vgg_spec(16),
       fixtures::vgg_spec(16, fixtures::kVggBatchPerCg), fixtures::kVggBatch,
       1.06, 13.79, 6.21},
      {"VGG-19", fixtures::vgg_spec(19),
       fixtures::vgg_spec(19, fixtures::kVggBatchPerCg), fixtures::kVggBatch,
       1.07, 11.2, 5.52},
      {"ResNet-50", fixtures::resnet50_spec(),
       fixtures::resnet50_spec(fixtures::kResNet50BatchPerCg),
       fixtures::kResNet50Batch, 1.99, 25.45, 5.56},
      {"GoogleNet", core::googlenet(128), core::googlenet(32), 128, 4.92,
       66.09, 14.97},
  };

  std::printf("\n=== Table III: throughput in img/s, ours (paper) ===\n");
  hw::CostModel cost;
  const auto gpu = perfmodel::k40m();
  const auto cpu = perfmodel::xeon_e5_2680v3();
  TablePrinter t({"network", "CPU", "NV K40m", "SW", "SW/NV", "SW/CPU"});
  for (const auto& c : cfgs) {
    const auto full = core::describe_net_spec(c.full);
    const auto quarter = core::describe_net_spec(c.quarter);
    const std::int64_t input_bytes = fixtures::imagenet_input_bytes(c.batch);
    const double cpu_img =
        perfmodel::device_throughput_img_s(cpu, full, c.batch, 0);
    const double gpu_img =
        perfmodel::device_throughput_img_s(gpu, full, c.batch, input_bytes);
    const double sw_img = dnn::node_throughput_img_s(cost, quarter, c.batch);
    auto pair = [](double ours, double paper) {
      return fmt(ours, 2) + " (" + fmt(paper, 2) + ")";
    };
    t.add_row({c.name, pair(cpu_img, c.paper_cpu), pair(gpu_img, c.paper_gpu),
               pair(sw_img, c.paper_sw),
               pair(sw_img / gpu_img, c.paper_sw / c.paper_gpu),
               pair(sw_img / cpu_img, c.paper_sw / c.paper_cpu)});
    const std::string key = bench::metric_key(c.name);
    json.metric(key + "_cpu_img_s", cpu_img);
    json.metric(key + "_gpu_img_s", gpu_img);
    json.metric(key + "_sw_img_s", sw_img);
  }
  t.print(std::cout);
  std::printf(
      "\nPaper shapes to check: SW beats the K40m only on AlexNet "
      "(PCIe-bound input pipeline, Sec. VI-B); GPU wins\n2-5x on "
      "VGG/ResNet/GoogleNet; SW beats the 12-core CPU on every network "
      "(paper: 3.04x-7.84x).\n");

  std::printf("\n=== Ablation: the paper's AlexNet refinement (LRN->BN, "
              "ungrouped) vs the original ===\n");
  {
    TablePrinter a({"variant", "params (MB)", "SW img/s", "notes"});
    const auto refined = fixtures::alexnet_per_cg_descs();
    const auto original =
        core::describe_net_spec(core::alexnet_original(64));
    auto params_mb = [](const std::vector<core::LayerDesc>& d) {
      return core::total_param_bytes(d) / 1e6;
    };
    a.add_row({"AlexNet-BN (paper)", fmt(params_mb(refined), 1),
               fmt(dnn::node_throughput_img_s(cost, refined, 256), 2),
               "BN replaces LRN (Sec. VI-A); no channel groups"});
    a.add_row({"AlexNet original", fmt(params_mb(original), 1),
               fmt(dnn::node_throughput_img_s(cost, original, 256), 2),
               "LRN + historical 2-group conv2/4/5"});
    a.print(std::cout);
    std::printf("The original's 2-group convolutions halve the flop count, "
                "which outweighs their narrower per-group channels\n"
                "in the model, so it is marginally faster; the paper's "
                "refinement ('without affecting the accuracy', Sec. VI-A)\n"
                "trades that for BN's training behaviour and wide channels "
                "that suit the implicit kernel.\n");
  }
  return 0;
}
