// Fig. 9 reproduction: per-layer forward/backward time of VGG-16 on the
// SW26010 model vs the K40m GPU model, batch 64 (SW column: one core group
// at batch/4 = 16, the unit Algorithm 1 schedules).
#include <cstdio>

#include "bench_json.h"
#include "../tests/fixtures.h"
#include "core/models.h"
#include "layer_table.h"

int main(int argc, char** argv) {
  using namespace swcaffe;
  bench::JsonBench json("bench_layers_vgg", argc, argv);
  std::printf("=== Fig. 9: VGG-16 per-layer times, batch 64 "
              "(SW column: one CG at batch 16) ===\n\n");
  const auto descs = fixtures::vgg_per_cg_descs(16);
  const auto [sw_total, gpu_total] = benchutil::print_layer_comparison(descs);
  json.metric("sw_total_s", sw_total);
  json.metric("gpu_total_s", gpu_total);
  std::printf(
      "\nPaper shapes to check (Sec. VI-A): the first two convolutions lag "
      "the GPU most (im2col traffic on 224x224\nimages, 3/64 channels); "
      "mid-network convolutions approach GPU times; pooling/ReLU remain "
      "bandwidth-bound on SW26010.\n");
  return 0;
}
