// Fig. 8 reproduction: per-layer forward/backward time of AlexNet (with the
// paper's LRN->BN refinement) on the SW26010 model vs the K40m GPU model,
// batch 256 (SW times shown for one core group processing batch/4 = 64, the
// unit Algorithm 1 schedules).
#include <cstdio>

#include "bench_json.h"
#include "../tests/fixtures.h"
#include "core/models.h"
#include "layer_table.h"

int main(int argc, char** argv) {
  using namespace swcaffe;
  bench::JsonBench json("bench_layers_alexnet", argc, argv);
  std::printf("=== Fig. 8: AlexNet-BN per-layer times, batch 256 "
              "(SW column: one CG at batch 64) ===\n\n");
  const auto descs = fixtures::alexnet_per_cg_descs();
  const auto [sw_total, gpu_total] = benchutil::print_layer_comparison(descs);
  json.metric("sw_total_s", sw_total);
  json.metric("gpu_total_s", gpu_total);
  std::printf(
      "\nPaper shapes to check (Sec. VI-A): bandwidth-bound layers "
      "(pool/bn/relu) cost real time on SW26010 but are\nnearly free on the "
      "GPU's 288 GB/s memory; conv1 (3 input channels, large image) is "
      "SW26010's weakest layer;\nfc6/fc7 GEMMs are competitive thanks to the "
      "register-communication kernel.\n");
  return 0;
}
