// Sec. IV-C ablation: the tensor-transformation layer and the "gather
// implicit convolutions together" optimization. For each network, compares
// (a) the gathered plan (transforms at run boundaries only), (b) the naive
// plan (a transform pair around every implicit convolution), and (c) the
// all-explicit net that needs no transforms at all.
#include <cstdio>
#include <iostream>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "swdnn/transform_plan.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_transform", argc, argv);
  hw::CostModel cost;
  struct Cfg {
    const char* name;
    core::NetSpec quarter;  // one core group's share
  };
  Cfg cfgs[] = {{"AlexNet (B=64/CG)", core::alexnet_bn(64)},
                {"VGG-16 (B=16/CG)", core::vgg(16, 16)},
                {"ResNet-50 (B=8/CG)", core::resnet50(8)},
                {"GoogleNet (B=32/CG)", core::googlenet(32)}};

  std::printf("=== Sec. IV-C: layout transform planning ===\n");
  std::printf("'gathered' = transforms only at implicit-run boundaries (the "
              "swCaffe plan); 'per-layer' = a pair around\nevery implicit "
              "conv; 'all-explicit' = avoid transforms entirely by forcing "
              "the explicit plan.\n\n");
  TablePrinter t({"network", "#transforms gathered", "#transforms per-layer",
                  "gathered iter", "per-layer iter", "all-explicit iter",
                  "gathered vs per-layer"});
  for (const auto& c : cfgs) {
    const auto descs = core::describe_net_spec(c.quarter);
    const auto plan = dnn::plan_layout_transforms(cost, descs);
    t.add_row({c.name, std::to_string(plan.gathered_transforms),
               std::to_string(plan.per_layer_transforms),
               base::format_seconds(plan.gathered_total_s),
               base::format_seconds(plan.per_layer_total_s),
               base::format_seconds(plan.all_explicit_total_s),
               fmt(plan.per_layer_total_s / plan.gathered_total_s, 3) + "x"});
    const std::string key = bench::metric_key(c.name);
    json.metric(key + "_gathered_s", plan.gathered_total_s);
    json.metric(key + "_per_layer_s", plan.per_layer_total_s);
    json.metric(key + "_all_explicit_s", plan.all_explicit_total_s);
  }
  t.print(std::cout);
  std::printf("\nShapes to check: gathering reduces transform count and "
              "never loses to per-layer transforms; the mixed\n"
              "implicit/explicit plan (gathered) beats forcing everything "
              "explicit wherever implicit kernels win (Table II).\n");
  return 0;
}
