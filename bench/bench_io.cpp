// Sec. V-B reproduction (parallel I/O): aggregate read bandwidth of N
// concurrent mini-batch readers under the default single-split layout vs
// the paper's 32-way / 256 MB striping, plus the readers-per-array bound
// and the prefetch-overlap effect on iteration time.
#include <cstdio>
#include <iostream>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "io/disk_model.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_io", argc, argv);
  io::DiskParams disk;  // 32 arrays x 2 GB/s, 256 MB stripes
  const std::int64_t batch_bytes = 192LL << 20;  // paper: ~192 MB / 256 images
  const std::int64_t file_bytes = 240LL << 30;   // ImageNet-scale dataset

  std::printf("=== Sec. V-B: aggregate read bandwidth (GB/s) vs process "
              "count ===\n");
  {
    TablePrinter t({"processes", "single-split", "striped (32x256MB)",
                    "striped speedup", "mini-batch read (striped)"});
    for (int procs : {1, 4, 16, 64, 256, 1024}) {
      const double single = io::aggregate_bandwidth(
          disk, io::FileLayout::kSingleSplit, procs, batch_bytes, file_bytes);
      const double striped = io::aggregate_bandwidth(
          disk, io::FileLayout::kStriped, procs, batch_bytes, file_bytes);
      const double read_s = io::read_time(disk, io::FileLayout::kStriped,
                                          procs, batch_bytes, file_bytes);
      t.add_row({std::to_string(procs), fmt(single / 1e9, 2),
                 fmt(striped / 1e9, 2), fmt(striped / single, 1) + "x",
                 base::format_seconds(read_s)});
      const std::string key = std::to_string(procs) + "procs_";
      json.metric(key + "single_split_gbs", single / 1e9);
      json.metric(key + "striped_gbs", striped / 1e9);
      json.metric(key + "striped_read_s", read_s);
    }
    t.print(std::cout);
  }

  std::printf("\n=== Readers-per-array bound (paper: N/32 * 2 for 192 MB "
              "reads) ===\n");
  {
    TablePrinter t({"processes", "bound", "N/32*2"});
    for (int procs : {32, 64, 256, 1024}) {
      t.add_row({std::to_string(procs),
                 std::to_string(io::max_readers_per_array(disk, procs,
                                                          batch_bytes)),
                 std::to_string(procs / 32 * 2)});
    }
    t.print(std::cout);
  }

  std::printf("\n=== Prefetch overlap: per-iteration time = max(compute, "
              "I/O) ===\n");
  {
    // AlexNet-like iteration: ~2.7 s of compute per 256-image batch.
    const double compute_s = 2.72;
    TablePrinter t({"processes", "layout", "I/O (s)", "iteration (s)",
                    "I/O hidden?"});
    for (int procs : {64, 1024}) {
      for (auto layout :
           {io::FileLayout::kSingleSplit, io::FileLayout::kStriped}) {
        const double io_s =
            io::read_time(disk, layout, procs, batch_bytes, file_bytes);
        const double iter = std::max(compute_s, io_s);
        t.add_row({std::to_string(procs),
                   layout == io::FileLayout::kSingleSplit ? "single-split"
                                                          : "striped",
                   fmt(io_s, 3), fmt(iter, 3),
                   io_s <= compute_s ? "yes" : "NO - I/O bound"});
      }
    }
    t.print(std::cout);
  }
  std::printf("\nPaper shapes to check: single-split aggregate bandwidth "
              "saturates at ONE array regardless of process count,\nmaking "
              "training I/O-bound at scale; striping restores compute-bound "
              "iterations.\n");
  return 0;
}
