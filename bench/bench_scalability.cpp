// Figs. 10 and 11 reproduction: SSGD scalability of AlexNet (sub-batch 64,
// 128, 256) and ResNet-50 (sub-batch 32, 64) up to 1024 nodes, with the
// paper's topology-aware all-reduce, plus communication-time fractions, the
// overlapped (bucketed) series, the hierarchical + compressed series to the
// full 40,960-node machine, and the adjacent-placement ablation.
//
// The whole sweep runs on the swsim timing-only fast path
// (parallel::scalability_sweep): every (series, node-count) point is pure
// pricing fanned over host worker threads — no replica tensors exist at any
// node count. Gates (CI perf-smoke):
//  * a sampled subset re-priced on the per-series scalability_curve slow
//    path must match the sweep bitwise (fast path == slow path, by byte);
//  * the sweep's own wall clock must stay under a hard budget — the
//    simulator perf-smoke gate (the point of the fast path is that the
//    full-machine sweep takes seconds, not minutes).
// Any gate failure exits 1.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "../tests/fixtures.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "parallel/sweep.h"
#include "sim/thread_pool.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

struct Paper {
  double speedup_1024;  // Fig. 10
  double comm_1024;     // Fig. 11 (%)
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool same_point(const parallel::ScalePoint& a, const parallel::ScalePoint& b) {
  return a.nodes == b.nodes && a.comp_s == b.comp_s && a.comm_s == b.comm_s &&
         a.speedup == b.speedup && a.comm_fraction == b.comm_fraction &&
         a.overlap_s == b.overlap_s && a.exposed_comm_s == b.exposed_comm_s &&
         a.overlap_speedup == b.overlap_speedup && a.buckets == b.buckets;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_scalability", argc, argv);
  const double wall0 = now_s();
  // The sweep wall-clock budget (seconds). Generous against CI-runner
  // jitter yet far below what even ONE functional 1024-replica point would
  // cost — a regression that drags replica tensors or per-point re-prep
  // back into the sweep path blows through it immediately.
  constexpr double kWallBudgetS = 10.0;

  hw::CostModel cost;
  const std::vector<int> nodes = {1, 2, 8, 32, 128, 512, 1024};
  const std::vector<int> machine = {1024, 4096, 40960};
  const int threads = sim::ThreadPool::hardware_threads();

  // The five paper series, each twice: serial (Fig. 10/11) and overlapped
  // (8 buckets). One scalability_sweep call prices all of it.
  struct Entry {
    const char* name;
    std::vector<core::LayerDesc> descs;
    std::int64_t param_bytes;
    Paper paper;
  };
  std::vector<Entry> entries;
  entries.push_back({"AlexNet B=64", core::describe_net_spec(core::alexnet_bn(16)),
                     fixtures::kAlexNetGradientBytes, {409.50, 60.01}});
  entries.push_back({"AlexNet B=128",
                     core::describe_net_spec(core::alexnet_bn(32)),
                     fixtures::kAlexNetGradientBytes, {561.58, 45.15}});
  entries.push_back({"AlexNet B=256",
                     core::describe_net_spec(core::alexnet_bn(64)),
                     fixtures::kAlexNetGradientBytes, {715.45, 30.13}});
  entries.push_back({"ResNet50 B=32", fixtures::resnet50_per_cg_descs(),
                     fixtures::kResNet50GradientBytes, {928.15, 10.65}});
  entries.push_back({"ResNet50 B=64",
                     core::describe_net_spec(core::resnet50(16)),
                     fixtures::kResNet50GradientBytes, {828.32, 19.11}});

  std::vector<parallel::SweepSeries> sweep;
  for (const auto& e : entries) {
    parallel::SweepSeries s;
    s.label = e.name;
    s.descs_per_cg = e.descs;
    s.param_bytes = e.param_bytes;
    s.node_counts = nodes;  // serial: SsgdOptions defaults (RHD, q = 256)
    sweep.push_back(s);
    s.label = std::string(e.name) + " overlapped";
    s.options.buckets = 8;
    sweep.push_back(std::move(s));
  }
  // Hierarchical + int8 to the full machine (the PR-8 configuration priced
  // at TaihuLight scale — points a functional trainer could never reach).
  for (const auto& e : {entries[2], entries[3]}) {
    parallel::SweepSeries s;
    s.label = std::string(e.name) + " hier+int8";
    s.descs_per_cg = e.descs;
    s.param_bytes = e.param_bytes;
    s.options.algo = parallel::AllreduceAlgo::kHierarchical;
    s.options.compression = topo::Compression::kInt8;
    s.options.buckets = 8;
    s.node_counts = machine;
    sweep.push_back(std::move(s));
  }

  const double sweep0 = now_s();
  const std::vector<parallel::SweepResult> results =
      parallel::scalability_sweep(cost, sweep, threads);
  const double sweep_wall = now_s() - sweep0;
  const auto points = [&](const std::string& label)
      -> const std::vector<parallel::ScalePoint>& {
    for (const auto& r : results) {
      if (r.label == label) return r.points;
    }
    std::fprintf(stderr, "missing sweep series '%s'\n", label.c_str());
    std::exit(1);
  };

  bool gate_ok = true;

  std::printf("=== Fig. 10: speedup vs node count (topology-aware "
              "all-reduce) ===\n");
  {
    std::vector<std::string> header{"nodes"};
    for (const auto& e : entries) header.push_back(e.name);
    TablePrinter t(header);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::vector<std::string> row{std::to_string(nodes[i])};
      for (const auto& e : entries) {
        const parallel::ScalePoint& pt = points(e.name)[i];
        row.push_back(fmt(pt.speedup, 1) + "x");
        const std::string key = bench::metric_key(e.name) + "_" +
                                std::to_string(nodes[i]) + "nodes";
        json.metric(key + "_speedup", pt.speedup);
        json.metric(key + "_comm_fraction", pt.comm_fraction);
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::printf("Paper at 1024 nodes: ");
    for (const auto& e : entries) {
      std::printf("%s %.0fx  ", e.name, e.paper.speedup_1024);
    }
    std::printf("\n");
  }

  std::printf("\n=== Fig. 11: communication time share (%%), ours (paper at "
              "1024) ===\n");
  {
    std::vector<std::string> header{"nodes"};
    for (const auto& e : entries) header.push_back(e.name);
    TablePrinter t(header);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::vector<std::string> row{std::to_string(nodes[i])};
      for (const auto& e : entries) {
        row.push_back(fmt(100.0 * points(e.name)[i].comm_fraction, 1));
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::printf("Paper at 1024 nodes: ");
    for (const auto& e : entries) {
      std::printf("%s %.1f%%  ", e.name, e.paper.comm_1024);
    }
    std::printf("\n");
  }

  std::printf("\n=== Overlapped series: bucketed all-reduce hides comm "
              "under backward (8 buckets) ===\n");
  {
    std::vector<std::string> header{"nodes"};
    for (const auto& e : entries) header.push_back(e.name);
    TablePrinter t(header);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::vector<std::string> row{std::to_string(nodes[i])};
      for (const auto& e : entries) {
        const parallel::ScalePoint& pt =
            points(std::string(e.name) + " overlapped")[i];
        row.push_back(fmt(pt.overlap_speedup, 1) + "x");
        const std::string key = bench::metric_key(e.name) + "_" +
                                std::to_string(nodes[i]) + "nodes";
        json.metric(key + "_overlap_speedup", pt.overlap_speedup);
        json.metric(key + "_exposed_comm_s", pt.exposed_comm_s);
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::printf("(serial Fig. 10 speedups above; the overlapped series can "
                "only match or beat them)\n");
  }

  std::printf("\n=== Full machine: hierarchical + int8, 8 buckets "
              "(Fig. 10 extended to 40,960 nodes) ===\n");
  {
    TablePrinter t({"nodes", "AlexNet B=256", "ResNet50 B=32"});
    for (std::size_t i = 0; i < machine.size(); ++i) {
      std::vector<std::string> row{std::to_string(machine[i])};
      for (const char* name : {"AlexNet B=256", "ResNet50 B=32"}) {
        const parallel::ScalePoint& pt =
            points(std::string(name) + " hier+int8")[i];
        row.push_back(fmt(pt.overlap_speedup, 1) + "x");
        const std::string key = bench::metric_key(name) + "_hier_int8_" +
                                std::to_string(machine[i]) + "nodes";
        json.metric(key + "_overlap_speedup", pt.overlap_speedup);
        json.metric(key + "_overlap_s", pt.overlap_s);
      }
      t.add_row(row);
    }
    t.print(std::cout);
  }

  std::printf("\n=== Ablation: placement and algorithm at 1024 nodes "
              "(AlexNet B=256) ===\n");
  {
    TablePrinter t({"all-reduce", "comm/iter", "speedup"});
    for (auto algo : {parallel::AllreduceAlgo::kRhdRoundRobin,
                      parallel::AllreduceAlgo::kRhdAdjacent,
                      parallel::AllreduceAlgo::kRing,
                      parallel::AllreduceAlgo::kParamServer}) {
      parallel::SsgdOptions o;
      o.algo = algo;
      const auto c = parallel::scalability_curve(
          cost, fixtures::alexnet_per_cg_descs(),
          fixtures::kAlexNetGradientBytes, o, {1024});
      t.add_row({parallel::allreduce_algo_name(algo),
                 base::format_seconds(c[0].comm_s), fmt(c[0].speedup, 1) + "x"});
    }
    t.print(std::cout);
  }

  // --- Gate: sampled slow-path cross-check ---------------------------------
  // Re-price a sampled subset on scalability_curve (the serial per-series
  // slow path) and require byte-for-byte equality with the sweep. The fast
  // path is only allowed to be fast, never different.
  {
    int checked = 0, mismatched = 0;
    for (const auto& s : {sweep[0], sweep[5], sweep.back()}) {
      const std::vector<parallel::ScalePoint> slow = parallel::scalability_curve(
          cost, s.descs_per_cg, s.param_bytes, s.options, s.node_counts);
      const std::vector<parallel::ScalePoint>& fast = points(s.label);
      for (std::size_t i = 0; i < slow.size(); ++i) {
        ++checked;
        if (!same_point(slow[i], fast[i])) {
          std::fprintf(stderr,
                       "GATE FAILED: '%s' at %d nodes: sweep fast path "
                       "diverged from scalability_curve\n",
                       s.label.c_str(), slow[i].nodes);
          ++mismatched;
          gate_ok = false;
        }
      }
    }
    std::printf("\ncross-check: %d sampled points re-priced on the slow "
                "path, %d mismatches\n", checked, mismatched);
    json.metric("crosscheck_points", checked);
    json.metric("crosscheck_mismatches", mismatched);
  }

  // --- Gate: simulator wall clock ------------------------------------------
  const double wall = now_s() - wall0;
  std::printf("sweep: %zu series, %d threads, %.3fs sweep / %.3fs total "
              "wall clock (budget %.1fs)\n",
              sweep.size(), threads, sweep_wall, wall, kWallBudgetS);
  json.metric("sweep_series", static_cast<double>(sweep.size()));
  json.metric("sweep_threads", threads);
  if (wall > kWallBudgetS) {
    std::fprintf(stderr,
                 "GATE FAILED: wall clock %.3fs exceeds the %.1fs simulator "
                 "budget\n",
                 wall, kWallBudgetS);
    gate_ok = false;
  }

  std::printf(
      "\nPaper shapes to check: larger sub-batches scale better; ResNet-50 "
      "(97.7 MB params, more compute) scales best;\ncommunication share "
      "grows with node count and dominates AlexNet at small sub-batch.\n");
  std::printf("\n%s\n",
              gate_ok ? "scalability gate: PASS" : "scalability gate: FAIL");
  return gate_ok ? 0 : 1;
}
