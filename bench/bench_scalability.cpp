// Figs. 10 and 11 reproduction: SSGD scalability of AlexNet (sub-batch 64,
// 128, 256) and ResNet-50 (sub-batch 32, 64) up to 1024 nodes, with the
// paper's topology-aware all-reduce, plus communication-time fractions and
// the adjacent-placement ablation.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "../tests/fixtures.h"
#include "core/models.h"
#include "hw/cost_model.h"
#include "parallel/ssgd.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

struct Series {
  const char* name;
  core::NetSpec quarter;   // per-core-group spec (sub_batch / 4)
  std::int64_t param_bytes;
  double paper_speedup_1024;  // Fig. 10
  double paper_comm_1024;     // Fig. 11 (%)
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_scalability", argc, argv);
  hw::CostModel cost;
  const std::vector<int> nodes = {1, 2, 8, 32, 128, 512, 1024};
  std::vector<Series> series;
  series.push_back({"AlexNet B=64", core::alexnet_bn(16),
                    fixtures::kAlexNetGradientBytes, 409.50, 60.01});
  series.push_back({"AlexNet B=128", core::alexnet_bn(32),
                    fixtures::kAlexNetGradientBytes, 561.58, 45.15});
  series.push_back({"AlexNet B=256", core::alexnet_bn(64),
                    fixtures::kAlexNetGradientBytes, 715.45, 30.13});
  series.push_back({"ResNet50 B=32",
                    fixtures::resnet50_spec(fixtures::kResNet50BatchPerCg),
                    fixtures::kResNet50GradientBytes, 928.15, 10.65});
  series.push_back({"ResNet50 B=64", core::resnet50(16),
                    fixtures::kResNet50GradientBytes, 828.32, 19.11});

  parallel::SsgdOptions opt;  // binomial + round-robin, q = 256

  std::printf("=== Fig. 10: speedup vs node count (topology-aware "
              "all-reduce) ===\n");
  {
    std::vector<std::string> header{"nodes"};
    for (const auto& s : series) header.push_back(s.name);
    TablePrinter t(header);
    std::vector<std::vector<parallel::ScalePoint>> curves;
    for (const auto& s : series) {
      curves.push_back(parallel::scalability_curve(
          cost, core::describe_net_spec(s.quarter), s.param_bytes, opt,
          nodes));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::vector<std::string> row{std::to_string(nodes[i])};
      for (const auto& c : curves) row.push_back(fmt(c[i].speedup, 1) + "x");
      t.add_row(row);
      for (std::size_t s = 0; s < series.size(); ++s) {
        const std::string key = bench::metric_key(series[s].name) + "_" +
                                std::to_string(nodes[i]) + "nodes";
        json.metric(key + "_speedup", curves[s][i].speedup);
        json.metric(key + "_comm_fraction", curves[s][i].comm_fraction);
      }
    }
    t.print(std::cout);
    std::printf("Paper at 1024 nodes: ");
    for (const auto& s : series) {
      std::printf("%s %.0fx  ", s.name, s.paper_speedup_1024);
    }
    std::printf("\n");
  }

  std::printf("\n=== Fig. 11: communication time share (%%), ours (paper at "
              "1024) ===\n");
  {
    std::vector<std::string> header{"nodes"};
    for (const auto& s : series) header.push_back(s.name);
    TablePrinter t(header);
    for (int n : nodes) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto& s : series) {
        const auto c = parallel::scalability_curve(
            cost, core::describe_net_spec(s.quarter), s.param_bytes, opt, {n});
        row.push_back(fmt(100.0 * c[0].comm_fraction, 1));
      }
      t.add_row(row);
    }
    t.print(std::cout);
    std::printf("Paper at 1024 nodes: ");
    for (const auto& s : series) {
      std::printf("%s %.1f%%  ", s.name, s.paper_comm_1024);
    }
    std::printf("\n");
  }

  std::printf("\n=== Overlapped series: bucketed all-reduce hides comm "
              "under backward (8 buckets) ===\n");
  {
    parallel::SsgdOptions oopt;  // same algo/topology, bucketed
    oopt.buckets = 8;
    std::vector<std::string> header{"nodes"};
    for (const auto& s : series) header.push_back(s.name);
    TablePrinter t(header);
    std::vector<std::vector<parallel::ScalePoint>> curves;
    for (const auto& s : series) {
      curves.push_back(parallel::scalability_curve(
          cost, core::describe_net_spec(s.quarter), s.param_bytes, oopt,
          nodes));
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      std::vector<std::string> row{std::to_string(nodes[i])};
      for (const auto& c : curves) {
        row.push_back(fmt(c[i].overlap_speedup, 1) + "x");
      }
      t.add_row(row);
      for (std::size_t s = 0; s < series.size(); ++s) {
        const std::string key = bench::metric_key(series[s].name) + "_" +
                                std::to_string(nodes[i]) + "nodes";
        json.metric(key + "_overlap_speedup", curves[s][i].overlap_speedup);
        json.metric(key + "_exposed_comm_s", curves[s][i].exposed_comm_s);
      }
    }
    t.print(std::cout);
    std::printf("(serial Fig. 10 speedups above; the overlapped series can "
                "only match or beat them)\n");
  }

  std::printf("\n=== Ablation: placement and algorithm at 1024 nodes "
              "(AlexNet B=256) ===\n");
  {
    TablePrinter t({"all-reduce", "comm/iter", "speedup"});
    for (auto algo : {parallel::AllreduceAlgo::kRhdRoundRobin,
                      parallel::AllreduceAlgo::kRhdAdjacent,
                      parallel::AllreduceAlgo::kRing,
                      parallel::AllreduceAlgo::kParamServer}) {
      parallel::SsgdOptions o;
      o.algo = algo;
      const auto c = parallel::scalability_curve(
          cost, fixtures::alexnet_per_cg_descs(),
          fixtures::kAlexNetGradientBytes, o, {1024});
      t.add_row({parallel::allreduce_algo_name(algo),
                 base::format_seconds(c[0].comm_s), fmt(c[0].speedup, 1) + "x"});
    }
    t.print(std::cout);
  }
  std::printf(
      "\nPaper shapes to check: larger sub-batches scale better; ResNet-50 "
      "(97.7 MB params, more compute) scales best;\ncommunication share "
      "grows with node count and dominates AlexNet at small sub-batch.\n");
  return 0;
}
