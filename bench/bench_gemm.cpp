// GEMM kernel microbenchmarks (google-benchmark):
//  * host reference sgemm throughput (the framework's functional engine),
//  * the functional mesh-GEMM simulation (including its simulated-time
//    outputs), and
//  * the RLC-vs-no-RLC analytic ablation (Principle 4: register
//    communication cuts the DMA stream by the mesh factor).
#include <benchmark/benchmark.h>

#include <vector>

#include "base/rng.h"
#include "hw/chip.h"
#include "swgemm/estimate.h"
#include "swgemm/mesh_gemm.h"
#include "swgemm/reference.h"

namespace {

using namespace swcaffe;

void BM_ReferenceSgemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  base::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n), c(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    gemm::sgemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["Gflops"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceSgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_MeshGemmFunctional(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  base::Rng rng(2);
  std::vector<double> a(static_cast<std::size_t>(n) * n),
      b(static_cast<std::size_t>(n) * n), c(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  hw::CoreGroup cg{hw::HwParams{}};
  double simulated = 0.0;
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0);
    const auto stats = gemm::mesh_gemm(cg, a, b, c, n, n, n);
    simulated = stats.ledger.elapsed_s;
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sim_us"] = simulated * 1e6;
}
BENCHMARK(BM_MeshGemmFunctional)->Arg(32)->Arg(64)->Arg(128);

void BM_EstimateRlcVsNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  hw::CostModel cost;
  double ratio = 0.0;
  for (auto _ : state) {
    const auto rlc = gemm::estimate_gemm(cost, n, n, n);
    const auto naive = gemm::estimate_gemm_no_rlc(cost, n, n, n);
    ratio = naive.seconds / rlc.seconds;
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["no_rlc_slowdown"] = ratio;
  state.counters["rlc_gflops"] =
      gemm::estimate_gemm(cost, n, n, n).achieved_gflops;
}
BENCHMARK(BM_EstimateRlcVsNaive)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace
