// Table II reproduction: explicit vs implicit GEMM transformation for every
// VGG-16 convolution layer, batch 128, one core group. Prints the same
// columns as the paper (forward / weight-diff backward / in-diff backward
// times per strategy, plus achieved Gflops of the chosen plan) and the
// per-row paper values for side-by-side comparison.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/table.h"
#include "bench_json.h"
#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "swdnn/conv_plan.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

struct Row {
  const char* name;
  int ni, no, img;
  // Paper Table II values (seconds; -1 = not supported, 0 = NA).
  double p_fwd_imp, p_fwd_exp, p_wd_imp, p_wd_exp, p_id_imp, p_id_exp;
};

std::string cell(double v) {
  if (v < 0) return "-";
  return fmt(v, 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_conv_vgg", argc, argv);
  const Row rows[] = {
      {"1_1", 3, 64, 224, -1, 4.19, -1, 1.10, 0, 0},
      {"1_2", 64, 64, 224, 4.30, 7.79, -1, 5.22, -1, 14.97},
      {"2_1", 64, 128, 112, 1.63, 2.45, -1, 1.33, -1, 3.61},
      {"2_2", 128, 128, 112, 2.34, 3.14, 2.26, 2.25, 2.39, 6.11},
      {"3_1", 128, 256, 56, 1.06, 0.73, 0.92, 0.68, 0.95, 1.69},
      {"3_2", 256, 256, 56, 1.79, 1.14, 1.56, 1.29, 1.82, 3.05},
      {"3_3", 256, 256, 56, 1.79, 1.14, 1.56, 1.27, 1.82, 3.03},
      {"4_1", 256, 512, 28, 0.84, 0.69, 0.70, 0.71, 0.85, 0.95},
      {"4_2", 512, 512, 28, 1.68, 1.33, 1.27, 1.33, 1.75, 1.89},
      {"4_3", 512, 512, 28, 1.68, 1.33, 1.27, 1.67, 1.75, 1.87},
      {"5_1", 512, 512, 14, 0.40, 0.62, 0.31, 0.65, 0.43, 0.80},
      {"5_2", 512, 512, 14, 0.40, 0.63, 0.31, 0.78, 0.43, 0.84},
      {"5_3", 512, 512, 14, 0.40, 0.63, 0.31, 0.65, 0.43, 0.84},
  };

  hw::CostModel cost;
  std::printf("=== Table II: VGG-16 conv layers, batch 128, one core group "
              "===\n");
  std::printf("Columns: ours (paper) in seconds; '-' = strategy unsupported; "
              "NA = first layer needs no input gradient.\n\n");
  TablePrinter t({"conv", "Ni", "No", "Ci/Ri", "fwd imp", "fwd exp",
                  "wdiff imp", "wdiff exp", "idiff imp", "idiff exp",
                  "Gflops(best fwd)"});
  int winner_matches = 0, winner_total = 0;
  for (const auto& r : rows) {
    core::ConvGeom g;
    g.batch = 128;
    g.in_c = r.ni;
    g.out_c = r.no;
    g.in_h = g.in_w = r.img;
    g.kernel = 3;
    g.stride = 1;
    g.pad = 1;
    const auto est = dnn::estimate_conv(cost, g);
    const bool first = std::string(r.name) == "1_1";
    auto pair = [](double ours, double paper) {
      return (ours < 0 ? std::string("-") : fmt(ours, 2)) + " (" +
             cell(paper) + ")";
    };
    t.add_row({r.name, std::to_string(r.ni), std::to_string(r.no),
               std::to_string(r.img),
               pair(est.forward.implicit_s, r.p_fwd_imp),
               pair(est.forward.explicit_s, r.p_fwd_exp),
               pair(est.backward_weight.implicit_s, r.p_wd_imp),
               pair(est.backward_weight.explicit_s, r.p_wd_exp),
               first ? "NA" : pair(est.backward_input.implicit_s, r.p_id_imp),
               first ? "NA" : pair(est.backward_input.explicit_s, r.p_id_exp),
               fmt(est.gflops_fwd, 1)});
    const std::string key = std::string("conv") + r.name;
    json.metric(key + "_fwd_implicit_s", est.forward.implicit_s);
    json.metric(key + "_fwd_explicit_s", est.forward.explicit_s);
    json.metric(key + "_gflops_fwd", est.gflops_fwd);
    // Did the forward winner match the paper's winner?
    if (r.p_fwd_imp > 0) {
      ++winner_total;
      const bool paper_implicit_wins = r.p_fwd_imp < r.p_fwd_exp;
      if (est.forward.implicit_wins() == paper_implicit_wins) ++winner_matches;
    }
  }
  t.print(std::cout);
  std::printf("\nForward-strategy winner agreement with the paper: %d/%d "
              "layers.\n",
              winner_matches, winner_total);
  json.metric("winner_matches", winner_matches);
  json.metric("winner_total", winner_total);
  std::printf("Availability pattern (the '-' cells) is reproduced exactly by "
              "the implicit kernel's channel constraints (Sec. IV-B2).\n");
  return 0;
}
