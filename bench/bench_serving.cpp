// Serving latency/throughput bench: AlexNet, VGG-16 and ResNet-50 under an
// open-loop Poisson load swept from under- to over-subscription, each rate
// served twice — dynamic batching (max_batch 8, max_delay = one unbatched
// forward) vs. unbatched (max_batch 1) — at the same SLO. The JSON output is
// the throughput-vs-latency curve (p50/p95/p99, rejection rate, mean batch
// size per point).
//
// Three gates (exit 1 on violation):
//  1. Batching wins: at the overload rate, dynamic batching sustains
//     strictly higher admitted throughput than batch=1.
//  2. SLO holds: the admission bound is conservative, so no admitted
//     request may ever finish past the SLO — checked on every run.
//  3. Determinism: the whole sweep runs twice and every metric must match
//     bitwise (CI additionally diffs two full --json files byte for byte).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "../tests/fixtures.h"
#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "hw/cost_model.h"
#include "serve/arrival.h"
#include "serve/batcher.h"
#include "serve/engine.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

namespace {

constexpr int kMaxBatch = 8;
/// Offered load as multiples of the unbatched capacity 1/f(1); the last
/// entry is the overload point the batching gate is judged at.
constexpr double kLoads[] = {0.5, 1.0, 2.0, 4.0, 8.0};

struct NetCfg {
  const char* name;
  serve::ModelFn model;
};

struct Point {
  double rate = 0.0;
  serve::ServeResult dyn;
  serve::ServeResult single;
};

std::vector<Point> sweep(const serve::InferenceEngine& engine,
                         double slo_s) {
  const double f1 = engine.batch_time(1);
  std::vector<Point> points;
  for (const double load : kLoads) {
    Point p;
    p.rate = load / f1;
    serve::ArrivalSpec aspec;
    aspec.rate = p.rate;
    // ~40 arrivals at the lightest load, ~640 at the heaviest: enough for
    // stable tail percentiles while keeping the event count trivial.
    aspec.duration_s = 80.0 * f1;
    const std::vector<double> arrivals = serve::generate_arrivals(aspec);

    serve::ServeOptions dyn;
    dyn.batcher.max_batch = kMaxBatch;
    dyn.batcher.max_delay_s = f1;  // wait at most one unbatched forward
    dyn.admission.slo_s = slo_s;
    p.dyn = serve::simulate_serving(engine, arrivals, dyn);

    serve::ServeOptions single;
    single.batcher.max_batch = 1;
    single.batcher.max_delay_s = 0.0;
    single.admission.slo_s = slo_s;
    p.single = serve::simulate_serving(engine, arrivals, single);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonBench json("bench_serving", argc, argv);
  const hw::CostModel cost;
  bool gate_ok = true;

  const NetCfg cfgs[] = {
      {"AlexNet", [](int b) { return fixtures::alexnet_spec(b); }},
      {"VGG-16", [](int b) { return fixtures::vgg_spec(16, b); }},
      {"ResNet-50", [](int b) { return fixtures::resnet50_spec(b); }},
  };

  for (const NetCfg& cfg : cfgs) {
    serve::EngineOptions eopts;
    eopts.max_batch = kMaxBatch;
    const serve::InferenceEngine engine(cost, cfg.name, cfg.model, eopts);
    const double f1 = engine.batch_time(1);
    const double f8 = engine.batch_time(kMaxBatch);
    // Default SLO: generous enough that an under-subscribed server admits
    // everything (3 worst-case batches + the formation wait), tight enough
    // that overload sheds load instead of queueing without bound.
    const double slo_s = 3.0 * f8 + f1;

    const std::vector<Point> points = sweep(engine, slo_s);
    const std::vector<Point> rerun = sweep(engine, slo_s);

    std::printf("\n=== %s: f(1)=%s f(%d)=%s SLO=%s ===\n", cfg.name,
                base::format_seconds(f1).c_str(), kMaxBatch,
                base::format_seconds(f8).c_str(),
                base::format_seconds(slo_s).c_str());
    TablePrinter t({"rate", "cfg", "admitted", "rejected", "tput",
                    "batch", "p50", "p99"});
    for (const Point& p : points) {
      const struct {
        const char* label;
        const serve::ServeResult& r;
      } rows[] = {{"dyn", p.dyn}, {"b=1", p.single}};
      for (const auto& row : rows) {
        t.add_row({fmt(p.rate, 1) + "/s", row.label,
                   std::to_string(row.r.admitted),
                   std::to_string(row.r.rejected),
                   fmt(row.r.throughput_rps, 1) + "/s",
                   fmt(row.r.mean_batch_size, 2),
                   base::format_seconds(row.r.latency.p50_s),
                   base::format_seconds(row.r.latency.p99_s)});
      }
    }
    t.print(std::cout);

    const std::string net_key = bench::metric_key(cfg.name);
    json.metric(net_key + "_forward_1_s", f1);
    json.metric(net_key + "_forward_8_s", f8);
    json.metric(net_key + "_slo_s", slo_s);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const std::string key =
          net_key + "_load" + bench::metric_key(fmt(kLoads[i], 1)) + "x";
      const struct {
        const char* suffix;
        const serve::ServeResult& r;
      } rows[] = {{"_dyn", p.dyn}, {"_b1", p.single}};
      for (const auto& row : rows) {
        json.metric(key + row.suffix + "_throughput_rps",
                    row.r.throughput_rps);
        json.metric(key + row.suffix + "_p50_s", row.r.latency.p50_s);
        json.metric(key + row.suffix + "_p95_s", row.r.latency.p95_s);
        json.metric(key + row.suffix + "_p99_s", row.r.latency.p99_s);
        json.metric(key + row.suffix + "_rejection_rate",
                    row.r.rejection_rate);
        json.metric(key + row.suffix + "_mean_batch", row.r.mean_batch_size);
      }

      // Gate 2: admitted requests never miss the SLO, at every load.
      for (const auto& row : rows) {
        if (row.r.latency.count > 0 && row.r.latency.max_s > slo_s) {
          std::fprintf(stderr,
                       "GATE FAILED: %s %s at %.1f req/s: admitted max "
                       "latency %.6gs exceeds SLO %.6gs\n",
                       cfg.name, row.suffix, p.rate, row.r.latency.max_s,
                       slo_s);
          gate_ok = false;
        }
      }

      // Gate 3: the sweep is a pure function of its inputs — every metric
      // of the in-process rerun must match bitwise.
      const Point& q = rerun[i];
      const struct {
        const serve::ServeResult& a;
        const serve::ServeResult& b;
      } pairs[] = {{p.dyn, q.dyn}, {p.single, q.single}};
      for (const auto& pr : pairs) {
        if (pr.a.throughput_rps != pr.b.throughput_rps ||
            pr.a.latency.p99_s != pr.b.latency.p99_s ||
            pr.a.admitted != pr.b.admitted ||
            pr.a.rejection_rate != pr.b.rejection_rate) {
          std::fprintf(stderr,
                       "GATE FAILED: %s at %.1f req/s: rerun metrics "
                       "differ (non-deterministic sweep)\n",
                       cfg.name, p.rate);
          gate_ok = false;
        }
      }
    }

    // Gate 1: at overload, dynamic batching must sustain strictly higher
    // admitted throughput than unbatched serving.
    const Point& overload = points.back();
    json.metric(net_key + "_gate_dyn_throughput_rps",
                overload.dyn.throughput_rps);
    json.metric(net_key + "_gate_b1_throughput_rps",
                overload.single.throughput_rps);
    if (!(overload.dyn.throughput_rps > overload.single.throughput_rps)) {
      std::fprintf(stderr,
                   "GATE FAILED: %s at %.1f req/s: dynamic batching "
                   "throughput %.6g req/s does not beat batch=1 %.6g "
                   "req/s\n",
                   cfg.name, overload.rate, overload.dyn.throughput_rps,
                   overload.single.throughput_rps);
      gate_ok = false;
    }
    std::printf("batching gain at %.1f req/s offered: %.2fx "
                "(%.1f vs %.1f req/s)\n",
                overload.rate,
                overload.dyn.throughput_rps / overload.single.throughput_rps,
                overload.dyn.throughput_rps, overload.single.throughput_rps);
  }

  if (!gate_ok) {
    std::fprintf(stderr, "bench_serving: GATES FAILED\n");
    return 1;
  }
  std::printf("\nall serving gates passed\n");
  return 0;
}
