// Shared helper for the Fig. 8 / Fig. 9 benches: prints per-layer forward
// and backward times on the SW26010 model vs the K40m GPU model.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "perfmodel/device_model.h"
#include "swdnn/layer_estimate.h"

namespace swcaffe::benchutil {

/// Prints the per-layer table and returns (sw_total, gpu_total) seconds.
inline std::pair<double, double> print_layer_comparison(
    const std::vector<core::LayerDesc>& descs) {
  hw::CostModel cost;
  const perfmodel::DeviceModel gpu = perfmodel::k40m();
  base::TablePrinter t({"layer", "SW fwd", "GPU fwd", "SW bwd", "GPU bwd",
                        "SW/GPU fwd"});
  double sw_total = 0.0, gpu_total = 0.0;
  bool saw_conv = false;
  for (const auto& d : descs) {
    if (d.kind == core::LayerKind::kData ||
        d.kind == core::LayerKind::kAccuracy ||
        d.kind == core::LayerKind::kSoftmaxLoss) {
      continue;
    }
    const bool first = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    const dnn::LayerTime sw = dnn::estimate_layer_sw(cost, d, first);
    const dnn::LayerTime gp = perfmodel::estimate_layer_dev(gpu, d, first);
    sw_total += sw.total();
    gpu_total += gp.total();
    t.add_row({d.name, base::format_seconds(sw.fwd_s),
               base::format_seconds(gp.fwd_s), base::format_seconds(sw.bwd_s),
               base::format_seconds(gp.bwd_s),
               base::fmt(sw.fwd_s / gp.fwd_s, 1) + "x"});
  }
  t.print(std::cout);
  std::printf("\nTotals: SW26010 (one CG) %s vs K40m %s per iteration.\n",
              base::format_seconds(sw_total).c_str(),
              base::format_seconds(gpu_total).c_str());
  return {sw_total, gpu_total};
}

}  // namespace swcaffe::benchutil
