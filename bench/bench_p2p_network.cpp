// Fig. 6 reproduction: MPI point-to-point bandwidth and latency curves for
// the Sunway network vs. an Infiniband FDR network, including the
// over-subscribed cross-supernode variants.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/table.h"
#include "base/units.h"
#include "bench_json.h"
#include "topo/network_model.h"

using namespace swcaffe;
using base::TablePrinter;
using base::fmt;

int main(int argc, char** argv) {
  bench::JsonBench json("bench_p2p_network", argc, argv);
  const topo::NetParams sw = topo::sunway_network();
  const topo::NetParams ib = topo::infiniband_fdr();

  std::printf("=== Fig. 6 (left): P2P bandwidth (GB/s) vs message size ===\n");
  {
    TablePrinter t({"size", "SW uni", "SW bi", "SW uni-oversub",
                    "SW bi-oversub", "IB uni", "IB bi"});
    for (std::int64_t n = 1; n <= (4 << 20); n *= 4) {
      t.add_row({base::format_bytes(static_cast<double>(n)),
                 fmt(topo::p2p_bandwidth(sw, n, false, false) / 1e9, 2),
                 fmt(topo::p2p_bandwidth(sw, n, true, false) / 1e9, 2),
                 fmt(topo::p2p_bandwidth(sw, n, false, true) / 1e9, 2),
                 fmt(topo::p2p_bandwidth(sw, n, true, true) / 1e9, 2),
                 fmt(topo::p2p_bandwidth(ib, n, false, false) / 1e9, 2),
                 fmt(topo::p2p_bandwidth(ib, n, true, false) / 1e9, 2)});
      json.metric("sw_uni_" + std::to_string(n) + "b_gbs",
                  topo::p2p_bandwidth(sw, n, false, false) / 1e9);
      json.metric("ib_uni_" + std::to_string(n) + "b_gbs",
                  topo::p2p_bandwidth(ib, n, false, false) / 1e9);
    }
    t.print(std::cout);
  }

  std::printf("\n=== Fig. 6 (right): P2P latency (ms) vs message size ===\n");
  {
    TablePrinter t({"size", "SW", "Infiniband"});
    for (std::int64_t n = 0; n <= (2 << 20); n = n == 0 ? 2 : n * 4) {
      t.add_row({base::format_bytes(static_cast<double>(n)),
                 fmt(topo::p2p_latency(sw, n) * 1e3, 4),
                 fmt(topo::p2p_latency(ib, n) * 1e3, 4)});
      json.metric("sw_latency_" + std::to_string(n) + "b_ms",
                  topo::p2p_latency(sw, n) * 1e3);
      json.metric("ib_latency_" + std::to_string(n) + "b_ms",
                  topo::p2p_latency(ib, n) * 1e3);
    }
    t.print(std::cout);
  }

  std::printf("\nPaper shapes to check: SW saturates near 12 GB/s (vs IB "
              "~6.8); over-subscribed bandwidth is ~1/4 of full;\n"
              "SW latency exceeds IB for messages >2 KB (eager->rendezvous "
              "switch), reaching ms-scale by 2 MB.\n");
  return 0;
}
