// Elastic per-job trainer handle: the functional counterpart of the
// scheduler's analytic shrink/grow.
//
// The job's LOGICAL replica count is fixed at submission; resize() only
// changes the PHYSICAL gang width the replicas are folded onto. Because the
// functional math (fault::FtSsgdTrainer over `replicas` model copies) never
// depends on the physical width, a resize is exactly the scheduler's
// checkpoint -> release -> re-place -> restore sequence:
//
//   1. write the job-namespaced versioned checkpoint at the current
//      iteration (fault::checkpoint_path with FtOptions::job_id),
//   2. tear the trainer down (the old gang is gone),
//   3. rebuild it from the original spec and restore the checkpoint
//      (crash-rewind-replay on the new gang).
//
// Final weights after any resize sequence are bit-identical to an
// uninterrupted run — the property tests/sched_test.cpp asserts float by
// float, and the reason the simulator may re-gang-schedule jobs freely.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/net.h"
#include "core/solver.h"
#include "core/spec.h"
#include "fault/ft_ssgd.h"

namespace swcaffe::sched {

class ElasticTrainer {
 public:
  /// `options.checkpoint_prefix` and `options.job_id` name the checkpoint
  /// files resize() writes; `replicas` is the fixed logical width.
  ElasticTrainer(const core::NetSpec& spec, int replicas,
                 const core::SolverSpec& solver,
                 const fault::FtOptions& options, std::uint64_t seed = 1);

  /// One SSGD iteration over the global batch (replicas * sub-batch floats).
  fault::StepResult step(std::span<const float> data,
                         std::span<const float> labels);

  /// Re-gang-schedules the job onto `width` physical nodes (1 <= width <=
  /// replicas) via checkpoint -> rebuild -> restore. A same-width resize is
  /// a no-op. Returns the checkpoint path written (empty for the no-op).
  std::string resize(int width);

  int replicas() const { return replicas_; }
  int width() const { return width_; }
  int resizes() const { return resizes_; }
  int iter() const { return trainer_->iter(); }
  core::Net& net(int replica) { return trainer_->ssgd().node(replica); }
  fault::FtSsgdTrainer& trainer() { return *trainer_; }

 private:
  core::NetSpec spec_;
  core::SolverSpec solver_;
  fault::FtOptions options_;
  std::uint64_t seed_;
  int replicas_;
  int width_;
  int resizes_ = 0;
  std::unique_ptr<fault::FtSsgdTrainer> trainer_;
};

}  // namespace swcaffe::sched
