// Simulated TaihuLight partition: a free-node map with supernode-aware
// gang allocation.
//
// The allocator realizes the placement the gang's collective prices for
// (parallel::placement_for): kAdjacent packs the gang into as few
// supernodes as possible (dense low node ids first), kRoundRobin deals the
// gang across supernodes one node at a time — the paper's improved RHD
// mapping, which keeps the large recursive-halving exchanges
// intra-supernode. Both orders are total and deterministic, so the whole
// schedule is a pure function of (workload, policy, options).
#pragma once

#include <vector>

#include "topo/topology.h"

namespace swcaffe::sched {

class Cluster {
 public:
  Cluster(int num_nodes, int supernode_size);

  int num_nodes() const { return topo_.num_nodes; }
  int supernode_size() const { return topo_.supernode_size; }
  int free_count() const { return free_count_; }
  bool is_free(int node) const { return free_[node]; }

  /// Allocates a gang of `count` free nodes under `placement`; returns the
  /// occupied node ids (ascending) or an empty vector when fewer than
  /// `count` nodes are free. Never partially allocates.
  std::vector<int> allocate(int count, topo::Placement placement);

  /// Returns a gang's nodes to the free map. Double-release is a check
  /// failure — the scheduler must never free a node twice.
  void release(const std::vector<int>& nodes);

 private:
  topo::Topology topo_;
  std::vector<bool> free_;
  int free_count_ = 0;
};

}  // namespace swcaffe::sched
