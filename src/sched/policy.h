// Pluggable admission/preemption policies of the cluster scheduler.
//
// The scheduler owns the event loop and the mechanics (gang placement,
// checkpoint/restore pricing, elastic re-dispatch); the policy only answers
// three questions, all pure functions of the visible state:
//
//  * pick()        — which pending job to try to place next,
//  * may_preempt() — whether taking nodes from a running job for a
//                    candidate is allowed, and
//  * rebalances()  — whether the policy shrinks running elastic gangs to
//                    admit starved candidates (fair-share only).
//
// Policies:
//  * kFifo      — strict arrival order, head-of-line blocking, never
//                 preempts. The baseline every queueing paper compares to.
//  * kPriority  — highest priority first; preempts strictly-lower-priority
//                 victims when the candidate cannot be placed.
//  * kFairShare — tenants with the least retired node-seconds go first;
//                 preempts and shrinks gangs of over-served tenants.
#pragma once

#include <string>
#include <vector>

#include "sched/job.h"

namespace swcaffe::sched {

enum class Policy { kFifo, kPriority, kFairShare };

const char* policy_name(Policy policy);
/// Parses "fifo" / "priority" / "fair"; throws base::CheckError otherwise.
Policy parse_policy(const std::string& name);

class PolicyEngine {
 public:
  explicit PolicyEngine(Policy policy) : policy_(policy) {}

  Policy policy() const { return policy_; }
  /// FIFO serves strictly in order: a blocked head blocks everyone behind
  /// it (no backfilling, or arrival order would stop meaning anything).
  bool head_of_line() const { return policy_ == Policy::kFifo; }
  bool preemptive() const { return policy_ != Policy::kFifo; }
  bool rebalances() const { return policy_ == Policy::kFairShare; }

  /// Index into `pending` of the job to place next (pending is in submit
  /// order; never empty). `tenant_usage[t]` is tenant t's retired
  /// node-seconds so far.
  int pick(const std::vector<const JobSpec*>& pending,
           const std::vector<double>& tenant_usage) const;

  /// May `victim` (running) be evicted to place `candidate`?
  bool may_preempt(const JobSpec& candidate, const JobSpec& victim,
                   const std::vector<double>& tenant_usage) const;

 private:
  Policy policy_;
};

}  // namespace swcaffe::sched
