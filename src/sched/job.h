// swsched-svc job model: what a tenant submits to the cluster scheduler.
//
// A job is data-parallel SSGD training of one model-zoo network: a fixed
// count of logical replicas (`replicas`, the requested gang width) running
// `iters` iterations. Elastic jobs may execute on fewer physical nodes than
// replicas — the scheduler folds ceil(replicas/width) replicas onto each
// node — which changes wall-clock pricing but NOT the math: the functional
// trainer always steps the same `replicas` model copies, so final weights
// are bit-identical at any width (sched/elastic.h proves this with real
// floats; the simulator prices it analytically here).
#pragma once

#include <cstdint>
#include <string>

#include "hw/cost_model.h"
#include "parallel/ssgd.h"

namespace swcaffe::sched {

/// The model-zoo slice heterogeneous workloads draw from (paper Sec. VI
/// networks at their bench batch sizes).
enum class ModelKind { kAlexNet, kVgg16, kResNet50 };

const char* model_kind_name(ModelKind kind);

/// One training job submission.
struct JobSpec {
  int id = 0;
  ModelKind model = ModelKind::kAlexNet;
  int batch = 256;          ///< per-replica mini-batch (paper Algorithm 1)
  int replicas = 4;         ///< logical data-parallel replicas = max gang width
  int min_nodes = 4;        ///< elastic floor (== replicas: rigid gang)
  std::int64_t iters = 100; ///< iterations to retire
  int priority = 0;         ///< larger = more urgent (kPriority policy)
  int tenant = 0;           ///< fair-share accounting bucket
  double submit_s = 0.0;    ///< arrival time in the cluster clock

  bool elastic() const { return min_nodes < replicas; }
  /// Human label, also the checkpoint namespace ("alexnet-b256-n8.j3").
  std::string name() const;
};

/// Analytic per-iteration price list of one job, built once from the model
/// zoo descriptors (batch/4 per core group, Algorithm 1) and then evaluated
/// at every candidate gang width by the scheduler.
struct JobProfile {
  double replica_iter_s = 0.0;   ///< one replica's fwd+bwd on one node
  std::int64_t param_bytes = 0;  ///< packed gradient message (all-reduce)

  /// One SSGD iteration at physical gang width `width`: folded replica
  /// compute (ceil(replicas/width) rounds) plus the all-reduce of the packed
  /// message across `width` nodes under `options` (algorithm + placement).
  double iter_s(int width, int replicas,
                const parallel::SsgdOptions& options) const;

  /// Checkpoint capture / restore wall-clock: params + solver history
  /// (2x param bytes, the swfault Checkpoint payload) through `bw` B/s.
  double checkpoint_s(double bw) const;
};

/// Prices `spec` on the SW26010 cost model. Descriptor construction is
/// cached per (model, batch) inside the scheduler — this call does full
/// shape inference and is not cheap.
JobProfile profile_job(const hw::CostModel& cost, const JobSpec& spec);

}  // namespace swcaffe::sched
