#include "sched/elastic.h"

#include "base/log.h"
#include "fault/checkpoint.h"

namespace swcaffe::sched {

ElasticTrainer::ElasticTrainer(const core::NetSpec& spec, int replicas,
                               const core::SolverSpec& solver,
                               const fault::FtOptions& options,
                               std::uint64_t seed)
    : spec_(spec),
      solver_(solver),
      options_(options),
      seed_(seed),
      replicas_(replicas),
      width_(replicas) {
  SWC_CHECK_GT(replicas, 0);
  SWC_CHECK_MSG(!options_.checkpoint_prefix.empty(),
                "elastic trainer needs a checkpoint prefix to resize through");
  trainer_ = std::make_unique<fault::FtSsgdTrainer>(spec_, replicas_, solver_,
                                                    options_, seed_);
}

fault::StepResult ElasticTrainer::step(std::span<const float> data,
                                       std::span<const float> labels) {
  return trainer_->step(data, labels);
}

std::string ElasticTrainer::resize(int width) {
  SWC_CHECK_GE(width, 1);
  SWC_CHECK_MSG(width <= replicas_,
                "gang width " << width << " exceeds the job's " << replicas_
                              << " logical replicas (idle nodes are not a "
                                 "resize)");
  if (width == width_) return "";
  const std::string path = fault::checkpoint_path(
      options_.checkpoint_prefix, options_.job_id, trainer_->iter());
  trainer_->save_checkpoint(path);
  // The old gang is revoked: rebuild from scratch on the new one, then
  // crash-rewind-replay from the checkpoint just written. The fresh
  // trainer re-initializes from `seed_`, and restore overwrites every
  // float of that state — which is what makes the sequence width-invariant.
  trainer_ = std::make_unique<fault::FtSsgdTrainer>(spec_, replicas_, solver_,
                                                    options_, seed_);
  trainer_->restore_checkpoint(path);
  width_ = width;
  ++resizes_;
  return path;
}

}  // namespace swcaffe::sched
