#include "sched/scheduler.h"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "base/log.h"
#include "serve/stats.h"

namespace swcaffe::sched {
namespace {

enum class EventKind {
  kArrival,     ///< job submitted
  kQuantumEnd,  ///< a running gang retires its quantum
  kFree,        ///< checkpoint written; gang returns to the free map
};

struct Event {
  double time = 0.0;
  std::int64_t seq = 0;  ///< monotone push order: total, deterministic ties
  EventKind kind = EventKind::kArrival;
  int job = 0;  ///< index into the simulator's state table
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct JobState {
  JobSpec spec;
  JobProfile profile;
  JobRecord rec;
  bool arrived = false;
  bool running = false;
  bool done = false;
  std::vector<int> nodes;  ///< current gang (held until kFree on eviction)
  int width = 0;           ///< gang width of the latest dispatch
  std::int64_t done_iters = 0;     ///< retired iterations
  std::int64_t quantum_iters = 0;  ///< retiring at the pending kQuantumEnd
  int next_span = 0;
  /// A checkpoint exists at done_iters; the next dispatch pays a restore.
  bool has_checkpoint = false;
  bool preempt_marked = false;  ///< evict at the current quantum boundary
  int resize_to = 0;            ///< != 0: re-dispatch at this width next
  bool redispatch = false;      ///< kFree re-dispatches this job itself
};

class Simulator {
 public:
  Simulator(const hw::CostModel& cost, const std::vector<JobSpec>& jobs,
            const SchedOptions& options)
      : options_(options),
        engine_(options.policy),
        cluster_(options.cluster_nodes, options.supernode_size),
        placement_(parallel::placement_for(options.ssgd.algo)) {
    SWC_CHECK_GT(options.quantum_iters, 0);
    SWC_CHECK_GT(options.checkpoint_bw, 0.0);
    std::map<std::pair<ModelKind, int>, JobProfile> profiles;
    int max_tenant = 0;
    states_.reserve(jobs.size());
    for (const JobSpec& spec : jobs) {
      SWC_CHECK_GE(spec.min_nodes, 1);
      SWC_CHECK_LE(spec.min_nodes, spec.replicas);
      SWC_CHECK_MSG(spec.replicas <= options.cluster_nodes,
                    "job " << spec.id << " wants " << spec.replicas
                           << " nodes; cluster has " << options.cluster_nodes);
      SWC_CHECK_GT(spec.iters, 0);
      SWC_CHECK_GE(spec.tenant, 0);
      const auto key = std::make_pair(spec.model, spec.batch);
      auto it = profiles.find(key);
      if (it == profiles.end())
        it = profiles.emplace(key, profile_job(cost, spec)).first;
      JobState st;
      st.spec = spec;
      st.profile = it->second;
      st.rec.job = spec.id;
      st.rec.name = spec.name();
      st.rec.tenant = spec.tenant;
      st.rec.submit_s = spec.submit_s;
      st.rec.iters = spec.iters;
      st.rec.ideal_s =
          static_cast<double>(spec.iters) *
          st.profile.iter_s(spec.replicas, spec.replicas, options.ssgd);
      states_.push_back(std::move(st));
      max_tenant = std::max(max_tenant, spec.tenant);
    }
    tenant_usage_.assign(static_cast<std::size_t>(max_tenant) + 1, 0.0);
    for (int i = 0; i < static_cast<int>(states_.size()); ++i)
      push(states_[static_cast<std::size_t>(i)].spec.submit_s,
           EventKind::kArrival, i);
  }

  ScheduleResult run() {
    while (!heap_.empty()) {
      const Event e = heap_.top();
      heap_.pop();
      now_ = e.time;
      switch (e.kind) {
        case EventKind::kArrival:
          states_[static_cast<std::size_t>(e.job)].arrived = true;
          try_dispatch();
          break;
        case EventKind::kQuantumEnd:
          on_quantum_end(e.job);
          break;
        case EventKind::kFree:
          on_free(e.job);
          break;
      }
    }
    for (const JobState& st : states_)
      SWC_CHECK_MSG(st.done, "scheduler drained with job " << st.spec.id
                                                           << " unfinished");
    return finish_result();
  }

 private:
  void push(double time, EventKind kind, int job) {
    heap_.push(Event{time, seq_++, kind, job});
  }

  double ckpt_s(const JobState& st) const {
    return st.profile.checkpoint_s(options_.checkpoint_bw);
  }

  /// Does `st` still have iterations left after its current quantum?
  bool will_outlive_quantum(const JobState& st) const {
    return st.done_iters + st.quantum_iters < st.spec.iters;
  }

  void record_span(JobState& st, SpanKind kind, double start, double end,
                   std::int64_t iters) {
    JobSpan span;
    span.job = st.spec.id;
    span.job_name = st.rec.name;
    span.span = st.next_span++;
    span.kind = kind;
    span.nodes = st.nodes;
    span.start_s = start;
    span.end_s = end;
    span.iters = iters;
    spans_.push_back(std::move(span));
    tenant_usage_[static_cast<std::size_t>(st.spec.tenant)] +=
        (end - start) * static_cast<double>(st.width);
  }

  void start_quantum(int j, double start) {
    JobState& st = states_[static_cast<std::size_t>(j)];
    const std::int64_t q = std::min<std::int64_t>(
        options_.quantum_iters, st.spec.iters - st.done_iters);
    SWC_CHECK_GT(q, 0);
    const double iter =
        st.profile.iter_s(st.width, st.spec.replicas, options_.ssgd);
    const double end = start + static_cast<double>(q) * iter;
    record_span(st, SpanKind::kRun, start, end, q);
    st.quantum_iters = q;
    push(end, EventKind::kQuantumEnd, j);
  }

  void dispatch(int j, double start, int width) {
    JobState& st = states_[static_cast<std::size_t>(j)];
    SWC_CHECK(!st.running);
    SWC_CHECK(st.nodes.empty());
    st.nodes = cluster_.allocate(width, placement_);
    SWC_CHECK_EQ(static_cast<int>(st.nodes.size()), width);
    if (st.rec.first_start_s < 0.0) st.rec.first_start_s = start;
    if (st.width != 0 && st.width != width) st.rec.resizes++;
    st.width = width;
    st.rec.final_width = width;
    st.running = true;
    double t = start;
    if (st.has_checkpoint) {
      // Crash-rewind-replay resume: reload the namespaced checkpoint on the
      // new gang before training continues.
      record_span(st, SpanKind::kRestore, t, t + ckpt_s(st), 0);
      t += ckpt_s(st);
    }
    start_quantum(j, t);
  }

  void on_quantum_end(int j) {
    JobState& st = states_[static_cast<std::size_t>(j)];
    st.done_iters += st.quantum_iters;
    st.quantum_iters = 0;
    if (st.done_iters >= st.spec.iters) {
      st.rec.finish_s = now_;
      cluster_.release(st.nodes);
      st.nodes.clear();
      st.running = false;
      st.done = true;
      try_dispatch();
      maybe_grow();
      return;
    }
    if (st.preempt_marked) {
      // Eviction: write the checkpoint (gang held), then free the nodes.
      st.preempt_marked = false;
      st.resize_to = 0;
      record_span(st, SpanKind::kCheckpoint, now_, now_ + ckpt_s(st), 0);
      st.has_checkpoint = true;
      st.rec.preemptions++;
      st.running = false;
      push(now_ + ckpt_s(st), EventKind::kFree, j);
      return;
    }
    if (st.resize_to != 0 && st.resize_to != st.width) {
      // Elastic re-dispatch: checkpoint, free, immediately re-place at the
      // new width (kFree carries the redispatch).
      record_span(st, SpanKind::kCheckpoint, now_, now_ + ckpt_s(st), 0);
      st.has_checkpoint = true;
      st.running = false;
      st.redispatch = true;
      push(now_ + ckpt_s(st), EventKind::kFree, j);
      return;
    }
    st.resize_to = 0;
    start_quantum(j, now_);
  }

  void on_free(int j) {
    JobState& st = states_[static_cast<std::size_t>(j)];
    cluster_.release(st.nodes);
    st.nodes.clear();
    if (st.redispatch) {
      st.redispatch = false;
      const int desired = st.resize_to;
      st.resize_to = 0;
      // The free map may have moved since the resize was decided; clamp.
      // free_count >= the gang just released >= min_nodes, so this is
      // always a legal width.
      const int width = std::min(desired, cluster_.free_count());
      dispatch(j, now_, width);
    }
    try_dispatch();
    maybe_grow();
  }

  bool is_pending(const JobState& st) const {
    return st.arrived && !st.done && !st.running && st.nodes.empty() &&
           !st.redispatch;
  }

  void try_dispatch() {
    std::vector<int> skipped;
    while (true) {
      std::vector<int> pend;
      for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
        if (!is_pending(states_[static_cast<std::size_t>(i)])) continue;
        if (std::find(skipped.begin(), skipped.end(), i) != skipped.end())
          continue;
        pend.push_back(i);
      }
      if (pend.empty()) return;
      std::sort(pend.begin(), pend.end(), [&](int a, int b) {
        const JobSpec& sa = states_[static_cast<std::size_t>(a)].spec;
        const JobSpec& sb = states_[static_cast<std::size_t>(b)].spec;
        if (sa.submit_s != sb.submit_s) return sa.submit_s < sb.submit_s;
        return sa.id < sb.id;
      });
      std::vector<const JobSpec*> specs;
      specs.reserve(pend.size());
      for (int i : pend) specs.push_back(&states_[static_cast<std::size_t>(i)].spec);
      const int j = pend[static_cast<std::size_t>(
          engine_.pick(specs, tenant_usage_))];
      JobState& st = states_[static_cast<std::size_t>(j)];
      const int free = cluster_.free_count();
      int width = 0;
      if (free >= st.spec.replicas) {
        width = st.spec.replicas;
      } else if (options_.elastic && free >= st.spec.min_nodes) {
        width = free;  // shrunken start; maybe_grow recovers the rest later
      }
      if (width > 0) {
        dispatch(j, now_, width);
        continue;
      }
      if (engine_.preemptive()) request_capacity(st);
      if (engine_.head_of_line()) return;  // FIFO: no backfilling
      skipped.push_back(j);
    }
  }

  /// Marks shrinks/preemptions so at least `cand.min_nodes` nodes free up.
  void request_capacity(const JobState& cand) {
    const int target = cand.spec.min_nodes;
    int avail = cluster_.free_count();
    for (const JobState& r : states_) {
      if (!r.running) continue;
      if (r.preempt_marked)
        avail += r.width;
      else if (r.resize_to != 0 && r.resize_to < r.width)
        avail += r.width - r.resize_to;
    }
    if (avail >= target) return;  // enough capacity already on the way
    if (options_.elastic && engine_.rebalances()) {
      // Fair-share first resort: shrink elastic gangs of over-served
      // tenants instead of evicting them.
      std::vector<int> shrinkable;
      for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
        const JobState& r = states_[static_cast<std::size_t>(i)];
        if (!r.running || r.preempt_marked || r.resize_to != 0) continue;
        if (!will_outlive_quantum(r)) continue;
        if (r.width <= r.spec.min_nodes) continue;
        if (!engine_.may_preempt(cand.spec, r.spec, tenant_usage_)) continue;
        shrinkable.push_back(i);
      }
      std::sort(shrinkable.begin(), shrinkable.end(), [&](int a, int b) {
        const JobSpec& sa = states_[static_cast<std::size_t>(a)].spec;
        const JobSpec& sb = states_[static_cast<std::size_t>(b)].spec;
        const double ua = tenant_usage_[static_cast<std::size_t>(sa.tenant)];
        const double ub = tenant_usage_[static_cast<std::size_t>(sb.tenant)];
        if (ua != ub) return ua > ub;  // most over-served tenant first
        return sa.id > sb.id;          // newest job first
      });
      for (int i : shrinkable) {
        if (avail >= target) break;
        JobState& r = states_[static_cast<std::size_t>(i)];
        const int give = std::min(r.width - r.spec.min_nodes, target - avail);
        r.resize_to = r.width - give;
        avail += give;
      }
      if (avail >= target) return;
    }
    std::vector<int> victims;
    for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
      const JobState& r = states_[static_cast<std::size_t>(i)];
      if (!r.running || r.preempt_marked) continue;
      if (!will_outlive_quantum(r)) continue;  // frees on its own shortly
      if (!engine_.may_preempt(cand.spec, r.spec, tenant_usage_)) continue;
      victims.push_back(i);
    }
    std::sort(victims.begin(), victims.end(), [&](int a, int b) {
      const JobSpec& sa = states_[static_cast<std::size_t>(a)].spec;
      const JobSpec& sb = states_[static_cast<std::size_t>(b)].spec;
      if (engine_.policy() == Policy::kPriority && sa.priority != sb.priority)
        return sa.priority < sb.priority;  // weakest victim first
      if (engine_.policy() == Policy::kFairShare) {
        const double ua = tenant_usage_[static_cast<std::size_t>(sa.tenant)];
        const double ub = tenant_usage_[static_cast<std::size_t>(sb.tenant)];
        if (ua != ub) return ua > ub;  // most over-served tenant first
      }
      return sa.id > sb.id;  // newest first: preserve the oldest work
    });
    for (int i : victims) {
      if (avail >= target) break;
      JobState& r = states_[static_cast<std::size_t>(i)];
      if (r.resize_to != 0) {
        avail += r.resize_to;  // upgrade a planned shrink to a full eviction
        r.resize_to = 0;
      } else {
        avail += r.width;
      }
      r.preempt_marked = true;
    }
  }

  /// Grows the most-shrunken running elastic gang back toward its requested
  /// width — only when nobody is waiting and no capacity is already in flux.
  void maybe_grow() {
    if (!options_.elastic) return;
    if (cluster_.free_count() == 0) return;
    for (const JobState& st : states_) {
      if (st.arrived && !st.done && !st.running) return;  // someone waits
      if (st.running && (st.preempt_marked || st.resize_to != 0)) return;
    }
    int best = -1;
    for (int i = 0; i < static_cast<int>(states_.size()); ++i) {
      const JobState& r = states_[static_cast<std::size_t>(i)];
      if (!r.running || r.width >= r.spec.replicas) continue;
      if (!will_outlive_quantum(r)) continue;  // growth would never run
      if (best < 0) {
        best = i;
        continue;
      }
      const JobState& b = states_[static_cast<std::size_t>(best)];
      const int db = b.spec.replicas - b.width;
      const int dr = r.spec.replicas - r.width;
      if (dr > db || (dr == db && r.spec.id < b.spec.id)) best = i;
    }
    if (best < 0) return;
    JobState& r = states_[static_cast<std::size_t>(best)];
    r.resize_to = std::min(r.spec.replicas, r.width + cluster_.free_count());
  }

  ScheduleResult finish_result() {
    ScheduleResult out;
    out.spans = std::move(spans_);
    SchedMetrics& m = out.metrics;
    m.jobs = static_cast<int>(states_.size());
    std::vector<double> waits;
    std::vector<double> makespans;
    std::vector<double> slowdowns;
    out.jobs.reserve(states_.size());
    for (JobState& st : states_) {
      m.preemptions += st.rec.preemptions;
      m.resizes += st.rec.resizes;
      if (st.rec.finish_s >= 0.0) {
        ++m.finished;
        waits.push_back(st.rec.queue_wait_s());
        makespans.push_back(st.rec.makespan_s());
        slowdowns.push_back(st.rec.slowdown());
      }
      out.jobs.push_back(std::move(st.rec));
    }
    for (const JobSpan& s : out.spans) {
      const double node_s =
          (s.end_s - s.start_s) * static_cast<double>(s.nodes.size());
      if (s.kind == SpanKind::kRun)
        m.run_node_s += node_s;
      else
        m.overhead_node_s += node_s;
      m.horizon_s = std::max(m.horizon_s, s.end_s);
    }
    // Exact by construction: every busy node-second is classified exactly
    // once, so the ledger identity busy == run + overhead holds bitwise.
    m.busy_node_s = m.run_node_s + m.overhead_node_s;
    if (m.horizon_s > 0.0)
      m.utilization =
          m.busy_node_s /
          (m.horizon_s * static_cast<double>(options_.cluster_nodes));
    if (!waits.empty()) {
      std::sort(waits.begin(), waits.end());
      std::sort(makespans.begin(), makespans.end());
      std::sort(slowdowns.begin(), slowdowns.end());
      double sum = 0.0;
      for (double w : waits) sum += w;
      m.wait_mean_s = sum / static_cast<double>(waits.size());
      m.wait_p50_s = serve::percentile(waits, 0.50);
      m.wait_p95_s = serve::percentile(waits, 0.95);
      m.makespan_p50_s = serve::percentile(makespans, 0.50);
      m.makespan_p95_s = serve::percentile(makespans, 0.95);
      m.makespan_spread_s = m.makespan_p95_s - m.makespan_p50_s;
      m.slowdown_p50 = serve::percentile(slowdowns, 0.50);
      m.slowdown_p95 = serve::percentile(slowdowns, 0.95);
      m.slowdown_spread = m.slowdown_p95 - m.slowdown_p50;
    }
    return out;
  }

  SchedOptions options_;
  PolicyEngine engine_;
  Cluster cluster_;
  topo::Placement placement_;
  std::vector<JobState> states_;
  std::vector<double> tenant_usage_;  ///< retired node-seconds per tenant
  std::vector<JobSpan> spans_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::int64_t seq_ = 0;
  double now_ = 0.0;
};

}  // namespace

ScheduleResult simulate_schedule(const hw::CostModel& cost,
                                 const std::vector<JobSpec>& jobs,
                                 const SchedOptions& options) {
  Simulator sim(cost, jobs, options);
  return sim.run();
}

}  // namespace swcaffe::sched
