// swsched-svc: deterministic discrete-event multi-tenant cluster scheduler.
//
// Admits heterogeneous training jobs (sched/workload.h) onto a simulated
// TaihuLight partition (sched/cluster.h) under a pluggable policy
// (sched/policy.h). Mechanics shared by every policy:
//
//  * Gang scheduling — a job runs on all of its nodes or none of them; the
//    gang is placed with the supernode-aware allocator at the placement its
//    all-reduce prices for (parallel::placement_for).
//  * Quanta — a dispatched job runs `quantum_iters` iterations per quantum;
//    quantum boundaries are the only points where gangs change hands
//    (gradients are synchronized there, so node 0's state is a complete
//    checkpoint — the swfault model with checkpoint_every == quantum).
//  * Preemption — a marked victim finishes its current quantum, writes a
//    job-namespaced versioned checkpoint (priced, gang held while writing),
//    and releases. Resume is crash-rewind-replay: the next dispatch charges
//    a restore before training continues from the retired iteration.
//  * Elastic shrink/grow — an elastic job can be re-dispatched at a
//    different gang width between quanta (checkpoint -> release ->
//    re-place -> restore). Width only changes wall-clock pricing (folded
//    replicas + all-reduce at the new width), never the math — the logical
//    replica count is fixed, so final weights are bit-identical
//    (sched/elastic.h is the functional proof).
//
// Everything is a pure function of (jobs, options): event ties break on a
// monotone sequence number, times are closed-form doubles, and every span
// is recorded at dispatch time — two same-input runs produce bit-identical
// ScheduleResults, which check::timeline_from_schedule then audits for
// double-booked nodes, broken gangs and lost iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/cost_model.h"
#include "parallel/ssgd.h"
#include "sched/cluster.h"
#include "sched/job.h"
#include "sched/policy.h"
#include "sched/record.h"

namespace swcaffe::sched {

struct SchedOptions {
  int cluster_nodes = 64;
  int supernode_size = 16;  ///< small partition: 4 supernodes by default
  Policy policy = Policy::kFifo;
  /// All-reduce + placement + network the jobs' iterations are priced at.
  parallel::SsgdOptions ssgd;
  /// Iterations per scheduling quantum (== swfault checkpoint_every).
  std::int64_t quantum_iters = 25;
  /// Checkpoint write/restore bandwidth (B/s) for preemption/resize spans.
  double checkpoint_bw = 4.0e9;
  /// Allow shrunken dispatch and grow-back of elastic jobs. Off: gangs are
  /// always placed at the requested width.
  bool elastic = true;
};

struct SchedMetrics {
  int jobs = 0;
  int finished = 0;
  int preemptions = 0;  ///< total gang revocations across jobs
  int resizes = 0;      ///< total elastic re-dispatches across jobs
  double horizon_s = 0.0;      ///< last span end (cluster drained)
  double utilization = 0.0;    ///< busy_node_s / (nodes * horizon_s)
  double busy_node_s = 0.0;    ///< all spans: run + checkpoint + restore
  double run_node_s = 0.0;     ///< training node-seconds
  double overhead_node_s = 0.0;  ///< checkpoint + restore node-seconds
  double wait_mean_s = 0.0;    ///< submit -> first dispatch
  double wait_p50_s = 0.0;
  double wait_p95_s = 0.0;
  double makespan_p50_s = 0.0;  ///< submit -> finish
  double makespan_p95_s = 0.0;
  double makespan_spread_s = 0.0;  ///< p95 - p50 of raw makespan
  double slowdown_p50 = 0.0;    ///< makespan / ideal uninterrupted run
  double slowdown_p95 = 0.0;
  /// p95 - p50 of slowdown: the fairness headline. Normalizing by each
  /// job's own length isolates what the SCHEDULER did to the job from how
  /// big the job was.
  double slowdown_spread = 0.0;
};

struct ScheduleResult {
  std::vector<JobRecord> jobs;  ///< indexed by JobSpec::id
  std::vector<JobSpan> spans;   ///< recorded in dispatch order
  SchedMetrics metrics;
};

/// Runs the full simulation until every job finishes. Pure in its inputs.
ScheduleResult simulate_schedule(const hw::CostModel& cost,
                                 const std::vector<JobSpec>& jobs,
                                 const SchedOptions& options);

}  // namespace swcaffe::sched
