// swsched-svc schedule records — the currency of the cluster scheduler.
//
// The discrete-event scheduler (sched/scheduler.h) fills these in as jobs
// move through the simulated TaihuLight partition; metric accounting, trace
// export and whole-timeline verification (check::timeline_from_schedule)
// are pure post-processing over the records, mirroring serve/request.h.
// Header-only and dependency-free so check/ can consume the records without
// a check <-> sched link cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swcaffe::sched {

/// What one occupancy interval of a job's gang was doing.
enum class SpanKind {
  kRun,         ///< training iterations (carries `iters`)
  kCheckpoint,  ///< writing the preemption/resize checkpoint
  kRestore,     ///< reloading the checkpoint after a preemption/resize
};

inline const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRun:
      return "run";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kRestore:
      return "restore";
  }
  return "?";
}

/// One gang occupancy interval: job `job` held exactly `nodes` for
/// [start_s, end_s]. Every node of the gang runs the interval in lockstep —
/// that is the co-scheduling invariant check::timeline_from_schedule turns
/// into timeline-gang events.
struct JobSpan {
  int job = 0;             ///< JobSpec::id
  std::string job_name;    ///< human label ("alexnet-b256-n8#3")
  int span = 0;            ///< per-job span index (execution order)
  SpanKind kind = SpanKind::kRun;
  std::vector<int> nodes;  ///< cluster node ids occupied (gang allocation)
  double start_s = 0.0;
  double end_s = 0.0;
  std::int64_t iters = 0;  ///< iterations retired in this span (kRun only)
};

/// One job's complete lifecycle through the scheduler.
struct JobRecord {
  int job = 0;
  std::string name;
  int tenant = 0;
  double submit_s = 0.0;
  double first_start_s = -1.0;  ///< first gang dispatch (-1: never started)
  double finish_s = -1.0;       ///< last iteration retired (-1: unfinished)
  std::int64_t iters = 0;       ///< total iterations the job had to run
  int preemptions = 0;          ///< times the gang was revoked mid-job
  int resizes = 0;              ///< elastic shrink/grow re-dispatches
  int final_width = 0;          ///< gang width of the last dispatch
  /// Uninterrupted run time at the requested width (no queueing, no
  /// preemption, no shrink) — the denominator of slowdown().
  double ideal_s = 0.0;

  double queue_wait_s() const {
    return first_start_s < 0.0 ? -1.0 : first_start_s - submit_s;
  }
  /// Submission-to-completion span (the per-job makespan).
  double makespan_s() const {
    return finish_s < 0.0 ? -1.0 : finish_s - submit_s;
  }
  /// Makespan normalized by the job's own ideal run time (>= 1 in
  /// practice): the fairness currency — raw makespans conflate scheduling
  /// with job-length heterogeneity, slowdowns don't.
  double slowdown() const {
    return (finish_s < 0.0 || ideal_s <= 0.0) ? -1.0 : makespan_s() / ideal_s;
  }
};

}  // namespace swcaffe::sched
