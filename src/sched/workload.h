// Heterogeneous workload generation for the cluster scheduler.
//
// Job ARRIVAL TIMES come from the swserve open-loop arrival models
// (Poisson / bursty / trace replay) — the same generators the serving bench
// uses, at jobs-per-second scale. Job ATTRIBUTES (model, width, length,
// priority, tenant) are sampled per job index with a splitmix64 counter
// hash over (seed, job, field), the swfault recipe: no RNG stream, so the
// workload is a pure function of the spec and two same-spec runs are
// bit-identical — which is what makes BENCH_sched.json byte-reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/job.h"
#include "serve/arrival.h"

namespace swcaffe::sched {

struct WorkloadSpec {
  /// Arrival process of job submissions (rate = jobs/s of cluster time).
  serve::ArrivalSpec arrivals;
  /// Attribute sampling seed (independent of arrivals.seed).
  std::uint64_t seed = 1;

  /// Candidate pools; each job draws uniformly (hash-indexed).
  std::vector<ModelKind> models = {ModelKind::kAlexNet, ModelKind::kVgg16,
                                   ModelKind::kResNet50};
  std::vector<int> widths = {2, 4, 8};  ///< requested replicas per job
  std::int64_t min_iters = 20;
  std::int64_t max_iters = 200;
  int tenants = 3;
  int priorities = 3;  ///< priority drawn from [0, priorities)
  /// Elastic jobs may shrink to half their requested width (floor >= 1);
  /// false pins min_nodes == replicas (rigid gangs only).
  bool elastic = true;
};

/// Per-replica batch each model trains at (the paper's bench batches).
int model_batch(ModelKind kind);

/// Materializes the job list, ordered by submit time, ids 0..n-1.
std::vector<JobSpec> generate_workload(const WorkloadSpec& spec);

}  // namespace swcaffe::sched
