#include "sched/workload.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::sched {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Pure per-(seed, job, field) draw in [0, n).
std::uint64_t draw(std::uint64_t seed, int job, int field, std::uint64_t n) {
  std::uint64_t h = splitmix64(seed ^ 0x5c4ed5c4ed5c4ed5ULL);
  h = splitmix64(h ^ static_cast<std::uint64_t>(job));
  h = splitmix64(h ^ static_cast<std::uint64_t>(field));
  return h % n;
}

}  // namespace

int model_batch(ModelKind kind) {
  switch (kind) {
    case ModelKind::kAlexNet:
      return 256;  // paper Sec. VI-A bench batch
    case ModelKind::kVgg16:
      return 64;
    case ModelKind::kResNet50:
      return 32;
  }
  return 4;
}

std::vector<JobSpec> generate_workload(const WorkloadSpec& spec) {
  SWC_CHECK(!spec.models.empty());
  SWC_CHECK(!spec.widths.empty());
  SWC_CHECK_GT(spec.tenants, 0);
  SWC_CHECK_GT(spec.priorities, 0);
  SWC_CHECK_GE(spec.max_iters, spec.min_iters);
  SWC_CHECK_GT(spec.min_iters, 0);
  const std::vector<double> arrivals = serve::generate_arrivals(spec.arrivals);
  std::vector<JobSpec> jobs;
  jobs.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const int id = static_cast<int>(i);
    JobSpec job;
    job.id = id;
    job.submit_s = arrivals[i];
    job.model =
        spec.models[draw(spec.seed, id, 0, spec.models.size())];
    job.batch = model_batch(job.model);
    job.replicas =
        spec.widths[draw(spec.seed, id, 1, spec.widths.size())];
    job.min_nodes =
        spec.elastic ? std::max(1, job.replicas / 2) : job.replicas;
    job.iters =
        spec.min_iters +
        static_cast<std::int64_t>(draw(
            spec.seed, id, 2,
            static_cast<std::uint64_t>(spec.max_iters - spec.min_iters + 1)));
    job.priority = static_cast<int>(
        draw(spec.seed, id, 3, static_cast<std::uint64_t>(spec.priorities)));
    job.tenant = static_cast<int>(
        draw(spec.seed, id, 4, static_cast<std::uint64_t>(spec.tenants)));
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace swcaffe::sched
