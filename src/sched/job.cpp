#include "sched/job.h"

#include <sstream>

#include "base/log.h"
#include "core/models.h"
#include "swdnn/layer_estimate.h"
#include "topo/allreduce.h"
#include "topo/compress.h"
#include "topo/hierarchical.h"

namespace swcaffe::sched {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kAlexNet:
      return "alexnet";
    case ModelKind::kVgg16:
      return "vgg16";
    case ModelKind::kResNet50:
      return "resnet50";
  }
  return "?";
}

std::string JobSpec::name() const {
  std::ostringstream out;
  out << model_kind_name(model) << "-b" << batch << "-n" << replicas << ".j"
      << id;
  return out.str();
}

double JobProfile::iter_s(int width, int replicas,
                          const parallel::SsgdOptions& options) const {
  SWC_CHECK_GT(width, 0);
  SWC_CHECK_GE(replicas, width);
  // Folded compute: each node hosts ceil(replicas/width) replicas and runs
  // them back to back before the gang synchronizes.
  const std::int64_t folds = (replicas + width - 1) / width;
  const double compute_s = replica_iter_s * static_cast<double>(folds);
  if (width == 1) return compute_s;  // no network phase on a 1-node gang
  topo::Topology topo;
  topo.num_nodes = width;
  topo.supernode_size = options.supernode_size;
  const topo::Placement placement = parallel::placement_for(options.algo);
  // Compression moves the codec'ed bytes over the wire and charges the
  // encode/decode passes on top (identity when compression is kNone).
  const topo::CostBreakdown comm = topo::cost_compressed(
      options.compression, param_bytes, options.net,
      [&](std::int64_t bytes) -> topo::CostBreakdown {
        switch (options.algo) {
          case parallel::AllreduceAlgo::kRhdAdjacent:
          case parallel::AllreduceAlgo::kRhdRoundRobin:
            return topo::cost_rhd(bytes, topo, options.net, placement);
          case parallel::AllreduceAlgo::kRing:
            return topo::cost_ring(bytes, topo, options.net, placement);
          case parallel::AllreduceAlgo::kParamServer:
            return topo::cost_param_server(bytes, topo, options.net,
                                           options.param_servers);
          case parallel::AllreduceAlgo::kHierarchical:
            return topo::cost_hierarchical(bytes, topo, options.net);
        }
        return {};
      });
  return compute_s + comm.seconds;
}

double JobProfile::checkpoint_s(double bw) const {
  SWC_CHECK_GT(bw, 0.0);
  return 2.0 * static_cast<double>(param_bytes) / bw;
}

JobProfile profile_job(const hw::CostModel& cost, const JobSpec& spec) {
  SWC_CHECK_GT(spec.batch, 0);
  SWC_CHECK_MSG(spec.batch % 4 == 0,
                "per-replica batch must split over the chip's 4 core groups");
  // Algorithm 1: node time == one core group processing batch/4.
  core::NetSpec net;
  switch (spec.model) {
    case ModelKind::kAlexNet:
      net = core::alexnet_bn(spec.batch / 4);
      break;
    case ModelKind::kVgg16:
      net = core::vgg(16, spec.batch / 4);
      break;
    case ModelKind::kResNet50:
      net = core::resnet50(spec.batch / 4);
      break;
  }
  const std::vector<core::LayerDesc> descs = core::describe_net_spec(net);
  JobProfile profile;
  profile.replica_iter_s = dnn::estimate_net_sw(cost, descs);
  profile.param_bytes = core::total_param_bytes(descs);
  return profile;
}

}  // namespace swcaffe::sched
