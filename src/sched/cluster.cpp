#include "sched/cluster.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::sched {

Cluster::Cluster(int num_nodes, int supernode_size) {
  SWC_CHECK_GT(num_nodes, 0);
  SWC_CHECK_GT(supernode_size, 0);
  topo_.num_nodes = num_nodes;
  topo_.supernode_size = supernode_size;
  free_.assign(static_cast<std::size_t>(num_nodes), true);
  free_count_ = num_nodes;
}

std::vector<int> Cluster::allocate(int count, topo::Placement placement) {
  SWC_CHECK_GT(count, 0);
  if (count > free_count_) return {};
  std::vector<int> picked;
  picked.reserve(static_cast<std::size_t>(count));
  switch (placement) {
    case topo::Placement::kAdjacent:
      // Pack: lowest free node ids, which also fills supernodes densely.
      for (int n = 0; n < topo_.num_nodes && static_cast<int>(picked.size()) <
                                                 count;
           ++n) {
        if (free_[n]) picked.push_back(n);
      }
      break;
    case topo::Placement::kRoundRobin: {
      // Deal: one free node per supernode in round-robin supernode order,
      // sweeping until the gang is complete.
      const int supernodes = topo_.num_supernodes();
      std::vector<int> cursor(static_cast<std::size_t>(supernodes), 0);
      bool progress = true;
      while (static_cast<int>(picked.size()) < count && progress) {
        progress = false;
        for (int s = 0; s < supernodes && static_cast<int>(picked.size()) <
                                              count;
             ++s) {
          const int lo = s * topo_.supernode_size;
          const int hi = std::min((s + 1) * topo_.supernode_size,
                                  topo_.num_nodes);
          int& c = cursor[static_cast<std::size_t>(s)];
          while (lo + c < hi && !free_[lo + c]) ++c;
          if (lo + c < hi) {
            picked.push_back(lo + c);
            ++c;
            progress = true;
          }
        }
      }
      break;
    }
  }
  SWC_CHECK_EQ(static_cast<int>(picked.size()), count);
  for (int n : picked) free_[n] = false;
  free_count_ -= count;
  std::sort(picked.begin(), picked.end());
  return picked;
}

void Cluster::release(const std::vector<int>& nodes) {
  for (int n : nodes) {
    SWC_CHECK_GE(n, 0);
    SWC_CHECK_LT(n, topo_.num_nodes);
    SWC_CHECK_MSG(!free_[n], "cluster: double release of node " << n);
    free_[n] = true;
  }
  free_count_ += static_cast<int>(nodes.size());
}

}  // namespace swcaffe::sched
