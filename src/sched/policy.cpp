#include "sched/policy.h"

#include "base/log.h"

namespace swcaffe::sched {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kPriority:
      return "priority";
    case Policy::kFairShare:
      return "fair";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "priority") return Policy::kPriority;
  if (name == "fair" || name == "fair-share") return Policy::kFairShare;
  SWC_CHECK_MSG(false, "unknown policy '" << name
                                          << "' (fifo | priority | fair)");
  return Policy::kFifo;
}

int PolicyEngine::pick(const std::vector<const JobSpec*>& pending,
                       const std::vector<double>& tenant_usage) const {
  SWC_CHECK(!pending.empty());
  switch (policy_) {
    case Policy::kFifo:
      return 0;  // pending is already in submit order
    case Policy::kPriority: {
      int best = 0;
      for (int i = 1; i < static_cast<int>(pending.size()); ++i) {
        if (pending[i]->priority > pending[best]->priority) best = i;
      }
      return best;  // ties keep submit order (first wins)
    }
    case Policy::kFairShare: {
      // Most under-served tenant first; within a tenant, submit order.
      int best = 0;
      for (int i = 1; i < static_cast<int>(pending.size()); ++i) {
        const double u_i = tenant_usage[pending[i]->tenant];
        const double u_best = tenant_usage[pending[best]->tenant];
        if (u_i < u_best) best = i;
      }
      return best;
    }
  }
  return 0;
}

bool PolicyEngine::may_preempt(const JobSpec& candidate, const JobSpec& victim,
                               const std::vector<double>& tenant_usage) const {
  switch (policy_) {
    case Policy::kFifo:
      return false;
    case Policy::kPriority:
      return candidate.priority > victim.priority;
    case Policy::kFairShare:
      // Take nodes only from tenants that already consumed strictly more
      // than the candidate's tenant; same-tenant jobs never fight.
      return victim.tenant != candidate.tenant &&
             tenant_usage[victim.tenant] > tenant_usage[candidate.tenant];
  }
  return false;
}

}  // namespace swcaffe::sched
