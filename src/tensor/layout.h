// Layout transposes between the explicit-GEMM (B,N,R,C) layout and the
// implicit-GEMM (R,C,N,B) layout (paper Sec. IV-C, the "tensor
// transformation layer"). The functional transpose here backs the
// TensorTransform layer; its SW26010 cost (strided DMA + SIMD shuffles) is
// estimated in swdnn.
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace swcaffe::tensor {

/// Transposes src (B,N,R,C) into dst (R,C,N,B). dst is reshaped.
void bnrc_to_rcnb(const Tensor& src, Tensor& dst);

/// Transposes src (R,C,N,B) into dst (B,N,R,C). dst is reshaped; the
/// logical (B,N,R,C) dims are recovered from src's (R,C,N,B) shape.
void rcnb_to_bnrc(const Tensor& src, Tensor& dst);

/// Filter transpose: (No,Ni,K,K) <-> (K,K,No,Ni) (paper Sec. IV-C).
void filter_to_kkoi(const Tensor& src, Tensor& dst);
void filter_from_kkoi(const Tensor& src, Tensor& dst);

}  // namespace swcaffe::tensor
