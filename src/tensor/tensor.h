// N-dimensional blob in the Caffe sense: a value buffer ("data") plus a
// gradient buffer ("diff") sharing one shape. swCaffe keeps Caffe's
// (B, N, R, C) = (batch, channel, row, column) default layout; the implicit
// convolution plan uses the transposed (R, C, N, B) layout (paper Sec. IV-C),
// see tensor/layout.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swcaffe::tensor {

/// Data layout tags for 4-D tensors (paper Sec. IV-C).
enum class Layout {
  kBNRC,  ///< Caffe default: (batch, channel, row, col), aka NCHW
  kRCNB,  ///< implicit-GEMM layout: (row, col, channel, batch)
};

const char* layout_name(Layout layout);

/// Dense float tensor with paired data/diff buffers.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) { reshape(std::move(shape)); }

  /// Resizes; preserves nothing. Diff is lazily allocated on first access.
  void reshape(std::vector<int> shape);
  void reshape_like(const Tensor& other) { reshape(other.shape()); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  int num_axes() const { return static_cast<int>(shape_.size()); }
  std::size_t count() const { return count_; }

  /// Caffe-style accessors for 4-D tensors (num, channels, height, width).
  int num() const { return dim(0); }
  int channels() const { return dim(1); }
  int height() const { return dim(2); }
  int width() const { return dim(3); }

  /// Flat offset of (n, c, h, w) in the BNRC layout.
  std::size_t offset(int n, int c, int h, int w) const;

  std::span<float> data() { return {data_.data(), data_.size()}; }
  std::span<const float> data() const { return {data_.data(), data_.size()}; }
  std::span<float> diff();
  std::span<const float> diff() const;

  float* mutable_data_ptr() { return data_.data(); }
  const float* data_ptr() const { return data_.data(); }

  /// Fills diff with zeros (allocating it if needed).
  void zero_diff();
  void zero_data();

  /// data += alpha * diff (the SGD inner update primitive).
  void axpy_from_diff(float alpha);

  /// L2 norms, used by tests and solver diagnostics.
  double sumsq_data() const;
  double sumsq_diff() const;

  /// Copies data (and optionally diff) from another tensor of equal count.
  void copy_from(const Tensor& src, bool copy_diff = false);

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::size_t count_ = 0;
  std::vector<float> data_;
  mutable std::vector<float> diff_;  // lazily sized to count_
};

}  // namespace swcaffe::tensor
