#include "tensor/filler.h"

#include <cmath>

#include "base/log.h"

namespace swcaffe::tensor {

FillerSpec FillerSpec::constant(float v) {
  FillerSpec s;
  s.type = FillerType::kConstant;
  s.value = v;
  return s;
}

FillerSpec FillerSpec::gaussian(float mean, float stddev) {
  FillerSpec s;
  s.type = FillerType::kGaussian;
  s.mean = mean;
  s.stddev = stddev;
  return s;
}

FillerSpec FillerSpec::uniform(float lo, float hi) {
  FillerSpec s;
  s.type = FillerType::kUniform;
  s.min = lo;
  s.max = hi;
  return s;
}

FillerSpec FillerSpec::xavier() {
  FillerSpec s;
  s.type = FillerType::kXavier;
  return s;
}

FillerSpec FillerSpec::msra() {
  FillerSpec s;
  s.type = FillerType::kMsra;
  return s;
}

void fill(Tensor& t, const FillerSpec& spec, base::Rng& rng) {
  auto data = t.data();
  switch (spec.type) {
    case FillerType::kConstant:
      for (auto& v : data) v = spec.value;
      break;
    case FillerType::kUniform:
      for (auto& v : data) v = rng.uniform(spec.min, spec.max);
      break;
    case FillerType::kGaussian:
      for (auto& v : data) v = rng.gaussian(spec.mean, spec.stddev);
      break;
    case FillerType::kXavier: {
      SWC_CHECK_GE(t.num_axes(), 2);
      const double fan_in = static_cast<double>(t.count()) / t.dim(0);
      const double fan_out = static_cast<double>(t.count()) / t.dim(1);
      const float scale =
          static_cast<float>(std::sqrt(6.0 / (fan_in + fan_out)));
      for (auto& v : data) v = rng.uniform(-scale, scale);
      break;
    }
    case FillerType::kMsra: {
      SWC_CHECK_GE(t.num_axes(), 2);
      const double fan_in = static_cast<double>(t.count()) / t.dim(0);
      const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
      for (auto& v : data) v = rng.gaussian(0.0f, stddev);
      break;
    }
  }
}

}  // namespace swcaffe::tensor
