#include "tensor/layout.h"

#include "base/log.h"

namespace swcaffe::tensor {

namespace {

/// Generic 4-D permutation: dst[perm(idx)] = src[idx].
void transpose4(const Tensor& src, Tensor& dst, const int perm[4]) {
  SWC_CHECK_EQ(src.num_axes(), 4);
  const auto& s = src.shape();
  std::vector<int> dshape(4);
  for (int i = 0; i < 4; ++i) dshape[i] = s[perm[i]];
  dst.reshape(dshape);
  const float* in = src.data_ptr();
  float* out = dst.mutable_data_ptr();
  const int d0 = s[0], d1 = s[1], d2 = s[2], d3 = s[3];
  // Destination strides indexed by source axis.
  std::size_t dst_stride_of_src_axis[4];
  {
    std::size_t stride = 1;
    std::size_t dst_strides[4];
    for (int i = 3; i >= 0; --i) {
      dst_strides[i] = stride;
      stride *= dshape[i];
    }
    for (int i = 0; i < 4; ++i) dst_stride_of_src_axis[perm[i]] = dst_strides[i];
  }
  std::size_t idx = 0;
  for (int a = 0; a < d0; ++a) {
    for (int b = 0; b < d1; ++b) {
      for (int c = 0; c < d2; ++c) {
        for (int d = 0; d < d3; ++d, ++idx) {
          const std::size_t o = a * dst_stride_of_src_axis[0] +
                                b * dst_stride_of_src_axis[1] +
                                c * dst_stride_of_src_axis[2] +
                                d * dst_stride_of_src_axis[3];
          out[o] = in[idx];
        }
      }
    }
  }
}

}  // namespace

void bnrc_to_rcnb(const Tensor& src, Tensor& dst) {
  // (B,N,R,C) -> (R,C,N,B): dst axis order picks src axes (2,3,1,0).
  const int perm[4] = {2, 3, 1, 0};
  transpose4(src, dst, perm);
}

void rcnb_to_bnrc(const Tensor& src, Tensor& dst) {
  // (R,C,N,B) -> (B,N,R,C): dst axis order picks src axes (3,2,0,1).
  const int perm[4] = {3, 2, 0, 1};
  transpose4(src, dst, perm);
}

void filter_to_kkoi(const Tensor& src, Tensor& dst) {
  // (No,Ni,K,K) -> (K,K,No,Ni)
  const int perm[4] = {2, 3, 0, 1};
  transpose4(src, dst, perm);
}

void filter_from_kkoi(const Tensor& src, Tensor& dst) {
  // (K,K,No,Ni) -> (No,Ni,K,K)
  const int perm[4] = {2, 3, 0, 1};
  transpose4(src, dst, perm);
}

}  // namespace swcaffe::tensor
