// Weight initializers matching the Caffe filler family the swCaffe model zoo
// needs (constant, uniform, gaussian, Xavier, MSRA).
#pragma once

#include <string>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace swcaffe::tensor {

enum class FillerType { kConstant, kUniform, kGaussian, kXavier, kMsra };

struct FillerSpec {
  FillerType type = FillerType::kXavier;
  float value = 0.0f;   ///< constant
  float min = -1.0f;    ///< uniform
  float max = 1.0f;     ///< uniform
  float mean = 0.0f;    ///< gaussian
  float stddev = 0.01f; ///< gaussian

  static FillerSpec constant(float v);
  static FillerSpec gaussian(float mean, float stddev);
  static FillerSpec uniform(float lo, float hi);
  static FillerSpec xavier();
  static FillerSpec msra();
};

/// Fills `t.data()` in place. For Xavier/MSRA the fan-in/out are derived from
/// the tensor shape the way Caffe does: fan_in = count / dim(0),
/// fan_out = count / dim(1) when the tensor has >= 2 axes.
void fill(Tensor& t, const FillerSpec& spec, base::Rng& rng);

}  // namespace swcaffe::tensor
