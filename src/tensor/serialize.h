// Minimal binary (de)serialization for tensors and parameter sets, used for
// solver snapshots and test round-trips. Format: magic, axis count, dims,
// then raw float data (little-endian host order; the simulator only targets
// one host).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace swcaffe::tensor {

void write_tensor(std::ostream& os, const Tensor& t);
void read_tensor(std::istream& is, Tensor& t);

/// Writes/reads a named parameter set (e.g. all learnable weights of a net).
void write_tensors(const std::string& path,
                   const std::vector<const Tensor*>& tensors);
void read_tensors(const std::string& path, std::vector<Tensor*>& tensors);

}  // namespace swcaffe::tensor
