#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>

#include "base/log.h"

namespace swcaffe::tensor {

namespace {
constexpr std::uint32_t kTensorMagic = 0x53574346;  // "SWCF"
}

void write_tensor(std::ostream& os, const Tensor& t) {
  const std::uint32_t magic = kTensorMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::uint32_t axes = static_cast<std::uint32_t>(t.num_axes());
  os.write(reinterpret_cast<const char*>(&axes), sizeof(axes));
  for (int i = 0; i < t.num_axes(); ++i) {
    const std::int64_t d = t.dim(i);
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(reinterpret_cast<const char*>(t.data_ptr()),
           static_cast<std::streamsize>(t.count() * sizeof(float)));
  SWC_CHECK_MSG(os.good(), "tensor write failed");
}

void read_tensor(std::istream& is, Tensor& t) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  SWC_CHECK_MSG(is.good() && magic == kTensorMagic,
                "bad tensor stream (magic mismatch)");
  std::uint32_t axes = 0;
  is.read(reinterpret_cast<char*>(&axes), sizeof(axes));
  SWC_CHECK_LE(axes, 8u);
  std::vector<int> shape(axes);
  for (auto& d : shape) {
    std::int64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = static_cast<int>(v);
  }
  t.reshape(shape);
  is.read(reinterpret_cast<char*>(t.mutable_data_ptr()),
          static_cast<std::streamsize>(t.count() * sizeof(float)));
  SWC_CHECK_MSG(is.good(), "tensor read failed");
}

void write_tensors(const std::string& path,
                   const std::vector<const Tensor*>& tensors) {
  std::ofstream os(path, std::ios::binary);
  SWC_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  const std::uint64_t n = tensors.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Tensor* t : tensors) write_tensor(os, *t);
}

void read_tensors(const std::string& path, std::vector<Tensor*>& tensors) {
  std::ifstream is(path, std::ios::binary);
  SWC_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  SWC_CHECK_EQ(n, tensors.size());
  for (Tensor* t : tensors) read_tensor(is, *t);
}

}  // namespace swcaffe::tensor
