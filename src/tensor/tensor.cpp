#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "base/log.h"

namespace swcaffe::tensor {

const char* layout_name(Layout layout) {
  switch (layout) {
    case Layout::kBNRC:
      return "BNRC";
    case Layout::kRCNB:
      return "RCNB";
  }
  return "?";
}

void Tensor::reshape(std::vector<int> shape) {
  std::size_t count = 1;
  for (int d : shape) {
    SWC_CHECK_GE(d, 0);
    count *= static_cast<std::size_t>(d);
  }
  shape_ = std::move(shape);
  count_ = count;
  data_.assign(count_, 0.0f);
  diff_.clear();
}

int Tensor::dim(int i) const {
  SWC_CHECK_GE(i, 0);
  SWC_CHECK_LT(i, num_axes());
  return shape_[i];
}

std::size_t Tensor::offset(int n, int c, int h, int w) const {
  SWC_CHECK_EQ(num_axes(), 4);
  return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
             shape_[3] +
         w;
}

std::span<float> Tensor::diff() {
  if (diff_.size() != count_) diff_.assign(count_, 0.0f);
  return {diff_.data(), diff_.size()};
}

std::span<const float> Tensor::diff() const {
  if (diff_.size() != count_) diff_.assign(count_, 0.0f);
  return {diff_.data(), diff_.size()};
}

void Tensor::zero_diff() {
  diff_.assign(count_, 0.0f);
}

void Tensor::zero_data() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::axpy_from_diff(float alpha) {
  auto d = diff();
  for (std::size_t i = 0; i < count_; ++i) data_[i] += alpha * d[i];
}

double Tensor::sumsq_data() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Tensor::sumsq_diff() const {
  if (diff_.size() != count_) return 0.0;
  double s = 0.0;
  for (float v : diff_) s += static_cast<double>(v) * v;
  return s;
}

void Tensor::copy_from(const Tensor& src, bool copy_diff) {
  SWC_CHECK_EQ(src.count(), count());
  std::copy(src.data().begin(), src.data().end(), data_.begin());
  if (copy_diff) {
    auto d = diff();
    auto sd = src.diff();
    std::copy(sd.begin(), sd.end(), d.begin());
  }
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < num_axes(); ++i) {
    os << shape_[i] << (i + 1 < num_axes() ? "," : "");
  }
  os << ")=" << count_;
  return os.str();
}

}  // namespace swcaffe::tensor
