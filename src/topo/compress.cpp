#include "topo/compress.h"

#include <bit>
#include <cmath>
#include <string_view>

#include "base/log.h"

namespace swcaffe::topo {

const char* compression_name(Compression c) {
  switch (c) {
    case Compression::kNone:
      return "none";
    case Compression::kFp16:
      return "fp16";
    case Compression::kInt8:
      return "int8";
  }
  return "?";
}

bool compression_from_name(const char* name, Compression* out) {
  const std::string_view n = name ? name : "";
  if (n == "none") {
    *out = Compression::kNone;
  } else if (n == "fp16") {
    *out = Compression::kFp16;
  } else if (n == "int8") {
    *out = Compression::kInt8;
  } else {
    return false;
  }
  return true;
}

std::uint16_t float_to_half(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN pass through
    return sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u);
  }
  if (abs < 0x33000000u) return sign;  // < 2^-25: rounds to zero (ties even)
  std::uint32_t bits;
  if (abs < 0x38800000u) {
    // Subnormal half: value = mant * 2^(exp - 150), half unit = 2^-24.
    const std::uint32_t exp = abs >> 23;  // 102..112
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const int shift = static_cast<int>(126 - exp);  // 14..24
    bits = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (bits & 1))) ++bits;
  } else {
    const std::uint32_t mant = abs & 0x7fffffu;
    const std::uint32_t exp = abs >> 23;  // 113..142
    bits = ((exp - 112) << 10) | (mant >> 13);
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (bits & 1))) ++bits;
    // Rounding may carry into the exponent; a gradient codec clamps finite
    // overflow to the largest finite half instead of minting an infinity.
    if (bits >= 0x7c00u) bits = 0x7bffu;
  }
  return sign | static_cast<std::uint16_t>(bits);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {
      // Subnormal: value = mant * 2^-24. Normalize the leading bit.
      int b = 9;
      while (!(mant & (1u << b))) --b;
      const std::uint32_t frac = (mant << (10 - b)) & 0x3ffu;
      x = sign | (static_cast<std::uint32_t>(b + 103) << 23) | (frac << 13);
    }
  } else if (exp == 31) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp + 112) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(x);
}

namespace {

/// Per-message int8 scale: max|v| / 127, computed in the span's order (a
/// max is order-independent anyway, so reruns are trivially bit-identical).
float int8_scale(std::span<const float> values) {
  float max_abs = 0.0f;
  for (float v : values) {
    const float a = std::fabs(v);
    if (a > max_abs) max_abs = a;
  }
  return max_abs / 127.0f;
}

/// Quantize one value at `scale`: nearest signed step, half-way cases away
/// from the implementation-defined FP rounding mode (floor(t + 0.5) in
/// double — fully deterministic, no fesetround dependence).
float int8_round_trip(float v, float scale) {
  if (scale <= 0.0f) return 0.0f;
  const double t = static_cast<double>(v) / static_cast<double>(scale);
  double q = std::floor(t + 0.5);
  if (q > 127.0) q = 127.0;
  if (q < -127.0) q = -127.0;
  return static_cast<float>(q) * scale;
}

}  // namespace

void codec_round_trip(Compression c, std::span<float> values) {
  switch (c) {
    case Compression::kNone:
      return;
    case Compression::kFp16:
      for (float& v : values) v = half_to_float(float_to_half(v));
      return;
    case Compression::kInt8: {
      const float scale = int8_scale(values);
      for (float& v : values) v = int8_round_trip(v, scale);
      return;
    }
  }
}

void ef_encode(Compression c, std::span<float> grad,
               std::span<float> residual) {
  SWC_CHECK_EQ(grad.size(), residual.size());
  if (c == Compression::kNone) return;
  // v = grad + residual; grad := decode(encode(v)); residual := v - grad.
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += residual[i];
  for (std::size_t i = 0; i < grad.size(); ++i) residual[i] = grad[i];
  codec_round_trip(c, grad);
  for (std::size_t i = 0; i < grad.size(); ++i) residual[i] -= grad[i];
}

double codec_seconds(Compression c, std::int64_t raw_bytes,
                     const NetParams& net) {
  if (c == Compression::kNone) return 0.0;
  SWC_CHECK_GE(raw_bytes, 0);
  // Encode at the source + decode at the sink: two streaming passes over
  // the raw floats on the CPE clusters (same engine the gamma term uses).
  return 2.0 * static_cast<double>(raw_bytes) / net.reduce_bw;
}

}  // namespace swcaffe::topo
