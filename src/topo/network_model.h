// Alpha-beta-gamma cost model of the Sunway network (paper Sec. V-A,
// Thakur et al. cost model), plus point-to-point curves for Fig. 6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace swcaffe::topo {

struct NetParams {
  std::string name = "sunway";
  /// Startup latency per message (eager protocol).
  double alpha = 1.5e-6;
  /// Extra startup once the rendezvous protocol kicks in (> eager_limit).
  double alpha_rendezvous = 7.5e-6;
  std::int64_t eager_limit = 2 * 1024;  ///< paper Fig. 6: SW worse >2 KB
  /// Achieved point-to-point bandwidth between any two nodes (12 GB/s of a
  /// 16 GB/s theoretical link, Sec. II-B).
  double link_bw = 12.0e9;
  /// Message size at which half the peak bandwidth is reached.
  double bw_half_size = 64.0 * 1024;
  /// Central-switch oversubscription: cross-supernode aggregate capacity is
  /// (q * link_bw) / oversub per supernode.
  double oversub = 4.0;
  /// Reduction bandwidth for the local sum (gamma): the paper performs sums
  /// on the four CPE clusters rather than the MPE (Sec. V-A).
  double reduce_bw = 25.0e9;
  /// Effective per-byte cost in the latency (ping-pong) benchmark, which
  /// includes the software stack's copies (calibrated to Fig. 6 right).
  double latency_per_byte = 1.9e-9;
  /// Fraction of a flow's wire bandwidth that MPI COLLECTIVE steps actually
  /// sustain (un-overlapped protocol phases, MPE staging copies, tag
  /// matching). Calibrated so the Fig. 10/11 communication fractions are
  /// reproduced: the paper's measured all-reduce of AlexNet's 232.6 MB
  /// gradients at 1024 nodes implies ~0.4 GB/s effective — about 3% of the
  /// 12 GB/s point-to-point rate. Multiplicative, so the 4x supernode
  /// oversubscription penalty (and hence the Fig. 7 placement win) is
  /// preserved.
  double collective_efficiency = 0.03;
  /// Fixed software cost per collective step beyond the wire latency
  /// (buffer registration, tag matching, progress-engine polling).
  double alpha_collective = 25e-6;

  double beta1() const { return 1.0 / (link_bw * collective_efficiency); }
  double beta2() const { return oversub / (link_bw * collective_efficiency); }
  double gamma() const { return 1.0 / reduce_bw; }
};

/// Calibrated presets for the two networks compared in Fig. 6.
NetParams sunway_network();
NetParams infiniband_fdr();

/// Saturating point-to-point bandwidth curve (Fig. 6 left). `bidirectional`
/// derates per-direction throughput; `oversubscribed` divides by the
/// central-switch factor.
double p2p_bandwidth(const NetParams& net, std::int64_t bytes,
                     bool bidirectional, bool oversubscribed);

/// Ping-pong latency curve (Fig. 6 right).
double p2p_latency(const NetParams& net, std::int64_t bytes);

/// One communication step where every listed (src, dst) flow moves `bytes`
/// concurrently: per-flow bandwidth is the link rate unless more flows leave
/// a supernode than its uplink can carry. Returns the step's wall time.
double step_time(const NetParams& net, const Topology& topo,
                 Placement placement,
                 const std::vector<std::pair<int, int>>& flows,
                 std::int64_t bytes);

}  // namespace swcaffe::topo
