// TaihuLight network topology model (paper Sec. II-B): supernodes of q
// nodes with full intra-supernode bandwidth, joined by a central switching
// network provisioned at 1/4 of full bisection ("over-subscribed").
//
// The paper's all-reduce contribution (Sec. V-A) is a *rank placement*: the
// default MPI mapping gives nodes of one supernode adjacent ranks, the
// improved mapping deals ranks to supernodes round-robin so the large
// recursive-halving/doubling exchanges stay inside a supernode.
#pragma once

#include "base/log.h"

namespace swcaffe::topo {

enum class Placement {
  kAdjacent,   ///< ranks 0..q-1 in supernode 0, q..2q-1 in supernode 1, ...
  kRoundRobin, ///< rank r in supernode r % num_supernodes (paper Fig. 7)
};

const char* placement_name(Placement p);

struct Topology {
  int num_nodes = 1;
  int supernode_size = 256;  ///< q (256 on TaihuLight)

  int num_supernodes() const {
    return (num_nodes + supernode_size - 1) / supernode_size;
  }

  /// Physical supernode hosting logical rank `r` under `placement`.
  int supernode_of(int r, Placement placement) const {
    SWC_CHECK_GE(r, 0);
    SWC_CHECK_LT(r, num_nodes);
    if (num_nodes <= supernode_size) return 0;
    switch (placement) {
      case Placement::kAdjacent:
        return r / supernode_size;
      case Placement::kRoundRobin:
        return r % num_supernodes();
    }
    return 0;
  }

  bool crosses(int a, int b, Placement placement) const {
    return supernode_of(a, placement) != supernode_of(b, placement);
  }
};

}  // namespace swcaffe::topo
