#include "topo/hierarchical.h"

#include <algorithm>

#include "base/log.h"

namespace swcaffe::topo {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2i(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

void accumulate(CostBreakdown& into, const CostBreakdown& part) {
  into.seconds += part.seconds;
  into.alpha_terms += part.alpha_terms;
  into.beta1_bytes += part.beta1_bytes;
  into.beta2_bytes += part.beta2_bytes;
  into.gamma_bytes += part.gamma_bytes;
}

}  // namespace

bool hierarchical_applicable(const Topology& topo) {
  const int p = topo.num_nodes;
  const int q = topo.supernode_size;
  return p > q && q >= 2 && p % q == 0 && is_pow2(q);
}

CostBreakdown cost_hierarchical(std::int64_t bytes, const Topology& topo,
                                const NetParams& net, trace::Tracer* tracer,
                                int trace_track) {
  if (!hierarchical_applicable(topo) || bytes == 0) {
    const CostBreakdown cost =
        cost_rhd(bytes, topo, net, Placement::kRoundRobin);
    trace_allreduce(tracer, trace_track, "allreduce.hier", cost);
    return cost;
  }
  const int q = topo.supernode_size;
  const int s = topo.num_nodes / q;

  // Phases A + C: one full supernode-local RHD of the whole message (the
  // reduce-scatter is its first half, the all-gather its second). A q-node
  // topology with supernode_size q never crosses, so every byte is beta1.
  Topology local;
  local.num_nodes = q;
  local.supernode_size = q;
  CostBreakdown cost = cost_rhd(bytes, local, net, Placement::kAdjacent);

  // Phase B: each member runs the RHD of its 1/q chunk across the s
  // supernodes. supernode_size 1 makes every step cross; the per-flow
  // uplink share (link_bw / oversub) models the q concurrent chunk
  // collectives saturating the supernode's q/oversub uplink equivalents.
  Topology inter;
  inter.num_nodes = s;
  inter.supernode_size = 1;
  const std::int64_t chunk = (bytes + q - 1) / q;
  accumulate(cost, cost_rhd(chunk, inter, net, Placement::kAdjacent));

  trace_allreduce(tracer, trace_track, "allreduce.hier", cost);
  return cost;
}

CostBreakdown allreduce_hierarchical(std::vector<std::vector<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net,
                                     trace::Tracer* tracer, int trace_track) {
  std::vector<std::span<float>> spans;
  spans.reserve(data.size());
  for (auto& v : data) spans.emplace_back(v);
  return allreduce_hierarchical(spans, topo, net, tracer, trace_track);
}

CostBreakdown allreduce_hierarchical(const std::vector<std::span<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net,
                                     trace::Tracer* tracer, int trace_track) {
  const int p = static_cast<int>(data.size());
  SWC_CHECK_EQ(p, topo.num_nodes);
  if (!hierarchical_applicable(topo)) {
    const CostBreakdown cost =
        allreduce_rhd(data, topo, net, Placement::kRoundRobin);
    trace_allreduce(tracer, trace_track, "allreduce.hier", cost);
    return cost;
  }
  const std::size_t n = data[0].size();
  for (const auto& v : data) SWC_CHECK_EQ(v.size(), n);
  const int q = topo.supernode_size;
  const int s = p / q;
  // Round-robin membership: rank r lives in supernode r % s as member
  // j = r / s, so member j of supernode k is rank k + j * s. The member
  // index carries the HIGH bits of the rank — phase A's butterfly over j is
  // exactly flat RHD's first log2(q) steps (global distances p/2 .. s).
  const auto rank = [s](int k, int j) { return k + j * s; };
  const int steps = log2i(q);
  std::vector<std::size_t> lo(q, 0), hi(q, n);

  // --- Phase A: supernode-local reduce-scatter ------------------------------
  for (int t = 0; t < steps; ++t) {
    const int d = q >> (t + 1);
    for (int j = 0; j < q; ++j) {
      const int pj = j ^ d;
      if (pj < j) continue;
      SWC_CHECK_EQ(lo[j], lo[pj]);
      SWC_CHECK_EQ(hi[j], hi[pj]);
      const std::size_t mid = (lo[j] + hi[j]) / 2;
      for (int k = 0; k < s; ++k) {
        const auto& mine = data[rank(k, j)];
        const auto& theirs = data[rank(k, pj)];
        for (std::size_t i = lo[j]; i < mid; ++i) mine[i] += theirs[i];
        for (std::size_t i = mid; i < hi[j]; ++i) theirs[i] += mine[i];
      }
      hi[j] = mid;
      lo[pj] = mid;
    }
  }

  // --- Phase B: inter-supernode all-reduce per chunk ------------------------
  // Member j of every supernode holds the group partial of [lo[j], hi[j]);
  // the s holders run a full RHD over it (fold/unfold included, so ragged
  // supernode counts like 40,960 / 256 = 160 work and only fold the chunk).
  Topology inter;
  inter.num_nodes = s;
  inter.supernode_size = 1;
  for (int j = 0; j < q; ++j) {
    if (hi[j] <= lo[j]) continue;  // n < q leaves some members chunkless
    std::vector<std::span<float>> chunk;
    chunk.reserve(s);
    for (int k = 0; k < s; ++k) {
      chunk.push_back(data[rank(k, j)].subspan(lo[j], hi[j] - lo[j]));
    }
    allreduce_rhd(chunk, inter, net, Placement::kAdjacent);
  }

  // --- Phase C: supernode-local all-gather ----------------------------------
  for (int t = steps - 1; t >= 0; --t) {
    const int d = q >> (t + 1);
    for (int j = 0; j < q; ++j) {
      const int pj = j ^ d;
      if (pj < j) continue;
      for (int k = 0; k < s; ++k) {
        const auto& mine = data[rank(k, j)];
        const auto& theirs = data[rank(k, pj)];
        for (std::size_t i = lo[pj]; i < hi[pj]; ++i) mine[i] = theirs[i];
        for (std::size_t i = lo[j]; i < hi[j]; ++i) theirs[i] = mine[i];
      }
      const std::size_t new_lo = std::min(lo[j], lo[pj]);
      const std::size_t new_hi = std::max(hi[j], hi[pj]);
      lo[j] = lo[pj] = new_lo;
      hi[j] = hi[pj] = new_hi;
    }
  }
  for (int j = 0; j < q; ++j) {
    SWC_CHECK_EQ(lo[j], 0u);
    SWC_CHECK_EQ(hi[j], n);
  }
  return cost_hierarchical(static_cast<std::int64_t>(n) * 4, topo, net,
                           tracer, trace_track);
}

}  // namespace swcaffe::topo
