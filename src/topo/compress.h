// Deterministic gradient compression for the all-reduce payloads
// (ROADMAP item 4; FireCaffe motivates communication volume as the scaling
// lever, Caffeinated FPGAs motivates reduced precision as the bandwidth
// multiplier).
//
// Two codecs, both pure functions of their input (no RNG, no global state,
// bit-identical across reruns):
//
//  * fp16 — IEEE 754 binary16 with round-to-nearest-even; finite values
//    beyond the half range clamp to +-65504 instead of overflowing to
//    infinity (a gradient codec must never inject infs into the update).
//  * int8 — per-message linear quantization: scale = max|v| / 127, each
//    value rounds to the nearest of 255 signed steps. One float scale
//    header rides along per message (kInt8ScaleBytes on the wire).
//
// Error feedback (1-bit SGD / deep gradient compression lineage): the
// quantization error of every element is carried in a per-node residual and
// added back into the next iteration's gradient before encoding, so the
// per-step errors telescope instead of accumulating — after T steps the sum
// of decoded gradients differs from the sum of raw gradients by exactly the
// final residual (plus float rounding of the adds), not by T quantization
// errors. The invariant is pinned by tests/compress_test.cpp properties.
//
// Compression happens at the source: each node encodes its (gradient +
// residual) slice, immediately decodes it, and the collective then reduces
// the decoded floats — identical arithmetic to the uncompressed collective
// over the decoded values, so compressed training stays deterministic and
// the existing functional all-reduces are reused unchanged. Only the
// *pricing* changes: beta bytes shrink to the wire encoding while the codec
// passes are charged against the CPE reduction bandwidth.
#pragma once

#include <cstdint>
#include <span>

#include "topo/allreduce.h"
#include "topo/network_model.h"

namespace swcaffe::topo {

enum class Compression { kNone, kFp16, kInt8 };

const char* compression_name(Compression c);

/// Inverse of compression_name ("none" / "fp16" / "int8"); returns false on
/// an unknown name, leaving *out untouched. For CLI flag parsing.
bool compression_from_name(const char* name, Compression* out);

/// Scale header accompanying every int8-compressed message on the wire.
inline constexpr std::int64_t kInt8ScaleBytes = 4;

/// On-wire bytes of a `raw_bytes` (packed float32) message under codec `c`.
/// Header-only so swcheck can state the compressed-byte conservation rule
/// without linking the codec. raw_bytes must be a multiple of 4.
inline std::int64_t wire_bytes(Compression c, std::int64_t raw_bytes) {
  switch (c) {
    case Compression::kNone:
      return raw_bytes;
    case Compression::kFp16:
      return raw_bytes / 2;
    case Compression::kInt8:
      return raw_bytes / 4 + kInt8ScaleBytes;
  }
  return raw_bytes;
}

/// IEEE binary16 conversion, round-to-nearest-even; finite overflow clamps
/// to +-65504 (0x7bff), infinities stay infinities, NaNs stay NaNs.
std::uint16_t float_to_half(float f);
float half_to_float(std::uint16_t h);

/// In-place decode(encode(v)) round trip of every element. kNone is the
/// identity. int8 uses one scale for the whole span (the per-message scale
/// header).
void codec_round_trip(Compression c, std::span<float> values);

/// Error-feedback encode step: grad := decode(encode(grad + residual)),
/// residual := (grad + residual) - decoded. Spans must have equal length.
/// Deterministic; calling twice on copies of the same inputs produces
/// bit-identical outputs.
void ef_encode(Compression c, std::span<float> grad,
               std::span<float> residual);

/// Simulated-time cost of the codec passes for one message: encode at the
/// source plus decode at the sink, each streaming `raw_bytes` through the
/// CPE clusters at the reduction bandwidth. Zero for kNone.
double codec_seconds(Compression c, std::int64_t raw_bytes,
                     const NetParams& net);

/// Prices a compressed collective: `cost_fn` (one of the topo cost_*
/// functions bound to a topology) is evaluated at the wire bytes, then the
/// codec passes over the raw bytes are added. With kNone this is exactly
/// cost_fn(raw_bytes).
template <typename CostFn>
CostBreakdown cost_compressed(Compression c, std::int64_t raw_bytes,
                              const NetParams& net, CostFn&& cost_fn) {
  CostBreakdown cost = cost_fn(wire_bytes(c, raw_bytes));
  cost.seconds += codec_seconds(c, raw_bytes, net);
  return cost;
}

}  // namespace swcaffe::topo
