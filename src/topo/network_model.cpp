#include "topo/network_model.h"

#include <algorithm>
#include <map>

namespace swcaffe::topo {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kAdjacent:
      return "adjacent";
    case Placement::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

NetParams sunway_network() { return NetParams{}; }

NetParams infiniband_fdr() {
  NetParams net;
  net.name = "infiniband-fdr";
  net.alpha = 1.0e-6;
  net.alpha_rendezvous = 2.0e-6;
  net.eager_limit = 8 * 1024;
  net.link_bw = 6.8e9;  // FDR 56 Gb/s minus protocol overhead
  net.bw_half_size = 16.0 * 1024;
  net.oversub = 1.0;  // the comparison fabric in Fig. 6 is non-blocking
  net.latency_per_byte = 1.15e-9;
  net.collective_efficiency = 0.15;  // tuned MPI stacks do markedly better
  return net;
}

double p2p_bandwidth(const NetParams& net, std::int64_t bytes,
                     bool bidirectional, bool oversubscribed) {
  const double n = static_cast<double>(std::max<std::int64_t>(bytes, 1));
  double bw = net.link_bw * n / (n + net.bw_half_size);
  if (bidirectional) bw *= 1.65;  // aggregate of both directions (< 2x: DMA
                                  // engines and NIC share the injection port)
  if (oversubscribed) bw /= net.oversub;
  return bw;
}

double p2p_latency(const NetParams& net, std::int64_t bytes) {
  double t = net.alpha;
  if (bytes > net.eager_limit) t += net.alpha_rendezvous;
  return t + net.latency_per_byte * static_cast<double>(bytes);
}

double step_time(const NetParams& net, const Topology& topo,
                 Placement placement,
                 const std::vector<std::pair<int, int>>& flows,
                 std::int64_t bytes) {
  if (flows.empty() || bytes == 0) return net.alpha;
  // Count flows leaving each supernode; the uplink carries the equivalent of
  // q/oversub full-rate links.
  std::map<int, int> egress;
  for (const auto& [src, dst] : flows) {
    if (topo.crosses(src, dst, placement)) {
      egress[topo.supernode_of(src, placement)]++;
    }
  }
  const double uplink_capacity =
      topo.supernode_size * net.link_bw / net.oversub;
  double worst_bw = net.link_bw;
  for (const auto& [sn, count] : egress) {
    (void)sn;
    worst_bw = std::min(worst_bw, uplink_capacity / count);
  }
  double alpha = net.alpha;
  if (bytes > net.eager_limit) alpha += net.alpha_rendezvous;
  return alpha + static_cast<double>(bytes) / worst_bw;
}

}  // namespace swcaffe::topo
