// Two-level (supernode-hierarchical) all-reduce (ROADMAP item 4).
//
// The paper's improved placement keeps the *large* recursive-halving
// exchanges inside a supernode by dealing ranks round-robin; this module
// takes the idea to its conclusion and makes the hierarchy explicit:
//
//   phase A — supernode-local reduce-scatter: the q members of each
//             supernode binary-halve the full message down to 1/q chunks
//             over full-bandwidth intra-supernode links;
//   phase B — inter-supernode all-reduce: for each chunk, the s supernode
//             representatives holding it run the improved RHD over the
//             oversubscribed central switch — on 1/q of the bytes, with all
//             q chunk collectives sharing the uplink concurrently;
//   phase C — supernode-local all-gather: the mirror of phase A.
//
// For p = q * s with q and s powers of two this is *exactly* the flat RHD
// under round-robin placement (phase A = the high-bit butterfly steps, all
// intra; phase B = the low-bit steps, all cross), so the functional result
// is bit-identical and the priced cost matches to float-summation order.
// The hierarchy pays off off the beaten path: when s is not a power of two
// (40,960 = 160 x 256 full-machine), flat RHD folds the FULL message
// between ragged ranks while phase B folds only the 1/q chunk — the
// difference between a multi-second fold penalty and a near-linear point.
//
// Edge cases fall back to flat RHD with round-robin placement (the paper's
// improved baseline): a single supernode, node counts not divisible by the
// supernode size, and non-power-of-two supernode sizes (pinned by
// tests/hierarchical_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/allreduce.h"
#include "topo/network_model.h"
#include "topo/topology.h"
#include "trace/tracer.h"

namespace swcaffe::topo {

/// True when the two-level algorithm engages: more than one supernode, node
/// count divisible by the supernode size, and a power-of-two supernode size
/// of at least 2 (so the local phases are real butterflies). Everything
/// else falls back to flat RHD round-robin.
bool hierarchical_applicable(const Topology& topo);

/// Analytic cost of the two-level all-reduce, composed from the existing
/// cost model: phases A+C price as one supernode-local RHD of the full
/// message (q nodes, no crossings), phase B as an RHD of the 1/q chunk over
/// s single-node "supernodes" (every step crosses, per-flow uplink share
/// link_bw / oversub). Falls back to cost_rhd round-robin when the
/// hierarchy is not applicable.
CostBreakdown cost_hierarchical(std::int64_t bytes, const Topology& topo,
                                const NetParams& net,
                                trace::Tracer* tracer = nullptr,
                                int trace_track = 0);

/// Functional two-level all-reduce: `data[r]` is rank r's vector; on return
/// every rank holds the elementwise sum. Supernode membership follows the
/// round-robin placement the algorithm implies (rank r lives in supernode
/// r % s), and the phase arithmetic reproduces flat RHD's per-element
/// summation trees whenever s is a power of two — bit-identical results.
CostBreakdown allreduce_hierarchical(std::vector<std::vector<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net,
                                     trace::Tracer* tracer = nullptr,
                                     int trace_track = 0);
CostBreakdown allreduce_hierarchical(const std::vector<std::span<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net,
                                     trace::Tracer* tracer = nullptr,
                                     int trace_track = 0);

}  // namespace swcaffe::topo
