#include "topo/overlap.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "base/log.h"
#include "sim/engine.h"

namespace swcaffe::topo {

std::vector<GradientBucket> make_buckets(
    const std::vector<std::int64_t>& layer_bytes, int num_buckets) {
  const int n = static_cast<int>(layer_bytes.size());
  SWC_CHECK_GT(n, 0);
  SWC_CHECK_GT(num_buckets, 0);
  std::int64_t total = 0;
  int nonzero = 0;
  for (const std::int64_t b : layer_bytes) {
    SWC_CHECK_GE(b, 0);
    total += b;
    if (b > 0) ++nonzero;
  }
  // Every bucket must carry at least one parameterized layer (a zero-byte
  // bucket would be an empty collective), so the count clamps to the number
  // of layers that actually have gradients.
  const int k = std::max(1, std::min(num_buckets, std::max(1, nonzero)));

  // Built back-to-front: backward produces the HIGHEST layers' gradients
  // first, so the quota walk runs in that service order. This way a
  // dominant late layer (AlexNet's fc6 holds 60% of the bytes) gets its own
  // early-ready bucket, and the one bucket that must wait for the entire
  // backward pass — the one containing layer 0 — is the leftover front
  // slice, typically the smallest.
  std::vector<GradientBucket> out;
  out.reserve(k);
  int last = n - 1;
  std::int64_t cum = 0;          // bytes of all closed buckets + current one
  std::int64_t bucket_bytes = 0; // bytes of the open bucket
  int nonzero_left = nonzero;    // parameterized layers not yet swallowed
  for (int i = n - 1; i >= 0; --i) {
    // Close BEFORE swallowing a layer that would overshoot the per-bucket
    // share worse than the current undershoot (2*bucket + layer > 2*share).
    // This is what splits off a dominant EARLY layer: walking back-to-front
    // its bytes arrive last, the quota below would never fire before it, and
    // without this check the whole net would collapse into one bucket.
    if (static_cast<int>(out.size()) < k - 1 && bucket_bytes > 0 &&
        layer_bytes[i] > 0 &&
        (2 * bucket_bytes + layer_bytes[i]) * k > 2 * total) {
      out.push_back({i + 1, last, bucket_bytes});
      last = i;
      bucket_bytes = 0;
    }
    cum += layer_bytes[i];
    bucket_bytes += layer_bytes[i];
    if (layer_bytes[i] > 0) --nonzero_left;
    const int b = static_cast<int>(out.size());
    if (i == 0) {
      out.push_back({0, last, bucket_bytes});
      break;
    }
    if (b == k - 1) continue;  // the final bucket takes everything left
    // Close the bucket once it holds its share of the volume — but only if
    // it is non-empty and a parameterized layer remains for the rest (a
    // giant layer may eat several shares; that just yields fewer buckets).
    const bool quota_met = cum * k >= total * (b + 1);
    if (quota_met && bucket_bytes > 0 && nonzero_left >= 1) {
      out.push_back({i, last, bucket_bytes});
      last = i - 1;
      bucket_bytes = 0;
    }
  }
  std::reverse(out.begin(), out.end());
  SWC_CHECK_LE(static_cast<int>(out.size()), k);
  SWC_CHECK_EQ(out.front().first_layer, 0);
  SWC_CHECK_EQ(out.back().last_layer, n - 1);
  return out;
}

std::vector<std::int64_t> scale_layer_bytes(
    const std::vector<std::int64_t>& layer_bytes, std::int64_t total_bytes) {
  SWC_CHECK_GE(total_bytes, 0);
  SWC_CHECK(!layer_bytes.empty());
  std::int64_t src_total = 0;
  for (const std::int64_t b : layer_bytes) src_total += b;
  std::vector<std::int64_t> out(layer_bytes.size(), 0);
  if (src_total == 0) {
    out.back() = total_bytes;
    return out;
  }
  // Cumulative rounding: out[i] = round(cum_src * scale) - already_assigned,
  // so per-layer rounding errors cancel and the sum is exactly total_bytes.
  std::int64_t cum_src = 0;
  std::int64_t cum_dst = 0;
  const double scale = static_cast<double>(total_bytes) /
                       static_cast<double>(src_total);
  for (std::size_t i = 0; i < layer_bytes.size(); ++i) {
    cum_src += layer_bytes[i];
    const std::int64_t target =
        i + 1 == layer_bytes.size()
            ? total_bytes
            : static_cast<std::int64_t>(
                  std::llround(static_cast<double>(cum_src) * scale));
    out[i] = target - cum_dst;
    SWC_CHECK_GE(out[i], 0);
    cum_dst = target;
  }
  return out;
}

OverlapTimeline schedule_overlap(const std::vector<GradientBucket>& buckets,
                                 const std::vector<double>& layer_bwd_s,
                                 double compute_s,
                                 const BucketCostFn& bucket_cost,
                                 sim::EventLog* event_log) {
  SWC_CHECK(!buckets.empty());
  const int n = static_cast<int>(layer_bwd_s.size());
  SWC_CHECK_GT(n, 0);
  SWC_CHECK_EQ(buckets.back().last_layer, n - 1);
  // prefix[i] = backward time of layers 0..i-1, i.e. the backward work still
  // pending when layer i's own backward completes.
  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + layer_bwd_s[i];
  SWC_CHECK_GE(compute_s, prefix[n] - 1e-12);

  OverlapTimeline tl;
  tl.compute_s = compute_s;
  sim::Engine engine;
  const int compute_actor = engine.add_actor("compute");
  const int net_actor = engine.add_actor("network");
  const int net = engine.add_resource("network");
  engine.record_span(compute_actor, 0.0, compute_s, "compute.fwd_bwd");
  // One "bucket ready" event per bucket, posted in reverse layer order:
  // backward produces the highest layers' gradients first. ready =
  // compute_s - prefix[first_layer] is exact (no re-accumulation drift): the
  // bucket starting at layer 0 is ready at exactly compute_s, which is what
  // makes the single-bucket schedule reproduce the serial model bit-for-bit.
  // Ready times are monotone non-decreasing along this posting order
  // (first_layer shrinks, so prefix[first_layer] shrinks) and the engine
  // breaks equal-time ties by posting order, so handlers fire in exactly the
  // service order of the serial busy-interval loop this replaced — the
  // engine schedule is bit-identical by construction. A ready time a float
  // hair below zero (compute_s is allowed to undershoot the backward sum by
  // 1e-12) posts at zero but still serves at its raw ready time.
  for (int b = static_cast<int>(buckets.size()) - 1; b >= 0; --b) {
    const GradientBucket& bucket = buckets[b];
    SWC_CHECK_GE(bucket.first_layer, 0);
    SWC_CHECK_LE(bucket.first_layer, bucket.last_layer);
    SWC_CHECK_LT(bucket.last_layer, n);
    const double ready = compute_s - prefix[bucket.first_layer];
    engine.post(
        std::max(ready, 0.0), net_actor, "bucket.ready",
        [&tl, &bucket_cost, bucket, ready, net, net_actor](sim::Engine& eng) {
          BucketTiming t;
          t.bucket = bucket;
          t.ready_s = ready;
          t.cost = bucket_cost(bucket.bytes);
          t.start_s = eng.acquire(net, net_actor, ready, t.cost.seconds,
                                  "comm.allreduce", bucket.bytes);
          t.end_s = t.start_s + t.cost.seconds;
          tl.comm_s += t.cost.seconds;
          tl.alpha_terms += t.cost.alpha_terms;
          tl.buckets.push_back(t);
        });
  }
  engine.run();
  SWC_CHECK_EQ(static_cast<std::size_t>(engine.events_processed()),
               buckets.size());
  tl.finish_s = std::max(compute_s, engine.resource(net).busy_until());
  tl.exposed_comm_s = std::max(0.0, tl.finish_s - compute_s);
  if (event_log) *event_log = engine.log();
  return tl;
}

void trace_overlap(trace::Tracer* tracer, int track,
                   const OverlapTimeline& timeline) {
  if (!tracer) return;
  for (std::size_t i = 0; i < timeline.buckets.size(); ++i) {
    const BucketTiming& t = timeline.buckets[i];
    tracer->set_clock(track, t.start_s);
    const std::string name = "bucket" + std::to_string(i) + "[" +
                             std::to_string(t.bucket.first_layer) + ".." +
                             std::to_string(t.bucket.last_layer) + "]";
    tracer->begin_span(track, name, "comm.allreduce");
    trace::TrafficCounters c;
    c.net_bytes =
        static_cast<std::size_t>(t.cost.beta1_bytes + t.cost.beta2_bytes);
    tracer->charge(track, c);
    tracer->counter(track, trace::kCounterAlphaTerms, t.cost.alpha_terms);
    tracer->counter(track, trace::kCounterBeta1Bytes, t.cost.beta1_bytes);
    tracer->counter(track, trace::kCounterBeta2Bytes, t.cost.beta2_bytes);
    tracer->counter(track, trace::kCounterGammaBytes, t.cost.gamma_bytes);
    tracer->end_span(track, t.end_s - t.start_s);
  }
}

}  // namespace swcaffe::topo
