// All-reduce algorithms over the simulated cluster (paper Sec. V-A).
//
// Functional variants move real float buffers between in-process ranks and
// return the same cost breakdown the analytic variants compute, so the cost
// model is validated against the data movement it claims to describe
// (Fig. 7 invariants in tests/topo).
//
// Algorithms:
//  * recursive halving + recursive doubling (MPICH binomial; the paper's
//    baseline and, with round-robin placement, its improved version)
//  * ring (Patarasuk & Yuan; rejected by the paper for its p*alpha latency)
//  * parameter server push/pull (rejected for the single-port bottleneck)
//
// Every variant takes an optional trace::Tracer: when set, the call is
// recorded as one "comm.allreduce" span of the breakdown's duration with the
// per-node network volume charged and the alpha/beta1/beta2/gamma terms
// emitted as counter samples (the Fig. 7 decomposition, machine-readable).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/network_model.h"
#include "topo/topology.h"
#include "trace/tracer.h"

namespace swcaffe::topo {

/// Per-node cost decomposition in the paper's alpha/beta/gamma terms.
struct CostBreakdown {
  double seconds = 0.0;
  int alpha_terms = 0;        ///< number of sequential message startups
  double beta1_bytes = 0.0;   ///< per-node bytes moved intra-supernode
  double beta2_bytes = 0.0;   ///< per-node bytes moved cross-supernode
  double gamma_bytes = 0.0;   ///< per-node bytes locally reduced
};

/// Records one finished all-reduce in `tracer` (no-op when null): a span of
/// `breakdown.seconds` named `algorithm` plus alpha/beta/gamma counters.
void trace_allreduce(trace::Tracer* tracer, int track, const char* algorithm,
                     const CostBreakdown& breakdown);

/// Recursive-halving reduce-scatter + recursive-doubling allgather.
/// Functional: `data[r]` is rank r's vector; on return every rank holds the
/// elementwise sum. Non-power-of-2 node counts use MPICH's fold/unfold
/// scheme (extra ranks merge into a neighbour before the core algorithm and
/// receive the result after it).
CostBreakdown allreduce_rhd(std::vector<std::vector<float>>& data,
                            const Topology& topo, const NetParams& net,
                            Placement placement,
                            trace::Tracer* tracer = nullptr,
                            int trace_track = 0);

/// Span variant: reduces `data[r]` in place where each span views rank r's
/// slice of a larger buffer (the bucketed all-reduce reduces one
/// layer-aligned bucket per call). Identical arithmetic and identical cost
/// to the vector variant over the same elements.
CostBreakdown allreduce_rhd(const std::vector<std::span<float>>& data,
                            const Topology& topo, const NetParams& net,
                            Placement placement,
                            trace::Tracer* tracer = nullptr,
                            int trace_track = 0);

/// Analytic cost of the same algorithm for arbitrary message size (used at
/// 1024-node scale where functional buffers would not fit).
CostBreakdown cost_rhd(std::int64_t bytes, const Topology& topo,
                       const NetParams& net, Placement placement,
                       trace::Tracer* tracer = nullptr, int trace_track = 0);

/// Ring all-reduce (reduce-scatter ring + allgather ring).
CostBreakdown allreduce_ring(std::vector<std::vector<float>>& data,
                             const Topology& topo, const NetParams& net,
                             Placement placement,
                             trace::Tracer* tracer = nullptr,
                             int trace_track = 0);
CostBreakdown allreduce_ring(const std::vector<std::span<float>>& data,
                             const Topology& topo, const NetParams& net,
                             Placement placement,
                             trace::Tracer* tracer = nullptr,
                             int trace_track = 0);
CostBreakdown cost_ring(std::int64_t bytes, const Topology& topo,
                        const NetParams& net, Placement placement,
                        trace::Tracer* tracer = nullptr, int trace_track = 0);

/// Parameter-server synchronization: workers push gradients to `servers`
/// shards, servers reduce and broadcast back. Functional result equals the
/// all-reduce sum on every rank.
CostBreakdown allreduce_param_server(std::vector<std::vector<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net, int servers,
                                     trace::Tracer* tracer = nullptr,
                                     int trace_track = 0);
CostBreakdown allreduce_param_server(const std::vector<std::span<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net, int servers,
                                     trace::Tracer* tracer = nullptr,
                                     int trace_track = 0);
CostBreakdown cost_param_server(std::int64_t bytes, const Topology& topo,
                                const NetParams& net, int servers,
                                trace::Tracer* tracer = nullptr,
                                int trace_track = 0);

}  // namespace swcaffe::topo
