// Overlapped (bucketed) gradient all-reduce timeline (FireCaffe-style
// communication scheduling over the paper's Sec. V-A cost model).
//
// The paper packs every layer's gradients into ONE flat message and
// all-reduces it after the full backward pass, so communication is fully
// serialized behind compute. Splitting the packed message into layer-aligned
// *buckets* lets each bucket's all-reduce start the moment the backward pass
// has produced its layers' gradients: backward runs in reverse layer order,
// so the bucket holding the LAST layers is ready first and its collective
// hides under the backward work of the earlier layers.
//
// The model here is purely analytic (no floats move):
//  * make_buckets partitions per-layer gradient bytes into contiguous,
//    layer-aligned buckets of roughly equal volume;
//  * schedule_overlap runs the buckets through a swsim event engine: one
//    "bucket ready" event per bucket fires when backward has produced its
//    layers, and the handler occupies the single exclusive network resource
//    (busy intervals: a bucket starts at max(its ready time, previous
//    bucket's finish)). The timeline reports the iteration finish plus the
//    *exposed* communication — the tail of comm that sticks out past the
//    end of compute, which is the only part a training iteration actually
//    waits for;
//  * trace_overlap renders the schedule as per-bucket "comm.allreduce"
//    spans on a dedicated network track, so a Perfetto timeline visibly
//    shows comm hiding under backward.
//
// Degenerate contract (pinned by tests): with one bucket the schedule is
// bit-identical to the serial model — ready time is exactly the compute end
// and the finish is compute + the single collective's seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "base/log.h"
#include "sim/event.h"
#include "topo/allreduce.h"
#include "trace/tracer.h"

namespace swcaffe::topo {

/// One contiguous, layer-aligned slice of the packed gradient message.
struct GradientBucket {
  int first_layer = 0;  ///< lowest layer index contributing gradients
  int last_layer = 0;   ///< highest layer index (inclusive)
  std::int64_t bytes = 0;  ///< gradient bytes of layers [first, last]
};

/// Partitions per-layer gradient byte counts into at most `num_buckets`
/// contiguous buckets of roughly equal volume, walking the layers in
/// network service order (back to front) so a dominant late layer gets its
/// own early-ready bucket; a dominant EARLY layer is split off too (a
/// bucket closes rather than swallow a layer that would overshoot its
/// share worse than it currently undershoots). Buckets are layer-aligned (a
/// layer's gradient is
/// never split) and never empty: the count clamps to the number of layers
/// with non-zero parameter bytes, and a single layer holding several
/// buckets' worth of volume simply yields fewer buckets. Layers without
/// parameters (data, ReLU, pool, ...) ride along with a parameterized
/// neighbour. Requires at least one layer; total bytes may be zero (one
/// zero-byte bucket covering everything).
std::vector<GradientBucket> make_buckets(
    const std::vector<std::int64_t>& layer_bytes, int num_buckets);

/// Rescales per-layer byte counts so they sum to exactly `total_bytes`
/// while preserving proportions (cumulative rounding: no drift, the sum is
/// exact). Used to reconcile descriptor-derived layer sizes with a
/// paper-specified packed-message size (e.g. AlexNet's 232.6 MB). When the
/// source sums to zero the whole budget lands on the last layer.
std::vector<std::int64_t> scale_layer_bytes(
    const std::vector<std::int64_t>& layer_bytes, std::int64_t total_bytes);

/// Prices one bucket's collective (same signature family as cost_rhd et
/// al., bound by the caller so this module stays algorithm-agnostic).
using BucketCostFn = std::function<CostBreakdown(std::int64_t bytes)>;

/// One bucket's placement on the simulated timeline.
struct BucketTiming {
  GradientBucket bucket;
  double ready_s = 0.0;  ///< backward has produced the bucket's gradients
  double start_s = 0.0;  ///< network starts serving the bucket
  double end_s = 0.0;    ///< collective finished on every node
  CostBreakdown cost;    ///< the bucket's own alpha/beta/gamma breakdown
};

/// The overlapped iteration timeline.
struct OverlapTimeline {
  /// Bucket timings in network service order (reverse layer order: the
  /// bucket with the highest layers is produced — and served — first).
  std::vector<BucketTiming> buckets;
  double compute_s = 0.0;       ///< forward + backward (t = 0 .. compute_s)
  double comm_s = 0.0;          ///< sum of bucket collective seconds
  double finish_s = 0.0;        ///< max(compute end, last bucket end)
  double exposed_comm_s = 0.0;  ///< max(0, comm tail beyond compute)
  int alpha_terms = 0;          ///< total message rounds across buckets
};

/// Schedules the buckets' collectives against the backward pass.
/// `layer_bwd_s[i]` is layer i's backward time; backward visits layers in
/// reverse order, so bucket [lo, hi] is ready when every layer >= lo has run
/// backward: ready = compute_s - sum(layer_bwd_s[j] for j < lo). The network
/// serves buckets in reverse layer order as busy intervals
/// (start = max(ready, previous end)); `bucket_cost` prices each bucket.
/// `compute_s` is the full forward+backward time and must be >= the sum of
/// `layer_bwd_s` (forward plus backward of the priced layers). `event_log`,
/// when non-null, receives the engine's recorded event log (the compute
/// span plus one network charge per bucket) — ready for swsched extraction
/// via check::timeline_from_events.
OverlapTimeline schedule_overlap(const std::vector<GradientBucket>& buckets,
                                 const std::vector<double>& layer_bwd_s,
                                 double compute_s,
                                 const BucketCostFn& bucket_cost,
                                 sim::EventLog* event_log = nullptr);

/// Renders the timeline on `track`: one "comm.allreduce" span per bucket at
/// its scheduled [start, end] interval (named "bucket<k>[lo..hi]") with the
/// per-bucket alpha/beta/gamma counters. Sets the track clock; callers
/// emitting compute spans on the same trace should use a different track.
/// No-op when `tracer` is null.
void trace_overlap(trace::Tracer* tracer, int track,
                   const OverlapTimeline& timeline);

}  // namespace swcaffe::topo
