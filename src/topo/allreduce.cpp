#include "topo/allreduce.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"

namespace swcaffe::topo {

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2i(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

/// Adds one symmetric step (every rank exchanges `bytes` with rank^d) to the
/// breakdown; returns whether the step crossed supernodes.
void charge_step(CostBreakdown& cost, const Topology& topo,
                 const NetParams& net, Placement placement, int d,
                 double bytes, bool reduce) {
  const bool cross = topo.num_nodes > 1 && topo.crosses(0, d, placement);
  // Flow accounting: in a crossing step every node of a supernode sends out,
  // so q flows share the q/oversub uplink equivalents. Collective steps only
  // sustain a calibrated fraction of the per-flow wire rate (see NetParams).
  double flow_bw = net.link_bw;
  if (cross) {
    const int egress = std::min(topo.supernode_size, topo.num_nodes);
    flow_bw = std::min(flow_bw,
                       topo.supernode_size * net.link_bw / net.oversub / egress);
  }
  flow_bw *= net.collective_efficiency;
  double alpha = net.alpha + net.alpha_collective;
  if (bytes > static_cast<double>(net.eager_limit)) alpha += net.alpha_rendezvous;
  cost.seconds += alpha + bytes / flow_bw;
  cost.alpha_terms += 1;
  if (cross) {
    cost.beta2_bytes += bytes;
  } else {
    cost.beta1_bytes += bytes;
  }
  if (reduce) {
    cost.seconds += bytes * net.gamma();
    cost.gamma_bytes += bytes;
  }
}

}  // namespace

namespace {

int pow2_floor(int v) {
  int r = 1;
  while (r * 2 <= v) r *= 2;
  return r;
}

/// Cost of the MPICH fold/unfold steps for non-power-of-2 node counts: the
/// extra ranks each exchange the full message with a neighbour before and
/// after the core algorithm (Thakur et al. Sec. 4).
void charge_fold(CostBreakdown& cost, const Topology& topo,
                 const NetParams& net, Placement placement,
                 std::int64_t bytes) {
  // Neighbour pairs are rank-adjacent; crossing depends on the placement.
  charge_step(cost, topo, net, placement, /*d=*/1,
              static_cast<double>(bytes), /*reduce=*/true);   // fold in
  charge_step(cost, topo, net, placement, /*d=*/1,
              static_cast<double>(bytes), /*reduce=*/false);  // result out
}

}  // namespace

namespace {

/// Payload sanity shared by every cost path: negative byte counts are a
/// caller bug (a silently wrapped size would price the collective at garbage
/// rates), zero bytes is a degenerate-but-legal collective that costs
/// nothing. Returns true when the payload is empty and the cost should
/// clamp to the zero breakdown.
bool clamp_empty_payload(const char* algorithm, std::int64_t bytes) {
  SWC_CHECK_MSG(bytes >= 0, algorithm << ": negative payload (" << bytes
                                      << " bytes); message sizes must be >= 0");
  if (bytes == 0) {
    SWC_LOG(kWarning,
            algorithm << ": zero-byte payload, charging an empty collective");
    return true;
  }
  return false;
}

}  // namespace

void trace_allreduce(trace::Tracer* tracer, int track, const char* algorithm,
                     const CostBreakdown& breakdown) {
  if (!tracer) return;
  tracer->begin_span(track, algorithm, "comm.allreduce");
  trace::TrafficCounters c;
  c.net_bytes = static_cast<std::size_t>(breakdown.beta1_bytes +
                                         breakdown.beta2_bytes);
  tracer->charge(track, c);
  tracer->counter(track, trace::kCounterAlphaTerms, breakdown.alpha_terms);
  tracer->counter(track, trace::kCounterBeta1Bytes, breakdown.beta1_bytes);
  tracer->counter(track, trace::kCounterBeta2Bytes, breakdown.beta2_bytes);
  tracer->counter(track, trace::kCounterGammaBytes, breakdown.gamma_bytes);
  tracer->end_span(track, breakdown.seconds);
}

CostBreakdown cost_rhd(std::int64_t bytes, const Topology& topo,
                       const NetParams& net, Placement placement,
                       trace::Tracer* tracer, int trace_track) {
  const int p = topo.num_nodes;
  CostBreakdown cost;
  if (clamp_empty_payload("allreduce.rhd", bytes)) return cost;
  if (p == 1) return cost;
  if (!is_pow2(p)) {
    const int p2 = pow2_floor(p);
    Topology core = topo;
    core.num_nodes = p2;
    cost = cost_rhd(bytes, core, net, placement);
    charge_fold(cost, topo, net, placement, bytes);
    trace_allreduce(tracer, trace_track, "allreduce.rhd", cost);
    return cost;
  }
  const int steps = log2i(p);
  // Reduce-scatter: message sizes n/2, n/4, ..., n/p at distances p/2 ... 1.
  for (int s = 0; s < steps; ++s) {
    const int d = p >> (s + 1);
    charge_step(cost, topo, net, placement,
                d, static_cast<double>(bytes) / (1 << (s + 1)),
                /*reduce=*/true);
  }
  // Allgather: the mirror image, sizes n/p ... n/2 at distances 1 ... p/2.
  for (int s = steps - 1; s >= 0; --s) {
    const int d = p >> (s + 1);
    charge_step(cost, topo, net, placement, d,
                static_cast<double>(bytes) / (1 << (s + 1)),
                /*reduce=*/false);
  }
  trace_allreduce(tracer, trace_track, "allreduce.rhd", cost);
  return cost;
}

namespace {

/// Views each rank's full vector as a span (the vector overloads delegate to
/// the span implementations over the whole buffer).
std::vector<std::span<float>> as_spans(std::vector<std::vector<float>>& data) {
  std::vector<std::span<float>> spans;
  spans.reserve(data.size());
  for (auto& v : data) spans.emplace_back(v);
  return spans;
}

}  // namespace

CostBreakdown allreduce_rhd(std::vector<std::vector<float>>& data,
                            const Topology& topo, const NetParams& net,
                            Placement placement, trace::Tracer* tracer,
                            int trace_track) {
  return allreduce_rhd(as_spans(data), topo, net, placement, tracer,
                       trace_track);
}

CostBreakdown allreduce_rhd(const std::vector<std::span<float>>& data,
                            const Topology& topo, const NetParams& net,
                            Placement placement, trace::Tracer* tracer,
                            int trace_track) {
  const int p = static_cast<int>(data.size());
  SWC_CHECK_EQ(p, topo.num_nodes);
  const std::size_t n = data[0].size();
  for (const auto& v : data) SWC_CHECK_EQ(v.size(), n);
  if (p == 1) return CostBreakdown{};

  // Non-power-of-2 handling (Thakur et al. Sec. 4): the first 2*extra ranks
  // pair up; each odd rank folds its vector into the even neighbour and sits
  // out of the core algorithm, receiving the final result afterwards.
  const int p2 = pow2_floor(p);
  const int extra = p - p2;
  std::vector<int> ids;  // participant rank of core-algorithm slot j
  ids.reserve(p2);
  for (int i = 0; i < extra; ++i) {
    for (std::size_t j = 0; j < n; ++j) data[2 * i][j] += data[2 * i + 1][j];
    ids.push_back(2 * i);
  }
  for (int r = 2 * extra; r < p; ++r) ids.push_back(r);
  SWC_CHECK_EQ(ids.size(), static_cast<std::size_t>(p2));

  const int steps = log2i(p2);
  std::vector<std::size_t> lo(p2, 0), hi(p2, n);

  // --- Reduce-scatter (recursive halving) ----------------------------------
  for (int s = 0; s < steps; ++s) {
    const int d = p2 >> (s + 1);
    for (int r = 0; r < p2; ++r) {
      const int partner = r ^ d;
      if (partner < r) continue;  // handle each pair once
      SWC_CHECK_EQ(lo[r], lo[partner]);
      SWC_CHECK_EQ(hi[r], hi[partner]);
      const std::size_t mid = (lo[r] + hi[r]) / 2;
      const auto& mine = data[ids[r]];
      const auto& theirs = data[ids[partner]];
      // Lower slot keeps [lo, mid) and receives the partner's copy of it;
      // the partner keeps [mid, hi) and receives the lower slot's copy.
      for (std::size_t i = lo[r]; i < mid; ++i) mine[i] += theirs[i];
      for (std::size_t i = mid; i < hi[r]; ++i) theirs[i] += mine[i];
      hi[r] = mid;
      lo[partner] = mid;
    }
  }

  // --- Allgather (recursive doubling, reversed halving order) ---------------
  for (int s = steps - 1; s >= 0; --s) {
    const int d = p2 >> (s + 1);
    for (int r = 0; r < p2; ++r) {
      const int partner = r ^ d;
      if (partner < r) continue;
      const auto& mine = data[ids[r]];
      const auto& theirs = data[ids[partner]];
      // The pair's ranges are the two halves they split at forward step s.
      for (std::size_t i = lo[partner]; i < hi[partner]; ++i) {
        mine[i] = theirs[i];
      }
      for (std::size_t i = lo[r]; i < hi[r]; ++i) {
        theirs[i] = mine[i];
      }
      const std::size_t new_lo = std::min(lo[r], lo[partner]);
      const std::size_t new_hi = std::max(hi[r], hi[partner]);
      lo[r] = lo[partner] = new_lo;
      hi[r] = hi[partner] = new_hi;
    }
  }
  for (int r = 0; r < p2; ++r) {
    SWC_CHECK_EQ(lo[r], 0u);
    SWC_CHECK_EQ(hi[r], n);
  }
  // Unfold: the sidelined odd ranks receive the finished result.
  for (int i = 0; i < extra; ++i) {
    std::copy(data[2 * i].begin(), data[2 * i].end(), data[2 * i + 1].begin());
  }
  return cost_rhd(static_cast<std::int64_t>(n) * 4, topo, net, placement,
                  tracer, trace_track);
}

CostBreakdown cost_ring(std::int64_t bytes, const Topology& topo,
                        const NetParams& net, Placement placement,
                        trace::Tracer* tracer, int trace_track) {
  const int p = topo.num_nodes;
  CostBreakdown cost;
  if (clamp_empty_payload("allreduce.ring", bytes)) return cost;
  if (p == 1) return cost;
  const double chunk = static_cast<double>(bytes) / p;
  double alpha = net.alpha + net.alpha_collective;
  if (chunk > static_cast<double>(net.eager_limit)) alpha += net.alpha_rendezvous;
  // Neighbour traffic: at most one flow leaves any supernode per step, so
  // the ring never oversubscribes the uplink — but it pays 2(p-1) latencies
  // (why the paper rejects it on the high-latency Sunway network).
  (void)placement;
  cost.alpha_terms = 2 * (p - 1);
  cost.beta1_bytes = 2.0 * (p - 1) * chunk;
  cost.gamma_bytes = (p - 1) * chunk;
  cost.seconds = cost.alpha_terms * alpha +
                 cost.beta1_bytes * net.beta1() +
                 cost.gamma_bytes * net.gamma();
  trace_allreduce(tracer, trace_track, "allreduce.ring", cost);
  return cost;
}

CostBreakdown allreduce_ring(std::vector<std::vector<float>>& data,
                             const Topology& topo, const NetParams& net,
                             Placement placement, trace::Tracer* tracer,
                             int trace_track) {
  return allreduce_ring(as_spans(data), topo, net, placement, tracer,
                        trace_track);
}

CostBreakdown allreduce_ring(const std::vector<std::span<float>>& data,
                             const Topology& topo, const NetParams& net,
                             Placement placement, trace::Tracer* tracer,
                             int trace_track) {
  const int p = static_cast<int>(data.size());
  SWC_CHECK_EQ(p, topo.num_nodes);
  const std::size_t n = data[0].size();
  if (p == 1) return CostBreakdown{};
  auto block_lo = [&](int b) { return n * b / p; };
  auto block_hi = [&](int b) { return n * (b + 1) / p; };

  // Reduce-scatter ring: after p-1 steps rank r owns the sum of block
  // (r+1) % p.
  for (int s = 0; s < p - 1; ++s) {
    // Perform all receives "simultaneously": snapshot the sent blocks.
    std::vector<std::vector<float>> staged(p);
    for (int r = 0; r < p; ++r) {
      const int b = (r - s + p) % p;
      staged[r].assign(data[r].begin() + block_lo(b),
                       data[r].begin() + block_hi(b));
    }
    for (int r = 0; r < p; ++r) {
      const int src = (r - 1 + p) % p;
      const int b = (src - s + p) % p;
      const std::size_t lo = block_lo(b);
      for (std::size_t i = 0; i < staged[src].size(); ++i) {
        data[r][lo + i] += staged[src][i];
      }
    }
  }
  // Allgather ring: rank r starts by sending its owned block (r+1) % p.
  for (int s = 0; s < p - 1; ++s) {
    std::vector<std::vector<float>> staged(p);
    for (int r = 0; r < p; ++r) {
      const int b = (r + 1 - s + p) % p;
      staged[r].assign(data[r].begin() + block_lo(b),
                       data[r].begin() + block_hi(b));
    }
    for (int r = 0; r < p; ++r) {
      const int src = (r - 1 + p) % p;
      const int b = (src + 1 - s + p) % p;
      std::copy(staged[src].begin(), staged[src].end(),
                data[r].begin() + block_lo(b));
    }
  }
  return cost_ring(static_cast<std::int64_t>(n) * 4, topo, net, placement,
                   tracer, trace_track);
}

CostBreakdown cost_param_server(std::int64_t bytes, const Topology& topo,
                                const NetParams& net, int servers,
                                trace::Tracer* tracer, int trace_track) {
  SWC_CHECK_GT(servers, 0);
  CostBreakdown cost;
  const int p = topo.num_nodes;
  if (clamp_empty_payload("allreduce.param_server", bytes)) return cost;
  if (p == 1) return cost;
  // Every worker pushes its shard set; each server's single network port
  // serializes p incoming shards of bytes/servers (Sec. V-A: "receiving
  // gradients simultaneously from a large number of workers could
  // potentially become a bottleneck"). The pull phase mirrors it.
  const double shard = static_cast<double>(bytes) / servers;
  cost.alpha_terms = 2;
  cost.beta1_bytes = 2.0 * p * shard;
  cost.gamma_bytes = p * shard;
  double alpha = net.alpha + net.alpha_collective;
  if (shard > static_cast<double>(net.eager_limit)) alpha += net.alpha_rendezvous;
  cost.seconds = 2 * alpha + cost.beta1_bytes * net.beta1() +
                 cost.gamma_bytes * net.gamma();
  trace_allreduce(tracer, trace_track, "allreduce.param_server", cost);
  return cost;
}

CostBreakdown allreduce_param_server(std::vector<std::vector<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net, int servers,
                                     trace::Tracer* tracer, int trace_track) {
  return allreduce_param_server(as_spans(data), topo, net, servers, tracer,
                                trace_track);
}

CostBreakdown allreduce_param_server(const std::vector<std::span<float>>& data,
                                     const Topology& topo,
                                     const NetParams& net, int servers,
                                     trace::Tracer* tracer, int trace_track) {
  const int p = static_cast<int>(data.size());
  SWC_CHECK_EQ(p, topo.num_nodes);
  const std::size_t n = data[0].size();
  std::vector<float> sum(n, 0.0f);
  for (const auto& v : data) {
    for (std::size_t i = 0; i < n; ++i) sum[i] += v[i];
  }
  for (const auto& v : data) std::copy(sum.begin(), sum.end(), v.begin());
  return cost_param_server(static_cast<std::int64_t>(n) * 4, topo, net,
                           servers, tracer, trace_track);
}

}  // namespace swcaffe::topo
