#include "base/rng.h"

// Header-only today; this translation unit anchors the library target.
namespace swcaffe::base {}
