// ASCII table printer used by the benchmark harnesses to emit rows in the
// same shape as the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swcaffe::base {

/// Collects rows of string cells and prints them with aligned columns.
///
/// Usage:
///   TablePrinter t({"layer", "fwd (s)", "Gflops"});
///   t.add_row({"conv1_1", "4.19", "110.8"});
///   t.print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Prints the header, a separator, and all rows, padded per column.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double v, int precision = 2);

/// Formats a double in engineering style: "12.3G", "4.5M", "678K", "9.1".
std::string fmt_si(double v, int precision = 1);

}  // namespace swcaffe::base
