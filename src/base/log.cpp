#include "base/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace swcaffe::base {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[swcaffe %s] %s\n", level_name(level), msg.c_str());
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "Check failed: " << expr << " (" << file << ":" << line << ")";
  if (!msg.empty()) os << " " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace swcaffe::base
