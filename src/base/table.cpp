#include "base/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "base/log.h"

namespace swcaffe::base {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SWC_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SWC_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << row[c]
         << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  const double a = std::fabs(v);
  if (a >= 1e12) {
    scaled = v / 1e12;
    suffix = "T";
  } else if (a >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (a >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (a >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

}  // namespace swcaffe::base
