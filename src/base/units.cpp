#include "base/units.h"

#include <cmath>
#include <cstdio>

namespace swcaffe::base {

std::string format_bytes(double bytes) {
  char buf[64];
  if (bytes >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof(buf), "%.1fGiB", bytes / static_cast<double>(kGiB));
  } else if (bytes >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", bytes / static_cast<double>(kMiB));
  } else if (bytes >= static_cast<double>(kKiB)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", bytes / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  const double a = std::fabs(seconds);
  if (a >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3fus", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fns", seconds * 1e9);
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB/s", bytes_per_second / 1e9);
  } else if (bytes_per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fMB/s", bytes_per_second / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fKB/s", bytes_per_second / 1e3);
  }
  return buf;
}

}  // namespace swcaffe::base
