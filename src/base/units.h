// Unit helpers: byte-size literals and time formatting used across the
// simulator, the cost models and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>

namespace swcaffe::base {

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;
constexpr std::size_t kGiB = 1024 * kMiB;

constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

/// Pretty-prints a byte count: "64B", "2.0KiB", "1.5MiB", "3.2GiB".
std::string format_bytes(double bytes);

/// Pretty-prints a simulated duration in seconds: "1.2us", "3.4ms", "5.6s".
std::string format_seconds(double seconds);

/// Pretty-prints a bandwidth in bytes/second: "12.3GB/s".
std::string format_bandwidth(double bytes_per_second);

}  // namespace swcaffe::base
