// Deterministic random number generation.
//
// Every stochastic component in swCaffe (weight fillers, dropout masks,
// synthetic datasets, sampling) draws from an explicitly seeded Rng so that
// simulations and tests are bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <random>

namespace swcaffe::base {

/// Seedable RNG wrapper with the distributions the framework needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Gaussian float with the given mean and standard deviation.
  float gaussian(float mean, float stddev) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace swcaffe::base
