// Lightweight logging and runtime-check facilities for swCaffe.
//
// Checks throw swcaffe::base::CheckError (derived from std::logic_error) so
// tests can assert on failure paths without aborting the process; this keeps
// the library usable as a simulator substrate where a bad kernel plan is a
// recoverable configuration error, not a fatal condition.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace swcaffe::base {

/// Exception thrown by SWC_CHECK* macros on failure.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

/// Stream-style message collector used by the CHECK macros.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail

/// Log levels for the (intentionally minimal) logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually printed (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one log line to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& msg);

}  // namespace swcaffe::base

#define SWC_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::swcaffe::base::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                       \
  } while (0)

#define SWC_CHECK_MSG(expr, ...)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::swcaffe::base::detail::MessageStream swc_ms;                      \
      swc_ms << __VA_ARGS__;                                              \
      ::swcaffe::base::detail::check_failed(#expr, __FILE__, __LINE__,    \
                                            swc_ms.str());                \
    }                                                                     \
  } while (0)

#define SWC_CHECK_OP(a, b, op)                                              \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      ::swcaffe::base::detail::MessageStream swc_ms;                        \
      swc_ms << "lhs=" << (a) << " rhs=" << (b);                            \
      ::swcaffe::base::detail::check_failed(#a " " #op " " #b, __FILE__,    \
                                            __LINE__, swc_ms.str());        \
    }                                                                       \
  } while (0)

#define SWC_CHECK_EQ(a, b) SWC_CHECK_OP(a, b, ==)
#define SWC_CHECK_NE(a, b) SWC_CHECK_OP(a, b, !=)
#define SWC_CHECK_LT(a, b) SWC_CHECK_OP(a, b, <)
#define SWC_CHECK_LE(a, b) SWC_CHECK_OP(a, b, <=)
#define SWC_CHECK_GT(a, b) SWC_CHECK_OP(a, b, >)
#define SWC_CHECK_GE(a, b) SWC_CHECK_OP(a, b, >=)

#define SWC_LOG(level, msg)                                                  \
  do {                                                                       \
    ::swcaffe::base::detail::MessageStream swc_ms;                           \
    swc_ms << msg;                                                           \
    ::swcaffe::base::log_line(::swcaffe::base::LogLevel::level, swc_ms.str()); \
  } while (0)
