// swsim event vocabulary.
//
// One record type describes every timed thing the simulator does: a charge
// on a hardware engine (DMA transfer, RLC message), a span of work on an
// actor (a compute pass, a collective on the network link), or an instant.
// The engine (sim/engine.h), the hardware cost model's charge sites
// (hw::CostModel::set_event_log) and the swsched timeline analyzer
// (check::timeline_from_events) all speak this one vocabulary, so a
// timeline can be extracted straight from whatever ran instead of being
// re-derived per subsystem.
//
// Events are totally ordered by (time_s, actor, seq) — documented here once
// and pinned by tests: earlier simulated time first; at equal times the
// lower actor id; at equal (time, actor) the earlier-recorded event. `seq`
// is assigned by the log/engine in record order, so the order is total and
// reproducible across runs and thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/log.h"

namespace swcaffe::sim {

enum class EventKind {
  kSpan,    ///< work occupying [time_s, time_s + duration_s] on its actor
  kCharge,  ///< a priced hardware charge (span with a byte payload)
  kInstant, ///< a point event (duration 0)
};

struct Event {
  double time_s = 0.0;      ///< start of the interval
  double duration_s = 0.0;  ///< length (0 for instants)
  int actor = 0;            ///< sequential lane the event executes on
  int resource = -1;        ///< exclusive resource occupied, -1 = none
  std::int64_t bytes = 0;   ///< payload moved/charged by the event
  std::uint64_t seq = 0;    ///< record order — the final tie-break
  EventKind kind = EventKind::kSpan;
  std::string name;

  double end_s() const { return time_s + duration_s; }
};

/// Total order of the shared vocabulary: (time_s, actor, seq).
inline bool event_before(const Event& a, const Event& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.actor != b.actor) return a.actor < b.actor;
  return a.seq < b.seq;
}

/// Append-only log of recorded events. Charge sites (hw::DmaEngine,
/// hw::RlcFabric) and the event engine both write here; seq numbers are
/// assigned in record order.
class EventLog {
 public:
  /// Records one event; fills in its seq and returns its index.
  std::size_t record(Event e) {
    SWC_CHECK_GE(e.duration_s, 0.0);
    e.seq = next_seq_++;
    events_.push_back(std::move(e));
    return events_.size() - 1;
  }

  /// Convenience: record a charge span of `seconds` starting at `start_s`.
  void charge(int actor, double start_s, double seconds, std::int64_t bytes,
              std::string name) {
    Event e;
    e.time_s = start_s;
    e.duration_s = seconds;
    e.actor = actor;
    e.bytes = bytes;
    e.kind = EventKind::kCharge;
    e.name = std::move(name);
    record(std::move(e));
  }

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    next_seq_ = 0;
  }

 private:
  std::vector<Event> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace swcaffe::sim
