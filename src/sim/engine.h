// swsim — discrete-event simulation engine.
//
// A timestamped event queue over sequential actors and exclusive resources.
// Handlers fire in the vocabulary's documented total order — (time_s,
// actor, seq): earlier simulated time first, then the lower actor id, then
// posting order — so ties at one instant resolve the same way on every run
// (the batcher's launch-deadline-beats-arrival rule is this order, not a
// special case). A handler may post further events at or after the current
// time and may occupy resources via acquire(), which applies the
// busy-interval discipline (start = max(ready, the resource's previous
// finish)) and records the occupancy in the engine's event log.
//
// The log IS the timeline: every span/charge recorded while simulating can
// be handed to swsched (check::timeline_from_events) without re-deriving
// interval placement per subsystem. The engine is single-threaded and
// deterministic; running INDEPENDENT engines in parallel is what
// sim::simulate_actors is for (node-level event processing on the shared
// worker pool).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/event.h"
#include "sim/resource.h"

namespace swcaffe::sim {

class Engine;

/// Fired when the event's time arrives; may post()/acquire() on the engine.
using Handler = std::function<void(Engine&)>;

class Engine {
 public:
  /// Registers a sequential lane / an exclusive resource; returns its id.
  int add_actor(std::string name);
  int add_resource(std::string name);

  /// Schedules `fn` to fire at absolute time `t_s` on `actor`. Posting into
  /// the simulated past is a time-travel bug and throws. Returns an id for
  /// cancel(). Events at one instant fire in (actor, seq) order.
  std::uint64_t post(double t_s, int actor, std::string name, Handler fn);

  /// Revokes a pending event (e.g. a launch deadline obsoleted by a full
  /// batch). Cancelling an already-fired or unknown id is a no-op.
  void cancel(std::uint64_t id);

  /// Processes events until the queue drains. Empty queues are a no-op.
  void run();

  /// Time of the event being processed (0 before the first event fires).
  double now() const { return now_; }
  std::int64_t events_processed() const { return processed_; }

  /// Busy-interval occupancy of an exclusive resource: the item starts at
  /// max(ready_s, the resource's busy horizon), holds it for `duration_s`,
  /// and the occupancy is recorded in the log on `actor`. Returns the start.
  double acquire(int resource, int actor, double ready_s, double duration_s,
                 std::string name, std::int64_t bytes = 0);

  /// Records already-placed work (e.g. the compute pass the schedule is
  /// built against) into the log without occupying a resource.
  void record_span(int actor, double start_s, double duration_s,
                   std::string name, std::int64_t bytes = 0,
                   EventKind kind = EventKind::kSpan);

  const Resource& resource(int id) const;
  const std::vector<std::string>& actor_names() const { return actors_; }
  const std::vector<std::string>& resource_names() const {
    return resource_names_;
  }
  /// Every span/charge recorded while simulating, in record order.
  const EventLog& log() const { return log_; }

 private:
  struct Pending {
    double time_s = 0.0;
    int actor = 0;
    std::uint64_t id = 0;  ///< posting order — the final tie-break
  };
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      if (a.actor != b.actor) return a.actor > b.actor;
      return a.id > b.id;
    }
  };

  std::vector<std::string> actors_;
  std::vector<std::string> resource_names_;
  std::vector<Resource> resources_;
  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> queue_;
  std::vector<Handler> handlers_;  ///< indexed by event id; empty = cancelled
  EventLog log_;
  double now_ = 0.0;
  std::int64_t processed_ = 0;
};

}  // namespace swcaffe::sim
