// Fixed worker thread pool for embarrassingly parallel simulation.
//
// Two users share this pool discipline:
//  * the SSGD trainer's replica loop (replicas are fully independent between
//    collectives — each owns its Net, solver and gradient buffer);
//  * swsim's node-level event processing (sim::simulate_actors): every
//    (series, config, node-count) point of a timing-only sweep runs its own
//    event engine, and independent engines may run on any worker.
//
// parallel_for runs a loop body across the workers AND the calling thread,
// blocking until every index has completed — determinism is the caller's
// job (each index must touch disjoint state and any reduction must happen
// after the join, in index order).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace swcaffe::sim {

class ThreadPool {
 public:
  /// `threads` is the TOTAL concurrency of parallel_for: the pool spawns
  /// threads - 1 workers and the calling thread contributes the last lane.
  /// threads <= 1 spawns nothing and parallel_for degenerates to a serial
  /// loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the caller).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end); returns after ALL have
  /// completed. Indices are claimed one at a time under the pool mutex, so
  /// any worker may run any index — the body must not depend on which
  /// thread runs it. Not reentrant: fn must not call parallel_for.
  void parallel_for(int begin, int end, const std::function<void(int)>& fn);

  static int hardware_threads() {
    return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals a new parallel_for batch
  std::condition_variable done_cv_;  ///< signals the batch drained
  const std::function<void(int)>* fn_ = nullptr;
  int next_ = 0;     ///< next unclaimed index
  int end_ = 0;      ///< one past the last index
  int pending_ = 0;  ///< indices claimed-or-unclaimed but not yet finished
  std::int64_t generation_ = 0;  ///< batch counter (wakes idle workers once)
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every actor index in [0, count) on a transient pool of
/// `threads` lanes (serial when threads <= 1 — no pool is built). Each index
/// is one independent simulation actor; bodies must touch disjoint state, so
/// results written by index are bit-identical for any thread count.
void simulate_actors(int count, int threads,
                     const std::function<void(int)>& body);

}  // namespace swcaffe::sim
