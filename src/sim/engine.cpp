#include "sim/engine.h"

#include <utility>

#include "base/log.h"

namespace swcaffe::sim {

int Engine::add_actor(std::string name) {
  actors_.push_back(std::move(name));
  return static_cast<int>(actors_.size()) - 1;
}

int Engine::add_resource(std::string name) {
  resource_names_.push_back(std::move(name));
  resources_.emplace_back();
  return static_cast<int>(resources_.size()) - 1;
}

std::uint64_t Engine::post(double t_s, int actor, std::string name,
                           Handler fn) {
  SWC_CHECK_GE(actor, 0);
  SWC_CHECK_LT(actor, static_cast<int>(actors_.size()));
  SWC_CHECK_MSG(t_s >= now_, "time travel: posting " << name << " at " << t_s
                                                     << " with now=" << now_);
  SWC_CHECK(fn != nullptr);
  (void)name;  // names travel on the recorded spans, not the timers
  const std::uint64_t id = handlers_.size();
  handlers_.push_back(std::move(fn));
  queue_.push(Pending{t_s, actor, id});
  return id;
}

void Engine::cancel(std::uint64_t id) {
  if (id < handlers_.size()) handlers_[id] = nullptr;
}

void Engine::run() {
  while (!queue_.empty()) {
    const Pending p = queue_.top();
    queue_.pop();
    Handler fn = std::move(handlers_[p.id]);
    if (!fn) continue;  // cancelled
    handlers_[p.id] = nullptr;
    now_ = p.time_s;
    ++processed_;
    fn(*this);
  }
}

double Engine::acquire(int resource, int actor, double ready_s,
                       double duration_s, std::string name,
                       std::int64_t bytes) {
  SWC_CHECK_GE(resource, 0);
  SWC_CHECK_LT(resource, static_cast<int>(resources_.size()));
  const double start = resources_[static_cast<std::size_t>(resource)].serve(
      ready_s, duration_s);
  Event e;
  e.time_s = start;
  e.duration_s = duration_s;
  e.actor = actor;
  e.resource = resource;
  e.bytes = bytes;
  e.kind = EventKind::kCharge;
  e.name = std::move(name);
  log_.record(std::move(e));
  return start;
}

void Engine::record_span(int actor, double start_s, double duration_s,
                         std::string name, std::int64_t bytes,
                         EventKind kind) {
  Event e;
  e.time_s = start_s;
  e.duration_s = duration_s;
  e.actor = actor;
  e.bytes = bytes;
  e.kind = kind;
  e.name = std::move(name);
  log_.record(std::move(e));
}

const Resource& Engine::resource(int id) const {
  SWC_CHECK_GE(id, 0);
  SWC_CHECK_LT(id, static_cast<int>(resources_.size()));
  return resources_[static_cast<std::size_t>(id)];
}

}  // namespace swcaffe::sim
