// swsim exclusive resource: the busy-interval primitive.
//
// One resource serving work items as busy intervals: an item that becomes
// ready at `ready_s` starts at max(ready_s, previous finish) and occupies
// the resource for `duration_s`. This single primitive is the scheduling
// core shared by the overlapped all-reduce (one network link serving
// gradient buckets, topo::schedule_overlap), the swserve dynamic batcher
// (one inference engine serving request batches) and the event engine's
// acquire() — it used to exist as topo::BusyResource before swsim hoisted
// it here.
#pragma once

#include "base/log.h"

namespace swcaffe::sim {

class Resource {
 public:
  /// Schedules one item; returns its start time and advances the busy
  /// horizon to start + duration_s. Durations must be non-negative (a
  /// negative duration would rewind the horizon and un-serialize the
  /// resource); ready times may arrive in any order — an item ready before
  /// the frontier simply queues behind it.
  double serve(double ready_s, double duration_s) {
    SWC_CHECK_GE(duration_s, 0.0);
    const double start = ready_s > busy_until_ ? ready_s : busy_until_;
    busy_until_ = start + duration_s;
    busy_s_ += duration_s;
    return start;
  }

  /// Earliest time the next item could start.
  double busy_until() const { return busy_until_; }
  /// Total time the resource spent serving (for utilization accounting).
  double busy_s() const { return busy_s_; }

 private:
  double busy_until_ = 0.0;
  double busy_s_ = 0.0;
};

}  // namespace swcaffe::sim
