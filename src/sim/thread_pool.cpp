#include "sim/thread_pool.h"

#include "base/log.h"

namespace swcaffe::sim {

ThreadPool::ThreadPool(int threads) {
  SWC_CHECK_GT(threads, 0);
  workers_.reserve(threads - 1);
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(int begin, int end,
                              const std::function<void(int)>& fn) {
  if (end <= begin) return;
  if (workers_.empty()) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  SWC_CHECK_MSG(fn_ == nullptr, "ThreadPool::parallel_for is not reentrant");
  fn_ = &fn;
  next_ = begin;
  end_ = end;
  pending_ = end - begin;
  ++generation_;
  work_cv_.notify_all();
  // The calling thread is a lane too: claim indices until none remain.
  while (next_ < end_) {
    const int i = next_++;
    lock.unlock();
    fn(i);
    lock.lock();
    --pending_;
  }
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::int64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || (fn_ != nullptr && generation_ != seen && next_ < end_);
    });
    if (stop_) return;
    seen = generation_;
    while (fn_ != nullptr && next_ < end_) {
      const int i = next_++;
      const auto* fn = fn_;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void simulate_actors(int count, int threads,
                     const std::function<void(int)>& body) {
  SWC_CHECK_GE(count, 0);
  if (threads <= 1 || count <= 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(threads, count));
  pool.parallel_for(0, count, body);
}

}  // namespace swcaffe::sim
