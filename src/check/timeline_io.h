// JSON round-trip for the swsched timeline IR.
//
// `swcaffe_check --export-timeline` writes graphs with timeline_to_json and
// `--timeline=<file.json>` reads them back with timeline_from_json, so a
// schedule captured on one run (or synthesized by an external tool) can be
// verified offline. The schema is the IR verbatim — one object with
// "actors", "resources", "ledgers", "events" and "edges" arrays — and the
// writer is deterministic (fixed field order, %.17g doubles), so
// export → import → export is byte-identical.
#pragma once

#include <string>
#include <vector>

#include "check/timeline.h"

namespace swcaffe::check {

/// Serializes the graph as a deterministic JSON document.
std::string timeline_to_json(const TimelineGraph& graph);

/// Parses a timeline JSON document. Returns false (with `error` filled when
/// non-null) on malformed JSON or a document that is not a timeline object;
/// missing optional fields take their IR defaults. Index validity is NOT
/// enforced here — feed the result to check_timeline, whose validation pass
/// reports out-of-range indices as geom-invalid diagnostics.
bool timeline_from_json(const std::string& text, TimelineGraph* out,
                        std::string* error = nullptr);

/// Parses either one timeline object or a JSON array of them (the format
/// `--export-timeline` writes when a run builds several graphs).
bool timelines_from_json(const std::string& text,
                         std::vector<TimelineGraph>* out,
                         std::string* error = nullptr);

/// Serializes several graphs as one JSON array (deterministic, like
/// timeline_to_json).
std::string timelines_to_json(const std::vector<TimelineGraph>& graphs);

}  // namespace swcaffe::check
