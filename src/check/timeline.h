// swsched: whole-timeline static analysis over a shared event-graph IR.
//
// swcheck (plan_model/rules) proves *individual kernel plans* legal — one
// LDM budget, one DMA family, one RLC schedule at a time. swsched lifts the
// same idea to whole discrete-event timelines: the overlapped bucketed
// all-reduce (topo::schedule_overlap), the serving batcher's busy-interval
// loop (serve::simulate_serving) and swfault's retry/replay rounds are all
// hand-built schedules, and a schedule that double-books the network,
// consumes a gradient bucket before its backward pass produced it, or
// breaks the SLO admission bound is invisible to per-plan checks.
//
// The IR is a happens-before event graph:
//
//  * events are charge/span intervals [start_s, end_s] with an optional
//    resource occupancy, a byte payload, shared-state accesses (read/write
//    of named simulated state), an optional ledger membership and an
//    optional completion deadline;
//  * every event executes on exactly one *actor* — a sequential execution
//    lane (the compute pipeline, the network link, the serving loop, one
//    cluster rank). Events of one actor are totally ordered by their
//    position in TimelineGraph::events (program order);
//  * happens-before = the transitive closure of program order, explicit
//    data/sync edges added by the extractor, and the serialization order of
//    exclusive resources.
//
// check_timeline runs five passes over the graph and reports through the
// ordinary swcheck Report, with six dedicated diagnostic codes:
//
//  1. exclusive-resource overlap (timeline-overlap): no two events
//     occupying one exclusive resource may intersect in time;
//  2. happens-before race detection (timeline-race): vector clocks over the
//     actors; two accesses to the same state, at least one a write, with no
//     happens-before path either way, are a race;
//  3. byte conservation (timeline-bytes): the events of each ledger must
//     move exactly the bytes the cost-model ledger expects;
//  4. causality + deadline soundness (timeline-causality /
//     timeline-deadline): every explicit edge's consumer must start at or
//     after its producer ends, and every event with a deadline must
//     provably complete by it (this is how the serving admission bound is
//     re-derived from the timeline);
//  5. dependency-cycle detection (timeline-cycle): Kahn's algorithm over
//     the full happens-before graph — the global, cross-node
//     generalization of the per-plan RLC FIFO deadlock rule;
//  6. gang co-scheduling (timeline-gang): events tagged with one gang id
//     are a single collective step spread over several resources (e.g. one
//     training job's iteration quantum on every node of its allocation) —
//     they must all start and stop at the same instant, because a member
//     running outside its peers would compute against stale replicas.
//
// Analysis is pure: same graph, byte-identical Report. It never executes or
// re-prices anything — verifying a timeline cannot perturb simulated time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/diagnostic.h"
#include "check/rules.h"

namespace swcaffe::check {

/// One schedulable resource of the timeline (a network link, a serving
/// engine, the compute pipeline). `exclusive` resources serialize: two
/// events occupying one may never overlap in time.
struct TimelineResource {
  std::string name;
  bool exclusive = true;
};

/// One read or write of named simulated shared state (a gradient bucket, a
/// parameter buffer, a request slot, a staleness window).
struct StateAccess {
  std::string state;
  bool write = false;
};

/// A cost-model ledger the timeline must conserve: the byte payloads of all
/// member events must sum to exactly `expected_bytes`.
struct TimelineLedger {
  std::string name;
  std::int64_t expected_bytes = 0;
};

/// One charge/span event of the timeline.
struct TimelineEvent {
  std::string name;
  int actor = 0;      ///< sequential lane; program order = insertion order
  int resource = -1;  ///< index into resources, -1 = occupies nothing
  double start_s = 0.0;
  double end_s = 0.0;  ///< >= start_s (a point event has end == start)
  std::int64_t bytes = 0;  ///< payload counted toward the event's ledger
  int ledger = -1;         ///< index into ledgers, -1 = none
  /// Completion deadline: the event must provably end by this time
  /// (< 0 = none). Hard deadlines are errors (a serving SLO the admission
  /// bound guaranteed); soft ones are warnings (a retry ladder that outlives
  /// its escalation timeout is dead code, not corruption).
  double deadline_s = -1.0;
  bool hard_deadline = true;
  /// Gang tag: all events sharing a non-empty tag form one co-scheduled
  /// collective step and must share identical [start_s, end_s] intervals.
  std::string gang;
  std::vector<StateAccess> accesses;
};

/// An explicit happens-before edge (data dependency or synchronization)
/// from events[from] to events[to]: `to` consumes what `from` produced, so
/// `to` must start at or after `from` ends.
struct TimelineEdge {
  int from = 0;
  int to = 0;
  std::string why;  ///< printed in diagnostics, e.g. "bucket ready"
};

/// The whole-timeline event graph. Extractors (timeline_extract.h) build
/// one from a live schedule; timeline_io.h round-trips it through JSON.
struct TimelineGraph {
  std::string name;
  std::vector<std::string> actors;  ///< actor names, index = actor id
  std::vector<TimelineResource> resources;
  std::vector<TimelineLedger> ledgers;
  std::vector<TimelineEvent> events;
  std::vector<TimelineEdge> edges;

  int add_actor(std::string name);
  int add_resource(std::string name, bool exclusive = true);
  int add_ledger(std::string name, std::int64_t expected_bytes);
  /// Appends the event and returns its index (= happens-after everything
  /// previously inserted on the same actor).
  int add_event(TimelineEvent e);
  void add_edge(int from, int to, std::string why);
};

/// Runs every timeline pass over the graph. Malformed graphs (out-of-range
/// actor/resource/ledger/edge indices, end < start) are kGeomInvalid
/// errors; a cyclic graph reports timeline-cycle and skips the clock-based
/// passes (their verdicts would be meaningless on a cycle).
void check_timeline(const TimelineGraph& graph, const Options& opts,
                    Report* report);

/// Convenience driver mirroring verify_retry/verify_buckets.
Report verify_timeline(const TimelineGraph& graph, const Options& opts = {});

}  // namespace swcaffe::check
