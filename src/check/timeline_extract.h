// swsched extractors: build the timeline event-graph IR from the three
// hand-built discrete-event schedules of the stack.
//
//  * timeline_from_overlap — the overlapped bucketed all-reduce
//    (topo::schedule_overlap): backward slices on the compute lane writing
//    gradient buckets, bucket collectives on the exclusive network link
//    reading (and reducing in place) those buckets, and the weight update
//    consuming the combined result. The producer edges are re-derived from
//    the layer indices and per-layer backward times — NOT read back from
//    the schedule's own ready_s — so a schedule that starts a collective
//    before its backward slice finished is caught, not trusted.
//
//  * timeline_from_serving — the swserve DynamicBatcher busy-interval loop:
//    arrivals on the client lane, coalesced batches on the exclusive
//    server, per-request completion deadlines at arrival + SLO, and a
//    per-request admission bound RE-DERIVED from the timeline itself
//    (busy horizon + queued batches ahead + one worst-case forward), which
//    every admitted completion must provably meet.
//
//  * timeline_from_retry — swfault's charge_recovery retry rounds: each
//    round's worst-case retry ladder (sends + exponential backoff) laid out
//    on the network lane with the escalation timeout as the round deadline.
//
//  * timeline_from_schedule — the multi-tenant cluster schedule
//    (sched/scheduler.h): every cluster node is an exclusive resource, every
//    job an actor, and every gang dispatch one co-scheduled event per
//    occupied node tagged with the span's gang id — so a double-booked node
//    is a timeline-overlap, a gang whose members drift apart is a
//    timeline-gang, a job resumed before its previous quantum ended is a
//    timeline-causality, and a scheduler that loses or replays iterations
//    across preemptions breaks the per-job iteration ledger
//    (timeline-bytes).
//
//  * timeline_from_comm — the global (cross-node) communication graph: one
//    or more CommSchedules composed in phase order (e.g. the per-bucket
//    collectives one node runs back to back). FIFO send/receive matching
//    runs across the WHOLE composition, so a cycle that only appears when
//    two individually-sound schedules interleave — invisible to the
//    per-plan check_schedule rule — is still a timeline-cycle.
//
// Extractors only build graphs; all judging happens in check_timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/plan_model.h"
#include "check/timeline.h"
#include "hw/params.h"
#include "sched/record.h"
#include "serve/request.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "topo/overlap.h"

namespace swcaffe::check {

/// Builds the overlapped all-reduce timeline. `layer_bwd_s` / `compute_s`
/// are the same inputs topo::schedule_overlap consumed; `timeline` is its
/// output. `total_bytes` >= 0 adds a packed-gradient ledger the bucket
/// payloads must conserve (< 0 skips the ledger).
TimelineGraph timeline_from_overlap(const std::string& name,
                                    const std::vector<double>& layer_bwd_s,
                                    double compute_s,
                                    const topo::OverlapTimeline& timeline,
                                    std::int64_t total_bytes = -1);

/// The serving-side contract the timeline is judged against (mirrors
/// serve::ServeOptions without depending on the serve library).
struct ServingContract {
  double slo_s = -1.0;        ///< < 0: no SLO deadline events
  double max_delay_s = 0.0;   ///< batcher's oldest-request launch deadline
  int max_batch = 0;          ///< 0: skip the admission-bound re-derivation
  double max_batch_forward_s = 0.0;  ///< f(max_batch), the worst forward
  /// Admission control was enabled: completions carry hard SLO deadlines
  /// and re-derived admission bounds. With admission off, misses are an
  /// accepted trade and no deadline events are emitted.
  bool admission = true;
};

/// Builds the serving timeline from one simulation's request/batch records.
TimelineGraph timeline_from_serving(
    const std::string& name, const std::vector<serve::RequestRecord>& requests,
    const std::vector<serve::BatchRecord>& batches,
    const ServingContract& contract);

/// Builds the worst-case retry/replay timeline of `rounds` message rounds
/// under `plan`'s ladder, starting at `start_s`. Each round's final attempt
/// carries the escalation timeout as a soft deadline — a ladder that cannot
/// finish in time is dead code (timeline-deadline warning, mirroring
/// check_retry's retry-timeout severity).
TimelineGraph timeline_from_retry(const RetryPlan& plan, int rounds,
                                  double start_s = 0.0);

/// Builds the cluster-schedule timeline of one scheduler run over
/// `cluster_nodes` nodes. Every span becomes one event per occupied node
/// (gang tag = "job<id>.span<k>"), consecutive spans of a job are linked by
/// explicit progress edges, and each FINISHED job gets an iteration ledger
/// its run spans must conserve — retiring too few or too many iterations
/// across preemptions/resizes is a timeline-bytes error.
TimelineGraph timeline_from_schedule(const std::string& name,
                                     int cluster_nodes,
                                     const std::vector<sched::JobSpan>& spans,
                                     const std::vector<sched::JobRecord>& jobs);

/// Builds the composed cross-node communication graph of `phases` run back
/// to back (each rank executes phase 0's ops, then phase 1's, ...). Send/
/// receive FIFO matching spans the whole composition. Events are untimed
/// (the composition is a pure dependency structure), so only the race and
/// cycle passes judge it; unmatched sends/receives are per-plan properties
/// left to check_schedule.
TimelineGraph timeline_from_comm(const std::string& name,
                                 const std::vector<CommSchedule>& phases,
                                 const hw::HwParams& hp = {});

/// Builds the error-feedback residual-carry timeline of `iters` compressed
/// training iterations: iteration t is one actor (a pipelined round), and
/// each bucket's encode event writes the persistent residual<b> state and
/// moves that bucket's wire bytes against a per-run wire ledger
/// (iters * sum(bucket_wire_bytes)). Consecutive iterations are linked by
/// explicit "residual carry" edges per bucket — the happens-before that
/// makes cross-iteration residual reuse sound. Stripping those edges makes
/// the conflicting residual writes a timeline-race, which is how a trainer
/// that reordered or parallelized iterations over the shared residuals
/// would be caught.
TimelineGraph timeline_from_ef(const std::string& name, int iters,
                               const std::vector<std::int64_t>& bucket_wire_bytes);

/// Builds a timeline straight from a swsim event log — the shared event
/// vocabulary needs no per-subsystem re-derivation. `actors` / `resources`
/// name the graph's lanes and exclusive resources (every event's ids must be
/// in range); events are laid out in the vocabulary's documented total order
/// (time_s, actor, seq) so each actor's program order is its time order.
/// Instants become point events. The graph carries whatever the log saw —
/// edges/ledgers/deadlines are the caller's to add before verifying.
TimelineGraph timeline_from_events(const std::string& name,
                                   const std::vector<std::string>& actors,
                                   const std::vector<std::string>& resources,
                                   const sim::EventLog& log);

/// Convenience: extracts the timeline of a finished sim::Engine run (its
/// actors, resources and recorded log).
TimelineGraph timeline_from_sim(const std::string& name,
                                const sim::Engine& engine);

}  // namespace swcaffe::check
