// swcheck drivers: build the symbolic plans a layer/net would execute and
// run every applicable rule over them.
//
// Entry points mirror how the rest of the stack consumes kernels:
//  * verify_net        — whole network description (Trainer/NodeRunner hook,
//                        swcaffe_check CLI)
//  * verify_layer      — one LayerDesc (conv, FC/LSTM, pool, elementwise, ...)
//  * verify_conv       — one convolution, optionally forcing a strategy the
//                        auto-tuner would not pick (tests / what-if linting)
//  * verify_gemm       — one blocked mesh GEMM (m, n, k)
//  * verify_mesh_gemm  — one *unblocked* mesh_gemm kernel launch: predicts
//                        exactly when the functional kernel would throw
//  * verify_allreduce  — cluster all-reduce schedule by algorithm name
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/diagnostic.h"
#include "check/rules.h"
#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "swgemm/estimate.h"

namespace swcaffe::check {

/// Which convolution strategy to verify. kAuto follows estimate_conv's
/// per-direction winner (what a simulation would actually run) and
/// cross-checks the tuner's choice against the support predicates.
enum class ConvStrategy { kAuto, kExplicit, kImplicit };

Report verify_gemm(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
                   std::int64_t k, const std::string& layer = "gemm",
                   const Options& opts = {});

/// Candidate-blocking variant: judges the LDM/DMA contracts of the blocked
/// GEMM at an arbitrary blocking (swtune's legality filter — a candidate is
/// legal iff the returned report is empty, warnings included).
Report verify_gemm(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
                   std::int64_t k, const gemm::GemmBlocking& blocking,
                   const std::string& layer = "gemm",
                   const Options& opts = {});

/// Contract check of one raw mesh_gemm(m, n, k) launch: mesh divisibility
/// plus the single-buffered three-tile LDM budget. A passing report implies
/// the functional kernel will not throw; a kLdmOverflow/kGeomInvalid error
/// implies it will (pinned by tests/check_test.cpp).
Report verify_mesh_gemm(const hw::HwParams& hp, std::int64_t m, std::int64_t n,
                        std::int64_t k,
                        const std::string& layer = "mesh_gemm");

Report verify_conv(const hw::CostModel& cost, const core::ConvGeom& g,
                   const std::string& layer = "conv",
                   const Options& opts = {},
                   ConvStrategy strategy = ConvStrategy::kAuto,
                   bool first_conv = false);

Report verify_layer(const hw::CostModel& cost, const core::LayerDesc& d,
                    bool first_conv = false, const Options& opts = {});

/// Verifies every layer of a network description plus the shared RLC
/// schedules (mesh GEMM, implicit conv). This is what the Trainer asserts on
/// in debug builds and what swcaffe_check prints.
Report verify_net(const hw::CostModel& cost,
                  const std::vector<core::LayerDesc>& descs,
                  const Options& opts = {});

/// All-reduce schedule check. `algorithm` is "rhd", "ring", "ps"
/// (parameter server) or "hier" (two-level supernode hierarchy); unknown
/// names are a kGeomInvalid error. "hier" checks each phase's schedule AND
/// the composed phase-order timeline (timeline_from_comm across local
/// reduce-scatter -> inter RHD -> local all-gather); geometries where the
/// hierarchy cannot engage fall back to the flat RHD schedule, mirroring
/// the runtime.
Report verify_allreduce(const std::string& algorithm, int num_nodes,
                        const Options& opts = {}, int supernode_size = 256);

/// Communication-config check (algorithm x compression x buckets): the
/// check_comm legality rules, plus — for hierarchical plans that engage —
/// the composed phase-order timeline. swtune rejects candidates through
/// this driver before pricing them; the trainers assert it on
/// construction.
Report verify_comm(const CommPlan& plan, const Options& opts = {});

/// Retry-plan check (swfault resilient sends): verifies the plan against
/// the default SW26010 LDM budget. See check_retry for the rules.
Report verify_retry(const RetryPlan& plan, const Options& opts = {});

/// Bucketed all-reduce plan check (topo/overlap bucket layouts): verifies
/// against the default SW26010 LDM budget. See check_buckets for the rules.
Report verify_buckets(const BucketPlan& plan, const Options& opts = {});

}  // namespace swcaffe::check
