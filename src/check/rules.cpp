#include "check/rules.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "topo/compress.h"

namespace swcaffe::check {

namespace {

constexpr std::size_t kElemBytes = 4;
/// Fig. 2: DMA bandwidth is "satisfactory" only from 256 B runs upward.
constexpr std::size_t kShortRunBytes = 256;

std::string human_bytes(std::size_t b) {
  return std::to_string(b) + " B";
}

const char* comm_kind_name(CommOp::Kind k) {
  switch (k) {
    case CommOp::Kind::kRowBroadcast:
      return "row-broadcast";
    case CommOp::Kind::kColBroadcast:
      return "col-broadcast";
    case CommOp::Kind::kSend:
      return "send";
    case CommOp::Kind::kRecvRow:
      return "recv-row";
    case CommOp::Kind::kRecvCol:
      return "recv-col";
  }
  return "?";
}

std::string describe_op(const CommOp& op) {
  std::string s = std::string(comm_kind_name(op.kind)) + " @(" +
                  std::to_string(op.row) + "," + std::to_string(op.col) + ")";
  if (op.kind == CommOp::Kind::kSend) {
    s += "->(" + std::to_string(op.peer_row) + "," +
         std::to_string(op.peer_col) + ")";
  }
  return s;
}

}  // namespace

void check_ldm(const LdmPlan& plan, const hw::HwParams& hp,
               const Options& opts, const std::string& layer, Report* report) {
  (void)opts;
  const std::size_t capacity = hp.ldm_bytes;
  const std::size_t resident = plan.resident_bytes();
  const std::size_t buffered = plan.buffered_bytes();
  if (resident > capacity) {
    std::string detail;
    for (const LdmItem& item : plan.items) {
      if (!detail.empty()) detail += " + ";
      detail += item.name + " " + human_bytes(item.bytes);
    }
    report->add(Code::kLdmOverflow, Severity::kError, layer,
                plan.kernel + ": per-CPE working set " + human_bytes(resident) +
                    " exceeds LDM capacity " + human_bytes(capacity) + " (" +
                    detail + ")");
  } else if (buffered > capacity) {
    report->add(Code::kLdmDoubleBuffer, Severity::kWarning, layer,
                plan.kernel + ": working set " + human_bytes(resident) +
                    " fits only single-buffered (" + human_bytes(buffered) +
                    " with double-buffering vs " + human_bytes(capacity) +
                    "); DMA cannot overlap compute");
  }
}

void check_dma(const DmaPlan& plan, const Options& opts,
               const std::string& layer, Report* report) {
  double planned = 0.0;
  for (const DmaOp& op : plan.ops) {
    const std::string where = plan.kernel + "/" + op.name;
    if (op.run_bytes == 0 || op.total_bytes <= 0.0) {
      report->add(Code::kDmaEmptyRun, Severity::kError, layer,
                  where + ": zero-length DMA (" +
                      std::to_string(op.run_bytes) + " B runs, " +
                      std::to_string(op.total_bytes) + " B total)");
      continue;
    }
    if (op.run_bytes % kElemBytes != 0 || op.stride_bytes % kElemBytes != 0) {
      report->add(Code::kDmaMisaligned, Severity::kError, layer,
                  where + ": run " + human_bytes(op.run_bytes) + " / stride " +
                      human_bytes(op.stride_bytes) +
                      " not a multiple of the 4 B element size");
    }
    if (op.stride_bytes > 0 && op.stride_bytes < op.run_bytes) {
      report->add(Code::kDmaOverlap, Severity::kError, layer,
                  where + ": stride " + human_bytes(op.stride_bytes) +
                      " shorter than run " + human_bytes(op.run_bytes) +
                      "; successive runs overlap in memory");
    }
    if (opts.pedantic && op.run_bytes < kShortRunBytes) {
      report->add(Code::kDmaShortRun, Severity::kNote, layer,
                  where + ": " + human_bytes(op.run_bytes) +
                      " runs sit below the 256 B bandwidth knee (Fig. 2); "
                      "expect degraded DMA throughput");
    }
    planned += op.total_bytes;
  }
  const double charged = plan.charged_bytes;
  const double diff = std::abs(planned - charged);
  if (diff > 1.0 && diff > 1e-6 * std::max(std::abs(planned), std::abs(charged))) {
    report->add(Code::kDmaBytesMismatch, Severity::kError, layer,
                plan.kernel + ": enumerated DMA ops move " +
                    std::to_string(planned) + " B but the cost model charges " +
                    std::to_string(charged) +
                    " B; plan and model disagree on traffic");
  }
}

void check_schedule(const CommSchedule& sched, const hw::HwParams& hp,
                    const Options& opts, const std::string& layer,
                    Report* report) {
  (void)opts;
  const std::size_t n = sched.ops.size();
  enum Bus { kRowBus = 0, kColBus = 1 };
  using QueueKey = std::tuple<int, int, int>;  // (dst row, dst col, bus)
  std::map<QueueKey, std::vector<std::size_t>> deliveries;
  std::map<QueueKey, std::vector<std::size_t>> receives;
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<int> indegree(n, 0);
  auto add_edge = [&](std::size_t from, std::size_t to) {
    succ[from].push_back(to);
    ++indegree[to];
  };

  // Program-order edges: the op list restricted to one CPE is its program.
  std::map<std::pair<int, int>, std::size_t> last_op;
  int illegal_pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CommOp& op = sched.ops[i];
    const std::pair<int, int> cpe{op.row, op.col};
    auto it = last_op.find(cpe);
    if (it != last_op.end()) add_edge(it->second, i);
    last_op[cpe] = i;

    switch (op.kind) {
      case CommOp::Kind::kRowBroadcast:
        for (int c = 0; c < hp.mesh_cols; ++c) {
          if (c != op.col) deliveries[{op.row, c, kRowBus}].push_back(i);
        }
        break;
      case CommOp::Kind::kColBroadcast:
        for (int r = 0; r < hp.mesh_rows; ++r) {
          if (r != op.row) deliveries[{r, op.col, kColBus}].push_back(i);
        }
        break;
      case CommOp::Kind::kSend: {
        int bus = kRowBus;
        if (sched.mesh) {
          const bool same_row = op.peer_row == op.row;
          const bool same_col = op.peer_col == op.col;
          if (same_row == same_col) {  // diagonal pair or self-send
            if (illegal_pairs++ == 0) {
              report->add(Code::kRlcIllegalPair, Severity::kError, layer,
                          sched.name + ": " + describe_op(op) +
                              " crosses the mesh diagonally; RLC reaches "
                              "only CPEs sharing a row or column");
            }
            break;  // undeliverable: no queue entry
          }
          bus = same_row ? kRowBus : kColBus;
        }
        deliveries[{op.peer_row, op.peer_col, bus}].push_back(i);
        break;
      }
      case CommOp::Kind::kRecvRow:
        receives[{op.row, op.col, kRowBus}].push_back(i);
        break;
      case CommOp::Kind::kRecvCol:
        receives[{op.row, op.col, kColBus}].push_back(i);
        break;
    }
  }
  if (illegal_pairs > 1) {
    report->add(Code::kRlcIllegalPair, Severity::kError, layer,
                sched.name + ": " + std::to_string(illegal_pairs - 1) +
                    " further diagonal P2P op(s)");
  }

  // FIFO matching: the k-th receive on a (CPE, bus) queue consumes the k-th
  // message delivered to it, independent of where either sits in the list —
  // that is what makes a recv-before-matching-send cycle *detectable* rather
  // than trivially impossible.
  for (const auto& [key, recvs] : receives) {
    const auto dit = deliveries.find(key);
    const std::size_t have = dit == deliveries.end() ? 0 : dit->second.size();
    for (std::size_t k = 0; k < recvs.size(); ++k) {
      if (k < have) {
        add_edge(dit->second[k], recvs[k]);
      }
    }
    if (recvs.size() > have) {
      const CommOp& op = sched.ops[recvs[have]];
      report->add(Code::kRlcUnmatched, Severity::kError, layer,
                  sched.name + ": " + std::to_string(recvs.size() - have) +
                      " receive(s) with no matching send, first " +
                      describe_op(op));
    }
  }
  for (const auto& [key, sent] : deliveries) {
    const auto rit = receives.find(key);
    const std::size_t want = rit == receives.end() ? 0 : rit->second.size();
    if (sent.size() > want) {
      report->add(Code::kRlcUnmatched, Severity::kError, layer,
                  sched.name + ": " + std::to_string(sent.size() - want) +
                      " message(s) to CPE(" + std::to_string(std::get<0>(key)) +
                      "," + std::to_string(std::get<1>(key)) +
                      ") never received (" +
                      (std::get<2>(key) == kRowBus ? "row" : "column") +
                      " bus left non-empty)");
    }
  }

  // Kahn's algorithm: every op must become runnable; a leftover set is a
  // dependency cycle, i.e. the schedule deadlocks on hardware.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::size_t done = 0;
  while (!ready.empty()) {
    const std::size_t i = ready.back();
    ready.pop_back();
    ++done;
    for (std::size_t s : succ[i]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (done < n) {
    std::string first;
    for (std::size_t i = 0; i < n; ++i) {
      if (indegree[i] > 0) {
        first = describe_op(sched.ops[i]);
        break;
      }
    }
    report->add(Code::kRlcDeadlock, Severity::kError, layer,
                sched.name + ": " + std::to_string(n - done) +
                    " op(s) in a send/receive dependency cycle (e.g. " +
                    first + "); schedule deadlocks");
  }
}

void check_retry(const RetryPlan& plan, const hw::HwParams& hp,
                 const Options& opts, const std::string& layer,
                 Report* report) {
  if (plan.max_attempts < 1 || plan.round_bytes < 0 ||
      plan.resend_buffer_bytes < 0 || plan.backoff_base_s < 0.0 ||
      plan.round_time_s < 0.0 || plan.timeout_s < 0.0) {
    report->add(Code::kGeomInvalid, Severity::kError, layer,
                plan.name + ": retry plan needs max_attempts >= 1 and "
                            "non-negative sizes/times");
    return;
  }
  if (plan.round_bytes > plan.resend_buffer_bytes) {
    report->add(Code::kRetryBufferOverflow, Severity::kError, layer,
                plan.name + ": buffered round is " +
                    std::to_string(plan.round_bytes) + " B but only " +
                    std::to_string(plan.resend_buffer_bytes) +
                    " B of resend buffer is reserved; a dropped round could "
                    "not be re-sent");
  }
  if (plan.resend_buffer_bytes > static_cast<std::int64_t>(hp.ldm_bytes)) {
    report->add(Code::kRetryBufferOverflow, Severity::kError, layer,
                plan.name + ": resend buffer of " +
                    std::to_string(plan.resend_buffer_bytes) +
                    " B exceeds the " + std::to_string(hp.ldm_bytes) +
                    " B CPE scratchpad");
  }
  // Retries beyond the escalation deadline are dead code: the reliable
  // fallback fires first, so the configured ladder silently shrinks.
  if (plan.timeout_s > 0.0 && plan.max_attempts > 1 &&
      plan.worst_case_seconds() > plan.timeout_s) {
    report->add(Code::kRetryTimeout, Severity::kWarning, layer,
                plan.name + ": full retry ladder needs " +
                    std::to_string(plan.worst_case_seconds()) +
                    " s but escalation fires after " +
                    std::to_string(plan.timeout_s) +
                    " s; later attempts can never run");
  }
  (void)opts;
}

void check_buckets(const BucketPlan& plan, const hw::HwParams& hp,
                   const Options& opts, const std::string& layer,
                   Report* report) {
  if (plan.num_layers <= 0 || plan.buckets.empty() || plan.eager_limit < 0 ||
      plan.resend_buffer_bytes < 0) {
    report->add(Code::kGeomInvalid, Severity::kError, layer,
                plan.name + ": bucket plan needs num_layers >= 1, at least "
                            "one bucket and non-negative buffer sizes");
    return;
  }
  int expect = 0;  // next layer a bucket must start at
  std::int64_t sum_bytes = 0;
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    const BucketSpan& s = plan.buckets[b];
    const std::string tag = plan.name + ": bucket " + std::to_string(b);
    if (s.first_layer != expect || s.last_layer < s.first_layer ||
        s.last_layer >= plan.num_layers) {
      report->add(Code::kBucketOrder, Severity::kError, layer,
                  tag + " spans layers [" + std::to_string(s.first_layer) +
                      ", " + std::to_string(s.last_layer) +
                      "] but must start at layer " + std::to_string(expect) +
                      "; buckets have to tile the net in layer order "
                      "(gradients of a layer belong to exactly one bucket)");
      return;  // later order checks would cascade off a broken boundary
    }
    // A zero-byte bucket is an empty collective (pure alpha waste) — but a
    // parameterless net (total_bytes == 0) legitimately degenerates to one
    // empty bucket, so only a plan that HAS bytes to distribute is held to
    // the non-empty rule.
    if (s.bytes < 0 || (s.bytes == 0 && plan.total_bytes > 0)) {
      report->add(Code::kBucketOrder, Severity::kError, layer,
                  tag + " carries " + std::to_string(s.bytes) +
                      " gradient bytes; an empty bucket is a zero-byte "
                      "collective and must be merged with a neighbour");
    }
    sum_bytes += s.bytes;
    expect = s.last_layer + 1;
  }
  if (expect != plan.num_layers) {
    report->add(Code::kBucketOrder, Severity::kError, layer,
                plan.name + ": buckets cover layers [0, " +
                    std::to_string(expect) + ") of " +
                    std::to_string(plan.num_layers) +
                    "; every layer's gradient needs a bucket");
  }
  if (plan.total_bytes > 0 && sum_bytes != plan.total_bytes) {
    report->add(Code::kBucketOrder, Severity::kError, layer,
                plan.name + ": buckets sum to " + std::to_string(sum_bytes) +
                    " B but the packed message is " +
                    std::to_string(plan.total_bytes) +
                    " B; bucketing must conserve gradient bytes");
  }
  if (plan.resend_buffer_bytes > 0) {
    // Composition with the resilient send path: what must stay buffered per
    // round is the eager slice of the LARGEST bucket (bigger rounds go
    // rendezvous and re-send from the source buffer, same as check_retry).
    for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
      const std::int64_t round =
          plan.eager_limit > 0
              ? std::min(plan.buckets[b].bytes, plan.eager_limit)
              : plan.buckets[b].bytes;
      if (round > plan.resend_buffer_bytes) {
        report->add(Code::kBucketResendOverflow, Severity::kError, layer,
                    plan.name + ": bucket " + std::to_string(b) +
                        " buffers a " + std::to_string(round) +
                        " B round but the resend buffer holds " +
                        std::to_string(plan.resend_buffer_bytes) +
                        " B; a dropped bucket round could not be re-sent");
      }
    }
    if (plan.resend_buffer_bytes > static_cast<std::int64_t>(hp.ldm_bytes)) {
      report->add(Code::kBucketResendOverflow, Severity::kError, layer,
                  plan.name + ": resend buffer of " +
                      std::to_string(plan.resend_buffer_bytes) +
                      " B exceeds the " + std::to_string(hp.ldm_bytes) +
                      " B CPE scratchpad");
    }
  }
  (void)opts;
}

void check_comm(const CommPlan& plan, const Options& opts,
                const std::string& layer, Report* report) {
  const bool known_algo = plan.algorithm == "rhd-adjacent" ||
                          plan.algorithm == "rhd-round-robin" ||
                          plan.algorithm == "ring" ||
                          plan.algorithm == "param-server" ||
                          plan.algorithm == "hierarchical";
  if (!known_algo) {
    report->add(Code::kGeomInvalid, Severity::kError, layer,
                plan.name + ": unknown all-reduce algorithm \"" +
                    plan.algorithm + "\"");
  }
  const bool known_codec = plan.compression == "none" ||
                           plan.compression == "fp16" ||
                           plan.compression == "int8";
  if (!known_codec) {
    report->add(Code::kGeomInvalid, Severity::kError, layer,
                plan.name + ": unknown compression \"" + plan.compression +
                    "\"");
  }
  if (plan.num_nodes <= 0 || plan.supernode_size <= 0 || plan.buckets <= 0 ||
      plan.raw_bytes < 0 || plan.raw_bytes % 4 != 0) {
    report->add(Code::kGeomInvalid, Severity::kError, layer,
                plan.name + ": invalid geometry (" +
                    std::to_string(plan.num_nodes) + " nodes, supernode " +
                    std::to_string(plan.supernode_size) + ", " +
                    std::to_string(plan.buckets) + " buckets, " +
                    std::to_string(plan.raw_bytes) + " raw bytes)");
    return;
  }
  if (!known_algo || !known_codec) return;

  // int8 carries a per-message scale chosen from the values encoded at the
  // source. Ring and parameter-server forward PARTIALLY REDUCED values, so
  // every hop would have to re-quantize at a fresh scale — T hops compound
  // T quantization errors with no error-feedback residual to absorb them.
  // RHD variants and the hierarchy encode exactly once at the source.
  if (plan.compression == "int8" &&
      (plan.algorithm == "ring" || plan.algorithm == "param-server")) {
    report->add(Code::kCommCompressCombo, Severity::kError, layer,
                plan.name + ": int8 quantization cannot compose with " +
                    plan.algorithm +
                    " (partial sums re-quantized at every hop compound "
                    "unbounded error)");
  }

  // Codec byte conservation: the wire total must equal the codec's encoding
  // of the raw bytes — halved floats for fp16, quartered for int8 plus one
  // scale header per bucket message. A plan that claims fewer wire bytes
  // invents bandwidth; one that claims more double-charges the network.
  if (plan.wire_bytes > 0) {
    std::int64_t expected = plan.raw_bytes;
    if (plan.compression == "fp16") {
      expected = plan.raw_bytes / 2;
    } else if (plan.compression == "int8") {
      expected = plan.raw_bytes / 4 + plan.buckets * topo::kInt8ScaleBytes;
    }
    if (plan.wire_bytes != expected) {
      report->add(Code::kCommCompressBytes, Severity::kError, layer,
                  plan.name + ": claims " + std::to_string(plan.wire_bytes) +
                      " wire bytes but " + plan.compression + " over " +
                      std::to_string(plan.raw_bytes) + " raw bytes in " +
                      std::to_string(plan.buckets) + " buckets encodes to " +
                      std::to_string(expected) + " B");
    }
  }
  (void)opts;
}

}  // namespace swcaffe::check
