#include "check/diagnostic.h"

#include <algorithm>
#include <ostream>
#include <utility>

namespace swcaffe::check {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

const char* code_name(Code c) {
  switch (c) {
    case Code::kLdmOverflow:
      return "ldm-overflow";
    case Code::kLdmDoubleBuffer:
      return "ldm-double-buffer";
    case Code::kDmaEmptyRun:
      return "dma-empty-run";
    case Code::kDmaMisaligned:
      return "dma-misaligned";
    case Code::kDmaOverlap:
      return "dma-overlap";
    case Code::kDmaBytesMismatch:
      return "dma-bytes-mismatch";
    case Code::kDmaShortRun:
      return "dma-short-run";
    case Code::kRlcDeadlock:
      return "rlc-deadlock";
    case Code::kRlcIllegalPair:
      return "rlc-illegal-pair";
    case Code::kRlcUnmatched:
      return "rlc-unmatched";
    case Code::kImplicitUnsupported:
      return "implicit-unsupported";
    case Code::kImplicitDegraded:
      return "implicit-degraded";
    case Code::kPlanInconsistent:
      return "plan-inconsistent";
    case Code::kGeomInvalid:
      return "geom-invalid";
    case Code::kRetryBufferOverflow:
      return "retry-buffer-overflow";
    case Code::kRetryTimeout:
      return "retry-timeout";
    case Code::kBucketOrder:
      return "bucket-order";
    case Code::kBucketResendOverflow:
      return "bucket-resend-overflow";
    case Code::kCommCompressCombo:
      return "comm-compress-combo";
    case Code::kCommCompressBytes:
      return "comm-compress-bytes";
    case Code::kTimelineOverlap:
      return "timeline-overlap";
    case Code::kTimelineRace:
      return "timeline-race";
    case Code::kTimelineBytes:
      return "timeline-bytes";
    case Code::kTimelineCausality:
      return "timeline-causality";
    case Code::kTimelineDeadline:
      return "timeline-deadline";
    case Code::kTimelineCycle:
      return "timeline-cycle";
    case Code::kTimelineGang:
      return "timeline-gang";
  }
  return "?";
}

void Report::add(Code code, Severity severity, std::string layer,
                 std::string message) {
  diags_.push_back(
      Diagnostic{code, severity, std::move(layer), std::move(message)});
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

int Report::error_count() const {
  return static_cast<int>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kError;
      }));
}

int Report::warning_count() const {
  return static_cast<int>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::kWarning;
      }));
}

bool Report::has(Code code) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::string Report::summary() const {
  std::string s = std::to_string(error_count()) + " error(s), " +
                  std::to_string(warning_count()) + " warning(s)";
  for (const Diagnostic& d : diags_) {
    if (d.severity != Severity::kError) continue;
    s += "; first: [" + d.layer + "] " + code_name(d.code) + ": " + d.message;
    break;
  }
  return s;
}

void Report::print(std::ostream& os) const {
  for (const Diagnostic& d : diags_) {
    os << severity_name(d.severity) << ' ' << code_name(d.code) << " ["
       << d.layer << "] " << d.message << '\n';
  }
}

}  // namespace swcaffe::check
