#include "check/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <utility>

namespace swcaffe::check {

namespace {

/// Times arrive from bit-exact busy-interval chaining, but an extractor may
/// re-derive a quantity (a ready time, a prefix sum) through a different
/// association order, so comparisons allow ~1 ulp of slack on the seconds
/// scale without ever absorbing a real scheduling error.
double time_tolerance(double a, double b) {
  return 1e-9 + 1e-9 * std::max(std::abs(a), std::abs(b));
}

/// Deterministic short rendering of a simulated time ("0.00123456789 s"
/// regardless of locale or magnitude — %g keeps microsecond schedules and
/// thousand-second sweeps equally readable).
std::string fmt_s(double t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", t);
  return std::string(buf);
}

std::string describe(const TimelineGraph& g, int e) {
  const TimelineEvent& ev = g.events[static_cast<std::size_t>(e)];
  return ev.name + " [" + fmt_s(ev.start_s) + ", " + fmt_s(ev.end_s) + "]";
}

/// Structural validation: every index in range, every interval ordered.
/// Returns false (and reports) when the graph is too malformed to analyze.
bool validate(const TimelineGraph& g, Report* report) {
  bool ok = true;
  const int actors = static_cast<int>(g.actors.size());
  const int resources = static_cast<int>(g.resources.size());
  const int ledgers = static_cast<int>(g.ledgers.size());
  const int n = static_cast<int>(g.events.size());
  for (int i = 0; i < n; ++i) {
    const TimelineEvent& ev = g.events[static_cast<std::size_t>(i)];
    if (ev.actor < 0 || ev.actor >= actors || ev.resource >= resources ||
        ev.resource < -1 || ev.ledger >= ledgers || ev.ledger < -1) {
      report->add(Code::kGeomInvalid, Severity::kError, g.name,
                  "event " + ev.name +
                      " references an unknown actor/resource/ledger");
      ok = false;
    }
    if (!(ev.end_s >= ev.start_s)) {  // also catches NaN
      report->add(Code::kGeomInvalid, Severity::kError, g.name,
                  "event " + ev.name + " has end " + fmt_s(ev.end_s) +
                      " before start " + fmt_s(ev.start_s));
      ok = false;
    }
  }
  for (const TimelineEdge& e : g.edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n ||
        e.from == e.to) {
      report->add(Code::kGeomInvalid, Severity::kError, g.name,
                  "edge (" + std::to_string(e.from) + " -> " +
                      std::to_string(e.to) + ") references unknown events");
      ok = false;
    }
  }
  return ok;
}

/// The full happens-before edge set: program order within each actor,
/// explicit extractor edges, and the serialization order of every exclusive
/// resource (its events sorted by start time; ties broken by insertion
/// order so the set is deterministic).
struct HbGraph {
  std::vector<std::vector<int>> succ;
  std::vector<int> indegree;
  /// Per-actor event lists in program order; pos[e] = index within actor.
  std::vector<std::vector<int>> actor_events;
  std::vector<int> pos;

  explicit HbGraph(const TimelineGraph& g) {
    const int n = static_cast<int>(g.events.size());
    succ.resize(static_cast<std::size_t>(n));
    indegree.assign(static_cast<std::size_t>(n), 0);
    pos.assign(static_cast<std::size_t>(n), 0);
    actor_events.resize(g.actors.size());
    for (int i = 0; i < n; ++i) {
      auto& lane =
          actor_events[static_cast<std::size_t>(g.events[static_cast<std::size_t>(i)].actor)];
      if (!lane.empty()) add(lane.back(), i);
      pos[static_cast<std::size_t>(i)] = static_cast<int>(lane.size());
      lane.push_back(i);
    }
    for (const TimelineEdge& e : g.edges) add(e.from, e.to);
    // Exclusive-resource serialization: the resource serves its events one
    // at a time, which orders them even across actors.
    for (int r = 0; r < static_cast<int>(g.resources.size()); ++r) {
      if (!g.resources[static_cast<std::size_t>(r)].exclusive) continue;
      std::vector<int> on;
      for (int i = 0; i < n; ++i) {
        if (g.events[static_cast<std::size_t>(i)].resource == r) on.push_back(i);
      }
      std::stable_sort(on.begin(), on.end(), [&](int a, int b) {
        return g.events[static_cast<std::size_t>(a)].start_s <
               g.events[static_cast<std::size_t>(b)].start_s;
      });
      for (std::size_t k = 1; k < on.size(); ++k) add(on[k - 1], on[k]);
    }
  }

  void add(int from, int to) {
    succ[static_cast<std::size_t>(from)].push_back(to);
    ++indegree[static_cast<std::size_t>(to)];
  }
};

/// Kahn topological order; empty when the graph has a cycle.
std::vector<int> topo_order(const HbGraph& hb) {
  const int n = static_cast<int>(hb.indegree.size());
  std::vector<int> indeg = hb.indegree;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  // A min-ordered ready list keeps the order (and therefore any diagnostic
  // derived from it) deterministic.
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indeg[static_cast<std::size_t>(i)] == 0) ready.push_back(i);
  }
  std::make_heap(ready.begin(), ready.end(), std::greater<int>());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<int>());
    const int i = ready.back();
    ready.pop_back();
    order.push_back(i);
    for (const int s : hb.succ[static_cast<std::size_t>(i)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) {
        ready.push_back(s);
        std::push_heap(ready.begin(), ready.end(), std::greater<int>());
      }
    }
  }
  if (static_cast<int>(order.size()) < n) order.clear();
  return order;
}

// --- Pass 1: exclusive-resource overlap -------------------------------------

void pass_overlap(const TimelineGraph& g, Report* report) {
  for (int r = 0; r < static_cast<int>(g.resources.size()); ++r) {
    const TimelineResource& res = g.resources[static_cast<std::size_t>(r)];
    if (!res.exclusive) continue;
    std::vector<int> on;
    for (int i = 0; i < static_cast<int>(g.events.size()); ++i) {
      if (g.events[static_cast<std::size_t>(i)].resource == r) on.push_back(i);
    }
    std::stable_sort(on.begin(), on.end(), [&](int a, int b) {
      return g.events[static_cast<std::size_t>(a)].start_s <
             g.events[static_cast<std::size_t>(b)].start_s;
    });
    // Sorted by start, so it suffices to track the latest finisher seen:
    // any event starting before it ends is double-booked.
    int open = -1;
    for (const int i : on) {
      const TimelineEvent& ev = g.events[static_cast<std::size_t>(i)];
      if (open >= 0) {
        const TimelineEvent& prev = g.events[static_cast<std::size_t>(open)];
        if (ev.start_s < prev.end_s - time_tolerance(ev.start_s, prev.end_s) &&
            ev.end_s > ev.start_s) {
          report->add(Code::kTimelineOverlap, Severity::kError, g.name,
                      res.name + ": " + describe(g, i) + " overlaps " +
                          describe(g, open) +
                          "; an exclusive resource cannot serve two intervals "
                          "at once");
        }
      }
      if (open < 0 || ev.end_s > g.events[static_cast<std::size_t>(open)].end_s) {
        open = i;
      }
    }
  }
}

// --- Pass 3: byte conservation ----------------------------------------------

void pass_bytes(const TimelineGraph& g, Report* report) {
  std::vector<std::int64_t> moved(g.ledgers.size(), 0);
  for (const TimelineEvent& ev : g.events) {
    if (ev.ledger >= 0) moved[static_cast<std::size_t>(ev.ledger)] += ev.bytes;
  }
  for (std::size_t l = 0; l < g.ledgers.size(); ++l) {
    if (moved[l] != g.ledgers[l].expected_bytes) {
      report->add(Code::kTimelineBytes, Severity::kError, g.name,
                  g.ledgers[l].name + ": timeline events move " +
                      std::to_string(moved[l]) + " B but the ledger expects " +
                      std::to_string(g.ledgers[l].expected_bytes) +
                      " B; the schedule loses or invents payload");
    }
  }
}

// --- Pass 4a: causality (edge timing soundness) -----------------------------

void pass_causality(const TimelineGraph& g, Report* report) {
  for (const TimelineEdge& e : g.edges) {
    const TimelineEvent& from = g.events[static_cast<std::size_t>(e.from)];
    const TimelineEvent& to = g.events[static_cast<std::size_t>(e.to)];
    if (to.start_s < from.end_s - time_tolerance(to.start_s, from.end_s)) {
      report->add(Code::kTimelineCausality, Severity::kError, g.name,
                  to.name + " starts at " + fmt_s(to.start_s) + " but its " +
                      (e.why.empty() ? std::string("dependency")
                                     : e.why) +
                      " " + from.name + " only finishes at " +
                      fmt_s(from.end_s) + "; the schedule consumes data "
                      "before it exists");
    }
  }
}

// --- Pass 4b: deadline soundness --------------------------------------------

void pass_deadline(const TimelineGraph& g, Report* report) {
  for (const TimelineEvent& ev : g.events) {
    if (ev.deadline_s < 0.0) continue;
    if (ev.end_s > ev.deadline_s + time_tolerance(ev.end_s, ev.deadline_s)) {
      report->add(Code::kTimelineDeadline,
                  ev.hard_deadline ? Severity::kError : Severity::kWarning,
                  g.name,
                  ev.name + " provably completes at " + fmt_s(ev.end_s) +
                      ", past its deadline of " + fmt_s(ev.deadline_s) +
                      (ev.hard_deadline
                           ? "; the admission/soundness bound is violated"
                           : "; the tail of the plan is dead code"));
    }
  }
}

// --- Pass 6: gang co-scheduling ---------------------------------------------

void pass_gang(const TimelineGraph& g, Report* report) {
  // Gangs grouped per tag (std::map: deterministic iteration order).
  std::map<std::string, std::vector<int>> gangs;
  for (int i = 0; i < static_cast<int>(g.events.size()); ++i) {
    const TimelineEvent& ev = g.events[static_cast<std::size_t>(i)];
    if (!ev.gang.empty()) gangs[ev.gang].push_back(i);
  }
  for (const auto& [tag, members] : gangs) {
    const TimelineEvent& lead = g.events[static_cast<std::size_t>(members[0])];
    for (std::size_t k = 1; k < members.size(); ++k) {
      const TimelineEvent& ev = g.events[static_cast<std::size_t>(members[k])];
      if (std::abs(ev.start_s - lead.start_s) >
              time_tolerance(ev.start_s, lead.start_s) ||
          std::abs(ev.end_s - lead.end_s) >
              time_tolerance(ev.end_s, lead.end_s)) {
        report->add(Code::kTimelineGang, Severity::kError, g.name,
                    "gang '" + tag + "': " + describe(g, members[k]) +
                        " does not run in lockstep with " +
                        describe(g, members[0]) +
                        "; a gang's members must start and stop together");
        break;  // one diagnostic per gang: every straggler would cascade
      }
    }
  }
}

// --- Pass 2: vector-clock race detection ------------------------------------

void pass_races(const TimelineGraph& g, const HbGraph& hb,
                const std::vector<int>& order, Report* report) {
  const std::size_t actors = g.actors.size();
  const std::size_t n = g.events.size();
  // clock[e][a] = how many of actor a's events happen-before (or are) e.
  std::vector<std::vector<int>> clock(n, std::vector<int>(actors, 0));
  std::vector<std::vector<int>> preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const int s : hb.succ[i]) {
      preds[static_cast<std::size_t>(s)].push_back(static_cast<int>(i));
    }
  }
  for (const int e : order) {
    auto& vc = clock[static_cast<std::size_t>(e)];
    for (const int p : preds[static_cast<std::size_t>(e)]) {
      const auto& pv = clock[static_cast<std::size_t>(p)];
      for (std::size_t a = 0; a < actors; ++a) vc[a] = std::max(vc[a], pv[a]);
    }
    const auto actor = static_cast<std::size_t>(
        g.events[static_cast<std::size_t>(e)].actor);
    vc[actor] =
        std::max(vc[actor], hb.pos[static_cast<std::size_t>(e)] + 1);
  }
  const auto happens_before = [&](int a, int b) {
    const TimelineEvent& ea = g.events[static_cast<std::size_t>(a)];
    return clock[static_cast<std::size_t>(b)]
                [static_cast<std::size_t>(ea.actor)] >=
           hb.pos[static_cast<std::size_t>(a)] + 1;
  };

  // Accesses grouped per state key (std::map: deterministic iteration).
  struct Access {
    int event;
    bool write;
  };
  std::map<std::string, std::vector<Access>> by_state;
  for (std::size_t i = 0; i < n; ++i) {
    for (const StateAccess& a : g.events[i].accesses) {
      by_state[a.state].push_back({static_cast<int>(i), a.write});
    }
  }
  for (const auto& [state, accesses] : by_state) {
    bool reported = false;
    for (std::size_t i = 0; i < accesses.size() && !reported; ++i) {
      for (std::size_t j = i + 1; j < accesses.size() && !reported; ++j) {
        const Access& x = accesses[i];
        const Access& y = accesses[j];
        if (!x.write && !y.write) continue;
        if (x.event == y.event) continue;
        if (happens_before(x.event, y.event) ||
            happens_before(y.event, x.event)) {
          continue;
        }
        report->add(
            Code::kTimelineRace, Severity::kError, g.name,
            "state '" + state + "': " +
                (x.write ? "write by " : "read by ") + describe(g, x.event) +
                " races " + (y.write ? "write by " : "read by ") +
                describe(g, y.event) +
                "; no happens-before path orders the accesses");
        reported = true;  // one diagnostic per state: peers would cascade
      }
    }
  }
}

// --- Pass 5: dependency cycles ----------------------------------------------

/// Reports one representative cycle by walking still-blocked events.
void report_cycle(const TimelineGraph& g, const HbGraph& hb, Report* report) {
  std::vector<int> indeg = hb.indegree;
  std::vector<int> ready;
  for (std::size_t i = 0; i < indeg.size(); ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::size_t done = 0;
  while (!ready.empty()) {
    const int i = ready.back();
    ready.pop_back();
    ++done;
    for (const int s : hb.succ[static_cast<std::size_t>(i)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
    }
  }
  std::string example;
  for (std::size_t i = 0; i < indeg.size(); ++i) {
    if (indeg[i] > 0) {
      example = g.events[i].name;
      break;
    }
  }
  report->add(Code::kTimelineCycle, Severity::kError, g.name,
              std::to_string(g.events.size() - done) +
                  " event(s) in a happens-before cycle (e.g. " + example +
                  "); the schedule can never make progress");
}

}  // namespace

int TimelineGraph::add_actor(std::string name) {
  actors.push_back(std::move(name));
  return static_cast<int>(actors.size()) - 1;
}

int TimelineGraph::add_resource(std::string name, bool exclusive) {
  resources.push_back({std::move(name), exclusive});
  return static_cast<int>(resources.size()) - 1;
}

int TimelineGraph::add_ledger(std::string name, std::int64_t expected_bytes) {
  ledgers.push_back({std::move(name), expected_bytes});
  return static_cast<int>(ledgers.size()) - 1;
}

int TimelineGraph::add_event(TimelineEvent e) {
  events.push_back(std::move(e));
  return static_cast<int>(events.size()) - 1;
}

void TimelineGraph::add_edge(int from, int to, std::string why) {
  edges.push_back({from, to, std::move(why)});
}

void check_timeline(const TimelineGraph& graph, const Options& opts,
                    Report* report) {
  (void)opts;
  if (!validate(graph, report)) return;
  pass_overlap(graph, report);
  pass_bytes(graph, report);
  pass_causality(graph, report);
  pass_deadline(graph, report);
  pass_gang(graph, report);
  const HbGraph hb(graph);
  const std::vector<int> order = topo_order(hb);
  if (order.empty() && !graph.events.empty()) {
    // Vector clocks are meaningless on a cyclic graph; report the deadlock
    // and stop — fixing it will re-enable the race pass.
    report_cycle(graph, hb, report);
    return;
  }
  pass_races(graph, hb, order, report);
}

Report verify_timeline(const TimelineGraph& graph, const Options& opts) {
  Report report;
  check_timeline(graph, opts, &report);
  return report;
}

}  // namespace swcaffe::check
