#include "check/timeline_io.h"

#include <cstdio>
#include <utility>

#include "trace/chrome_trace.h"
#include "trace/json.h"

namespace swcaffe::check {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + trace::json_escape(s) + "\"";
}

}  // namespace

std::string timeline_to_json(const TimelineGraph& graph) {
  std::string out = "{\n  \"name\": " + quoted(graph.name) + ",\n";
  out += "  \"actors\": [";
  for (std::size_t i = 0; i < graph.actors.size(); ++i) {
    if (i) out += ", ";
    out += quoted(graph.actors[i]);
  }
  out += "],\n  \"resources\": [";
  for (std::size_t i = 0; i < graph.resources.size(); ++i) {
    if (i) out += ", ";
    out += "{\"name\": " + quoted(graph.resources[i].name) +
           ", \"exclusive\": " +
           (graph.resources[i].exclusive ? "true" : "false") + "}";
  }
  out += "],\n  \"ledgers\": [";
  for (std::size_t i = 0; i < graph.ledgers.size(); ++i) {
    if (i) out += ", ";
    out += "{\"name\": " + quoted(graph.ledgers[i].name) +
           ", \"expected_bytes\": " +
           std::to_string(graph.ledgers[i].expected_bytes) + "}";
  }
  out += "],\n  \"events\": [";
  for (std::size_t i = 0; i < graph.events.size(); ++i) {
    const TimelineEvent& e = graph.events[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": " + quoted(e.name) +
           ", \"actor\": " + std::to_string(e.actor) +
           ", \"resource\": " + std::to_string(e.resource) +
           ", \"start_s\": " + num(e.start_s) +
           ", \"end_s\": " + num(e.end_s) +
           ", \"bytes\": " + std::to_string(e.bytes) +
           ", \"ledger\": " + std::to_string(e.ledger) +
           ", \"deadline_s\": " + num(e.deadline_s) +
           ", \"hard_deadline\": " + (e.hard_deadline ? "true" : "false") +
           (e.gang.empty() ? std::string()
                           : ", \"gang\": " + quoted(e.gang)) +
           ", \"accesses\": [";
    for (std::size_t a = 0; a < e.accesses.size(); ++a) {
      if (a) out += ", ";
      out += "{\"state\": " + quoted(e.accesses[a].state) +
             ", \"write\": " + (e.accesses[a].write ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += graph.events.empty() ? "],\n  \"edges\": [" : "\n  ],\n  \"edges\": [";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const TimelineEdge& e = graph.edges[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"from\": " + std::to_string(e.from) +
           ", \"to\": " + std::to_string(e.to) +
           ", \"why\": " + quoted(e.why) + "}";
  }
  out += graph.edges.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

namespace {

bool decode_graph(const trace::JsonValue& doc, TimelineGraph* out,
                  std::string* error) {
  if (!doc.is_object()) {
    if (error) *error = "timeline document must be a JSON object";
    return false;
  }
  TimelineGraph g;
  if (const trace::JsonValue* v = doc.find("name")) g.name = v->as_string();
  if (const trace::JsonValue* v = doc.find("actors")) {
    for (const trace::JsonValue& a : v->items()) {
      g.actors.push_back(a.as_string());
    }
  }
  if (const trace::JsonValue* v = doc.find("resources")) {
    for (const trace::JsonValue& r : v->items()) {
      TimelineResource res;
      if (const trace::JsonValue* f = r.find("name")) res.name = f->as_string();
      if (const trace::JsonValue* f = r.find("exclusive")) {
        res.exclusive = f->as_bool(true);
      }
      g.resources.push_back(std::move(res));
    }
  }
  if (const trace::JsonValue* v = doc.find("ledgers")) {
    for (const trace::JsonValue& l : v->items()) {
      TimelineLedger led;
      if (const trace::JsonValue* f = l.find("name")) led.name = f->as_string();
      if (const trace::JsonValue* f = l.find("expected_bytes")) {
        led.expected_bytes = f->as_int();
      }
      g.ledgers.push_back(std::move(led));
    }
  }
  if (const trace::JsonValue* v = doc.find("events")) {
    for (const trace::JsonValue& ev : v->items()) {
      TimelineEvent e;
      if (const trace::JsonValue* f = ev.find("name")) e.name = f->as_string();
      if (const trace::JsonValue* f = ev.find("actor")) {
        e.actor = static_cast<int>(f->as_int());
      }
      if (const trace::JsonValue* f = ev.find("resource")) {
        e.resource = static_cast<int>(f->as_int(-1));
      }
      if (const trace::JsonValue* f = ev.find("start_s")) {
        e.start_s = f->as_double();
      }
      if (const trace::JsonValue* f = ev.find("end_s")) {
        e.end_s = f->as_double();
      }
      if (const trace::JsonValue* f = ev.find("bytes")) e.bytes = f->as_int();
      if (const trace::JsonValue* f = ev.find("ledger")) {
        e.ledger = static_cast<int>(f->as_int(-1));
      }
      if (const trace::JsonValue* f = ev.find("deadline_s")) {
        e.deadline_s = f->as_double(-1.0);
      }
      if (const trace::JsonValue* f = ev.find("hard_deadline")) {
        e.hard_deadline = f->as_bool(true);
      }
      if (const trace::JsonValue* f = ev.find("gang")) e.gang = f->as_string();
      if (const trace::JsonValue* f = ev.find("accesses")) {
        for (const trace::JsonValue& acc : f->items()) {
          StateAccess a;
          if (const trace::JsonValue* s = acc.find("state")) {
            a.state = s->as_string();
          }
          if (const trace::JsonValue* s = acc.find("write")) {
            a.write = s->as_bool(false);
          }
          e.accesses.push_back(std::move(a));
        }
      }
      g.events.push_back(std::move(e));
    }
  }
  if (const trace::JsonValue* v = doc.find("edges")) {
    for (const trace::JsonValue& ed : v->items()) {
      TimelineEdge e;
      if (const trace::JsonValue* f = ed.find("from")) {
        e.from = static_cast<int>(f->as_int());
      }
      if (const trace::JsonValue* f = ed.find("to")) {
        e.to = static_cast<int>(f->as_int());
      }
      if (const trace::JsonValue* f = ed.find("why")) e.why = f->as_string();
      g.edges.push_back(std::move(e));
    }
  }
  *out = std::move(g);
  return true;
}

}  // namespace

bool timeline_from_json(const std::string& text, TimelineGraph* out,
                        std::string* error) {
  trace::JsonValue doc;
  if (!trace::parse_json(text, &doc, error)) return false;
  return decode_graph(doc, out, error);
}

bool timelines_from_json(const std::string& text,
                         std::vector<TimelineGraph>* out, std::string* error) {
  trace::JsonValue doc;
  if (!trace::parse_json(text, &doc, error)) return false;
  std::vector<TimelineGraph> graphs;
  if (doc.is_array()) {
    for (const trace::JsonValue& item : doc.items()) {
      TimelineGraph g;
      if (!decode_graph(item, &g, error)) return false;
      graphs.push_back(std::move(g));
    }
  } else {
    TimelineGraph g;
    if (!decode_graph(doc, &g, error)) return false;
    graphs.push_back(std::move(g));
  }
  *out = std::move(graphs);
  return true;
}

std::string timelines_to_json(const std::vector<TimelineGraph>& graphs) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    if (i) out += ",\n";
    out += timeline_to_json(graphs[i]);
    // timeline_to_json ends with a newline; keep entries separated cleanly.
    while (!out.empty() && out.back() == '\n') out.pop_back();
  }
  out += "\n]\n";
  return out;
}

}  // namespace swcaffe::check
