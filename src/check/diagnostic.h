// swcheck diagnostics: structured findings of the static plan verifier.
//
// Every rule violation is reported as a Diagnostic{code, severity, layer,
// message} collected into a Report. Codes are stable identifiers (printed by
// `swcaffe_check --list-codes` and documented in README.md) so tests and CI
// can assert on exactly which rule fired.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swcaffe::check {

enum class Severity {
  kError,    ///< the plan cannot run (would throw / deadlock on hardware)
  kWarning,  ///< the plan runs but violates a performance/robustness contract
  kNote,     ///< advisory (only emitted under Options::pedantic)
};

const char* severity_name(Severity s);

/// Stable diagnostic codes, one per statically checkable contract.
enum class Code {
  // --- LDM budget (64 KB per CPE, hw::Ldm) ---------------------------------
  kLdmOverflow,      ///< per-CPE working set exceeds LDM capacity
  kLdmDoubleBuffer,  ///< fits single-buffered only: no room to double-buffer
  // --- DMA legality (paper Fig. 2 / Principle 3) ---------------------------
  kDmaEmptyRun,      ///< zero-length run or zero-byte transfer planned
  kDmaMisaligned,    ///< run/stride not a multiple of the element size
  kDmaOverlap,       ///< stride shorter than the run: runs overwrite each other
  kDmaBytesMismatch, ///< enumerated run bytes != bytes the cost model charges
  kDmaShortRun,      ///< run below the 256 B "satisfactory bandwidth" knee
  // --- RLC schedules (row/column buses, FIFO semantics) --------------------
  kRlcDeadlock,      ///< cycle in the send/receive dependency graph
  kRlcIllegalPair,   ///< P2P between CPEs sharing neither row nor column
  kRlcUnmatched,     ///< receive without a matching send (or leftover message)
  // --- Implicit convolution applicability (paper Table II) -----------------
  kImplicitUnsupported, ///< geometry outside the kernel's support predicate
  kImplicitDegraded,    ///< supported but below the 64-channel efficiency knee
  kPlanInconsistent,    ///< auto-tuner choice contradicts the support predicate
  // --- Shape sanity --------------------------------------------------------
  kGeomInvalid,      ///< non-positive output dims / indivisible channel groups
  // --- Fault-tolerance retry plans (swfault) -------------------------------
  kRetryBufferOverflow, ///< buffered resend round exceeds its LDM budget
  kRetryTimeout,        ///< retry ladder cannot complete before escalation
  // --- Bucketed all-reduce plans (topo/overlap) ----------------------------
  kBucketOrder,          ///< buckets do not tile the layers in order, or an
                         ///< empty bucket / byte-conservation violation
  kBucketResendOverflow, ///< a bucket's buffered round exceeds the resend
                         ///< buffer of the resilient send path
  // --- Communication configs (topo hierarchy + compression) ----------------
  kCommCompressCombo,  ///< unsupported algorithm x compression combination
  kCommCompressBytes,  ///< claimed wire bytes break codec conservation
  // --- Whole-timeline schedules (swsched, check/timeline) ------------------
  kTimelineOverlap,   ///< two intervals double-book one exclusive resource
  kTimelineRace,      ///< conflicting state accesses with no happens-before
  kTimelineBytes,     ///< timeline events lose/invent ledger bytes
  kTimelineCausality, ///< a consumer starts before its producer finishes
  kTimelineDeadline,  ///< proven completion exceeds the SLO/timeout bound
  kTimelineCycle,     ///< happens-before cycle: the schedule deadlocks
  kTimelineGang,      ///< a gang's events do not start/stop together
};

/// Stable short identifier, e.g. "ldm-overflow".
const char* code_name(Code c);

struct Diagnostic {
  Code code = Code::kGeomInvalid;
  Severity severity = Severity::kError;
  std::string layer;    ///< layer / plan the finding is attached to
  std::string message;  ///< human-readable detail with the offending numbers
};

/// Collection of diagnostics from one verification pass.
class Report {
 public:
  void add(Code code, Severity severity, std::string layer,
           std::string message);
  void merge(const Report& other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int error_count() const;
  int warning_count() const;
  bool ok() const { return error_count() == 0; }
  bool empty() const { return diags_.empty(); }
  bool has(Code code) const;

  /// "2 errors, 1 warning" plus the first error's message (for CHECK text).
  std::string summary() const;
  /// One line per diagnostic: "error ldm-overflow [conv3_1] ...".
  void print(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace swcaffe::check
