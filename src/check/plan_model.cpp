#include "check/plan_model.h"

#include <algorithm>
#include <cmath>

#include "swgemm/estimate.h"
#include "swgemm/mesh_gemm.h"

namespace swcaffe::check {

namespace {

constexpr std::size_t kElemBytes = 4;   // SP data in main memory
constexpr std::size_t kLdmElem = 8;     // LDM tiles hold doubles (RLC native)
/// Nominal payload for schedule ops: schedules are checked for structure
/// (cycles, legality, matching), not volume, so one packet is enough.
constexpr std::size_t kNominalBytes = 32;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

std::size_t LdmPlan::resident_bytes() const {
  std::size_t total = 0;
  for (const LdmItem& item : items) total += item.bytes;
  return total;
}

std::size_t LdmPlan::buffered_bytes() const {
  std::size_t total = 0;
  for (const LdmItem& item : items) {
    total += item.bytes * (item.double_buffered ? 2 : 1);
  }
  return total;
}

double RetryPlan::worst_case_seconds() const {
  // max_attempts sends, each preceded (after the first) by backoff 2^k*base:
  // sum_{k=0}^{a-2} base*2^k = base*(2^(a-1) - 1).
  double backoff = 0.0;
  if (max_attempts > 1 && backoff_base_s > 0.0) {
    backoff = backoff_base_s * (std::ldexp(1.0, max_attempts - 1) - 1.0);
  }
  return max_attempts * round_time_s + backoff;
}

// --- swgemm -----------------------------------------------------------------

LdmPlan mesh_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                           std::int64_t n, std::int64_t k) {
  const int mesh = hp.mesh_rows;
  const std::size_t bm = static_cast<std::size_t>(ceil_div(m, mesh));
  const std::size_t bn = static_cast<std::size_t>(ceil_div(n, mesh));
  const std::size_t bk = static_cast<std::size_t>(ceil_div(k, mesh));
  LdmPlan plan;
  plan.kernel = "mesh_gemm";
  // mesh_gemm allocates the three tiles single-buffered and throws when they
  // exceed the LDM; the blocked driver is responsible for the 2x margin.
  plan.items.push_back({"A tile", bm * bk * kLdmElem, false});
  plan.items.push_back({"B tile", bk * bn * kLdmElem, false});
  plan.items.push_back({"C tile", bm * bn * kLdmElem, false});
  return plan;
}

LdmPlan blocked_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                              std::int64_t n, std::int64_t k,
                              const gemm::GemmBlocking& blocking) {
  const int mesh = hp.mesh_rows;
  auto round_up = [mesh](std::int64_t v) {
    return ((v + mesh - 1) / mesh) * mesh;
  };
  const std::int64_t pm = round_up(std::min<std::int64_t>(m, blocking.block_m));
  const std::int64_t pn = round_up(std::min<std::int64_t>(n, blocking.block_n));
  const std::int64_t pk = round_up(std::min<std::int64_t>(k, blocking.block_k));
  const std::size_t bm = static_cast<std::size_t>(pm / mesh);
  const std::size_t bn = static_cast<std::size_t>(pn / mesh);
  const std::size_t bk = static_cast<std::size_t>(pk / mesh);
  const std::size_t chunk = static_cast<std::size_t>(std::max(1, blocking.bcast_chunk));
  LdmPlan plan;
  plan.kernel = "blocked_mesh_gemm";
  // A/B panels stream through the k loop (double-buffered when the candidate
  // says so); a fused broadcast stages `chunk` tiles at once. The C panel
  // stays resident across the loop either way.
  plan.items.push_back(
      {"A panel tile", bm * bk * chunk * kLdmElem, blocking.double_buffered});
  plan.items.push_back(
      {"B panel tile", bk * bn * chunk * kLdmElem, blocking.double_buffered});
  plan.items.push_back({"C panel tile", bm * bn * kLdmElem, false});
  return plan;
}

LdmPlan blocked_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                              std::int64_t n, std::int64_t k) {
  const int panel = std::min(256, gemm::max_mesh_block(hp));
  gemm::GemmBlocking blocking;
  blocking.block_m = panel;
  blocking.block_n = panel;
  blocking.block_k = panel;
  return blocked_gemm_ldm_plan(hp, m, n, k, blocking);
}

DmaPlan blocked_gemm_dma_plan(const hw::CostModel& cost, std::int64_t m,
                              std::int64_t n, std::int64_t k,
                              const gemm::GemmBlocking& blocking) {
  const hw::HwParams& hp = cost.params();
  const int mesh = hp.mesh_rows;
  const std::int64_t bm = std::min<std::int64_t>(m, blocking.block_m);
  const std::int64_t bn = std::min<std::int64_t>(n, blocking.block_n);
  const std::int64_t bk = std::min<std::int64_t>(k, blocking.block_k);
  const std::int64_t mb = ceil_div(m, bm);
  const std::int64_t nb = ceil_div(n, bn);

  auto run_bytes = [&](std::int64_t extent) {
    return static_cast<std::size_t>(std::max<std::int64_t>(1, extent / mesh)) *
           kElemBytes;
  };
  DmaPlan plan;
  plan.kernel = "blocked_mesh_gemm";
  // A panels are re-read once per column block, B once per row block, C once
  // (reuse_c): exactly the traffic estimate_gemm charges.
  plan.ops.push_back({"A panels", false, run_bytes(bk),
                      static_cast<std::size_t>(k) * kElemBytes,
                      static_cast<double>(m) * k * nb * kElemBytes});
  plan.ops.push_back({"B panels", false, run_bytes(bn),
                      static_cast<std::size_t>(n) * kElemBytes,
                      static_cast<double>(k) * n * mb * kElemBytes});
  plan.ops.push_back({"C panels", true, run_bytes(bn),
                      static_cast<std::size_t>(n) * kElemBytes,
                      static_cast<double>(m) * n * kElemBytes});
  plan.charged_bytes = static_cast<double>(
      gemm::estimate_gemm_blocked(cost, m, n, k, blocking).dma_bytes);
  return plan;
}

DmaPlan blocked_gemm_dma_plan(const hw::CostModel& cost, std::int64_t m,
                              std::int64_t n, std::int64_t k) {
  return blocked_gemm_dma_plan(cost, m, n, k, gemm::GemmBlocking{});
}

CommSchedule mesh_gemm_schedule(const hw::HwParams& hp) {
  const int mesh = hp.mesh_rows;
  CommSchedule sched;
  sched.name = "mesh_gemm";
  for (int t = 0; t < mesh; ++t) {
    // Broadcast phase: A(i,t) along row i, B(t,j) along column j.
    for (int i = 0; i < mesh; ++i) {
      sched.ops.push_back({CommOp::Kind::kRowBroadcast, i, t, -1, -1,
                           kNominalBytes});
    }
    for (int j = 0; j < mesh; ++j) {
      sched.ops.push_back({CommOp::Kind::kColBroadcast, t, j, -1, -1,
                           kNominalBytes});
    }
    // Compute phase: every non-owner pops its row/column delivery.
    for (int i = 0; i < mesh; ++i) {
      for (int j = 0; j < mesh; ++j) {
        if (j != t) {
          sched.ops.push_back({CommOp::Kind::kRecvRow, i, j, -1, -1,
                               kNominalBytes});
        }
        if (i != t) {
          sched.ops.push_back({CommOp::Kind::kRecvCol, i, j, -1, -1,
                               kNominalBytes});
        }
      }
    }
  }
  return sched;
}

// --- swdnn convolutions -----------------------------------------------------

DmaPlan im2col_dma_plan(const core::ConvGeom& g) {
  const double image_bytes = static_cast<double>(kElemBytes) * g.batch *
                             g.in_c * g.in_h * g.in_w;
  const double col_bytes = static_cast<double>(kElemBytes) * g.batch * g.in_c *
                           g.kernel * g.kernel * g.out_h() * g.out_w();
  DmaPlan plan;
  plan.kernel = "im2col";
  // Fig. 4 left: every input row fetched once, every replicated column line
  // written once (out_w-long strided puts into the column matrix).
  plan.ops.push_back({"image rows", false,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      image_bytes});
  plan.ops.push_back({"column lines", true,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      col_bytes});
  plan.charged_bytes = image_bytes + col_bytes;  // what im2col_time streams
  return plan;
}

DmaPlan col2im_dma_plan(const core::ConvGeom& g) {
  const double image_bytes = static_cast<double>(kElemBytes) * g.batch *
                             g.in_c * g.in_h * g.in_w;
  const double col_bytes = static_cast<double>(kElemBytes) * g.batch * g.in_c *
                           g.kernel * g.kernel * g.out_h() * g.out_w();
  DmaPlan plan;
  plan.kernel = "col2im";
  // Reverse movement: column lines in, accumulated image rows out. The
  // read-modify-write re-read of the image is priced by the lower scatter
  // bandwidth, not extra bytes, matching col2im_time's accounting.
  plan.ops.push_back({"column lines", false,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      col_bytes});
  plan.ops.push_back({"image rows", true,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      image_bytes});
  plan.charged_bytes = col_bytes + image_bytes;
  return plan;
}

LdmPlan implicit_conv_ldm_plan(const hw::HwParams& hp, const core::ConvGeom& g,
                               int channel_block_in, int channel_block_out) {
  const std::size_t kk = static_cast<std::size_t>(g.kernel) * g.kernel;
  const std::size_t c = static_cast<std::size_t>(std::max(1, channel_block_in));
  const std::size_t o =
      static_cast<std::size_t>(std::max(1, channel_block_out));
  (void)hp;  // the budget is judged by rules.cpp, not here
  LdmPlan plan;
  plan.kernel = "implicit_conv";
  plan.items.push_back({"filter chunk", o * c * kk * kLdmElem, true});
  plan.items.push_back(
      {"input rows",
       c * g.kernel * static_cast<std::size_t>(g.in_w) * kLdmElem, true});
  plan.items.push_back(
      {"output row", static_cast<std::size_t>(g.out_w()) * kLdmElem, false});
  return plan;
}

LdmPlan implicit_conv_ldm_plan(const hw::HwParams& hp,
                               const core::ConvGeom& g) {
  const int mesh = hp.mesh_rows;
  std::size_t cb = static_cast<std::size_t>(std::max(1, g.in_c / mesh));
  std::size_t ob = static_cast<std::size_t>(std::max(1, g.out_c / mesh));
  // The real kernel sub-blocks its channel groups until the working set fits
  // (extra passes cost time, not correctness); report the largest fitting
  // blocking, or the minimal one if even that overflows.
  LdmPlan plan = implicit_conv_ldm_plan(hp, g, static_cast<int>(cb),
                                        static_cast<int>(ob));
  while (plan.buffered_bytes() > hp.ldm_bytes && (cb > 1 || ob > 1)) {
    if (ob >= cb) {
      ob = (ob + 1) / 2;
    } else {
      cb = (cb + 1) / 2;
    }
    plan = implicit_conv_ldm_plan(hp, g, static_cast<int>(cb),
                                  static_cast<int>(ob));
  }
  return plan;
}

LdmPlan implicit_conv_sim_ldm_plan(const hw::HwParams& hp,
                                   const core::ConvGeom& g) {
  const int mesh = hp.mesh_rows;
  const std::size_t ni_grp = static_cast<std::size_t>(std::max(1, g.in_c / mesh));
  const std::size_t no_grp =
      static_cast<std::size_t>(std::max(1, g.out_c / mesh));
  LdmPlan plan;
  plan.kernel = "implicit_conv_sim";
  // The functional simulator keeps the whole per-CPE filter block resident
  // (no sub-blocking); the row-leader CPE additionally stages one input row.
  plan.items.push_back(
      {"filter block",
       no_grp * ni_grp * static_cast<std::size_t>(g.kernel) * g.kernel *
           kLdmElem,
       false});
  plan.items.push_back(
      {"leader row buffer", static_cast<std::size_t>(g.in_w) * kLdmElem,
       false});
  return plan;
}

DmaPlan implicit_conv_dma_plan(const core::ConvGeom& g) {
  const int mesh = 8;  // run shape only; geometry legality is checked by rules
  const double image_bytes =
      static_cast<double>(kElemBytes) * g.in_c * g.in_h * g.in_w;
  const double out_bytes = static_cast<double>(kElemBytes) * g.out_c *
                           g.out_h() * g.out_w();
  DmaPlan plan;
  plan.kernel = "implicit_conv";
  // Input rows are re-fetched once per kernel row, output rows and the
  // filter tensor move once — the plan implicit_time charges.
  plan.ops.push_back({"input rows", false,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      static_cast<std::size_t>(g.in_w) * kElemBytes,
                      image_bytes * g.kernel * g.batch});
  plan.ops.push_back({"output rows", true,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      static_cast<std::size_t>(g.out_w()) * kElemBytes,
                      out_bytes * g.batch});
  plan.ops.push_back(
      {"filter blocks", false,
       static_cast<std::size_t>(std::max(1, g.in_c / mesh)) * g.kernel *
           g.kernel * kElemBytes,
       0, static_cast<double>(kElemBytes) * g.weight_count()});
  plan.charged_bytes = (image_bytes * g.kernel + out_bytes) * g.batch +
                       static_cast<double>(kElemBytes) * g.weight_count();
  return plan;
}

CommSchedule implicit_conv_schedule(const hw::HwParams& hp) {
  const int mesh = hp.mesh_rows;
  CommSchedule sched;
  sched.name = "implicit_conv_row";
  // One output row: each row leader broadcasts its channel group's input
  // rows, peers drain them, then every column reduces partials into row 0.
  for (int i = 0; i < mesh; ++i) {
    sched.ops.push_back({CommOp::Kind::kRowBroadcast, i, 0, -1, -1,
                         kNominalBytes});
    for (int j = 1; j < mesh; ++j) {
      sched.ops.push_back({CommOp::Kind::kRecvRow, i, j, -1, -1,
                           kNominalBytes});
    }
  }
  for (int j = 0; j < mesh; ++j) {
    for (int i = 1; i < mesh; ++i) {
      sched.ops.push_back({CommOp::Kind::kSend, i, j, 0, j, kNominalBytes});
      sched.ops.push_back({CommOp::Kind::kRecvCol, 0, j, -1, -1,
                           kNominalBytes});
    }
  }
  return sched;
}

// --- swdnn memory-bound layers ----------------------------------------------

LdmPlan pool_ldm_plan(const hw::HwParams& hp, const core::PoolGeom& g) {
  const std::size_t row_bytes = static_cast<std::size_t>(g.in_w) * kElemBytes;
  const std::size_t k_rows =
      row_bytes * static_cast<std::size_t>(std::max(g.kernel, 1));
  LdmPlan plan;
  plan.kernel = "pool";
  // Sec. IV-D: K full rows when they fit half the LDM (the other half is the
  // double buffer), else strided column blocks sized to that same budget.
  const std::size_t window =
      k_rows <= hp.ldm_bytes / 2
          ? k_rows
          : std::max<std::size_t>(kElemBytes, (hp.ldm_bytes / 2) /
                                                  std::max(g.kernel, 1)) *
                std::max(g.kernel, 1);
  plan.items.push_back({"input window", window, true});
  return plan;
}

DmaPlan pool_dma_plan(const hw::HwParams& hp, const core::PoolGeom& g) {
  const std::size_t row_bytes = static_cast<std::size_t>(g.in_w) * kElemBytes;
  const std::size_t k_rows =
      row_bytes * static_cast<std::size_t>(std::max(g.kernel, 1));
  std::size_t run = row_bytes;
  if (k_rows > hp.ldm_bytes / 2) {
    run = std::max<std::size_t>(kElemBytes, (hp.ldm_bytes / 2) /
                                                std::max(g.kernel, 1));
    run -= run % kElemBytes;  // column blocks stay element-aligned
  }
  const double in_bytes = static_cast<double>(kElemBytes) * g.batch *
                          g.channels * g.in_h * g.in_w;
  const double out_bytes = static_cast<double>(kElemBytes) * g.batch *
                           g.channels * g.out_h() * g.out_w();
  DmaPlan plan;
  plan.kernel = "pool";
  plan.ops.push_back({"input rows", false, run, run, in_bytes});
  plan.ops.push_back(
      {"output rows", true,
       static_cast<std::size_t>(std::max(g.out_w(), 1)) * kElemBytes,
       static_cast<std::size_t>(std::max(g.out_w(), 1)) * kElemBytes,
       out_bytes});
  plan.charged_bytes = in_bytes + out_bytes;  // pool_forward_time's stream
  return plan;
}

DmaPlan elementwise_dma_plan(std::int64_t count, double passes) {
  DmaPlan plan;
  plan.kernel = "elementwise";
  const double bytes = static_cast<double>(kElemBytes) * count * passes;
  plan.ops.push_back({"stream", false, 8 * 1024, 0, bytes});
  plan.charged_bytes = bytes;
  return plan;
}

DmaPlan transform_dma_plan(std::int64_t count, int inner_run) {
  DmaPlan plan;
  plan.kernel = "transform";
  const double bytes = static_cast<double>(kElemBytes) * count;
  const std::size_t run =
      static_cast<std::size_t>(std::max(inner_run, 1)) * kElemBytes;
  plan.ops.push_back({"strided gather", false, run, run, bytes});
  plan.ops.push_back({"dense scatter", true, 8 * 1024, 0, bytes});
  plan.charged_bytes = 2.0 * bytes;  // transform_time's two passes
  return plan;
}

// --- topo all-reduce ---------------------------------------------------------

CommSchedule rhd_allreduce_schedule(int num_nodes) {
  CommSchedule sched;
  sched.name = "allreduce_rhd";
  sched.mesh = false;
  int rounds = 0;
  while ((2 << rounds) <= num_nodes) ++rounds;  // floor(log2(p))
  const int core = 1 << rounds;
  // MPICH fold: extra ranks merge into a core neighbour up front.
  for (int r = core; r < num_nodes; ++r) {
    sched.ops.push_back({CommOp::Kind::kSend, r, 0, r - core, 0,
                         kNominalBytes});
    sched.ops.push_back({CommOp::Kind::kRecvRow, r - core, 0, -1, -1,
                         kNominalBytes});
  }
  // Reduce-scatter (halving) then allgather (doubling): pairwise exchanges
  // with partner rank ^ mask; every rank sends before it receives.
  for (int phase = 0; phase < 2 * rounds; ++phase) {
    const int mask = phase < rounds ? (1 << phase)
                                    : (1 << (2 * rounds - 1 - phase));
    for (int r = 0; r < core; ++r) {
      sched.ops.push_back({CommOp::Kind::kSend, r, 0, r ^ mask, 0,
                           kNominalBytes});
    }
    for (int r = 0; r < core; ++r) {
      sched.ops.push_back({CommOp::Kind::kRecvRow, r, 0, -1, -1,
                           kNominalBytes});
    }
  }
  // Unfold: results flow back to the folded ranks.
  for (int r = core; r < num_nodes; ++r) {
    sched.ops.push_back({CommOp::Kind::kSend, r - core, 0, r, 0,
                         kNominalBytes});
    sched.ops.push_back({CommOp::Kind::kRecvRow, r, 0, -1, -1,
                         kNominalBytes});
  }
  return sched;
}

std::vector<CommSchedule> hierarchical_allreduce_phases(int num_nodes,
                                                        int supernode_size) {
  const int p = num_nodes;
  const int q = supernode_size;
  const int s = p / q;
  std::vector<CommSchedule> phases(3);
  int local_rounds = 0;
  while ((2 << local_rounds) <= q) ++local_rounds;  // log2(q), q power of two

  // Member j of supernode k is rank k + j * s; the local butterfly pairs
  // member j with j ^ d. Sends precede receives within every round, so each
  // phase (and the composition) is deadlock-free by construction.
  const auto local_phase = [&](CommSchedule& sched, bool gather) {
    sched.mesh = false;
    for (int t = 0; t < local_rounds; ++t) {
      const int d = gather ? (1 << t) : (q >> (t + 1));
      for (int r = 0; r < p; ++r) {
        const int j = r / s;
        const int k = r % s;
        sched.ops.push_back({CommOp::Kind::kSend, r, 0, k + (j ^ d) * s, 0,
                             kNominalBytes});
      }
      for (int r = 0; r < p; ++r) {
        sched.ops.push_back({CommOp::Kind::kRecvRow, r, 0, -1, -1,
                             kNominalBytes});
      }
    }
  };
  phases[0].name = "hier_local_rs";
  local_phase(phases[0], /*gather=*/false);

  // Inter-supernode RHD per chunk: the s holders of member j's chunk are
  // ranks k + j * s for k = 0..s-1, running the same fold / butterfly /
  // unfold structure as the flat schedule over the k index.
  CommSchedule& inter = phases[1];
  inter.name = "hier_inter_rhd";
  inter.mesh = false;
  int inter_rounds = 0;
  while ((2 << inter_rounds) <= s) ++inter_rounds;
  const int core = 1 << inter_rounds;
  for (int j = 0; j < q; ++j) {
    const auto rank = [&](int k) { return k + j * s; };
    for (int k = core; k < s; ++k) {
      inter.ops.push_back({CommOp::Kind::kSend, rank(k), 0, rank(k - core), 0,
                           kNominalBytes});
      inter.ops.push_back({CommOp::Kind::kRecvRow, rank(k - core), 0, -1, -1,
                           kNominalBytes});
    }
    for (int phase = 0; phase < 2 * inter_rounds; ++phase) {
      const int mask = phase < inter_rounds
                           ? (1 << phase)
                           : (1 << (2 * inter_rounds - 1 - phase));
      for (int k = 0; k < core; ++k) {
        inter.ops.push_back({CommOp::Kind::kSend, rank(k), 0, rank(k ^ mask),
                             0, kNominalBytes});
      }
      for (int k = 0; k < core; ++k) {
        inter.ops.push_back({CommOp::Kind::kRecvRow, rank(k), 0, -1, -1,
                             kNominalBytes});
      }
    }
    for (int k = core; k < s; ++k) {
      inter.ops.push_back({CommOp::Kind::kSend, rank(k - core), 0, rank(k), 0,
                           kNominalBytes});
      inter.ops.push_back({CommOp::Kind::kRecvRow, rank(k), 0, -1, -1,
                           kNominalBytes});
    }
  }

  phases[2].name = "hier_local_ag";
  local_phase(phases[2], /*gather=*/true);
  return phases;
}

CommSchedule ring_allreduce_schedule(int num_nodes) {
  CommSchedule sched;
  sched.name = "allreduce_ring";
  sched.mesh = false;
  const int p = num_nodes;
  for (int round = 0; round < 2 * (p - 1); ++round) {
    for (int r = 0; r < p; ++r) {
      sched.ops.push_back({CommOp::Kind::kSend, r, 0, (r + 1) % p, 0,
                           kNominalBytes});
    }
    for (int r = 0; r < p; ++r) {
      sched.ops.push_back({CommOp::Kind::kRecvRow, r, 0, -1, -1,
                           kNominalBytes});
    }
  }
  return sched;
}

}  // namespace swcaffe::check
