#include "check/timeline_extract.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace swcaffe::check {

namespace {

std::string grad_state(int layer) {
  return "grad" + std::to_string(layer);
}

std::string req_state(std::int64_t id) {
  return "req" + std::to_string(id);
}

const char* comm_kind_name(CommOp::Kind k) {
  switch (k) {
    case CommOp::Kind::kRowBroadcast:
      return "row-broadcast";
    case CommOp::Kind::kColBroadcast:
      return "col-broadcast";
    case CommOp::Kind::kSend:
      return "send";
    case CommOp::Kind::kRecvRow:
      return "recv-row";
    case CommOp::Kind::kRecvCol:
      return "recv-col";
  }
  return "?";
}

std::string describe_comm_op(const CommOp& op) {
  std::string s = std::string(comm_kind_name(op.kind)) + " @(" +
                  std::to_string(op.row) + "," + std::to_string(op.col) + ")";
  if (op.kind == CommOp::Kind::kSend) {
    s += "->(" + std::to_string(op.peer_row) + "," +
         std::to_string(op.peer_col) + ")";
  }
  return s;
}

}  // namespace

TimelineGraph timeline_from_overlap(const std::string& name,
                                    const std::vector<double>& layer_bwd_s,
                                    double compute_s,
                                    const topo::OverlapTimeline& timeline,
                                    std::int64_t total_bytes) {
  TimelineGraph g;
  g.name = name;
  const int compute_actor = g.add_actor("compute");
  const int network_actor = g.add_actor("network");
  const int compute_res = g.add_resource("compute");
  const int network_res = g.add_resource("network");
  const int ledger =
      total_bytes >= 0 ? g.add_ledger("packed-gradients", total_bytes) : -1;

  // The compute lane, re-derived from the same inputs schedule_overlap
  // consumed: forward fills [0, compute_s - sum(bwd)], then backward visits
  // layers in reverse order, layer i occupying
  // [compute_s - prefix[i+1], compute_s - prefix[i]] where prefix[i] is the
  // backward time of layers 0..i-1. Each backward slice writes its layer's
  // gradient state.
  const int n = static_cast<int>(layer_bwd_s.size());
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + layer_bwd_s[static_cast<std::size_t>(i)];
  }
  const double sum_bwd = prefix[static_cast<std::size_t>(n)];

  TimelineEvent fwd;
  fwd.name = "fwd";
  fwd.actor = compute_actor;
  fwd.resource = compute_res;
  fwd.start_s = 0.0;
  fwd.end_s = compute_s - sum_bwd;
  g.add_event(std::move(fwd));

  std::vector<int> bwd_event(static_cast<std::size_t>(n), -1);
  for (int i = n - 1; i >= 0; --i) {
    TimelineEvent bwd;
    bwd.name = "bwd layer" + std::to_string(i);
    bwd.actor = compute_actor;
    bwd.resource = compute_res;
    bwd.start_s = compute_s - prefix[static_cast<std::size_t>(i) + 1];
    bwd.end_s = compute_s - prefix[static_cast<std::size_t>(i)];
    bwd.accesses.push_back(StateAccess{grad_state(i), true});
    bwd_event[static_cast<std::size_t>(i)] = g.add_event(std::move(bwd));
  }

  // The network lane: bucket collectives in service order at the start/end
  // the schedule assigned. The producer edge goes from the bucket's FIRST
  // layer's backward slice — the last slice of the bucket to run — so an
  // all-reduce scheduled before its gradients exist is a causality error.
  // The collective reduces in place: it reads and writes every member
  // gradient.
  std::vector<int> ar_events;
  ar_events.reserve(timeline.buckets.size());
  for (std::size_t k = 0; k < timeline.buckets.size(); ++k) {
    const topo::BucketTiming& bt = timeline.buckets[k];
    TimelineEvent ar;
    ar.name = "allreduce bucket" + std::to_string(k) + "[" +
              std::to_string(bt.bucket.first_layer) + ".." +
              std::to_string(bt.bucket.last_layer) + "]";
    ar.actor = network_actor;
    ar.resource = network_res;
    ar.start_s = bt.start_s;
    ar.end_s = bt.end_s;
    ar.bytes = bt.bucket.bytes;
    ar.ledger = ledger;
    for (int layer = bt.bucket.first_layer; layer <= bt.bucket.last_layer;
         ++layer) {
      if (layer >= 0 && layer < n) {
        ar.accesses.push_back(StateAccess{grad_state(layer), true});
      }
    }
    const int ev = g.add_event(std::move(ar));
    ar_events.push_back(ev);
    const int lo = bt.bucket.first_layer;
    if (lo >= 0 && lo < n) {
      g.add_edge(bwd_event[static_cast<std::size_t>(lo)], ev, "bucket ready");
    }
  }

  // The weight update consumes every combined gradient at the iteration
  // finish; edges from all collectives make the parameter write race-free.
  TimelineEvent apply;
  apply.name = "apply update";
  apply.actor = compute_actor;
  apply.resource = compute_res;
  apply.start_s = timeline.finish_s;
  apply.end_s = timeline.finish_s;
  apply.accesses.push_back(StateAccess{"params", true});
  for (int i = 0; i < n; ++i) {
    apply.accesses.push_back(StateAccess{grad_state(i), false});
  }
  const int apply_ev = g.add_event(std::move(apply));
  for (int ev : ar_events) {
    g.add_edge(ev, apply_ev, "gradients combined");
  }
  return g;
}

TimelineGraph timeline_from_serving(
    const std::string& name, const std::vector<serve::RequestRecord>& requests,
    const std::vector<serve::BatchRecord>& batches,
    const ServingContract& contract) {
  TimelineGraph g;
  g.name = name;
  const int client_actor = g.add_actor("client");
  const int server_actor = g.add_actor("server");
  const int server_res = g.add_resource("server");

  // One ledger per batch: the arrivals that claim membership must sum to
  // exactly the batch's recorded size (requests are conserved — none shed
  // into a batch, none invented).
  std::vector<int> batch_ledger(batches.size(), -1);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    batch_ledger[b] = g.add_ledger("batch" + std::to_string(batches[b].id),
                                   batches[b].size);
  }

  // Client lane: admitted arrivals in id order (the FIFO admission order).
  std::vector<int> arrival_event(requests.size(), -1);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const serve::RequestRecord& r = requests[i];
    if (!r.admitted) continue;
    TimelineEvent arrive;
    arrive.name = "arrive req" + std::to_string(r.id);
    arrive.actor = client_actor;
    arrive.start_s = r.arrival_s;
    arrive.end_s = r.arrival_s;
    arrive.bytes = 1;
    if (r.batch >= 0 && r.batch < static_cast<int>(batches.size())) {
      arrive.ledger = batch_ledger[static_cast<std::size_t>(r.batch)];
    }
    arrive.accesses.push_back(StateAccess{req_state(r.id), true});
    arrival_event[i] = g.add_event(std::move(arrive));
  }

  // Server lane: batches in launch order on the exclusive engine, each
  // reading its members' request slots; members' completions ride directly
  // behind their batch so program order matches simulated time.
  //
  // Each member also gets a "bound" point event whose hard deadline is the
  // admission upper bound RE-DERIVED from the records alone:
  //
  //   max(busy horizon at arrival, arrival + max_delay)
  //     + (queued-ahead / max_batch + 1) * f(max_batch)
  //
  // Both terms are conservative over-approximations of the state the
  // batcher saw, so the derived bound is never below the bound the batcher
  // actually promised — a finish that beats the batcher's bound always
  // beats this one, and a finish that breaks it is a genuine
  // admission-soundness violation. Concretely: the busy horizon counts any
  // batch that COULD have been formed by the arrival (every batch ahead of
  // the request's own in FIFO order — formation can precede the batch's
  // placed start on the busy engine, so filtering on recorded launch times
  // would under-count), and queued-ahead counts every earlier admitted
  // request not provably launched before the arrival.
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const serve::BatchRecord& batch = batches[b];
    TimelineEvent run;
    run.name = "batch" + std::to_string(batch.id) + " (x" +
               std::to_string(batch.size) + ")";
    run.actor = server_actor;
    run.resource = server_res;
    run.start_s = batch.launch_s;
    run.end_s = batch.finish_s;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].admitted &&
          requests[i].batch == static_cast<int>(batches[b].id)) {
        run.accesses.push_back(StateAccess{req_state(requests[i].id), false});
        members.push_back(i);
      }
    }
    const int run_ev = g.add_event(std::move(run));
    for (std::size_t i : members) {
      if (arrival_event[i] >= 0) {
        g.add_edge(arrival_event[i], run_ev, "queued");
      }
    }
    for (std::size_t i : members) {
      const serve::RequestRecord& r = requests[i];
      if (contract.admission && contract.slo_s >= 0.0) {
        TimelineEvent done;
        done.name = "done req" + std::to_string(r.id);
        done.actor = server_actor;
        done.start_s = r.finish_s;
        done.end_s = r.finish_s;
        done.deadline_s = r.arrival_s + contract.slo_s;
        done.hard_deadline = true;
        const int done_ev = g.add_event(std::move(done));
        g.add_edge(run_ev, done_ev, "batch completes request");
      }
      if (contract.admission && contract.max_batch > 0) {
        // A batch occupies the busy horizon once it is FORMED, which can
        // happen before its placed start on the engine (the busy interval
        // starts at max(formation time, previous finish)), so filtering on
        // recorded launch times would under-count. Batches form in FIFO id
        // order and this request's own batch forms at or after its arrival,
        // so "id ahead of mine" is the sound superset of "formed before my
        // arrival".
        double busy_horizon = 0.0;
        const std::size_t ahead =
            r.batch >= 0 && static_cast<std::size_t>(r.batch) < batches.size()
                ? static_cast<std::size_t>(r.batch)
                : batches.size();
        for (std::size_t b = 0; b < ahead; ++b) {
          if (batches[b].finish_s > busy_horizon) {
            busy_horizon = batches[b].finish_s;
          }
        }
        std::int64_t queued = 0;
        for (const serve::RequestRecord& other : requests) {
          if (other.admitted && other.id < r.id &&
              other.launch_s >= r.arrival_s) {
            ++queued;
          }
        }
        const double backlog_free =
            busy_horizon > r.arrival_s + contract.max_delay_s
                ? busy_horizon
                : r.arrival_s + contract.max_delay_s;
        const double bound =
            backlog_free +
            static_cast<double>(queued / contract.max_batch + 1) *
                contract.max_batch_forward_s;
        TimelineEvent bd;
        bd.name = "bound req" + std::to_string(r.id);
        bd.actor = server_actor;
        bd.start_s = r.finish_s;
        bd.end_s = r.finish_s;
        bd.deadline_s = bound;
        bd.hard_deadline = true;
        const int bd_ev = g.add_event(std::move(bd));
        g.add_edge(run_ev, bd_ev, "admission bound");
      }
    }
  }
  return g;
}

TimelineGraph timeline_from_retry(const RetryPlan& plan, int rounds,
                                  double start_s) {
  TimelineGraph g;
  g.name = plan.name;
  const int net_actor = g.add_actor("network");
  const int net_res = g.add_resource("network");
  double t = start_s;
  for (int r = 0; r < rounds; ++r) {
    const double round_start = t;
    for (int attempt = 0; attempt < plan.max_attempts; ++attempt) {
      if (attempt > 0) {
        // Backoff before retry k is base * 2^(k-1) — the geometric series
        // worst_case_seconds sums.
        t += plan.backoff_base_s * static_cast<double>(1 << (attempt - 1));
      }
      TimelineEvent send;
      send.name = "round" + std::to_string(r) + " attempt" +
                  std::to_string(attempt);
      send.actor = net_actor;
      send.resource = net_res;
      send.start_s = t;
      t += plan.round_time_s;
      send.end_s = t;
      send.bytes = plan.round_bytes;
      if (attempt == plan.max_attempts - 1) {
        // The whole ladder must beat the escalation timeout; a ladder that
        // cannot is dead code (soft deadline, mirroring retry-timeout).
        send.deadline_s = round_start + plan.timeout_s;
        send.hard_deadline = false;
      }
      g.add_event(std::move(send));
    }
  }
  return g;
}

TimelineGraph timeline_from_comm(const std::string& name,
                                 const std::vector<CommSchedule>& phases,
                                 const hw::HwParams& hp) {
  TimelineGraph g;
  g.name = name;

  // One actor per executing rank, sorted for deterministic ids.
  std::map<std::pair<int, int>, int> actors;
  for (const CommSchedule& phase : phases) {
    for (const CommOp& op : phase.ops) {
      actors.emplace(std::pair<int, int>{op.row, op.col}, -1);
    }
  }
  for (auto& [rank, id] : actors) {
    id = g.add_actor("rank(" + std::to_string(rank.first) + "," +
                     std::to_string(rank.second) + ")");
  }

  // Events are untimed points: the composition is a pure dependency
  // structure. Per-rank program order concatenates the phases; FIFO
  // send/receive matching spans the merged op stream, exactly the
  // check_schedule discipline but across phase boundaries.
  enum Bus { kRowBus = 0, kColBus = 1 };
  using QueueKey = std::tuple<int, int, int>;  // (dst row, dst col, bus)
  std::map<QueueKey, std::vector<int>> deliveries;
  std::map<QueueKey, std::vector<int>> receives;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const CommSchedule& phase = phases[p];
    for (const CommOp& op : phase.ops) {
      TimelineEvent ev;
      ev.name = "p" + std::to_string(p) + " " + describe_comm_op(op);
      ev.actor = actors.at({op.row, op.col});
      ev.bytes = static_cast<std::int64_t>(op.bytes);
      const int idx = g.add_event(std::move(ev));
      switch (op.kind) {
        case CommOp::Kind::kRowBroadcast:
          for (int c = 0; c < hp.mesh_cols; ++c) {
            if (c != op.col) deliveries[{op.row, c, kRowBus}].push_back(idx);
          }
          break;
        case CommOp::Kind::kColBroadcast:
          for (int r = 0; r < hp.mesh_rows; ++r) {
            if (r != op.row) deliveries[{r, op.col, kColBus}].push_back(idx);
          }
          break;
        case CommOp::Kind::kSend: {
          int bus = kRowBus;
          if (phase.mesh) {
            const bool same_row = op.peer_row == op.row;
            const bool same_col = op.peer_col == op.col;
            if (same_row == same_col) break;  // undeliverable: check_schedule's
            bus = same_row ? kRowBus : kColBus;  // kRlcIllegalPair territory
          }
          deliveries[{op.peer_row, op.peer_col, bus}].push_back(idx);
          break;
        }
        case CommOp::Kind::kRecvRow:
          receives[{op.row, op.col, kRowBus}].push_back(idx);
          break;
        case CommOp::Kind::kRecvCol:
          receives[{op.row, op.col, kColBus}].push_back(idx);
          break;
      }
    }
  }
  for (const auto& [key, recvs] : receives) {
    const auto dit = deliveries.find(key);
    if (dit == deliveries.end()) continue;  // unmatched: per-plan property
    const std::size_t have = dit->second.size();
    for (std::size_t k = 0; k < recvs.size() && k < have; ++k) {
      g.add_edge(dit->second[k], recvs[k], "fifo message");
    }
  }
  return g;
}

TimelineGraph timeline_from_ef(
    const std::string& name, int iters,
    const std::vector<std::int64_t>& bucket_wire_bytes) {
  TimelineGraph g;
  g.name = name;
  const int nb = static_cast<int>(bucket_wire_bytes.size());
  std::int64_t wire_total = 0;
  for (std::int64_t b : bucket_wire_bytes) wire_total += b;
  const int ledger = g.add_ledger("wire-bytes", wire_total * iters);

  // prev[b]: index of iteration t-1's encode of bucket b (carry producer).
  std::vector<int> prev(nb, -1);
  for (int t = 0; t < iters; ++t) {
    const int actor = g.add_actor("iter" + std::to_string(t));
    for (int b = 0; b < nb; ++b) {
      TimelineEvent ev;
      ev.name = "encode b" + std::to_string(b);
      ev.actor = actor;
      // Encode slots tile the iteration's unit interval in bucket order.
      ev.start_s = t + static_cast<double>(b) / nb;
      ev.end_s = t + static_cast<double>(b + 1) / nb;
      ev.bytes = bucket_wire_bytes[b];
      ev.ledger = ledger;
      ev.accesses.push_back({"residual" + std::to_string(b), /*write=*/true});
      const int idx = g.add_event(std::move(ev));
      if (prev[b] >= 0) g.add_edge(prev[b], idx, "residual carry");
      prev[b] = idx;
    }
  }
  return g;
}

TimelineGraph timeline_from_schedule(
    const std::string& name, int cluster_nodes,
    const std::vector<sched::JobSpan>& spans,
    const std::vector<sched::JobRecord>& jobs) {
  TimelineGraph g;
  g.name = name;
  // Every cluster node is an exclusive resource: two gangs holding one node
  // at once is exactly the double-booking timeline-overlap catches.
  std::vector<int> node_res(static_cast<std::size_t>(std::max(cluster_nodes, 0)));
  for (int nd = 0; nd < cluster_nodes; ++nd) {
    node_res[static_cast<std::size_t>(nd)] =
        g.add_resource("node" + std::to_string(nd));
  }

  // One actor (sequential lane) and one iteration ledger per job. The
  // ledger only judges FINISHED jobs: their run spans must retire exactly
  // the job's iterations — a scheduler that drops work at a preemption or
  // replays an already-checkpointed quantum loses/invents "payload".
  std::map<int, int> job_actor;
  std::map<int, int> job_ledger;
  for (const sched::JobRecord& r : jobs) {
    job_actor[r.job] = g.add_actor(r.name.empty()
                                       ? "job" + std::to_string(r.job)
                                       : r.name);
    job_ledger[r.job] =
        r.finish_s >= 0.0
            ? g.add_ledger("job" + std::to_string(r.job) + ".iters", r.iters)
            : -1;
  }

  // Spans grouped per job in execution order, so each job's events land on
  // its lane in program order and consecutive spans get progress edges.
  std::map<int, std::vector<const sched::JobSpan*>> by_job;
  for (const sched::JobSpan& s : spans) by_job[s.job].push_back(&s);
  for (auto& [job, list] : by_job) {
    std::stable_sort(list.begin(), list.end(),
                     [](const sched::JobSpan* a, const sched::JobSpan* b) {
                       return a->span < b->span;
                     });
    const auto actor_it = job_actor.find(job);
    if (actor_it == job_actor.end()) {
      // A span for a job no record mentions: surface it as its own lane so
      // the structural passes still see the occupancy.
      job_actor[job] = g.add_actor("job" + std::to_string(job));
      job_ledger[job] = -1;
    }
    int prev_first = -1;
    for (const sched::JobSpan* s : list) {
      const std::string gang =
          "job" + std::to_string(s->job) + ".span" + std::to_string(s->span);
      int first_ev = -1;
      for (std::size_t k = 0; k < s->nodes.size(); ++k) {
        const int nd = s->nodes[k];
        TimelineEvent ev;
        ev.name = gang + "." + span_kind_name(s->kind) + "@node" +
                  std::to_string(nd);
        ev.actor = job_actor[job];
        // Out-of-range nodes keep an invalid resource index on purpose:
        // validate() reports them as kGeomInvalid instead of mis-binning.
        ev.resource = (nd >= 0 && nd < cluster_nodes)
                          ? node_res[static_cast<std::size_t>(nd)]
                          : cluster_nodes + 1;
        ev.start_s = s->start_s;
        ev.end_s = s->end_s;
        ev.gang = gang;
        if (k == 0 && s->kind == sched::SpanKind::kRun) {
          // Iterations ride on the first gang member only — the gang
          // retires them once, not once per node.
          ev.bytes = s->iters;
          ev.ledger = job_ledger[job];
        }
        const int idx = g.add_event(std::move(ev));
        if (first_ev < 0) first_ev = idx;
      }
      if (first_ev >= 0 && prev_first >= 0) {
        g.add_edge(prev_first, first_ev, "job progress");
      }
      if (first_ev >= 0) prev_first = first_ev;
    }
  }
  return g;
}

TimelineGraph timeline_from_events(const std::string& name,
                                   const std::vector<std::string>& actors,
                                   const std::vector<std::string>& resources,
                                   const sim::EventLog& log) {
  TimelineGraph g;
  g.name = name;
  for (const std::string& a : actors) g.add_actor(a);
  for (const std::string& r : resources) g.add_resource(r);
  // Lay events out in the vocabulary's documented total order so each
  // actor's program order (insertion order per actor, which is what the
  // race pass reads) equals its time order. The sort is stable on the seq
  // tie-break because seq is unique.
  std::vector<const sim::Event*> ordered;
  ordered.reserve(log.events().size());
  for (const sim::Event& e : log.events()) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const sim::Event* a, const sim::Event* b) {
              return sim::event_before(*a, *b);
            });
  for (const sim::Event* e : ordered) {
    TimelineEvent ev;
    ev.name = e->name;
    ev.actor = e->actor;
    ev.resource = e->resource;
    ev.start_s = e->time_s;
    ev.end_s = e->end_s();
    ev.bytes = e->bytes;
    g.add_event(std::move(ev));
  }
  return g;
}

TimelineGraph timeline_from_sim(const std::string& name,
                                const sim::Engine& engine) {
  return timeline_from_events(name, engine.actor_names(),
                              engine.resource_names(), engine.log());
}

}  // namespace swcaffe::check
