// swcheck rules: the hardware contracts verified against symbolic plans.
//
// Each rule takes a plan from plan_model.h and appends diagnostics to a
// Report. Rules never execute anything — they reason about the plan data
// only, which is what lets the checker run before any simulation starts.
#pragma once

#include "check/diagnostic.h"
#include "check/plan_model.h"
#include "hw/params.h"

namespace swcaffe::check {

/// Knobs shared by rules and the verify_* drivers.
struct Options {
  /// Emit kNote-severity advisories (e.g. dma-short-run on legal but
  /// bandwidth-degraded plans). Off by default so clean paper configurations
  /// produce an empty report.
  bool pedantic = false;
};

/// LDM budget: resident bytes must fit the CPE scratchpad outright
/// (ldm-overflow, error) and ideally with the double-buffer multiplier
/// (ldm-double-buffer, warning).
void check_ldm(const LdmPlan& plan, const hw::HwParams& hp,
               const Options& opts, const std::string& layer, Report* report);

/// DMA legality: positive element-aligned runs, non-overlapping strides, and
/// byte conservation between the enumerated ops and charged_bytes. Under
/// pedantic, also flags runs below the 256 B bandwidth knee (Fig. 2).
void check_dma(const DmaPlan& plan, const Options& opts,
               const std::string& layer, Report* report);

/// RLC schedule soundness: P2P legality (mesh schedules must communicate
/// along a shared row/column), FIFO send/receive matching, and
/// deadlock-freedom via cycle detection over program-order + message edges.
void check_schedule(const CommSchedule& sched, const hw::HwParams& hp,
                    const Options& opts, const std::string& layer,
                    Report* report);

/// Retry-plan soundness (swfault): the buffered round must fit its resend
/// buffer, the buffer must fit the CPE scratchpad (retry-buffer-overflow,
/// error), and the full retry ladder must complete before the escalation
/// timeout makes it dead code (retry-timeout, warning). Non-positive
/// attempt counts / negative sizes are kGeomInvalid errors.
void check_retry(const RetryPlan& plan, const hw::HwParams& hp,
                 const Options& opts, const std::string& layer,
                 Report* report);

/// Bucketed all-reduce soundness (topo/overlap): buckets must tile the
/// net's layers in order — contiguous, non-overlapping, covering exactly
/// [0, num_layers) — with positive byte volumes that sum to the packed
/// message (bucket-order, error). When the plan composes with a resilient
/// send path (resend_buffer_bytes > 0), each bucket's buffered round
/// min(bytes, eager_limit) must fit the resend buffer and the buffer must
/// fit the CPE scratchpad (bucket-resend-overflow, error).
void check_buckets(const BucketPlan& plan, const hw::HwParams& hp,
                   const Options& opts, const std::string& layer,
                   Report* report);

/// Communication-config legality (topo hierarchy + compression): the
/// algorithm and compression names must be canonical and the geometry sane
/// (geom-invalid, error); int8 quantization may only compose with
/// single-shot-encode collectives — ring and parameter-server re-transmit
/// partially reduced values and would re-quantize at every hop, compounding
/// unbounded error (comm-compress-combo, error); and the claimed wire bytes
/// must conserve the codec encoding of the raw gradient bytes, scale
/// headers included (comm-compress-bytes, error). Rejection happens here —
/// BEFORE any candidate is priced by swtune or run by a trainer.
void check_comm(const CommPlan& plan, const Options& opts,
                const std::string& layer, Report* report);

}  // namespace swcaffe::check
