#include "check/verify.h"

#include <algorithm>
#include <string>

#include "check/plan_model.h"
#include "check/timeline.h"
#include "check/timeline_extract.h"
#include "swdnn/conv_plan.h"

namespace swcaffe::check {

namespace {

/// Sec. IV-B2: implicit-conv performance "largely degrades" below this many
/// channels on either side (the efficiency knee the cost model calibrates).
constexpr int kImplicitChannelKnee = 64;

void geom_error(Report* report, const std::string& layer, std::string msg) {
  report->add(Code::kGeomInvalid, Severity::kError, layer, std::move(msg));
}

bool check_conv_geom(const core::ConvGeom& g, const std::string& layer,
                     Report* report) {
  if (g.batch <= 0 || g.in_c <= 0 || g.out_c <= 0 || g.in_h <= 0 ||
      g.in_w <= 0 || g.kernel <= 0 || g.stride <= 0 || g.pad < 0 ||
      g.group <= 0) {
    geom_error(report, layer,
               "conv: non-positive dimension (batch=" +
                   std::to_string(g.batch) + ", in_c=" +
                   std::to_string(g.in_c) + ", out_c=" +
                   std::to_string(g.out_c) + ", in=" + std::to_string(g.in_h) +
                   "x" + std::to_string(g.in_w) + ", kernel=" +
                   std::to_string(g.kernel) + ", stride=" +
                   std::to_string(g.stride) + ")");
    return false;
  }
  if (g.in_c % g.group != 0 || g.out_c % g.group != 0) {
    geom_error(report, layer,
               "conv: channels (" + std::to_string(g.in_c) + "," +
                   std::to_string(g.out_c) + ") not divisible by group " +
                   std::to_string(g.group));
    return false;
  }
  if (g.kernel > g.in_h + 2 * g.pad || g.kernel > g.in_w + 2 * g.pad ||
      g.out_h() <= 0 || g.out_w() <= 0) {
    geom_error(report, layer,
               "conv: kernel " + std::to_string(g.kernel) + " exceeds padded input " +
                   std::to_string(g.in_h + 2 * g.pad) + "x" +
                   std::to_string(g.in_w + 2 * g.pad) +
                   "; output would be empty");
    return false;
  }
  return true;
}

/// Table II dash pattern + the 64-channel knee for one direction of the
/// implicit kernel (geometry is per-group, matching estimate_conv).
void check_implicit_direction(const core::ConvGeom& gpg, bool forward,
                              const std::string& layer, Report* report) {
  const bool supported = forward ? dnn::implicit_forward_supported(gpg)
                                 : dnn::implicit_backward_supported(gpg);
  const char* dir = forward ? "forward" : "backward";
  if (!supported) {
    report->add(Code::kImplicitUnsupported, Severity::kError, layer,
                std::string("implicit ") + dir + " kernel unsupported: " +
                    (forward
                         ? "in_c=" + std::to_string(gpg.in_c) +
                               " below the register-block minimum (8)"
                         : "min(in_c,out_c)=" +
                               std::to_string(std::min(gpg.in_c, gpg.out_c)) +
                               " below the backward minimum (128)") +
                    " — Table II renders this configuration as \"-\"");
    return;
  }
  if (std::min(gpg.in_c, gpg.out_c) < kImplicitChannelKnee) {
    report->add(Code::kImplicitDegraded, Severity::kWarning, layer,
                std::string("implicit ") + dir + " kernel with min(in_c,out_c)=" +
                    std::to_string(std::min(gpg.in_c, gpg.out_c)) +
                    " < 64: performance largely degrades below the channel "
                    "knee (Sec. IV-B2)");
  }
}

}  // namespace

Report verify_gemm(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
                   std::int64_t k, const std::string& layer,
                   const Options& opts) {
  Report report;
  if (m <= 0 || n <= 0 || k <= 0) {
    geom_error(&report, layer,
               "gemm: non-positive dims m=" + std::to_string(m) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k));
    return report;
  }
  check_ldm(blocked_gemm_ldm_plan(cost.params(), m, n, k), cost.params(), opts,
            layer, &report);
  check_dma(blocked_gemm_dma_plan(cost, m, n, k), opts, layer, &report);
  return report;
}

Report verify_gemm(const hw::CostModel& cost, std::int64_t m, std::int64_t n,
                   std::int64_t k, const gemm::GemmBlocking& blocking,
                   const std::string& layer, const Options& opts) {
  Report report;
  if (m <= 0 || n <= 0 || k <= 0) {
    geom_error(&report, layer,
               "gemm: non-positive dims m=" + std::to_string(m) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k));
    return report;
  }
  const int mesh = cost.params().mesh_rows;
  if (blocking.block_m <= 0 || blocking.block_n <= 0 || blocking.block_k <= 0 ||
      blocking.bcast_chunk <= 0 || mesh % blocking.bcast_chunk != 0) {
    geom_error(&report, layer,
               "gemm blocking: blocks " + std::to_string(blocking.block_m) +
                   "x" + std::to_string(blocking.block_n) + "x" +
                   std::to_string(blocking.block_k) +
                   " must be positive and bcast_chunk " +
                   std::to_string(blocking.bcast_chunk) +
                   " must divide the mesh dimension " + std::to_string(mesh));
    return report;
  }
  check_ldm(blocked_gemm_ldm_plan(cost.params(), m, n, k, blocking),
            cost.params(), opts, layer, &report);
  check_dma(blocked_gemm_dma_plan(cost, m, n, k, blocking), opts, layer,
            &report);
  return report;
}

Report verify_mesh_gemm(const hw::HwParams& hp, std::int64_t m, std::int64_t n,
                        std::int64_t k, const std::string& layer) {
  Report report;
  const int mesh = hp.mesh_rows;
  if (m <= 0 || n <= 0 || k <= 0 || m % mesh != 0 || n % mesh != 0 ||
      k % mesh != 0) {
    geom_error(&report, layer,
               "mesh_gemm: dims " + std::to_string(m) + "x" +
                   std::to_string(n) + "x" + std::to_string(k) +
                   " must be positive multiples of the mesh dimension " +
                   std::to_string(mesh));
    return report;
  }
  Options opts;
  check_ldm(mesh_gemm_ldm_plan(hp, m, n, k), hp, opts, layer, &report);
  check_schedule(mesh_gemm_schedule(hp), hp, opts, layer, &report);
  return report;
}

Report verify_conv(const hw::CostModel& cost, const core::ConvGeom& g,
                   const std::string& layer, const Options& opts,
                   ConvStrategy strategy, bool first_conv) {
  Report report;
  if (!check_conv_geom(g, layer, &report)) return report;
  const hw::HwParams& hp = cost.params();
  const core::ConvGeom gpg = g.per_group();
  const std::int64_t spatial =
      static_cast<std::int64_t>(gpg.out_h()) * gpg.out_w();
  const std::int64_t kdim =
      static_cast<std::int64_t>(gpg.in_c) * gpg.kernel * gpg.kernel;

  // Which plan runs in each direction.
  bool fwd_implicit = false, bwd_w_implicit = false, bwd_in_implicit = false;
  switch (strategy) {
    case ConvStrategy::kExplicit:
      break;
    case ConvStrategy::kImplicit:
      fwd_implicit = bwd_w_implicit = bwd_in_implicit = true;
      check_implicit_direction(gpg, /*forward=*/true, layer, &report);
      if (!first_conv) {
        check_implicit_direction(gpg, /*forward=*/false, layer, &report);
      }
      break;
    case ConvStrategy::kAuto: {
      const dnn::ConvEstimate est = dnn::estimate_conv(cost, g);
      // The tuner may only offer the implicit plan where the support
      // predicate holds; any disagreement means the model and the kernel
      // contract have drifted apart.
      if (est.forward.implicit_ok() != dnn::implicit_forward_supported(gpg)) {
        report.add(Code::kPlanInconsistent, Severity::kError, layer,
                    "auto-tuner offers implicit forward=" +
                        std::string(est.forward.implicit_ok() ? "yes" : "no") +
                        " but implicit_forward_supported says otherwise");
      }
      if (est.backward_weight.implicit_ok() !=
          dnn::implicit_backward_supported(gpg)) {
        report.add(Code::kPlanInconsistent, Severity::kError, layer,
                    "auto-tuner offers implicit backward=" +
                        std::string(est.backward_weight.implicit_ok() ? "yes"
                                                                      : "no") +
                        " but implicit_backward_supported says otherwise");
      }
      fwd_implicit = est.forward.implicit_wins();
      bwd_w_implicit = est.backward_weight.implicit_wins();
      bwd_in_implicit = est.backward_input.implicit_wins();
      if (fwd_implicit &&
          std::min(gpg.in_c, gpg.out_c) < kImplicitChannelKnee) {
        check_implicit_direction(gpg, /*forward=*/true, layer, &report);
      }
      break;
    }
  }

  // Implicit-plan contracts (LDM + DMA) — once, if any direction uses it.
  if (fwd_implicit || bwd_w_implicit || bwd_in_implicit) {
    check_ldm(implicit_conv_ldm_plan(hp, gpg), hp, opts, layer, &report);
    check_dma(implicit_conv_dma_plan(gpg), opts, layer, &report);
  }
  // Explicit-plan contracts: im2col feeds forward and weight-grad, col2im
  // drains input-grad, each direction runs its blocked GEMM.
  if (!fwd_implicit || !bwd_w_implicit) {
    check_dma(im2col_dma_plan(gpg), opts, layer, &report);
  }
  if (!fwd_implicit) {
    report.merge(verify_gemm(cost, gpg.out_c, spatial, kdim,
                             layer + "/fwd-gemm", opts));
  }
  if (!bwd_w_implicit) {
    report.merge(verify_gemm(cost, gpg.out_c, kdim, spatial,
                             layer + "/dW-gemm", opts));
  }
  if (!first_conv) {
    if (!bwd_in_implicit) {
      check_dma(col2im_dma_plan(gpg), opts, layer, &report);
      report.merge(verify_gemm(cost, kdim, spatial, gpg.out_c,
                               layer + "/dX-gemm", opts));
    }
  }
  return report;
}

Report verify_layer(const hw::CostModel& cost, const core::LayerDesc& d,
                    bool first_conv, const Options& opts) {
  Report report;
  const hw::HwParams& hp = cost.params();
  const std::string& layer = d.name;
  switch (d.kind) {
    case core::LayerKind::kConv:
      report.merge(verify_conv(cost, d.conv, layer, opts, ConvStrategy::kAuto,
                               first_conv));
      break;
    case core::LayerKind::kInnerProduct:
    case core::LayerKind::kLSTM:
      if (d.fc.m <= 0 || d.fc.n <= 0 || d.fc.k <= 0) {
        geom_error(&report, layer,
                   "fc: non-positive dims m=" + std::to_string(d.fc.m) +
                       " n=" + std::to_string(d.fc.n) + " k=" +
                       std::to_string(d.fc.k));
        break;
      }
      report.merge(
          verify_gemm(cost, d.fc.m, d.fc.n, d.fc.k, layer + "/fwd", opts));
      report.merge(
          verify_gemm(cost, d.fc.n, d.fc.k, d.fc.m, layer + "/dW", opts));
      report.merge(
          verify_gemm(cost, d.fc.m, d.fc.k, d.fc.n, layer + "/dX", opts));
      break;
    case core::LayerKind::kPool: {
      const core::PoolGeom& p = d.pool;
      if (p.batch <= 0 || p.channels <= 0 || p.in_h <= 0 || p.in_w <= 0 ||
          p.kernel <= 0 || p.stride <= 0 || p.out_h() <= 0 ||
          p.out_w() <= 0) {
        geom_error(&report, layer, "pool: invalid geometry");
        break;
      }
      check_ldm(pool_ldm_plan(hp, p), hp, opts, layer, &report);
      check_dma(pool_dma_plan(hp, p), opts, layer, &report);
      break;
    }
    case core::LayerKind::kReLU:
    case core::LayerKind::kSigmoid:
    case core::LayerKind::kTanH:
    case core::LayerKind::kBatchNorm:
    case core::LayerKind::kLRN:
    case core::LayerKind::kDropout:
    case core::LayerKind::kSoftmax:
    case core::LayerKind::kSoftmaxLoss:
    case core::LayerKind::kEltwise:
      if (d.input_count <= 0) {
        geom_error(&report, layer, "elementwise layer with empty input");
        break;
      }
      check_dma(elementwise_dma_plan(d.input_count, 2.0), opts, layer,
                &report);
      break;
    case core::LayerKind::kConcat:
      if (d.output_count > 0) {
        check_dma(elementwise_dma_plan(d.output_count, 2.0), opts, layer,
                  &report);
      }
      break;
    case core::LayerKind::kTransform: {
      if (d.input_count <= 0) {
        geom_error(&report, layer, "transform layer with empty input");
        break;
      }
      const int run = d.conv.in_w > 0 ? d.conv.in_w : 64;
      check_dma(transform_dma_plan(d.input_count, run), opts, layer, &report);
      break;
    }
    case core::LayerKind::kData:
    case core::LayerKind::kAccuracy:
      break;  // no CPE plan to verify
  }
  return report;
}

Report verify_net(const hw::CostModel& cost,
                  const std::vector<core::LayerDesc>& descs,
                  const Options& opts) {
  Report report;
  const hw::HwParams& hp = cost.params();
  bool saw_conv = false;
  for (const core::LayerDesc& d : descs) {
    const bool first_conv = d.kind == core::LayerKind::kConv && !saw_conv;
    if (d.kind == core::LayerKind::kConv) saw_conv = true;
    report.merge(verify_layer(cost, d, first_conv, opts));
  }
  // The RLC schedules are shared by every GEMM/implicit-conv launch; verify
  // them once per net, not once per layer.
  check_schedule(mesh_gemm_schedule(hp), hp, opts, "mesh-gemm", &report);
  if (saw_conv) {
    check_schedule(implicit_conv_schedule(hp), hp, opts, "implicit-conv",
                   &report);
  }
  return report;
}

namespace {

/// True when the two-level hierarchy engages (mirrors
/// topo::hierarchical_applicable without re-stating it: the runtime falls
/// back to flat RHD for everything else, so the checker must judge the
/// schedule that would actually run).
bool hier_engages(int num_nodes, int supernode_size) {
  return num_nodes > supernode_size && supernode_size >= 2 &&
         num_nodes % supernode_size == 0 &&
         (supernode_size & (supernode_size - 1)) == 0;
}

}  // namespace

Report verify_allreduce(const std::string& algorithm, int num_nodes,
                        const Options& opts, int supernode_size) {
  Report report;
  const std::string layer = "allreduce-" + algorithm;
  if (num_nodes <= 0) {
    geom_error(&report, layer,
               "allreduce over " + std::to_string(num_nodes) + " nodes");
    return report;
  }
  hw::HwParams hp;  // only mesh dims matter, and cluster schedules skip them
  if (algorithm == "rhd") {
    check_schedule(rhd_allreduce_schedule(num_nodes), hp, opts, layer,
                   &report);
  } else if (algorithm == "hier") {
    if (!hier_engages(num_nodes, supernode_size)) {
      // Fallback geometry: the runtime runs flat RHD, so check that.
      check_schedule(rhd_allreduce_schedule(num_nodes), hp, opts, layer,
                     &report);
    } else {
      const std::vector<CommSchedule> phases =
          hierarchical_allreduce_phases(num_nodes, supernode_size);
      for (const CommSchedule& phase : phases) {
        check_schedule(phase, hp, opts, layer, &report);
      }
      // Phase ordering: the composed local-RS -> inter-RHD -> local-AG
      // stream must stay race- and cycle-free when every rank runs the
      // phases back to back (FIFO matching spans the whole composition).
      report.merge(
          verify_timeline(timeline_from_comm(layer + "-phases", phases, hp)));
    }
  } else if (algorithm == "ring") {
    check_schedule(ring_allreduce_schedule(num_nodes), hp, opts, layer,
                   &report);
  } else if (algorithm == "ps") {
    // Parameter server: every worker pushes to rank 0 and pulls the result.
    CommSchedule sched;
    sched.name = "allreduce_ps";
    sched.mesh = false;
    for (int r = 1; r < num_nodes; ++r) {
      sched.ops.push_back({CommOp::Kind::kSend, r, 0, 0, 0, 32});
      sched.ops.push_back({CommOp::Kind::kRecvRow, 0, 0, -1, -1, 32});
    }
    for (int r = 1; r < num_nodes; ++r) {
      sched.ops.push_back({CommOp::Kind::kSend, 0, 0, r, 0, 32});
      sched.ops.push_back({CommOp::Kind::kRecvRow, r, 0, -1, -1, 32});
    }
    check_schedule(sched, hp, opts, layer, &report);
  } else {
    geom_error(&report, layer, "unknown all-reduce algorithm \"" + algorithm +
                                   "\" (expected rhd, hier, ring or ps)");
  }
  return report;
}

Report verify_comm(const CommPlan& plan, const Options& opts) {
  Report report;
  const std::string layer = plan.name.empty() ? "comm" : plan.name;
  check_comm(plan, opts, layer, &report);
  if (!report.ok()) return report;
  if (plan.algorithm == "hierarchical" &&
      hier_engages(plan.num_nodes, plan.supernode_size)) {
    const hw::HwParams hp;
    const std::vector<CommSchedule> phases =
        hierarchical_allreduce_phases(plan.num_nodes, plan.supernode_size);
    for (const CommSchedule& phase : phases) {
      check_schedule(phase, hp, opts, layer, &report);
    }
    report.merge(
        verify_timeline(timeline_from_comm(layer + "-phases", phases, hp)));
  }
  return report;
}

Report verify_retry(const RetryPlan& plan, const Options& opts) {
  Report report;
  const hw::HwParams hp;
  check_retry(plan, hp, opts, plan.name.empty() ? "retry" : plan.name,
              &report);
  return report;
}

Report verify_buckets(const BucketPlan& plan, const Options& opts) {
  Report report;
  const hw::HwParams hp;
  check_buckets(plan, hp, opts, plan.name.empty() ? "buckets" : plan.name,
                &report);
  return report;
}

}  // namespace swcaffe::check
