// Symbolic plan descriptions for the swcheck static verifier.
//
// Every SW26010 kernel in swgemm/swdnn/topo is driven by a *plan*: which
// tiles live in each CPE's LDM, which DMA runs move them, and which RLC
// messages cross the mesh. The kernels themselves interleave that plan with
// real arithmetic; the builders here re-derive the same plan as plain data
// (no execution, no allocation) so rules.h can verify hardware contracts
// before a single simulated cycle is spent. Builders mirror the kernels
// they describe — the agreement is pinned by tests (a plan the checker
// passes must never throw from Ldm::alloc when the kernel actually runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/layer_desc.h"
#include "hw/cost_model.h"
#include "hw/params.h"
#include "swgemm/estimate.h"

namespace swcaffe::check {

// --- LDM budgets ------------------------------------------------------------

/// One allocation a kernel makes from a CPE's 64 KB scratchpad.
struct LdmItem {
  std::string name;
  std::size_t bytes = 0;
  /// True when the kernel streams this buffer and a real implementation
  /// would double-buffer it to overlap DMA with compute (×2 budget).
  bool double_buffered = false;
};

/// The worst-case per-CPE LDM working set of one kernel.
struct LdmPlan {
  std::string kernel;
  std::vector<LdmItem> items;

  /// Single-buffered total: what hw::Ldm::alloc would actually consume.
  std::size_t resident_bytes() const;
  /// Total with the double-buffer multiplier applied per item.
  std::size_t buffered_bytes() const;
};

// --- DMA plans --------------------------------------------------------------

/// One family of DMA transfers sharing a shape: `total_bytes` moved in
/// contiguous runs of `run_bytes`, run starts spaced `stride_bytes` apart in
/// the far (main-memory) operand. stride_bytes == 0 means dense/contiguous.
struct DmaOp {
  std::string name;
  bool put = false;              ///< LDM -> memory (vs. memory -> LDM get)
  std::size_t run_bytes = 0;     ///< contiguous run length
  std::size_t stride_bytes = 0;  ///< spacing of run starts (0 = contiguous)
  double total_bytes = 0.0;      ///< volume this op family moves in total
};

/// All DMA traffic of one kernel plus the closed-form volume the cost model
/// charges for it (byte conservation: the two must agree).
struct DmaPlan {
  std::string kernel;
  std::vector<DmaOp> ops;
  /// Bytes the analytic cost model charges for this kernel. The rules
  /// compare it against the sum of op volumes (Code::kDmaBytesMismatch).
  double charged_bytes = 0.0;
};

// --- Communication schedules ------------------------------------------------

/// One RLC (or network) operation of a schedule, executed by CPE/rank
/// (row, col). For sends the peer is the destination; for receives it names
/// the bus being popped (RlcFabric::receive_row / receive_col semantics).
struct CommOp {
  enum class Kind { kRowBroadcast, kColBroadcast, kSend, kRecvRow, kRecvCol };
  Kind kind = Kind::kSend;
  int row = 0, col = 0;            ///< executing CPE (rank, 0 for clusters)
  int peer_row = -1, peer_col = -1;  ///< destination (sends only)
  std::size_t bytes = 0;
};

/// A communication schedule: ops in per-CPE program order (the list order
/// restricted to one CPE is that CPE's program). rules.cpp derives the
/// dependency graph — program-order edges plus FIFO send->receive matching —
/// and rejects cycles (deadlock) and geometry violations.
struct CommSchedule {
  std::string name;
  /// True for 8x8 CPE-mesh schedules: enforces the row/column RLC legality
  /// rule. False for cluster-level (all-reduce) schedules where any pair of
  /// ranks may exchange messages.
  bool mesh = true;
  std::vector<CommOp> ops;
};

// --- Builders: swgemm -------------------------------------------------------

/// Per-CPE LDM tiles of one mesh_gemm(m, n, k) launch (three (dim/8)^2
/// double tiles, exactly what mesh_gemm allocates before checking capacity).
LdmPlan mesh_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                           std::int64_t n, std::int64_t k);

/// LDM plan of the blocked driver / analytic estimator: panel sizes are
/// chosen the way estimate_gemm chooses them, so this is the plan every
/// GEMM-backed layer (conv explicit, FC, LSTM) actually runs.
LdmPlan blocked_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                              std::int64_t n, std::int64_t k);

/// Same LDM plan evaluated at an arbitrary candidate blocking (swtune's
/// legality oracle). Panel edges clamp to the problem dims and round up to
/// mesh multiples; A/B tiles carry the double-buffer flag of the candidate
/// and are staged `bcast_chunk` tiles at a time, so a fused broadcast pays
/// its LDM price here and gets rejected when it cannot fit.
LdmPlan blocked_gemm_ldm_plan(const hw::HwParams& hp, std::int64_t m,
                              std::int64_t n, std::int64_t k,
                              const gemm::GemmBlocking& blocking);

/// DMA plan of the blocked GEMM: A/B/C panel traffic with the per-CPE run
/// lengths estimate_gemm derates bandwidth by; charged_bytes comes from
/// gemm::estimate_gemm itself, making byte conservation a cross-module check.
DmaPlan blocked_gemm_dma_plan(const hw::CostModel& cost, std::int64_t m,
                              std::int64_t n, std::int64_t k);

/// Candidate-blocking variant: charged_bytes comes from
/// gemm::estimate_gemm_blocked at the same blocking.
DmaPlan blocked_gemm_dma_plan(const hw::CostModel& cost, std::int64_t m,
                              std::int64_t n, std::int64_t k,
                              const gemm::GemmBlocking& blocking);

/// RLC schedule of the 8-step register-communication algorithm (Fig. 3):
/// per step, A-block row broadcasts + B-block column broadcasts and the 7
/// matching receives each. Deadlock-free by construction; verified anyway.
CommSchedule mesh_gemm_schedule(const hw::HwParams& hp);

// --- Builders: swdnn convolutions -------------------------------------------

/// DMA plan of the Fig. 4 im2col transformation for the whole batch: one
/// contiguous get per input image row, one strided put per replicated column
/// line. Charged bytes are the image + column-matrix volumes conv_plan's
/// im2col_time streams.
DmaPlan im2col_dma_plan(const core::ConvGeom& g);

/// Reverse movement (col2im): column lines in, read-modify-write image rows.
DmaPlan col2im_dma_plan(const core::ConvGeom& g);

/// Per-CPE LDM working set of the implicit (direct) kernel with the channel
/// sub-blocking a real kernel applies: resident filter chunk, K input rows
/// of the channel block, one output row. Overflows only when even the
/// minimal (1-channel) blocking cannot fit, which is what makes wide-channel
/// paper layers (VGG conv4/5) legal.
LdmPlan implicit_conv_ldm_plan(const hw::HwParams& hp, const core::ConvGeom& g);

/// Same working set at an explicit channel blocking (no shrink loop): the
/// plan a tuner candidate with `channel_block_in` input channels and
/// `channel_block_out` output channels per CPE pass would run. Overflow means
/// that candidate is illegal, full stop.
LdmPlan implicit_conv_ldm_plan(const hw::HwParams& hp, const core::ConvGeom& g,
                               int channel_block_in, int channel_block_out);

/// LDM working set of the *functional simulator* (implicit_conv_sim), which
/// keeps the whole per-CPE filter block resident without sub-blocking. Used
/// by tests to predict exactly when the simulator's Ldm::alloc throws.
LdmPlan implicit_conv_sim_ldm_plan(const hw::HwParams& hp,
                                   const core::ConvGeom& g);

/// DMA plan of the implicit kernel (input slab re-read once per kernel row,
/// output and weights touched once — the plan implicit_time assumes).
DmaPlan implicit_conv_dma_plan(const core::ConvGeom& g);

/// RLC schedule of one output row of the implicit kernel: 8 row broadcasts
/// (leader to its mesh row) and the column reduction of partials to row 0.
CommSchedule implicit_conv_schedule(const hw::HwParams& hp);

// --- Builders: swdnn memory-bound layers ------------------------------------

/// Pooling plan (Sec. IV-D): K-row streaming when the rows fit half the LDM,
/// strided column blocks otherwise — the same fallback mem_plans prices.
LdmPlan pool_ldm_plan(const hw::HwParams& hp, const core::PoolGeom& g);
DmaPlan pool_dma_plan(const hw::HwParams& hp, const core::PoolGeom& g);

/// Elementwise streaming plan over `count` floats, `passes` tensor sweeps.
DmaPlan elementwise_dma_plan(std::int64_t count, double passes);

/// (B,N,R,C) <-> (R,C,N,B) layout transform: strided gather of
/// `inner_run`-element lines plus a dense scatter pass.
DmaPlan transform_dma_plan(std::int64_t count, int inner_run);

// --- Fault-tolerance retry plans --------------------------------------------

/// The buffering/backoff contract of a resilient send path (swfault's
/// RetryPolicy viewed as a checkable plan): a dropped message round can only
/// be re-sent if the round is still buffered, and the retry ladder is only
/// meaningful if it can finish before the escalation timeout fires.
struct RetryPlan {
  std::string name;
  std::int64_t round_bytes = 0;          ///< largest message round to buffer
  std::int64_t resend_buffer_bytes = 0;  ///< buffer reserved for re-sends
  int max_attempts = 1;
  double backoff_base_s = 0.0;  ///< backoff before retry k is base * 2^k
  double round_time_s = 0.0;    ///< wire time of one (re-)sent round
  double timeout_s = 0.0;       ///< escalation deadline

  /// Worst-case time the full ladder needs: max_attempts sends plus the
  /// geometric backoff series.
  double worst_case_seconds() const;
};

// --- Bucketed all-reduce plans ----------------------------------------------

/// One layer-aligned bucket of a bucketed gradient all-reduce (the overlap
/// schedule of topo/overlap.h viewed as checkable data).
struct BucketSpan {
  int first_layer = 0;
  int last_layer = 0;      ///< inclusive
  std::int64_t bytes = 0;  ///< gradient bytes the bucket's collective moves
};

/// A bucketed gradient all-reduce plan: buckets must tile the net's layers
/// in order (contiguous, non-overlapping, covering [0, num_layers)), carry
/// positive byte volumes that conserve the packed-message total, and — when
/// the plan composes with a resilient send path — each bucket's buffered
/// round must fit the resend buffer.
struct BucketPlan {
  std::string name;
  int num_layers = 0;
  std::vector<BucketSpan> buckets;
  std::int64_t total_bytes = 0;  ///< packed message size (0 = don't check)
  /// Eager-protocol cutoff: a bucket's buffered round is
  /// min(bucket bytes, eager_limit) — larger rounds go rendezvous and
  /// re-send from the source buffer. 0 means every round is fully buffered.
  std::int64_t eager_limit = 0;
  /// Resend buffer the rounds must fit (0 = no resilient path, skip rule).
  std::int64_t resend_buffer_bytes = 0;
};

// --- Communication configurations (topo hierarchy + compression) -------------

/// An all-reduce configuration (algorithm x compression x bucket count)
/// viewed as checkable data. Names use the canonical spellings the rest of
/// the stack prints (parallel::allreduce_algo_name /
/// topo::compression_name), so a plan can be built verbatim from a
/// trainer's options and a tuner candidate is rejected by the same rule
/// that would reject the trainer.
struct CommPlan {
  std::string name;
  /// "rhd-adjacent" | "rhd-round-robin" | "ring" | "param-server" |
  /// "hierarchical"
  std::string algorithm;
  /// "none" | "fp16" | "int8"
  std::string compression = "none";
  int num_nodes = 1;
  int supernode_size = 256;
  int buckets = 1;
  std::int64_t raw_bytes = 0;   ///< packed float32 gradient bytes
  /// Claimed TOTAL on-wire bytes across all bucket messages (0 = don't
  /// check). The codec conservation rule re-derives the expected value from
  /// raw_bytes, the compression and the per-bucket scale headers.
  std::int64_t wire_bytes = 0;
};

// --- Builders: topo all-reduce ----------------------------------------------

/// Send/receive schedule of recursive halving + doubling over `num_nodes`
/// ranks (power-of-two core; the MPICH fold/unfold for ragged counts adds a
/// pre/post exchange with the neighbour).
CommSchedule rhd_allreduce_schedule(int num_nodes);

/// Ring all-reduce schedule: 2*(p-1) rounds of send-to-next/recv-from-prev.
CommSchedule ring_allreduce_schedule(int num_nodes);

/// Phase decomposition of the two-level (supernode-hierarchical) all-reduce
/// for timeline_from_comm composition: [0] supernode-local reduce-scatter,
/// [1] inter-supernode RHD over each chunk's holders (MPICH fold/unfold for
/// ragged supernode counts), [2] supernode-local all-gather. Rank r is
/// member r / s of supernode r % s (round-robin, s = num_nodes /
/// supernode_size). The caller must pass an applicable geometry
/// (num_nodes divisible by supernode_size, power-of-two supernode_size);
/// the runtime falls back to rhd_allreduce_schedule otherwise.
std::vector<CommSchedule> hierarchical_allreduce_phases(int num_nodes,
                                                        int supernode_size);

}  // namespace swcaffe::check
