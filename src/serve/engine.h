// swserve forward-only inference engine.
//
// The engine prices the forward pass of one network at every batch size the
// dynamic batcher may form (1 .. max_batch), using the same calibrated
// CostModel and layer estimators the training stack runs on. With tuning
// enabled, each batch size gets its own swtune plan search — the plan cache
// already keys on shape, so serving batch sizes populate (and reuse) the
// same persistent cache the training CLIs write. Cold searches surface as
// "tune.search" trace spans, warm lookups as "tune.cache_hit" instants,
// exactly as in training.
//
// Legality before pricing: every tuned per-batch-size plan is re-verified
// through the swcheck rules *before* its time enters the batch table —
// including plans loaded from a persistent cache, which otherwise bypass
// the tuner's own candidate filter (a stale or hand-edited cache file must
// not smuggle an illegal plan into the latency model). Default (untuned)
// plans are gated by check::verify_net. A verification failure throws
// base::CheckError; an illegal plan is never priced.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/spec.h"
#include "hw/cost_model.h"
#include "trace/tracer.h"
#include "tune/tuner.h"

namespace swcaffe::serve {

/// Builds the served model at one batch size (zoo nets are parameterized by
/// batch, so the engine re-derives shapes per formed batch size).
using ModelFn = std::function<core::NetSpec(int batch)>;

struct EngineOptions {
  /// Largest batch the dynamic batcher may form (the batch table covers
  /// 1 .. max_batch).
  int max_batch = 8;
  /// Run the swtune plan search per batch size; without it the engine
  /// prices the hand-written default plans.
  bool tune = false;
  /// Persistent plan cache (tune only): loaded before the searches, written
  /// back by save_cache().
  std::string plan_cache;
  /// swcheck-verify every plan before pricing (tuned plans must verify
  /// silent; default plans must be error-free). Throws on violation.
  bool verify = true;
  /// Optional trace sink for tune.search / tune.cache_hit activity.
  trace::Tracer* tracer = nullptr;
  int trace_track = 0;
};

struct EngineStats {
  int layers_tuned = 0;   ///< cold plan searches across all batch sizes
  int cache_hits = 0;     ///< warm plan-cache lookups
  int plans_verified = 0; ///< tuned conv plans that passed swcheck re-verify
  long long candidates_evaluated = 0;
  long long candidates_rejected = 0;
};

class InferenceEngine {
 public:
  /// Builds the batch table eagerly: describe + (tune) + verify + price for
  /// every batch size in 1 .. max_batch. Throws base::CheckError when a
  /// plan fails verification.
  InferenceEngine(const hw::CostModel& cost, std::string model_name,
                  ModelFn model, EngineOptions options = {});

  /// Priced forward seconds of a batch of `batch` requests (1 .. max_batch).
  /// The table is monotone non-decreasing in the batch size by construction
  /// (coalescing more requests never finishes earlier), which the admission
  /// predicate relies on for its worst-case bound.
  double batch_time(int batch) const;

  int max_batch() const { return options_.max_batch; }
  const std::string& model_name() const { return model_name_; }
  const EngineStats& stats() const { return stats_; }
  const hw::CostModel& cost() const { return cost_; }

  /// Writes the plan cache back to EngineOptions::plan_cache (tune only;
  /// no-op without a cache path).
  bool save_cache(std::string* error = nullptr) const;

 private:
  double price_batch(int batch, tune::Tuner* tuner);
  /// Re-verifies one tuned plan through the swcheck rules (see file header).
  void verify_tuned_plan(const tune::TunedConvPlan& plan) const;

  const hw::CostModel& cost_;
  std::string model_name_;
  ModelFn model_;
  EngineOptions options_;
  std::vector<double> batch_s_;  ///< batch_s_[b] = forward seconds, b >= 1
  EngineStats stats_;
  std::unique_ptr<tune::Tuner> tuner_;  ///< kept alive for save_cache()
};

}  // namespace swcaffe::serve
