#include "serve/arrival.h"

#include <cmath>

#include "base/log.h"

namespace swcaffe::serve {

namespace {

/// Site tags mixed into the hash so the inter-arrival and thinning draws
/// come from independent schedules (same discipline as fault::Site).
enum class Site : std::uint64_t {
  kInterArrival = 0x61727256,  // 'arrV'
  kThinning = 0x74686e56,      // 'thnV'
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1), pure in (seed, site, counter).
double u01(std::uint64_t seed, Site site, std::uint64_t counter) {
  std::uint64_t h = splitmix64(seed ^ static_cast<std::uint64_t>(site));
  h = splitmix64(h ^ counter);
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "trace") return ArrivalKind::kTrace;
  SWC_CHECK_MSG(false, "unknown arrival model: " << name
                                                 << " (poisson|bursty|trace)");
  return ArrivalKind::kPoisson;
}

double burst_factor(const ArrivalSpec& spec, double t_s) {
  if (spec.kind != ArrivalKind::kBursty) return 1.0;
  SWC_CHECK_GT(spec.burst_period_s, 0.0);
  const double phase =
      t_s / spec.burst_period_s - std::floor(t_s / spec.burst_period_s);
  return phase < spec.burst_duty ? 1.0 : spec.base_fraction;
}

std::vector<double> generate_arrivals(const ArrivalSpec& spec) {
  std::vector<double> out;
  if (spec.kind == ArrivalKind::kTrace) {
    double prev = -1.0;
    for (const double t : spec.trace) {
      SWC_CHECK_MSG(t > prev, "trace arrivals must be strictly increasing");
      SWC_CHECK_GE(t, 0.0);
      if (t < spec.duration_s) out.push_back(t);
      prev = t;
    }
    return out;
  }

  SWC_CHECK_GT(spec.rate, 0.0);
  SWC_CHECK_GE(spec.duration_s, 0.0);
  if (spec.kind == ArrivalKind::kBursty) {
    SWC_CHECK_GT(spec.burst_duty, 0.0);
    SWC_CHECK_LE(spec.burst_duty, 1.0);
    SWC_CHECK_GE(spec.base_fraction, 0.0);
    SWC_CHECK_LE(spec.base_fraction, 1.0);
  }

  // Base stream: homogeneous Poisson at the peak rate. Arrival i's time is
  // the prefix sum of exponential inter-arrivals, each drawn from its own
  // counter — so the schedule is pure in (seed, i) and a bursty run shares
  // the base stream of the Poisson run at the same seed.
  double t = 0.0;
  for (std::uint64_t i = 0;; ++i) {
    const double u = u01(spec.seed, Site::kInterArrival, i);
    // -log1p(-u) keeps precision for small u; u < 1 strictly, so finite.
    t += -std::log1p(-u) / spec.rate;
    if (t >= spec.duration_s) break;
    if (spec.kind == ArrivalKind::kBursty) {
      // Deterministic thinning: keep the arrival with probability equal to
      // the instantaneous rate fraction (standard thinning of a
      // non-homogeneous Poisson process; the draw is independent of the
      // inter-arrival stream by site separation).
      if (u01(spec.seed, Site::kThinning, i) >= burst_factor(spec, t)) {
        continue;
      }
    }
    out.push_back(t);
  }
  return out;
}

}  // namespace swcaffe::serve
