#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"

namespace swcaffe::serve {

double percentile(const std::vector<double>& sorted, double q) {
  SWC_CHECK(!sorted.empty());
  SWC_CHECK_GT(q, 0.0);
  SWC_CHECK_LE(q, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

LatencyStats latency_stats(std::vector<double> latencies) {
  LatencyStats s;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  s.count = static_cast<int>(latencies.size());
  s.min_s = latencies.front();
  s.max_s = latencies.back();
  double sum = 0.0;
  for (const double v : latencies) sum += v;
  s.mean_s = sum / static_cast<double>(latencies.size());
  s.p50_s = percentile(latencies, 0.50);
  s.p95_s = percentile(latencies, 0.95);
  s.p99_s = percentile(latencies, 0.99);
  return s;
}

}  // namespace swcaffe::serve
