// swserve dynamic batcher + SLO admission control.
//
// A discrete-event simulation of one inference server fed by an open-loop
// arrival stream, run on the swsim engine (sim::Engine): arrivals post as
// events on a client actor, the queue's launch deadline is a cancellable
// timer on the server actor, and the engine's documented (time, actor, seq)
// order replaces the old hand-merged two-source loop. Requests queue FIFO;
// a batch launches when `max_batch` requests are waiting or when the oldest
// has waited `max_delay_s`, whichever comes first — the classic
// latency/throughput knob pair. The server serves one batch at a time on an
// exclusive sim resource (the same busy-interval machinery the overlap
// scheduler uses for the network link), so batch k+1 starts at max(its
// formation time, batch k's finish).
//
// Admission control rejects a request at arrival when a *conservative upper
// bound* on its completion time would miss the SLO:
//
//   predicted = max(server_busy_until, t + max_delay)
//             + (batches_ahead + 1) * f(max_batch)
//
// where f is the engine's priced forward time and batches_ahead =
// floor(queue_depth / max_batch). Every term is a worst case (each batch
// ahead launches by its own oldest + max_delay <= t + max_delay and takes at
// most f(max_batch); the request's own batch may fill to max_batch after it
// joins), so an admitted request can never finish later than predicted —
// which is what makes "admitted p99 <= SLO" a theorem the tests assert, not
// a tendency.
//
// Everything runs on simulated time and is pure in (engine, arrivals,
// options): same inputs, bit-identical ServeResult.
#pragma once

#include <vector>

#include "serve/engine.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "trace/tracer.h"

namespace swcaffe::serve {

struct BatcherOptions {
  int max_batch = 8;          ///< largest batch formed (<= engine max_batch)
  double max_delay_s = 0.002; ///< longest the oldest request waits for peers
};

struct AdmissionOptions {
  bool enabled = true;
  double slo_s = 0.050;  ///< completion deadline, measured from arrival
};

struct ServeOptions {
  BatcherOptions batcher;
  AdmissionOptions admission;
  /// Optional trace sink. Uses three tracks starting at `trace_track`:
  /// +0 server ("serve.forward" spans), +1 requests ("serve.queue" async
  /// spans, "serve.reject" instants, queue-depth counter), +2 batches
  /// ("serve.batch" formation async spans).
  trace::Tracer* tracer = nullptr;
  int trace_track = 0;
};

struct ServeResult {
  std::vector<RequestRecord> requests;  ///< one per arrival, admitted or not
  std::vector<BatchRecord> batches;

  int offered = 0;   ///< arrivals presented to admission
  int admitted = 0;
  int rejected = 0;
  double rejection_rate = 0.0;    ///< rejected / offered
  double makespan_s = 0.0;        ///< last batch finish (0 when idle)
  double throughput_rps = 0.0;    ///< admitted completions / makespan
  double utilization = 0.0;       ///< server busy seconds / makespan
  double mean_batch_size = 0.0;
  LatencyStats latency;           ///< admitted requests, arrival -> finish
};

/// Runs the server over one arrival schedule (strictly increasing times, as
/// produced by generate_arrivals). Pure in its inputs — bit-identical
/// results across runs, which BENCH_serving.json's determinism gate checks
/// byte for byte.
ServeResult simulate_serving(const InferenceEngine& engine,
                             const std::vector<double>& arrivals,
                             const ServeOptions& options = {});

}  // namespace swcaffe::serve
