// swserve request records — the currency of the serving simulator.
//
// A request is one inference query of the open-loop arrival stream; the
// simulator fills in its full lifecycle (admission verdict, batch
// membership, launch/finish times) so latency accounting and trace export
// are pure post-processing over these records.
#pragma once

#include <cstdint>

namespace swcaffe::serve {

/// One request's complete lifecycle through the serving engine. Times are
/// simulated seconds on the service clock (t = 0 is the start of the run).
struct RequestRecord {
  std::int64_t id = 0;       ///< arrival index (FIFO order)
  double arrival_s = 0.0;    ///< open-loop arrival time
  bool admitted = false;     ///< passed the SLO admission predicate
  double predicted_s = 0.0;  ///< completion the admission predicate foresaw
  int batch = -1;            ///< index into ServeResult::batches (-1: shed)
  double launch_s = 0.0;     ///< the request's batch started its forward pass
  double finish_s = 0.0;     ///< the batch's forward pass completed

  /// End-to-end latency (queue wait + batch formation + forward).
  double latency_s() const { return finish_s - arrival_s; }
  /// Time spent queued before the engine started the batch.
  double queue_s() const { return launch_s - arrival_s; }
};

/// One coalesced batch the engine executed.
struct BatchRecord {
  int id = 0;
  int size = 0;              ///< requests served (1 <= size <= max_batch)
  double first_arrival_s = 0.0;  ///< oldest member's arrival
  double launch_s = 0.0;     ///< forward pass start (busy-interval placement)
  double finish_s = 0.0;     ///< launch + priced forward time
  double forward_s = 0.0;    ///< the cost-model forward time at this size
};

}  // namespace swcaffe::serve
