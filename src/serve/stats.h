// Latency/throughput accounting for swserve runs.
#pragma once

#include <vector>

namespace swcaffe::serve {

/// Percentile summary of a latency sample. Percentiles use the nearest-rank
/// definition (ceil(q*N)-th smallest), which is exact, deterministic and
/// never interpolates — the same number every serving paper reports.
struct LatencyStats {
  int count = 0;
  double min_s = 0.0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Nearest-rank percentile of `sorted` (ascending, non-empty), q in (0, 1].
double percentile(const std::vector<double>& sorted, double q);

/// Summary of an arbitrary latency sample (unsorted ok; empty -> all zero).
LatencyStats latency_stats(std::vector<double> latencies);

}  // namespace swcaffe::serve
