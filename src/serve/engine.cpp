#include "serve/engine.h"

#include <utility>

#include "base/log.h"
#include "check/rules.h"
#include "check/verify.h"
#include "core/models.h"
#include "swdnn/layer_estimate.h"

namespace swcaffe::serve {

InferenceEngine::InferenceEngine(const hw::CostModel& cost,
                                 std::string model_name, ModelFn model,
                                 EngineOptions options)
    : cost_(cost),
      model_name_(std::move(model_name)),
      model_(std::move(model)),
      options_(std::move(options)) {
  SWC_CHECK_GE(options_.max_batch, 1);
  SWC_CHECK(model_);
  if (options_.tune) {
    tune::TuneOptions topts;
    topts.nodes = 1;  // serving runs a single node
    topts.cache_path = options_.plan_cache;
    topts.tracer = options_.tracer;
    topts.trace_track = options_.trace_track;
    tuner_ = std::make_unique<tune::Tuner>(cost_, std::move(topts));
  }

  batch_s_.assign(static_cast<std::size_t>(options_.max_batch) + 1, 0.0);
  for (int b = 1; b <= options_.max_batch; ++b) {
    double s = price_batch(b, tuner_.get());
    // Coalescing more requests never finishes earlier; clamping enforces the
    // monotone table the admission predicate's worst-case bound relies on
    // even if per-batch tuning produced a (model-noise) inversion.
    if (b > 1 && s < batch_s_[b - 1]) s = batch_s_[b - 1];
    batch_s_[static_cast<std::size_t>(b)] = s;
  }
  if (tuner_) {
    const tune::TuneStats& ts = tuner_->stats();
    stats_.layers_tuned = ts.layers_tuned;
    stats_.cache_hits = ts.cache_hits;
    stats_.candidates_evaluated = ts.evaluated;
    stats_.candidates_rejected = ts.rejected;
  }
}

double InferenceEngine::batch_time(int batch) const {
  SWC_CHECK_GE(batch, 1);
  SWC_CHECK_LE(batch, options_.max_batch);
  return batch_s_[static_cast<std::size_t>(batch)];
}

double InferenceEngine::price_batch(int batch, tune::Tuner* tuner) {
  const std::vector<core::LayerDesc> descs =
      core::describe_net_spec(model_(batch));
  std::map<std::string, dnn::ConvEstimate> overrides;
  if (tuner) {
    const tune::NetPlan plan = tuner->tune_net(descs);
    if (options_.verify) {
      for (const auto& [name, conv] : plan.convs) {
        verify_tuned_plan(conv);
        ++stats_.plans_verified;
      }
    }
    overrides = plan.overrides();
  } else if (options_.verify) {
    const check::Report report = check::verify_net(cost_, descs);
    SWC_CHECK_MSG(report.ok(), "default plans for "
                                   << model_name_ << " batch " << batch
                                   << " fail verification: "
                                   << report.summary());
  }
  const dnn::NetTimeline tl = dnn::estimate_net_timeline(cost_, descs,
                                                         overrides);
  double fwd = 0.0;
  for (const double s : tl.fwd_s) fwd += s;
  SWC_CHECK_GT(fwd, 0.0);
  return fwd;
}

void InferenceEngine::verify_tuned_plan(const tune::TunedConvPlan& plan) const {
  // Re-run the exact legality checks the tuner's candidate filter applies —
  // a plan loaded from a persistent cache bypassed that filter in this
  // process, and a stale or hand-edited cache file must not be priced.
  const hw::HwParams& hp = cost_.params();
  const core::ConvGeom gpg = plan.geom.per_group();
  const auto verify_direction = [&](const tune::DirectionChoice& choice,
                                    dnn::ConvDirection dir) {
    check::Report report;
    const check::Options opts;
    if (choice.implicit) {
      check::check_ldm(
          check::implicit_conv_ldm_plan(hp, gpg, choice.channel_block_in,
                                        choice.channel_block_out),
          hp, opts, plan.layer, &report);
      check::check_dma(check::implicit_conv_dma_plan(gpg), opts, plan.layer,
                       &report);
    } else {
      const dnn::ConvGemmShape s = dnn::explicit_gemm_shape(gpg, dir);
      report = check::verify_gemm(cost_, s.m, s.n, s.k, choice.blocking,
                                  plan.layer, opts);
    }
    SWC_CHECK_MSG(report.empty(), "tuned plan for "
                                      << plan.layer << " ("
                                      << (choice.implicit ? "implicit"
                                                          : "explicit")
                                      << ") fails verification: "
                                      << report.summary());
  };
  verify_direction(plan.forward, dnn::ConvDirection::kForward);
  verify_direction(plan.backward_weight, dnn::ConvDirection::kBackwardWeight);
  if (!plan.first_conv) {
    verify_direction(plan.backward_input, dnn::ConvDirection::kBackwardInput);
  }
}

bool InferenceEngine::save_cache(std::string* error) const {
  if (!tuner_) return true;
  return tuner_->save_cache(error);
}

}  // namespace swcaffe::serve
